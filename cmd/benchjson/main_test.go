package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU
BenchmarkFrameBuild-8   	      12	  94018273 ns/op	 5123456 B/op	    1234 allocs/op
BenchmarkScheduler/pending=100000/wheel-8         	 5000000	       170.4 ns/op	   5870000 events/s	       0 B/op	       0 allocs/op
BenchmarkScheduler/pending=100000/heap-8          	 1000000	       820.1 ns/op	   1220000 events/s	       0 B/op	       0 allocs/op
BenchmarkFinalize-8     	       3	 401234567 ns/op	  123456 records/s
--- BENCH: BenchmarkFrameBuild-8
    some log noise that must be ignored
PASS
ok  	repro	42.000s
`

func TestParseBench(t *testing.T) {
	got, names, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{
		"BenchmarkFrameBuild",
		"BenchmarkScheduler/pending=100000/wheel",
		"BenchmarkScheduler/pending=100000/heap",
		"BenchmarkFinalize",
	}
	if len(names) != len(wantNames) {
		t.Fatalf("got %d benchmarks (%v), want %d", len(names), names, len(wantNames))
	}
	for i, n := range wantNames {
		if names[i] != n {
			t.Errorf("names[%d] = %q, want %q", i, names[i], n)
		}
	}

	fb := got["BenchmarkFrameBuild"]
	if fb.Iterations != 12 {
		t.Errorf("FrameBuild iterations = %d, want 12", fb.Iterations)
	}
	if fb.Metrics["ns/op"] != 94018273 || fb.Metrics["B/op"] != 5123456 || fb.Metrics["allocs/op"] != 1234 {
		t.Errorf("FrameBuild metrics = %v", fb.Metrics)
	}

	wheel := got["BenchmarkScheduler/pending=100000/wheel"]
	if wheel.Metrics["events/s"] != 5870000 {
		t.Errorf("wheel events/s = %v, want 5870000", wheel.Metrics["events/s"])
	}
	if wheel.Metrics["allocs/op"] != 0 {
		t.Errorf("wheel allocs/op = %v, want 0", wheel.Metrics["allocs/op"])
	}

	fin := got["BenchmarkFinalize"]
	if fin.Metrics["records/s"] != 123456 {
		t.Errorf("Finalize records/s = %v, want 123456", fin.Metrics["records/s"])
	}
}

func TestParseBenchLastWins(t *testing.T) {
	in := "BenchmarkX-4 100 10.0 ns/op\nBenchmarkX-4 200 20.0 ns/op\n"
	got, names, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "BenchmarkX" {
		t.Fatalf("names = %v, want [BenchmarkX]", names)
	}
	if got["BenchmarkX"].Iterations != 200 || got["BenchmarkX"].Metrics["ns/op"] != 20 {
		t.Errorf("last occurrence should win, got %+v", got["BenchmarkX"])
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFrameBuild-8":       "BenchmarkFrameBuild",
		"BenchmarkScheduler/wheel-16": "BenchmarkScheduler/wheel",
		"BenchmarkNoProcs":            "BenchmarkNoProcs",
		// benchstat convention: a trailing -digits is always the procs
		// suffix, so sub-benchmark parameters use key=value form.
		"BenchmarkScheduler/pending=1000-4": "BenchmarkScheduler/pending=1000",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
