// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON object, so CI's benchmark artifacts diff
// cleanly across PRs: BENCH_<date>.txt stays the human-readable record,
// BENCH_<date>.json the tool-readable one.
//
//	go test -bench . -benchmem ./... | benchjson > BENCH.json
//
// Each benchmark becomes one entry keyed by its name (the -<procs>
// suffix stripped), carrying iterations plus every reported metric:
// ns/op, B/op, allocs/op and custom b.ReportMetric units such as
// events/s or records/s. Repeated names (e.g. concatenated runs)
// keep the last occurrence. Non-benchmark lines pass through silently.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one benchmark's parsed measurements. Metrics maps the
// reported unit (e.g. "ns/op", "B/op", "events/s") to its value.
type BenchResult struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// stripProcs removes the trailing -<GOMAXPROCS> that `go test` appends
// to benchmark names, keeping sub-benchmark paths intact.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseBench reads benchmark text output and collects the results in
// encounter order (names returns that order with duplicates removed,
// last value winning).
func parseBench(r io.Reader) (map[string]BenchResult, []string, error) {
	out := map[string]BenchResult{}
	var names []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := BenchResult{Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			res.Metrics[fields[i+1]] = v
		}
		name := stripProcs(m[1])
		if _, seen := out[name]; !seen {
			names = append(names, name)
		}
		out[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return out, names, nil
}

func main() {
	results, _, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	// Sorted keys: encoding/json does this for maps anyway, but sort
	// explicitly so the contract is in the tool, not the library.
	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make(map[string]BenchResult, len(results))
	for _, k := range keys {
		ordered[k] = results[k]
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ordered); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
