// Command hpmanager is the measurement manager for real-TCP honeypots
// (cmd/honeypotd): it connects to their control ports, assigns them to a
// directory server, tells them which files to advertise, monitors their
// health, periodically collects their logs, and at the end of the
// campaign merges and unifies everything — running the step-2
// anonymization and the audit — into a JSONL dataset.
//
// Usage:
//
//	hpmanager -honeypots 127.0.0.1:4700,127.0.0.1:4701 \
//	          -server 127.0.0.1:4661 \
//	          -links links.txt -duration 2m -out dataset.jsonl
//
// links.txt holds one ed2k://|file|name|size|hash|/ link per line: the
// files the fleet will claim to have. Without -links, four synthetic bait
// files are generated.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/control"
	"repro/internal/ed2k"
	"repro/internal/livenet"
	"repro/internal/logging"
	"repro/internal/logstore"
	"repro/internal/manager"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(log.Ltime)
	log.SetPrefix("hpmanager: ")
	var (
		hpList    = flag.String("honeypots", "", "comma-separated control endpoints (required)")
		srvAddr   = flag.String("server", "127.0.0.1:4661", "directory server for the fleet")
		linkFile  = flag.String("links", "", "file of ed2k links to advertise (optional)")
		duration  = flag.Duration("duration", time.Minute, "measurement duration")
		collect   = flag.Duration("collect-every", 10*time.Second, "log collection period")
		health    = flag.Duration("health-every", 5*time.Second, "status poll period")
		collectTO = flag.Duration("collect-timeout", 10*time.Second, "deadline for one control exchange; a silent honeypot fails the request instead of hanging the round (0 waits forever)")
		retries   = flag.Int("collect-retries", 2, "per-round retry budget when a honeypot's collection fails; past it the round is recorded as a gap and the next period tries again")
		backoff   = flag.Duration("collect-retry-backoff", 2*time.Second, "base delay before a collection retry, doubling per attempt")
		out       = flag.String("out", "dataset.jsonl", "output JSONL dataset")
		ip        = flag.String("ip", "127.0.0.1", "address to bind the manager")
		storeDir  = flag.String("store", "", "spill collected records into a segmented on-disk logstore instead of holding them in memory")
		exportDir = flag.String("export", "", "additionally stream the anonymized dataset into a segmented on-disk logstore under this directory, for later streaming analysis")
		debugAddr = flag.String("debug-addr", "", "serve /metrics (JSON snapshot), /debug/vars (expvar) and /debug/pprof on this address (e.g. 127.0.0.1:8060); empty disables")
	)
	flag.Parse()

	if *hpList == "" {
		log.Fatal("-honeypots is required")
	}
	server, err := netip.ParseAddrPort(*srvAddr)
	if err != nil {
		log.Fatalf("bad -server: %v", err)
	}
	mgrAddr, err := netip.ParseAddr(*ip)
	if err != nil {
		log.Fatalf("bad -ip: %v", err)
	}
	files, err := loadFiles(*linkFile)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("advertising %d files", len(files))

	host := livenet.NewHost(mgrAddr, time.Now().UnixNano())
	defer host.Close()

	// With -debug-addr, the manager's telemetry — collection counters,
	// finalize pipeline stages, store counters — is live over HTTP for
	// the whole campaign. A nil registry (flag unset) disables all of it.
	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.New()
		dbg, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			log.Fatalf("-debug-addr: %v", err)
		}
		defer dbg.Close()
		log.Printf("debug server on http://%s (/metrics, /debug/vars, /debug/pprof)", dbg.Addr())
	}

	cfg := manager.DefaultConfig()
	cfg.CollectEvery = *collect
	cfg.HealthEvery = *health
	cfg.CollectRetries = *retries
	cfg.CollectRetryBackoff = *backoff
	cfg.Metrics = reg
	mgr := manager.New(host, cfg)
	if *storeDir != "" {
		store, err := logstore.Open(*storeDir, logstore.Options{Metrics: reg})
		if err != nil {
			log.Fatalf("opening -store: %v", err)
		}
		defer store.Close()
		// Quarantined data means the manifest and the disk disagree about
		// a previous campaign's records. Refusing to run is the only safe
		// move: continuing would publish a dataset with a silent hole.
		if q := store.Quarantined(); len(q) > 0 {
			for _, e := range q {
				log.Printf("-store %s: quarantined: shard %s seq %d: %s", *storeDir, e.Shard, e.Seq, e.Reason)
			}
			log.Fatalf("-store %s: %d quarantined segment(s), first in shard %s; inspect the store's _quarantine directory before measuring", *storeDir, len(q), q[0].Shard)
		}
		mgr.SetStore(store)
		log.Printf("spilling collected records to %s", *storeDir)
	}

	// Dial every honeypot's control port and register it.
	endpoints := strings.Split(*hpList, ",")
	type dialResult struct {
		link *control.Link
		err  error
		addr string
	}
	results := make(chan dialResult, len(endpoints))
	host.Post(func() {
		for i, ep := range endpoints {
			ep = strings.TrimSpace(ep)
			ap, err := netip.ParseAddrPort(ep)
			if err != nil {
				results <- dialResult{err: fmt.Errorf("bad endpoint %q: %v", ep, err), addr: ep}
				continue
			}
			id := fmt.Sprintf("hp-%02d", i)
			control.Dial(host, id, ap, func(l *control.Link, err error) {
				results <- dialResult{link: l, err: err, addr: ep}
			})
		}
	})
	links := make([]*control.Link, 0, len(endpoints))
	for range endpoints {
		r := <-results
		if r.err != nil {
			log.Fatalf("connecting to honeypot %s: %v", r.addr, r.err)
		}
		log.Printf("connected to honeypot at %s", r.addr)
		links = append(links, r.link)
	}

	assignments := manager.SameServer(server, files, len(links))
	host.Post(func() {
		for i, l := range links {
			// The link-level policy bounds each exchange (deadline + one
			// re-ask for idempotent requests); the manager's retry budget
			// handles whole failed rounds above it.
			l.SetPolicy(control.Policy{Timeout: *collectTO, Attempts: 2})
			mgr.Add(l, assignments[i])
		}
		mgr.Start()
	})

	log.Printf("measuring for %v ...", *duration)
	time.Sleep(*duration)

	// Finalize through the streaming pipeline: the anonymized dataset
	// flows record-by-record into the JSONL file (and the export store,
	// when asked) without ever materializing a []Record — a ten-week
	// campaign's dataset needs no more memory than its distinct values.
	type finResult struct {
		ds  *manager.DatasetStream
		err error
	}
	fin := make(chan finResult, 1)
	host.Post(func() {
		mgr.FinalizeStream(func(ds *manager.DatasetStream, err error) {
			fin <- finResult{ds, err}
		})
	})
	res := <-fin
	if res.err != nil {
		log.Fatalf("finalize: %v", res.err)
	}
	defer res.ds.Close()

	var it logging.Iterator = res.ds
	if *exportDir != "" {
		export, err := logstore.Open(*exportDir, logstore.Options{Metrics: reg})
		if err != nil {
			log.Fatalf("opening -export: %v", err)
		}
		defer export.Close()
		// Appending a second campaign after a first would silently merge
		// the two datasets on the next streamed analysis.
		if n := export.TotalRecords(); n > 0 {
			log.Fatalf("-export %s already holds %d records from a previous run; point it at a fresh directory", *exportDir, n)
		}
		it = logging.Map(it, func(r *logging.Record) error {
			return export.AppendRecord(*r)
		})
		log.Printf("exporting anonymized dataset to %s", *exportDir)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("creating %s: %v", *out, err)
	}
	defer f.Close()
	n, err := logging.WriteJSONLIter(f, it)
	if err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}
	log.Printf("wrote %d records (%d distinct peers) to %s",
		n, res.ds.DistinctPeers(), *out)
	for id, c := range res.ds.PerHoneypot() {
		log.Printf("  %s contributed %d records", id, c)
	}
}

// loadFiles reads ed2k links or fabricates bait files.
func loadFiles(path string) ([]client.SharedFile, error) {
	if path == "" {
		names := []string{
			"some.popular.movie.2008.avi",
			"hit.song.mp3",
			"linux.distribution.iso",
			"interesting.text.pdf",
		}
		sizes := []int64{734003200, 5242880, 734003200, 1048576}
		types := []string{"Video", "Audio", "Pro", "Doc"}
		out := make([]client.SharedFile, 4)
		for i := range out {
			out[i] = client.SharedFile{
				Hash: ed2k.SyntheticHash("bait/" + names[i]),
				Name: names[i], Size: sizes[i], Type: types[i],
			}
		}
		return out, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening -links: %w", err)
	}
	defer f.Close()
	var out []client.SharedFile
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		l, err := ed2k.ParseLink(line)
		if err != nil {
			return nil, fmt.Errorf("bad link %q: %w", line, err)
		}
		out = append(out, client.SharedFile{Hash: l.Hash, Name: l.Name, Size: l.Size})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no links in %s", path)
	}
	return out, nil
}
