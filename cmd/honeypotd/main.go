// Command honeypotd runs one real-TCP honeypot, remotely driven by the
// manager (cmd/hpmanager) over the control protocol: the manager tells it
// which directory server to join and which files to claim, polls its
// status, and periodically drains its (already anonymized) log.
//
// Usage:
//
//	honeypotd -id hp-00 [-ip 127.0.0.1] [-peer-port 4662] [-control-port 4700]
//	          [-strategy random|none] -secret campaign-secret [-browse]
//	          [-store DIR] [-debug-addr 127.0.0.1:8061]
//
// -debug-addr serves the daemon's telemetry over HTTP: /metrics (the
// registry as JSON), /debug/vars (expvar) and /debug/pprof.
package main

import (
	"flag"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/control"
	"repro/internal/honeypot"
	"repro/internal/livenet"
	"repro/internal/logstore"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(log.Ltime)
	log.SetPrefix("honeypotd: ")
	var (
		id        = flag.String("id", "hp-00", "honeypot identifier in logs")
		ip        = flag.String("ip", "127.0.0.1", "address to bind")
		peerPort  = flag.Uint("peer-port", 4662, "eDonkey peer port")
		ctlPort   = flag.Uint("control-port", control.DefaultPort, "manager control port")
		strategy  = flag.String("strategy", "none", "part-request strategy: random or none")
		secret    = flag.String("secret", "", "campaign anonymization secret (required)")
		browse    = flag.Bool("browse", true, "retrieve shared lists of contacting peers")
		statusIv  = flag.Duration("status", time.Minute, "status log interval (0 disables)")
		storeDir  = flag.String("store", "", "durable record store directory: records land in segment files and the manager collects incrementally (take-records-since), surviving restarts")
		debugAddr = flag.String("debug-addr", "", "serve /metrics (JSON snapshot), /debug/vars (expvar) and /debug/pprof on this address (e.g. 127.0.0.1:8061); empty disables")
	)
	flag.Parse()

	if *secret == "" {
		log.Fatal("-secret is required: honeypots never log raw addresses")
	}
	addr, err := netip.ParseAddr(*ip)
	if err != nil {
		log.Fatalf("bad -ip: %v", err)
	}
	var strat honeypot.Strategy
	switch *strategy {
	case "random":
		strat = honeypot.RandomContent
	case "none":
		strat = honeypot.NoContent
	default:
		log.Fatalf("unknown -strategy %q (want random or none)", *strategy)
	}

	// With -debug-addr, the daemon exposes its telemetry over HTTP: the
	// registry feeds the store's counters and the status-tick gauges. A
	// nil registry (flag unset) keeps every update a one-branch no-op.
	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.New()
		dbg, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			log.Fatalf("-debug-addr: %v", err)
		}
		defer dbg.Close()
		log.Printf("debug server on http://%s (/metrics, /debug/vars, /debug/pprof)", dbg.Addr())
	}

	// With -store, records are durable: the store recovers torn tails
	// from a previous crash, and the manager's checkpoints mean nothing
	// already collected is ever re-sent.
	var shard *logstore.Shard
	if *storeDir != "" {
		// FlushEvery bounds what a hard kill can lose to about a second
		// of buffered records; a graceful shutdown loses nothing.
		store, err := logstore.Open(*storeDir, logstore.Options{FlushEvery: time.Second, Metrics: reg})
		if err != nil {
			log.Fatalf("opening -store: %v", err)
		}
		defer store.Close()
		// Quarantined segments mean recovery refused part of a previous
		// run's data. A honeypot that kept logging would bury the evidence;
		// exit and name the shard so the operator decides.
		if q := store.Quarantined(); len(q) > 0 {
			for _, e := range q {
				log.Printf("-store %s: quarantined: shard %s seq %d: %s", *storeDir, e.Shard, e.Seq, e.Reason)
			}
			log.Fatalf("-store %s: %d quarantined segment(s), first in shard %s; inspect the store's _quarantine directory before logging into it", *storeDir, len(q), q[0].Shard)
		}
		if shard, err = store.Shard(*id); err != nil {
			log.Fatalf("opening shard: %v", err)
		}
		log.Printf("store %s: resuming shard %s with %d records", *storeDir, *id, shard.Count())
	}

	host := livenet.NewHost(addr, time.Now().UnixNano())
	defer host.Close()

	errCh := make(chan error, 1)
	host.Post(func() {
		cfg := honeypot.Config{
			ID:             *id,
			Strategy:       strat,
			Port:           uint16(*peerPort),
			Secret:         []byte(*secret),
			BrowseContacts: *browse,
		}
		if shard != nil {
			cfg.Sink = shard
		}
		hp := honeypot.New(host, cfg)
		if err := hp.Client().Listen(); err != nil {
			errCh <- err
			return
		}
		agent, err := control.NewAgent(host, hp, uint16(*ctlPort))
		if err != nil {
			errCh <- err
			return
		}
		if shard != nil {
			agent.SetSource(shard)
		}
		if *statusIv > 0 {
			// Status gauges refresh on the same tick as the status log;
			// nil-safe, so they cost nothing without -debug-addr.
			var (
				gConnected   = reg.Gauge("honeypot.connected")
				gRecords     = reg.Gauge("honeypot.records")
				gAdvertised  = reg.Gauge("honeypot.advertised")
				gHello       = reg.Gauge("honeypot.hello")
				gStartUpload = reg.Gauge("honeypot.start_upload")
				gRequestPart = reg.Gauge("honeypot.request_part")
			)
			var tick func()
			tick = func() {
				st := hp.Status()
				connected := int64(0)
				if st.Connected {
					connected = 1
				}
				gConnected.Set(connected)
				gRecords.Set(int64(st.Records))
				gAdvertised.Set(int64(st.Advertised))
				gHello.Set(int64(st.Stats.Hello))
				gStartUpload.Set(int64(st.Stats.StartUpload))
				gRequestPart.Set(int64(st.Stats.RequestParts))
				log.Printf("connected=%v id=%d records=%d advertised=%d hello=%d start-upload=%d request-part=%d",
					st.Connected, st.ClientID, st.Records, st.Advertised,
					st.Stats.Hello, st.Stats.StartUpload, st.Stats.RequestParts)
				host.After(*statusIv, tick)
			}
			host.After(*statusIv, tick)
		}
		errCh <- nil
	})
	if err := <-errCh; err != nil {
		log.Fatalf("start: %v", err)
	}
	log.Printf("%s (%s) listening: peers on %s:%d, control on %s:%d",
		*id, strat, *ip, *peerPort, *ip, *ctlPort)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
}
