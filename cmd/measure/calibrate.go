package main

// The -calibrate run mode: execute the scenario, diff its artifacts
// against an observed dataset (the built-in paper dataset, or
// -calibration-file), print every expectation's verdict, and exit
// nonzero naming the out-of-tolerance artifacts. The JSON report
// (-report) is deterministic — byte-identical across runs of the same
// seed — so the CI gate can pin it.

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/calibrate"
)

// runCalibrate is the -calibrate entry point. The run summary and the
// verdict lines go to stderr/stdout like the other modes: stdout holds
// the human-readable verdict table (or, with -report unset, the JSON
// report), stderr the run narration.
func runCalibrate(spec repro.Spec, obsFile, reportPath string, opts repro.RunOptions, metricsFile string) {
	ds := calibrate.PaperObserved()
	if obsFile != "" {
		data, err := os.ReadFile(obsFile)
		if err != nil {
			log.Fatalf("reading observed dataset: %v", err)
		}
		if ds, err = calibrate.ParseDataset(data); err != nil {
			log.Fatalf("decoding %s: %v", obsFile, err)
		}
	}

	start := time.Now()
	rep, res, err := calibrate.Run(spec, nil, ds, opts)
	if err != nil {
		fatalRun(spec.Name, err)
	}
	elapsed := time.Since(start)
	records := 0
	if res.Frame != nil {
		records = res.Frame.Len()
	}
	log.Printf("scenario %s: simulated %d events in %v; %d records, %d distinct peers",
		spec.Name, res.Events, elapsed.Round(time.Millisecond), records, res.Dataset.DistinctPeers)
	writeMetrics(metricsFile, opts.Metrics)

	fmt.Printf("calibration: %s vs dataset v%d (scale %g)\n", rep.Campaign, rep.DatasetVersion, rep.Scale)
	for _, row := range rep.Rows {
		status := map[string]string{
			calibrate.StatusPass:    "ok  ",
			calibrate.StatusFail:    "FAIL",
			calibrate.StatusSkipped: "skip",
		}[row.Status]
		line := fmt.Sprintf("  %s %-42s %-16s predicted %.4g vs %.4g",
			status, row.Label(), row.Check, row.Predicted, row.Observed)
		if row.Detail != "" {
			line += " — " + row.Detail
		}
		fmt.Println(line)
	}
	fmt.Printf("calibration: %d passed, %d failed, %d skipped\n", rep.Passed, rep.Failed, rep.Skipped)

	if reportPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("encoding report: %v", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(reportPath, data, 0o644); err != nil {
			log.Fatalf("writing report: %v", err)
		}
		log.Printf("report written to %s", reportPath)
	}

	if !rep.Pass {
		var names []string
		for _, row := range rep.Failing() {
			names = append(names, row.Label())
		}
		log.Fatalf("calibration FAILED: %d artifact(s) out of tolerance: %s",
			rep.Failed, strings.Join(names, ", "))
	}
}
