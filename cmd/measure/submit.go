package main

// The -submit mode: one campaign workflow, local or remote. The spec
// selected by -scenario / -scenario-file (with -scale and -seed already
// applied, exactly as a local run would resolve them) is posted to a
// running measured daemon, its SSE progress stream is tailed to stderr,
// and the finished run's report is fetched and written like a local
// -report — byte-identical to what the same spec and seed produce via
// a local plan run, because the daemon serves cmd/measure's exact
// report encoding.

import (
	"context"
	"log"
	"os"
	"os/signal"
	"time"

	"repro"
	"repro/internal/analysis"
	"repro/internal/svc"
)

// submitRun drives a remote campaign end to end: submit, tail, report.
// Ctrl-C turns into a remote DELETE — the daemon aborts the campaign
// into a partial result, and the report covers what was collected.
func submitRun(baseURL string, spec repro.Spec, plan *analysis.Plan, reportPath string) {
	client := svc.NewClient(baseURL)
	ctx := context.Background()

	run, err := client.Submit(ctx, svc.SubmitRequest{Spec: &spec, Plan: plan})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("submitted run %s to %s (state: %s)", run.ID, client.Base, run.State)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		signal.Stop(sig) // a second Ctrl-C kills the process normally
		log.Printf("interrupt: aborting remote run %s...", run.ID)
		if _, err := client.Abort(context.Background(), run.ID); err != nil {
			log.Printf("abort: %v", err)
		}
	}()

	final, err := client.Events(ctx, run.ID, func(e svc.ProgressEvent) {
		elapsed := time.Duration(e.SimElapsedS * float64(time.Second))
		total := time.Duration(e.SimTotalS * float64(time.Second))
		log.Printf("progress: sim %s/%s (%3.0f%%)  events %d (%.0f/s)  records %d  fleet %d up / %d down",
			elapsed.Round(time.Minute), total.Round(time.Minute), e.Percent,
			e.Events, e.EventsPerSec, e.Records, e.FleetUp, e.FleetDown)
	})
	if err != nil {
		log.Fatal(err)
	}

	switch final.State {
	case svc.StateFailed:
		log.Fatalf("run %s failed: %s", final.ID, final.Error)
	case svc.StateAborted:
		if s := final.Summary; s != nil && !s.AbortedAt.IsZero() {
			log.Printf("run %s ABORTED at %s (sim time); the report covers only records collected before the abort",
				final.ID, s.AbortedAt.Format("2006-01-02 15:04"))
		} else {
			log.Printf("run %s aborted before any records were collected", final.ID)
		}
	}
	if s := final.Summary; s != nil {
		log.Printf("run %s: %s; %d events, %d records, %d distinct peers, wall %v",
			final.ID, final.State, s.Events, s.Records, s.DistinctPeers,
			(time.Duration(s.WallSeconds * float64(time.Second))).Round(time.Millisecond))
	}

	// nil plan: the daemon falls back to the plan submitted with the run,
	// then to the full paper plan.
	data, err := client.Query(ctx, final.ID, nil)
	if err != nil {
		log.Fatal(err)
	}
	if reportPath == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			log.Fatalf("writing report: %v", err)
		}
		return
	}
	if err := os.WriteFile(reportPath, data, 0o644); err != nil {
		log.Fatalf("writing report: %v", err)
	}
	log.Printf("report written to %s", reportPath)
}
