// Command measure runs measurement campaigns in the simulated world and
// regenerates every table and figure of the paper's evaluation section:
// Table I and Figures 2 through 12.
//
// Usage:
//
//	measure [-scale 0.1] [-campaign both|distributed|greedy] [-out dir] [-seed 1]
//	measure -scenario NAME [-scale 0.1]      run a registered scenario
//	measure -scenario-file spec.json         run a campaign spec from disk
//	measure -list-scenarios                  print the scenario registry and exit
//	measure -scenario NAME -queries a,b,c    extract only the named artifacts
//	measure -scenario NAME -plan-file p.json extract an analysis plan from disk
//	measure -list-queries                    print the query registry and exit
//	measure -scenario NAME -progress         live progress on stderr; Ctrl-C aborts cleanly
//	measure -scenario NAME -metrics-file m.json  dump the run's telemetry registry
//	measure -submit URL -scenario NAME       run the campaign on a measured daemon instead
//	measure -scenario NAME -calibrate        diff the run against the paper's observed
//	                                         dataset; nonzero exit when out of tolerance
//	measure -scenario NAME -calibrate -calibration-file obs.json  custom observed dataset
//
// The -campaign path keeps the paper's two typed configs; -scenario and
// -scenario-file run any declarative spec (federations, churn fleets,
// flash crowds, ...) through the same engine. Terminal output
// summarizes each artifact; with -out, the raw series are written as
// CSV files (fig02.csv ... fig12.csv, table1.txt) that plot directly
// with gnuplot.
//
// Analyses are declarative too: -queries (comma-separated registered
// query names) or -plan-file (an analysis.Plan as JSON: query names
// plus per-query options such as subset_samples and seed) select
// exactly which artifacts to extract — dependencies are resolved
// automatically and independent queries run in parallel, so asking for
// one figure never computes the other eleven. The executed result set
// is emitted as JSON, to stdout or to the -report file. Both flags
// apply to scenario runs, including logstore-resident ones (-store /
// -stream / -export).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"slices"
	"strings"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/analysis"
	"repro/internal/anonymize"
	"repro/internal/logging"
	"repro/internal/logstore"
	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("measure: ")
	var (
		scale       = flag.Float64("scale", 0.1, "arrival intensity scale; multiplies the spec's own scale (1.0 = paper magnitudes)")
		campaign    = flag.String("campaign", "both", "campaign to run: distributed, greedy or both")
		outDir      = flag.String("out", "", "directory for CSV series (optional)")
		seed        = flag.Int64("seed", 1, "simulation seed")
		jsonl       = flag.Bool("jsonl", false, "also dump the anonymized dataset as JSONL into -out")
		servers     = flag.Int("servers", 1, "directory servers for the distributed campaign (1 = paper setup)")
		storeDir    = flag.String("store", "", "spill records to a segmented on-disk logstore under this directory (per-campaign subdirectory)")
		stream      = flag.Bool("stream", false, "finalize through the streaming record pipeline: the dataset flows straight into the columnar frame, never materializing records (scenario runs only)")
		exportDir   = flag.String("export", "", "stream the anonymized dataset into an on-disk logstore under this directory for later analysis (per-scenario subdirectory; implies -stream, scenario runs only)")
		scenName    = flag.String("scenario", "", "run a registered scenario by name instead of -campaign")
		scenFile    = flag.String("scenario-file", "", "run a campaign spec decoded from this JSON file")
		listScens   = flag.Bool("list-scenarios", false, "print registered scenario names and exit")
		queries     = flag.String("queries", "", "extract only these analysis queries (comma-separated names; scenario runs only)")
		planFile    = flag.String("plan-file", "", "extract the analysis plan decoded from this JSON file (scenario runs only)")
		listQueries = flag.Bool("list-queries", false, "print registered analysis query names and exit")
		reportPath  = flag.String("report", "", "write the executed plan's results as JSON to this file (default: stdout)")
		progress    = flag.Bool("progress", false, "print periodic campaign progress to stderr (sim time, events/s, records, fleet health); Ctrl-C aborts cleanly into a partial dataset (scenario runs only)")
		metricsFile = flag.String("metrics-file", "", "write the run's full telemetry registry (engine, logstore, finalize pipeline) as JSON to this file (scenario runs only)")
		submitURL   = flag.String("submit", "", "submit the campaign to a running measured daemon at this base URL instead of executing locally; tails its SSE progress and fetches the report (scenario runs only)")
		calibFlag   = flag.Bool("calibrate", false, "run the scenario and diff its artifacts against the paper's observed dataset, exiting nonzero on out-of-tolerance artifacts (scenario runs only)")
		calibFile   = flag.String("calibration-file", "", "observed dataset (calibrate.Dataset JSON) to calibrate against instead of the built-in paper dataset (needs -calibrate)")
	)
	flag.Parse()

	if *listScens {
		for _, name := range repro.Scenarios() {
			fmt.Println(name)
		}
		return
	}
	if *listQueries {
		for _, name := range repro.Queries() {
			q, err := analysis.Lookup(name)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-28s %s\n", name, q.Doc)
		}
		return
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatalf("creating %s: %v", *outDir, err)
		}
	}

	if *scenName != "" || *scenFile != "" {
		spec := loadSpec(*scenName, *scenFile)
		spec.Scale *= *scale
		seedSet := false
		flag.Visit(func(f *flag.Flag) { seedSet = seedSet || f.Name == "seed" })
		if seedSet {
			spec.Seed = *seed
		}
		if *storeDir != "" {
			spec.Collection.StoreDir = filepath.Join(*storeDir, spec.Name)
		}
		if *stream {
			spec.Collection.Stream = true // a spec's own "stream": true also stands
		}
		if *exportDir != "" {
			spec.Collection.ExportDir = filepath.Join(*exportDir, spec.Name)
		}
		if *submitURL != "" {
			if *calibFlag || *calibFile != "" {
				log.Fatal("-calibrate is a local run mode; calibrate a daemon run with POST /runs/{id}/calibrate instead")
			}
			if *storeDir != "" || *stream || *exportDir != "" || *outDir != "" || *jsonl || *progress || *metricsFile != "" {
				log.Print("-store, -stream, -export, -out, -jsonl, -progress and -metrics-file ignored with -submit: the daemon owns collection output and progress streams over SSE")
			}
			submitRun(*submitURL, spec, loadPlan(*queries, *planFile, *seed), *reportPath)
			return
		}
		opts := runOptions(*progress, *metricsFile)
		if *calibFlag {
			if *queries != "" || *planFile != "" {
				log.Fatal("-calibrate runs the observed dataset's own queries; drop -queries/-plan-file")
			}
			if *outDir != "" || *jsonl {
				log.Print("-out and -jsonl ignored: a calibration run emits only the report (use -report FILE)")
			}
			runCalibrate(spec, *calibFile, *reportPath, opts, *metricsFile)
			return
		}
		if *calibFile != "" {
			log.Fatal("-calibration-file needs -calibrate")
		}
		if plan := loadPlan(*queries, *planFile, *seed); plan != nil {
			if *outDir != "" || *jsonl {
				log.Print("-out and -jsonl ignored: a plan run emits only the selected queries as JSON (use -report FILE)")
			}
			runPlan(spec, *plan, *reportPath, opts, *metricsFile)
			return
		}
		runScenario(spec, *outDir, *jsonl, opts, *metricsFile)
		return
	}

	if *stream || *exportDir != "" || *queries != "" || *planFile != "" || *progress || *metricsFile != "" || *submitURL != "" || *calibFlag || *calibFile != "" {
		log.Fatal("-stream, -export, -queries, -plan-file, -progress, -metrics-file, -submit and -calibrate need a scenario run; use -scenario NAME (the paper's campaigns are registered as \"distributed\" and \"greedy\")")
	}
	runD := *campaign == "both" || *campaign == "distributed"
	runG := *campaign == "both" || *campaign == "greedy"
	if !runD && !runG {
		log.Fatalf("unknown campaign %q", *campaign)
	}

	if runD {
		cfg := repro.ScaledDistributed(*scale)
		cfg.Seed = *seed
		cfg.Servers = *servers
		if *storeDir != "" {
			cfg.StoreDir = filepath.Join(*storeDir, "distributed")
		}
		fmt.Printf("=== distributed campaign (24 honeypots, %d days, scale %g, %d server(s)) ===\n",
			cfg.Days, *scale, *servers)
		start := time.Now()
		res, err := repro.RunDistributed(cfg)
		if err != nil {
			fatalRun("distributed", err)
		}
		summarizeRun(res, len(res.Dataset.Records), time.Since(start))
		reportStore(res)
		fmt.Println()
		rep := repro.Analyze(res)
		printDistributed(res, rep)
		if *outDir != "" {
			writeDistributed(*outDir, res, rep, *jsonl)
		}
	}

	if runG {
		cfg := repro.ScaledGreedy(*scale)
		cfg.Seed = *seed + 1
		if *storeDir != "" {
			cfg.StoreDir = filepath.Join(*storeDir, "greedy")
		}
		fmt.Printf("=== greedy campaign (1 honeypot, %d days, scale %g) ===\n", cfg.Days, *scale)
		start := time.Now()
		res, err := repro.RunGreedy(cfg)
		if err != nil {
			fatalRun("greedy", err)
		}
		summarizeRun(res, len(res.Dataset.Records), time.Since(start))
		reportStore(res)
		fmt.Println()
		rep := repro.Analyze(res)
		printGreedy(res, rep)
		if *outDir != "" {
			writeGreedy(*outDir, res, rep, *jsonl)
		}
	}
}

// runOptions assembles the scenario engine's telemetry tap from the
// -progress and -metrics-file flags: a stderr progress printer (with
// Ctrl-C turned into a clean early abort) and a metrics registry.
func runOptions(progress bool, metricsFile string) repro.RunOptions {
	var opts repro.RunOptions
	if metricsFile != "" {
		opts.Metrics = obs.New()
	}
	if progress {
		var interrupted atomic.Bool
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		go func() {
			<-sig
			signal.Stop(sig) // a second Ctrl-C kills the process normally
			log.Print("interrupt: aborting campaign, finalizing records collected so far...")
			interrupted.Store(true)
		}()
		opts.WallEvery = time.Second
		opts.Progress = func(p repro.Progress) bool {
			total := p.SimElapsed + p.SimEnd.Sub(p.SimTime)
			elapsed := p.SimElapsed
			if elapsed > total {
				elapsed = total // the finalize drain runs past campaign end
			}
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(elapsed) / float64(total)
			}
			log.Printf("progress: sim %s/%s (%3.0f%%)  events %d (%.0f/s)  records %d  fleet %d up / %d down",
				elapsed.Round(time.Minute), total.Round(time.Minute), pct,
				p.Events, p.EventsPerSec, p.RecordsCollected, p.FleetUp, p.FleetDown)
			return !interrupted.Load()
		}
	}
	return opts
}

// summarizeRun prints the end-of-run line every path shares: events,
// records, distinct peers, elapsed wall time and throughput. It always
// runs, -progress or not.
func summarizeRun(res *repro.Result, records int, elapsed time.Duration) {
	perSec := 0.0
	if s := elapsed.Seconds(); s > 0 {
		perSec = float64(records) / s
	}
	fmt.Printf("simulated %d events in %v; %d records, %d distinct peers\n",
		res.Events, elapsed.Round(time.Millisecond),
		records, res.Dataset.DistinctPeers)
	// Degraded campaigns say so on stdout: the gap audit is part of the
	// dataset's provenance, not a detail buried in a metrics file.
	if len(res.CollectionGaps) > 0 || res.DroppedRecords > 0 {
		gaps := 0
		for _, n := range res.CollectionGaps {
			gaps += n
		}
		fmt.Printf("degraded: collection gaps: %d round(s) across %d honeypot(s); dropped records: %d\n",
			gaps, len(res.CollectionGaps), res.DroppedRecords)
	}
	// Engine throughput comes from the loop's own counters: Executed
	// equals res.Events, but Stats is the scheduler's authoritative view.
	eventsPerSec := 0.0
	if s := elapsed.Seconds(); s > 0 {
		eventsPerSec = float64(res.Engine.Executed) / s
	}
	fmt.Printf("wall %v; %.0f events/s simulated, %.0f records/s finalized\n",
		elapsed.Round(time.Millisecond), eventsPerSec, perSec)
	if res.Aborted {
		fmt.Printf("campaign ABORTED at %s (sim time); the dataset covers only records collected before the abort\n",
			res.AbortedAt.Format("2006-01-02 15:04"))
	}
}

// fatalRun exits nonzero on a campaign error, naming the finalize stage
// when the anonymization audit is what failed — an operator grepping
// logs must be able to tell a privacy leak from an I/O problem.
func fatalRun(name string, err error) {
	var ae *anonymize.AuditError
	if errors.As(err, &ae) {
		log.Fatalf("%s: finalize stage audit failed: %v", name, err)
	}
	log.Fatalf("%s: %v", name, err)
}

// writeMetrics dumps the registry snapshot collected over the run.
func writeMetrics(path string, reg *obs.Registry) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("creating %s: %v", path, err)
	}
	defer f.Close()
	if err := reg.WriteJSON(f); err != nil {
		log.Fatalf("writing %s: %v", path, err)
	}
	log.Printf("metrics written to %s", path)
}

// reportStore summarizes the campaign's on-disk store and re-derives the
// distinct-peer count by streaming it — the at-scale path that never
// materializes the campaign. TableI alone needs only StreamTableI's
// O(distinct) maps; a full figure regeneration would stream the store
// into a columnar frame instead (analysis.BuildFrameIter, 19 bytes per
// record). (Distinct counts agree with the dataset because the step-2
// renumbering is a bijection.)
func reportStore(res *repro.Result) {
	if res.StoreDir == "" {
		return
	}
	store, err := logstore.Open(res.StoreDir, logstore.Options{})
	if err != nil {
		log.Fatalf("reopening store: %v", err)
	}
	defer store.Close()
	it, err := store.Iterator()
	if err != nil {
		log.Fatalf("store iterator: %v", err)
	}
	defer it.Close()
	table, err := analysis.StreamTableI(it, len(res.HoneypotIDs), res.Days, len(res.Advertised))
	if err != nil {
		log.Fatalf("streaming store: %v", err)
	}
	fmt.Printf("store: %d records in %d shard(s) under %s; streamed re-count: %d distinct peers\n",
		res.StoredRecords, len(store.ShardNames()), res.StoreDir, table.DistinctPeers)
	if table.DistinctPeers != res.Dataset.DistinctPeers {
		log.Fatalf("store stream disagrees with dataset: %d vs %d distinct peers",
			table.DistinctPeers, res.Dataset.DistinctPeers)
	}
}

// reportExport verifies the -export store round-trips: the anonymized
// dataset written during the streamed finalize is reopened and streamed
// into a fresh columnar frame — the "later analysis" path an exported
// campaign exists for — and its stats must agree with the finalize's.
func reportExport(res *repro.Result) {
	if res.ExportDir == "" {
		return
	}
	store, err := logstore.Open(res.ExportDir, logstore.Options{})
	if err != nil {
		log.Fatalf("reopening export store: %v", err)
	}
	defer store.Close()
	it, err := store.Iterator()
	if err != nil {
		log.Fatalf("export store iterator: %v", err)
	}
	defer it.Close()
	f, err := analysis.BuildFrameIter(it)
	if err != nil {
		log.Fatalf("streaming export store: %v", err)
	}
	fmt.Printf("export: %d anonymized records in %d shard(s) under %s; streamed re-read: %d distinct peers\n",
		res.ExportedRecords, len(store.ShardNames()), res.ExportDir, f.DistinctPeers())
	if uint64(f.Len()) != res.ExportedRecords {
		log.Fatalf("export store re-read %d records, finalize wrote %d", f.Len(), res.ExportedRecords)
	}
	if f.DistinctPeers() != res.Dataset.DistinctPeers {
		log.Fatalf("export store disagrees with dataset: %d vs %d distinct peers",
			f.DistinctPeers(), res.Dataset.DistinctPeers)
	}
}

// loadSpec fetches a registered scenario or decodes a spec file.
func loadSpec(name, file string) repro.Spec {
	if name != "" && file != "" {
		log.Fatal("-scenario and -scenario-file are mutually exclusive")
	}
	if name != "" {
		spec, err := repro.ScenarioSpec(name)
		if err != nil {
			log.Fatal(err)
		}
		return spec
	}
	data, err := os.ReadFile(file)
	if err != nil {
		log.Fatalf("reading spec: %v", err)
	}
	var spec repro.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		log.Fatalf("decoding %s: %v", file, err)
	}
	return spec
}

// loadPlan builds the analysis plan selected by -queries or -plan-file;
// nil means "no plan: print the full generic report". The -seed flag
// seeds -queries plans (a plan file carries its own per-query options).
func loadPlan(queries, file string, seed int64) *analysis.Plan {
	if queries != "" && file != "" {
		log.Fatal("-queries and -plan-file are mutually exclusive")
	}
	switch {
	case queries != "":
		names := strings.Split(queries, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		plan := analysis.NewPlan(analysis.QueryOptions{Seed: seed}, names...)
		return &plan
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			log.Fatalf("reading plan: %v", err)
		}
		plan, err := analysis.ParsePlan(data)
		if err != nil {
			log.Fatalf("decoding %s: %v", file, err)
		}
		return &plan
	}
	return nil
}

// runPlan executes one spec, then extracts exactly the plan's queries —
// dependencies resolved by the engine, independent artifacts in
// parallel — and emits the result set as JSON to -report or stdout. The
// run summary goes to stderr so stdout is clean JSON.
func runPlan(spec repro.Spec, plan analysis.Plan, reportPath string, opts repro.RunOptions, metricsFile string) {
	start := time.Now()
	res, err := repro.RunSpecWith(spec, opts)
	if err != nil {
		fatalRun(spec.Name, err)
	}
	elapsed := time.Since(start)
	records := len(res.Dataset.Records)
	if res.Frame != nil {
		records = res.Frame.Len() // streamed finalize: no []Record exists
	}
	perSec := 0.0
	if s := elapsed.Seconds(); s > 0 {
		perSec = float64(records) / s
	}
	eventsPerSec := 0.0
	if s := elapsed.Seconds(); s > 0 {
		eventsPerSec = float64(res.Engine.Executed) / s
	}
	log.Printf("scenario %s: simulated %d events in %v (%.0f events/s); %d records (%.0f records/s), %d distinct peers",
		spec.Name, res.Events, elapsed.Round(time.Millisecond), eventsPerSec,
		records, perSec, res.Dataset.DistinctPeers)
	if res.Aborted {
		log.Printf("campaign ABORTED at %s (sim time); the report covers only records collected before the abort",
			res.AbortedAt.Format("2006-01-02 15:04"))
	}

	rs, err := repro.ExecPlan(res, plan)
	if err != nil {
		log.Fatalf("%s: %v", spec.Name, err)
	}
	es := rs.ExecStats()
	log.Printf("executed queries: %s", strings.Join(rs.Names(), ", "))
	log.Printf("analysis: %d queries in %v on %d worker(s), %.0f%% utilization; critical path %v: %s",
		len(es.Queries), es.Wall.Round(time.Millisecond), es.Workers, 100*es.Utilization,
		es.CriticalPathWall.Round(time.Millisecond), strings.Join(es.CriticalPath, " → "))
	writeMetrics(metricsFile, opts.Metrics)
	data, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		log.Fatalf("encoding report: %v", err)
	}
	data = append(data, '\n')
	if reportPath == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			log.Fatalf("writing report: %v", err)
		}
		return
	}
	if err := os.WriteFile(reportPath, data, 0o644); err != nil {
		log.Fatalf("writing report: %v", err)
	}
	log.Printf("report written to %s", reportPath)
}

// runScenario executes one spec and prints a generic report: Table I
// and peer growth always, the group figures when the fleet has several
// members, the fault log when faults fired.
func runScenario(spec repro.Spec, outDir string, jsonl bool, opts repro.RunOptions, metricsFile string) {
	fmt.Printf("=== scenario %s (%d honeypot(s), %d server(s), %d workload(s), %d days, scale %g) ===\n",
		spec.Name, len(spec.Fleet), spec.Topology.Servers, len(spec.Workloads), spec.Days, spec.Scale)
	start := time.Now()
	res, err := repro.RunSpecWith(spec, opts)
	if err != nil {
		fatalRun(spec.Name, err)
	}
	records := len(res.Dataset.Records)
	if res.Frame != nil {
		records = res.Frame.Len() // streamed finalize: no []Record exists
	}
	summarizeRun(res, records, time.Since(start))
	writeMetrics(metricsFile, opts.Metrics)
	reportStore(res)
	reportExport(res)
	for _, f := range res.Faults {
		fmt.Printf("fault: %-18s %-12s at %s\n", f.Kind, f.Target, f.At.Format("2006-01-02 15:04"))
	}
	fmt.Println()

	var rep *repro.Report
	if res.Frame != nil {
		// Streamed finalize: the report derives from the frame built
		// while draining the pipeline — records never materialized.
		if rep, err = repro.AnalyzeStream(res); err != nil {
			log.Fatalf("%s: %v", spec.Name, err)
		}
	} else {
		rep = repro.Analyze(res)
	}
	fmt.Println("--- Table I ---")
	fmt.Println(rep.TableI)

	g := rep.PeerGrowth
	last := len(g.Cumulative) - 1
	fmt.Println("\n--- distinct peers over time ---")
	fmt.Printf("total peers: %d; new on last day: %d\n", g.Cumulative[last], g.New[last])
	fmt.Printf("new/day: %s\n", analysis.Sparkline(g.New))

	fmt.Println("\n--- HELLO per hour, first week ---")
	fmt.Printf("%s\n", analysis.Sparkline(rep.HourlyHello))
	fmt.Printf("peak %d/hour, total %d HELLOs in the window\n",
		slices.Max(rep.HourlyHello), sum(rep.HourlyHello))

	if len(res.HoneypotIDs) > 1 {
		fmt.Println("\n--- distinct peers by strategy group ---")
		printGroupFinal("HELLO", rep.HelloPeersByGroup)
		printGroupFinal("START-UPLOAD", rep.StartUploadPeersByGroup)
		printGroupFinal("REQUEST-PART", rep.RequestPartsByGroup)
	}
	fmt.Println()

	if outDir != "" {
		prefix := "scenario_" + spec.Name
		mustWrite(outDir, prefix+"_table1.txt", func(f *os.File) error {
			_, err := fmt.Fprintln(f, rep.TableI)
			return err
		})
		mustWrite(outDir, prefix+"_peer_growth.csv", func(f *os.File) error {
			return analysis.GrowthCSV(f, rep.PeerGrowth)
		})
		if jsonl {
			switch {
			case res.Frame == nil:
				mustWrite(outDir, prefix+"_dataset.jsonl", func(f *os.File) error {
					return logging.WriteJSONL(f, res.Dataset.Records)
				})
			case res.ExportDir != "":
				// Streamed finalize: the records live only in the export
				// store — stream them out without materializing.
				mustWrite(outDir, prefix+"_dataset.jsonl", func(f *os.File) error {
					store, err := logstore.Open(res.ExportDir, logstore.Options{})
					if err != nil {
						return err
					}
					defer store.Close()
					it, err := store.Iterator()
					if err != nil {
						return err
					}
					defer it.Close()
					_, err = logging.WriteJSONLIter(f, it)
					return err
				})
			default:
				log.Print("-jsonl ignored: a -stream run keeps no records; add -export DIR to persist the dataset")
			}
		}
	}
}

func printDistributed(res *repro.Result, rep *repro.Report) {
	fmt.Println("--- Table I (distributed column) ---")
	fmt.Println(rep.TableI)

	fmt.Println("\n--- Fig 2: distinct peers over time ---")
	g := rep.PeerGrowth
	last := len(g.Cumulative) - 1
	fmt.Printf("total peers: %d; new on last day: %d\n", g.Cumulative[last], g.New[last])
	fmt.Printf("new/day: %s\n", analysis.Sparkline(g.New))

	fmt.Println("\n--- Fig 4: HELLO per hour, first week ---")
	fmt.Printf("%s\n", analysis.Sparkline(rep.HourlyHello))
	fmt.Printf("peak %d/hour, total %d HELLOs in the window\n",
		slices.Max(rep.HourlyHello), sum(rep.HourlyHello))

	fmt.Println("\n--- Fig 5/6: distinct peers by strategy group ---")
	printGroupFinal("HELLO", rep.HelloPeersByGroup)
	printGroupFinal("START-UPLOAD", rep.StartUploadPeersByGroup)

	fmt.Println("\n--- Fig 7: REQUEST-PART messages by group ---")
	printGroupFinal("REQUEST-PART", rep.RequestPartsByGroup)

	fmt.Printf("\n--- Fig 8/9: busiest peer (#%s, %d queries) ---\n", rep.TopPeer, rep.TopPeerQueries)
	printGroupFinal("top-peer START-UPLOAD", rep.TopPeerStartUpload)
	printGroupFinal("top-peer REQUEST-PART", rep.TopPeerRequestParts)

	fmt.Println("\n--- Fig 10: peers vs number of honeypots (100 subsets) ---")
	u := rep.HoneypotSubsets
	for _, n := range []int{1, len(res.HoneypotIDs) / 2, len(res.HoneypotIDs)} {
		if i := indexOfN(u, n); i >= 0 {
			fmt.Printf("n=%2d: avg %.0f  min %d  max %d\n", n, u.Avg[i], u.Min[i], u.Max[i])
		}
	}
	fmt.Println()
}

func printGreedy(res *repro.Result, rep *repro.Report) {
	fmt.Println("--- Table I (greedy column) ---")
	fmt.Println(rep.TableI)

	fmt.Println("\n--- Fig 3: distinct peers over time ---")
	g := rep.PeerGrowth
	last := len(g.Cumulative) - 1
	fmt.Printf("total peers: %d; new on last day: %d (day 1 = init: %d)\n",
		g.Cumulative[last], g.New[last], g.New[0])
	fmt.Printf("new/day: %s\n", analysis.Sparkline(g.New))

	fmt.Println("\n--- Fig 11: peers vs number of random files ---")
	printSubsetSummary(rep.RandomFileSubsets)
	fmt.Println("\n--- Fig 12: peers vs number of popular files ---")
	printSubsetSummary(rep.PopularFileSubsets)

	ci := rep.CoInterest
	fmt.Println("\n--- Co-interest graph (paper §V future work) ---")
	fmt.Printf("peers %d, files %d, edges %d; %.1f files/peer, %.1f peers/file\n",
		ci.Peers, ci.Files, ci.Edges, ci.MeanFilesPerPeer, ci.MeanPeersPerFile)
	fmt.Printf("components %d, largest spans %d vertices (%.0f%% of the graph)\n",
		ci.Components, ci.LargestComponent,
		100*float64(ci.LargestComponent)/float64(ci.Peers+ci.Files))
	fmt.Println()
}

func printGroupFinal(label string, gs analysis.GroupSeries) {
	for _, g := range []string{"random-content", "no-content"} {
		if xs, ok := gs.Groups[g]; ok && len(xs) > 0 {
			fmt.Printf("%-24s %-15s final: %d\n", label, g+":", xs[len(xs)-1])
		}
	}
}

func printSubsetSummary(u stats.SubsetUnion) {
	if len(u.N) == 0 {
		fmt.Println("(no data)")
		return
	}
	for _, n := range []int{1, len(u.N) / 2, len(u.N)} {
		if i := indexOfN(u, n); i >= 0 {
			fmt.Printf("n=%3d: avg %.0f  min %d  max %d\n", u.N[i], u.Avg[i], u.Min[i], u.Max[i])
		}
	}
	lastAvg := u.Avg[len(u.Avg)-1]
	fmt.Printf("≈ %.0f new peers per additional file\n", lastAvg/float64(u.N[len(u.N)-1]))
}

func indexOfN(u stats.SubsetUnion, n int) int {
	for i, v := range u.N {
		if v == n {
			return i
		}
	}
	return -1
}

func writeDistributed(dir string, res *repro.Result, rep *repro.Report, jsonl bool) {
	mustWrite(dir, "table1_distributed.txt", func(f *os.File) error {
		_, err := fmt.Fprintln(f, rep.TableI)
		return err
	})
	mustWrite(dir, "fig02_peer_growth.csv", func(f *os.File) error {
		return analysis.GrowthCSV(f, rep.PeerGrowth)
	})
	mustWrite(dir, "fig04_hourly_hello.csv", func(f *os.File) error {
		rows := make([][]string, len(rep.HourlyHello))
		for i, v := range rep.HourlyHello {
			rows[i] = []string{fmt.Sprint(i), fmt.Sprint(v)}
		}
		return analysis.WriteCSV(f, []string{"hour", "hello"}, rows)
	})
	mustWrite(dir, "fig05_hello_peers_by_group.csv", func(f *os.File) error {
		return analysis.GroupCSV(f, rep.HelloPeersByGroup)
	})
	mustWrite(dir, "fig06_startupload_peers_by_group.csv", func(f *os.File) error {
		return analysis.GroupCSV(f, rep.StartUploadPeersByGroup)
	})
	mustWrite(dir, "fig07_requestpart_by_group.csv", func(f *os.File) error {
		return analysis.GroupCSV(f, rep.RequestPartsByGroup)
	})
	mustWrite(dir, "fig08_toppeer_startupload.csv", func(f *os.File) error {
		return analysis.GroupCSV(f, rep.TopPeerStartUpload)
	})
	mustWrite(dir, "fig09_toppeer_requestpart.csv", func(f *os.File) error {
		return analysis.GroupCSV(f, rep.TopPeerRequestParts)
	})
	mustWrite(dir, "fig10_honeypot_subsets.csv", func(f *os.File) error {
		return analysis.SubsetCSV(f, rep.HoneypotSubsets)
	})
	if jsonl {
		mustWrite(dir, "distributed_dataset.jsonl", func(f *os.File) error {
			return logging.WriteJSONL(f, res.Dataset.Records)
		})
	}
}

func writeGreedy(dir string, res *repro.Result, rep *repro.Report, jsonl bool) {
	mustWrite(dir, "table1_greedy.txt", func(f *os.File) error {
		_, err := fmt.Fprintln(f, rep.TableI)
		return err
	})
	mustWrite(dir, "fig03_peer_growth.csv", func(f *os.File) error {
		return analysis.GrowthCSV(f, rep.PeerGrowth)
	})
	mustWrite(dir, "fig11_random_files.csv", func(f *os.File) error {
		return analysis.SubsetCSV(f, rep.RandomFileSubsets)
	})
	mustWrite(dir, "fig12_popular_files.csv", func(f *os.File) error {
		return analysis.SubsetCSV(f, rep.PopularFileSubsets)
	})
	if jsonl {
		mustWrite(dir, "greedy_dataset.jsonl", func(f *os.File) error {
			return logging.WriteJSONL(f, res.Dataset.Records)
		})
	}
}

func mustWrite(dir, name string, fn func(*os.File) error) {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("creating %s: %v", path, err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		log.Fatalf("writing %s: %v", path, err)
	}
}

// sum totals a series (the stdlib has slices.Max but no slices.Sum).
func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
