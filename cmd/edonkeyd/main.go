// Command edonkeyd runs a real-TCP eDonkey directory server: the
// substrate honeypots sit on. It speaks the same protocol implementation
// the simulated campaigns use, over the operating system's TCP stack.
//
// Usage:
//
//	edonkeyd [-ip 127.0.0.1] [-port 4661] [-name my-server] [-status 30s]
package main

import (
	"flag"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"time"

	"repro/internal/livenet"
	"repro/internal/server"
)

func main() {
	log.SetFlags(log.Ltime)
	log.SetPrefix("edonkeyd: ")
	var (
		ip       = flag.String("ip", "127.0.0.1", "address to bind")
		port     = flag.Uint("port", 4661, "TCP port")
		name     = flag.String("name", "repro-server", "server display name")
		statusIv = flag.Duration("status", 30*time.Second, "status log interval (0 disables)")
		noProbe  = flag.Bool("no-probe", false, "assign high IDs without the callback probe")
	)
	flag.Parse()

	addr, err := netip.ParseAddr(*ip)
	if err != nil {
		log.Fatalf("bad -ip: %v", err)
	}
	host := livenet.NewHost(addr, time.Now().UnixNano())
	defer host.Close()

	cfg := server.DefaultConfig(*name)
	cfg.Port = uint16(*port)
	cfg.ProbeCallback = !*noProbe
	srv := server.New(host, cfg)

	errCh := make(chan error, 1)
	host.Post(func() {
		errCh <- srv.Start()
	})
	if err := <-errCh; err != nil {
		log.Fatalf("start: %v", err)
	}
	log.Printf("listening on %s", srv.Addr())

	if *statusIv > 0 {
		var tick func()
		tick = func() {
			st := srv.Stats()
			log.Printf("users=%d files=%d logins=%d getsources=%d searches=%d",
				srv.Users(), srv.FilesIndexed(), st.Logins, st.GetSources, st.Searches)
			host.After(*statusIv, tick)
		}
		host.Post(func() { host.After(*statusIv, tick) })
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("shutting down")
}
