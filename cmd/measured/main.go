// Command measured is the campaign service plane: a long-running
// daemon that executes measurement campaigns submitted over HTTP,
// tracks them in a persistent run store, streams live progress as SSE
// and serves on-demand analysis against each run's logstore-resident
// dataset. See docs/SERVICE.md for the API reference.
//
// Usage:
//
//	measured -addr 127.0.0.1:8080 -data /var/lib/measured
//
// Submit a campaign and watch it:
//
//	curl -X POST localhost:8080/runs -d '{"scenario":"flash-crowd","scale":0.1}'
//	curl -N localhost:8080/runs/flash-crowd-000001/events
//	curl -X POST localhost:8080/runs/flash-crowd-000001/query
//
// Rerun it, or calibrate it against the paper's observed dataset
// (see docs/CALIBRATION.md):
//
//	curl -X POST localhost:8080/runs/flash-crowd-000001/rerun
//	curl -X POST localhost:8080/runs/distributed-000001/calibrate
//
// Or drive it end to end with cmd/measure:
//
//	measure -submit http://localhost:8080 -scenario flash-crowd -scale 0.1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/svc"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	dataDir := flag.String("data", "measured-data", "run store root directory")
	workers := flag.Int("workers", 2, "concurrent campaign workers")
	queueDepth := flag.Int("queue", 256, "accepted-but-not-started run capacity")
	simEvery := flag.Duration("sim-every", 0, "progress cadence in virtual time (0 = engine default, one virtual hour)")
	wallEvery := flag.Duration("wall-every", 200*time.Millisecond, "wall-clock progress throttle (negative disables)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("measured: ")

	service, err := svc.Open(svc.Config{
		DataDir:    *dataDir,
		Workers:    *workers,
		QueueDepth: *queueDepth,
		SimEvery:   *simEvery,
		WallEvery:  *wallEvery,
		Logf:       log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	srv := &http.Server{Handler: svc.Handler(service)}
	log.Printf("serving on http://%s (run store: %s, %d workers)", ln.Addr(), *dataDir, *workers)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("%s: draining (in-flight campaigns abort into partial results)", s)
	case err := <-done:
		log.Printf("serve: %v", err)
	}

	// Drain the campaigns first: aborting them closes their notifiers,
	// which ends the open SSE streams, so the HTTP shutdown that follows
	// isn't stuck waiting on event handlers.
	if err := service.Close(); err != nil {
		log.Printf("close: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	log.Printf("stopped")
}
