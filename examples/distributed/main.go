// Distributed: a scaled-down run of the paper's distributed measurement.
//
// 24 honeypots sit on one large (simulated) directory server for 32
// virtual days, all advertising the same four files — a movie, a song, a
// Linux distribution and a text. Twelve answer REQUEST-PART with random
// content, twelve stay silent. The output reproduces the distributed
// column of Table I and summarizes Figures 2 and 4-10.
//
// Run with: go run ./examples/distributed [-scale 0.02]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/analysis"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 0.02, "arrival intensity scale (1.0 = paper magnitudes)")
	flag.Parse()

	cfg := repro.ScaledDistributed(*scale)
	fmt.Printf("running the distributed campaign: %d honeypots, %d days, scale %g ...\n",
		cfg.Honeypots, cfg.Days, *scale)

	t0 := time.Now()
	res, err := repro.RunDistributed(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done: %d simulation events in %v\n\n", res.Events, time.Since(t0).Round(time.Millisecond))

	rep := repro.Analyze(res)

	fmt.Println("Table I (distributed):")
	fmt.Println(rep.TableI)

	fmt.Println("\nFig 2 — distinct peers over time:")
	g := rep.PeerGrowth
	fmt.Printf("  cumulative: %s (final %d)\n", analysis.Sparkline(g.Cumulative), g.Cumulative[len(g.Cumulative)-1])
	fmt.Printf("  new/day:    %s (day 1: %d, last day: %d)\n",
		analysis.Sparkline(g.New), g.New[0], g.New[len(g.New)-1])

	fmt.Println("\nFig 4 — HELLO per hour (first week, note the day-night wave):")
	fmt.Printf("  %s\n", analysis.Sparkline(rep.HourlyHello))

	final := func(gs map[string][]int, k string) int {
		xs := gs[k]
		if len(xs) == 0 {
			return 0
		}
		return xs[len(xs)-1]
	}
	fmt.Println("\nFigs 5-7 — strategy comparison (random-content vs no-content):")
	fmt.Printf("  distinct peers (HELLO):        %6d vs %6d\n",
		final(rep.HelloPeersByGroup.Groups, "random-content"), final(rep.HelloPeersByGroup.Groups, "no-content"))
	fmt.Printf("  distinct peers (START-UPLOAD): %6d vs %6d\n",
		final(rep.StartUploadPeersByGroup.Groups, "random-content"), final(rep.StartUploadPeersByGroup.Groups, "no-content"))
	fmt.Printf("  REQUEST-PART messages:         %6d vs %6d\n",
		final(rep.RequestPartsByGroup.Groups, "random-content"), final(rep.RequestPartsByGroup.Groups, "no-content"))

	fmt.Printf("\nFigs 8-9 — busiest peer (#%s, %d queries):\n", rep.TopPeer, rep.TopPeerQueries)
	fmt.Printf("  its START-UPLOADs:  %6d vs %6d\n",
		final(rep.TopPeerStartUpload.Groups, "random-content"), final(rep.TopPeerStartUpload.Groups, "no-content"))
	fmt.Printf("  its REQUEST-PARTs:  %6d vs %6d\n",
		final(rep.TopPeerRequestParts.Groups, "random-content"), final(rep.TopPeerRequestParts.Groups, "no-content"))

	fmt.Println("\nFig 10 — peers observed vs number of honeypots (100 random subsets):")
	u := rep.HoneypotSubsets
	for _, n := range []int{1, 4, 8, 12, 16, 20, 24} {
		for i := range u.N {
			if u.N[i] == n {
				fmt.Printf("  n=%2d: avg %6.0f   [min %6d, max %6d]\n", n, u.Avg[i], u.Min[i], u.Max[i])
			}
		}
	}
	fmt.Println("\nAs in the paper: adding honeypots keeps helping, with decreasing returns.")
}
