// Quickstart: a complete honeypot measurement on real TCP, in-process.
//
// It starts a directory server and one honeypot on 127.0.0.1, points the
// manager's control plane at the honeypot, then plays three scripted
// eDonkey peers against it: each logs into the server, asks GET-SOURCES
// for the bait file, connects to the honeypot, and runs the paper's
// Fig. 1 exchange (HELLO → START-UPLOAD → REQUEST-PART). Finally the
// manager collects and unifies the log and prints the anonymized records.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"repro/internal/client"
	"repro/internal/control"
	"repro/internal/ed2k"
	"repro/internal/honeypot"
	"repro/internal/livenet"
	"repro/internal/manager"
	"repro/internal/server"
	"repro/internal/wire"
)

// Distinct loopback addresses: eDonkey identifies peers by IP (the high
// clientID IS the IPv4 address), so every actor needs its own.
var (
	serverIP   = netip.MustParseAddr("127.0.0.1")
	honeypotIP = netip.MustParseAddr("127.0.0.2")
	managerIP  = netip.MustParseAddr("127.0.0.3")
)

func peerIP(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{127, 0, 1, byte(10 + i)})
}

func main() {
	log.SetFlags(0)

	// --- Directory server ----------------------------------------------
	srvHost := livenet.NewHost(serverIP, 1)
	defer srvHost.Close()
	done := make(chan error, 1)
	srvHost.Post(func() {
		cfg := server.DefaultConfig("quickstart-server")
		cfg.Port = 14661
		done <- server.New(srvHost, cfg).Start()
	})
	must(<-done)
	serverAddr := netip.AddrPortFrom(serverIP, 14661)
	fmt.Printf("directory server on %s\n", serverAddr)

	// --- Honeypot + control agent --------------------------------------
	hpHost := livenet.NewHost(honeypotIP, 2)
	defer hpHost.Close()
	hpHost.Post(func() {
		hp := honeypot.New(hpHost, honeypot.Config{
			ID:             "hp-00",
			Strategy:       honeypot.RandomContent,
			Port:           14662,
			Secret:         []byte("quickstart-secret"),
			BrowseContacts: true,
		})
		if err := hp.Client().Listen(); err != nil {
			done <- err
			return
		}
		_, err := control.NewAgent(hpHost, hp, 14700)
		done <- err
	})
	must(<-done)
	fmt.Println("honeypot hp-00 (random-content) on 127.0.0.2:14662, control on :14700")

	// --- Manager: place the honeypot, advertise the bait ----------------
	bait := client.SharedFile{
		Hash: ed2k.SyntheticHash("quickstart-bait"),
		Name: "quickstart.movie.2008.avi",
		Size: 734003200,
		Type: "Video",
	}
	fmt.Printf("bait file: %s\n", ed2k.Link{Name: bait.Name, Size: bait.Size, Hash: bait.Hash})

	mgrHost := livenet.NewHost(managerIP, 3)
	defer mgrHost.Close()
	mgr := manager.New(mgrHost, manager.DefaultConfig())
	linkCh := make(chan *control.Link, 1)
	mgrHost.Post(func() {
		control.Dial(mgrHost, "hp-00", netip.AddrPortFrom(honeypotIP, 14700), func(l *control.Link, err error) {
			must(err)
			linkCh <- l
		})
	})
	link := <-linkCh
	mgrHost.Post(func() {
		mgr.Add(link, manager.Assignment{Server: serverAddr, Files: []client.SharedFile{bait}})
	})
	// Wait until the honeypot reports a live server session.
	for i := 0; i < 50; i++ {
		time.Sleep(100 * time.Millisecond)
		stCh := make(chan honeypot.Status, 1)
		mgrHost.Post(func() {
			link.Status(func(st honeypot.Status, err error) {
				must(err)
				stCh <- st
			})
		})
		if st := <-stCh; st.Connected && st.Advertised > 0 {
			fmt.Printf("honeypot placed: clientID=%d highID=%v advertising %d file(s)\n",
				st.ClientID, st.HighID, st.Advertised)
			break
		}
	}

	// --- Three scripted peers ------------------------------------------
	for i := 0; i < 3; i++ {
		runPeer(i, serverAddr, bait)
	}
	time.Sleep(500 * time.Millisecond)

	// --- Collect, unify, print -----------------------------------------
	dsCh := make(chan *manager.Dataset, 1)
	mgrHost.Post(func() {
		mgr.Finalize(func(ds *manager.Dataset, err error) {
			must(err)
			dsCh <- ds
		})
	})
	ds := <-dsCh
	fmt.Printf("\ncollected %d records from %d distinct peers (anonymized):\n",
		len(ds.Records), ds.DistinctPeers)
	for _, r := range ds.Records {
		name := r.FileName
		if name == "" && len(r.Files) > 0 {
			name = fmt.Sprintf("[shared list: %d files]", len(r.Files))
		}
		fmt.Printf("  %s  %-12s peer=%s port=%-5d highID=%-5v client=%q %s\n",
			r.Time.Format("15:04:05.000"), r.Kind, r.PeerIP, r.PeerPort, r.HighID, r.PeerName, name)
	}
}

// runPeer performs one full peer contact and blocks until it finishes.
func runPeer(i int, serverAddr netip.AddrPort, bait client.SharedFile) {
	host := livenet.NewHost(peerIP(i), int64(100+i))
	defer host.Close()
	finished := make(chan struct{})

	host.Post(func() {
		peer := client.New(host, client.Config{
			Label:    fmt.Sprintf("peer-%d", i),
			UserHash: ed2k.NewUserHash(fmt.Sprintf("quickstart-peer-%d", i)),
			Name:     "aMule 2.2.2",
			Port:     uint16(15000 + i),
		})
		if err := peer.Listen(); err != nil {
			log.Fatalf("peer %d listen: %v", i, err)
		}
		peer.ConnectServer(serverAddr, client.ServerHooks{
			OnConnected: func(id ed2k.ClientID) {
				fmt.Printf("peer-%d logged in as %v, asking for sources\n", i, id)
				peer.GetSources(bait.Hash)
			},
			OnSources: func(h ed2k.Hash, sources []wire.Endpoint) {
				if len(sources) == 0 {
					fmt.Printf("peer-%d: no sources!\n", i)
					close(finished)
					return
				}
				target := sources[0].AddrPort()
				fmt.Printf("peer-%d found %d source(s), contacting %s\n", i, len(sources), target)
				peer.DialPeer(target, func(ps *client.PeerSession, err error) {
					if err != nil {
						log.Fatalf("peer %d dial honeypot: %v", i, err)
					}
					ps.SetHooks(client.PeerHooks{
						OnAcceptUpload: func() {
							ps.RequestParts(bait.Hash, [2]uint32{0, 184320})
						},
						OnSendingPart: func(p *wire.SendingPart) {
							fmt.Printf("peer-%d got %d bytes of \"content\" (junk!)\n", i, len(p.Data))
							ps.Close()
							close(finished)
						},
					})
					ps.SendHello()
					ps.StartUpload(bait.Hash)
				})
			},
		})
	})

	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		log.Fatalf("peer %d timed out", i)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
