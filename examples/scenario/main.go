// Scenario: compose a campaign the paper never ran, as plain data.
//
// This example builds a custom spec — a two-server federation with a
// mixed-strategy fleet, a steady population, a weekend flash crowd and
// one server outage — runs it through the generic scenario engine, and
// prints the spec's JSON alongside the results. Everything here could
// equally live in a .json file and run via:
//
//	go run ./cmd/measure -scenario-file spec.json
//
// Run with: go run ./examples/scenario [-scale 0.02]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/analysis"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 0.02, "arrival intensity scale (1.0 = paper magnitudes)")
	flag.Parse()

	spec := repro.Spec{
		Name:     "weekend-rush",
		Seed:     42,
		Days:     7,
		Scale:    *scale,
		Catalog:  repro.DefaultDistributed().Catalog,
		Topology: scenario.Topology{Servers: 2},
		Fleet: []scenario.HoneypotSpec{
			{ID: "hp-a", Strategy: "random-content", Server: 0, Files: scenario.FilesSpec{Kind: "four-bait"}, BrowseContacts: true},
			{ID: "hp-b", Strategy: "no-content", Server: 0, Files: scenario.FilesSpec{Kind: "four-bait"}, BrowseContacts: true},
			{ID: "hp-c", Strategy: "random-content", Server: 1, Files: scenario.FilesSpec{Kind: "four-bait"}, BrowseContacts: true},
			{ID: "hp-d", Strategy: "no-content", Server: 1, Files: scenario.FilesSpec{Kind: "four-bait"}, BrowseContacts: true},
		},
		Workloads: []scenario.WorkloadSpec{
			{
				Label:          "steady-pop",
				ArrivalsPerDay: 4000,
				DecayPerDay:    0.99,
				LibraryMean:    8,
				LibraryRegion:  30_000,
				Servers:        []int{0, 1},
				Targets:        scenario.TargetsSpec{Kind: "static", Weights: []float64{0.45, 0.30, 0.15, 0.10}},
			},
			{
				Label:          "weekend-crowd",
				ArrivalsPerDay: 25_000,
				StartOffset:    scenario.Duration(4 * 24 * time.Hour),
				EndOffset:      scenario.Duration(6 * 24 * time.Hour),
				LibraryMean:    8,
				LibraryRegion:  30_000,
				Servers:        []int{0, 1},
				Targets:        scenario.TargetsSpec{Kind: "static", Weights: []float64{0.7, 0.3}},
			},
		},
		Faults: scenario.FaultSchedule{{
			Kind:     scenario.FaultServerOutage,
			Server:   1,
			At:       scenario.Duration(2 * 24 * time.Hour),
			Downtime: scenario.Duration(5 * time.Hour),
		}},
		Collection: scenario.Collection{Every: scenario.Duration(time.Hour)},
	}

	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the campaign as data (%d bytes of JSON):\n%s\n\n", len(data), data)

	t0 := time.Now()
	res, err := repro.RunSpec(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done: %d simulation events in %v\n\n", res.Events, time.Since(t0).Round(time.Millisecond))

	for _, f := range res.Faults {
		fmt.Printf("fault: %-15s %-10s at %s\n", f.Kind, f.Target, f.At.Format("Mon 15:04"))
	}
	fmt.Printf("\n%d records from %d distinct peers across %d honeypots\n",
		len(res.Dataset.Records), res.Dataset.DistinctPeers, len(res.HoneypotIDs))
	for i, ws := range res.WorkloadStats {
		fmt.Printf("workload %q: %d arrivals, %d contacts\n",
			spec.Workloads[i].Label, ws.Arrivals, ws.Contacts)
	}

	rep := repro.Analyze(res)
	g := rep.PeerGrowth
	fmt.Printf("\nnew peers per day (watch the weekend): %s\n", analysis.Sparkline(g.New))
	fmt.Printf("total distinct peers: %d\n", g.Cumulative[len(g.Cumulative)-1])
}
