// Greedy: a scaled-down run of the paper's greedy measurement.
//
// A single honeypot starts with three seed files. During its first day it
// asks every contacting peer for its shared-file list and re-advertises
// every file it sees; after the day it freezes the list and just records
// queries for 15 virtual days. The output reproduces the greedy column of
// Table I and Figures 3, 11 and 12.
//
// Run with: go run ./examples/greedy [-scale 0.02]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/analysis"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 0.02, "arrival intensity scale (1.0 = paper magnitudes)")
	flag.Parse()

	cfg := repro.ScaledGreedy(*scale)
	fmt.Printf("running the greedy campaign: 1 honeypot, %d days, adoption cap %d, scale %g ...\n",
		cfg.Days, cfg.MaxAdopted, *scale)

	t0 := time.Now()
	res, err := repro.RunGreedy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done: %d simulation events in %v\n\n", res.Events, time.Since(t0).Round(time.Millisecond))

	hp := res.HoneypotStats["hp-greedy"]
	fmt.Printf("the honeypot adopted %d files from harvested shared lists\n", hp.Adopted)
	fmt.Printf("and retrieved %d shared lists in total\n\n", hp.SharedLists)

	rep := repro.Analyze(res)

	fmt.Println("Table I (greedy):")
	fmt.Println(rep.TableI)

	fmt.Println("\nFig 3 — distinct peers over time (note the tiny first day: the")
	fmt.Println("honeypot spends it building its shared list):")
	g := rep.PeerGrowth
	fmt.Printf("  cumulative: %s (final %d)\n", analysis.Sparkline(g.Cumulative), g.Cumulative[len(g.Cumulative)-1])
	fmt.Printf("  new/day:    %s (day 1: %d, steady: ~%d)\n",
		analysis.Sparkline(g.New), g.New[0], g.New[len(g.New)-1])

	fmt.Println("\nFig 11 — peers vs number of advertised files (random subset):")
	printSubset(rep.RandomFileSubsets.N, rep.RandomFileSubsets.Avg, rep.RandomFileSubsets.Min, rep.RandomFileSubsets.Max)

	fmt.Println("\nFig 12 — peers vs number of advertised files (most popular files):")
	printSubset(rep.PopularFileSubsets.N, rep.PopularFileSubsets.Avg, rep.PopularFileSubsets.Min, rep.PopularFileSubsets.Max)

	fmt.Println("\nAs in the paper: the number of observed peers grows roughly linearly")
	fmt.Println("with the number of advertised files, and popular files attract far")
	fmt.Println("more peers than random ones.")
}

func printSubset(n []int, avg []float64, min, max []int) {
	if len(n) == 0 {
		fmt.Println("  (no data)")
		return
	}
	for _, want := range []int{1, len(n) / 4, len(n) / 2, 3 * len(n) / 4, len(n)} {
		for i := range n {
			if n[i] == want {
				fmt.Printf("  n=%3d: avg %7.0f   [min %6d, max %6d]\n", n[i], avg[i], min[i], max[i])
			}
		}
	}
	last := len(n) - 1
	fmt.Printf("  ≈ %.0f peers per additional file\n", avg[last]/float64(n[last]))
}
