// Targeted: the paper's future-work scenario — "capture all the activity
// regarding a particular set of files and/or a specific keyword".
//
// The manager searches the catalog for files whose names contain a
// keyword, advertises exactly those on a small fleet, and reports
// per-file and per-keyword observation statistics. This demonstrates the
// advertisement-strategy flexibility the paper's §III-A describes (the
// manager "is in charge of implementing the chosen strategy", e.g.
// "study the activity on a specific topic by choosing files accordingly").
//
// Run with: go run ./examples/targeted [-keyword <word>] [-days 6]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/catalog"
	"repro/internal/client"
	"repro/internal/des"
	"repro/internal/honeypot"
	"repro/internal/logging"
	"repro/internal/manager"
	"repro/internal/netsim"
	"repro/internal/peersim"
	"repro/internal/server"
)

var start = time.Date(2008, 11, 20, 0, 0, 0, 0, time.UTC)

func main() {
	log.SetFlags(0)
	var (
		keyword   = flag.String("keyword", "", "topic keyword (default: the catalog's most common word)")
		days      = flag.Int("days", 6, "measurement duration in virtual days")
		honeypots = flag.Int("honeypots", 3, "fleet size")
	)
	flag.Parse()

	cat := catalog.Generate(catalog.Config{NumFiles: 50_000, Vocabulary: 3_000, PopularityExp: 0.9, Seed: 11})

	kw := *keyword
	if kw == "" {
		kw = mostCommonWord(cat)
	}
	topic := filesMatching(cat, kw)
	if len(topic) == 0 {
		log.Fatalf("no catalog file matches keyword %q", kw)
	}
	if len(topic) > 40 {
		topic = topic[:40]
	}
	fmt.Printf("topic %q: advertising %d matching files on %d honeypots for %d days\n\n",
		kw, len(topic), *honeypots, *days)

	// --- world -----------------------------------------------------------
	loop := des.NewLoop(start, 17)
	nw := netsim.New(loop, netsim.DefaultConfig())
	srv := server.New(nw.NewHost("server"), server.DefaultConfig("topic-server"))
	must(srv.Start())
	mgr := manager.New(nw.NewHost("manager"), manager.DefaultConfig())

	shared := make([]client.SharedFile, len(topic))
	targets := make([]peersim.TargetFile, len(topic))
	for i, f := range topic {
		shared[i] = client.SharedFile{Hash: f.Hash, Name: f.Name, Size: f.Size, Type: f.Kind.String()}
		targets[i] = peersim.TargetFile{Hash: f.Hash, Name: f.Name, Size: f.Size, Weight: f.Weight}
	}

	var hps []*honeypot.Honeypot
	assignments := manager.SameServer(srv.Addr(), shared, *honeypots)
	for i := 0; i < *honeypots; i++ {
		id := fmt.Sprintf("topic-hp-%d", i)
		strat := honeypot.RandomContent
		if i%2 == 1 {
			strat = honeypot.NoContent
		}
		hp := honeypot.New(nw.NewHost(id), honeypot.Config{
			ID: id, Strategy: strat, Port: 4662, Secret: []byte("topic-secret"), BrowseContacts: true,
		})
		must(hp.Client().Listen())
		mgr.Add(manager.NewLocalHandle(id, hp, mgr.Host()), assignments[i])
		hps = append(hps, hp)
	}
	mgr.Start()
	loop.RunUntil(start.Add(5 * time.Minute))

	pcfg := peersim.DefaultConfig()
	pcfg.Label = "topic-pop"
	pcfg.Server = srv.Addr()
	pcfg.Start = start
	pcfg.End = start.Add(time.Duration(*days) * 24 * time.Hour)
	// ≈8 arriving peers per topic file per day, spread by popularity.
	pcfg.ArrivalsPerWeightPerDay = 8 * float64(len(targets)) / sumWeights(targets)
	pcfg.Catalog = cat
	pcfg.Targets = func() []peersim.TargetFile { return targets }
	pcfg.RefreshTargets = 0
	pop := peersim.New(nw, pcfg)
	pop.Start()

	loop.RunUntil(pcfg.End)
	pop.Stop()

	var ds *manager.Dataset
	mgr.Finalize(func(d *manager.Dataset, err error) { must(err); ds = d })
	loop.RunUntil(pcfg.End.Add(time.Hour))

	// --- report ----------------------------------------------------------
	fmt.Printf("observed %d distinct peers interested in topic %q\n", ds.DistinctPeers, kw)
	growth := analysis.PeerGrowth(ds.Records, start, *days)
	fmt.Printf("peers/day: %s\n\n", analysis.Sparkline(growth.New))

	ranked := analysis.QueriedFiles(ds.Records)
	names := map[string]string{}
	for _, f := range topic {
		names[f.Hash.String()] = f.Name
	}
	fmt.Println("most contacted topic files:")
	for i, fp := range ranked {
		if i >= 8 {
			break
		}
		fmt.Printf("  %3d peers  %s\n", fp.Peers, names[fp.Hash.String()])
	}

	// Which fraction of the topic did the fleet actually observe activity
	// for? (The paper: covering all activity for a topic is hard.)
	fmt.Printf("\ntopic coverage: %d of %d advertised topic files received queries (%.0f%%)\n",
		len(ranked), len(topic), 100*float64(len(ranked))/float64(len(topic)))

	kinds := map[logging.Kind]int{}
	for _, r := range ds.Records {
		kinds[r.Kind]++
	}
	fmt.Printf("message mix: %d HELLO, %d START-UPLOAD, %d REQUEST-PART, %d shared lists\n",
		kinds[logging.KindHello], kinds[logging.KindStartUpload],
		kinds[logging.KindRequestPart], kinds[logging.KindSharedList])
}

// mostCommonWord scans catalog names for the most frequent word.
func mostCommonWord(cat *catalog.Catalog) string {
	freq := map[string]int{}
	for i := 0; i < cat.Len(); i++ {
		for _, w := range strings.FieldsFunc(cat.File(i).Name, func(r rune) bool {
			return !(r >= 'a' && r <= 'z')
		}) {
			if len(w) >= 4 {
				freq[w]++
			}
		}
	}
	type wf struct {
		w string
		n int
	}
	all := make([]wf, 0, len(freq))
	for w, n := range freq {
		all = append(all, wf{w, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].w < all[j].w
	})
	return all[0].w
}

func filesMatching(cat *catalog.Catalog, kw string) []catalog.File {
	var out []catalog.File
	for i := 0; i < cat.Len(); i++ {
		f := cat.File(i)
		if strings.Contains(f.Name, kw) {
			out = append(out, f)
		}
	}
	return out
}

func sumWeights(ts []peersim.TargetFile) float64 {
	s := 0.0
	for _, t := range ts {
		s += t.Weight
	}
	if s <= 0 {
		return 1
	}
	return s
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
