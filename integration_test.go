package repro_test

import (
	"fmt"
	"net/netip"
	"strconv"
	"testing"
	"time"

	"repro"
	"repro/internal/analysis"
	"repro/internal/anonymize"
	"repro/internal/catalog"
	"repro/internal/client"
	"repro/internal/control"
	"repro/internal/ed2k"
	"repro/internal/honeypot"
	"repro/internal/livenet"
	"repro/internal/logging"
	"repro/internal/manager"
	"repro/internal/server"
	"repro/internal/wire"
)

// smallDistributed is large enough for every figure to be meaningful but
// runs in a couple of seconds.
func smallDistributed() repro.DistributedConfig {
	cfg := repro.ScaledDistributed(0.01)
	cfg.Catalog = catalog.Config{NumFiles: 10_000, Vocabulary: 1_000, PopularityExp: 0.9, Seed: 1}
	cfg.LibraryRegion = 3_000
	return cfg
}

func smallGreedy() repro.GreedyConfig {
	cfg := repro.ScaledGreedy(0.01)
	cfg.Catalog = catalog.Config{NumFiles: 10_000, Vocabulary: 1_000, PopularityExp: 0.9, Seed: 2}
	return cfg
}

// TestDistributedCampaignShape checks the qualitative claims of the
// paper's evaluation on a scaled distributed campaign.
func TestDistributedCampaignShape(t *testing.T) {
	res, err := repro.RunDistributed(smallDistributed())
	if err != nil {
		t.Fatal(err)
	}
	rep := repro.Analyze(res)

	// Fig 2: distinct peers grow every day and keep growing at the end.
	g := rep.PeerGrowth
	for d, n := range g.New {
		if n == 0 {
			t.Errorf("day %d discovered no new peers", d)
		}
	}
	lastDays := g.New[len(g.New)-3:]
	for _, n := range lastDays {
		if n == 0 {
			t.Error("growth stalled before the end: long measurements must stay useful")
		}
	}

	// Fig 2: interest decays — the first week discovers more than the last.
	firstWeek, lastWeek := 0, 0
	for i := 0; i < 7; i++ {
		firstWeek += g.New[i]
		lastWeek += g.New[len(g.New)-1-i]
	}
	if firstWeek <= lastWeek {
		t.Errorf("no decay: first week %d vs last week %d", firstWeek, lastWeek)
	}

	// Fig 4: day-night effect in hourly HELLO counts.
	day, night := 0, 0
	for h, v := range rep.HourlyHello {
		hour := h % 24
		if hour >= 11 && hour < 19 {
			day += v
		} else if hour < 5 || hour >= 23 {
			night += v
		}
	}
	if float64(day)/8 <= float64(night)/6 {
		t.Errorf("no day-night wave: day=%d night=%d", day, night)
	}

	// Figs 5-7: random-content wins on every metric.
	finalOf := func(gs analysis.GroupSeries, g string) int {
		xs := gs.Groups[g]
		if len(xs) == 0 {
			return 0
		}
		return xs[len(xs)-1]
	}
	rcHello := finalOf(rep.HelloPeersByGroup, "random-content")
	ncHello := finalOf(rep.HelloPeersByGroup, "no-content")
	if rcHello < ncHello {
		t.Errorf("Fig 5 inverted: random-content %d < no-content %d", rcHello, ncHello)
	}
	rcRP := finalOf(rep.RequestPartsByGroup, "random-content")
	ncRP := finalOf(rep.RequestPartsByGroup, "no-content")
	if rcRP <= ncRP {
		t.Errorf("Fig 7 inverted: random-content %d <= no-content %d", rcRP, ncRP)
	}
	// The paper's ratio is ~1.27; ours should stay within a sane band.
	ratio := float64(rcRP) / float64(ncRP)
	if ratio > 4 {
		t.Errorf("Fig 7 ratio %0.1f implausibly extreme", ratio)
	}

	// Figs 8-9: the busiest peer also favours random-content.
	if finalOf(rep.TopPeerStartUpload, "random-content") <= finalOf(rep.TopPeerStartUpload, "no-content") {
		t.Error("Fig 8 inverted")
	}
	if finalOf(rep.TopPeerRequestParts, "random-content") <= finalOf(rep.TopPeerRequestParts, "no-content") {
		t.Error("Fig 9 inverted")
	}

	// Fig 10: monotone concave growth with meaningful spread at n=1.
	u := rep.HoneypotSubsets
	for i := 1; i < len(u.Avg); i++ {
		if u.Avg[i] < u.Avg[i-1] {
			t.Errorf("Fig 10 avg not monotone at n=%d", u.N[i])
		}
	}
	i1 := -1
	for i, n := range u.N {
		if n == 1 {
			i1 = i
		}
	}
	if i1 < 0 || u.Max[i1] < u.Min[i1]*3/2 {
		t.Errorf("Fig 10 n=1 spread too narrow: min=%d max=%d", u.Min[i1], u.Max[i1])
	}
	// Marginal benefit decreases: the first half of honeypots adds more
	// than the second half.
	mid := len(u.Avg) / 2
	firstHalf := u.Avg[mid] - u.Avg[0]
	secondHalf := u.Avg[len(u.Avg)-1] - u.Avg[mid]
	if firstHalf <= secondHalf {
		t.Errorf("Fig 10 not concave: first half adds %.0f, second %.0f", firstHalf, secondHalf)
	}

	// Privacy: the merged dataset passes the audit and carries no raw IPs.
	if err := anonymize.Audit(res.Dataset.Records); err != nil {
		t.Errorf("audit: %v", err)
	}
	for _, r := range res.Dataset.Records[:10] {
		if _, err := strconv.Atoi(r.PeerIP); err != nil {
			t.Fatalf("PeerIP %q not renumbered", r.PeerIP)
		}
	}
}

// TestGreedyCampaignShape checks the greedy measurement's claims.
func TestGreedyCampaignShape(t *testing.T) {
	cfg := smallGreedy()
	res, err := repro.RunGreedy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := repro.Analyze(res)
	g := rep.PeerGrowth

	// Fig 3: the first day is the init phase — far below steady state.
	steady := 0
	for _, n := range g.New[len(g.New)-5:] {
		steady += n
	}
	steady /= 5
	if g.New[0] >= steady/3 {
		t.Errorf("day 1 (%d) should be far below steady state (%d)", g.New[0], steady)
	}
	// After init, discovery is roughly stable (within 3x band).
	for d := 3; d < len(g.New); d++ {
		if g.New[d] < steady/3 || g.New[d] > steady*3 {
			t.Errorf("day %d rate %d far from steady %d", d, g.New[d], steady)
		}
	}

	// Adoption grew the advertised list to the cap.
	if len(res.Advertised) != cfg.MaxAdopted {
		t.Errorf("advertised %d files, want cap %d", len(res.Advertised), cfg.MaxAdopted)
	}

	// Table I: greedy sees many more peers and files than its seed count.
	if rep.TableI.DistinctFiles < 1000 {
		t.Errorf("distinct files %d implausibly low", rep.TableI.DistinctFiles)
	}
	if rep.TableI.SpaceBytes <= 0 {
		t.Error("space accounting empty")
	}

	// Figs 11-12: linear-ish growth; popular files beat random files.
	ru, pu := rep.RandomFileSubsets, rep.PopularFileSubsets
	if len(ru.N) == 0 || len(pu.N) == 0 {
		t.Fatal("file subset estimates missing")
	}
	if pu.Avg[len(pu.Avg)-1] < ru.Avg[len(ru.Avg)-1] {
		t.Errorf("popular files (%0.f) attract fewer peers than random (%0.f)",
			pu.Avg[len(pu.Avg)-1], ru.Avg[len(ru.Avg)-1])
	}
	for i := 1; i < len(ru.Avg); i++ {
		if ru.Avg[i] < ru.Avg[i-1] {
			t.Error("Fig 11 not monotone")
			break
		}
	}
}

// TestLiveControlPlaneEndToEnd exercises the real-TCP deployment path:
// edonkeyd-equivalent server, two honeypotd-equivalent honeypots with
// control agents, a manager driving them over TCP, and scripted peers.
func TestLiveControlPlaneEndToEnd(t *testing.T) {
	mk := func(b byte) netip.Addr { return netip.AddrFrom4([4]byte{127, 0, 2, b}) }

	// Server.
	srvHost := livenet.NewHost(mk(1), 1)
	defer srvHost.Close()
	errCh := make(chan error, 1)
	srvHost.Post(func() {
		cfg := server.DefaultConfig("it-server")
		cfg.Port = 24661
		errCh <- server.New(srvHost, cfg).Start()
	})
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	serverAddr := netip.AddrPortFrom(mk(1), 24661)

	// Two honeypots with control agents.
	var hpHosts []*livenet.Host
	for i := 0; i < 2; i++ {
		host := livenet.NewHost(mk(byte(10+i)), int64(10+i))
		defer host.Close()
		hpHosts = append(hpHosts, host)
		i := i
		host.Post(func() {
			strat := honeypot.RandomContent
			if i == 1 {
				strat = honeypot.NoContent
			}
			hp := honeypot.New(host, honeypot.Config{
				ID: fmt.Sprintf("it-hp-%d", i), Strategy: strat, Port: 24662,
				Secret: []byte("it-secret"), BrowseContacts: true,
			})
			if err := hp.Client().Listen(); err != nil {
				errCh <- err
				return
			}
			_, err := control.NewAgent(host, hp, 24700)
			errCh <- err
		})
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}

	// Manager over the control plane.
	mgrHost := livenet.NewHost(mk(2), 2)
	defer mgrHost.Close()
	mcfg := manager.DefaultConfig()
	mcfg.CollectEvery = 200 * time.Millisecond
	mcfg.HealthEvery = 200 * time.Millisecond
	mgr := manager.New(mgrHost, mcfg)

	bait := client.SharedFile{
		Hash: ed2k.SyntheticHash("it-bait"), Name: "it.bait.avi", Size: 7 << 20, Type: "Video",
	}
	links := make(chan *control.Link, 2)
	mgrHost.Post(func() {
		for i, h := range hpHosts {
			control.Dial(mgrHost, fmt.Sprintf("it-hp-%d", i), netip.AddrPortFrom(h.Addr(), 24700),
				func(l *control.Link, err error) {
					if err != nil {
						t.Errorf("control dial: %v", err)
					}
					links <- l
				})
		}
	})
	collected := make([]*control.Link, 0, 2)
	for i := 0; i < 2; i++ {
		l := <-links
		if l == nil {
			t.Fatal("control link missing")
		}
		collected = append(collected, l)
	}
	mgrHost.Post(func() {
		for i, l := range collected {
			mgr.Add(l, manager.SameServer(serverAddr, []client.SharedFile{bait}, 2)[i])
		}
		mgr.Start()
	})

	// Wait for both honeypots to be placed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("honeypots never placed")
		}
		ready := make(chan bool, 1)
		mgrHost.Post(func() {
			ok := true
			for _, st := range mgr.States() {
				if !st.LastStatus.Connected || st.LastStatus.Advertised == 0 {
					ok = false
				}
			}
			ready <- ok && len(mgr.States()) == 2
		})
		if <-ready {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Scripted peers contact both honeypots.
	for i := 0; i < 3; i++ {
		peerHost := livenet.NewHost(mk(byte(50+i)), int64(50+i))
		peerDone := make(chan struct{})
		peerHost.Post(func() {
			peer := client.New(peerHost, client.Config{
				Label: "it-peer", UserHash: ed2k.NewUserHash(fmt.Sprintf("it-peer-%d", i)),
				Port: 24663,
			})
			if err := peer.Listen(); err != nil {
				t.Errorf("peer listen: %v", err)
				close(peerDone)
				return
			}
			peer.ConnectServer(serverAddr, client.ServerHooks{
				OnConnected: func(ed2k.ClientID) { peer.GetSources(bait.Hash) },
				OnSources: func(h ed2k.Hash, srcs []wire.Endpoint) {
					if len(srcs) == 0 {
						t.Error("no sources for bait")
						close(peerDone)
						return
					}
					remaining := len(srcs)
					for _, s := range srcs {
						target := s.AddrPort()
						peer.DialPeer(target, func(ps *client.PeerSession, err error) {
							if err != nil {
								t.Errorf("dial honeypot: %v", err)
								remaining--
								return
							}
							ps.SetHooks(client.PeerHooks{
								OnAcceptUpload: func() {
									ps.RequestParts(bait.Hash, [2]uint32{0, 1000})
									// Close shortly after; both strategies logged by now.
									peerHost.After(150*time.Millisecond, func() {
										ps.Close()
										remaining--
										if remaining == 0 {
											close(peerDone)
										}
									})
								},
							})
							ps.SendHello()
							ps.StartUpload(bait.Hash)
						})
					}
				},
			})
		})
		select {
		case <-peerDone:
		case <-time.After(10 * time.Second):
			t.Fatal("peer timed out")
		}
		peerHost.Close()
	}

	// Finalize through the control plane.
	type finRes struct {
		ds  *manager.Dataset
		err error
	}
	fin := make(chan finRes, 1)
	mgrHost.Post(func() {
		mgr.Finalize(func(ds *manager.Dataset, err error) { fin <- finRes{ds, err} })
	})
	var res finRes
	select {
	case res = <-fin:
	case <-time.After(10 * time.Second):
		t.Fatal("finalize timed out")
	}
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.ds.DistinctPeers != 3 {
		t.Errorf("distinct peers = %d, want 3", res.ds.DistinctPeers)
	}
	kinds := map[logging.Kind]int{}
	perHP := map[string]int{}
	for _, r := range res.ds.Records {
		kinds[r.Kind]++
		perHP[r.Honeypot]++
	}
	if kinds[logging.KindHello] < 6 || kinds[logging.KindStartUpload] < 6 {
		t.Errorf("kinds: %v", kinds)
	}
	if len(perHP) != 2 {
		t.Errorf("records from %d honeypots, want 2: %v", len(perHP), perHP)
	}
	if err := anonymize.Audit(res.ds.Records); err != nil {
		t.Errorf("audit: %v", err)
	}
}
