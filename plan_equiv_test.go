package repro_test

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"repro"
	"repro/internal/analysis"
	"repro/internal/ed2k"
	"repro/internal/logging"
	"repro/internal/stats"
)

// serialAnalyzeFrame is the pre-engine AnalyzeFrame, preserved verbatim
// as the equivalence oracle for the query engine (the same pattern as
// core/legacy_equiv_test.go for the scenario engine): one goroutine,
// one hardcoded artifact menu, extractors called in a fixed order.
// TestAnalyzePlanMatchesSerialReference pins the parallel plan-based
// Analyze to it bit-for-bit.
func serialAnalyzeFrame(res *repro.Result, f *analysis.Frame, opt repro.AnalyzeOptions) *repro.Report {
	if opt.SubsetSamples <= 0 {
		opt.SubsetSamples = 100
	}
	if opt.FileSubsetSize <= 0 {
		opt.FileSubsetSize = 100
	}
	rep := &repro.Report{
		TableI: f.TableI(len(res.HoneypotIDs), res.Days, len(res.Advertised)),
	}
	rep.PeerGrowth = f.PeerGrowth(res.Start, res.Days)
	rep.CoInterest = f.InterestGraph().Stats()

	hours := res.Days * 24
	if hours > 168 {
		hours = 168
	}
	rep.HourlyHello = f.HourlyHello(res.Start, hours)

	if len(res.HoneypotIDs) > 1 {
		rep.HelloPeersByGroup = f.GroupDistinctPeers(res.GroupOf, logging.KindHello, res.Start, res.Days)
		rep.StartUploadPeersByGroup = f.GroupDistinctPeers(res.GroupOf, logging.KindStartUpload, res.Start, res.Days)
		rep.RequestPartsByGroup = f.GroupMessageCounts(res.GroupOf, logging.KindRequestPart, res.Start, res.Days)

		rep.TopPeer, rep.TopPeerQueries = f.TopPeer()
		rep.TopPeerStartUpload = f.TopPeerSeries(res.GroupOf, rep.TopPeer, logging.KindStartUpload, res.Start, res.Days)
		rep.TopPeerRequestParts = f.TopPeerSeries(res.GroupOf, rep.TopPeer, logging.KindRequestPart, res.Start, res.Days)

		sets, universe := f.HoneypotPeerSets(res.HoneypotIDs)
		rep.HoneypotSubsets = stats.UnionEstimate(sets, universe, stats.SubsetUnionConfig{
			Samples: opt.SubsetSamples, Seed: opt.Seed, IncludeZero: true,
		})
	}

	if res.Name == "greedy" {
		ranked := f.QueriedFiles()
		nPop := opt.FileSubsetSize
		if nPop > len(ranked) {
			nPop = len(ranked)
		}
		rep.PopularFiles = make([]ed2k.Hash, nPop)
		for i := 0; i < nPop; i++ {
			rep.PopularFiles[i] = ranked[i].Hash
		}

		// Random files are drawn from the advertised list, as the paper
		// drew from its 3,175 shared files.
		rng := rand.New(rand.NewSource(opt.Seed))
		perm := rng.Perm(len(res.Advertised))
		nRand := opt.FileSubsetSize
		if nRand > len(perm) {
			nRand = len(perm)
		}
		rep.RandomFiles = make([]ed2k.Hash, nRand)
		for i := 0; i < nRand; i++ {
			rep.RandomFiles[i] = res.Advertised[perm[i]].Hash
		}

		if nPop > 0 {
			sets, universe := f.FilePeerSets(rep.PopularFiles)
			rep.PopularFileSubsets = stats.UnionEstimate(sets, universe, stats.SubsetUnionConfig{
				Samples: opt.SubsetSamples, Seed: opt.Seed,
			})
		}
		if nRand > 0 {
			sets, universe := f.FilePeerSets(rep.RandomFiles)
			rep.RandomFileSubsets = stats.UnionEstimate(sets, universe, stats.SubsetUnionConfig{
				Samples: opt.SubsetSamples, Seed: opt.Seed,
			})
		}
	}
	return rep
}

// TestAnalyzePlanMatchesSerialReference is the acceptance property of
// the query-engine redesign: on every registered scenario, in both
// collection modes (materialized in-memory and streamed logstore
// spill), the full paper plan executed concurrently by analysis.Exec
// must produce a Report bit-identical to the retained serial
// reference's — and to the engine's own one-worker execution.
func TestAnalyzePlanMatchesSerialReference(t *testing.T) {
	for _, name := range repro.Scenarios() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			base, err := repro.ScenarioSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			base.Scale *= equivScale

			check := func(t *testing.T, res *repro.Result, f *analysis.Frame) {
				opt := repro.DefaultAnalyzeOptions()
				want := serialAnalyzeFrame(res, f, opt)
				got := repro.AnalyzeFrame(res, f, opt)
				if !reflect.DeepEqual(got, want) {
					t.Error("parallel plan report differs from serial reference")
				}
				// The engine's own serial mode must agree with its
				// parallel mode query by query.
				meta := res.Meta()
				plan := analysis.PaperPlan(meta, analysis.QueryOptions{
					SubsetSamples: opt.SubsetSamples, FileSubsetSize: opt.FileSubsetSize, Seed: opt.Seed,
				})
				one, err := analysis.ExecWorkers(f, meta, plan, 1)
				if err != nil {
					t.Fatal(err)
				}
				many, err := analysis.Exec(f, meta, plan)
				if err != nil {
					t.Fatal(err)
				}
				for _, q := range one.Names() {
					sv, _ := one.Value(q)
					pv, _ := many.Value(q)
					if !reflect.DeepEqual(sv, pv) {
						t.Errorf("query %q differs between 1 worker and GOMAXPROCS", q)
					}
				}
			}

			t.Run("memory", func(t *testing.T) {
				res, err := repro.RunSpec(base)
				if err != nil {
					t.Fatal(err)
				}
				check(t, res, analysis.BuildFrame(res.Dataset.Records))
			})
			t.Run("store-stream", func(t *testing.T) {
				spec := base
				spec.Collection.StoreDir = filepath.Join(t.TempDir(), "spill")
				spec.Collection.Stream = true
				res, err := repro.RunSpec(spec)
				if err != nil {
					t.Fatal(err)
				}
				if res.Frame == nil {
					t.Fatal("streamed run built no frame")
				}
				check(t, res, res.Frame)
			})
		})
	}
}
