package repro_test

import (
	"errors"
	"io"
	"path/filepath"
	"reflect"
	"testing"

	"repro"
	"repro/internal/logging"
	"repro/internal/logstore"
)

// equivScale keeps the full registry sweep around the CI smoke
// matrix's cost (it runs every scenario at 0.02 too).
const equivScale = 0.02

// drainStore reopens an exported dataset store and drains its merged
// iterator.
func drainStore(t *testing.T, dir string) []logging.Record {
	t.Helper()
	store, err := logstore.Open(dir, logstore.Options{})
	if err != nil {
		t.Fatalf("reopening export store: %v", err)
	}
	defer store.Close()
	it, err := store.Iterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var out []logging.Record
	for {
		r, err := it.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
	}
}

// recordEqual compares two records field by field (shared lists by
// content, so a nil and an empty list agree — the binary codec does not
// distinguish them).
func recordEqual(a, b logging.Record) bool {
	if !a.Time.Equal(b.Time) || a.Honeypot != b.Honeypot || a.Kind != b.Kind ||
		a.PeerIP != b.PeerIP || a.PeerPort != b.PeerPort || a.PeerName != b.PeerName ||
		a.UserHash != b.UserHash || a.HighID != b.HighID ||
		a.ClientVersion != b.ClientVersion || a.FileHash != b.FileHash ||
		a.FileName != b.FileName || a.Server != b.Server || len(a.Files) != len(b.Files) {
		return false
	}
	for i := range a.Files {
		if a.Files[i] != b.Files[i] {
			return false
		}
	}
	return true
}

// TestFinalizeStreamMatchesMaterializedOnAllScenarios is the
// acceptance property of the streaming finalize refactor: for every
// registered scenario, the streamed pipeline (in-memory and
// logstore-spill collection alike) produces the bit-identical dataset
// — records via the export store, DistinctPeers, ReplacedWords,
// PerHoneypot — and the bit-identical analysis report, while never
// materializing a []Record.
func TestFinalizeStreamMatchesMaterializedOnAllScenarios(t *testing.T) {
	for _, name := range repro.Scenarios() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			base, err := repro.ScenarioSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			base.Scale *= equivScale

			// Reference: materialized in-memory finalize.
			ref, err := repro.RunSpec(base)
			if err != nil {
				t.Fatalf("materialized run: %v", err)
			}
			refRep := repro.Analyze(ref)

			check := func(t *testing.T, spec repro.Spec) {
				res, err := repro.RunSpec(spec)
				if err != nil {
					t.Fatalf("streamed run: %v", err)
				}
				if res.Dataset.Records != nil {
					t.Fatal("streamed run materialized records")
				}
				if res.Frame == nil {
					t.Fatal("streamed run built no frame")
				}
				if res.Frame.Len() != len(ref.Dataset.Records) {
					t.Fatalf("frame has %d records, reference %d", res.Frame.Len(), len(ref.Dataset.Records))
				}
				if res.Dataset.DistinctPeers != ref.Dataset.DistinctPeers {
					t.Errorf("distinct peers: %d vs %d", res.Dataset.DistinctPeers, ref.Dataset.DistinctPeers)
				}
				if res.Dataset.ReplacedWords != ref.Dataset.ReplacedWords {
					t.Errorf("replaced words: %d vs %d", res.Dataset.ReplacedWords, ref.Dataset.ReplacedWords)
				}
				if !reflect.DeepEqual(res.Dataset.PerHoneypot, ref.Dataset.PerHoneypot) {
					t.Errorf("per-honeypot: %v vs %v", res.Dataset.PerHoneypot, ref.Dataset.PerHoneypot)
				}

				// Records: the export store holds the anonymized stream;
				// replaying it must reproduce the materialized dataset
				// record for record, in order.
				got := drainStore(t, spec.Collection.ExportDir)
				if uint64(len(got)) != res.ExportedRecords {
					t.Fatalf("export store has %d records, finalize wrote %d", len(got), res.ExportedRecords)
				}
				if len(got) != len(ref.Dataset.Records) {
					t.Fatalf("exported %d records, reference %d", len(got), len(ref.Dataset.Records))
				}
				for i := range got {
					if !recordEqual(got[i], ref.Dataset.Records[i]) {
						t.Fatalf("record %d differs:\nstreamed:     %+v\nmaterialized: %+v",
							i, got[i], ref.Dataset.Records[i])
					}
				}

				rep, err := repro.AnalyzeStream(res)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(rep, refRep) {
					t.Error("streamed report differs from materialized report")
				}
			}

			t.Run("memory", func(t *testing.T) {
				spec := base
				spec.Collection.Stream = true
				spec.Collection.ExportDir = filepath.Join(t.TempDir(), "export")
				check(t, spec)
			})
			t.Run("store", func(t *testing.T) {
				spec := base
				spec.Collection.StoreDir = filepath.Join(t.TempDir(), "spill")
				spec.Collection.Stream = true
				spec.Collection.ExportDir = filepath.Join(t.TempDir(), "export")
				check(t, spec)
			})
		})
	}
}
