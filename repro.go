// Package repro is the public entry point of the reproduction of
// "Measurement of eDonkey Activity with Distributed Honeypots" (Allali,
// Latapy, Magnien — HotP2P/IPDPS 2009, arXiv:0904.3215).
//
// Campaigns are declarative: a Spec composes a directory-server
// topology, a honeypot fleet, one or more peer workloads, an optional
// fault schedule and a collection policy, and RunSpec executes it on
// the simulated world. Named scenarios live in a registry — the
// paper's two measurements ("distributed", "greedy") plus regimes the
// paper only gestures at (multi-server federations, churning fleets,
// flash crowds) — and specs round-trip through JSON, so a campaign can
// be a file:
//
//	spec, err := repro.ScenarioSpec("distributed")
//	if err != nil { ... }
//	spec.Scale = 0.1
//	res, err := repro.RunSpec(spec)
//	if err != nil { ... }
//	rep := repro.Analyze(res)
//	fmt.Println(rep.TableI)
//
// The typed configs for the paper's two campaigns remain as a stable
// façade: RunDistributed and RunGreedy lower a DistributedConfig or
// GreedyConfig to its spec and run it through the same engine. Analyze
// regenerates every table and figure of the paper's evaluation from
// any campaign result.
//
// Analyses are declarative too: every artifact is a named query in a
// registry (Queries lists them), any selection forms an analysis.Plan
// (JSON round-trip, like campaign specs), and ExecPlan runs one
// against a finished campaign — dependencies resolved automatically,
// independent queries extracted in parallel — so one figure can be
// regenerated without computing the rest. Analyze itself executes the
// full paper plan through the same engine.
//
// The underlying platform — eDonkey wire protocol, directory server,
// client engine, honeypots, manager, anonymization pipeline, the
// behavioural peer population that substitutes for the live network,
// and the scenario engine itself — lives in the internal packages; see
// DESIGN.md for the inventory.
package repro

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/ed2k"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// Re-exported campaign types.
type (
	// Spec is a declarative campaign: topology + fleet + workloads +
	// faults + collection. Build one directly, fetch a registered one
	// with ScenarioSpec, or decode one from JSON.
	Spec = scenario.Spec
	// DistributedConfig parameterizes the 24-honeypot campaign.
	DistributedConfig = core.DistributedConfig
	// GreedyConfig parameterizes the shared-list-harvesting campaign.
	GreedyConfig = core.GreedyConfig
	// Result is a finished campaign.
	Result = core.Result
	// RunOptions is the engine's telemetry tap configuration: a progress
	// callback (with early abort), its cadence, and a metrics registry.
	RunOptions = scenario.RunOptions
	// Progress is one mid-campaign snapshot delivered to the tap.
	Progress = scenario.Progress
	// ProgressFunc receives Progress snapshots; returning false aborts
	// the campaign cleanly into a partial Result.
	ProgressFunc = scenario.ProgressFunc
)

// Scenarios lists the registered scenario names, sorted.
func Scenarios() []string { return scenario.Names() }

// ScenarioSpec returns a fresh copy of a registered scenario's spec.
func ScenarioSpec(name string) (Spec, error) { return scenario.Lookup(name) }

// RunSpec validates and executes any campaign spec.
func RunSpec(spec Spec) (*Result, error) { return scenario.Run(spec) }

// RunSpecWith is RunSpec with a telemetry tap: opts.Progress receives
// mid-campaign snapshots (and can abort the run early), opts.Metrics
// collects the whole stack's counters and gauges. The tap never
// perturbs the simulation — a tapped campaign's dataset is
// record-for-record identical to an untapped one.
func RunSpecWith(spec Spec, opts RunOptions) (*Result, error) {
	return scenario.RunWith(spec, opts)
}

// DefaultDistributed returns the paper's distributed setup (scale 1).
func DefaultDistributed() DistributedConfig { return core.DefaultDistributedConfig() }

// DefaultGreedy returns the paper's greedy setup (scale 1).
func DefaultGreedy() GreedyConfig { return core.DefaultGreedyConfig() }

// ScaledDistributed returns the distributed setup at a reduced arrival
// scale (durations and behaviour unchanged, so curve shapes hold).
func ScaledDistributed(scale float64) DistributedConfig {
	cfg := core.DefaultDistributedConfig()
	cfg.Scale = scale
	return cfg
}

// ScaledGreedy returns the greedy setup at a reduced arrival scale. The
// adoption cap shrinks with scale so the advertised list stays in
// proportion to the observing population.
func ScaledGreedy(scale float64) GreedyConfig {
	cfg := core.DefaultGreedyConfig()
	cfg.Scale = scale
	if scale < 1 {
		cfg.MaxAdopted = int(float64(cfg.MaxAdopted) * scale * 4)
		if cfg.MaxAdopted < 50 {
			cfg.MaxAdopted = 50
		}
	}
	return cfg
}

// RunDistributed executes the paper's distributed measurement in the
// simulated world and returns the anonymized dataset.
func RunDistributed(cfg DistributedConfig) (*Result, error) {
	return core.RunDistributed(cfg)
}

// RunGreedy executes the paper's greedy measurement.
func RunGreedy(cfg GreedyConfig) (*Result, error) {
	return core.RunGreedy(cfg)
}

// Report regenerates the paper's evaluation artifacts from one campaign.
// Fields are populated according to the campaign kind: the distributed
// campaign fills Fig2, Fig4-Fig10; the greedy campaign fills Fig3,
// Fig11, Fig12. TableI is always filled.
type Report struct {
	// TableI is the campaign's row of the paper's Table I.
	TableI analysis.TableI
	// PeerGrowth is Fig 2 (distributed) or Fig 3 (greedy).
	PeerGrowth stats.GrowthCurve
	// HourlyHello is Fig 4: HELLO per hour over the first week.
	HourlyHello []int
	// HelloPeersByGroup is Fig 5; StartUploadPeersByGroup is Fig 6.
	HelloPeersByGroup       analysis.GroupSeries
	StartUploadPeersByGroup analysis.GroupSeries
	// RequestPartsByGroup is Fig 7.
	RequestPartsByGroup analysis.GroupSeries
	// TopPeer identifies the busiest peer; TopPeerStartUpload and
	// TopPeerRequestParts are Figs 8 and 9.
	TopPeer             string
	TopPeerQueries      int
	TopPeerStartUpload  analysis.GroupSeries
	TopPeerRequestParts analysis.GroupSeries
	// HoneypotSubsets is Fig 10 (distributed only).
	HoneypotSubsets stats.SubsetUnion
	// RandomFileSubsets and PopularFileSubsets are Figs 11-12 (greedy).
	RandomFileSubsets  stats.SubsetUnion
	PopularFileSubsets stats.SubsetUnion
	// RandomFiles / PopularFiles are the sampled file sets behind them.
	RandomFiles  []ed2k.Hash
	PopularFiles []ed2k.Hash
	// CoInterest summarizes the bipartite peer-file interest graph — the
	// analysis the paper's conclusion announces as future work.
	CoInterest analysis.InterestStats
}

// AnalyzeOptions tunes report generation.
type AnalyzeOptions struct {
	// SubsetSamples is the number of random subsets per size (paper: 100).
	SubsetSamples int
	// FileSubsetSize is the file-set size of Figs 11-12 (paper: 100).
	FileSubsetSize int
	// Seed drives the subset sampling.
	Seed int64
}

// DefaultAnalyzeOptions mirrors the paper's methodology.
func DefaultAnalyzeOptions() AnalyzeOptions {
	return AnalyzeOptions{SubsetSamples: 100, FileSubsetSize: 100, Seed: 1}
}

// Analyze computes the full report with default options.
func Analyze(res *Result) *Report {
	return AnalyzeWith(res, DefaultAnalyzeOptions())
}

// AnalyzeWith computes the full report. The dataset is compiled into a
// columnar frame in exactly one pass over the records — or, for a
// campaign finalized through the streaming pipeline (Collection.Stream
// or Collection.ExportDir), the frame built during finalize is reused
// and no records are ever touched; every artifact is then derived from
// the frame's interned integer columns.
func AnalyzeWith(res *Result, opt AnalyzeOptions) *Report {
	f := res.Frame
	if f == nil {
		f = analysis.BuildFrame(res.Dataset.Records)
	}
	return AnalyzeFrame(res, f, opt)
}

// AnalyzeStream computes the full report, with default options, for a
// campaign finalized through the streaming record pipeline: the report
// derives entirely from the frame the engine built while draining the
// anonymized stream, so the campaign's records never materialize. It
// errors on a campaign that was not run with Collection.Stream or
// Collection.ExportDir (use Analyze there).
func AnalyzeStream(res *Result) (*Report, error) {
	return AnalyzeStreamWith(res, DefaultAnalyzeOptions())
}

// AnalyzeStreamWith is AnalyzeStream with explicit options.
func AnalyzeStreamWith(res *Result, opt AnalyzeOptions) (*Report, error) {
	if res.Frame == nil {
		return nil, fmt.Errorf("repro: campaign %q was not finalized through the streaming pipeline (set Collection.Stream or Collection.ExportDir)", res.Name)
	}
	return AnalyzeWith(res, opt), nil
}

// Queries lists the registered analysis query names, sorted. Any subset
// forms a plan ExecPlan can run.
func Queries() []string { return analysis.Names() }

// ExecPlan runs an analysis plan — any selection of registered queries,
// e.g. exactly one figure — against a finished campaign, executing
// independent queries concurrently. The campaign's frame is reused when
// the streaming pipeline built one, otherwise compiled once from the
// records.
func ExecPlan(res *Result, plan analysis.Plan) (analysis.ReportSet, error) {
	f := res.Frame
	if f == nil {
		f = analysis.BuildFrame(res.Dataset.Records)
	}
	return analysis.Exec(f, res.Meta(), plan)
}

// AnalyzeFrame computes the full report from an already-built frame —
// e.g. one streamed out of a logstore with analysis.BuildFrameIter, so
// campaigns too large for memory never materialize their records. It
// builds the campaign's full paper plan, executes it on the query
// engine (independent artifacts extract in parallel), and assembles the
// Report from the result set.
func AnalyzeFrame(res *Result, f *analysis.Frame, opt AnalyzeOptions) *Report {
	meta := res.Meta()
	plan := analysis.PaperPlan(meta, analysis.QueryOptions{
		SubsetSamples:  opt.SubsetSamples,
		FileSubsetSize: opt.FileSubsetSize,
		Seed:           opt.Seed,
	})
	rs, err := analysis.Exec(f, meta, plan)
	if err != nil {
		// The paper plan selects only built-in queries, which never fail;
		// an error here is a bug in the engine, not a runtime condition.
		panic("repro: paper plan failed: " + err.Error())
	}
	rep := &Report{
		TableI:      artifact[analysis.TableI](rs, analysis.QueryTableI),
		PeerGrowth:  artifact[stats.GrowthCurve](rs, analysis.QueryPeerGrowth),
		HourlyHello: artifact[[]int](rs, analysis.QueryHourlyHello),
		CoInterest:  artifact[analysis.InterestStats](rs, analysis.QueryCoInterest),

		HelloPeersByGroup:       artifact[analysis.GroupSeries](rs, analysis.QueryHelloPeersByGroup),
		StartUploadPeersByGroup: artifact[analysis.GroupSeries](rs, analysis.QueryStartUploadPeersByGroup),
		RequestPartsByGroup:     artifact[analysis.GroupSeries](rs, analysis.QueryRequestPartsByGroup),
		TopPeerStartUpload:      artifact[analysis.GroupSeries](rs, analysis.QueryTopPeerStartUpload),
		TopPeerRequestParts:     artifact[analysis.GroupSeries](rs, analysis.QueryTopPeerRequestParts),
		HoneypotSubsets:         artifact[stats.SubsetUnion](rs, analysis.QueryHoneypotSubsets),

		RandomFiles:        artifact[[]ed2k.Hash](rs, analysis.QueryRandomFiles),
		PopularFiles:       artifact[[]ed2k.Hash](rs, analysis.QueryPopularFiles),
		RandomFileSubsets:  artifact[stats.SubsetUnion](rs, analysis.QueryRandomFileSubsets),
		PopularFileSubsets: artifact[stats.SubsetUnion](rs, analysis.QueryPopularFileSubsets),
	}
	top := artifact[analysis.TopPeerInfo](rs, analysis.QueryTopPeer)
	rep.TopPeer, rep.TopPeerQueries = top.Peer, top.Queries
	return rep
}

// artifact fetches one typed result; a query the plan did not select
// (the menu varies by campaign kind) yields the field's zero value,
// exactly as the pre-engine assembly left those fields unset. A type
// mismatch on a present result, by contrast, is a bug in a built-in
// query and panics rather than silently zeroing a Report field.
func artifact[T any](rs analysis.ReportSet, name string) T {
	var zero T
	if _, ok := rs.Value(name); !ok {
		return zero
	}
	v, err := analysis.Artifact[T](rs, name)
	if err != nil {
		panic("repro: " + err.Error())
	}
	return v
}
