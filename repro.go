// Package repro is the public entry point of the reproduction of
// "Measurement of eDonkey Activity with Distributed Honeypots" (Allali,
// Latapy, Magnien — HotP2P/IPDPS 2009, arXiv:0904.3215).
//
// Campaigns are declarative: a Spec composes a directory-server
// topology, a honeypot fleet, one or more peer workloads, an optional
// fault schedule and a collection policy, and RunSpec executes it on
// the simulated world. Named scenarios live in a registry — the
// paper's two measurements ("distributed", "greedy") plus regimes the
// paper only gestures at (multi-server federations, churning fleets,
// flash crowds) — and specs round-trip through JSON, so a campaign can
// be a file:
//
//	spec, err := repro.ScenarioSpec("distributed")
//	if err != nil { ... }
//	spec.Scale = 0.1
//	res, err := repro.RunSpec(spec)
//	if err != nil { ... }
//	rep := repro.Analyze(res)
//	fmt.Println(rep.TableI)
//
// The typed configs for the paper's two campaigns remain as a stable
// façade: RunDistributed and RunGreedy lower a DistributedConfig or
// GreedyConfig to its spec and run it through the same engine. Analyze
// regenerates every table and figure of the paper's evaluation from
// any campaign result.
//
// The underlying platform — eDonkey wire protocol, directory server,
// client engine, honeypots, manager, anonymization pipeline, the
// behavioural peer population that substitutes for the live network,
// and the scenario engine itself — lives in the internal packages; see
// DESIGN.md for the inventory.
package repro

import (
	"fmt"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/ed2k"
	"repro/internal/logging"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// Re-exported campaign types.
type (
	// Spec is a declarative campaign: topology + fleet + workloads +
	// faults + collection. Build one directly, fetch a registered one
	// with ScenarioSpec, or decode one from JSON.
	Spec = scenario.Spec
	// DistributedConfig parameterizes the 24-honeypot campaign.
	DistributedConfig = core.DistributedConfig
	// GreedyConfig parameterizes the shared-list-harvesting campaign.
	GreedyConfig = core.GreedyConfig
	// Result is a finished campaign.
	Result = core.Result
)

// Scenarios lists the registered scenario names, sorted.
func Scenarios() []string { return scenario.Names() }

// ScenarioSpec returns a fresh copy of a registered scenario's spec.
func ScenarioSpec(name string) (Spec, error) { return scenario.Lookup(name) }

// RunSpec validates and executes any campaign spec.
func RunSpec(spec Spec) (*Result, error) { return scenario.Run(spec) }

// DefaultDistributed returns the paper's distributed setup (scale 1).
func DefaultDistributed() DistributedConfig { return core.DefaultDistributedConfig() }

// DefaultGreedy returns the paper's greedy setup (scale 1).
func DefaultGreedy() GreedyConfig { return core.DefaultGreedyConfig() }

// ScaledDistributed returns the distributed setup at a reduced arrival
// scale (durations and behaviour unchanged, so curve shapes hold).
func ScaledDistributed(scale float64) DistributedConfig {
	cfg := core.DefaultDistributedConfig()
	cfg.Scale = scale
	return cfg
}

// ScaledGreedy returns the greedy setup at a reduced arrival scale. The
// adoption cap shrinks with scale so the advertised list stays in
// proportion to the observing population.
func ScaledGreedy(scale float64) GreedyConfig {
	cfg := core.DefaultGreedyConfig()
	cfg.Scale = scale
	if scale < 1 {
		cfg.MaxAdopted = int(float64(cfg.MaxAdopted) * scale * 4)
		if cfg.MaxAdopted < 50 {
			cfg.MaxAdopted = 50
		}
	}
	return cfg
}

// RunDistributed executes the paper's distributed measurement in the
// simulated world and returns the anonymized dataset.
func RunDistributed(cfg DistributedConfig) (*Result, error) {
	return core.RunDistributed(cfg)
}

// RunGreedy executes the paper's greedy measurement.
func RunGreedy(cfg GreedyConfig) (*Result, error) {
	return core.RunGreedy(cfg)
}

// Report regenerates the paper's evaluation artifacts from one campaign.
// Fields are populated according to the campaign kind: the distributed
// campaign fills Fig2, Fig4-Fig10; the greedy campaign fills Fig3,
// Fig11, Fig12. TableI is always filled.
type Report struct {
	// TableI is the campaign's row of the paper's Table I.
	TableI analysis.TableI
	// PeerGrowth is Fig 2 (distributed) or Fig 3 (greedy).
	PeerGrowth stats.GrowthCurve
	// HourlyHello is Fig 4: HELLO per hour over the first week.
	HourlyHello []int
	// HelloPeersByGroup is Fig 5; StartUploadPeersByGroup is Fig 6.
	HelloPeersByGroup       analysis.GroupSeries
	StartUploadPeersByGroup analysis.GroupSeries
	// RequestPartsByGroup is Fig 7.
	RequestPartsByGroup analysis.GroupSeries
	// TopPeer identifies the busiest peer; TopPeerStartUpload and
	// TopPeerRequestParts are Figs 8 and 9.
	TopPeer             string
	TopPeerQueries      int
	TopPeerStartUpload  analysis.GroupSeries
	TopPeerRequestParts analysis.GroupSeries
	// HoneypotSubsets is Fig 10 (distributed only).
	HoneypotSubsets stats.SubsetUnion
	// RandomFileSubsets and PopularFileSubsets are Figs 11-12 (greedy).
	RandomFileSubsets  stats.SubsetUnion
	PopularFileSubsets stats.SubsetUnion
	// RandomFiles / PopularFiles are the sampled file sets behind them.
	RandomFiles  []ed2k.Hash
	PopularFiles []ed2k.Hash
	// CoInterest summarizes the bipartite peer-file interest graph — the
	// analysis the paper's conclusion announces as future work.
	CoInterest analysis.InterestStats
}

// AnalyzeOptions tunes report generation.
type AnalyzeOptions struct {
	// SubsetSamples is the number of random subsets per size (paper: 100).
	SubsetSamples int
	// FileSubsetSize is the file-set size of Figs 11-12 (paper: 100).
	FileSubsetSize int
	// Seed drives the subset sampling.
	Seed int64
}

// DefaultAnalyzeOptions mirrors the paper's methodology.
func DefaultAnalyzeOptions() AnalyzeOptions {
	return AnalyzeOptions{SubsetSamples: 100, FileSubsetSize: 100, Seed: 1}
}

// Analyze computes the full report with default options.
func Analyze(res *Result) *Report {
	return AnalyzeWith(res, DefaultAnalyzeOptions())
}

// AnalyzeWith computes the full report. The dataset is compiled into a
// columnar frame in exactly one pass over the records — or, for a
// campaign finalized through the streaming pipeline (Collection.Stream
// or Collection.ExportDir), the frame built during finalize is reused
// and no records are ever touched; every artifact is then derived from
// the frame's interned integer columns.
func AnalyzeWith(res *Result, opt AnalyzeOptions) *Report {
	f := res.Frame
	if f == nil {
		f = analysis.BuildFrame(res.Dataset.Records)
	}
	return AnalyzeFrame(res, f, opt)
}

// AnalyzeStream computes the full report for a campaign finalized
// through the streaming record pipeline: the report derives entirely
// from the frame the engine built while draining the anonymized
// stream, so the campaign's records never materialize. It errors on a
// campaign that was not run with Collection.Stream or
// Collection.ExportDir (use Analyze there).
func AnalyzeStream(res *Result) (*Report, error) {
	if res.Frame == nil {
		return nil, fmt.Errorf("repro: campaign %q was not finalized through the streaming pipeline (set Collection.Stream or Collection.ExportDir)", res.Name)
	}
	return AnalyzeWith(res, DefaultAnalyzeOptions()), nil
}

// AnalyzeFrame computes the full report from an already-built frame —
// e.g. one streamed out of a logstore with analysis.BuildFrameIter, so
// campaigns too large for memory never materialize their records.
func AnalyzeFrame(res *Result, f *analysis.Frame, opt AnalyzeOptions) *Report {
	if opt.SubsetSamples <= 0 {
		opt.SubsetSamples = 100
	}
	if opt.FileSubsetSize <= 0 {
		opt.FileSubsetSize = 100
	}
	rep := &Report{
		TableI: f.TableI(len(res.HoneypotIDs), res.Days, len(res.Advertised)),
	}
	rep.PeerGrowth = f.PeerGrowth(res.Start, res.Days)
	rep.CoInterest = f.InterestGraph().Stats()

	hours := res.Days * 24
	if hours > 168 {
		hours = 168
	}
	rep.HourlyHello = f.HourlyHello(res.Start, hours)

	if len(res.HoneypotIDs) > 1 {
		rep.HelloPeersByGroup = f.GroupDistinctPeers(res.GroupOf, logging.KindHello, res.Start, res.Days)
		rep.StartUploadPeersByGroup = f.GroupDistinctPeers(res.GroupOf, logging.KindStartUpload, res.Start, res.Days)
		rep.RequestPartsByGroup = f.GroupMessageCounts(res.GroupOf, logging.KindRequestPart, res.Start, res.Days)

		rep.TopPeer, rep.TopPeerQueries = f.TopPeer()
		rep.TopPeerStartUpload = f.TopPeerSeries(res.GroupOf, rep.TopPeer, logging.KindStartUpload, res.Start, res.Days)
		rep.TopPeerRequestParts = f.TopPeerSeries(res.GroupOf, rep.TopPeer, logging.KindRequestPart, res.Start, res.Days)

		sets, universe := f.HoneypotPeerSets(res.HoneypotIDs)
		rep.HoneypotSubsets = stats.UnionEstimate(sets, universe, stats.SubsetUnionConfig{
			Samples: opt.SubsetSamples, Seed: opt.Seed, IncludeZero: true,
		})
	}

	if res.Name == "greedy" {
		ranked := f.QueriedFiles()
		nPop := opt.FileSubsetSize
		if nPop > len(ranked) {
			nPop = len(ranked)
		}
		rep.PopularFiles = make([]ed2k.Hash, nPop)
		for i := 0; i < nPop; i++ {
			rep.PopularFiles[i] = ranked[i].Hash
		}

		// Random files are drawn from the advertised list, as the paper
		// drew from its 3,175 shared files.
		rng := rand.New(rand.NewSource(opt.Seed))
		perm := rng.Perm(len(res.Advertised))
		nRand := opt.FileSubsetSize
		if nRand > len(perm) {
			nRand = len(perm)
		}
		rep.RandomFiles = make([]ed2k.Hash, nRand)
		for i := 0; i < nRand; i++ {
			rep.RandomFiles[i] = res.Advertised[perm[i]].Hash
		}

		if nPop > 0 {
			sets, universe := f.FilePeerSets(rep.PopularFiles)
			rep.PopularFileSubsets = stats.UnionEstimate(sets, universe, stats.SubsetUnionConfig{
				Samples: opt.SubsetSamples, Seed: opt.Seed,
			})
		}
		if nRand > 0 {
			sets, universe := f.FilePeerSets(rep.RandomFiles)
			rep.RandomFileSubsets = stats.UnionEstimate(sets, universe, stats.SubsetUnionConfig{
				Samples: opt.SubsetSamples, Seed: opt.Seed,
			})
		}
	}
	return rep
}
