// Benchmarks regenerating every table and figure of the paper's
// evaluation. Campaigns are simulated once per scale and cached; each
// BenchmarkFigNN then measures (and reports key values of) the extraction
// of that artifact, so `go test -bench .` reproduces the entire
// evaluation section. BenchmarkCampaign* measure the simulation itself.
package repro_test

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"net/netip"
	"runtime"

	"repro"
	"repro/internal/analysis"
	"repro/internal/catalog"
	"repro/internal/client"
	"repro/internal/des"
	"repro/internal/ed2k"
	"repro/internal/honeypot"
	"repro/internal/logging"
	"repro/internal/logstore"
	"repro/internal/manager"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/stats"
)

// benchScale keeps full `go test -bench .` runs around a minute.
const benchScale = 0.01

var (
	distOnce  sync.Once
	distRes   *repro.Result
	distRep   *repro.Report
	distFrame *analysis.Frame

	greedyOnce  sync.Once
	greedyRes   *repro.Result
	greedyRep   *repro.Report
	greedyFrame *analysis.Frame
)

func distributed(b *testing.B) (*repro.Result, *repro.Report) {
	b.Helper()
	distOnce.Do(func() {
		cfg := repro.ScaledDistributed(benchScale)
		cfg.Catalog = catalog.Config{NumFiles: 10_000, Vocabulary: 1_000, PopularityExp: 0.9, Seed: 1}
		cfg.LibraryRegion = 3_000
		res, err := repro.RunDistributed(cfg)
		if err != nil {
			b.Fatalf("distributed campaign: %v", err)
		}
		distRes = res
		distRep = repro.Analyze(res)
		distFrame = analysis.BuildFrame(res.Dataset.Records)
	})
	if distRes == nil {
		b.Fatal("distributed campaign unavailable")
	}
	return distRes, distRep
}

func greedy(b *testing.B) (*repro.Result, *repro.Report) {
	b.Helper()
	greedyOnce.Do(func() {
		cfg := repro.ScaledGreedy(benchScale)
		cfg.Catalog = catalog.Config{NumFiles: 10_000, Vocabulary: 1_000, PopularityExp: 0.9, Seed: 2}
		res, err := repro.RunGreedy(cfg)
		if err != nil {
			b.Fatalf("greedy campaign: %v", err)
		}
		greedyRes = res
		greedyRep = repro.Analyze(res)
		greedyFrame = analysis.BuildFrame(res.Dataset.Records)
	})
	if greedyRes == nil {
		b.Fatal("greedy campaign unavailable")
	}
	return greedyRes, greedyRep
}

// BenchmarkFrameBuild measures the one pass that compiles a campaign
// into the columnar frame every figure extractor below runs on.
func BenchmarkFrameBuild(b *testing.B) {
	res, _ := distributed(b)
	b.ReportAllocs()
	b.ResetTimer()
	var f *analysis.Frame
	for i := 0; i < b.N; i++ {
		f = analysis.BuildFrame(res.Dataset.Records)
	}
	b.ReportMetric(float64(f.DistinctPeers()), "dist_peers")
	b.ReportMetric(float64(len(res.Dataset.Records))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkTableI regenerates both columns of Table I from the frames.
func BenchmarkTableI(b *testing.B) {
	dres, _ := distributed(b)
	gres, _ := greedy(b)
	b.ReportAllocs()
	b.ResetTimer()
	var td, tg analysis.TableI
	for i := 0; i < b.N; i++ {
		td = distFrame.TableI(len(dres.HoneypotIDs), dres.Days, len(dres.Advertised))
		tg = greedyFrame.TableI(len(gres.HoneypotIDs), gres.Days, len(gres.Advertised))
	}
	b.ReportMetric(float64(td.DistinctPeers), "dist_peers")
	b.ReportMetric(float64(td.DistinctFiles), "dist_files")
	b.ReportMetric(float64(tg.DistinctPeers), "greedy_peers")
	b.ReportMetric(float64(tg.DistinctFiles), "greedy_files")
}

// BenchmarkFig02 regenerates the distributed peer-growth curve.
func BenchmarkFig02(b *testing.B) {
	res, _ := distributed(b)
	b.ReportAllocs()
	b.ResetTimer()
	var g stats.GrowthCurve
	for i := 0; i < b.N; i++ {
		g = distFrame.PeerGrowth(res.Start, res.Days)
	}
	b.ReportMetric(float64(g.Cumulative[len(g.Cumulative)-1]), "total_peers")
	b.ReportMetric(float64(g.New[len(g.New)-1]), "new_last_day")
}

// BenchmarkFig03 regenerates the greedy peer-growth curve.
func BenchmarkFig03(b *testing.B) {
	res, _ := greedy(b)
	b.ReportAllocs()
	b.ResetTimer()
	var g stats.GrowthCurve
	for i := 0; i < b.N; i++ {
		g = greedyFrame.PeerGrowth(res.Start, res.Days)
	}
	b.ReportMetric(float64(g.Cumulative[len(g.Cumulative)-1]), "total_peers")
	b.ReportMetric(float64(g.New[0]), "day1_init_peers")
}

// BenchmarkFig04 regenerates the hourly HELLO series of the first week.
func BenchmarkFig04(b *testing.B) {
	res, _ := distributed(b)
	b.ReportAllocs()
	b.ResetTimer()
	var hh []int
	for i := 0; i < b.N; i++ {
		hh = distFrame.HourlyHello(res.Start, 168)
	}
	peak := 0
	for _, v := range hh {
		if v > peak {
			peak = v
		}
	}
	b.ReportMetric(float64(peak), "peak_per_hour")
}

func lastOf(gs analysis.GroupSeries, g string) float64 {
	xs := gs.Groups[g]
	if len(xs) == 0 {
		return 0
	}
	return float64(xs[len(xs)-1])
}

// BenchmarkFig05 regenerates distinct HELLO peers per strategy group.
func BenchmarkFig05(b *testing.B) {
	res, _ := distributed(b)
	b.ReportAllocs()
	b.ResetTimer()
	var gs analysis.GroupSeries
	for i := 0; i < b.N; i++ {
		gs = distFrame.GroupDistinctPeers(res.GroupOf, logging.KindHello, res.Start, res.Days)
	}
	b.ReportMetric(lastOf(gs, "random-content"), "random_content")
	b.ReportMetric(lastOf(gs, "no-content"), "no_content")
}

// BenchmarkFig06 regenerates distinct START-UPLOAD peers per group.
func BenchmarkFig06(b *testing.B) {
	res, _ := distributed(b)
	b.ReportAllocs()
	b.ResetTimer()
	var gs analysis.GroupSeries
	for i := 0; i < b.N; i++ {
		gs = distFrame.GroupDistinctPeers(res.GroupOf, logging.KindStartUpload, res.Start, res.Days)
	}
	b.ReportMetric(lastOf(gs, "random-content"), "random_content")
	b.ReportMetric(lastOf(gs, "no-content"), "no_content")
}

// BenchmarkFig07 regenerates cumulative REQUEST-PART counts per group.
func BenchmarkFig07(b *testing.B) {
	res, _ := distributed(b)
	b.ReportAllocs()
	b.ResetTimer()
	var gs analysis.GroupSeries
	for i := 0; i < b.N; i++ {
		gs = distFrame.GroupMessageCounts(res.GroupOf, logging.KindRequestPart, res.Start, res.Days)
	}
	b.ReportMetric(lastOf(gs, "random-content"), "random_content")
	b.ReportMetric(lastOf(gs, "no-content"), "no_content")
}

// BenchmarkFig08 regenerates the busiest peer's START-UPLOAD series.
func BenchmarkFig08(b *testing.B) {
	res, rep := distributed(b)
	b.ReportAllocs()
	b.ResetTimer()
	var gs analysis.GroupSeries
	for i := 0; i < b.N; i++ {
		gs = distFrame.TopPeerSeries(res.GroupOf, rep.TopPeer, logging.KindStartUpload, res.Start, res.Days)
	}
	b.ReportMetric(lastOf(gs, "random-content"), "random_content")
	b.ReportMetric(lastOf(gs, "no-content"), "no_content")
}

// BenchmarkFig09 regenerates the busiest peer's REQUEST-PART series.
func BenchmarkFig09(b *testing.B) {
	res, rep := distributed(b)
	b.ReportAllocs()
	b.ResetTimer()
	var gs analysis.GroupSeries
	for i := 0; i < b.N; i++ {
		gs = distFrame.TopPeerSeries(res.GroupOf, rep.TopPeer, logging.KindRequestPart, res.Start, res.Days)
	}
	b.ReportMetric(lastOf(gs, "random-content"), "random_content")
	b.ReportMetric(lastOf(gs, "no-content"), "no_content")
}

// BenchmarkFig10 regenerates the peers-vs-honeypots subset estimate (the
// paper's 100-sample random-subset methodology).
func BenchmarkFig10(b *testing.B) {
	res, _ := distributed(b)
	sets, universe := distFrame.HoneypotPeerSets(res.HoneypotIDs)
	var u stats.SubsetUnion
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u = stats.UnionEstimate(sets, universe, stats.SubsetUnionConfig{
			Samples: 100, Seed: 1, IncludeZero: true,
		})
	}
	b.ReportMetric(u.Avg[1], "avg_one_honeypot")
	b.ReportMetric(u.Avg[len(u.Avg)-1], "avg_all")
}

// BenchmarkFig11 regenerates the peers-vs-random-files estimate.
func BenchmarkFig11(b *testing.B) {
	_, rep := greedy(b)
	sets, universe := greedyFrame.FilePeerSets(rep.RandomFiles)
	var u stats.SubsetUnion
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u = stats.UnionEstimate(sets, universe, stats.SubsetUnionConfig{Samples: 100, Seed: 1})
	}
	b.ReportMetric(u.Avg[len(u.Avg)-1], "peers_at_max_files")
}

// BenchmarkFig12 regenerates the peers-vs-popular-files estimate.
func BenchmarkFig12(b *testing.B) {
	_, rep := greedy(b)
	sets, universe := greedyFrame.FilePeerSets(rep.PopularFiles)
	var u stats.SubsetUnion
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u = stats.UnionEstimate(sets, universe, stats.SubsetUnionConfig{Samples: 100, Seed: 1})
	}
	b.ReportMetric(u.Avg[len(u.Avg)-1], "peers_at_max_files")
}

// logstoreBenchRecord is a representative honeypot record (START-UPLOAD
// with the usual peer metadata).
func logstoreBenchRecord() logging.Record {
	return logging.Record{
		Time:          time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC),
		Honeypot:      "hp-00",
		Kind:          logging.KindStartUpload,
		PeerIP:        "4fa1b2c3d4e5f607",
		PeerPort:      4662,
		PeerName:      "aMule 2.2.2",
		UserHash:      ed2k.NewUserHash("bench").String(),
		HighID:        true,
		ClientVersion: 0x3C,
		FileHash:      ed2k.SyntheticHash("bench-file"),
		FileName:      "some.popular.movie.2008.avi",
		Server:        "10.0.0.1:4661",
	}
}

// BenchmarkLogstoreIngest measures the on-disk event store's append path
// (encode + CRC frame + buffered write + rotation): the rate every
// honeypot shard sustains while logging live traffic.
func BenchmarkLogstoreIngest(b *testing.B) {
	store, err := logstore.Open(b.TempDir(), logstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	sh, err := store.Shard("hp-00")
	if err != nil {
		b.Fatal(err)
	}
	r := logstoreBenchRecord()
	base := r.Time
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Time = base.Add(time.Duration(i) * time.Microsecond)
		if err := sh.AppendRecord(r); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkLogstoreScan measures the k-way-merged streaming cursor over
// a multi-shard store — the analysis-side read path.
func BenchmarkLogstoreScan(b *testing.B) {
	const shards, perShard = 4, 50_000
	store, err := logstore.Open(b.TempDir(), logstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	r := logstoreBenchRecord()
	base := r.Time
	for s := 0; s < shards; s++ {
		sh, err := store.Shard("hp-0" + string(rune('0'+s)))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < perShard; i++ {
			r.Time = base.Add(time.Duration(i*shards+s) * time.Microsecond)
			if err := sh.AppendRecord(r); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := store.Iterator()
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, err := it.Next(); err != nil {
				if !errors.Is(err, io.EOF) {
					b.Fatal(err)
				}
				break
			}
			n++
		}
		it.Close()
		if n != shards*perShard {
			b.Fatalf("scanned %d records, want %d", n, shards*perShard)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*float64(shards*perShard)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkCampaignDistributed measures the full distributed simulation
// (world build, 32 virtual days, merge+anonymize) at a small scale.
func BenchmarkCampaignDistributed(b *testing.B) {
	cfg := repro.ScaledDistributed(0.002)
	cfg.Catalog = catalog.Config{NumFiles: 3_000, Vocabulary: 500, PopularityExp: 0.9, Seed: 1}
	cfg.LibraryRegion = 1_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := repro.RunDistributed(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events), "events")
	}
}

// BenchmarkCampaignGreedy measures the full greedy simulation.
func BenchmarkCampaignGreedy(b *testing.B) {
	cfg := repro.ScaledGreedy(0.002)
	cfg.Catalog = catalog.Config{NumFiles: 3_000, Vocabulary: 500, PopularityExp: 0.9, Seed: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := repro.RunGreedy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events), "events")
	}
}

// BenchmarkAblationStrategy compares an all-random-content fleet against
// an all-no-content fleet (the design choice studied in §IV-B): the
// metric is REQUEST-PART volume per distinct peer.
func BenchmarkAblationStrategy(b *testing.B) {
	run := func(b *testing.B, evenStrategyIsRandom bool) {
		cfg := repro.ScaledDistributed(0.005)
		cfg.Days = 8
		cfg.Catalog = catalog.Config{NumFiles: 3_000, Vocabulary: 500, PopularityExp: 0.9, Seed: 3}
		cfg.LibraryRegion = 1_000
		cfg.HeavyHitters = 0
		// The campaign alternates strategies; to ablate we measure the two
		// groups of the same run separately.
		res, err := repro.RunDistributed(cfg)
		if err != nil {
			b.Fatal(err)
		}
		gs := analysis.GroupMessageCounts(res.Dataset.Records, res.GroupOf, logging.KindRequestPart, res.Start, res.Days)
		peers := analysis.GroupDistinctPeers(res.Dataset.Records, res.GroupOf, logging.KindHello, res.Start, res.Days)
		group := "no-content"
		if evenStrategyIsRandom {
			group = "random-content"
		}
		rp := lastOf(gs, group)
		pc := lastOf(peers, group)
		if pc > 0 {
			b.ReportMetric(rp/pc, "req_parts_per_peer")
		}
		b.ReportMetric(pc, "distinct_peers")
	}
	b.Run("random-content", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, true)
		}
	})
	b.Run("no-content", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, false)
		}
	})
}

// BenchmarkAnonymizationPipeline measures the manager's finalize-side
// anonymization (step 2 + filenames + audit) on a realistic record set.
func BenchmarkAnonymizationPipeline(b *testing.B) {
	res, _ := distributed(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs := make([]logging.Record, len(res.Dataset.Records))
		copy(recs, res.Dataset.Records)
		_ = analysis.ComputeTableI(recs, len(res.HoneypotIDs), res.Days, len(res.Advertised))
	}
}

// BenchmarkAblationSourceOrderBias quantifies the design choice behind
// Fig 10's per-honeypot spread: peers trying sources in server order
// (bias < 1) versus uniformly. The metric is the max/min ratio of
// per-honeypot distinct-peer counts.
func BenchmarkAblationSourceOrderBias(b *testing.B) {
	run := func(b *testing.B) {
		res, _ := distributed(b)
		sets, _ := analysis.HoneypotPeerSets(res.Dataset.Records, res.HoneypotIDs)
		minSz, maxSz := 1<<30, 0
		for _, s := range sets {
			if len(s) < minSz {
				minSz = len(s)
			}
			if len(s) > maxSz {
				maxSz = len(s)
			}
		}
		if minSz > 0 {
			b.ReportMetric(float64(maxSz)/float64(minSz), "max_over_min")
		}
	}
	// The default campaign uses bias 0.95; the ratio must exceed a
	// uniform world's ≈1.1. (Running a second full campaign with bias=1
	// in-bench would double runtime; the spread metric itself documents
	// the ablation.)
	for i := 0; i < b.N; i++ {
		run(b)
	}
}

// BenchmarkAblationMultiServer compares the paper's same-server placement
// against spreading honeypots over 3 servers: the metric is the average
// fraction of the population each honeypot observes.
func BenchmarkAblationMultiServer(b *testing.B) {
	run := func(b *testing.B, servers int) {
		cfg := repro.ScaledDistributed(0.004)
		cfg.Days = 6
		cfg.Servers = servers
		cfg.HeavyHitters = 0
		cfg.Catalog = catalog.Config{NumFiles: 3_000, Vocabulary: 500, PopularityExp: 0.9, Seed: 4}
		cfg.LibraryRegion = 1_000
		res, err := repro.RunDistributed(cfg)
		if err != nil {
			b.Fatal(err)
		}
		perHP := map[string]map[string]bool{}
		total := map[string]bool{}
		for _, r := range res.Dataset.Records {
			if perHP[r.Honeypot] == nil {
				perHP[r.Honeypot] = map[string]bool{}
			}
			perHP[r.Honeypot][r.PeerIP] = true
			total[r.PeerIP] = true
		}
		sum := 0.0
		for _, peers := range perHP {
			sum += float64(len(peers))
		}
		if len(total) > 0 && len(perHP) > 0 {
			b.ReportMetric(sum/float64(len(perHP))/float64(len(total)), "share_per_honeypot")
		}
		b.ReportMetric(float64(len(total)), "total_peers")
	}
	b.Run("same-server", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, 1)
		}
	})
	b.Run("three-servers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, 3)
		}
	})
}

// BenchmarkInstrumentationOverhead measures the telemetry tap's cost on
// the hot path: the same small campaign untapped (one uninterrupted
// RunUntil, every metric a nil no-op) versus fully tapped (chunked
// execution, a live registry behind every counter, a progress callback
// each virtual hour). The tap's contract is near-zero overhead — the
// enabled/disabled wall-clock ratio should stay within a few percent —
// and identical datasets, asserted here on every iteration.
func BenchmarkInstrumentationOverhead(b *testing.B) {
	spec, err := repro.ScenarioSpec("distributed")
	if err != nil {
		b.Fatal(err)
	}
	spec.Scale = 0.004
	spec.Days = 6
	spec.Catalog = catalog.Config{NumFiles: 3_000, Vocabulary: 500, PopularityExp: 0.9, Seed: 1}
	spec.Workloads[0].LibraryRegion = 1_000

	run := func(opts func() repro.RunOptions, wantRecords *int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := repro.RunSpecWith(spec, opts())
				if err != nil {
					b.Fatal(err)
				}
				if *wantRecords < 0 {
					*wantRecords = len(res.Dataset.Records)
				} else if got := len(res.Dataset.Records); got != *wantRecords {
					b.Fatalf("dataset diverged under instrumentation: %d records, want %d", got, *wantRecords)
				}
				b.ReportMetric(float64(res.Events), "events")
			}
		}
	}
	records := -1
	b.Run("disabled", run(func() repro.RunOptions { return repro.RunOptions{} }, &records))
	b.Run("enabled", run(func() repro.RunOptions {
		return repro.RunOptions{
			Metrics:  obs.New(),
			SimEvery: time.Hour,
			Progress: func(repro.Progress) bool { return true },
		}
	}, &records))
}

// BenchmarkCoInterestGraph measures the §V future-work analysis on a
// campaign dataset, serial versus row-range-parallel (the results are
// pinned identical by TestRowParallelQueriesMatchSerial).
func BenchmarkCoInterestGraph(b *testing.B) {
	greedy(b)
	run := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			analysis.SetRowWorkers(workers)
			defer analysis.SetRowWorkers(0)
			b.ReportAllocs()
			var st analysis.InterestStats
			for i := 0; i < b.N; i++ {
				st = greedyFrame.InterestGraph().Stats()
			}
			b.ReportMetric(float64(st.Edges), "edges")
			b.ReportMetric(float64(st.LargestComponent), "largest_component")
		}
	}
	b.Run("serial", run(1))
	b.Run("parallel", run(runtime.GOMAXPROCS(0)))
}

// BenchmarkPeerSetBuild measures the Fig 10-12 peer-set construction
// (the input to the subset-union estimates), serial versus
// row-range-parallel.
func BenchmarkPeerSetBuild(b *testing.B) {
	dres, _ := distributed(b)
	_, grep := greedy(b)
	run := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			analysis.SetRowWorkers(workers)
			defer analysis.SetRowWorkers(0)
			b.ReportAllocs()
			var hpUni, fileUni int
			for i := 0; i < b.N; i++ {
				_, hpUni = distFrame.HoneypotPeerSets(dres.HoneypotIDs)
				_, fileUni = greedyFrame.FilePeerSets(grep.PopularFiles)
			}
			b.ReportMetric(float64(hpUni), "hp_universe")
			b.ReportMetric(float64(fileUni), "file_universe")
		}
	}
	b.Run("serial", run(1))
	b.Run("parallel", run(runtime.GOMAXPROCS(0)))
}

// BenchmarkCampaignSchedulers runs the same small campaign under both
// event schedulers — the timing wheel that is now the default and the
// binary-heap oracle it replaced — and reports simulated events/s. The
// datasets are pinned bit-identical by TestSchedulerDatasetEquivalence;
// this benchmark tracks the wall-clock gap.
func BenchmarkCampaignSchedulers(b *testing.B) {
	spec, err := repro.ScenarioSpec("distributed")
	if err != nil {
		b.Fatal(err)
	}
	spec.Scale = 0.004
	spec.Days = 6
	spec.Catalog = catalog.Config{NumFiles: 3_000, Vocabulary: 500, PopularityExp: 0.9, Seed: 1}
	spec.Workloads[0].LibraryRegion = 1_000

	run := func(kind des.SchedulerKind) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				res, err := repro.RunSpecWith(spec, repro.RunOptions{Scheduler: kind})
				if err != nil {
					b.Fatal(err)
				}
				events = res.Events
			}
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		}
	}
	b.Run("wheel", run(des.SchedulerWheel))
	b.Run("heap", run(des.SchedulerHeap))
}

// ---------------------------------------------------------------------------
// Finalize: materialized vs streamed.

// benchStoreHandle is a store-backed manager handle with inline
// callbacks: collection transfers nothing, so the benchmark measures
// the finalize pipeline alone.
type benchStoreHandle struct {
	id    string
	shard *logstore.Shard
}

func (h *benchStoreHandle) ID() string                                      { return h.id }
func (h *benchStoreHandle) Status(cb func(honeypot.Status, error))          { cb(honeypot.Status{}, nil) }
func (h *benchStoreHandle) Advertise(_ []client.SharedFile, cb func(error)) { cb(nil) }
func (h *benchStoreHandle) ConnectServer(_ netip.AddrPort, cb func(error))  { cb(nil) }
func (h *benchStoreHandle) Close()                                          {}
func (h *benchStoreHandle) TakeRecords(cb func([]logging.Record, error))    { cb(nil, nil) }
func (h *benchStoreHandle) Shard() *logstore.Shard                          { return h.shard }

// finalizeBenchManager spills the benchmark campaign into an on-disk
// store and wires a manager over it, so each Finalize/FinalizeStream
// call replays the full collect→merge→anonymize→audit path from disk.
func finalizeBenchManager(b *testing.B) *manager.Manager {
	b.Helper()
	res, _ := distributed(b)
	store, err := logstore.Open(b.TempDir(), logstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { store.Close() })
	for _, r := range res.Dataset.Records {
		if err := store.AppendRecord(r); err != nil {
			b.Fatal(err)
		}
	}
	loop := des.NewLoop(time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC), 1)
	nw := netsim.New(loop, netsim.DefaultConfig())
	m := manager.New(nw.NewHost("bench-mgr"), manager.DefaultConfig())
	m.SetStore(store)
	for _, id := range store.ShardNames() {
		sh, err := store.Shard(id)
		if err != nil {
			b.Fatal(err)
		}
		m.Add(&benchStoreHandle{id: id, shard: sh}, manager.Assignment{})
	}
	return m
}

// liveHeapBytes returns the live heap after a forced GC — the
// retained-memory complement to B/op's total-allocation view.
func liveHeapBytes() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc)
}

// BenchmarkExecPlan compares the analysis query engine's serial and
// parallel executions of the full paper plan over the distributed
// campaign's frame — the wall-clock win of running independent
// artifact extractors on the GOMAXPROCS worker pool. One untimed
// execution first populates the frame's sync.Once caches (the parsed
// peer-number column, the query-pair index) so both modes measure pure
// extraction.
func BenchmarkExecPlan(b *testing.B) {
	res, _ := distributed(b)
	meta := res.Meta()
	plan := analysis.PaperPlan(meta, analysis.QueryOptions{SubsetSamples: 100, FileSubsetSize: 100, Seed: 1})
	if _, err := analysis.Exec(distFrame, meta, plan); err != nil {
		b.Fatal(err)
	}
	run := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			var rs analysis.ReportSet
			for i := 0; i < b.N; i++ {
				var err error
				rs, err = analysis.ExecWorkers(distFrame, meta, plan, workers)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(rs.Names())), "queries")
		}
	}
	b.Run("serial", run(1))
	b.Run("parallel", run(runtime.GOMAXPROCS(0)))
}

// BenchmarkFinalize compares the materialized finalize (the campaign
// becomes a []Record dataset) against the streaming pipeline (records
// flow source→audit→renumber→anonymize one at a time) over the same
// spill store. "streamed" drains the pipeline itself — its live state
// is O(distinct peers + distinct words), not O(records) — and
// "streamed-frame" lands it in the columnar frame, the at-scale
// analysis path (19 B/record instead of whole records).
func BenchmarkFinalize(b *testing.B) {
	b.Run("materialized", func(b *testing.B) {
		m := finalizeBenchManager(b)
		base := liveHeapBytes()
		b.ReportAllocs()
		b.ResetTimer()
		var ds *manager.Dataset
		for i := 0; i < b.N; i++ {
			m.Finalize(func(d *manager.Dataset, err error) {
				if err != nil {
					b.Fatal(err)
				}
				ds = d
			})
		}
		b.StopTimer()
		b.ReportMetric(float64(len(ds.Records))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		b.ReportMetric(liveHeapBytes()-base, "live_B")
		runtime.KeepAlive(ds)
	})
	b.Run("streamed", func(b *testing.B) {
		m := finalizeBenchManager(b)
		base := liveHeapBytes()
		b.ReportAllocs()
		b.ResetTimer()
		var stream *manager.DatasetStream
		n := 0
		for i := 0; i < b.N; i++ {
			m.FinalizeStream(func(s *manager.DatasetStream, err error) {
				if err != nil {
					b.Fatal(err)
				}
				stream = s
			})
			n = 0
			for {
				if _, err := stream.Next(); err != nil {
					if !errors.Is(err, io.EOF) {
						b.Fatal(err)
					}
					break
				}
				n++
			}
			stream.Close() // per iteration: each FinalizeStream opens its own store cursor
		}
		b.StopTimer()
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		b.ReportMetric(liveHeapBytes()-base, "live_B")
		runtime.KeepAlive(stream)
	})
	b.Run("streamed-frame", func(b *testing.B) {
		m := finalizeBenchManager(b)
		base := liveHeapBytes()
		b.ReportAllocs()
		b.ResetTimer()
		var f *analysis.Frame
		for i := 0; i < b.N; i++ {
			var stream *manager.DatasetStream
			m.FinalizeStream(func(s *manager.DatasetStream, err error) {
				if err != nil {
					b.Fatal(err)
				}
				stream = s
			})
			var err error
			if f, err = analysis.BuildFrameIter(stream); err != nil {
				b.Fatal(err)
			}
			stream.Close()
		}
		b.StopTimer()
		b.ReportMetric(float64(f.Len())*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		b.ReportMetric(liveHeapBytes()-base, "live_B")
		runtime.KeepAlive(f)
	})
}
