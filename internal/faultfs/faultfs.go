// Package faultfs is the store's injectable filesystem layer: a small
// VFS interface (FS / File, in the shape of Pebble's errorfs) that the
// logstore threads through every file operation — segment I/O, index
// sidecars, the store manifest — plus composable fault injectors that
// turn crash-consistency from a hope into a tortured, tested property.
//
// The real filesystem is OS{}; Wrap(fs, injector) interposes an
// Injector that is consulted before every operation and may fail it.
// Injection is deterministic and seed-driven, so every torture run
// replays exactly:
//
//   - CrashAfter(n, seed) kills the nth mutating operation and every
//     operation after it (the process "lost power"): a doomed write is
//     torn at a seed-chosen prefix, modeling a partial page flush.
//     With n <= 0 it never fires and doubles as an operation counter,
//     which is how the torture loop sizes its kill-point range.
//   - NewSwitch() denies mutating operations on matching paths while a
//     deny rule is set — the "disk pulled / disk back" fault used by
//     scenario disk-io-error schedules.
//   - NewFlaky(seed, rate) fails a seeded random fraction of mutating
//     operations — background flakiness for self-healing tests.
//
// Read operations pass through untouched by Switch and Flaky; a
// crashed CrashAfter fails everything, reads included, until the
// "reboot" (a fresh FS for the reopened store).
package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"strings"
	"sync"
)

// Errors reported by the built-in injectors. Faults injected by
// CrashAfter wrap ErrCrashed; Switch and Flaky wrap ErrInjected.
var (
	ErrInjected = errors.New("faultfs: injected fault")
	ErrCrashed  = errors.New("faultfs: filesystem crashed")
)

// File is the subset of *os.File the logstore needs from an open file.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// FS is the filesystem surface the logstore runs on. OS{} is the real
// disk; Wrap layers fault injection over any FS.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Open(name string) (File, error)
	MkdirAll(path string, perm fs.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm fs.FileMode) error
}

// OS is the pass-through FS over the real filesystem.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (OS) Open(name string) (File, error) { return os.Open(name) }
func (OS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (OS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }
func (OS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                   { return os.Remove(name) }
func (OS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (OS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}

// OpKind names a filesystem operation class for injection decisions.
type OpKind int

const (
	OpOpen   OpKind = iota // read-only open
	OpCreate               // OpenFile with O_CREATE
	OpWrite                // File.Write
	OpSync                 // File.Sync
	OpMkdirAll
	OpReadDir
	OpStat
	OpRename
	OpRemove
	OpReadFile
	OpWriteFile
	OpTruncate // File.Truncate
)

// Mutating reports whether the operation changes durable state — the
// ops that count as kill-points and that Switch/Flaky may fail.
func (k OpKind) Mutating() bool {
	switch k {
	case OpCreate, OpWrite, OpSync, OpMkdirAll, OpRename, OpRemove, OpWriteFile, OpTruncate:
		return true
	}
	return false
}

// Op describes one filesystem operation about to run. N is the byte
// count for OpWrite/OpWriteFile (0 otherwise), so an injector can tear
// the write at a chosen prefix.
type Op struct {
	Kind OpKind
	Path string
	N    int
}

// Fault is an injected failure. For OpWrite/OpWriteFile, Tear bytes of
// the payload are persisted before the error surfaces (0 = nothing
// lands), modeling a torn write.
type Fault struct {
	Err  error
	Tear int
}

// Injector decides, per operation, whether to inject a fault. A nil
// return lets the operation through. Implementations must be safe for
// concurrent use.
type Injector interface {
	Fault(op Op) *Fault
}

// Wrap layers inj over fsys: every operation consults the injector
// first and fails with the injected error (tearing writes as directed)
// before touching the underlying filesystem.
func Wrap(fsys FS, inj Injector) FS { return &injFS{fs: fsys, inj: inj} }

type injFS struct {
	fs  FS
	inj Injector
}

func (w *injFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	kind := OpOpen
	if flag&os.O_CREATE != 0 {
		kind = OpCreate
	}
	if f := w.inj.Fault(Op{Kind: kind, Path: name}); f != nil {
		return nil, f.Err
	}
	fl, err := w.fs.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{f: fl, path: name, inj: w.inj}, nil
}

func (w *injFS) Open(name string) (File, error) {
	if f := w.inj.Fault(Op{Kind: OpOpen, Path: name}); f != nil {
		return nil, f.Err
	}
	fl, err := w.fs.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{f: fl, path: name, inj: w.inj}, nil
}

func (w *injFS) MkdirAll(path string, perm fs.FileMode) error {
	if f := w.inj.Fault(Op{Kind: OpMkdirAll, Path: path}); f != nil {
		return f.Err
	}
	return w.fs.MkdirAll(path, perm)
}

func (w *injFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if f := w.inj.Fault(Op{Kind: OpReadDir, Path: name}); f != nil {
		return nil, f.Err
	}
	return w.fs.ReadDir(name)
}

func (w *injFS) Stat(name string) (fs.FileInfo, error) {
	if f := w.inj.Fault(Op{Kind: OpStat, Path: name}); f != nil {
		return nil, f.Err
	}
	return w.fs.Stat(name)
}

func (w *injFS) Rename(oldpath, newpath string) error {
	if f := w.inj.Fault(Op{Kind: OpRename, Path: newpath}); f != nil {
		return f.Err
	}
	return w.fs.Rename(oldpath, newpath)
}

func (w *injFS) Remove(name string) error {
	if f := w.inj.Fault(Op{Kind: OpRemove, Path: name}); f != nil {
		return f.Err
	}
	return w.fs.Remove(name)
}

func (w *injFS) ReadFile(name string) ([]byte, error) {
	if f := w.inj.Fault(Op{Kind: OpReadFile, Path: name}); f != nil {
		return nil, f.Err
	}
	return w.fs.ReadFile(name)
}

func (w *injFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	if f := w.inj.Fault(Op{Kind: OpWriteFile, Path: name, N: len(data)}); f != nil {
		if n := min(f.Tear, len(data)); n > 0 {
			// Torn write: a prefix of the payload lands before the
			// failure, exactly like a partial page flush at power loss.
			w.fs.WriteFile(name, data[:n], perm)
		}
		return f.Err
	}
	return w.fs.WriteFile(name, data, perm)
}

type injFile struct {
	f    File
	path string
	inj  Injector
}

func (f *injFile) Read(p []byte) (int, error) { return f.f.Read(p) }

func (f *injFile) Write(p []byte) (int, error) {
	if flt := f.inj.Fault(Op{Kind: OpWrite, Path: f.path, N: len(p)}); flt != nil {
		n := min(flt.Tear, len(p))
		if n > 0 {
			f.f.Write(p[:n])
		}
		return n, flt.Err
	}
	return f.f.Write(p)
}

func (f *injFile) Seek(offset int64, whence int) (int64, error) { return f.f.Seek(offset, whence) }
func (f *injFile) Close() error                                 { return f.f.Close() }

func (f *injFile) Sync() error {
	if flt := f.inj.Fault(Op{Kind: OpSync, Path: f.path}); flt != nil {
		return flt.Err
	}
	return f.f.Sync()
}

func (f *injFile) Truncate(size int64) error {
	if flt := f.inj.Fault(Op{Kind: OpTruncate, Path: f.path}); flt != nil {
		return flt.Err
	}
	return f.f.Truncate(size)
}

// Crasher is the kill-point injector: it lets n-1 mutating operations
// through, then fails the nth — tearing it if it is a write — and
// every operation after it, read or write, until the process "reboots"
// with a fresh FS. See CrashAfter.
type Crasher struct {
	mu      sync.Mutex
	n       int64
	rng     *rand.Rand
	seen    int64
	crashed bool
}

// CrashAfter returns a Crasher that crashes the filesystem on its nth
// mutating operation. n <= 0 never crashes: the Crasher then just
// counts mutating operations (Ops), which sizes a torture loop's
// kill-point range. The seed drives the tear point of a doomed write.
func CrashAfter(n int64, seed int64) *Crasher {
	return &Crasher{n: n, rng: rand.New(rand.NewSource(seed))}
}

func (c *Crasher) Fault(op Op) *Fault {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return &Fault{Err: ErrCrashed}
	}
	if !op.Kind.Mutating() {
		return nil
	}
	c.seen++
	if c.n <= 0 || c.seen < c.n {
		return nil
	}
	c.crashed = true
	f := &Fault{Err: ErrCrashed}
	if (op.Kind == OpWrite || op.Kind == OpWriteFile) && op.N > 0 {
		f.Tear = c.rng.Intn(op.N + 1)
	}
	return f
}

// Crashed reports whether the kill-point fired.
func (c *Crasher) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Ops returns the number of mutating operations seen (including the
// one that crashed).
func (c *Crasher) Ops() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seen
}

// Switch fails mutating operations whose path contains a denied
// substring — a disk that errors for one shard while the rest of the
// store stays healthy. Deny and Allow flip the fault at campaign time.
type Switch struct {
	mu   sync.Mutex
	deny []string
}

// NewSwitch returns a Switch with no denied paths.
func NewSwitch() *Switch { return &Switch{} }

// Deny starts failing mutating operations on paths containing substr.
func (s *Switch) Deny(substr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deny = append(s.deny, substr)
}

// Allow removes a previously denied substring.
func (s *Switch) Allow(substr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.deny[:0]
	for _, d := range s.deny {
		if d != substr {
			kept = append(kept, d)
		}
	}
	s.deny = kept
}

func (s *Switch) Fault(op Op) *Fault {
	if !op.Kind.Mutating() {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range s.deny {
		if strings.Contains(op.Path, d) {
			return &Fault{Err: ErrInjected}
		}
	}
	return nil
}

// Flaky fails each mutating operation with the given probability,
// drawn from a seeded stream so runs replay deterministically.
type Flaky struct {
	mu   sync.Mutex
	rng  *rand.Rand
	rate float64
}

// NewFlaky returns a Flaky injector failing roughly rate (0..1) of
// mutating operations.
func NewFlaky(seed int64, rate float64) *Flaky {
	return &Flaky{rng: rand.New(rand.NewSource(seed)), rate: rate}
}

func (f *Flaky) Fault(op Op) *Fault {
	if !op.Kind.Mutating() {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rng.Float64() < f.rate {
		return &Fault{Err: ErrInjected}
	}
	return nil
}
