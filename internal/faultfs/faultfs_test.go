package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys := OS{}
	if err := fsys.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "sub", "f")
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := fsys.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "hello" {
		t.Fatalf("got %q", b)
	}
	if err := fsys.Rename(path, path+".2"); err != nil {
		t.Fatal(err)
	}
	ents, err := fsys.ReadDir(filepath.Join(dir, "sub"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "f.2" {
		t.Fatalf("dir entries: %v", ents)
	}
	rf, err := fsys.Open(path + ".2")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rf)
	rf.Close()
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
}

func TestCrashAfterCountsAndKills(t *testing.T) {
	dir := t.TempDir()
	run := func(inj *Crasher) error {
		fsys := Wrap(OS{}, inj)
		f, err := fsys.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644) // op 1 (create)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.Write([]byte("aaaa")); err != nil { // op 2
			return err
		}
		if err := f.Sync(); err != nil { // op 3
			return err
		}
		return nil
	}
	// Counter mode: no crash, three mutating ops seen.
	counter := CrashAfter(0, 1)
	if err := run(counter); err != nil {
		t.Fatal(err)
	}
	if counter.Crashed() {
		t.Fatal("counter mode must never crash")
	}
	if counter.Ops() != 3 {
		t.Fatalf("ops = %d, want 3", counter.Ops())
	}
	// Kill at each op: everything from that op on fails with ErrCrashed.
	for n := int64(1); n <= 3; n++ {
		inj := CrashAfter(n, 42)
		err := run(inj)
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("kill-point %d: err = %v", n, err)
		}
		if !inj.Crashed() {
			t.Fatalf("kill-point %d: not crashed", n)
		}
		// Post-crash, even reads fail until "reboot".
		fsys := Wrap(OS{}, inj)
		if _, err := fsys.ReadFile(filepath.Join(dir, "f")); !errors.Is(err, ErrCrashed) {
			t.Fatalf("post-crash read: err = %v", err)
		}
	}
}

func TestCrashTearsWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn")
	// Seed chosen so the torn write persists a strict prefix; whatever
	// the tear, the persisted size must be <= the payload.
	inj := CrashAfter(2, 7)
	fsys := Wrap(OS{}, inj)
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644) // op 1
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")
	n, err := f.Write(payload) // op 2: crash, torn
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	st, serr := os.Stat(path)
	if serr != nil {
		t.Fatal(serr)
	}
	if int64(n) != st.Size() || st.Size() > int64(len(payload)) {
		t.Fatalf("reported %d persisted, file has %d", n, st.Size())
	}
	// Determinism: same seed, same tear.
	inj2 := CrashAfter(2, 7)
	flt := inj2.Fault(Op{Kind: OpCreate, Path: path})
	if flt != nil {
		t.Fatal("op 1 must pass")
	}
	flt = inj2.Fault(Op{Kind: OpWrite, Path: path, N: len(payload)})
	if flt == nil || flt.Tear != n {
		t.Fatalf("replayed tear = %+v, want %d", flt, n)
	}
}

func TestSwitchDenyAllow(t *testing.T) {
	dir := t.TempDir()
	sw := NewSwitch()
	fsys := Wrap(OS{}, sw)
	good := filepath.Join(dir, "good", "f")
	bad := filepath.Join(dir, "bad", "f")
	for _, p := range []string{good, bad} {
		if err := fsys.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	sw.Deny(string(filepath.Separator) + "bad" + string(filepath.Separator))
	if err := fsys.WriteFile(bad, []byte("x"), 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("denied write: err = %v", err)
	}
	if err := fsys.WriteFile(good, []byte("x"), 0o644); err != nil {
		t.Fatalf("undenied path must work: %v", err)
	}
	// Reads pass through even on denied paths.
	if err := fsys.WriteFile(bad, nil, 0o644); !errors.Is(err, ErrInjected) {
		t.Fatal("still denied")
	}
	if _, err := fsys.ReadDir(filepath.Join(dir, "bad")); err != nil {
		t.Fatalf("read on denied path: %v", err)
	}
	sw.Allow(string(filepath.Separator) + "bad" + string(filepath.Separator))
	if err := fsys.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatalf("after Allow: %v", err)
	}
}

func TestFlakyDeterministic(t *testing.T) {
	sample := func(seed int64) []bool {
		inj := NewFlaky(seed, 0.3)
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.Fault(Op{Kind: OpWrite, Path: "p", N: 8}) != nil
		}
		return out
	}
	a, b := sample(5), sample(5)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("rate 0.3 produced %d/%d failures", fails, len(a))
	}
	// Reads never fail.
	inj := NewFlaky(5, 1.0)
	if inj.Fault(Op{Kind: OpReadFile, Path: "p"}) != nil {
		t.Fatal("flaky must not fail reads")
	}
}
