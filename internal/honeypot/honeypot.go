// Package honeypot implements the paper's core contribution: an eDonkey
// client modified to advertise fake files and log every query it receives.
//
// As in the paper (§III-B):
//
//   - the honeypot joins a directory server and publishes OFFER-FILES for
//     files it does not have;
//   - it accepts inbound peer connections, answers the HELLO handshake and
//     grants upload slots, and records HELLO, START-UPLOAD and
//     REQUEST-PART messages with peer metadata (address — hashed before
//     anything is stored —, port, name, userID, version, ID status) plus
//     server identity and timestamps;
//   - on REQUEST-PART it follows one of two strategies: NoContent
//     (never answer) or RandomContent (send random bytes);
//   - it retrieves the shared-file list of every contacting peer that
//     allows browsing, and in greedy mode re-advertises the harvested
//     files during an initial adoption window.
package honeypot

import (
	"net/netip"
	"time"

	"repro/internal/anonymize"
	"repro/internal/client"
	"repro/internal/ed2k"
	"repro/internal/logging"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Strategy selects how REQUEST-PART queries are answered.
type Strategy int

const (
	// NoContent ignores part requests entirely.
	NoContent Strategy = iota
	// RandomContent answers part requests with random bytes.
	RandomContent
)

// String names the strategy as the paper does.
func (s Strategy) String() string {
	switch s {
	case NoContent:
		return "no-content"
	case RandomContent:
		return "random-content"
	default:
		return "unknown"
	}
}

// Config describes one honeypot.
type Config struct {
	// ID is the honeypot's identifier in logs ("hp-03").
	ID string
	// Strategy is the part-request policy.
	Strategy Strategy
	// Port is the peer listening port.
	Port uint16
	// Secret is the campaign-wide anonymization key (step 1). Mandatory:
	// the honeypot refuses to log raw addresses.
	Secret []byte
	// BrowseContacts asks every contacting peer for its shared list.
	BrowseContacts bool
	// Greedy enables shared-list harvesting into the advertised list.
	Greedy bool
	// GreedyWindow bounds the adoption phase (the paper used one day).
	GreedyWindow time.Duration
	// GreedyMaxFiles caps adopted files (0 = unlimited).
	GreedyMaxFiles int
	// KeepAlive is the server keep-alive interval.
	KeepAlive time.Duration
	// MaxPartBytes caps bytes served per SENDING-PART reply.
	MaxPartBytes int
	// Sink, when set, receives every record as it is produced — e.g. a
	// logstore shard, making the honeypot's log durable and incrementally
	// collectable. When nil, records accumulate in an internal memory
	// buffer drained by TakeRecords (the legacy collection path).
	Sink logging.Sink
}

// Stats counts honeypot activity.
type Stats struct {
	Connections  int
	Hello        int
	StartUpload  int
	RequestParts int
	SharedLists  int
	PartsSent    int
	BytesSent    int64
	Adopted      int
}

// Status is the health report the manager polls (paper §III-A: honeypots
// report connected-or-not and their clientID).
type Status struct {
	ID         string
	Connected  bool
	ClientID   uint32
	HighID     bool
	Server     string
	Records    int
	Advertised int
	Stats      Stats
}

// Honeypot is the measurement actor.
type Honeypot struct {
	cfg    Config
	cl     *client.Client
	hasher *anonymize.IPHasher

	serverAddr netip.AddrPort
	sink       logging.Sink
	mem        *logging.MemorySink // non-nil when sink is the default buffer
	logged     int                 // total records appended
	stats      Stats
	started    time.Time
	greedyOver bool
	// junkPool is pre-generated random content; SENDING-PART replies
	// slice it instead of generating fresh bytes per block (the paper's
	// honeypots stream random data; what matters behaviourally is that
	// peers receive non-verifiable content, not that every byte is
	// freshly random).
	junkPool []byte

	// OnRecord, when set, observes every record as it is appended.
	OnRecord func(r logging.Record)
}

// New creates a honeypot on the host. Call Start next.
func New(host transport.Host, cfg Config) *Honeypot {
	if len(cfg.Secret) == 0 {
		panic("honeypot: anonymization secret is mandatory")
	}
	if cfg.MaxPartBytes <= 0 {
		cfg.MaxPartBytes = ed2k.BlockSize
	}
	if cfg.KeepAlive <= 0 {
		cfg.KeepAlive = 30 * time.Minute
	}
	hp := &Honeypot{
		cfg:    cfg,
		hasher: anonymize.NewIPHasher(cfg.Secret),
	}
	if cfg.Sink != nil {
		hp.sink = cfg.Sink
	} else {
		hp.mem = &logging.MemorySink{}
		hp.sink = hp.mem
	}
	hp.cl = client.New(host, client.Config{
		Label:      cfg.ID,
		UserHash:   ed2k.NewUserHash("honeypot/" + cfg.ID),
		Port:       cfg.Port,
		Browseable: false, // honeypots do not expose their own fake list to browsing
		KeepAlive:  cfg.KeepAlive,
	})
	hp.cl.OnPeerSession = hp.onPeerSession
	if cfg.Strategy == RandomContent {
		hp.junkPool = make([]byte, 2*cfg.MaxPartBytes)
		host.Rand().Read(hp.junkPool)
	}
	return hp
}

// Client exposes the underlying engine (examples and tests use it).
func (hp *Honeypot) Client() *client.Client { return hp.cl }

// Config returns the configuration.
func (hp *Honeypot) Config() Config { return hp.cfg }

// Start listens for peers and connects to the directory server.
func (hp *Honeypot) Start(server netip.AddrPort) error {
	if err := hp.cl.Listen(); err != nil {
		return err
	}
	hp.started = hp.cl.Host().Now()
	hp.ConnectServer(server)
	return nil
}

// ConnectServer (re)connects to a directory server; the manager calls it
// for initial placement and for redirections. The first placement anchors
// the greedy adoption window.
func (hp *Honeypot) ConnectServer(server netip.AddrPort) {
	if hp.started.IsZero() {
		hp.started = hp.cl.Host().Now()
	}
	hp.serverAddr = server
	hp.cl.ConnectServer(server, client.ServerHooks{})
}

// Reconnect retries the current server, used by the manager when a status
// poll finds the honeypot disconnected.
func (hp *Honeypot) Reconnect() {
	if hp.serverAddr.IsValid() && !hp.cl.Connected() {
		hp.cl.ConnectServer(hp.serverAddr, client.ServerHooks{})
	}
}

// Advertise publishes fake files (the manager decides which, per the
// campaign's advertisement strategy).
func (hp *Honeypot) Advertise(files ...client.SharedFile) {
	hp.cl.Share(files...)
}

// Advertised returns the currently advertised list.
func (hp *Honeypot) Advertised() []client.SharedFile { return hp.cl.Shared() }

// Status implements the manager's health poll. Records is the number of
// records awaiting collection (with an external sink, which keeps its own
// inventory, it is the total produced so far).
func (hp *Honeypot) Status() Status {
	records := hp.logged
	if hp.mem != nil {
		records = hp.mem.Len()
	}
	return Status{
		ID:         hp.cfg.ID,
		Connected:  hp.cl.Connected(),
		ClientID:   uint32(hp.cl.ClientID()),
		HighID:     !hp.cl.ClientID().Low(),
		Server:     hp.serverAddr.String(),
		Records:    records,
		Advertised: len(hp.cl.Shared()),
		Stats:      hp.stats,
	}
}

// TakeRecords drains the honeypot's log buffer; the manager collects
// periodically. Records carry step-1 hashed peer addresses only. With an
// external sink there is no buffer to drain — collection then goes
// through the sink's own reader (e.g. logstore checkpoints).
func (hp *Honeypot) TakeRecords() []logging.Record {
	if hp.mem == nil {
		return nil
	}
	return hp.mem.Take()
}

// Stats returns the activity counters.
func (hp *Honeypot) Stats() Stats { return hp.stats }

// Close shuts the honeypot down.
func (hp *Honeypot) Close() { hp.cl.Close() }

func (hp *Honeypot) log(r logging.Record) {
	r.Time = hp.cl.Host().Now()
	r.Honeypot = hp.cfg.ID
	r.Server = hp.serverAddr.String()
	hp.sink.Append(r)
	hp.logged++
	if hp.OnRecord != nil {
		hp.OnRecord(r)
	}
}

// base fills the per-peer fields shared by all record kinds.
func (hp *Honeypot) base(ps *client.PeerSession) logging.Record {
	info := ps.Remote()
	return logging.Record{
		PeerIP:        hp.hasher.HashIP(ps.RemoteAddr().Addr()),
		PeerPort:      ps.RemoteAddr().Port(),
		PeerName:      info.Name,
		UserHash:      info.UserHash.String(),
		HighID:        !ed2k.ClientID(info.ClientID).Low(),
		ClientVersion: info.Version,
	}
}

func (hp *Honeypot) onPeerSession(ps *client.PeerSession) {
	hp.stats.Connections++
	ps.SetHooks(client.PeerHooks{
		OnHello: func(info client.PeerInfo) {
			hp.stats.Hello++
			r := hp.base(ps)
			r.Kind = logging.KindHello
			hp.log(r)
			if hp.cfg.BrowseContacts {
				ps.AskSharedFiles()
			}
		},
		OnStartUpload: func(file ed2k.Hash) {
			hp.stats.StartUpload++
			r := hp.base(ps)
			r.Kind = logging.KindStartUpload
			r.FileHash = file
			if f, ok := hp.cl.SharedFile(file); ok {
				r.FileName = f.Name
			}
			hp.log(r)
			// Both strategies accept the slot: the paper observes the two
			// groups behave identically up to this point.
			ps.AcceptUpload()
		},
		OnRequestParts: func(req *wire.RequestParts) {
			hp.stats.RequestParts++
			r := hp.base(ps)
			r.Kind = logging.KindRequestPart
			r.FileHash = req.Hash
			if f, ok := hp.cl.SharedFile(req.Hash); ok {
				r.FileName = f.Name
			}
			hp.log(r)
			if hp.cfg.Strategy == RandomContent {
				hp.sendRandomParts(ps, req)
			}
		},
		OnSharedList: func(files []wire.FileEntry) {
			if len(files) == 0 {
				return // peer has browsing disabled
			}
			hp.stats.SharedLists++
			r := hp.base(ps)
			r.Kind = logging.KindSharedList
			r.Files = make([]logging.SharedFile, 0, len(files))
			for _, f := range files {
				r.Files = append(r.Files, logging.SharedFile{Hash: f.Hash, Name: f.Name(), Size: f.Size()})
			}
			hp.log(r)
			hp.maybeAdopt(files)
		},
	})
}

// sendRandomParts answers each requested range with random bytes — the
// paper's random-content strategy. Content is sliced from the junk pool
// at a random offset: cheap, yet never hash-verifiable.
func (hp *Honeypot) sendRandomParts(ps *client.PeerSession, req *wire.RequestParts) {
	rng := hp.cl.Host().Rand()
	for _, rg := range req.Ranges() {
		n := int(rg[1] - rg[0])
		if n > hp.cfg.MaxPartBytes {
			n = hp.cfg.MaxPartBytes
		}
		off := rng.Intn(len(hp.junkPool) - n + 1)
		ps.SendPart(req.Hash, rg[0], rg[0]+uint32(n), hp.junkPool[off:off+n])
		hp.stats.PartsSent++
		hp.stats.BytesSent += int64(n)
	}
}

// maybeAdopt implements the greedy measurement's harvesting: during the
// adoption window, files seen in peers' shared lists join the honeypot's
// own advertised list.
func (hp *Honeypot) maybeAdopt(files []wire.FileEntry) {
	if !hp.cfg.Greedy || hp.greedyOver {
		return
	}
	if hp.cfg.GreedyWindow > 0 && hp.cl.Host().Now().Sub(hp.started) > hp.cfg.GreedyWindow {
		hp.greedyOver = true
		return
	}
	for _, f := range files {
		if hp.cfg.GreedyMaxFiles > 0 && len(hp.cl.Shared()) >= hp.cfg.GreedyMaxFiles {
			hp.greedyOver = true
			return
		}
		if _, dup := hp.cl.SharedFile(f.Hash); dup {
			continue
		}
		hp.cl.Share(client.SharedFile{Hash: f.Hash, Name: f.Name(), Size: f.Size(), Type: f.Type()})
		hp.stats.Adopted++
	}
}
