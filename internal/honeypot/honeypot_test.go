package honeypot

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/anonymize"
	"repro/internal/client"
	"repro/internal/des"
	"repro/internal/ed2k"
	"repro/internal/logging"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/wire"
)

var t0 = time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)

var secret = []byte("test-campaign-secret")

type world struct {
	loop *des.Loop
	net  *netsim.Network
	srv  *server.Server
}

func newWorld(t *testing.T) *world {
	t.Helper()
	loop := des.NewLoop(t0, 31)
	nw := netsim.New(loop, netsim.DefaultConfig())
	srv := server.New(nw.NewHost("server"), server.DefaultConfig("big"))
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	return &world{loop: loop, net: nw, srv: srv}
}

func (w *world) settle() { w.loop.RunUntil(w.loop.Now().Add(time.Minute)) }

func (w *world) newHoneypot(t *testing.T, cfg Config) *Honeypot {
	t.Helper()
	if cfg.Port == 0 {
		cfg.Port = 4662
	}
	cfg.Secret = secret
	hp := New(w.net.NewHost(cfg.ID), cfg)
	if err := hp.Start(w.srv.Addr()); err != nil {
		t.Fatal(err)
	}
	w.settle()
	return hp
}

func (w *world) newPeer(t *testing.T, label string, port uint16, browseable bool) *client.Client {
	t.Helper()
	c := client.New(w.net.NewHost(label), client.Config{
		Label: label, UserHash: ed2k.NewUserHash(label), Port: port, Browseable: browseable,
	})
	if err := c.Listen(); err != nil {
		t.Fatal(err)
	}
	return c
}

var testFile = client.SharedFile{
	Hash: ed2k.SyntheticHash("bait"), Name: "bait.movie.avi", Size: 700 << 20, Type: "Video",
}

func TestAdvertiseReachesServerIndex(t *testing.T) {
	w := newWorld(t)
	hp := w.newHoneypot(t, Config{ID: "hp-0", Strategy: NoContent})
	hp.Advertise(testFile)
	w.settle()
	if w.srv.FilesIndexed() != 1 {
		t.Errorf("server indexed %d files", w.srv.FilesIndexed())
	}
	st := hp.Status()
	if !st.Connected || !st.HighID || st.Advertised != 1 {
		t.Errorf("status: %+v", st)
	}
}

// driveContact runs a full peer contact against the honeypot: HELLO,
// START-UPLOAD, one REQUEST-PART, returns received parts count.
func driveContact(t *testing.T, w *world, hp *Honeypot, peerLabel string, port uint16, browseable bool) int {
	t.Helper()
	peer := w.newPeer(t, peerLabel, port, browseable)
	parts := 0
	peer.DialPeer(netip.AddrPortFrom(hp.Client().Host().Addr(), hp.Config().Port), func(ps *client.PeerSession, err error) {
		if err != nil {
			t.Errorf("dial honeypot: %v", err)
			return
		}
		ps.SetHooks(client.PeerHooks{
			OnAcceptUpload: func() {
				ps.RequestParts(testFile.Hash, [2]uint32{0, 180000})
			},
			OnSendingPart: func(p *wire.SendingPart) { parts++ },
		})
		ps.SendHello()
		ps.StartUpload(testFile.Hash)
	})
	w.settle()
	return parts
}

func TestNoContentStrategyLogsButStaysSilent(t *testing.T) {
	w := newWorld(t)
	hp := w.newHoneypot(t, Config{ID: "hp-nc", Strategy: NoContent})
	hp.Advertise(testFile)
	parts := driveContact(t, w, hp, "peer1", 4663, true)
	if parts != 0 {
		t.Errorf("no-content honeypot sent %d parts", parts)
	}
	recs := hp.TakeRecords()
	kinds := map[logging.Kind]int{}
	for _, r := range recs {
		kinds[r.Kind]++
	}
	if kinds[logging.KindHello] != 1 || kinds[logging.KindStartUpload] != 1 || kinds[logging.KindRequestPart] != 1 {
		t.Errorf("kinds = %v", kinds)
	}
	st := hp.Stats()
	if st.PartsSent != 0 || st.BytesSent != 0 {
		t.Errorf("no-content stats: %+v", st)
	}
}

func TestRandomContentStrategySendsJunk(t *testing.T) {
	w := newWorld(t)
	hp := w.newHoneypot(t, Config{ID: "hp-rc", Strategy: RandomContent})
	hp.Advertise(testFile)
	parts := driveContact(t, w, hp, "peer1", 4663, true)
	if parts != 1 {
		t.Errorf("random-content honeypot sent %d parts, want 1", parts)
	}
	st := hp.Stats()
	if st.PartsSent != 1 || st.BytesSent == 0 {
		t.Errorf("random-content stats: %+v", st)
	}
}

func TestRecordsAreAnonymizedAtSource(t *testing.T) {
	w := newWorld(t)
	hp := w.newHoneypot(t, Config{ID: "hp-a", Strategy: NoContent})
	hp.Advertise(testFile)
	driveContact(t, w, hp, "peerX", 4663, true)
	recs := hp.TakeRecords()
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	if err := anonymize.Audit(recs); err != nil {
		t.Errorf("audit: %v", err)
	}
	// Metadata the paper says is logged must be present.
	r := recs[0]
	if r.PeerName == "" || r.UserHash == "" || r.PeerPort == 0 || r.Server == "" || r.Honeypot != "hp-a" {
		t.Errorf("metadata incomplete: %+v", r)
	}
	if r.Time.Before(t0) {
		t.Error("timestamp missing")
	}
}

func TestSameIPHashesIdenticallyAcrossHoneypots(t *testing.T) {
	w := newWorld(t)
	hp1 := w.newHoneypot(t, Config{ID: "hp-1", Strategy: NoContent})
	hp2 := w.newHoneypot(t, Config{ID: "hp-2", Strategy: NoContent, Port: 4672})
	hp1.Advertise(testFile)
	hp2.Advertise(testFile)
	peer := w.newPeer(t, "one-peer", 4663, true)
	for _, hp := range []*Honeypot{hp1, hp2} {
		target := netip.AddrPortFrom(hp.Client().Host().Addr(), hp.Config().Port)
		peer.DialPeer(target, func(ps *client.PeerSession, err error) {
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			ps.SendHello()
		})
	}
	w.settle()
	r1, r2 := hp1.TakeRecords(), hp2.TakeRecords()
	if len(r1) == 0 || len(r2) == 0 {
		t.Fatal("missing records")
	}
	if r1[0].PeerIP != r2[0].PeerIP {
		t.Error("step-2 coherence broken: same peer hashed differently")
	}
}

func TestBrowseHarvestsSharedLists(t *testing.T) {
	w := newWorld(t)
	hp := w.newHoneypot(t, Config{ID: "hp-b", Strategy: NoContent, BrowseContacts: true})
	hp.Advertise(testFile)
	peer := w.newPeer(t, "sharer", 4663, true)
	peer.Share(
		client.SharedFile{Hash: ed2k.SyntheticHash("s1"), Name: "song.one.mp3", Size: 4 << 20, Type: "Audio"},
		client.SharedFile{Hash: ed2k.SyntheticHash("s2"), Name: "film.two.avi", Size: 700 << 20, Type: "Video"},
	)
	peer.DialPeer(netip.AddrPortFrom(hp.Client().Host().Addr(), 4662), func(ps *client.PeerSession, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		ps.SendHello()
	})
	w.settle()
	var list *logging.Record
	for _, r := range hp.TakeRecords() {
		if r.Kind == logging.KindSharedList {
			rr := r
			list = &rr
		}
	}
	if list == nil {
		t.Fatal("no SHARED-LIST record")
	}
	if len(list.Files) != 2 || list.Files[0].Name != "song.one.mp3" {
		t.Errorf("shared list: %+v", list.Files)
	}
}

func TestBrowseDisabledPeerYieldsNoList(t *testing.T) {
	w := newWorld(t)
	hp := w.newHoneypot(t, Config{ID: "hp-b2", Strategy: NoContent, BrowseContacts: true})
	hp.Advertise(testFile)
	peer := w.newPeer(t, "private", 4663, false)
	peer.Share(client.SharedFile{Hash: ed2k.SyntheticHash("s3"), Name: "hidden.mp3", Size: 1 << 20, Type: "Audio"})
	peer.DialPeer(netip.AddrPortFrom(hp.Client().Host().Addr(), 4662), func(ps *client.PeerSession, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		ps.SendHello()
	})
	w.settle()
	for _, r := range hp.TakeRecords() {
		if r.Kind == logging.KindSharedList {
			t.Error("browse-disabled peer produced a SHARED-LIST record")
		}
	}
	if hp.Stats().SharedLists != 0 {
		t.Error("stats counted an empty list")
	}
}

func TestGreedyAdoption(t *testing.T) {
	w := newWorld(t)
	hp := w.newHoneypot(t, Config{
		ID: "hp-g", Strategy: NoContent, BrowseContacts: true,
		Greedy: true, GreedyWindow: 24 * time.Hour, GreedyMaxFiles: 3,
	})
	hp.Advertise(testFile) // seed file
	peer := w.newPeer(t, "lib", 4663, true)
	peer.Share(
		client.SharedFile{Hash: ed2k.SyntheticHash("g1"), Name: "a.mp3", Size: 1 << 20, Type: "Audio"},
		client.SharedFile{Hash: ed2k.SyntheticHash("g2"), Name: "b.mp3", Size: 1 << 20, Type: "Audio"},
		client.SharedFile{Hash: ed2k.SyntheticHash("g3"), Name: "c.mp3", Size: 1 << 20, Type: "Audio"},
		client.SharedFile{Hash: ed2k.SyntheticHash("g4"), Name: "d.mp3", Size: 1 << 20, Type: "Audio"},
	)
	peer.DialPeer(netip.AddrPortFrom(hp.Client().Host().Addr(), 4662), func(ps *client.PeerSession, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		ps.SendHello()
	})
	w.settle()
	// Cap is 3 total shared (1 seed + 2 adopted).
	if got := len(hp.Advertised()); got != 3 {
		t.Errorf("advertised %d files, want cap 3", got)
	}
	if hp.Stats().Adopted != 2 {
		t.Errorf("adopted = %d", hp.Stats().Adopted)
	}
	// The server must have been told about the adopted files.
	if w.srv.FilesIndexed() != 3 {
		t.Errorf("server indexed %d", w.srv.FilesIndexed())
	}
}

func TestGreedyWindowCloses(t *testing.T) {
	w := newWorld(t)
	hp := w.newHoneypot(t, Config{
		ID: "hp-g2", Strategy: NoContent, BrowseContacts: true,
		Greedy: true, GreedyWindow: time.Hour,
	})
	hp.Advertise(testFile)
	// Let the window expire.
	w.loop.RunUntil(w.loop.Now().Add(2 * time.Hour))
	peer := w.newPeer(t, "late", 4663, true)
	peer.Share(client.SharedFile{Hash: ed2k.SyntheticHash("late1"), Name: "late.mp3", Size: 1 << 20, Type: "Audio"})
	peer.DialPeer(netip.AddrPortFrom(hp.Client().Host().Addr(), 4662), func(ps *client.PeerSession, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		ps.SendHello()
	})
	w.settle()
	if hp.Stats().Adopted != 0 {
		t.Errorf("adopted after window: %d", hp.Stats().Adopted)
	}
	if len(hp.Advertised()) != 1 {
		t.Errorf("advertised = %d", len(hp.Advertised()))
	}
}

func TestTakeRecordsDrains(t *testing.T) {
	w := newWorld(t)
	hp := w.newHoneypot(t, Config{ID: "hp-d", Strategy: NoContent})
	hp.Advertise(testFile)
	driveContact(t, w, hp, "p", 4663, true)
	first := hp.TakeRecords()
	if len(first) == 0 {
		t.Fatal("no records")
	}
	if len(hp.TakeRecords()) != 0 {
		t.Error("TakeRecords did not drain")
	}
	if hp.Status().Records != 0 {
		t.Error("status still counts drained records")
	}
}

func TestReconnectAfterServerLoss(t *testing.T) {
	w := newWorld(t)
	hp := w.newHoneypot(t, Config{ID: "hp-r", Strategy: NoContent})
	hp.Advertise(testFile)
	if !hp.Status().Connected {
		t.Fatal("not connected")
	}
	// Kill and restart the server host.
	srvHost, _ := w.net.HostAt(w.srv.Addr().Addr())
	srvHost.Crash()
	w.settle()
	if hp.Status().Connected {
		t.Fatal("honeypot should observe disconnection")
	}
	srvHost.Restart()
	srv2 := server.New(srvHost, server.DefaultConfig("big"))
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}
	hp.Reconnect()
	w.settle()
	if !hp.Status().Connected {
		t.Error("reconnect failed")
	}
}

func TestStrategyString(t *testing.T) {
	if NoContent.String() != "no-content" || RandomContent.String() != "random-content" {
		t.Error("strategy names")
	}
	if Strategy(9).String() != "unknown" {
		t.Error("unknown strategy name")
	}
}

func TestMissingSecretPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic without secret")
		}
	}()
	loop := des.NewLoop(t0, 1)
	nw := netsim.New(loop, netsim.DefaultConfig())
	New(nw.NewHost("x"), Config{ID: "x"})
}
