// Package catalog models the universe of files circulating in the
// simulated eDonkey network: pseudo-realistic names built from a Zipfian
// vocabulary, sizes drawn per media archetype, and a Zipfian popularity
// law. The paper's campaigns observed 28k (distributed) and 267k (greedy)
// distinct files averaging ≈330 MB; the default archetype mix matches
// that order of magnitude.
package catalog

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/ed2k"
)

// Kind is the media archetype of a file.
type Kind int

// Archetypes, roughly matching eDonkey's media type tags.
const (
	Movie Kind = iota
	Song
	Distro
	Text
	Archive
	Image
	numKinds
)

// String returns the eDonkey media-type tag value for the kind.
func (k Kind) String() string {
	switch k {
	case Movie:
		return "Video"
	case Song:
		return "Audio"
	case Distro:
		return "Pro"
	case Text:
		return "Doc"
	case Archive:
		return "Pro"
	case Image:
		return "Image"
	default:
		return "Unknown"
	}
}

func (k Kind) extension() string {
	switch k {
	case Movie:
		return ".avi"
	case Song:
		return ".mp3"
	case Distro:
		return ".iso"
	case Text:
		return ".pdf"
	case Archive:
		return ".rar"
	case Image:
		return ".jpg"
	default:
		return ".bin"
	}
}

// File is one catalog entry.
type File struct {
	// Index is the file's position in the catalog; lower index means more
	// popular under the default popularity law.
	Index int
	Hash  ed2k.Hash
	Name  string
	Size  int64
	Kind  Kind
	// Weight is the file's relative popularity (arbitrary scale).
	Weight float64
}

// Config tunes catalog generation.
type Config struct {
	// NumFiles is the catalog size.
	NumFiles int
	// Vocabulary is the number of distinct words names draw from.
	Vocabulary int
	// PopularityExp is the Zipf exponent of file popularity (≈0.9 fits
	// measured file-sharing workloads).
	PopularityExp float64
	// Seed feeds the generator.
	Seed int64
}

// DefaultConfig returns the catalog model used by the campaigns.
func DefaultConfig() Config {
	return Config{NumFiles: 300_000, Vocabulary: 8_000, PopularityExp: 0.9, Seed: 1}
}

// Catalog is an immutable generated file universe.
type Catalog struct {
	files  []File
	cum    []float64 // cumulative weights for popularity sampling
	total  float64
	byHash map[ed2k.Hash]int
}

// kindMix is the archetype distribution; tuned so the mean size is a few
// hundred MB as in the paper's Table I.
var kindMix = []struct {
	kind Kind
	prob float64
}{
	{Song, 0.50},
	{Movie, 0.18},
	{Text, 0.12},
	{Archive, 0.12},
	{Image, 0.06},
	{Distro, 0.02},
}

// syllables used to mint pronounceable pseudo-words.
var syllables = []string{
	"ba", "co", "di", "fu", "ga", "he", "ki", "lo", "ma", "ne",
	"or", "pa", "qui", "ra", "su", "ta", "ul", "ve", "wo", "xy",
	"zen", "tor", "mir", "sal", "bre", "cla", "dro", "fle", "gri", "pla",
}

// Generate builds a catalog. It is deterministic in cfg.
func Generate(cfg Config) *Catalog {
	if cfg.NumFiles <= 0 {
		panic("catalog: NumFiles must be positive")
	}
	if cfg.Vocabulary <= 0 {
		cfg.Vocabulary = 8000
	}
	if cfg.PopularityExp <= 0 {
		cfg.PopularityExp = 0.9
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	vocab := make([]string, cfg.Vocabulary)
	seen := make(map[string]bool, cfg.Vocabulary)
	for i := range vocab {
		for {
			w := mintWord(rng)
			if !seen[w] {
				seen[w] = true
				vocab[i] = w
				break
			}
		}
	}
	// Zipf over the vocabulary: word rank r has weight 1/(r+1)^1.0.
	wordZipf := rand.NewZipf(rng, 1.4, 1, uint64(cfg.Vocabulary-1))

	c := &Catalog{
		files:  make([]File, cfg.NumFiles),
		cum:    make([]float64, cfg.NumFiles),
		byHash: make(map[ed2k.Hash]int, cfg.NumFiles),
	}
	for i := 0; i < cfg.NumFiles; i++ {
		kind := sampleKind(rng)
		f := File{
			Index:  i,
			Kind:   kind,
			Name:   mintName(rng, vocab, wordZipf, kind),
			Size:   sampleSize(rng, kind),
			Weight: 1.0 / math.Pow(float64(i+1), cfg.PopularityExp),
		}
		f.Hash = ed2k.SyntheticHash(fmt.Sprintf("catalog/%d/%d/%s", cfg.Seed, i, f.Name))
		c.files[i] = f
		c.total += f.Weight
		c.cum[i] = c.total
		c.byHash[f.Hash] = i
	}
	return c
}

func mintWord(rng *rand.Rand) string {
	n := 2 + rng.Intn(3)
	w := ""
	for i := 0; i < n; i++ {
		w += syllables[rng.Intn(len(syllables))]
	}
	return w
}

func mintName(rng *rand.Rand, vocab []string, wordZipf *rand.Zipf, kind Kind) string {
	n := 2 + rng.Intn(4)
	name := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			name += "."
		}
		name += vocab[int(wordZipf.Uint64())%len(vocab)]
	}
	if rng.Float64() < 0.3 {
		name += fmt.Sprintf(".%d", 1995+rng.Intn(14))
	}
	return name + kind.extension()
}

func sampleKind(rng *rand.Rand) Kind {
	x := rng.Float64()
	for _, km := range kindMix {
		if x < km.prob {
			return km.kind
		}
		x -= km.prob
	}
	return Song
}

func sampleSize(rng *rand.Rand, kind Kind) int64 {
	u := rng.Float64()
	between := func(lo, hi int64) int64 {
		return lo + int64(u*float64(hi-lo))
	}
	switch kind {
	case Movie:
		return between(650<<20, 4500<<20)
	case Song:
		return between(3<<20, 12<<20)
	case Distro:
		return between(600<<20, 4300<<20)
	case Text:
		return between(50<<10, 10<<20)
	case Archive:
		return between(10<<20, 2000<<20)
	case Image:
		return between(100<<10, 5<<20)
	default:
		return 1 << 20
	}
}

// Len returns the catalog size.
func (c *Catalog) Len() int { return len(c.files) }

// File returns entry i.
func (c *Catalog) File(i int) File { return c.files[i] }

// ByHash finds a file by its ed2k hash.
func (c *Catalog) ByHash(h ed2k.Hash) (File, bool) {
	i, ok := c.byHash[h]
	if !ok {
		return File{}, false
	}
	return c.files[i], true
}

// Sample draws a file according to the popularity law.
func (c *Catalog) Sample(rng *rand.Rand) File {
	x := rng.Float64() * c.total
	i := sort.SearchFloat64s(c.cum, x)
	if i >= len(c.files) {
		i = len(c.files) - 1
	}
	return c.files[i]
}

// SampleLibrary draws up to n distinct files, popularity-weighted: a
// simulated peer's shared folder.
func (c *Catalog) SampleLibrary(rng *rand.Rand, n int) []File {
	if n > len(c.files) {
		n = len(c.files)
	}
	out := make([]File, 0, n)
	taken := make(map[int]bool, n)
	for attempts := 0; len(out) < n && attempts < 20*n; attempts++ {
		f := c.Sample(rng)
		if !taken[f.Index] {
			taken[f.Index] = true
			out = append(out, f)
		}
	}
	return out
}

// TopN returns the n most popular files (lowest indices).
func (c *Catalog) TopN(n int) []File {
	if n > len(c.files) {
		n = len(c.files)
	}
	out := make([]File, n)
	copy(out, c.files[:n])
	return out
}

// MeanSize returns the average file size, used to reproduce the "space
// used by distinct files" row of Table I.
func (c *Catalog) MeanSize() int64 {
	if len(c.files) == 0 {
		return 0
	}
	var sum int64
	for _, f := range c.files {
		sum += f.Size
	}
	return sum / int64(len(c.files))
}
