package catalog

import (
	"math/rand"
	"strings"
	"testing"
)

func small() Config {
	return Config{NumFiles: 2000, Vocabulary: 300, PopularityExp: 0.9, Seed: 7}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(small())
	b := Generate(small())
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := 0; i < a.Len(); i++ {
		fa, fb := a.File(i), b.File(i)
		if fa.Hash != fb.Hash || fa.Name != fb.Name || fa.Size != fb.Size {
			t.Fatalf("file %d differs between runs", i)
		}
	}
}

func TestHashesUnique(t *testing.T) {
	c := Generate(small())
	seen := map[string]bool{}
	for i := 0; i < c.Len(); i++ {
		h := c.File(i).Hash.String()
		if seen[h] {
			t.Fatalf("duplicate hash at %d", i)
		}
		seen[h] = true
	}
}

func TestByHash(t *testing.T) {
	c := Generate(small())
	f := c.File(123)
	got, ok := c.ByHash(f.Hash)
	if !ok || got.Index != 123 {
		t.Errorf("ByHash: ok=%v index=%d", ok, got.Index)
	}
	var zero [16]byte
	if _, ok := c.ByHash(zero); ok {
		t.Error("ByHash(zero) should miss")
	}
}

func TestPopularitySampling(t *testing.T) {
	c := Generate(small())
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, c.Len())
	const draws = 200_000
	for i := 0; i < draws; i++ {
		counts[c.Sample(rng).Index]++
	}
	// Rank 0 must be sampled far more often than rank 1000.
	if counts[0] < 5*counts[1000] {
		t.Errorf("popularity skew too weak: rank0=%d rank1000=%d", counts[0], counts[1000])
	}
	// Head heaviness: top 1% of files should receive well over 5% of draws.
	head := 0
	for i := 0; i < c.Len()/100; i++ {
		head += counts[i]
	}
	if float64(head)/draws < 0.05 {
		t.Errorf("top 1%% of files got only %.2f%% of draws", 100*float64(head)/draws)
	}
}

func TestSampleLibraryDistinct(t *testing.T) {
	c := Generate(small())
	rng := rand.New(rand.NewSource(2))
	lib := c.SampleLibrary(rng, 50)
	if len(lib) != 50 {
		t.Fatalf("library size %d", len(lib))
	}
	seen := map[int]bool{}
	for _, f := range lib {
		if seen[f.Index] {
			t.Fatalf("duplicate file %d in library", f.Index)
		}
		seen[f.Index] = true
	}
}

func TestSampleLibraryClampsToCatalog(t *testing.T) {
	c := Generate(Config{NumFiles: 10, Vocabulary: 50, PopularityExp: 0.9, Seed: 1})
	rng := rand.New(rand.NewSource(3))
	lib := c.SampleLibrary(rng, 100)
	if len(lib) > 10 {
		t.Errorf("library larger than catalog: %d", len(lib))
	}
}

func TestTopN(t *testing.T) {
	c := Generate(small())
	top := c.TopN(10)
	if len(top) != 10 {
		t.Fatalf("TopN length %d", len(top))
	}
	for i, f := range top {
		if f.Index != i {
			t.Errorf("TopN[%d].Index = %d", i, f.Index)
		}
	}
	if got := c.TopN(1 << 20); len(got) != c.Len() {
		t.Errorf("TopN over catalog size: %d", len(got))
	}
}

func TestNamesLookRealistic(t *testing.T) {
	c := Generate(small())
	exts := map[string]bool{".avi": true, ".mp3": true, ".iso": true, ".pdf": true, ".rar": true, ".jpg": true}
	for i := 0; i < 200; i++ {
		name := c.File(i).Name
		dot := strings.LastIndex(name, ".")
		if dot < 0 || !exts[name[dot:]] {
			t.Errorf("file %d name %q has unexpected extension", i, name)
		}
		if len(name) < 5 {
			t.Errorf("name too short: %q", name)
		}
	}
}

func TestWordReuseAcrossNames(t *testing.T) {
	// The anonymization threshold logic depends on words recurring across
	// file names; verify the vocabulary actually gets reused.
	c := Generate(small())
	freq := map[string]int{}
	for i := 0; i < c.Len(); i++ {
		name := c.File(i).Name
		name = strings.TrimSuffix(name, name[strings.LastIndex(name, "."):])
		for _, w := range strings.Split(name, ".") {
			freq[w]++
		}
	}
	reused := 0
	for _, n := range freq {
		if n >= 5 {
			reused++
		}
	}
	if reused < 50 {
		t.Errorf("only %d words reused >=5 times; name vocabulary too flat", reused)
	}
}

func TestMeanSizeInPaperBallpark(t *testing.T) {
	c := Generate(Config{NumFiles: 20000, Vocabulary: 2000, PopularityExp: 0.9, Seed: 5})
	mean := c.MeanSize()
	// Paper: 9TB/28,007 ≈ 321 MB and 90TB/267,047 ≈ 337 MB per file.
	if mean < 150<<20 || mean > 700<<20 {
		t.Errorf("mean size %d MB outside the paper's ballpark", mean>>20)
	}
}

func TestSizesPositiveAndBounded(t *testing.T) {
	c := Generate(small())
	for i := 0; i < c.Len(); i++ {
		s := c.File(i).Size
		if s <= 0 || s > 5<<30 {
			t.Errorf("file %d size %d out of range", i, s)
		}
	}
}

func TestKindString(t *testing.T) {
	if Movie.String() != "Video" || Song.String() != "Audio" {
		t.Error("kind tags")
	}
	if Kind(99).String() != "Unknown" {
		t.Error("unknown kind tag")
	}
}

func BenchmarkGenerate10k(b *testing.B) {
	cfg := Config{NumFiles: 10000, Vocabulary: 2000, PopularityExp: 0.9, Seed: 1}
	for i := 0; i < b.N; i++ {
		Generate(cfg)
	}
}

func BenchmarkSample(b *testing.B) {
	c := Generate(small())
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Sample(rng)
	}
}
