package scenario

import (
	"fmt"
	"net/netip"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/catalog"
	"repro/internal/client"
	"repro/internal/control"
	"repro/internal/des"
	"repro/internal/ed2k"
	"repro/internal/faultfs"
	"repro/internal/honeypot"
	"repro/internal/logging"
	"repro/internal/logstore"
	"repro/internal/manager"
	"repro/internal/netsim"
	"repro/internal/peersim"
	"repro/internal/server"
)

// honeypotPort is the fleet's peer listening port (eDonkey convention).
const honeypotPort = 4662

// settleDelay is how long the engine lets placement settle before
// starting workloads (the paper saw its first query after ten minutes;
// five virtual minutes cover the manager's setup exchange).
const settleDelay = 5 * time.Minute

// Result is the outcome of one campaign.
type Result struct {
	// Name labels the campaign ("distributed", "greedy", ...).
	Name string
	// Dataset is the manager's merged, renumbered, audited output.
	Dataset *manager.Dataset
	// Start and Days delimit the measurement window.
	Start time.Time
	Days  int
	// Scale is the spec's arrival-intensity scale (1.0 = paper
	// magnitudes); calibration scale-normalizes expectations with it.
	Scale float64
	// HoneypotIDs lists the fleet in launch order.
	HoneypotIDs []string
	// GroupOf maps honeypot ID to its strategy name ("random-content" /
	// "no-content").
	GroupOf map[string]string
	// Advertised is the final advertised file set (grown by adoption in
	// greedy campaigns).
	Advertised []client.SharedFile
	// PopStats, ServerStats and HoneypotStats expose component counters.
	// Multi-workload campaigns sum their populations into PopStats; the
	// per-workload breakdown is WorkloadStats, in spec order.
	PopStats      peersim.Stats
	WorkloadStats []peersim.Stats
	ServerStats   server.Stats
	HoneypotStats map[string]honeypot.Stats
	// Relaunches counts fault-driven honeypot relaunches by ID.
	Relaunches map[string]int
	// CollectionGaps counts collection rounds the manager gave up on,
	// by honeypot ID — the audit trail of every degraded round (link
	// flaps, storage faults). Honeypots with no gaps are absent. With a
	// durable source the records arrive late, not never; in-memory
	// campaigns may genuinely lose what a crash took with it.
	CollectionGaps map[string]int
	// DroppedRecords counts records the spill store failed to persist
	// (disk-fault windows): appends that errored plus buffered records
	// a heal's truncation could not save. Zero for in-memory campaigns.
	DroppedRecords uint64
	// Faults is the executed fault log, in order.
	Faults []FaultEvent
	// Events is the number of simulation events executed.
	Events uint64
	// StoreDir, when the campaign ran in spill-to-disk mode, is the
	// logstore directory holding every record in segmented files (one
	// shard per honeypot). Empty for in-memory campaigns.
	StoreDir string
	// StoredRecords is the record count persisted in StoreDir.
	StoredRecords uint64
	// Frame is the columnar campaign image, built record-by-record from
	// the streaming finalize pipeline when Collection.Stream (or
	// ExportDir) is set — in that mode Dataset.Records is nil and every
	// analysis derives from the frame. Nil for materialized campaigns.
	Frame *analysis.Frame
	// ExportDir, when Collection.ExportDir was set, is the logstore
	// directory holding the anonymized dataset (one shard per
	// honeypot); ExportedRecords is the record count written there.
	ExportDir       string
	ExportedRecords uint64
	// Engine is the event loop's final internal counters.
	Engine des.Stats
	// Aborted reports that a progress callback stopped the campaign
	// before its scheduled end; AbortedAt is the virtual time it
	// stopped. The Result then covers only the records collected up to
	// that point.
	Aborted   bool
	AbortedAt time.Time
}

// Meta derives the campaign's analysis metadata — the measurement
// window, fleet, strategy grouping and advertised hashes — in the shape
// the analysis query engine consumes (analysis.Exec, analysis.PaperPlan).
func (r *Result) Meta() analysis.CampaignMeta {
	adv := make([]ed2k.Hash, len(r.Advertised))
	for i := range r.Advertised {
		adv[i] = r.Advertised[i].Hash
	}
	return analysis.CampaignMeta{
		Name:        r.Name,
		Start:       r.Start,
		Days:        r.Days,
		Scale:       r.Scale,
		HoneypotIDs: r.HoneypotIDs,
		GroupOf:     r.GroupOf,
		Advertised:  adv,
	}
}

// FaultEvent is one executed entry of the fault schedule.
type FaultEvent struct {
	// At is when the action was applied (virtual time).
	At time.Time
	// Kind is "server-outage", "server-restart", "honeypot-crash",
	// "honeypot-relaunch", "link-down", "link-up", "disk-fault" or
	// "disk-restore".
	Kind string
	// Target is the server name or honeypot ID.
	Target string
}

// launched is the engine's per-honeypot launch record, kept so fault
// actions can rebuild the honeypot exactly as it was.
type launched struct {
	cfg    honeypot.Config
	files  []client.SharedFile
	server netip.AddrPort
	shard  *logstore.Shard // non-nil in spill-to-disk mode
}

// world is the running campaign.
type world struct {
	spec  Spec
	loop  *des.Loop
	net   *netsim.Network
	srvs  []*server.Server
	mgr   *manager.Manager
	hps   []*honeypot.Honeypot
	ids   []string
	info  []launched
	store *logstore.Store // non-nil in spill-to-disk mode
	fsw   *faultfs.Switch // non-nil when the spec schedules disk faults
	cat   *catalog.Catalog

	faultLog []FaultEvent

	// Telemetry tap state (see progress.go).
	opts       RunOptions
	em         engineMetrics
	pops       []*peersim.Population
	wallStart  time.Time
	lastEvents uint64
	lastWall   time.Duration
	lastEmit   time.Duration
	aborted    bool
}

// Run validates the spec and executes it on a fresh simulated world.
// It is RunWith with no tap and no telemetry.
func Run(spec Spec) (*Result, error) { return RunWith(spec, RunOptions{}) }

// RunWith is Run with a telemetry tap: opts.Progress receives
// mid-campaign snapshots (and can abort the run), opts.Metrics receives
// the whole stack's counters and gauges. The tap never perturbs the
// simulation — a tapped campaign's dataset is record-for-record
// identical to an untapped one.
func RunWith(spec Spec, opts RunOptions) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	w, err := buildWorld(spec, opts)
	if err != nil {
		return nil, err
	}
	if spec.Collection.StoreDir != "" {
		if err := w.attachStore(spec.Collection.StoreDir); err != nil {
			return nil, err
		}
		defer w.closeStore() // error paths; finish() closes on success
	}
	w.cat = catalog.Generate(spec.Catalog)
	secret := spec.secret()

	env := &Env{
		Spec:      spec,
		Catalog:   w.cat,
		Honeypots: make(map[string]*honeypot.Honeypot, len(spec.Fleet)),
		Files:     make(map[string][]client.SharedFile, len(spec.Fleet)),
	}
	for _, hs := range spec.Fleet {
		strat, err := parseStrategy(hs.Strategy)
		if err != nil {
			return nil, fmt.Errorf("scenario: honeypot %s: %w", hs.ID, err)
		}
		files, err := resolveFiles(hs.Files, w.cat)
		if err != nil {
			return nil, fmt.Errorf("scenario: honeypot %s: %w", hs.ID, err)
		}
		hp, err := w.addHoneypot(honeypot.Config{
			ID: hs.ID, Strategy: strat, Port: honeypotPort, Secret: secret,
			BrowseContacts: hs.BrowseContacts,
			Greedy:         hs.Greedy,
			GreedyWindow:   time.Duration(hs.GreedyWindow),
			GreedyMaxFiles: hs.GreedyMaxFiles,
		}, files, w.srvs[hs.Server].Addr())
		if err != nil {
			return nil, err
		}
		env.Honeypots[hs.ID] = hp
		env.Files[hs.ID] = files
	}
	w.mgr.Start()
	w.advance(CampaignStart.Add(settleDelay))

	// Workload starts and fault actions share one timeline, executed in
	// order between RunUntil segments — exactly how the hand-assembled
	// failure tests drove their worlds. pops is indexed by workload spec
	// position (not start order), so Result.WorkloadStats lines up with
	// Spec.Workloads.
	pops := make([]*peersim.Population, len(spec.Workloads))
	w.pops = pops
	actions, err := w.timeline(spec, env, pops)
	if err != nil {
		return nil, err
	}
	for _, a := range actions {
		if at := CampaignStart.Add(a.at); at.After(w.loop.Now()) {
			w.advance(at)
		}
		if w.aborted {
			// The tap stopped the campaign: skip every not-yet-due
			// action and go straight to finalize.
			break
		}
		if err := a.run(); err != nil {
			return nil, err
		}
	}
	return w.finish(spec, pops)
}

// buildWorld creates the federation, the manager and an empty fleet.
func buildWorld(spec Spec, opts RunOptions) (*world, error) {
	n := spec.Topology.Servers
	loop := des.NewLoopOpts(CampaignStart, spec.Seed, des.Options{Scheduler: opts.Scheduler})
	nw := netsim.New(loop, netsim.DefaultConfig())

	hosts := make([]*netsim.Host, n)
	addrs := make([]netip.AddrPort, n)
	for i := 0; i < n; i++ {
		hosts[i] = nw.NewHost(fmt.Sprintf("server-%d", i))
		addrs[i] = netip.AddrPortFrom(hosts[i].Addr(), 4661)
	}
	w := &world{
		spec: spec, loop: loop, net: nw,
		opts:      opts,
		em:        newEngineMetrics(opts.Metrics),
		wallStart: time.Now(),
	}
	for i := 0; i < n; i++ {
		cfg := server.DefaultConfig(fmt.Sprintf("paper-server-%d", i))
		cfg.KnownServers = addrs // federation: everyone knows everyone
		srv := server.New(hosts[i], cfg)
		if err := srv.Start(); err != nil {
			return nil, fmt.Errorf("scenario: starting server %d: %w", i, err)
		}
		w.srvs = append(w.srvs, srv)
	}

	mcfg := manager.DefaultConfig()
	if spec.Collection.Every > 0 {
		mcfg.CollectEvery = time.Duration(spec.Collection.Every)
	}
	mcfg.CollectRetries = spec.Collection.Retries
	mcfg.CollectRetryBackoff = time.Duration(spec.Collection.RetryBackoff)
	mcfg.Metrics = opts.Metrics
	w.mgr = manager.New(nw.NewHost("manager"), mcfg)
	return w, nil
}

// attachStore switches the world to spill-to-disk mode: honeypots added
// afterwards write through shards of a store at dir, and the manager
// streams the store at finalize instead of holding logs in memory.
func (w *world) attachStore(dir string) error {
	opt := logstore.Options{Metrics: w.opts.Metrics}
	for _, f := range w.spec.Faults {
		// Disk faults in the schedule: run the store on an injectable
		// filesystem whose Switch the disk-fault actions flip. Fault-free
		// specs keep the plain OS path, byte for byte.
		if f.Kind == FaultDiskIOError {
			w.fsw = faultfs.NewSwitch()
			opt.FS = faultfs.Wrap(faultfs.OS{}, w.fsw)
			break
		}
	}
	store, err := logstore.Open(dir, opt)
	if err != nil {
		return fmt.Errorf("scenario: opening store: %w", err)
	}
	// A simulated campaign starts from nothing; records left by an
	// earlier run would silently merge into (and double) the dataset.
	// Live honeypots resume dirty stores on purpose — campaigns refuse.
	if n := store.TotalRecords(); n > 0 {
		store.Close()
		return fmt.Errorf("scenario: store %s already holds %d records from a previous run; point it at a fresh directory", dir, n)
	}
	w.store = store
	w.mgr.SetStore(store)
	return nil
}

// closeStore releases the spill store; safe to call twice, so Run can
// defer it for error paths while finish() handles success.
func (w *world) closeStore() error {
	if w.store == nil {
		return nil
	}
	err := w.store.Close()
	w.store = nil
	return err
}

// serverAddrs lists all directory servers.
func (w *world) serverAddrs() []netip.AddrPort {
	out := make([]netip.AddrPort, len(w.srvs))
	for i, s := range w.srvs {
		out[i] = s.Addr()
	}
	return out
}

// addHoneypot creates, registers and places one honeypot on the given
// directory server.
func (w *world) addHoneypot(cfg honeypot.Config, files []client.SharedFile, on netip.AddrPort) (*honeypot.Honeypot, error) {
	var shard *logstore.Shard
	if w.store != nil {
		var err error
		if shard, err = w.store.Shard(cfg.ID); err != nil {
			return nil, fmt.Errorf("scenario: honeypot %s: %w", cfg.ID, err)
		}
		cfg.Sink = shard
	}
	hp := honeypot.New(w.net.NewHost(cfg.ID), cfg)
	if err := hp.Client().Listen(); err != nil {
		return nil, fmt.Errorf("scenario: honeypot %s: %w", cfg.ID, err)
	}
	w.mgr.Add(w.newHandle(cfg.ID, hp, shard), manager.Assignment{
		Server: on,
		Files:  files,
	})
	w.hps = append(w.hps, hp)
	w.ids = append(w.ids, cfg.ID)
	w.info = append(w.info, launched{cfg: cfg, files: files, server: on, shard: shard})
	return hp, nil
}

// newHandle builds the manager-side handle for fleet member id: plain
// local, store-backed when a shard exists, and wrapped in a flakyHandle
// when the schedule flaps this honeypot's link. Launch and relaunch
// share it, so a relaunched honeypot keeps identical failure semantics.
func (w *world) newHandle(id string, hp *honeypot.Honeypot, shard *logstore.Shard) manager.Handle {
	var handle manager.Handle = manager.NewLocalHandle(id, hp, w.mgr.Host())
	if shard != nil {
		handle = manager.NewLocalHandleWithStore(id, hp, shard, w.mgr.Host())
	}
	for _, f := range w.spec.Faults {
		if f.Kind == FaultLinkFlap && f.Honeypot == id {
			return &flakyHandle{inner: handle, host: hp.Client().Host().(*netsim.Host)}
		}
	}
	return handle
}

// flakyHandle makes the in-process control shortcut honest about the
// network: netsim partitions cut peer traffic, but a LocalHandle call
// never crosses a wire, so without this wrapper the manager would keep
// collecting from a honeypot nobody can reach. While the host's link is
// down every exchange fails with a timeout, exactly as a control.Link
// behind a dead WAN path would after its retry budget.
type flakyHandle struct {
	inner manager.Handle
	host  *netsim.Host
}

func (f *flakyHandle) down() error {
	if f.host.LinkDown() {
		return fmt.Errorf("scenario: %s: link down: %w", f.inner.ID(), control.ErrTimeout)
	}
	return nil
}

// ID implements manager.Handle.
func (f *flakyHandle) ID() string { return f.inner.ID() }

// Status implements manager.Handle.
func (f *flakyHandle) Status(cb func(honeypot.Status, error)) {
	if err := f.down(); err != nil {
		cb(honeypot.Status{}, err)
		return
	}
	f.inner.Status(cb)
}

// Advertise implements manager.Handle.
func (f *flakyHandle) Advertise(files []client.SharedFile, cb func(error)) {
	if err := f.down(); err != nil {
		cb(err)
		return
	}
	f.inner.Advertise(files, cb)
}

// ConnectServer implements manager.Handle.
func (f *flakyHandle) ConnectServer(server netip.AddrPort, cb func(error)) {
	if err := f.down(); err != nil {
		cb(err)
		return
	}
	f.inner.ConnectServer(server, cb)
}

// TakeRecords implements manager.Handle. A failed drain leaves the
// honeypot's buffer untouched — the records wait out the flap.
func (f *flakyHandle) TakeRecords(cb func([]logging.Record, error)) {
	if err := f.down(); err != nil {
		cb(nil, err)
		return
	}
	f.inner.TakeRecords(cb)
}

// Shard implements manager.StoreBackedHandle by delegation (nil when
// the inner handle is not store-backed).
func (f *flakyHandle) Shard() *logstore.Shard {
	if sb, ok := f.inner.(manager.StoreBackedHandle); ok {
		return sb.Shard()
	}
	return nil
}

// Close implements manager.Handle.
func (f *flakyHandle) Close() { f.inner.Close() }

// action is one timeline entry: start a workload, crash something,
// restart something.
type action struct {
	at  time.Duration // offset from campaign start
	run func() error
}

// timeline compiles workload starts and the fault schedule into one
// time-ordered action list. Ties keep insertion order (workloads before
// faults), so identical specs always replay identically. Each started
// population lands in pops at its workload's spec index.
func (w *world) timeline(spec Spec, env *Env, pops []*peersim.Population) ([]action, error) {
	var actions []action

	for i := range spec.Workloads {
		i := i
		ws := spec.Workloads[i]
		pcfg, err := w.workloadConfig(spec, env, ws)
		if err != nil {
			return nil, fmt.Errorf("scenario: workload %s: %w", ws.Label, err)
		}
		at := time.Duration(ws.StartOffset)
		if at < settleDelay {
			at = settleDelay // never before placement settles
		}
		actions = append(actions, action{at: at, run: func() error {
			pop := peersim.New(w.net, pcfg)
			pop.Start()
			pops[i] = pop
			return nil
		}})
	}

	for i := range spec.Faults {
		f := spec.Faults[i]
		switch f.Kind {
		case FaultServerOutage:
			actions = append(actions,
				action{at: time.Duration(f.At), run: func() error { return w.crashServer(f.Server) }},
				action{at: time.Duration(f.At) + time.Duration(f.Downtime), run: func() error { return w.restartServer(f.Server) }},
			)
		case FaultHoneypotCrash:
			actions = append(actions,
				action{at: time.Duration(f.At), run: func() error { return w.crashHoneypot(f.Honeypot) }},
				action{at: time.Duration(f.At) + time.Duration(f.Downtime), run: func() error { return w.relaunchHoneypot(f.Honeypot) }},
			)
		case FaultLinkFlap:
			actions = append(actions,
				action{at: time.Duration(f.At), run: func() error { return w.setLink(f.Honeypot, true) }},
				action{at: time.Duration(f.At) + time.Duration(f.Downtime), run: func() error { return w.setLink(f.Honeypot, false) }},
			)
		case FaultDiskIOError:
			actions = append(actions,
				action{at: time.Duration(f.At), run: func() error { return w.setDiskFault(f.Honeypot, true) }},
				action{at: time.Duration(f.At) + time.Duration(f.Downtime), run: func() error { return w.setDiskFault(f.Honeypot, false) }},
			)
		}
	}

	sort.SliceStable(actions, func(i, j int) bool { return actions[i].at < actions[j].at })
	return actions, nil
}

// workloadConfig compiles one WorkloadSpec into a peersim.Config.
func (w *world) workloadConfig(spec Spec, env *Env, ws WorkloadSpec) (peersim.Config, error) {
	pcfg := peersim.DefaultConfig()
	pcfg.Label = ws.Label
	pcfg.Server = w.srvs[0].Addr()
	if len(ws.Servers) > 0 {
		addrs := make([]netip.AddrPort, len(ws.Servers))
		for i, idx := range ws.Servers {
			addrs[i] = w.srvs[idx].Addr()
		}
		pcfg.Server = addrs[0]
		if len(addrs) > 1 {
			pcfg.Servers = addrs
		}
	}
	pcfg.Start = CampaignStart.Add(time.Duration(ws.StartOffset))
	pcfg.End = spec.end()
	if ws.EndOffset > 0 {
		pcfg.End = CampaignStart.Add(time.Duration(ws.EndOffset))
	}
	pcfg.Scale = spec.Scale
	pcfg.Catalog = env.Catalog
	pcfg.LibraryRegion = ws.LibraryRegion
	if ws.LibraryMean > 0 {
		pcfg.LibraryMean = ws.LibraryMean
	}
	if ws.DecayPerDay > 0 {
		pcfg.DecayPerDay = ws.DecayPerDay
	}
	pcfg.HeavyHitters = ws.HeavyHitters
	if ws.MaxSourcesPerPeer > 0 {
		pcfg.MaxSourcesPerPeer = ws.MaxSourcesPerPeer
	}
	pcfg.WantsMax = ws.WantsMax
	pcfg.RefreshTargets = time.Duration(ws.RefreshTargets)

	build := targetBuilders[ws.Targets.Kind]
	if build == nil {
		return pcfg, fmt.Errorf("unknown targets kind %q", ws.Targets.Kind)
	}
	targets, perWeight, err := build(env, ws)
	if err != nil {
		return pcfg, err
	}
	pcfg.Targets = targets
	pcfg.ArrivalsPerWeightPerDay = perWeight
	return pcfg, nil
}

// crashServer takes a federation member's host down.
func (w *world) crashServer(idx int) error {
	srv := w.srvs[idx]
	host, ok := w.net.HostAt(srv.Addr().Addr())
	if !ok {
		return fmt.Errorf("scenario: fault: no host for server %d", idx)
	}
	host.Crash()
	w.faultLog = append(w.faultLog, FaultEvent{At: w.loop.Now(), Kind: "server-outage", Target: fmt.Sprintf("server-%d", idx)})
	return nil
}

// restartServer brings the host back and starts a fresh server process
// on the same address, as an operator would; the manager's health check
// then reconnects the fleet and re-pushes assignments.
func (w *world) restartServer(idx int) error {
	host, ok := w.net.HostAt(w.srvs[idx].Addr().Addr())
	if !ok {
		return fmt.Errorf("scenario: fault: no host for server %d", idx)
	}
	host.Restart()
	cfg := server.DefaultConfig(fmt.Sprintf("paper-server-%d-restarted", idx))
	cfg.KnownServers = w.serverAddrs()
	srv := server.New(host, cfg)
	if err := srv.Start(); err != nil {
		return fmt.Errorf("scenario: fault: restarting server %d: %w", idx, err)
	}
	w.srvs[idx] = srv
	w.faultLog = append(w.faultLog, FaultEvent{At: w.loop.Now(), Kind: "server-restart", Target: fmt.Sprintf("server-%d", idx)})
	return nil
}

// crashHoneypot kills one fleet member's host; records not yet durable
// or collected die with it, as they would on PlanetLab.
func (w *world) crashHoneypot(id string) error {
	i := w.fleetIndex(id)
	if i < 0 {
		return fmt.Errorf("scenario: fault: unknown honeypot %q", id)
	}
	w.hps[i].Client().Host().(*netsim.Host).Crash()
	w.faultLog = append(w.faultLog, FaultEvent{At: w.loop.Now(), Kind: "honeypot-crash", Target: id})
	return nil
}

// relaunchHoneypot restarts the host, rebuilds the honeypot with its
// original config (and shard, so durable logging resumes in place) and
// swaps the manager's handle, which re-pushes the assignment.
func (w *world) relaunchHoneypot(id string) error {
	i := w.fleetIndex(id)
	if i < 0 {
		return fmt.Errorf("scenario: fault: unknown honeypot %q", id)
	}
	info := w.info[i]
	host := w.hps[i].Client().Host().(*netsim.Host)
	host.Restart()
	hp := honeypot.New(host, info.cfg)
	if err := hp.Client().Listen(); err != nil {
		return fmt.Errorf("scenario: fault: relaunching honeypot %s: %w", id, err)
	}
	w.hps[i] = hp
	w.mgr.ReplaceHandle(id, w.newHandle(id, hp, info.shard))
	w.faultLog = append(w.faultLog, FaultEvent{At: w.loop.Now(), Kind: "honeypot-relaunch", Target: id})
	return nil
}

// setLink partitions one honeypot from the network (down=true) or
// restores it. The host keeps running — unlike a crash, its buffered
// records and listeners survive; only the wire is gone. The honeypot's
// flakyHandle watches the same flag, so the manager's collection
// exchanges degrade in lockstep with the peer traffic.
func (w *world) setLink(id string, down bool) error {
	i := w.fleetIndex(id)
	if i < 0 {
		return fmt.Errorf("scenario: fault: unknown honeypot %q", id)
	}
	w.hps[i].Client().Host().(*netsim.Host).SetLinkDown(down)
	kind := "link-up"
	if down {
		kind = "link-down"
	}
	w.faultLog = append(w.faultLog, FaultEvent{At: w.loop.Now(), Kind: kind, Target: id})
	return nil
}

// setDiskFault breaks (broken=true) or restores every mutating
// filesystem operation under one honeypot's shard directory. The
// restore also heals the shard immediately — the supervisor's move —
// so the tail reopens and appends resume without waiting for the
// shard's own backoff.
func (w *world) setDiskFault(id string, broken bool) error {
	i := w.fleetIndex(id)
	if i < 0 {
		return fmt.Errorf("scenario: fault: unknown honeypot %q", id)
	}
	if w.fsw == nil || w.store == nil {
		return fmt.Errorf("scenario: fault: disk-io-error for %s without a spill store", id)
	}
	prefix := filepath.Join(w.store.Dir(), id) + string(filepath.Separator)
	if broken {
		w.fsw.Deny(prefix)
		w.faultLog = append(w.faultLog, FaultEvent{At: w.loop.Now(), Kind: "disk-fault", Target: id})
		return nil
	}
	w.fsw.Allow(prefix)
	if sh := w.info[i].shard; sh != nil {
		if err := sh.Heal(); err != nil {
			return fmt.Errorf("scenario: fault: healing %s after disk restore: %w", id, err)
		}
	}
	w.faultLog = append(w.faultLog, FaultEvent{At: w.loop.Now(), Kind: "disk-restore", Target: id})
	return nil
}

func (w *world) fleetIndex(id string) int {
	for i, have := range w.ids {
		if have == id {
			return i
		}
	}
	return -1
}

// finish runs the campaign to its end, finalizes the dataset and
// collects metadata.
func (w *world) finish(spec Spec, pops []*peersim.Population) (*Result, error) {
	end := spec.end()
	w.advance(end)
	abortedAt := w.loop.Now()
	// Aborted runs drain the collection exchange from where they
	// stopped instead of silently simulating the rest of the campaign.
	drainUntil := end.Add(time.Hour)
	if w.aborted {
		drainUntil = w.loop.Now().Add(time.Hour)
	}
	for _, pop := range pops {
		if pop != nil {
			pop.Stop()
		}
	}

	var ds *manager.Dataset
	var frame *analysis.Frame
	var exported uint64
	var dsErr error
	if spec.Collection.Stream || spec.Collection.ExportDir != "" {
		// Streaming finalize: the manager hands over the anonymized
		// pipeline and the engine drains it straight into the columnar
		// frame (and the export store, when asked) — the campaign's
		// records are never materialized.
		var stream *manager.DatasetStream
		w.mgr.FinalizeStream(func(s *manager.DatasetStream, err error) { stream, dsErr = s, err })
		w.loop.RunUntil(drainUntil)
		if dsErr != nil {
			return nil, dsErr
		}
		if stream == nil {
			return nil, fmt.Errorf("scenario: finalize did not complete")
		}
		defer stream.Close()
		var it logging.Iterator = stream
		var export *logstore.Store
		if dir := spec.Collection.ExportDir; dir != "" {
			var err error
			if export, err = logstore.Open(dir, logstore.Options{Metrics: w.opts.Metrics}); err != nil {
				return nil, fmt.Errorf("scenario: opening export store: %w", err)
			}
			defer export.Close()
			if n := export.TotalRecords(); n > 0 {
				return nil, fmt.Errorf("scenario: export store %s already holds %d records from a previous run; point it at a fresh directory", dir, n)
			}
			// The export tee is the pipeline's last stage; count and time
			// it like the manager's stages (nil-safe counters make the
			// disabled case one branch per record).
			expRecs := w.opts.Metrics.Counter("finalize.export.records")
			expNanos := w.opts.Metrics.Counter("finalize.export.nanos")
			timed := w.opts.Metrics != nil
			it = logging.Map(it, func(r *logging.Record) error {
				var start time.Time
				if timed {
					start = time.Now()
				}
				if err := export.AppendRecord(*r); err != nil {
					return err
				}
				if timed {
					expNanos.Add(uint64(time.Since(start)))
				}
				expRecs.Inc()
				exported++
				return nil
			})
		}
		var err error
		if frame, err = analysis.BuildFrameIter(it); err != nil {
			return nil, fmt.Errorf("scenario: streaming finalize: %w", err)
		}
		if export != nil {
			if err := export.Close(); err != nil {
				return nil, fmt.Errorf("scenario: closing export store: %w", err)
			}
		}
		ds = &manager.Dataset{
			DistinctPeers: stream.DistinctPeers(),
			ReplacedWords: stream.ReplacedWords(),
			PerHoneypot:   stream.PerHoneypot(),
		}
	} else {
		w.mgr.Finalize(func(d *manager.Dataset, err error) { ds, dsErr = d, err })
		// Drain the finalize exchange (bounded: populations stopped).
		w.loop.RunUntil(drainUntil)
		if dsErr != nil {
			return nil, dsErr
		}
		if ds == nil {
			return nil, fmt.Errorf("scenario: finalize did not complete")
		}
	}

	groupOf := make(map[string]string, len(spec.Fleet))
	for _, hs := range spec.Fleet {
		groupOf[hs.ID] = hs.Strategy
	}
	res := &Result{
		Name:            spec.Name,
		Dataset:         ds,
		Frame:           frame,
		ExportDir:       spec.Collection.ExportDir,
		ExportedRecords: exported,
		Start:           CampaignStart,
		Days:            spec.Days,
		Scale:           spec.Scale,
		HoneypotIDs:     w.ids,
		GroupOf:         groupOf,
		ServerStats:     w.srvs[0].Stats(),
		HoneypotStats:   make(map[string]honeypot.Stats, len(w.hps)),
		Faults:          w.faultLog,
		Events:          w.loop.Executed(),
		Engine:          w.loop.Stats(),
		Aborted:         w.aborted,
	}
	if w.aborted {
		res.AbortedAt = abortedAt
	}
	for _, pop := range pops {
		var s peersim.Stats
		if pop != nil {
			s = pop.Stats()
		}
		res.WorkloadStats = append(res.WorkloadStats, s)
		res.PopStats = sumStats(res.PopStats, s)
	}
	for i, hp := range w.hps {
		res.HoneypotStats[w.ids[i]] = hp.Stats()
	}
	// Fleets advertising a shared set report the first member's list;
	// greedy campaigns report the grown list the same way.
	if len(w.hps) > 0 {
		res.Advertised = append([]client.SharedFile(nil), w.hps[0].Advertised()...)
	}
	for _, st := range w.mgr.States() {
		if st.Relaunches > 0 {
			if res.Relaunches == nil {
				res.Relaunches = make(map[string]int)
			}
			res.Relaunches[st.Handle.ID()] = st.Relaunches
		}
		if st.MissedRounds > 0 {
			if res.CollectionGaps == nil {
				res.CollectionGaps = make(map[string]int)
			}
			res.CollectionGaps[st.Handle.ID()] = st.MissedRounds
		}
	}
	if w.store != nil {
		res.StoreDir = w.store.Dir()
		res.StoredRecords = w.store.TotalRecords()
		res.DroppedRecords = w.store.DroppedRecords()
		if err := w.closeStore(); err != nil {
			return nil, fmt.Errorf("scenario: closing store: %w", err)
		}
	}
	// The final snapshot always fires (even wall-throttled), so the tap
	// sees the campaign's end state; its abort return is meaningless now
	// and ignored.
	if w.opts.tapped() {
		w.observe(true)
	}
	return res, nil
}

// sumStats adds two populations' counters.
func sumStats(a, b peersim.Stats) peersim.Stats {
	a.Arrivals += b.Arrivals
	a.PeerExchange += b.PeerExchange
	a.LowID += b.LowID
	a.NoSources += b.NoSources
	a.Contacts += b.Contacts
	a.HardFails += b.HardFails
	a.Blacklists += b.Blacklists
	a.Quits += b.Quits
	a.Completejobs += b.Completejobs
	return a
}
