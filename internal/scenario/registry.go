package scenario

import (
	"fmt"
	"slices"
)

// registry maps scenario names to spec constructors. Constructors (not
// specs) are stored so every Lookup hands out a fresh value the caller
// can mutate freely.
var registry = map[string]func() Spec{}

// Register adds a named scenario. It errors on duplicate names so two
// packages cannot silently shadow each other's campaigns.
func Register(name string, fn func() Spec) error {
	if name == "" || fn == nil {
		return fmt.Errorf("scenario: Register needs a name and a constructor")
	}
	if _, dup := registry[name]; dup {
		return fmt.Errorf("scenario: %q already registered", name)
	}
	registry[name] = fn
	return nil
}

// mustRegister is Register for init-time built-ins.
func mustRegister(name string, fn func() Spec) {
	if err := Register(name, fn); err != nil {
		panic(err)
	}
}

// Lookup returns a fresh copy of a registered scenario's spec.
func Lookup(name string) (Spec, error) {
	fn, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown scenario %q (registered: %v)", name, Names())
	}
	return fn(), nil
}

// Names lists the registered scenarios, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	slices.Sort(names)
	return names
}
