package scenario

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/honeypot"
)

func init() {
	mustRegister("distributed", PaperDistributed)
	mustRegister("greedy", PaperGreedy)
	mustRegister("federation-mixed", FederationMixed)
	mustRegister("churn-fleet", ChurnFleet)
	mustRegister("flash-crowd", FlashCrowd)
	mustRegister("flaky-links", FlakyLinks)
}

// AlternatingFleet builds n honeypots named hp-00.., half
// random-content (even ranks) and half no-content, advertising the
// paper's four bait files, spread round-robin over servers directory
// servers (all on server 0 when servers is 1) — the fleet shape of the
// paper's distributed measurement and of every scenario derived from
// it.
func AlternatingFleet(n, servers int) []HoneypotSpec {
	fleet := make([]HoneypotSpec, n)
	for i := range fleet {
		strat := honeypot.NoContent.String()
		if i%2 == 0 {
			strat = honeypot.RandomContent.String()
		}
		srv := 0
		if servers > 1 {
			srv = i % servers
		}
		fleet[i] = HoneypotSpec{
			ID:             fmt.Sprintf("hp-%02d", i),
			Strategy:       strat,
			Server:         srv,
			Files:          FilesSpec{Kind: "four-bait"},
			BrowseContacts: true,
		}
	}
	return fleet
}

// serverIndices is [0..n).
func serverIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// PaperDistributed is the paper's distributed measurement (§IV-A) as a
// spec: 24 honeypots on one large server, half answering random content
// and half none, advertising the same four files for 32 days.
func PaperDistributed() Spec {
	return Spec{
		Name:     "distributed",
		Seed:     1,
		Days:     32,
		Scale:    1.0,
		Catalog:  catalog.DefaultConfig(),
		Topology: Topology{Servers: 1},
		Fleet:    AlternatingFleet(24, 1),
		Workloads: []WorkloadSpec{{
			Label: "distributed-pop",
			// Day-one intensity calibrated so 32 days at scale 1 yield
			// ≈110k distinct peers; decay models waning interest in the
			// four files (Fig 2's declining new-peers curve).
			ArrivalsPerDay: 4900,
			DecayPerDay:    0.976,
			HeavyHitters:   1,
			LibraryMean:    8,
			LibraryRegion:  30_000,
			// The four files' relative draw: movie > song > distro > text.
			Targets: TargetsSpec{Kind: "static", Weights: []float64{0.45, 0.30, 0.15, 0.10}},
		}},
		Collection: Collection{Every: Duration(time.Hour)},
	}
}

// PaperGreedy is the paper's greedy measurement (§IV-B): one honeypot
// that spends its first day harvesting the shared lists of contacting
// peers and re-advertising every file it sees (capped at the paper's
// 3,175), then measures for 15 days total.
func PaperGreedy() Spec {
	return Spec{
		Name:     "greedy",
		Seed:     2,
		Days:     15,
		Scale:    1.0,
		Catalog:  catalog.DefaultConfig(),
		Topology: Topology{Servers: 1},
		Fleet: []HoneypotSpec{{
			ID:             "hp-greedy",
			Strategy:       honeypot.NoContent.String(),
			Files:          FilesSpec{Kind: "songs", N: 3},
			BrowseContacts: true,
			Greedy:         true,
			GreedyWindow:   Duration(24 * time.Hour),
			GreedyMaxFiles: 3_175,
		}},
		Workloads: []WorkloadSpec{{
			Label:             "greedy-pop",
			ArrivalsPerDay:    54_000, // steady state once the list is grown
			LibraryMean:       15,
			MaxSourcesPerPeer: 1, // only one honeypot exists
			WantsMax:          5, // per-file sums imply peers wanted ≈3 files
			RefreshTargets:    Duration(time.Hour),
			Targets: TargetsSpec{
				Kind:        "advertised-ramp",
				Exp:         0.4, // matches Fig 11/12 per-file peer counts
				Ramp:        Duration(30 * time.Hour),
				NormFiles:   3_175,
				ExemptFirst: 3,
			},
		}},
		Collection: Collection{Every: Duration(time.Hour)},
	}
}

// FederationMixed exercises the placement strategy the paper's §III-A
// describes but never ran: a fleet spread round-robin over a federation
// of directory servers for a more global view, strategies mixed on
// every server, the population logging into a random federation member.
func FederationMixed() Spec {
	return Spec{
		Name:     "federation-mixed",
		Seed:     7,
		Days:     16,
		Scale:    1.0,
		Catalog:  catalog.DefaultConfig(),
		Topology: Topology{Servers: 3},
		Fleet:    AlternatingFleet(12, 3),
		Workloads: []WorkloadSpec{{
			Label:          "federated-pop",
			ArrivalsPerDay: 4900,
			DecayPerDay:    0.985,
			HeavyHitters:   1,
			LibraryMean:    8,
			LibraryRegion:  30_000,
			Servers:        serverIndices(3),
			Targets:        TargetsSpec{Kind: "static", Weights: []float64{0.45, 0.30, 0.15, 0.10}},
		}},
		Collection: Collection{Every: Duration(time.Hour)},
	}
}

// ChurnFleet measures through honeypot churn: fleet members crash and
// relaunch on a staggered schedule (flaky PlanetLab nodes), testing
// that the manager's relaunch path keeps coverage and the dataset spans
// every outage.
func ChurnFleet() Spec {
	return Spec{
		Name:     "churn-fleet",
		Seed:     11,
		Days:     12,
		Scale:    1.0,
		Catalog:  catalog.DefaultConfig(),
		Topology: Topology{Servers: 1},
		Fleet:    AlternatingFleet(8, 1),
		Workloads: []WorkloadSpec{{
			Label:          "churn-pop",
			ArrivalsPerDay: 3000,
			DecayPerDay:    0.99,
			LibraryMean:    8,
			LibraryRegion:  30_000,
			Targets:        TargetsSpec{Kind: "static", Weights: []float64{0.45, 0.30, 0.15, 0.10}},
		}},
		Faults: FaultSchedule{
			{Kind: FaultHoneypotCrash, Honeypot: "hp-01", At: Duration(2 * 24 * time.Hour), Downtime: Duration(12 * time.Hour)},
			{Kind: FaultHoneypotCrash, Honeypot: "hp-04", At: Duration(4 * 24 * time.Hour), Downtime: Duration(6 * time.Hour)},
			{Kind: FaultHoneypotCrash, Honeypot: "hp-01", At: Duration(7 * 24 * time.Hour), Downtime: Duration(24 * time.Hour)},
			{Kind: FaultHoneypotCrash, Honeypot: "hp-06", At: Duration(9*24*time.Hour + 6*time.Hour), Downtime: Duration(8 * time.Hour)},
		},
		Collection: Collection{Every: Duration(30 * time.Minute)},
	}
}

// FlakyLinks measures through network partitions rather than crashes:
// two fleet members repeatedly fall off the network for hours at a time
// (a congested exchange point, a mis-pushed route) while their hosts —
// and their buffered records — keep running. The manager's collection
// rounds retry, then degrade and audit the gap; once a link returns,
// the next round drains everything the flap delayed, so the dataset is
// complete but its gap accounting is not empty.
func FlakyLinks() Spec {
	return Spec{
		Name:     "flaky-links",
		Seed:     17,
		Days:     10,
		Scale:    1.0,
		Catalog:  catalog.DefaultConfig(),
		Topology: Topology{Servers: 1},
		Fleet:    AlternatingFleet(6, 1),
		Workloads: []WorkloadSpec{{
			Label:          "flaky-pop",
			ArrivalsPerDay: 3000,
			DecayPerDay:    0.99,
			LibraryMean:    8,
			LibraryRegion:  30_000,
			Targets:        TargetsSpec{Kind: "static", Weights: []float64{0.45, 0.30, 0.15, 0.10}},
		}},
		Faults: FaultSchedule{
			// Windows are hours long against 30-minute collection rounds:
			// the retry budget cannot bridge them, so gaps must be audited.
			{Kind: FaultLinkFlap, Honeypot: "hp-02", At: Duration(2 * 24 * time.Hour), Downtime: Duration(4 * time.Hour)},
			{Kind: FaultLinkFlap, Honeypot: "hp-05", At: Duration(3*24*time.Hour + 12*time.Hour), Downtime: Duration(2 * time.Hour)},
			{Kind: FaultLinkFlap, Honeypot: "hp-02", At: Duration(6 * 24 * time.Hour), Downtime: Duration(8 * time.Hour)},
		},
		Collection: Collection{
			Every:        Duration(30 * time.Minute),
			Retries:      2,
			RetryBackoff: Duration(time.Minute),
		},
	}
}

// FlashCrowd composes two workloads: a steady baseline population plus
// a short, intense arrival spike (a release-day crowd) halfway through
// the campaign — the kind of regime change a single hardcoded runner
// could never express.
func FlashCrowd() Spec {
	return Spec{
		Name:     "flash-crowd",
		Seed:     13,
		Days:     10,
		Scale:    1.0,
		Catalog:  catalog.DefaultConfig(),
		Topology: Topology{Servers: 1},
		Fleet:    AlternatingFleet(6, 1),
		Workloads: []WorkloadSpec{
			{
				Label:          "baseline-pop",
				ArrivalsPerDay: 3000,
				DecayPerDay:    0.98,
				LibraryMean:    8,
				LibraryRegion:  30_000,
				Targets:        TargetsSpec{Kind: "static", Weights: []float64{0.45, 0.30, 0.15, 0.10}},
			},
			{
				Label:          "crowd-pop",
				ArrivalsPerDay: 40_000,
				StartOffset:    Duration(5 * 24 * time.Hour),
				EndOffset:      Duration(5*24*time.Hour + 18*time.Hour),
				LibraryMean:    8,
				LibraryRegion:  30_000,
				// The crowd storms the most popular file only.
				Targets: TargetsSpec{Kind: "static", Weights: []float64{1, 0, 0, 0}},
			},
		},
		Collection: Collection{Every: Duration(time.Hour)},
	}
}
