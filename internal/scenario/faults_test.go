package scenario

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/logstore"
	"repro/internal/obs"
)

// Tests for the degraded-network and broken-disk fault kinds: campaigns
// finish with a partial-but-audited dataset, and the same spec without
// faults runs exactly as before.

func TestFlakyLinksSmoke(t *testing.T) {
	spec, err := Lookup("flaky-links")
	if err != nil {
		t.Fatal(err)
	}
	spec.Scale = 0.02
	reg := obs.New()
	res, err := RunWith(spec, RunOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dataset.Records) == 0 {
		t.Fatal("campaign produced no records")
	}

	// The schedule flaps hp-02 twice and hp-05 once: six paired events.
	downs, ups := 0, 0
	for _, f := range res.Faults {
		switch f.Kind {
		case "link-down":
			downs++
		case "link-up":
			ups++
		default:
			t.Errorf("unexpected fault event %+v", f)
		}
	}
	if downs != 3 || ups != 3 {
		t.Fatalf("fault log: %d downs, %d ups, want 3/3: %+v", downs, ups, res.Faults)
	}

	// Hours-long flaps against 30-minute rounds: the retry budget cannot
	// bridge them, so both flapped honeypots must show audited gaps.
	if res.CollectionGaps["hp-02"] == 0 || res.CollectionGaps["hp-05"] == 0 {
		t.Fatalf("collection gaps %v, want entries for hp-02 and hp-05", res.CollectionGaps)
	}
	for id := range res.CollectionGaps {
		if id != "hp-02" && id != "hp-05" {
			t.Errorf("honeypot %s has gaps but was never flapped", id)
		}
	}
	// No host died, so nothing was relaunched.
	if len(res.Relaunches) != 0 {
		t.Errorf("link flaps caused relaunches: %v", res.Relaunches)
	}

	// The retry machinery ran and gave up at least once per flap.
	snap := reg.Snapshot()
	if snap.Counters["manager.collect.retries"] == 0 {
		t.Error("no collection retries counted")
	}
	if snap.Counters["manager.collect.degraded"] == 0 {
		t.Error("no degraded rounds counted")
	}

	// A partitioned honeypot sees no peers (nothing reaches it), but the
	// measurement survives the flap: once the last link returns, hp-02 is
	// collected again and contributes records to the end of the campaign.
	lastUp := res.Faults[len(res.Faults)-1].At
	after := 0
	for _, r := range res.Dataset.Records {
		if r.Honeypot == "hp-02" && r.Time.After(lastUp) {
			after++
		}
	}
	if after == 0 {
		t.Error("no hp-02 records after the final link-up; collection never resumed")
	}
}

// TestFlakyLinksDeterministic pins that fault injection draws no
// randomness of its own: two runs of the faulted spec are
// record-for-record identical.
func TestFlakyLinksDeterministic(t *testing.T) {
	spec, err := Lookup("flaky-links")
	if err != nil {
		t.Fatal(err)
	}
	spec.Scale = 0.01
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events {
		t.Errorf("event counts diverge: %d vs %d", a.Events, b.Events)
	}
	if len(a.Dataset.Records) != len(b.Dataset.Records) {
		t.Fatalf("record counts diverge: %d vs %d", len(a.Dataset.Records), len(b.Dataset.Records))
	}
	for i := range a.Dataset.Records {
		if !reflect.DeepEqual(a.Dataset.Records[i], b.Dataset.Records[i]) {
			t.Fatalf("record %d diverges:\n%+v\n%+v", i, a.Dataset.Records[i], b.Dataset.Records[i])
		}
	}
	if !reflect.DeepEqual(a.CollectionGaps, b.CollectionGaps) {
		t.Errorf("gap audits diverge: %v vs %v", a.CollectionGaps, b.CollectionGaps)
	}
}

// TestFaultFreeSpecUnwrapped pins the equivalence guarantee from the
// other side: stripping the fault schedule removes every fault shim —
// no flaky handles, no injectable filesystem — so the dataset matches a
// run of the same spec that never mentioned faults.
func TestFaultFreeSpecUnwrapped(t *testing.T) {
	spec, err := Lookup("flaky-links")
	if err != nil {
		t.Fatal(err)
	}
	spec.Scale = 0.01
	spec.Faults = nil
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) != 0 || res.CollectionGaps != nil || res.DroppedRecords != 0 {
		t.Errorf("fault-free run carries fault artifacts: %d events, gaps %v, dropped %d",
			len(res.Faults), res.CollectionGaps, res.DroppedRecords)
	}
	if len(res.Dataset.Records) == 0 {
		t.Fatal("fault-free run produced no records")
	}
}

// diskFaultSpec is a small spill-to-disk campaign whose hp-00 loses its
// disk for a day in the middle.
func diskFaultSpec(dir string) Spec {
	spec := FlakyLinks()
	spec.Name = "disk-fault"
	spec.Days = 4
	spec.Scale = 0.05
	spec.Faults = FaultSchedule{{
		Kind: FaultDiskIOError, Honeypot: "hp-00",
		At: Duration(24 * time.Hour), Downtime: Duration(24 * time.Hour),
	}}
	spec.Collection.StoreDir = dir
	return spec
}

func TestDiskFaultCampaignAudited(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(diskFaultSpec(dir))
	if err != nil {
		t.Fatal(err)
	}

	kinds := map[string]int{}
	for _, f := range res.Faults {
		kinds[f.Kind]++
	}
	if kinds["disk-fault"] != 1 || kinds["disk-restore"] != 1 {
		t.Fatalf("fault log: %+v", res.Faults)
	}

	// The outage window is a day of a four-day campaign: hp-00 must have
	// lost records, and the loss must be audited, not silent.
	if res.DroppedRecords == 0 {
		t.Fatal("a day-long disk outage dropped no records")
	}
	if res.StoredRecords == 0 {
		t.Fatal("store kept nothing")
	}
	// The heal resumed appends: hp-00 records exist after the restore.
	restore := res.Faults[len(res.Faults)-1].At
	after := 0
	for _, r := range res.Dataset.Records {
		if r.Honeypot == "hp-00" && r.Time.After(restore) {
			after++
		}
	}
	if after == 0 {
		t.Error("no hp-00 records after the disk restore; the shard never healed")
	}

	// The store the campaign leaves behind reopens cleanly on the real
	// filesystem and still holds every persisted record.
	st, err := logstore.Open(dir, logstore.Options{})
	if err != nil {
		t.Fatalf("reopening campaign store: %v", err)
	}
	defer st.Close()
	if got := st.TotalRecords(); got != res.StoredRecords {
		t.Errorf("reopened store holds %d records, campaign reported %d", got, res.StoredRecords)
	}
	if q := st.Quarantined(); len(q) != 0 {
		t.Errorf("healed store quarantined segments on reopen: %+v", q)
	}
}
