package scenario

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestProgressMonotonicCallbacks pins the tap's ordering contract:
// virtual time strictly increases across snapshots, event counts never
// go backwards, the campaign end is constant, and exactly one Final
// snapshot closes the stream.
func TestProgressMonotonicCallbacks(t *testing.T) {
	spec := validSpec()
	var snaps []Progress
	res, err := RunWith(spec, RunOptions{
		SimEvery: 6 * time.Hour,
		Progress: func(p Progress) bool {
			snaps = append(snaps, p)
			return true
		},
	})
	if err != nil {
		t.Fatalf("RunWith: %v", err)
	}
	if len(snaps) < 3 {
		t.Fatalf("only %d snapshots for a %d-day campaign at 6h cadence", len(snaps), spec.Days)
	}
	finals := 0
	for i, p := range snaps {
		if p.Final {
			finals++
			if i != len(snaps)-1 {
				t.Errorf("snapshot %d marked Final but %d followed", i, len(snaps)-1-i)
			}
		}
		if !p.SimEnd.Equal(spec.end()) {
			t.Errorf("snapshot %d: SimEnd = %v, want %v", i, p.SimEnd, spec.end())
		}
		if p.SimElapsed != p.SimTime.Sub(CampaignStart) {
			t.Errorf("snapshot %d: SimElapsed %v disagrees with SimTime %v", i, p.SimElapsed, p.SimTime)
		}
		if i == 0 {
			continue
		}
		if !snaps[i-1].SimTime.Before(p.SimTime) {
			t.Errorf("snapshot %d: SimTime %v did not advance past %v", i, p.SimTime, snaps[i-1].SimTime)
		}
		if p.Events < snaps[i-1].Events {
			t.Errorf("snapshot %d: Events went backwards (%d -> %d)", i, snaps[i-1].Events, p.Events)
		}
	}
	if finals != 1 {
		t.Errorf("got %d Final snapshots, want exactly 1", finals)
	}
	last := snaps[len(snaps)-1]
	if len(last.Fleet) != len(spec.Fleet) {
		t.Errorf("final snapshot covers %d honeypots, want %d", len(last.Fleet), len(spec.Fleet))
	}
	if len(last.Workloads) != len(spec.Workloads) {
		t.Errorf("final snapshot covers %d workloads, want %d", len(last.Workloads), len(spec.Workloads))
	}
	if res.Aborted {
		t.Error("run with always-true callback reported Aborted")
	}
	if res.Engine.Executed == 0 || res.Engine.Executed != res.Events {
		t.Errorf("Result.Engine.Executed = %d, Result.Events = %d", res.Engine.Executed, res.Events)
	}
}

// TestProgressEarlyAbort pins the clean-abort path: the callback
// returning false stops the campaign mid-flight, and the engine still
// finalizes the records gathered so far into a partial Result.
func TestProgressEarlyAbort(t *testing.T) {
	spec := validSpec()
	full, err := Run(spec)
	if err != nil {
		t.Fatalf("untapped run: %v", err)
	}

	calls := 0
	res, err := RunWith(spec, RunOptions{
		SimEvery: 3 * time.Hour,
		Progress: func(p Progress) bool {
			calls++
			return p.SimElapsed < 12*time.Hour
		},
	})
	if err != nil {
		t.Fatalf("aborted run errored: %v", err)
	}
	if !res.Aborted {
		t.Fatal("Result.Aborted not set")
	}
	if !res.AbortedAt.Before(spec.end()) {
		t.Errorf("AbortedAt %v not before campaign end %v", res.AbortedAt, spec.end())
	}
	if res.Dataset == nil {
		t.Fatal("aborted run produced no dataset")
	}
	if len(res.Dataset.Records) == 0 {
		t.Error("aborted run collected nothing; want a partial dataset")
	}
	if len(res.Dataset.Records) >= len(full.Dataset.Records) {
		t.Errorf("aborted run has %d records, full run %d; want fewer",
			len(res.Dataset.Records), len(full.Dataset.Records))
	}
	if calls < 2 {
		t.Errorf("callback ran %d times before aborting at 12h on a 3h cadence", calls)
	}
}

// TestTappedRunIdenticalDataset pins the tap's core guarantee: chunked
// execution with a callback and a live metrics registry produces a
// record-for-record identical dataset to an uninterrupted run.
func TestTappedRunIdenticalDataset(t *testing.T) {
	spec := validSpec()
	plain, err := Run(spec)
	if err != nil {
		t.Fatalf("untapped run: %v", err)
	}
	reg := obs.New()
	tapped, err := RunWith(spec, RunOptions{
		SimEvery: 5 * time.Hour, // deliberately misaligned with the 1h collection period
		Metrics:  reg,
		Progress: func(Progress) bool { return true },
	})
	if err != nil {
		t.Fatalf("tapped run: %v", err)
	}

	if plain.Events != tapped.Events {
		t.Errorf("event counts diverge: untapped %d, tapped %d", plain.Events, tapped.Events)
	}
	if plain.Dataset.DistinctPeers != tapped.Dataset.DistinctPeers {
		t.Errorf("distinct peers diverge: %d vs %d",
			plain.Dataset.DistinctPeers, tapped.Dataset.DistinctPeers)
	}
	if len(plain.Dataset.Records) != len(tapped.Dataset.Records) {
		t.Fatalf("record counts diverge: untapped %d, tapped %d",
			len(plain.Dataset.Records), len(tapped.Dataset.Records))
	}
	for i := range plain.Dataset.Records {
		if !reflect.DeepEqual(plain.Dataset.Records[i], tapped.Dataset.Records[i]) {
			t.Fatalf("record %d diverges:\nuntapped %+v\ntapped   %+v",
				i, plain.Dataset.Records[i], tapped.Dataset.Records[i])
		}
	}

	// The registry saw the whole stack.
	snap := reg.Snapshot()
	if snap.Gauges["engine.events"] == 0 {
		t.Error("engine.events gauge never refreshed")
	}
	if snap.Gauges["campaign.records_collected"] == 0 {
		t.Error("campaign.records_collected gauge never refreshed")
	}
	if got := snap.Gauges["workload.arrivals"]; got == 0 {
		t.Error("workload.arrivals gauge never refreshed")
	}
}
