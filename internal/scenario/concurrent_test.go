package scenario

// The service plane's core safety assumption, pinned: two campaigns
// running concurrently in one process — each with its own telemetry
// registry and its own spill store — interfere with nothing. Every RNG
// in the stack is instance-seeded (engine loop, hosts, catalog,
// workloads, fault fs), so each concurrent run's dataset must be
// record-for-record identical to the same spec run serially.

import (
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// concurrentSpec derives a distinct campaign from validSpec: its own
// name (which seeds workload streams), seed, intensity and spill dir.
func concurrentSpec(name string, seed int64, arrivals float64, spill string) Spec {
	spec := validSpec()
	spec.Name = name
	spec.Seed = seed
	spec.Workloads[0].Label = name + "-pop"
	spec.Workloads[0].ArrivalsPerDay = arrivals
	spec.Collection.StoreDir = spill
	return spec
}

// TestConcurrentRunsMatchSerial runs two different campaigns serially,
// then the same two concurrently (tapped, with independent registries
// and spill stores), and requires both concurrent datasets to be
// bit-identical to their serial baselines.
func TestConcurrentRunsMatchSerial(t *testing.T) {
	dirSerial, dirConc := t.TempDir(), t.TempDir()
	specs := []Spec{
		concurrentSpec("conc-a", 7, 60, filepath.Join(dirSerial, "a")),
		concurrentSpec("conc-b", 11, 90, filepath.Join(dirSerial, "b")),
	}

	baseline := make([]*Result, len(specs))
	for i, spec := range specs {
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("serial %s: %v", spec.Name, err)
		}
		baseline[i] = res
	}

	results := make([]*Result, len(specs))
	errs := make([]error, len(specs))
	regs := make([]*obs.Registry, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		spec.Collection.StoreDir = filepath.Join(dirConc, spec.Name)
		regs[i] = obs.New()
		wg.Add(1)
		go func(i int, spec Spec) {
			defer wg.Done()
			results[i], errs[i] = RunWith(spec, RunOptions{
				SimEvery: 5 * time.Hour,
				Metrics:  regs[i],
				Progress: func(Progress) bool { return true },
			})
		}(i, spec)
	}
	wg.Wait()

	for i, spec := range specs {
		if errs[i] != nil {
			t.Fatalf("concurrent %s: %v", spec.Name, errs[i])
		}
		want, got := baseline[i], results[i]
		if want.Events != got.Events {
			t.Errorf("%s: event counts diverge: serial %d, concurrent %d", spec.Name, want.Events, got.Events)
		}
		if want.Dataset.DistinctPeers != got.Dataset.DistinctPeers {
			t.Errorf("%s: distinct peers diverge: %d vs %d", spec.Name, want.Dataset.DistinctPeers, got.Dataset.DistinctPeers)
		}
		if want.StoredRecords != got.StoredRecords {
			t.Errorf("%s: spill stores diverge: %d vs %d records", spec.Name, want.StoredRecords, got.StoredRecords)
		}
		if len(want.Dataset.Records) != len(got.Dataset.Records) {
			t.Fatalf("%s: record counts diverge: serial %d, concurrent %d",
				spec.Name, len(want.Dataset.Records), len(got.Dataset.Records))
		}
		for j := range want.Dataset.Records {
			if !reflect.DeepEqual(want.Dataset.Records[j], got.Dataset.Records[j]) {
				t.Fatalf("%s: record %d diverges:\nserial     %+v\nconcurrent %+v",
					spec.Name, j, want.Dataset.Records[j], got.Dataset.Records[j])
			}
		}
		// Each run's registry saw its own campaign, not its neighbor's.
		snap := regs[i].Snapshot()
		if snap.Gauges["engine.events"] == 0 {
			t.Errorf("%s: registry never saw the engine", spec.Name)
		}
		if uint64(snap.Gauges["engine.events"]) != got.Events {
			t.Errorf("%s: registry counted %d events, run executed %d — registries shared?",
				spec.Name, snap.Gauges["engine.events"], got.Events)
		}
	}

	// The two campaigns are genuinely different workloads — identical
	// datasets here would mean the test compares a campaign to itself.
	if len(baseline[0].Dataset.Records) == len(baseline[1].Dataset.Records) &&
		baseline[0].Events == baseline[1].Events {
		t.Error("the two campaigns look identical; pick distinct specs")
	}
}
