package scenario

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/catalog"
)

// validSpec is a tiny but fully runnable campaign.
func validSpec() Spec {
	return Spec{
		Name:     "valid",
		Seed:     1,
		Days:     2,
		Scale:    1.0,
		Catalog:  catalog.Config{NumFiles: 2000, Vocabulary: 400, PopularityExp: 0.9, Seed: 3},
		Topology: Topology{Servers: 2},
		Fleet: []HoneypotSpec{
			{ID: "hp-a", Strategy: "random-content", Server: 0, Files: FilesSpec{Kind: "four-bait"}},
			{ID: "hp-b", Strategy: "no-content", Server: 1, Files: FilesSpec{Kind: "songs", N: 2}},
		},
		Workloads: []WorkloadSpec{{
			Label:          "valid-pop",
			ArrivalsPerDay: 50,
			Servers:        []int{0, 1},
			Targets:        TargetsSpec{Kind: "static"},
		}},
		Faults: FaultSchedule{{
			Kind: FaultHoneypotCrash, Honeypot: "hp-a",
			At: Duration(12 * time.Hour), Downtime: Duration(2 * time.Hour),
		}},
		Collection: Collection{Every: Duration(time.Hour)},
	}
}

func TestValidateAcceptsValidSpec(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestValidateFieldErrors breaks one field at a time and checks that
// Validate names exactly that field.
func TestValidateFieldErrors(t *testing.T) {
	cases := []struct {
		field  string // expected FieldError.Field
		break_ func(*Spec)
	}{
		{"name", func(s *Spec) { s.Name = "" }},
		{"days", func(s *Spec) { s.Days = 0 }},
		{"days", func(s *Spec) { s.Days = -3 }},
		{"scale", func(s *Spec) { s.Scale = 0 }},
		{"topology.servers", func(s *Spec) { s.Topology.Servers = 0 }},
		{"collection.every", func(s *Spec) { s.Collection.Every = Duration(-time.Hour) }},
		{"fleet", func(s *Spec) { s.Fleet = nil }},
		{"fleet[0].id", func(s *Spec) { s.Fleet[0].ID = "" }},
		{"fleet[1].id", func(s *Spec) { s.Fleet[1].ID = s.Fleet[0].ID }},
		{"fleet[0].strategy", func(s *Spec) { s.Fleet[0].Strategy = "mystery-content" }},
		{"fleet[1].server", func(s *Spec) { s.Fleet[1].Server = 7 }},
		{"fleet[0].files.kind", func(s *Spec) { s.Fleet[0].Files.Kind = "everything" }},
		{"fleet[1].files.n", func(s *Spec) { s.Fleet[1].Files.N = -1 }},
		{"fleet[0].greedy", func(s *Spec) { s.Fleet[0].GreedyMaxFiles = -1 }},
		{"workloads", func(s *Spec) { s.Workloads = nil }},
		{"workloads[0].label", func(s *Spec) { s.Workloads[0].Label = "" }},
		{"workloads[0].arrivals_per_day", func(s *Spec) { s.Workloads[0].ArrivalsPerDay = 0 }},
		{"workloads[0].decay_per_day", func(s *Spec) { s.Workloads[0].DecayPerDay = -1 }},
		{"workloads[0].start_offset", func(s *Spec) { s.Workloads[0].StartOffset = Duration(72 * time.Hour) }},
		{"workloads[0].end_offset", func(s *Spec) {
			s.Workloads[0].StartOffset = Duration(6 * time.Hour)
			s.Workloads[0].EndOffset = Duration(3 * time.Hour)
		}},
		{"workloads[0].servers[1]", func(s *Spec) { s.Workloads[0].Servers = []int{0, 9} }},
		{"workloads[0].targets.kind", func(s *Spec) { s.Workloads[0].Targets.Kind = "wishes" }},
		{"workloads[0].targets.honeypot", func(s *Spec) { s.Workloads[0].Targets.Honeypot = "hp-zz" }},
		{"faults[0].kind", func(s *Spec) { s.Faults[0].Kind = "meteor" }},
		{"faults[0].honeypot", func(s *Spec) { s.Faults[0].Honeypot = "hp-zz" }},
		{"faults[0].honeypot", func(s *Spec) { s.Faults[0].Kind = FaultLinkFlap; s.Faults[0].Honeypot = "hp-zz" }},
		{"faults[0].honeypot", func(s *Spec) {
			s.Faults[0].Kind = FaultDiskIOError
			s.Faults[0].Honeypot = "hp-zz"
			s.Collection.StoreDir = "store"
		}},
		{"faults[0].kind", func(s *Spec) { s.Faults[0].Kind = FaultDiskIOError }}, // no store_dir to break
		{"collection.retries", func(s *Spec) { s.Collection.Retries = -1 }},
		{"collection.retry_backoff", func(s *Spec) { s.Collection.RetryBackoff = Duration(-time.Second) }},
		{"faults[0].server", func(s *Spec) {
			s.Faults[0] = Fault{Kind: FaultServerOutage, Server: 5, At: Duration(time.Hour), Downtime: Duration(time.Hour)}
		}},
		{"faults[0].at", func(s *Spec) { s.Faults[0].At = Duration(-time.Hour) }},
		{"faults[0].downtime", func(s *Spec) { s.Faults[0].Downtime = 0 }},
		{"faults[0].at", func(s *Spec) { s.Faults[0].At = Duration(47 * time.Hour) }}, // never resolves in a 2-day campaign
		{"faults[1].at", func(s *Spec) { // overlaps faults[0] on the same honeypot
			s.Faults = append(s.Faults, Fault{
				Kind: FaultHoneypotCrash, Honeypot: "hp-a",
				At: Duration(13 * time.Hour), Downtime: Duration(2 * time.Hour),
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.field, func(t *testing.T) {
			spec := validSpec()
			tc.break_(&spec)
			err := spec.Validate()
			if err == nil {
				t.Fatalf("broken %s accepted", tc.field)
			}
			// Walk the joined error for a FieldError naming the field.
			found := false
			for err2 := range errorsIter(err) {
				var fe *FieldError
				if errors.As(err2, &fe) && fe.Field == tc.field {
					found = true
				}
			}
			if !found {
				t.Fatalf("error does not name %s: %v", tc.field, err)
			}
		})
	}
}

// errorsIter yields the individual errors inside an errors.Join result.
func errorsIter(err error) map[error]bool {
	out := map[error]bool{}
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		if u, ok := e.(interface{ Unwrap() []error }); ok {
			for _, sub := range u.Unwrap() {
				walk(sub)
			}
			return
		}
		out[e] = true
	}
	walk(err)
	return out
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	spec := validSpec()
	spec.Days = 0
	if _, err := Run(spec); err == nil {
		t.Fatal("Run accepted an invalid spec")
	} else {
		var fe *FieldError
		if !errors.As(err, &fe) {
			t.Fatalf("Run error is not a FieldError: %v", err)
		}
	}
}

func TestDurationJSON(t *testing.T) {
	b, err := json.Marshal(Duration(90 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"1h30m0s"` {
		t.Fatalf("marshal: %s", b)
	}
	var d Duration
	if err := json.Unmarshal([]byte(`"36h"`), &d); err != nil {
		t.Fatal(err)
	}
	if time.Duration(d) != 36*time.Hour {
		t.Fatalf("unmarshal string: %v", time.Duration(d))
	}
	if err := json.Unmarshal([]byte(`3600000000000`), &d); err != nil {
		t.Fatal(err)
	}
	if time.Duration(d) != time.Hour {
		t.Fatalf("unmarshal number: %v", time.Duration(d))
	}
	if err := json.Unmarshal([]byte(`"soon"`), &d); err == nil {
		t.Fatal("bad duration accepted")
	}
}

// TestSpecJSONRoundTripRunsIdentically is the serialization acceptance
// check: encode → decode → Run must reproduce the original campaign's
// dataset bit for bit, so scenario files are a faithful exchange format.
func TestSpecJSONRoundTripRunsIdentically(t *testing.T) {
	spec := validSpec()
	spec.Workloads[0].RefreshTargets = Duration(time.Hour)

	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var decoded Spec
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}

	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events {
		t.Errorf("event counts differ after round-trip: %d vs %d", a.Events, b.Events)
	}
	if len(a.Dataset.Records) != len(b.Dataset.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Dataset.Records), len(b.Dataset.Records))
	}
	for i := range a.Dataset.Records {
		ra, rb := a.Dataset.Records[i], b.Dataset.Records[i]
		if !ra.Time.Equal(rb.Time) || ra.Honeypot != rb.Honeypot || ra.Kind != rb.Kind ||
			ra.PeerIP != rb.PeerIP || ra.FileHash != rb.FileHash {
			t.Fatalf("record %d differs after round-trip:\n %+v\n %+v", i, ra, rb)
		}
	}
	if a.Dataset.DistinctPeers != b.Dataset.DistinctPeers {
		t.Errorf("distinct peers differ: %d vs %d", a.Dataset.DistinctPeers, b.Dataset.DistinctPeers)
	}
}
