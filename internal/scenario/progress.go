package scenario

// The engine's mid-campaign telemetry tap. RunWith accepts a
// ProgressFunc and drives the DES in bounded sim-time chunks, invoking
// the callback between chunks with a Progress snapshot of the whole
// world — engine internals (via des.Stats), collection state, fleet
// health, workload activity. The callback's return value is the
// early-abort switch: returning false stops the campaign cleanly and
// finalizes whatever was collected into a partial Result.
//
// Chunked execution is provably equivalent to one uninterrupted run:
// RunUntil(t1); RunUntil(t2) executes exactly the events one
// RunUntil(t2) would, in the same order, so a tapped campaign produces
// a record-for-record identical dataset (pinned by
// TestTappedRunIdenticalDataset).

import (
	"time"

	"repro/internal/des"
	"repro/internal/obs"
	"repro/internal/peersim"
)

// DefaultProgressEvery is the sim-time cadence of the progress tap when
// RunOptions.SimEvery is zero: one virtual hour, the manager's
// collection period, so every snapshot can see fresh collection counts.
const DefaultProgressEvery = time.Hour

// ProgressFunc receives mid-campaign snapshots. Returning false aborts
// the campaign: the engine stops advancing virtual time, skips any
// not-yet-started workloads and faults, and finalizes the records
// collected so far into a partial Result (Result.Aborted is set).
// The callback must treat the snapshot as read-only and must not call
// back into the engine.
type ProgressFunc func(p Progress) bool

// HoneypotProgress is one fleet member's state within a snapshot.
type HoneypotProgress struct {
	// ID is the honeypot's identifier.
	ID string
	// Collected is the number of records the manager has gathered from
	// it so far (for store-backed honeypots, refreshed each collection
	// round).
	Collected int
	// Healthy is the manager's current view of the honeypot.
	Healthy bool
}

// WorkloadProgress is one workload's activity within a snapshot.
type WorkloadProgress struct {
	// Label names the workload (WorkloadSpec.Label).
	Label string
	// Started reports whether the workload's arrival window has opened.
	Started bool
	// Stats is the population's counters so far; Stats.Arrivals-
	// Stats.Quits approximates the live population size.
	Stats peersim.Stats
}

// Progress is one snapshot of a running campaign, delivered to the
// ProgressFunc at the configured cadence.
type Progress struct {
	// SimTime is the engine's virtual clock; SimElapsed is its offset
	// from campaign start; SimEnd is the scheduled campaign end.
	SimTime    time.Time
	SimElapsed time.Duration
	SimEnd     time.Time
	// Wall is the wall-clock time since Run started.
	Wall time.Duration
	// Events is the total simulation events executed; EventsPerSec is
	// the wall-clock event rate since the previous snapshot.
	Events       uint64
	EventsPerSec float64
	// Engine is the event loop's internal counters (queue depth,
	// free-list recycling).
	Engine des.Stats
	// RecordsCollected sums the fleet's gathered records; Fleet is the
	// per-honeypot breakdown in launch order.
	RecordsCollected int
	Fleet            []HoneypotProgress
	// FleetUp and FleetDown count honeypots the manager currently
	// considers healthy / unhealthy.
	FleetUp, FleetDown int
	// Workloads is the per-workload activity, in spec order.
	Workloads []WorkloadProgress
	// Final marks the last snapshot of the run, emitted after the
	// campaign (or its abort) stopped the populations, regardless of
	// wall-time throttling.
	Final bool
}

// RunOptions is the engine's non-spec configuration: the progress tap
// and the telemetry registry. Unlike a Spec, options are not data — they
// carry live callbacks and registries — so they never marshal to JSON
// and cannot change a campaign's dataset (pinned by the equivalence
// tests).
type RunOptions struct {
	// Progress, when set, is invoked at the configured cadence with a
	// snapshot of the running campaign; returning false aborts the run
	// cleanly (see ProgressFunc).
	Progress ProgressFunc
	// SimEvery is the sim-time cadence of the tap: virtual time advances
	// in chunks of at most this duration, with a snapshot taken at every
	// chunk boundary (0 = DefaultProgressEvery).
	SimEvery time.Duration
	// WallEvery, when positive, throttles callback emission to at most
	// one per wall-clock period: chunk boundaries still occur (gauges
	// still refresh) but the callback is skipped until the period has
	// elapsed. The final snapshot always fires.
	WallEvery time.Duration
	// Metrics, when set, receives the whole stack's telemetry: the
	// engine's gauges (events, queue depth, fleet health, collection
	// counts, refreshed at every chunk boundary), the logstore's
	// counters for any spill or export store, and the finalize
	// pipeline's per-stage counters.
	Metrics *obs.Registry
	// Scheduler selects the event loop's pending-event store (empty =
	// the des default, normally the timing wheel). Like the rest of
	// RunOptions it cannot change a campaign's dataset: both stores
	// pop events in the identical (when, seq) order, pinned by the
	// scheduler equivalence tests.
	Scheduler des.SchedulerKind
}

// cadence returns the chunk size, defaulted.
func (o RunOptions) cadence() time.Duration {
	if o.SimEvery > 0 {
		return o.SimEvery
	}
	return DefaultProgressEvery
}

// tapped reports whether the engine needs chunked execution at all.
func (o RunOptions) tapped() bool { return o.Progress != nil || o.Metrics != nil }

// engineMetrics is the engine's pre-resolved gauge set (zero = disabled).
type engineMetrics struct {
	events     *obs.Gauge // engine.events
	pending    *obs.Gauge // engine.pending
	maxPending *obs.Gauge // engine.max_pending
	allocated  *obs.Gauge // engine.events_allocated
	recycled   *obs.Gauge // engine.events_recycled
	cascades   *obs.Gauge // engine.cascades (timing-wheel bucket spills)
	overflow   *obs.Gauge // engine.overflow_scans (wheel overflow rescans)
	simSeconds *obs.Gauge // engine.sim_seconds (virtual time elapsed)
	collected  *obs.Gauge // campaign.records_collected
	fleetUp    *obs.Gauge // fleet.up
	fleetDown  *obs.Gauge // fleet.down
	arrivals   *obs.Gauge // workload.arrivals (all workloads)
	quits      *obs.Gauge // workload.quits
}

func newEngineMetrics(r *obs.Registry) engineMetrics {
	if r == nil {
		return engineMetrics{}
	}
	return engineMetrics{
		events:     r.Gauge("engine.events"),
		pending:    r.Gauge("engine.pending"),
		maxPending: r.Gauge("engine.max_pending"),
		allocated:  r.Gauge("engine.events_allocated"),
		recycled:   r.Gauge("engine.events_recycled"),
		cascades:   r.Gauge("engine.cascades"),
		overflow:   r.Gauge("engine.overflow_scans"),
		simSeconds: r.Gauge("engine.sim_seconds"),
		collected:  r.Gauge("campaign.records_collected"),
		fleetUp:    r.Gauge("fleet.up"),
		fleetDown:  r.Gauge("fleet.down"),
		arrivals:   r.Gauge("workload.arrivals"),
		quits:      r.Gauge("workload.quits"),
	}
}

// advance drives the virtual clock to t. Untapped runs take one
// uninterrupted RunUntil; tapped runs advance in SimEvery chunks,
// refreshing gauges and emitting progress snapshots at every boundary.
// It returns early (leaving w.aborted set) when the callback aborts.
func (w *world) advance(t time.Time) {
	if w.aborted {
		return
	}
	if !w.opts.tapped() {
		w.loop.RunUntil(t)
		return
	}
	step := w.opts.cadence()
	for w.loop.Now().Before(t) {
		next := w.loop.Now().Add(step)
		if next.After(t) {
			next = t
		}
		w.loop.RunUntil(next)
		if !w.observe(false) {
			w.aborted = true
			return
		}
	}
}

// observe refreshes the engine gauges and delivers one progress
// snapshot (unless wall-throttled). It returns false when the callback
// asked to abort.
func (w *world) observe(final bool) bool {
	now := time.Now()
	wall := now.Sub(w.wallStart)
	es := w.loop.Stats()

	// Gauges refresh on every boundary, throttled or not: a /metrics
	// scrape should never be staler than one chunk.
	w.em.events.Set(int64(es.Executed))
	w.em.pending.Set(int64(es.Pending))
	w.em.maxPending.Set(int64(es.MaxPending))
	w.em.allocated.Set(int64(es.Allocated))
	w.em.recycled.Set(int64(es.Recycled))
	w.em.cascades.Set(int64(es.Cascades))
	w.em.overflow.Set(int64(es.OverflowScans))
	w.em.simSeconds.Set(int64(w.loop.Now().Sub(CampaignStart) / time.Second))

	collected, up, down := 0, 0, 0
	for _, st := range w.mgr.States() {
		collected += st.Collected
		if st.Healthy {
			up++
		} else {
			down++
		}
	}
	w.em.collected.Set(int64(collected))
	w.em.fleetUp.Set(int64(up))
	w.em.fleetDown.Set(int64(down))

	var arrivals, quits int
	for _, pop := range w.pops {
		if pop != nil {
			s := pop.Stats()
			arrivals += s.Arrivals
			quits += s.Quits
		}
	}
	w.em.arrivals.Set(int64(arrivals))
	w.em.quits.Set(int64(quits))

	if w.opts.Progress == nil {
		return true
	}
	if !final && w.opts.WallEvery > 0 && wall-w.lastEmit < w.opts.WallEvery {
		return true
	}

	p := Progress{
		SimTime:          w.loop.Now(),
		SimElapsed:       w.loop.Now().Sub(CampaignStart),
		SimEnd:           w.spec.end(),
		Wall:             wall,
		Events:           es.Executed,
		Engine:           es,
		RecordsCollected: collected,
		FleetUp:          up,
		FleetDown:        down,
		Final:            final,
	}
	if dw := wall - w.lastWall; dw > 0 {
		p.EventsPerSec = float64(es.Executed-w.lastEvents) / dw.Seconds()
	}
	for _, st := range w.mgr.States() {
		p.Fleet = append(p.Fleet, HoneypotProgress{
			ID: st.Handle.ID(), Collected: st.Collected, Healthy: st.Healthy,
		})
	}
	for i, pop := range w.pops {
		wp := WorkloadProgress{Label: w.spec.Workloads[i].Label}
		if pop != nil {
			wp.Started = true
			wp.Stats = pop.Stats()
		}
		p.Workloads = append(p.Workloads, wp)
	}
	w.lastEmit, w.lastWall, w.lastEvents = wall, wall, es.Executed
	return w.opts.Progress(p)
}
