package scenario

import (
	"fmt"
	"math"
	"slices"
	"time"

	"repro/internal/catalog"
	"repro/internal/client"
	"repro/internal/ed2k"
	"repro/internal/honeypot"
	"repro/internal/peersim"
)

// Env is the slice of the running campaign a targets builder may see:
// the spec, the generated catalog, and the launched fleet with its
// resolved advertised files. Builders must derive everything from it
// deterministically.
type Env struct {
	Spec    Spec
	Catalog *catalog.Catalog
	// Honeypots is the live fleet keyed by ID; Files holds each
	// member's initially advertised set.
	Honeypots map[string]*honeypot.Honeypot
	Files     map[string][]client.SharedFile
}

// fleetMember resolves a TargetsSpec's honeypot reference ("" = the
// first fleet member).
func (e *Env) fleetMember(ts TargetsSpec) (string, error) {
	id := ts.Honeypot
	if id == "" {
		if len(e.Spec.Fleet) == 0 {
			return "", fmt.Errorf("scenario: empty fleet")
		}
		id = e.Spec.Fleet[0].ID
	}
	if e.Honeypots[id] == nil {
		return "", fmt.Errorf("scenario: targets reference unknown honeypot %q", id)
	}
	return id, nil
}

// TargetsBuilder compiles a workload's TargetsSpec into the live target
// function peersim polls, plus the per-unit-weight arrival intensity
// derived from the workload's ArrivalsPerDay (builders that normalize a
// growing list divide here).
type TargetsBuilder func(env *Env, ws WorkloadSpec) (targets func() []peersim.TargetFile, arrivalsPerWeight float64, err error)

// targetBuilders is the pluggable target-function registry; "static"
// and "advertised-ramp" are built in, and tests or downstream scenarios
// may add their own kinds via RegisterTargets.
var targetBuilders = map[string]TargetsBuilder{}

// RegisterTargets adds a target-function kind. It errors on duplicates
// so two packages cannot silently fight over a name.
func RegisterTargets(kind string, b TargetsBuilder) error {
	if kind == "" || b == nil {
		return fmt.Errorf("scenario: RegisterTargets needs a kind and a builder")
	}
	if _, dup := targetBuilders[kind]; dup {
		return fmt.Errorf("scenario: targets kind %q already registered", kind)
	}
	targetBuilders[kind] = b
	return nil
}

func knownTargetsKind(kind string) bool {
	_, ok := targetBuilders[kind]
	return ok
}

func targetKinds() []string {
	kinds := make([]string, 0, len(targetBuilders))
	for k := range targetBuilders {
		kinds = append(kinds, k)
	}
	slices.Sort(kinds)
	return kinds
}

func init() {
	if err := RegisterTargets("static", buildStaticTargets); err != nil {
		panic(err)
	}
	if err := RegisterTargets("advertised-ramp", buildAdvertisedRampTargets); err != nil {
		panic(err)
	}
}

// buildStaticTargets weights the referenced honeypot's initial
// advertised files once: Weights[i] per file, 0.25 beyond the list, or
// uniform weight 1 when no weights are given.
func buildStaticTargets(env *Env, ws WorkloadSpec) (func() []peersim.TargetFile, float64, error) {
	id, err := env.fleetMember(ws.Targets)
	if err != nil {
		return nil, 0, err
	}
	files := env.Files[id]
	targets := make([]peersim.TargetFile, len(files))
	for i, f := range files {
		wgt := 1.0
		if len(ws.Targets.Weights) > 0 {
			wgt = 0.25
			if i < len(ws.Targets.Weights) {
				wgt = ws.Targets.Weights[i]
			}
		}
		targets[i] = peersim.TargetFile{Hash: f.Hash, Name: f.Name, Size: f.Size, Weight: wgt}
	}
	return func() []peersim.TargetFile { return targets }, ws.ArrivalsPerDay, nil
}

// buildAdvertisedRampTargets follows a honeypot's growing advertised
// list (the greedy campaign's dynamics): file at rank i draws weight
// 1/(i+1)^Exp, scaled by a discovery ramp — the network only gradually
// notices freshly advertised content, which reproduces Fig 3's
// near-invisible first day. The first ExemptFirst files (established
// seed content) skip the ramp. Weights are normalized so a fully grown
// list of NormFiles sums to 1, making ArrivalsPerDay the steady-state
// intensity.
func buildAdvertisedRampTargets(env *Env, ws WorkloadSpec) (func() []peersim.TargetFile, float64, error) {
	id, err := env.fleetMember(ws.Targets)
	if err != nil {
		return nil, 0, err
	}
	hp := env.Honeypots[id]
	ts := ws.Targets

	ramp := time.Duration(ts.Ramp)
	if ramp <= 0 {
		ramp = 30 * time.Hour // the paper's discovery ramp
	}
	norm := 0.0
	for i := 0; i < ts.NormFiles; i++ {
		norm += rankWeight(i, ts.Exp)
	}
	if norm <= 0 {
		norm = 1
	}

	hpHost := hp.Client().Host()
	addedAt := map[ed2k.Hash]time.Time{}
	fn := func() []peersim.TargetFile {
		now := hpHost.Now()
		adv := hp.Advertised()
		out := make([]peersim.TargetFile, 0, len(adv))
		for i, f := range adv {
			t0, seen := addedAt[f.Hash]
			if !seen {
				t0 = now
				addedAt[f.Hash] = now
			}
			r := float64(now.Sub(t0)) / float64(ramp)
			if r > 1 || i < ts.ExemptFirst {
				r = 1
			}
			out = append(out, peersim.TargetFile{
				Hash: f.Hash, Name: f.Name, Size: f.Size,
				Weight: rankWeight(i, ts.Exp) * r,
			})
		}
		return out
	}
	return fn, ws.ArrivalsPerDay / norm, nil
}

// rankWeight is the per-file arrival weight at list rank.
func rankWeight(rank int, exp float64) float64 {
	return math.Pow(1/float64(rank+1), exp)
}

// knownFilesKind reports whether a FilesSpec kind has a resolver.
func knownFilesKind(kind string) bool {
	switch kind {
	case "four-bait", "songs":
		return true
	}
	return false
}

// resolveFiles materializes a FilesSpec against the catalog.
func resolveFiles(fs FilesSpec, cat *catalog.Catalog) ([]client.SharedFile, error) {
	switch fs.Kind {
	case "four-bait":
		return FourBaitFiles(cat), nil
	case "songs":
		out := make([]client.SharedFile, 0, fs.N)
		for i := 0; i < cat.Len() && len(out) < fs.N; i++ {
			f := cat.File(i)
			if f.Kind == catalog.Song {
				out = append(out, client.SharedFile{Hash: f.Hash, Name: f.Name, Size: f.Size, Type: f.Kind.String()})
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("scenario: unknown files kind %q", fs.Kind)
	}
}

// FourBaitFiles picks the paper's four advertised files from the
// catalog: a movie, a song, a Linux-distribution-like image and a text.
func FourBaitFiles(cat *catalog.Catalog) []client.SharedFile {
	kinds := []catalog.Kind{catalog.Movie, catalog.Song, catalog.Distro, catalog.Text}
	out := make([]client.SharedFile, 0, 4)
	for _, k := range kinds {
		for i := 0; i < cat.Len(); i++ {
			f := cat.File(i)
			if f.Kind == k {
				out = append(out, client.SharedFile{Hash: f.Hash, Name: f.Name, Size: f.Size, Type: f.Kind.String()})
				break
			}
		}
	}
	return out
}
