package scenario

import (
	"slices"
	"testing"
)

func TestRegistryHasBuiltins(t *testing.T) {
	names := Names()
	for _, want := range []string{"distributed", "greedy", "federation-mixed", "churn-fleet", "flash-crowd"} {
		if !slices.Contains(names, want) {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
	if !slices.IsSorted(names) {
		t.Errorf("Names not sorted: %v", names)
	}
}

// TestNamesDeterministicOrder pins the listing contract the service
// plane serves over GET /scenarios: sorted, identical across calls, and
// insulated from caller mutation — a client scraping the registry twice
// must see the same bytes.
func TestNamesDeterministicOrder(t *testing.T) {
	first := Names()
	if !slices.IsSorted(first) {
		t.Fatalf("Names not sorted: %v", first)
	}
	clobbered := Names()
	for i := range clobbered {
		clobbered[i] = "clobbered"
	}
	second := Names()
	if !slices.Equal(first, second) {
		t.Errorf("Names changed across calls:\nfirst:  %v\nsecond: %v", first, second)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("no-such-campaign"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestLookupReturnsFreshCopies(t *testing.T) {
	a, err := Lookup("distributed")
	if err != nil {
		t.Fatal(err)
	}
	a.Seed = 999
	a.Fleet[0].ID = "clobbered"
	b, err := Lookup("distributed")
	if err != nil {
		t.Fatal(err)
	}
	if b.Seed == 999 || b.Fleet[0].ID == "clobbered" {
		t.Error("Lookup handed out shared state")
	}
}

func TestDuplicateRegistration(t *testing.T) {
	if err := Register("dup-test", PaperDistributed); err != nil {
		t.Fatal(err)
	}
	defer delete(registry, "dup-test")
	if err := Register("dup-test", PaperGreedy); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := Register("", PaperDistributed); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Register("nil-fn", nil); err == nil {
		t.Fatal("nil constructor accepted")
	}
}

func TestRegisteredSpecsValidate(t *testing.T) {
	for _, name := range Names() {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("registered scenario %q does not validate: %v", name, err)
		}
	}
}

func TestDuplicateTargetsRegistration(t *testing.T) {
	if err := RegisterTargets("static", buildStaticTargets); err == nil {
		t.Fatal("duplicate targets kind accepted")
	}
	if err := RegisterTargets("", buildStaticTargets); err == nil {
		t.Fatal("empty targets kind accepted")
	}
}
