// Package scenario is the campaign layer's declarative API: a Spec
// composes orthogonal building blocks — a server Topology, a honeypot
// Fleet, one or more peer Workloads, a FaultSchedule and a Collection
// policy — and Run executes any such composition on the simulated world.
//
// The paper's two measurements are just two specs (PaperDistributed,
// PaperGreedy); the same engine runs mixed-strategy federations,
// churning fleets, flash-crowd workloads and whatever else a spec can
// express. Specs are plain data: they marshal to JSON, live in a
// name-keyed registry (Register/Lookup), and round-trip without losing
// determinism — decoding an encoded spec and running it reproduces the
// original campaign bit for bit.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/honeypot"
)

// CampaignStart is the virtual start of all campaigns: the paper's
// distributed measurement began in October 2008.
var CampaignStart = time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)

// Duration is a time.Duration that marshals to JSON as a parseable
// string ("36h0m0s"), keeping spec files human-editable.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts both a duration string ("90m") and a plain
// number of nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		dd, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", x, err)
		}
		*d = Duration(dd)
		return nil
	case float64:
		*d = Duration(time.Duration(x))
		return nil
	default:
		return fmt.Errorf("scenario: bad duration %v", v)
	}
}

// Spec is one complete campaign description. Every field is plain data;
// Run interprets it against the DES world.
type Spec struct {
	// Name labels the campaign and its Result.
	Name string `json:"name"`
	// Seed drives all randomness.
	Seed int64 `json:"seed"`
	// Days is the measurement duration.
	Days int `json:"days"`
	// Scale multiplies every workload's arrival intensity (1.0 = paper
	// magnitudes); durations and behaviour stay fixed, so curve shapes
	// hold as campaigns shrink.
	Scale float64 `json:"scale"`
	// Secret is the campaign-wide anonymization key (step 1). Empty
	// defaults to "<name>-campaign-<seed>".
	Secret string `json:"secret,omitempty"`
	// Catalog sizes the file universe peers draw libraries from.
	Catalog catalog.Config `json:"catalog"`
	// Topology is the directory-server federation.
	Topology Topology `json:"topology"`
	// Fleet is the honeypots to launch, in order.
	Fleet []HoneypotSpec `json:"fleet"`
	// Workloads are the peer populations to run, in order.
	Workloads []WorkloadSpec `json:"workloads"`
	// Faults is the schedule of injected failures (may be empty).
	Faults FaultSchedule `json:"faults,omitempty"`
	// Collection is the manager's log-gathering policy.
	Collection Collection `json:"collection"`
}

// Topology describes the directory-server federation: Servers hosts,
// every one knowing all the others (SERVER-LIST discovery).
type Topology struct {
	// Servers is the federation size; the paper used 1.
	Servers int `json:"servers"`
}

// HoneypotSpec places one honeypot: its strategy, which federation
// member it registers on, and what it advertises.
type HoneypotSpec struct {
	// ID is the honeypot's identifier in logs ("hp-03").
	ID string `json:"id"`
	// Strategy is "no-content" or "random-content".
	Strategy string `json:"strategy"`
	// Server is the index of the directory server this honeypot joins.
	Server int `json:"server"`
	// Files selects the advertised file set.
	Files FilesSpec `json:"files"`
	// BrowseContacts asks every contacting peer for its shared list.
	BrowseContacts bool `json:"browse_contacts,omitempty"`
	// Greedy enables shared-list harvesting into the advertised list,
	// bounded by GreedyWindow and GreedyMaxFiles.
	Greedy         bool     `json:"greedy,omitempty"`
	GreedyWindow   Duration `json:"greedy_window,omitempty"`
	GreedyMaxFiles int      `json:"greedy_max_files,omitempty"`
}

// FilesSpec names an advertised file set, resolved against the catalog.
type FilesSpec struct {
	// Kind selects the resolver: "four-bait" picks the paper's movie /
	// song / distro / text quartet; "songs" picks the first N songs.
	Kind string `json:"kind"`
	// N bounds the set for kinds that take a count.
	N int `json:"n,omitempty"`
}

// WorkloadSpec describes one peer population. Several workloads may run
// in the same campaign (e.g. a baseline population plus a flash crowd);
// each gets its own arrival process and random streams (seeded by
// Label).
type WorkloadSpec struct {
	// Label names the workload and seeds its random streams.
	Label string `json:"label"`
	// ArrivalsPerDay is the arrival intensity per unit of target weight
	// (with weights summing to 1 it is the total arrivals per day),
	// before Scale and decay.
	ArrivalsPerDay float64 `json:"arrivals_per_day"`
	// DecayPerDay multiplies intensity once per elapsed day (0 = none).
	DecayPerDay float64 `json:"decay_per_day,omitempty"`
	// StartOffset delays the workload's arrival window; EndOffset ends
	// it early (0 = campaign end). A flash crowd is a second workload
	// with a narrow window and a high rate.
	StartOffset Duration `json:"start_offset,omitempty"`
	EndOffset   Duration `json:"end_offset,omitempty"`
	// Servers lists the federation indices whose peers this workload
	// models; arriving peers pick one at random. Empty = server 0 only.
	Servers []int `json:"servers,omitempty"`
	// LibraryMean sizes peer shared libraries (0 = model default).
	LibraryMean int `json:"library_mean,omitempty"`
	// LibraryRegion confines libraries to the catalog's most popular
	// region (0 = whole catalog).
	LibraryRegion int `json:"library_region,omitempty"`
	// HeavyHitters is the number of crawler-like peers (Figs 8-9).
	HeavyHitters int `json:"heavy_hitters,omitempty"`
	// MaxSourcesPerPeer caps sources one peer contacts (0 = default).
	MaxSourcesPerPeer int `json:"max_sources_per_peer,omitempty"`
	// WantsMax, when positive, draws wanted-file counts from 1..WantsMax.
	WantsMax int `json:"wants_max,omitempty"`
	// RefreshTargets re-polls the target function (0 = static targets).
	RefreshTargets Duration `json:"refresh_targets,omitempty"`
	// Targets selects and parameterizes the target function.
	Targets TargetsSpec `json:"targets"`
}

// TargetsSpec names a registered target function (see RegisterTargets)
// and its parameters. Targets are what peers come looking for; the
// function maps the live fleet to a weighted file list.
type TargetsSpec struct {
	// Kind is the registered builder: "static" weights a honeypot's
	// advertised files once; "advertised-ramp" follows a honeypot's
	// growing advertised list with rank-exponent weights and a
	// discovery ramp (the greedy campaign's dynamics).
	Kind string `json:"kind"`
	// Honeypot is the fleet member whose files are targeted ("" = the
	// first).
	Honeypot string `json:"honeypot,omitempty"`
	// Weights are per-file weights for "static" (files beyond the list
	// get 0.25; an empty list means uniform weight 1).
	Weights []float64 `json:"weights,omitempty"`
	// Exp shapes "advertised-ramp" rank weights: 1/(rank+1)^Exp.
	Exp float64 `json:"exp,omitempty"`
	// Ramp is the discovery window over which a freshly advertised
	// file's weight grows to full (0 = the paper's 30h).
	Ramp Duration `json:"ramp,omitempty"`
	// NormFiles normalizes ramp weights so a fully grown list of this
	// many files sums to 1 (ArrivalsPerDay is then the steady state).
	NormFiles int `json:"norm_files,omitempty"`
	// ExemptFirst spares the first N files (established seed content)
	// from the ramp.
	ExemptFirst int `json:"exempt_first,omitempty"`
}

// FaultSchedule is a timed list of injected failures.
type FaultSchedule []Fault

// Fault kinds.
const (
	// FaultServerOutage crashes directory server Server at At; a fresh
	// server process restarts on the same address after Downtime.
	FaultServerOutage = "server-outage"
	// FaultHoneypotCrash crashes honeypot Honeypot's host at At and
	// relaunches it (same config, same shard) after Downtime.
	FaultHoneypotCrash = "honeypot-crash"
	// FaultLinkFlap partitions honeypot Honeypot from the network at At:
	// the host keeps running (its records survive) but every connection
	// dies, dials fail and the manager's collection exchanges time out
	// until the link returns after Downtime. The degraded rounds show up
	// as collection gaps in the Result.
	FaultLinkFlap = "link-flap"
	// FaultDiskIOError breaks honeypot Honeypot's shard storage at At:
	// every mutating filesystem operation under its store directory
	// fails until Downtime passes, when the engine restores the disk and
	// heals the shard. Records appended during the outage are dropped
	// and audited (Result.DroppedRecords). Requires Collection.StoreDir.
	FaultDiskIOError = "disk-io-error"
)

// Fault is one scheduled failure.
type Fault struct {
	// Kind is FaultServerOutage, FaultHoneypotCrash, FaultLinkFlap or
	// FaultDiskIOError.
	Kind string `json:"kind"`
	// At is the failure time as an offset from campaign start.
	At Duration `json:"at"`
	// Downtime is how long the component stays dead before the engine
	// restarts it.
	Downtime Duration `json:"downtime"`
	// Server is the federation index (server faults).
	Server int `json:"server,omitempty"`
	// Honeypot is the fleet ID (honeypot faults).
	Honeypot string `json:"honeypot,omitempty"`
}

// Collection is the manager's gathering policy.
type Collection struct {
	// Every is the log-collection period (0 = manager default, 1h).
	Every Duration `json:"every,omitempty"`
	// Retries is the manager's per-round retry budget when a honeypot's
	// collection exchange fails (0 = degrade immediately: the round is
	// recorded as a gap and the next period tries again).
	Retries int `json:"retries,omitempty"`
	// RetryBackoff is the base delay before a collection retry, doubling
	// per attempt (0 = manager default, 2s).
	RetryBackoff Duration `json:"retry_backoff,omitempty"`
	// StoreDir enables spill-to-disk mode: honeypots write through
	// logstore shards under this directory and the manager streams them
	// back at finalize. Empty keeps the in-memory path.
	StoreDir string `json:"store_dir,omitempty"`
	// Stream finalizes through the streaming record pipeline: the
	// anonymized log flows straight into a columnar frame
	// (Result.Frame) and Result.Dataset carries only the summary stats
	// — no []Record is ever materialized. The at-scale mode for
	// campaigns that do not fit in memory.
	Stream bool `json:"stream,omitempty"`
	// ExportDir, when set, streams the anonymized dataset into a
	// segmented logstore under this directory as it is finalized (one
	// shard per honeypot), so the published dataset can be re-analyzed
	// later without re-running the campaign. Implies Stream. Must
	// differ from StoreDir, which holds the raw (hashed, un-renumbered)
	// records.
	ExportDir string `json:"export_dir,omitempty"`
}

// secret returns the campaign anonymization key.
func (s Spec) secret() []byte {
	if s.Secret != "" {
		return []byte(s.Secret)
	}
	return []byte(fmt.Sprintf("%s-campaign-%d", s.Name, s.Seed))
}

// end returns the campaign end time.
func (s Spec) end() time.Time {
	return CampaignStart.Add(time.Duration(s.Days) * 24 * time.Hour)
}

// FieldError reports one invalid spec field. Validate wraps every
// problem it finds in one of these, so callers can tell exactly which
// knob is wrong (errors.As unwraps them through the joined error).
type FieldError struct {
	// Field is the spec path, e.g. "fleet[2].strategy".
	Field string
	// Msg says what is wrong with it.
	Msg string
}

// Error implements error.
func (e *FieldError) Error() string {
	return fmt.Sprintf("scenario: invalid spec: %s: %s", e.Field, e.Msg)
}

// Validate checks every field of the spec and returns all problems at
// once (joined FieldErrors), or nil if the spec is runnable.
func (s Spec) Validate() error {
	var errs []error
	bad := func(field, format string, args ...any) {
		errs = append(errs, &FieldError{Field: field, Msg: fmt.Sprintf(format, args...)})
	}

	if s.Name == "" {
		bad("name", "must be non-empty")
	}
	if s.Days <= 0 {
		bad("days", "must be positive, got %d", s.Days)
	}
	if s.Scale <= 0 {
		bad("scale", "must be positive, got %g", s.Scale)
	}
	if s.Topology.Servers < 1 {
		bad("topology.servers", "must be at least 1, got %d", s.Topology.Servers)
	}
	if s.Collection.Every < 0 {
		bad("collection.every", "must not be negative")
	}
	if s.Collection.Retries < 0 {
		bad("collection.retries", "must not be negative")
	}
	if s.Collection.RetryBackoff < 0 {
		bad("collection.retry_backoff", "must not be negative")
	}
	if s.Collection.ExportDir != "" && s.Collection.ExportDir == s.Collection.StoreDir {
		bad("collection.export_dir", "must differ from collection.store_dir: the export holds the anonymized dataset, the store holds the raw spill")
	}

	campaign := time.Duration(s.Days) * 24 * time.Hour

	if len(s.Fleet) == 0 {
		bad("fleet", "must contain at least one honeypot")
	}
	ids := make(map[string]bool, len(s.Fleet))
	for i, h := range s.Fleet {
		field := func(name string) string { return fmt.Sprintf("fleet[%d].%s", i, name) }
		if h.ID == "" {
			bad(field("id"), "must be non-empty")
		} else if ids[h.ID] {
			bad(field("id"), "duplicate honeypot id %q", h.ID)
		}
		ids[h.ID] = true
		if _, err := parseStrategy(h.Strategy); err != nil {
			bad(field("strategy"), "%v", err)
		}
		if h.Server < 0 || h.Server >= s.Topology.Servers {
			bad(field("server"), "index %d outside federation of %d", h.Server, s.Topology.Servers)
		}
		if !knownFilesKind(h.Files.Kind) {
			bad(field("files.kind"), "unknown kind %q", h.Files.Kind)
		}
		if h.Files.N < 0 {
			bad(field("files.n"), "must not be negative")
		}
		if h.GreedyWindow < 0 || h.GreedyMaxFiles < 0 {
			bad(field("greedy"), "window and max files must not be negative")
		}
	}

	if len(s.Workloads) == 0 {
		bad("workloads", "must contain at least one workload")
	}
	labels := make(map[string]bool, len(s.Workloads))
	for i, w := range s.Workloads {
		field := func(name string) string { return fmt.Sprintf("workloads[%d].%s", i, name) }
		if w.Label == "" {
			bad(field("label"), "must be non-empty")
		} else if labels[w.Label] {
			bad(field("label"), "duplicate label %q (labels seed random streams)", w.Label)
		}
		labels[w.Label] = true
		if w.ArrivalsPerDay <= 0 {
			bad(field("arrivals_per_day"), "must be positive, got %g", w.ArrivalsPerDay)
		}
		if w.DecayPerDay < 0 {
			bad(field("decay_per_day"), "must not be negative")
		}
		if w.StartOffset < 0 || time.Duration(w.StartOffset) >= campaign {
			bad(field("start_offset"), "must fall inside the %d-day campaign", s.Days)
		}
		if w.EndOffset != 0 && time.Duration(w.EndOffset) <= time.Duration(w.StartOffset) {
			bad(field("end_offset"), "must be after start_offset")
		}
		for j, idx := range w.Servers {
			if idx < 0 || idx >= s.Topology.Servers {
				bad(fmt.Sprintf("workloads[%d].servers[%d]", i, j), "index %d outside federation of %d", idx, s.Topology.Servers)
			}
		}
		if !knownTargetsKind(w.Targets.Kind) {
			bad(field("targets.kind"), "unknown kind %q (registered: %v)", w.Targets.Kind, targetKinds())
		}
		if w.Targets.Honeypot != "" && !ids[w.Targets.Honeypot] {
			bad(field("targets.honeypot"), "no fleet member %q", w.Targets.Honeypot)
		}
	}

	// windows tracks each component's fault intervals: two overlapping
	// faults on one target would double-crash a dead host and log
	// relaunches that never happened.
	windows := map[string][][2]time.Duration{}
	for i, f := range s.Faults {
		field := func(name string) string { return fmt.Sprintf("faults[%d].%s", i, name) }
		target := ""
		switch f.Kind {
		case FaultServerOutage:
			if f.Server < 0 || f.Server >= s.Topology.Servers {
				bad(field("server"), "index %d outside federation of %d", f.Server, s.Topology.Servers)
			}
			target = fmt.Sprintf("server-%d", f.Server)
		case FaultHoneypotCrash, FaultLinkFlap:
			if !ids[f.Honeypot] {
				bad(field("honeypot"), "no fleet member %q", f.Honeypot)
			}
			target = "honeypot-" + f.Honeypot
		case FaultDiskIOError:
			if !ids[f.Honeypot] {
				bad(field("honeypot"), "no fleet member %q", f.Honeypot)
			}
			if s.Collection.StoreDir == "" {
				bad(field("kind"), "disk-io-error needs collection.store_dir: only spill-to-disk campaigns have a disk to break")
			}
			target = "honeypot-" + f.Honeypot
		default:
			bad(field("kind"), "unknown kind %q", f.Kind)
		}
		if f.At < 0 {
			bad(field("at"), "must not be negative")
		}
		if f.Downtime <= 0 {
			bad(field("downtime"), "must be positive")
		}
		if time.Duration(f.At)+time.Duration(f.Downtime) >= campaign {
			bad(field("at"), "fault must resolve before the campaign ends")
		}
		if target != "" {
			lo, hi := time.Duration(f.At), time.Duration(f.At)+time.Duration(f.Downtime)
			for _, win := range windows[target] {
				if lo < win[1] && win[0] < hi {
					bad(field("at"), "fault window overlaps an earlier fault on the same target")
					break
				}
			}
			windows[target] = append(windows[target], [2]time.Duration{lo, hi})
		}
	}

	return errors.Join(errs...)
}

// parseStrategy maps a spec strategy name to the honeypot type.
func parseStrategy(s string) (honeypot.Strategy, error) {
	switch s {
	case honeypot.NoContent.String():
		return honeypot.NoContent, nil
	case honeypot.RandomContent.String():
		return honeypot.RandomContent, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (want %q or %q)",
			s, honeypot.NoContent, honeypot.RandomContent)
	}
}
