package scenario

import (
	"testing"
	"time"

	"repro/internal/logging"
)

// smoke shrinks a registered scenario to unit-test size and runs it.
func smoke(t *testing.T, name string, scale float64) *Result {
	t.Helper()
	spec, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	spec.Scale = scale
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dataset.Records) == 0 {
		t.Fatal("campaign produced no records")
	}
	if res.Dataset.DistinctPeers == 0 {
		t.Fatal("campaign observed no peers")
	}
	if len(res.HoneypotIDs) != len(spec.Fleet) {
		t.Fatalf("fleet: %v", res.HoneypotIDs)
	}
	return res
}

func TestPaperDistributedSmoke(t *testing.T) {
	res := smoke(t, "distributed", 0.004)
	if res.Name != "distributed" || res.Days != 32 {
		t.Errorf("metadata: %s/%d", res.Name, res.Days)
	}
	groups := map[string]int{}
	for _, g := range res.GroupOf {
		groups[g]++
	}
	if groups["random-content"] != 12 || groups["no-content"] != 12 {
		t.Errorf("groups: %v", groups)
	}
}

func TestPaperGreedySmoke(t *testing.T) {
	res := smoke(t, "greedy", 0.002)
	if len(res.Advertised) < 10 {
		t.Errorf("advertised only %d files; adoption failed", len(res.Advertised))
	}
	if res.HoneypotStats["hp-greedy"].Adopted == 0 {
		t.Error("no adoption recorded")
	}
}

func TestFederationMixedSmoke(t *testing.T) {
	res := smoke(t, "federation-mixed", 0.01)
	// Peers log into all three federation members and the fleet is
	// spread over them: records must mention three distinct servers.
	servers := map[string]bool{}
	for _, r := range res.Dataset.Records {
		if r.Server != "" {
			servers[r.Server] = true
		}
	}
	if len(servers) != 3 {
		t.Errorf("records mention %d servers, want 3", len(servers))
	}
	// Every server hosts both strategies (the mixed part).
	groups := map[string]int{}
	for _, g := range res.GroupOf {
		groups[g]++
	}
	if groups["random-content"] != 6 || groups["no-content"] != 6 {
		t.Errorf("groups: %v", groups)
	}
}

func TestChurnFleetSmoke(t *testing.T) {
	res := smoke(t, "churn-fleet", 0.02)
	// The schedule crashes hp-01 twice and hp-04/hp-06 once each.
	if res.Relaunches["hp-01"] != 2 || res.Relaunches["hp-04"] != 1 || res.Relaunches["hp-06"] != 1 {
		t.Errorf("relaunches: %v", res.Relaunches)
	}
	if len(res.Faults) != 8 {
		t.Errorf("fault log has %d events, want 8: %+v", len(res.Faults), res.Faults)
	}
	// Measurement survives the churn: records exist after the last
	// relaunch.
	last := res.Faults[len(res.Faults)-1].At
	after := 0
	for _, r := range res.Dataset.Records {
		if r.Time.After(last) {
			after++
		}
	}
	if after == 0 {
		t.Error("no records after the final relaunch")
	}
}

func TestFlashCrowdSmoke(t *testing.T) {
	res := smoke(t, "flash-crowd", 0.01)
	if len(res.WorkloadStats) != 2 {
		t.Fatalf("workload stats: %+v", res.WorkloadStats)
	}
	base, crowd := res.WorkloadStats[0], res.WorkloadStats[1]
	if base.Arrivals == 0 || crowd.Arrivals == 0 {
		t.Fatalf("both workloads must arrive: baseline %d, crowd %d", base.Arrivals, crowd.Arrivals)
	}
	if base.Arrivals+crowd.Arrivals != res.PopStats.Arrivals {
		t.Errorf("PopStats does not aggregate workloads: %d+%d != %d",
			base.Arrivals, crowd.Arrivals, res.PopStats.Arrivals)
	}

	// The spike is visible in the dataset: HELLO density inside the
	// crowd window dwarfs the same-length window the day before.
	spikeStart := res.Start.Add(5 * 24 * time.Hour)
	spikeEnd := spikeStart.Add(18 * time.Hour)
	inSpike, dayBefore := 0, 0
	for _, r := range res.Dataset.Records {
		if r.Kind != logging.KindHello {
			continue
		}
		switch {
		case !r.Time.Before(spikeStart) && r.Time.Before(spikeEnd):
			inSpike++
		case !r.Time.Before(spikeStart.Add(-18*time.Hour)) && r.Time.Before(spikeStart):
			dayBefore++
		}
	}
	if inSpike < 3*dayBefore {
		t.Errorf("flash crowd invisible: %d HELLOs in the spike window vs %d before", inSpike, dayBefore)
	}
	// No crowd peers before the window opens: the delayed workload must
	// not leak arrivals early.
	if crowd.Arrivals > 0 && inSpike == 0 {
		t.Error("crowd arrived but produced no HELLOs in its window")
	}
}
