package des

import (
	"cmp"
	"slices"
	"sort"
	"time"
)

// Wheel geometry. A tick is 2^30 ns ≈ 1.07 virtual seconds — the
// campaign workload is second-granularity timers (HELLO every ~5 min,
// QUERY bursts, hourly collects), so one tick groups roughly one
// second of simultaneous-ish events into one bucket. Three levels of
// 256 slots cover deltas up to 2^24 ticks ≈ 208 virtual days — longer
// than any campaign — so the overflow list is effectively never used,
// but it keeps the scheduler correct for arbitrary horizons.
const (
	tickShift   = 30 // ns per tick = 1 << tickShift
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 3

	// bucketSeedCap pre-seeds every bucket with a little capacity out
	// of one shared backing array, so the steady state of a modest
	// workload (a few events per tick) schedules allocation-free.
	bucketSeedCap = 4
)

// wheelScheduler is a hierarchical timing wheel over the loop's virtual
// clock. schedule is O(1): an event lands in the bucket of the level
// whose resolution covers its delta from the current tick. pop drains a
// sorted "ready" run of the earliest bucket; advancing the clock
// cascades outer-level buckets into the level below when their window
// opens, and re-scans the overflow list when the outermost level wraps.
//
// Determinism: the loop's contract is a total order by (when, seq).
// The wheel only changes where pending events are *stored*; every event
// surfaces in the ready queue no later than its tick, and the ready
// queue is kept sorted by (when, seq) — bucket collection sorts, and
// late arrivals for ticks already reached binary-search into the
// unpopped tail (they carry the largest seq yet issued, so FIFO among
// simultaneous events is preserved). Pop order is therefore identical
// to the heap's, and so are histories.
type wheelScheduler struct {
	epoch time.Time // tick origin: the loop's start time
	cur   int64     // every event with tick <= cur has moved to ready

	levels [wheelLevels][wheelSlots][]*event
	counts [wheelLevels]int // pending events per level, across all slots
	over   []*event         // deltas beyond the outermost level

	ready []*event // events due at or before cur, sorted by (when, seq)
	head  int      // index of the next unpopped ready event

	pendingCount  int
	cascades      uint64
	overflowScans uint64
}

func newWheelScheduler(start time.Time) *wheelScheduler {
	w := &wheelScheduler{epoch: start}
	backing := make([]*event, wheelLevels*wheelSlots*bucketSeedCap)
	for l := 0; l < wheelLevels; l++ {
		for i := 0; i < wheelSlots; i++ {
			off := (l*wheelSlots + i) * bucketSeedCap
			w.levels[l][i] = backing[off : off : off+bucketSeedCap]
		}
	}
	return w
}

// tickOf maps a virtual time to its wheel tick. Times never precede the
// epoch (At clamps to now, and now starts at the epoch), but guard
// anyway so a negative delta cannot corrupt bucket indexing.
func (w *wheelScheduler) tickOf(t time.Time) int64 {
	d := t.Sub(w.epoch)
	if d < 0 {
		return 0
	}
	return int64(d) >> tickShift
}

func (w *wheelScheduler) schedule(e *event) {
	w.pendingCount++
	w.place(e)
}

// place files an event by its delta from the current tick. Levels above
// the first are selected by index distance at that level's resolution,
// not raw delta: an event whose delta fits level l's span but whose
// level-l index equals the window the clock is already inside would
// otherwise wait a full extra wrap to cascade.
func (w *wheelScheduler) place(e *event) {
	t := w.tickOf(e.when)
	switch {
	case t <= w.cur:
		w.insertReady(e)
	case t-w.cur < wheelSlots:
		slot := &w.levels[0][t&wheelMask]
		*slot = append(*slot, e)
		w.counts[0]++
	case (t>>wheelBits)-(w.cur>>wheelBits) < wheelSlots:
		slot := &w.levels[1][(t>>wheelBits)&wheelMask]
		*slot = append(*slot, e)
		w.counts[1]++
	case (t>>(2*wheelBits))-(w.cur>>(2*wheelBits)) < wheelSlots:
		slot := &w.levels[2][(t>>(2*wheelBits))&wheelMask]
		*slot = append(*slot, e)
		w.counts[2]++
	default:
		w.over = append(w.over, e)
	}
}

// insertReady binary-searches the event into the sorted unpopped tail
// of the ready queue. This is the path for events scheduled at or
// before the tick the wheel has already reached — nested scheduling at
// the current instant, and scheduling after RunUntil parked the clock
// past the last event.
func (w *wheelScheduler) insertReady(e *event) {
	tail := w.ready[w.head:]
	i := sort.Search(len(tail), func(i int) bool {
		return eventCompare(tail[i], e) > 0
	})
	w.ready = append(w.ready, nil)
	copy(w.ready[w.head+i+1:], w.ready[w.head+i:])
	w.ready[w.head+i] = e
}

func eventCompare(a, b *event) int {
	if c := a.when.Compare(b.when); c != 0 {
		return c
	}
	return cmp.Compare(a.seq, b.seq)
}

func (w *wheelScheduler) peek() *event {
	for w.head >= len(w.ready) {
		if !w.advance() {
			return nil
		}
	}
	return w.ready[w.head]
}

func (w *wheelScheduler) pop() *event {
	e := w.peek()
	if e == nil {
		return nil
	}
	w.ready[w.head] = nil
	w.head++
	w.pendingCount--
	return e
}

func (w *wheelScheduler) pending() int { return w.pendingCount }

func (w *wheelScheduler) counters() (uint64, uint64) {
	return w.cascades, w.overflowScans
}

// nextBoundary returns the first multiple of 1<<bits strictly after cur.
func nextBoundary(cur int64, bits uint) int64 {
	return (cur>>bits + 1) << bits
}

// advance moves the current tick forward to the next bucket holding
// events and collects it, sorted, into the ready queue. Empty stretches
// are skipped wholesale: when a level holds nothing, the clock jumps
// straight to the boundary where the next level up cascades. Returns
// false when no events remain anywhere in the wheel.
func (w *wheelScheduler) advance() bool {
	if w.counts[0]+w.counts[1]+w.counts[2]+len(w.over) == 0 {
		return false
	}
	w.ready = w.ready[:0]
	w.head = 0
	for {
		if w.counts[0] == 0 {
			switch {
			case w.counts[1] > 0:
				w.cur = nextBoundary(w.cur, wheelBits) - 1
			case w.counts[2] > 0:
				w.cur = nextBoundary(w.cur, 2*wheelBits) - 1
			default: // only overflow left; jump to the outermost wrap
				w.cur = nextBoundary(w.cur, wheelLevels*wheelBits) - 1
			}
		}
		w.cur++
		if w.cur&wheelMask == 0 {
			w.cascade(1)
			if (w.cur>>wheelBits)&wheelMask == 0 {
				w.cascade(2)
				if (w.cur>>(2*wheelBits))&wheelMask == 0 {
					w.drainOverflow()
				}
			}
		}
		slot := &w.levels[0][w.cur&wheelMask]
		if n := len(*slot); n > 0 {
			w.ready = append(w.ready, *slot...)
			w.counts[0] -= n
			for i := range *slot {
				(*slot)[i] = nil
			}
			*slot = (*slot)[:0]
		}
		if len(w.ready) > 0 {
			slices.SortFunc(w.ready, eventCompare)
			return true
		}
	}
}

// cascade redistributes the level's bucket covering the window the
// clock just entered into the levels below (or straight to ready for
// events due at the current tick). Every event in the bucket now has a
// delta within the finer level's span, by the index-distance placement
// rule in place.
func (w *wheelScheduler) cascade(level int) {
	idx := (w.cur >> (uint(level) * wheelBits)) & wheelMask
	slot := &w.levels[level][idx]
	n := len(*slot)
	if n == 0 {
		return
	}
	w.cascades++
	w.counts[level] -= n
	evs := *slot
	*slot = (*slot)[:0]
	for i, e := range evs {
		evs[i] = nil
		w.place(e)
	}
}

// drainOverflow re-files every overflow event that now fits the
// outermost level. Called when that level wraps, which guarantees each
// event is re-filed no later than the wrap preceding its window.
func (w *wheelScheduler) drainOverflow() {
	if len(w.over) == 0 {
		return
	}
	kept := w.over[:0]
	for _, e := range w.over {
		w.overflowScans++
		t := w.tickOf(e.when)
		if (t>>(2*wheelBits))-(w.cur>>(2*wheelBits)) < wheelSlots {
			w.place(e) // cannot re-enter overflow: the guard above is place's overflow test
		} else {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(w.over); i++ {
		w.over[i] = nil
	}
	w.over = kept
}
