package des

import "container/heap"

// eventQueue is the original binary-heap event store, ordered by
// (when, seq). It survives as the heap scheduler: the equivalence
// oracle that the timing wheel is pinned against (every registered
// scenario's dataset must be bit-identical under either store).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].when.Equal(q[j].when) {
		return q[i].when.Before(q[j].when)
	}
	return q[i].seq < q[j].seq // FIFO among simultaneous events
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// heapScheduler adapts eventQueue to the scheduler interface. Every
// schedule and pop pays O(log n) sift cost plus the container/heap
// interface boxing — the overhead the timing wheel eliminates.
type heapScheduler struct {
	q eventQueue
}

func (h *heapScheduler) schedule(e *event) {
	heap.Push(&h.q, e)
}

func (h *heapScheduler) peek() *event {
	if len(h.q) == 0 {
		return nil
	}
	return h.q[0]
}

func (h *heapScheduler) pop() *event {
	if len(h.q) == 0 {
		return nil
	}
	return heap.Pop(&h.q).(*event)
}

func (h *heapScheduler) pending() int { return len(h.q) }

func (h *heapScheduler) counters() (uint64, uint64) { return 0, 0 }
