package des

import (
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)

func TestOrderingByTime(t *testing.T) {
	l := NewLoop(t0, 1)
	var got []int
	l.After(3*time.Second, func() { got = append(got, 3) })
	l.After(1*time.Second, func() { got = append(got, 1) })
	l.After(2*time.Second, func() { got = append(got, 2) })
	l.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if l.Now() != t0.Add(3*time.Second) {
		t.Errorf("final time = %v", l.Now())
	}
}

func TestFIFOAmongSimultaneous(t *testing.T) {
	l := NewLoop(t0, 1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		l.After(time.Second, func() { got = append(got, i) })
	}
	l.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events out of FIFO order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	l := NewLoop(t0, 1)
	fired := false
	e := l.After(time.Second, func() { fired = true })
	e.Cancel()
	if !e.Canceled() {
		t.Error("Canceled() = false before the reap")
	}
	l.Run()
	if fired {
		t.Error("canceled event fired")
	}
	var zero Timer
	zero.Cancel() // must not panic
	if zero.Canceled() {
		t.Error("zero Timer reports canceled")
	}
}

// TestStaleTimerCannotCancelRecycledEvent pins the free-list's safety
// contract: a handle to a fired event must not affect the event that
// reuses its memory.
func TestStaleTimerCannotCancelRecycledEvent(t *testing.T) {
	l := NewLoop(t0, 1)
	stale := l.After(time.Second, func() {})
	l.Run()
	fired := false
	fresh := l.After(time.Second, func() { fired = true }) // reuses the pooled event
	stale.Cancel()
	if fresh.Canceled() {
		t.Fatal("stale Cancel reached the recycled event")
	}
	l.Run()
	if !fired {
		t.Error("recycled event did not fire")
	}
}

// TestEventFreeList asserts the scheduler's steady state allocates no
// events: schedule-and-drain cycles after warmup must be allocation-free.
func TestEventFreeList(t *testing.T) {
	l := NewLoop(t0, 1)
	fn := func() {}
	for i := 0; i < 64; i++ { // warm the pool and the heap's capacity
		l.After(time.Millisecond, fn)
	}
	l.Run()
	allocs := testing.AllocsPerRun(200, func() {
		l.After(time.Millisecond, fn)
		l.Run()
	})
	if allocs > 0 {
		t.Errorf("schedule+run allocated %.2f per op, want 0", allocs)
	}
}

func TestNestedScheduling(t *testing.T) {
	l := NewLoop(t0, 1)
	var times []time.Duration
	l.After(time.Second, func() {
		times = append(times, l.Now().Sub(t0))
		l.After(time.Second, func() {
			times = append(times, l.Now().Sub(t0))
		})
	})
	l.Run()
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Errorf("times = %v", times)
	}
}

func TestSchedulingInThePastClamps(t *testing.T) {
	l := NewLoop(t0, 1)
	var when time.Time
	l.After(10*time.Second, func() {
		l.At(t0, func() { when = l.Now() }) // in the past
	})
	l.Run()
	if when != t0.Add(10*time.Second) {
		t.Errorf("past event ran at %v", when)
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	l := NewLoop(t0, 1)
	ran := false
	l.After(-5*time.Second, func() { ran = true })
	l.Run()
	if !ran || l.Now() != t0 {
		t.Errorf("negative delay: ran=%v now=%v", ran, l.Now())
	}
}

func TestRunUntil(t *testing.T) {
	l := NewLoop(t0, 1)
	var got []int
	l.After(1*time.Hour, func() { got = append(got, 1) })
	l.After(3*time.Hour, func() { got = append(got, 3) })
	l.RunUntil(t0.Add(2 * time.Hour))
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("got %v", got)
	}
	if l.Now() != t0.Add(2*time.Hour) {
		t.Errorf("now = %v, want t0+2h", l.Now())
	}
	if l.Pending() != 1 {
		t.Errorf("pending = %d", l.Pending())
	}
	l.RunUntil(t0.Add(4 * time.Hour))
	if len(got) != 2 {
		t.Errorf("after second RunUntil: %v", got)
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	l := NewLoop(t0, 1)
	ran := false
	l.After(time.Hour, func() { ran = true })
	l.RunUntil(t0.Add(time.Hour))
	if !ran {
		t.Error("event exactly at boundary should run")
	}
}

func TestExecutedCount(t *testing.T) {
	l := NewLoop(t0, 1)
	for i := 0; i < 5; i++ {
		l.After(time.Duration(i)*time.Second, func() {})
	}
	e := l.After(10*time.Second, func() {})
	e.Cancel()
	l.Run()
	if l.Executed() != 5 {
		t.Errorf("Executed = %d, want 5 (canceled events don't count)", l.Executed())
	}
}

func TestDeterministicRandStreams(t *testing.T) {
	a := NewLoop(t0, 42).NewRand("peers")
	b := NewLoop(t0, 42).NewRand("peers")
	c := NewLoop(t0, 42).NewRand("files")
	same, diff := 0, 0
	for i := 0; i < 100; i++ {
		x, y, z := a.Int63(), b.Int63(), c.Int63()
		if x == y {
			same++
		}
		if x != z {
			diff++
		}
	}
	if same != 100 {
		t.Error("same label should yield identical stream")
	}
	if diff < 95 {
		t.Error("different labels should yield independent streams")
	}
}

// Property: for any set of delays, events fire in nondecreasing time order.
func TestQuickMonotoneExecution(t *testing.T) {
	f := func(delays []uint16) bool {
		l := NewLoop(t0, 9)
		var fired []time.Time
		for _, d := range delays {
			l.After(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, l.Now())
			})
		}
		l.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i].Before(fired[i-1]) {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	l := NewLoop(t0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.After(time.Duration(i%1000)*time.Millisecond, func() {})
		if i%1024 == 1023 {
			l.Run()
		}
	}
	l.Run()
}

func BenchmarkEventThroughput(b *testing.B) {
	// Self-perpetuating event chain: measures pure scheduler overhead.
	l := NewLoop(t0, 1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			l.After(time.Millisecond, tick)
		}
	}
	b.ResetTimer()
	l.After(time.Millisecond, tick)
	l.Run()
}

// TestLoopStats pins the engine's introspection counters: executed and
// scheduled totals, free-list recycling (allocated once, recycled
// thereafter) and queue depth tracking including the high-water mark.
func TestLoopStats(t *testing.T) {
	l := NewLoop(t0, 1)
	fn := func() {}

	if s := l.Stats(); s != (Stats{}) {
		t.Fatalf("fresh loop stats = %+v, want zero", s)
	}

	// Three events pending at once: max depth 3, three fresh allocations.
	for i := 1; i <= 3; i++ {
		l.After(time.Duration(i)*time.Second, fn)
	}
	if s := l.Stats(); s.Pending != 3 || s.MaxPending != 3 || s.Allocated != 3 || s.Recycled != 0 {
		t.Fatalf("after scheduling 3: %+v", s)
	}
	l.Run()
	if s := l.Stats(); s.Executed != 3 || s.Scheduled != 3 || s.Pending != 0 || s.MaxPending != 3 {
		t.Fatalf("after run: %+v", s)
	}

	// One more event reuses the free list and never deepens the queue.
	l.After(time.Second, fn)
	l.Run()
	s := l.Stats()
	if s.Executed != 4 || s.Scheduled != 4 {
		t.Fatalf("after 4th event: %+v", s)
	}
	if s.Allocated != 3 || s.Recycled != 1 {
		t.Errorf("free list not reflected: allocated %d, recycled %d (want 3, 1)", s.Allocated, s.Recycled)
	}
	if s.MaxPending != 3 {
		t.Errorf("max pending = %d, want high-water mark 3", s.MaxPending)
	}

	// A cancelled event still counts as scheduled, never as executed.
	tm := l.After(time.Second, fn)
	tm.Cancel()
	l.Run()
	if s := l.Stats(); s.Scheduled != 5 || s.Executed != 4 {
		t.Errorf("after cancel: %+v", s)
	}
}
