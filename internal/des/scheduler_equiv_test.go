package des

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
	"time"
)

// This file pins the timing wheel to the retained heap scheduler: any
// workload of At/After/Cancel/Step/RunUntil — including nested
// scheduling and cancellation from inside callbacks — must execute the
// same events at the same times in the same order, and land identical
// Stats (minus the wheel's own bookkeeping counters).

// op is one scripted action against a loop.
type op struct {
	kind byte
	a, b byte
	c    byte
}

// parseOps decodes a fuzz byte stream into a script, 4 bytes per op.
func parseOps(data []byte) []op {
	var ops []op
	for len(data) >= 4 {
		ops = append(ops, op{kind: data[0] % 8, a: data[1], b: data[2], c: data[3]})
		data = data[4:]
	}
	return ops
}

func opDelay(o op) time.Duration {
	ms := time.Duration(o.a)<<8 | time.Duration(o.b)
	return (ms * time.Millisecond) << (o.c % 12) // up to ~37 virtual hours
}

// runScript executes the script on a fresh loop of the given kind and
// returns the execution trace ("label@offset" per fired event) and the
// final loop state. Callbacks deterministically schedule and cancel
// more work, so the script exercises the nested paths too.
func runScript(kind SchedulerKind, ops []op) (trace []string, now time.Time, stats Stats) {
	l := NewLoopOpts(t0, 1, Options{Scheduler: kind})
	var timers []Timer
	nextLabel := 0
	var schedule func(when time.Time)
	schedule = func(when time.Time) {
		label := nextLabel
		nextLabel++
		timers = append(timers, l.At(when, func() {
			trace = append(trace, fmt.Sprintf("%d@%d", label, l.Now().Sub(t0)))
			if label%3 == 0 {
				schedule(l.Now().Add(time.Duration(label%97) * 13 * time.Second))
			}
			if label%11 == 7 && len(timers) > 0 {
				timers[(label*7)%len(timers)].Cancel()
			}
		}))
	}
	for _, o := range ops {
		switch o.kind {
		case 0, 1, 2:
			schedule(l.Now().Add(opDelay(o)))
		case 3:
			// Absolute time, possibly in the past once the clock moved.
			schedule(t0.Add(opDelay(o)))
		case 4:
			if len(timers) > 0 {
				timers[(int(o.a)<<8|int(o.b))%len(timers)].Cancel()
			}
		case 5:
			l.Step()
		case 6:
			l.RunUntil(l.Now().Add(opDelay(o)))
		case 7:
			// Far horizon: days to hundreds of days, reaching the
			// outer wheel levels and the overflow list.
			d := time.Duration(o.a)*24*time.Hour + time.Duration(o.b)*time.Second
			schedule(l.Now().Add(d))
		}
	}
	l.Run()
	return trace, l.Now(), l.Stats()
}

// assertSchedulersAgree runs the script under both schedulers and
// fails the test on any divergence in trace, clock, or counters.
func assertSchedulersAgree(t *testing.T, ops []op) {
	t.Helper()
	wTrace, wNow, wStats := runScript(SchedulerWheel, ops)
	hTrace, hNow, hStats := runScript(SchedulerHeap, ops)
	if !slices.Equal(wTrace, hTrace) {
		i := 0
		for i < len(wTrace) && i < len(hTrace) && wTrace[i] == hTrace[i] {
			i++
		}
		t.Fatalf("execution traces diverge at event %d: wheel %v vs heap %v (lens %d/%d)",
			i, at(wTrace, i), at(hTrace, i), len(wTrace), len(hTrace))
	}
	if !wNow.Equal(hNow) {
		t.Fatalf("final clocks diverge: wheel %v vs heap %v", wNow, hNow)
	}
	wStats.Cascades, wStats.OverflowScans = 0, 0 // wheel bookkeeping, not history
	if wStats != hStats {
		t.Fatalf("stats diverge: wheel %+v vs heap %+v", wStats, hStats)
	}
}

func at(s []string, i int) string {
	if i < len(s) {
		return s[i]
	}
	return "<none>"
}

func FuzzSchedulerEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{7, 200, 1, 0, 6, 255, 255, 11, 0, 0, 50, 0})
	f.Add([]byte{3, 0, 10, 0, 5, 0, 0, 0, 4, 0, 0, 0, 3, 0, 1, 0})
	f.Add([]byte{
		0, 0, 100, 0, 0, 0, 100, 0, 0, 0, 100, 0, // simultaneous: FIFO
		6, 0, 200, 0, 2, 0, 7, 11, 7, 100, 30, 0,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		assertSchedulersAgree(t, parseOps(data))
	})
}

// TestSchedulerEquivalenceRandom drives both schedulers through many
// random workloads, weighted to hit every wheel level: near ticks,
// cascades from the outer levels, the overflow list, RunUntil parking
// the clock between events, and past-time clamping.
func TestSchedulerEquivalenceRandom(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(120)
		ops := make([]op, n)
		for i := range ops {
			ops[i] = op{
				kind: byte(rng.Intn(8)),
				a:    byte(rng.Intn(256)),
				b:    byte(rng.Intn(256)),
				c:    byte(rng.Intn(256)),
			}
		}
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			assertSchedulersAgree(t, ops)
		})
	}
}

// TestWheelOverflowCascades forces the overflow path explicitly: a
// spread of events beyond the outermost level's 208-day span must all
// fire, in order, with overflow scans recorded.
func TestWheelOverflowCascades(t *testing.T) {
	l := NewLoopOpts(t0, 1, Options{Scheduler: SchedulerWheel})
	var got []int
	for i, days := range []int{400, 1, 500, 250, 0, 209} {
		i := i
		l.After(time.Duration(days)*24*time.Hour+time.Duration(i)*time.Second, func() {
			got = append(got, i)
		})
	}
	l.Run()
	want := []int{4, 1, 5, 3, 0, 2} // by (days, i)
	if !slices.Equal(got, want) {
		t.Fatalf("overflow events out of order: got %v want %v", got, want)
	}
	s := l.Stats()
	if s.OverflowScans == 0 {
		t.Error("no overflow scans recorded for 400+ day horizons")
	}
	if s.Cascades == 0 {
		t.Error("no cascades recorded for multi-level horizons")
	}
	if s.Executed != 6 || s.Pending != 0 {
		t.Errorf("stats after drain: %+v", s)
	}
}

// TestSchedulerEnvKnob pins the ops override: loops built without
// explicit Options obey REPRO_DES_SCHEDULER, and invalid values fall
// back to the default wheel instead of crashing a campaign.
func TestSchedulerEnvKnob(t *testing.T) {
	t.Setenv(SchedulerEnv, "heap")
	if k := NewLoop(t0, 1).Scheduler(); k != SchedulerHeap {
		t.Errorf("env heap: got %q", k)
	}
	if k := NewLoopOpts(t0, 1, Options{Scheduler: SchedulerWheel}).Scheduler(); k != SchedulerWheel {
		t.Errorf("explicit option must beat env: got %q", k)
	}
	t.Setenv(SchedulerEnv, "bogus")
	if k := NewLoop(t0, 1).Scheduler(); k != SchedulerWheel {
		t.Errorf("invalid env must fall back to wheel: got %q", k)
	}
}

// BenchmarkScheduler measures steady-state events/sec at fixed queue
// depths: each executed event schedules one replacement, so the
// pending count stays at the target while b.N events drain. This is
// the microbenchmark behind the wheel-vs-heap speedup claim in
// docs/PERFORMANCE.md.
func BenchmarkScheduler(b *testing.B) {
	for _, pending := range []int{10_000, 100_000, 1_000_000} {
		for _, kind := range []SchedulerKind{SchedulerHeap, SchedulerWheel} {
			b.Run(fmt.Sprintf("%s/pending=%d", kind, pending), func(b *testing.B) {
				l := NewLoopOpts(t0, 1, Options{Scheduler: kind})
				rng := rand.New(rand.NewSource(7))
				var tick func()
				tick = func() {
					l.After(time.Duration(rng.Int63n(int64(2*time.Hour))), tick)
				}
				for i := 0; i < pending; i++ {
					l.After(time.Duration(rng.Int63n(int64(2*time.Hour))), tick)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					l.Step()
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
			})
		}
	}
}
