// Package des provides a deterministic discrete-event scheduler with a
// virtual clock. It is the execution substrate of the simulated network:
// month-long measurement campaigns run as an ordered sequence of events in
// seconds of CPU time, and identical seeds replay identical histories.
package des

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Event is a scheduled callback. The zero value is invalid; events are
// created through Loop.At and Loop.After.
type Event struct {
	when     time.Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap position, -1 when popped
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].when.Equal(q[j].when) {
		return q[i].when.Before(q[j].when)
	}
	return q[i].seq < q[j].seq // FIFO among simultaneous events
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Loop is a single-threaded discrete-event loop. All callbacks run on the
// goroutine that calls Run/RunUntil/Step, so event handlers never race.
type Loop struct {
	now      time.Time
	queue    eventQueue
	seq      uint64
	seed     int64
	rng      *rand.Rand
	executed uint64
}

// NewLoop returns a loop whose virtual clock starts at start and whose
// random streams derive from seed.
func NewLoop(start time.Time, seed int64) *Loop {
	return &Loop{
		now:  start,
		seed: seed,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (l *Loop) Now() time.Time { return l.now }

// Executed returns the number of events processed so far.
func (l *Loop) Executed() uint64 { return l.executed }

// Pending returns the number of events still queued (including canceled
// ones not yet reaped).
func (l *Loop) Pending() int { return len(l.queue) }

// Rand returns the loop's root random stream. Use NewRand for independent
// per-component streams.
func (l *Loop) Rand() *rand.Rand { return l.rng }

// NewRand derives an independent deterministic random stream labeled by
// name. Streams with different labels are statistically independent;
// identical (seed, label) pairs yield identical streams.
func (l *Loop) NewRand(label string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", l.seed, label)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// At schedules fn at virtual time t. Scheduling in the past fires at the
// current time (immediately on the next step), never backwards.
func (l *Loop) At(t time.Time, fn func()) *Event {
	if t.Before(l.now) {
		t = l.now
	}
	e := &Event{when: t, seq: l.seq, fn: fn}
	l.seq++
	heap.Push(&l.queue, e)
	return e
}

// After schedules fn d from now. Negative durations clamp to zero.
func (l *Loop) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return l.At(l.now.Add(d), fn)
}

// Step executes the earliest pending event and advances the clock to it.
// It returns false when the queue is empty.
func (l *Loop) Step() bool {
	for len(l.queue) > 0 {
		e := heap.Pop(&l.queue).(*Event)
		if e.canceled {
			continue
		}
		l.now = e.when
		l.executed++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (l *Loop) Run() {
	for l.Step() {
	}
}

// RunUntil executes every event scheduled at or before t, then sets the
// clock to t. Events scheduled later remain queued.
func (l *Loop) RunUntil(t time.Time) {
	for len(l.queue) > 0 {
		e := l.queue[0]
		if e.when.After(t) {
			break
		}
		heap.Pop(&l.queue)
		if e.canceled {
			continue
		}
		l.now = e.when
		l.executed++
		e.fn()
	}
	if t.After(l.now) {
		l.now = t
	}
}
