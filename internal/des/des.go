// Package des provides a deterministic discrete-event scheduler with a
// virtual clock. It is the execution substrate of the simulated network:
// month-long measurement campaigns run as an ordered sequence of events in
// seconds of CPU time, and identical seeds replay identical histories.
package des

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// event is one scheduled callback. Events are owned by the loop and
// recycled through a free list after they fire or are reaped, so a
// campaign's millions of timers cost a bounded set of allocations; the
// generation counter makes handles held past an event's lifetime inert.
type event struct {
	when     time.Time
	seq      uint64
	fn       func()
	canceled bool
	index    int    // heap position, -1 when popped
	gen      uint32 // bumped on recycle; stale Timers no longer match
}

// Timer is a cancelable handle to a scheduled event, returned by
// Loop.At and Loop.After. The zero Timer is inert. Handles stay cheap
// and safe after the event fires: the loop recycles event memory, and
// the generation check turns operations through stale handles into
// no-ops.
type Timer struct {
	e   *event
	gen uint32
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (t Timer) Cancel() {
	if t.e != nil && t.e.gen == t.gen {
		t.e.canceled = true
	}
}

// Canceled reports whether Cancel was called and the cancellation is
// still observable: once the loop reaps the canceled event (or the
// event fires), the handle goes stale and Canceled returns false.
func (t Timer) Canceled() bool {
	return t.e != nil && t.e.gen == t.gen && t.e.canceled
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].when.Equal(q[j].when) {
		return q[i].when.Before(q[j].when)
	}
	return q[i].seq < q[j].seq // FIFO among simultaneous events
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Loop is a single-threaded discrete-event loop. All callbacks run on the
// goroutine that calls Run/RunUntil/Step, so event handlers never race.
type Loop struct {
	now       time.Time
	queue     eventQueue
	seq       uint64
	seed      int64
	rng       *rand.Rand
	executed  uint64
	free      []*event // recycled events
	allocated uint64   // events allocated fresh (free list empty)
	recycled  uint64   // events reused from the free list
	maxQueue  int      // high-water mark of the pending queue
}

// Stats is a snapshot of the loop's internal counters — the engine's
// side of the campaign progress tap (scenario.Progress) and the input
// the scheduler work on the roadmap (calendar queues, sharded loops)
// needs to know where event memory and queue depth actually go.
type Stats struct {
	// Executed is the number of events processed so far.
	Executed uint64
	// Scheduled is the number of events ever scheduled (At/After calls).
	Scheduled uint64
	// Allocated counts events allocated fresh because the free list was
	// empty; Recycled counts events reused from it. Allocated is the
	// loop's steady-state event memory footprint in units of events.
	Allocated uint64
	Recycled  uint64
	// Pending is the current queue depth (including canceled events not
	// yet reaped); MaxPending is its high-water mark.
	Pending    int
	MaxPending int
}

// Stats snapshots the loop's counters without exposing its internals.
func (l *Loop) Stats() Stats {
	return Stats{
		Executed:   l.executed,
		Scheduled:  l.seq,
		Allocated:  l.allocated,
		Recycled:   l.recycled,
		Pending:    len(l.queue),
		MaxPending: l.maxQueue,
	}
}

// NewLoop returns a loop whose virtual clock starts at start and whose
// random streams derive from seed.
func NewLoop(start time.Time, seed int64) *Loop {
	return &Loop{
		now:  start,
		seed: seed,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (l *Loop) Now() time.Time { return l.now }

// Executed returns the number of events processed so far.
func (l *Loop) Executed() uint64 { return l.executed }

// Pending returns the number of events still queued (including canceled
// ones not yet reaped).
func (l *Loop) Pending() int { return len(l.queue) }

// Rand returns the loop's root random stream. Use NewRand for independent
// per-component streams.
func (l *Loop) Rand() *rand.Rand { return l.rng }

// NewRand derives an independent deterministic random stream labeled by
// name. Streams with different labels are statistically independent;
// identical (seed, label) pairs yield identical streams.
func (l *Loop) NewRand(label string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", l.seed, label)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// alloc takes an event off the free list, or makes one.
func (l *Loop) alloc(t time.Time, fn func()) *event {
	var e *event
	if n := len(l.free); n > 0 {
		e = l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
		l.recycled++
	} else {
		e = &event{}
		l.allocated++
	}
	e.when, e.seq, e.fn, e.canceled = t, l.seq, fn, false
	l.seq++
	return e
}

// recycle invalidates outstanding handles and returns the event to the
// free list. The callback reference is dropped so the loop never pins a
// fired closure.
func (l *Loop) recycle(e *event) {
	e.fn = nil
	e.gen++
	l.free = append(l.free, e)
}

// At schedules fn at virtual time t. Scheduling in the past fires at the
// current time (immediately on the next step), never backwards.
func (l *Loop) At(t time.Time, fn func()) Timer {
	if t.Before(l.now) {
		t = l.now
	}
	e := l.alloc(t, fn)
	heap.Push(&l.queue, e)
	if len(l.queue) > l.maxQueue {
		l.maxQueue = len(l.queue)
	}
	return Timer{e: e, gen: e.gen}
}

// After schedules fn d from now. Negative durations clamp to zero.
func (l *Loop) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now.Add(d), fn)
}

// Step executes the earliest pending event and advances the clock to it.
// It returns false when the queue is empty.
func (l *Loop) Step() bool {
	for len(l.queue) > 0 {
		e := heap.Pop(&l.queue).(*event)
		if e.canceled {
			l.recycle(e)
			continue
		}
		l.now = e.when
		l.executed++
		fn := e.fn
		l.recycle(e) // before fn: nested scheduling may reuse it
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (l *Loop) Run() {
	for l.Step() {
	}
}

// RunUntil executes every event scheduled at or before t, then sets the
// clock to t. Events scheduled later remain queued.
func (l *Loop) RunUntil(t time.Time) {
	for len(l.queue) > 0 {
		e := l.queue[0]
		if e.when.After(t) {
			break
		}
		heap.Pop(&l.queue)
		if e.canceled {
			l.recycle(e)
			continue
		}
		l.now = e.when
		l.executed++
		fn := e.fn
		l.recycle(e)
		fn()
	}
	if t.After(l.now) {
		l.now = t
	}
}
