// Package des provides a deterministic discrete-event scheduler with a
// virtual clock. It is the execution substrate of the simulated network:
// month-long measurement campaigns run as an ordered sequence of events in
// seconds of CPU time, and identical seeds replay identical histories.
//
// Two schedulers implement the same (when, seq) total order: a
// hierarchical timing wheel (the default hot path) and the original
// binary heap, retained as the equivalence oracle behind Options or the
// REPRO_DES_SCHEDULER environment knob. Histories are bit-identical
// under either; see docs/PERFORMANCE.md for the argument.
package des

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"time"
)

// event is one scheduled callback. Events are owned by the loop and
// recycled through a free list after they fire or are reaped, so a
// campaign's millions of timers cost a bounded set of allocations; the
// generation counter makes handles held past an event's lifetime inert.
type event struct {
	when     time.Time
	seq      uint64
	fn       func()
	canceled bool
	index    int    // heap position, -1 when popped (heap scheduler only)
	gen      uint32 // bumped on recycle; stale Timers no longer match
}

// Timer is a cancelable handle to a scheduled event, returned by
// Loop.At and Loop.After. The zero Timer is inert. Handles stay cheap
// and safe after the event fires: the loop recycles event memory, and
// the generation check turns operations through stale handles into
// no-ops.
type Timer struct {
	e   *event
	gen uint32
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (t Timer) Cancel() {
	if t.e != nil && t.e.gen == t.gen {
		t.e.canceled = true
	}
}

// Canceled reports whether Cancel was called and the cancellation is
// still observable: once the loop reaps the canceled event (or the
// event fires), the handle goes stale and Canceled returns false.
func (t Timer) Canceled() bool {
	return t.e != nil && t.e.gen == t.gen && t.e.canceled
}

// scheduler is the pending-event store behind the loop. Both
// implementations pop events in identical (when, seq) order; they only
// differ in how the order is maintained. Canceled events stay pending
// until popped (the loop reaps them), so pending() counts them too.
type scheduler interface {
	schedule(e *event)
	peek() *event // earliest pending event, nil when empty
	pop() *event  // remove and return the earliest, nil when empty
	pending() int
	counters() (cascades, overflowScans uint64)
}

// SchedulerKind selects the pending-event store.
type SchedulerKind string

const (
	// SchedulerWheel is the hierarchical timing wheel: O(1) schedule,
	// amortized O(bucket) pop. The default.
	SchedulerWheel SchedulerKind = "wheel"
	// SchedulerHeap is the original container/heap queue, retained as
	// the equivalence oracle.
	SchedulerHeap SchedulerKind = "heap"
)

// SchedulerEnv overrides the default scheduler for loops that don't set
// Options.Scheduler explicitly ("wheel" or "heap"); unrecognized values
// are ignored so an ops typo cannot crash a campaign.
const SchedulerEnv = "REPRO_DES_SCHEDULER"

// Options configures a loop beyond its clock and seed. The zero value
// picks the default scheduler (the timing wheel, unless SchedulerEnv
// says otherwise). Scheduler choice can never change a campaign's
// history — only its speed.
type Options struct {
	Scheduler SchedulerKind
}

func resolveScheduler(k SchedulerKind) SchedulerKind {
	switch k {
	case SchedulerWheel, SchedulerHeap:
		return k
	case "":
	default:
		panic(fmt.Sprintf("des: unknown scheduler %q", k))
	}
	switch SchedulerKind(os.Getenv(SchedulerEnv)) {
	case SchedulerHeap:
		return SchedulerHeap
	}
	return SchedulerWheel
}

// Loop is a single-threaded discrete-event loop. All callbacks run on the
// goroutine that calls Run/RunUntil/Step, so event handlers never race.
type Loop struct {
	now       time.Time
	sched     scheduler
	kind      SchedulerKind
	seq       uint64
	seed      int64
	rng       *rand.Rand
	executed  uint64
	free      []*event // recycled events
	allocated uint64   // events allocated fresh (free list empty)
	recycled  uint64   // events reused from the free list
	maxQueue  int      // high-water mark of the pending queue
}

// Stats is a snapshot of the loop's internal counters — the engine's
// side of the campaign progress tap (scenario.Progress) and the input
// the scheduler work on the roadmap (calendar queues, sharded loops)
// needs to know where event memory and queue depth actually go.
type Stats struct {
	// Executed is the number of events processed so far.
	Executed uint64
	// Scheduled is the number of events ever scheduled (At/After calls).
	Scheduled uint64
	// Allocated counts events allocated fresh because the free list was
	// empty; Recycled counts events reused from it. Allocated is the
	// loop's steady-state event memory footprint in units of events.
	Allocated uint64
	Recycled  uint64
	// Pending is the current queue depth (including canceled events not
	// yet reaped); MaxPending is its high-water mark.
	Pending    int
	MaxPending int
	// Cascades counts timing-wheel bucket redistributions (an outer
	// level's bucket spilling into the level below it); OverflowScans
	// counts events re-examined during overflow drains. Both are zero
	// under the heap scheduler — they measure wheel bookkeeping, not
	// campaign history.
	Cascades      uint64
	OverflowScans uint64
}

// Stats snapshots the loop's counters without exposing its internals.
func (l *Loop) Stats() Stats {
	cascades, overflowScans := l.sched.counters()
	return Stats{
		Executed:      l.executed,
		Scheduled:     l.seq,
		Allocated:     l.allocated,
		Recycled:      l.recycled,
		Pending:       l.sched.pending(),
		MaxPending:    l.maxQueue,
		Cascades:      cascades,
		OverflowScans: overflowScans,
	}
}

// NewLoop returns a loop whose virtual clock starts at start and whose
// random streams derive from seed, using the default scheduler.
func NewLoop(start time.Time, seed int64) *Loop {
	return NewLoopOpts(start, seed, Options{})
}

// NewLoopOpts is NewLoop with explicit Options.
func NewLoopOpts(start time.Time, seed int64, opts Options) *Loop {
	kind := resolveScheduler(opts.Scheduler)
	l := &Loop{
		now:  start,
		kind: kind,
		seed: seed,
		rng:  rand.New(rand.NewSource(seed)),
	}
	if kind == SchedulerHeap {
		l.sched = &heapScheduler{}
	} else {
		l.sched = newWheelScheduler(start)
	}
	return l
}

// Scheduler reports which pending-event store this loop runs on.
func (l *Loop) Scheduler() SchedulerKind { return l.kind }

// Now returns the current virtual time.
func (l *Loop) Now() time.Time { return l.now }

// Executed returns the number of events processed so far.
func (l *Loop) Executed() uint64 { return l.executed }

// Pending returns the number of events still queued (including canceled
// ones not yet reaped).
func (l *Loop) Pending() int { return l.sched.pending() }

// Rand returns the loop's root random stream. Use NewRand for independent
// per-component streams.
func (l *Loop) Rand() *rand.Rand { return l.rng }

// NewRand derives an independent deterministic random stream labeled by
// name. Streams with different labels are statistically independent;
// identical (seed, label) pairs yield identical streams.
func (l *Loop) NewRand(label string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", l.seed, label)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// alloc takes an event off the free list, or makes one.
func (l *Loop) alloc(t time.Time, fn func()) *event {
	var e *event
	if n := len(l.free); n > 0 {
		e = l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
		l.recycled++
	} else {
		e = &event{}
		l.allocated++
	}
	e.when, e.seq, e.fn, e.canceled = t, l.seq, fn, false
	l.seq++
	return e
}

// recycle invalidates outstanding handles and returns the event to the
// free list. The callback reference is dropped so the loop never pins a
// fired closure.
func (l *Loop) recycle(e *event) {
	e.fn = nil
	e.gen++
	l.free = append(l.free, e)
}

// At schedules fn at virtual time t. Scheduling in the past fires at the
// current time (immediately on the next step), never backwards.
func (l *Loop) At(t time.Time, fn func()) Timer {
	if t.Before(l.now) {
		t = l.now
	}
	e := l.alloc(t, fn)
	l.sched.schedule(e)
	if p := l.sched.pending(); p > l.maxQueue {
		l.maxQueue = p
	}
	return Timer{e: e, gen: e.gen}
}

// After schedules fn d from now. Negative durations clamp to zero.
func (l *Loop) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now.Add(d), fn)
}

// runNext pops and executes the earliest pending event, advancing the
// clock to it; canceled events are reaped and recycled along the way.
// With bounded set, events past the deadline stay queued and unreaped.
// It returns false when nothing (within bounds) is left to run. This is
// the single pop/execute body shared by Step, Run and RunUntil.
func (l *Loop) runNext(deadline time.Time, bounded bool) bool {
	for {
		e := l.sched.peek()
		if e == nil {
			return false
		}
		if bounded && e.when.After(deadline) {
			return false
		}
		l.sched.pop()
		if e.canceled {
			l.recycle(e)
			continue
		}
		l.now = e.when
		l.executed++
		fn := e.fn
		l.recycle(e) // before fn: nested scheduling may reuse it
		fn()
		return true
	}
}

// Step executes the earliest pending event and advances the clock to it.
// It returns false when the queue is empty.
func (l *Loop) Step() bool {
	return l.runNext(time.Time{}, false)
}

// Run executes events until the queue is empty.
func (l *Loop) Run() {
	for l.Step() {
	}
}

// RunUntil executes every event scheduled at or before t, then sets the
// clock to t. Events scheduled later remain queued.
func (l *Loop) RunUntil(t time.Time) {
	for l.runNext(t, true) {
	}
	if t.After(l.now) {
		l.now = t
	}
}
