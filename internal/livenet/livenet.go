// Package livenet implements transport.Host over real TCP sockets. The
// protocol actors (server, client, honeypot) run unchanged on top of it:
// what the simulator delivers as events, livenet delivers from socket
// read loops, serialized through a per-host executor goroutine so the
// single-threaded actor contract of package transport holds.
package livenet

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Host is a network node backed by the operating system's TCP stack.
type Host struct {
	addr netip.Addr
	rng  *rand.Rand

	mu        sync.Mutex
	execQueue []func()
	execCond  *sync.Cond
	closed    bool

	wg        sync.WaitGroup
	listeners map[*listener]struct{}
	conns     map[*conn]struct{}
}

var _ transport.Host = (*Host)(nil)

// NewHost creates a host bound to addr (usually a loopback address) and
// starts its executor. seed initializes the host's random stream.
func NewHost(addr netip.Addr, seed int64) *Host {
	h := &Host{
		addr:      addr,
		rng:       rand.New(rand.NewSource(seed)),
		listeners: make(map[*listener]struct{}),
		conns:     make(map[*conn]struct{}),
	}
	h.execCond = sync.NewCond(&h.mu)
	h.wg.Add(1)
	go h.execLoop()
	return h
}

func (h *Host) execLoop() {
	defer h.wg.Done()
	for {
		h.mu.Lock()
		for len(h.execQueue) == 0 && !h.closed {
			h.execCond.Wait()
		}
		if h.closed && len(h.execQueue) == 0 {
			h.mu.Unlock()
			return
		}
		fn := h.execQueue[0]
		h.execQueue = h.execQueue[1:]
		h.mu.Unlock()
		fn()
	}
}

// Post implements transport.Host.
func (h *Host) Post(fn func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.execQueue = append(h.execQueue, fn)
	h.execCond.Signal()
}

// Close shuts the host down: listeners and connections are closed, the
// executor drains and exits. Close blocks until the executor has stopped.
func (h *Host) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	ls := make([]*listener, 0, len(h.listeners))
	for l := range h.listeners {
		ls = append(ls, l)
	}
	cs := make([]*conn, 0, len(h.conns))
	for c := range h.conns {
		cs = append(cs, c)
	}
	h.execCond.Broadcast()
	h.mu.Unlock()
	for _, l := range ls {
		l.ln.Close()
	}
	for _, c := range cs {
		c.closeTransport()
	}
	h.wg.Wait()
}

// Addr implements transport.Host.
func (h *Host) Addr() netip.Addr { return h.addr }

// Now implements transport.Host.
func (h *Host) Now() time.Time { return time.Now() }

// Rand implements transport.Host.
func (h *Host) Rand() *rand.Rand { return h.rng }

type liveTimer struct {
	t       *time.Timer
	stopped bool
	mu      sync.Mutex
}

func (lt *liveTimer) Stop() bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.stopped {
		return false
	}
	lt.stopped = true
	return lt.t.Stop()
}

// After implements transport.Host.
func (h *Host) After(d time.Duration, fn func()) transport.Timer {
	lt := &liveTimer{}
	lt.t = time.AfterFunc(d, func() {
		lt.mu.Lock()
		if lt.stopped {
			lt.mu.Unlock()
			return
		}
		lt.stopped = true
		lt.mu.Unlock()
		h.Post(fn)
	})
	return lt
}

type listener struct {
	host  *Host
	ln    net.Listener
	addr  netip.AddrPort
	space wire.Space
}

func (l *listener) Close() {
	l.ln.Close()
	l.host.mu.Lock()
	delete(l.host.listeners, l)
	l.host.mu.Unlock()
}

func (l *listener) Addr() netip.AddrPort { return l.addr }

// Listen implements transport.Host. Port 0 asks the kernel for a free
// port; Listener.Addr reveals the choice.
func (h *Host) Listen(port uint16, space wire.Space, accept func(transport.Conn)) (transport.Listener, error) {
	ln, err := net.Listen("tcp", netip.AddrPortFrom(h.addr, port).String())
	if err != nil {
		return nil, fmt.Errorf("livenet: listen: %w", err)
	}
	tcpAddr := ln.Addr().(*net.TCPAddr)
	l := &listener{host: h, ln: ln, space: space}
	l.addr = netip.AddrPortFrom(h.addr, uint16(tcpAddr.Port))
	h.mu.Lock()
	h.listeners[l] = struct{}{}
	h.mu.Unlock()

	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			c := h.newConn(nc, space)
			h.Post(func() { accept(c) })
		}
	}()
	return l, nil
}

// Dial implements transport.Host.
func (h *Host) Dial(remote netip.AddrPort, space wire.Space, done func(transport.Conn, error)) {
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		d := net.Dialer{Timeout: 10 * time.Second, LocalAddr: &net.TCPAddr{IP: h.addr.AsSlice()}}
		nc, err := d.Dial("tcp", remote.String())
		if err != nil {
			h.Post(func() { done(nil, fmt.Errorf("%w: %v", transport.ErrConnRefused, err)) })
			return
		}
		c := h.newConn(nc, space)
		h.Post(func() { done(c, nil) })
	}()
}

type conn struct {
	host  *Host
	nc    net.Conn
	space wire.Space

	// Executor-owned state (only touched via Post).
	hooks    transport.ConnHooks
	hooksSet bool
	buffered []wire.Message
	notified bool

	// Outbound queue.
	outMu     sync.Mutex
	outCond   *sync.Cond
	outQueue  [][]byte
	outClosed bool

	closeOnce sync.Once
	local     netip.AddrPort
	remote    netip.AddrPort
}

var _ transport.Conn = (*conn)(nil)

func (h *Host) newConn(nc net.Conn, space wire.Space) *conn {
	c := &conn{host: h, nc: nc, space: space}
	c.outCond = sync.NewCond(&c.outMu)
	if a, ok := nc.LocalAddr().(*net.TCPAddr); ok {
		c.local = a.AddrPort()
	}
	if a, ok := nc.RemoteAddr().(*net.TCPAddr); ok {
		c.remote = a.AddrPort()
	}
	h.mu.Lock()
	h.conns[c] = struct{}{}
	h.mu.Unlock()

	h.wg.Add(2)
	go c.readLoop()
	go c.writeLoop()
	return c
}

func (c *conn) readLoop() {
	defer c.host.wg.Done()
	r := wire.NewReader(c.nc, c.space)
	for {
		m, err := r.Read()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrUnexpectedEOF) {
				err = nil // graceful or locally-initiated close
			}
			c.closeTransport()
			finalErr := err
			c.host.Post(func() { c.notifyClose(finalErr) })
			return
		}
		msg := m
		c.host.Post(func() { c.dispatch(msg) })
	}
}

func (c *conn) writeLoop() {
	defer c.host.wg.Done()
	for {
		c.outMu.Lock()
		for len(c.outQueue) == 0 && !c.outClosed {
			c.outCond.Wait()
		}
		if len(c.outQueue) == 0 && c.outClosed {
			// Graceful close with the queue drained: now the socket may go.
			c.outMu.Unlock()
			c.hardClose()
			return
		}
		batch := c.outQueue
		c.outQueue = nil
		c.outMu.Unlock()
		for _, frame := range batch {
			if _, err := c.nc.Write(frame); err != nil {
				c.closeTransport()
				return
			}
		}
	}
}

// dispatch runs on the executor.
func (c *conn) dispatch(m wire.Message) {
	if !c.hooksSet {
		c.buffered = append(c.buffered, m)
		return
	}
	if c.hooks.OnMessage != nil {
		c.hooks.OnMessage(m)
	}
}

// notifyClose runs on the executor.
func (c *conn) notifyClose(err error) {
	if c.notified {
		return
	}
	c.notified = true
	c.host.mu.Lock()
	delete(c.host.conns, c)
	c.host.mu.Unlock()
	if c.hooks.OnClose != nil {
		c.hooks.OnClose(err)
	}
}

// SetHooks implements transport.Conn. Must be called on the executor
// (i.e. from an accept/dial/message callback), like all actor code.
func (c *conn) SetHooks(h transport.ConnHooks) {
	c.hooks = h
	c.hooksSet = true
	for _, m := range c.buffered {
		if c.hooks.OnMessage != nil {
			c.hooks.OnMessage(m)
		}
	}
	c.buffered = nil
}

// Send implements transport.Conn.
func (c *conn) Send(m wire.Message) {
	frame := wire.AppendFrame(nil, m)
	c.outMu.Lock()
	defer c.outMu.Unlock()
	if c.outClosed {
		return
	}
	c.outQueue = append(c.outQueue, frame)
	c.outCond.Signal()
}

// Close implements transport.Conn: a graceful close that lets already
// queued messages flush before the socket goes down — matching netsim,
// where sends issued before Close are always delivered.
func (c *conn) Close() {
	c.outMu.Lock()
	wasClosed := c.outClosed
	c.outClosed = true
	drained := len(c.outQueue) == 0
	c.outCond.Broadcast()
	c.outMu.Unlock()
	if wasClosed {
		return
	}
	if drained {
		c.hardClose()
	}
	// Otherwise the writer goroutine closes the socket after flushing.
}

// closeTransport is the abortive teardown (read errors, host shutdown):
// pending writes are abandoned. Safe from any goroutine.
func (c *conn) closeTransport() {
	c.outMu.Lock()
	c.outClosed = true
	c.outCond.Broadcast()
	c.outMu.Unlock()
	c.hardClose()
}

// hardClose closes the socket exactly once.
func (c *conn) hardClose() {
	c.closeOnce.Do(func() {
		// Give an in-flight write a moment, then cut.
		c.nc.SetWriteDeadline(time.Now().Add(time.Second))
		c.nc.Close()
	})
}

// LocalAddr implements transport.Conn.
func (c *conn) LocalAddr() netip.AddrPort { return c.local }

// RemoteAddr implements transport.Conn.
func (c *conn) RemoteAddr() netip.AddrPort { return c.remote }
