package livenet

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/ed2k"
	"repro/internal/transport"
	"repro/internal/wire"
)

var loopback = netip.MustParseAddr("127.0.0.1")

// waitFor polls cond until true or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestLiveExchange(t *testing.T) {
	srv := NewHost(loopback, 1)
	cli := NewHost(loopback, 2)
	defer srv.Close()
	defer cli.Close()

	var mu sync.Mutex
	var serverGot, clientGot []wire.Message

	l, err := srv.Listen(0, wire.ServerSpace, func(c transport.Conn) {
		c.SetHooks(transport.ConnHooks{
			OnMessage: func(m wire.Message) {
				mu.Lock()
				serverGot = append(serverGot, m)
				mu.Unlock()
				c.Send(&wire.IDChange{ClientID: 7})
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}

	cli.Dial(l.Addr(), wire.ServerSpace, func(c transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.SetHooks(transport.ConnHooks{
			OnMessage: func(m wire.Message) {
				mu.Lock()
				clientGot = append(clientGot, m)
				mu.Unlock()
			},
		})
		c.Send(&wire.LoginRequest{UserHash: ed2k.NewUserHash("u"), Port: 4662})
	})

	waitFor(t, "message exchange", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(serverGot) == 1 && len(clientGot) == 1
	})
	mu.Lock()
	defer mu.Unlock()
	if _, ok := serverGot[0].(*wire.LoginRequest); !ok {
		t.Errorf("server got %T", serverGot[0])
	}
	if id, ok := clientGot[0].(*wire.IDChange); !ok || id.ClientID != 7 {
		t.Errorf("client got %#v", clientGot[0])
	}
}

func TestLiveOrdering(t *testing.T) {
	srv := NewHost(loopback, 1)
	cli := NewHost(loopback, 2)
	defer srv.Close()
	defer cli.Close()

	const n = 200
	var mu sync.Mutex
	var got []uint32
	l, err := srv.Listen(0, wire.ServerSpace, func(c transport.Conn) {
		c.SetHooks(transport.ConnHooks{
			OnMessage: func(m wire.Message) {
				mu.Lock()
				got = append(got, m.(*wire.IDChange).ClientID)
				mu.Unlock()
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	cli.Dial(l.Addr(), wire.ServerSpace, func(c transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for i := uint32(0); i < n; i++ {
			c.Send(&wire.IDChange{ClientID: i})
		}
	})
	waitFor(t, "all messages", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == n
	})
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("out of order at %d", i)
		}
	}
}

func TestLiveDialRefused(t *testing.T) {
	cli := NewHost(loopback, 1)
	defer cli.Close()
	var mu sync.Mutex
	var dialErr error
	gotResult := false
	// Port 1 is essentially guaranteed closed for unprivileged tests.
	cli.Dial(netip.AddrPortFrom(loopback, 1), wire.ServerSpace, func(c transport.Conn, err error) {
		mu.Lock()
		dialErr = err
		gotResult = true
		mu.Unlock()
	})
	waitFor(t, "dial result", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return gotResult
	})
	if dialErr == nil {
		t.Error("dial to closed port should fail")
	}
}

func TestLiveCloseNotifiesPeer(t *testing.T) {
	srv := NewHost(loopback, 1)
	cli := NewHost(loopback, 2)
	defer srv.Close()
	defer cli.Close()

	var mu sync.Mutex
	closed := false
	l, err := srv.Listen(0, wire.ServerSpace, func(c transport.Conn) {
		c.SetHooks(transport.ConnHooks{
			OnClose: func(err error) {
				mu.Lock()
				closed = true
				mu.Unlock()
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	cli.Dial(l.Addr(), wire.ServerSpace, func(c transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.Close()
	})
	waitFor(t, "close notification", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return closed
	})
}

func TestLiveTimer(t *testing.T) {
	h := NewHost(loopback, 1)
	defer h.Close()
	var mu sync.Mutex
	fired := false
	h.After(20*time.Millisecond, func() {
		mu.Lock()
		fired = true
		mu.Unlock()
	})
	waitFor(t, "timer", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return fired
	})

	stopped := h.After(time.Hour, func() { t.Error("stopped timer fired") })
	if !stopped.Stop() {
		t.Error("Stop returned false for pending timer")
	}
}

func TestLiveHostCloseIdempotent(t *testing.T) {
	h := NewHost(loopback, 1)
	h.Close()
	h.Close() // second close must not hang or panic
	h.Post(func() { t.Error("post after close ran") })
	time.Sleep(20 * time.Millisecond)
}

func TestLiveExecutorSerializes(t *testing.T) {
	h := NewHost(loopback, 1)
	defer h.Close()
	var mu sync.Mutex
	counter := 0
	max := 0
	done := make(chan struct{})
	const n = 100
	for i := 0; i < n; i++ {
		last := i == n-1
		h.Post(func() {
			mu.Lock()
			counter++
			if counter > max {
				max = counter
			}
			mu.Unlock()
			// If two posts ran concurrently, counter could exceed 1 here.
			mu.Lock()
			counter--
			mu.Unlock()
			if last {
				close(done)
			}
		})
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("executor stalled")
	}
	if max != 1 {
		t.Errorf("executor ran %d callbacks concurrently", max)
	}
}
