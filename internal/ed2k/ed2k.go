// Package ed2k implements the eDonkey2000 identifier model: file and user
// hashes (MD4-based), the high/low clientID rules, part/block geometry used
// by the transfer protocol, and ed2k:// link formatting.
//
// The conventions follow the eMule protocol specification (Kulbak &
// Bickson, 2005), which the reproduced paper cites as reference [6].
package ed2k

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/md4"
)

// PartSize is the size of one eDonkey part: every shared file is divided
// into parts of this many bytes, each hashed independently with MD4.
const PartSize = 9728000

// BlockSize is the transfer block granularity: REQUEST-PART messages ask
// for ranges that clients conventionally chop into blocks of this size.
const BlockSize = 184320

// LowIDThreshold separates low clientIDs from high ones: IDs strictly
// below it are "low" (peer not directly reachable), IDs at or above it
// encode the peer's IPv4 address.
const LowIDThreshold = 0x1000000 // 2^24

// Hash is a 16-byte MD4 digest identifying a file or a user.
type Hash [md4.Size]byte

// Zero reports whether h is the all-zero hash.
func (h Hash) Zero() bool { return h == Hash{} }

// String returns the conventional upper-case hex form.
func (h Hash) String() string { return strings.ToUpper(hex.EncodeToString(h[:])) }

// ParseHash parses a 32-character hex string into a Hash.
func ParseHash(s string) (Hash, error) {
	var h Hash
	if len(s) != 2*md4.Size {
		return h, fmt.Errorf("ed2k: hash %q: want %d hex chars, got %d", s, 2*md4.Size, len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("ed2k: hash %q: %w", s, err)
	}
	copy(h[:], b)
	return h, nil
}

// NumParts returns the number of PartSize parts covering size bytes.
// A zero-length file still occupies one (empty) part.
func NumParts(size int64) int {
	if size <= 0 {
		return 1
	}
	return int((size + PartSize - 1) / PartSize)
}

// NumBlocks returns the number of BlockSize blocks covering size bytes.
func NumBlocks(size int64) int {
	if size <= 0 {
		return 0
	}
	return int((size + BlockSize - 1) / BlockSize)
}

// PartRange returns the byte range [start, end) of part i of a file of the
// given size.
func PartRange(size int64, i int) (start, end int64) {
	start = int64(i) * PartSize
	end = start + PartSize
	if end > size {
		end = size
	}
	if start > size {
		start = size
	}
	return start, end
}

// HashReader computes the ed2k file hash of the stream r, which must
// deliver exactly size bytes. The ed2k method is:
//
//   - files of at most one part: hash = MD4(content);
//   - larger files: hash = MD4(MD4(part1) || MD4(part2) || ...).
//
// It also returns the individual part hashes (the "hashset").
func HashReader(r io.Reader, size int64) (Hash, []Hash, error) {
	n := NumParts(size)
	parts := make([]Hash, 0, n)
	var remaining = size
	buf := make([]byte, 256<<10)
	for i := 0; i < n; i++ {
		h := md4.New()
		partLen := int64(PartSize)
		if remaining < partLen {
			partLen = remaining
		}
		if _, err := io.CopyBuffer(h, io.LimitReader(r, partLen), buf); err != nil {
			return Hash{}, nil, fmt.Errorf("ed2k: hashing part %d: %w", i, err)
		}
		var ph Hash
		copy(ph[:], h.Sum(nil))
		parts = append(parts, ph)
		remaining -= partLen
	}
	if n == 1 {
		return parts[0], parts, nil
	}
	root := md4.New()
	for _, ph := range parts {
		root.Write(ph[:])
	}
	var fh Hash
	copy(fh[:], root.Sum(nil))
	return fh, parts, nil
}

// HashBytes computes the ed2k file hash of in-memory content.
func HashBytes(data []byte) (Hash, []Hash) {
	h, parts, err := HashReader(strings.NewReader(string(data)), int64(len(data)))
	if err != nil {
		// strings.Reader cannot fail.
		panic("ed2k: " + err.Error())
	}
	return h, parts
}

// SyntheticHash derives a stable pseudo file hash from a seed string. The
// reproduction uses it to mint identifiers for simulated catalog files
// whose contents are never materialized (the paper advertised fake files
// with arbitrary hashes in exactly the same way).
func SyntheticHash(seed string) Hash {
	var h Hash
	s := md4.Sum([]byte("repro/ed2k/synthetic:" + seed))
	copy(h[:], s[:])
	return h
}

// NewUserHash derives the stable cross-session user hash for a client from
// a seed. Real eDonkey clients generate theirs randomly at install time;
// determinism matters more here. Bytes 5 and 14 carry the conventional
// eMule marker values so the hash is recognizable in logs.
func NewUserHash(seed string) Hash {
	h := SyntheticHash("user:" + seed)
	h[5] = 14
	h[14] = 111
	return h
}

// ClientID is the session identifier a server assigns to a connected
// client: the client's IPv4 address interpreted as a little-endian uint32
// if the client is directly reachable (a "high ID"), or a number below
// LowIDThreshold otherwise.
type ClientID uint32

// Low reports whether the ID is a low ID.
func (id ClientID) Low() bool { return uint32(id) < LowIDThreshold }

// HighIDFor returns the high clientID encoding the IPv4 address.
func HighIDFor(addr netip.Addr) (ClientID, error) {
	if !addr.Is4() {
		return 0, fmt.Errorf("ed2k: high ID requires IPv4, got %v", addr)
	}
	b := addr.As4()
	return ClientID(binary.LittleEndian.Uint32(b[:])), nil
}

// Addr recovers the IPv4 address encoded in a high ID. It returns an
// error for low IDs, which encode no address.
func (id ClientID) Addr() (netip.Addr, error) {
	if id.Low() {
		return netip.Addr{}, fmt.Errorf("ed2k: clientID %d is a low ID, no address", id)
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(id))
	return netip.AddrFrom4(b), nil
}

// String renders the ID with its high/low classification.
func (id ClientID) String() string {
	if id.Low() {
		return fmt.Sprintf("low:%d", uint32(id))
	}
	a, _ := id.Addr()
	return fmt.Sprintf("high:%s", a)
}

// Link is a parsed ed2k://|file|...|/ link.
type Link struct {
	Name string
	Size int64
	Hash Hash
}

// String renders the canonical ed2k file link.
func (l Link) String() string {
	return fmt.Sprintf("ed2k://|file|%s|%d|%s|/", url.PathEscape(l.Name), l.Size, l.Hash)
}

// ErrBadLink reports a malformed ed2k link.
var ErrBadLink = errors.New("ed2k: malformed link")

// ParseLink parses an ed2k://|file|name|size|hash|/ link.
func ParseLink(s string) (Link, error) {
	const prefix = "ed2k://|file|"
	if !strings.HasPrefix(s, prefix) {
		return Link{}, fmt.Errorf("%w: missing %q prefix in %q", ErrBadLink, prefix, s)
	}
	rest := strings.TrimPrefix(s, prefix)
	rest = strings.TrimSuffix(rest, "/")
	rest = strings.TrimSuffix(rest, "|")
	fields := strings.Split(rest, "|")
	if len(fields) < 3 {
		return Link{}, fmt.Errorf("%w: want name|size|hash, got %q", ErrBadLink, s)
	}
	name, err := url.PathUnescape(fields[0])
	if err != nil {
		return Link{}, fmt.Errorf("%w: bad name escaping: %v", ErrBadLink, err)
	}
	size, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || size < 0 {
		return Link{}, fmt.Errorf("%w: bad size %q", ErrBadLink, fields[1])
	}
	h, err := ParseHash(fields[2])
	if err != nil {
		return Link{}, fmt.Errorf("%w: %v", ErrBadLink, err)
	}
	return Link{Name: name, Size: size, Hash: h}, nil
}
