package ed2k

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/md4"
)

func TestNumParts(t *testing.T) {
	cases := []struct {
		size int64
		want int
	}{
		{0, 1},
		{1, 1},
		{PartSize - 1, 1},
		{PartSize, 1},
		{PartSize + 1, 2},
		{2 * PartSize, 2},
		{10*PartSize + 5, 11},
	}
	for _, c := range cases {
		if got := NumParts(c.size); got != c.want {
			t.Errorf("NumParts(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestNumBlocks(t *testing.T) {
	if got := NumBlocks(0); got != 0 {
		t.Errorf("NumBlocks(0) = %d, want 0", got)
	}
	if got := NumBlocks(1); got != 1 {
		t.Errorf("NumBlocks(1) = %d, want 1", got)
	}
	if got := NumBlocks(BlockSize); got != 1 {
		t.Errorf("NumBlocks(BlockSize) = %d, want 1", got)
	}
	if got := NumBlocks(BlockSize + 1); got != 2 {
		t.Errorf("NumBlocks(BlockSize+1) = %d, want 2", got)
	}
}

func TestPartRange(t *testing.T) {
	size := int64(PartSize + 100)
	s, e := PartRange(size, 0)
	if s != 0 || e != PartSize {
		t.Errorf("part 0 = [%d,%d)", s, e)
	}
	s, e = PartRange(size, 1)
	if s != PartSize || e != size {
		t.Errorf("part 1 = [%d,%d), want [%d,%d)", s, e, PartSize, size)
	}
}

func TestHashSmallFileIsPlainMD4(t *testing.T) {
	data := []byte("hello edonkey")
	got, parts := HashBytes(data)
	want := md4.Sum(data)
	if !bytes.Equal(got[:], want[:]) {
		t.Errorf("single-part hash = %v, want plain MD4 %x", got, want)
	}
	if len(parts) != 1 || parts[0] != got {
		t.Errorf("hashset for small file should be [hash], got %v", parts)
	}
}

func TestHashMultiPartIsHashOfHashes(t *testing.T) {
	// Two-part file: 1 full part + 1 byte.
	data := make([]byte, PartSize+1)
	for i := range data {
		data[i] = byte(i)
	}
	got, parts := HashBytes(data)
	if len(parts) != 2 {
		t.Fatalf("want 2 part hashes, got %d", len(parts))
	}
	p0 := md4.Sum(data[:PartSize])
	p1 := md4.Sum(data[PartSize:])
	if !bytes.Equal(parts[0][:], p0[:]) || !bytes.Equal(parts[1][:], p1[:]) {
		t.Fatal("part hashes are not the MD4 of the corresponding ranges")
	}
	root := md4.New()
	root.Write(p0[:])
	root.Write(p1[:])
	if !bytes.Equal(got[:], root.Sum(nil)) {
		t.Error("file hash is not MD4 of concatenated part hashes")
	}
}

func TestHashReaderSizeMismatchDetectedByReader(t *testing.T) {
	// Reader shorter than declared size: CopyBuffer just copies less; the
	// hash is still computed deterministically. Verify no error and stable
	// output (the caller owns size validation).
	h1, _, err := HashReader(strings.NewReader("abc"), 3)
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := HashBytes([]byte("abc"))
	if h1 != h2 {
		t.Error("HashReader and HashBytes disagree")
	}
}

func TestSyntheticHashStable(t *testing.T) {
	a := SyntheticHash("file-1")
	b := SyntheticHash("file-1")
	c := SyntheticHash("file-2")
	if a != b {
		t.Error("SyntheticHash not deterministic")
	}
	if a == c {
		t.Error("SyntheticHash collides on distinct seeds")
	}
	if a.Zero() {
		t.Error("SyntheticHash produced zero hash")
	}
}

func TestNewUserHashMarkers(t *testing.T) {
	h := NewUserHash("peer-42")
	if h[5] != 14 || h[14] != 111 {
		t.Errorf("user hash markers missing: %v", h)
	}
	if h != NewUserHash("peer-42") {
		t.Error("user hash not deterministic")
	}
}

func TestParseHashRoundTrip(t *testing.T) {
	h := SyntheticHash("x")
	got, err := ParseHash(h.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip: got %v want %v", got, h)
	}
}

func TestParseHashErrors(t *testing.T) {
	if _, err := ParseHash("short"); err == nil {
		t.Error("want error for short hash")
	}
	if _, err := ParseHash(strings.Repeat("zz", 16)); err == nil {
		t.Error("want error for non-hex hash")
	}
}

func TestClientIDHighLow(t *testing.T) {
	addr := netip.MustParseAddr("192.0.2.17")
	id, err := HighIDFor(addr)
	if err != nil {
		t.Fatal(err)
	}
	if id.Low() {
		t.Errorf("high ID for %v classified low (%d)", addr, id)
	}
	back, err := id.Addr()
	if err != nil {
		t.Fatal(err)
	}
	if back != addr {
		t.Errorf("Addr() = %v, want %v", back, addr)
	}

	low := ClientID(12345)
	if !low.Low() {
		t.Error("12345 should be a low ID")
	}
	if _, err := low.Addr(); err == nil {
		t.Error("low ID should not decode to an address")
	}
	if !strings.HasPrefix(low.String(), "low:") {
		t.Errorf("low ID string = %q", low)
	}
	if !strings.HasPrefix(id.String(), "high:") {
		t.Errorf("high ID string = %q", id)
	}
}

func TestHighIDForRejectsIPv6(t *testing.T) {
	if _, err := HighIDFor(netip.MustParseAddr("2001:db8::1")); err == nil {
		t.Error("want error for IPv6 address")
	}
}

func TestLowIDThresholdBoundary(t *testing.T) {
	if !ClientID(LowIDThreshold - 1).Low() {
		t.Error("threshold-1 must be low")
	}
	if ClientID(LowIDThreshold).Low() {
		t.Error("threshold must be high")
	}
}

// Property: every IPv4 address round-trips through the high-ID encoding.
func TestQuickClientIDRoundTrip(t *testing.T) {
	f := func(a, b, c, d byte) bool {
		addr := netip.AddrFrom4([4]byte{a, b, c, d})
		id, err := HighIDFor(addr)
		if err != nil {
			return false
		}
		if id.Low() {
			// Addresses whose encoding lands below 2^24 exist (x.0.0.0
			// little-endian = small numbers); the real network treats
			// them as unusable. Accept the classification.
			return uint32(id) < LowIDThreshold
		}
		back, err := id.Addr()
		return err == nil && back == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinkRoundTrip(t *testing.T) {
	l := Link{Name: "some movie (2008).avi", Size: 733421568, Hash: SyntheticHash("movie")}
	parsed, err := ParseLink(l.String())
	if err != nil {
		t.Fatalf("ParseLink(%q): %v", l.String(), err)
	}
	if parsed != l {
		t.Errorf("round trip: got %+v want %+v", parsed, l)
	}
}

func TestLinkEscapesPipes(t *testing.T) {
	l := Link{Name: "weird|name", Size: 5, Hash: SyntheticHash("p")}
	parsed, err := ParseLink(l.String())
	if err != nil {
		t.Fatalf("ParseLink: %v", err)
	}
	if parsed.Name != l.Name {
		t.Errorf("name round trip: got %q want %q", parsed.Name, l.Name)
	}
}

func TestParseLinkErrors(t *testing.T) {
	bad := []string{
		"",
		"http://example.com",
		"ed2k://|file|name|/",
		"ed2k://|file|name|-3|00000000000000000000000000000000|/",
		"ed2k://|file|name|12|nothex|/",
	}
	for _, s := range bad {
		if _, err := ParseLink(s); err == nil {
			t.Errorf("ParseLink(%q): want error", s)
		}
	}
}

// Property: links with arbitrary printable names round-trip.
func TestQuickLinkRoundTrip(t *testing.T) {
	f := func(name string, size uint32) bool {
		if strings.ContainsAny(name, "\x00") {
			return true
		}
		l := Link{Name: name, Size: int64(size), Hash: SyntheticHash(name)}
		parsed, err := ParseLink(l.String())
		return err == nil && parsed == l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHashOnePart(b *testing.B) {
	data := make([]byte, PartSize)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashBytes(data)
	}
}
