package intern

import "testing"

func TestTableDenseFirstSeenOrder(t *testing.T) {
	tab := NewTable[[2]byte]()
	a, b := [2]byte{1}, [2]byte{2}
	if tab.ID(a) != 0 || tab.ID(b) != 1 || tab.ID(a) != 0 {
		t.Error("IDs not dense in first-seen order")
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d", tab.Len())
	}
	if tab.Value(1) != b {
		t.Errorf("Value(1) = %v", tab.Value(1))
	}
	if _, ok := tab.Lookup([2]byte{3}); ok {
		t.Error("Lookup invented an ID")
	}
	if id, ok := tab.Lookup(b); !ok || id != 1 {
		t.Errorf("Lookup(b) = %d, %v", id, ok)
	}
}

func TestStringsIDBytes(t *testing.T) {
	s := NewStrings()
	if s.IDBytes([]byte("hp-00")) != 0 || s.ID("hp-01") != 1 {
		t.Error("IDs not dense")
	}
	if s.IDBytes([]byte("hp-00")) != 0 || s.ID("hp-00") != 0 {
		t.Error("bytes and string forms must share IDs")
	}
	if s.Value(1) != "hp-01" || s.Len() != 2 {
		t.Errorf("table state: %v", s.Values())
	}
	// A re-probe of a known value must not allocate.
	b := []byte("hp-01")
	allocs := testing.AllocsPerRun(100, func() { s.IDBytes(b) })
	if allocs != 0 {
		t.Errorf("IDBytes allocated %.1f per known-value probe", allocs)
	}
}

func TestPoolReusesAllocations(t *testing.T) {
	p := NewPool()
	a := p.Get([]byte("server-a"))
	b := p.Get([]byte("server-a"))
	if a != b || a != "server-a" {
		t.Errorf("Get: %q vs %q", a, b)
	}
	if p.Get(nil) != "" || p.Get([]byte{}) != "" {
		t.Error("empty input must return \"\"")
	}
	if p.Len() != 1 {
		t.Errorf("Len = %d", p.Len())
	}
	buf := []byte("server-a")
	allocs := testing.AllocsPerRun(100, func() { p.Get(buf) })
	if allocs != 0 {
		t.Errorf("Get allocated %.1f per known-value call", allocs)
	}
}
