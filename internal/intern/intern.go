// Package intern provides the symbol tables behind the columnar analysis
// engine: dense-ID interning for recurring values (peer identifiers,
// honeypot names, file hashes) and a byte-slice-to-string pool that lets
// decoders reuse one string per distinct value instead of allocating one
// per record.
//
// A campaign log mentions each honeypot name millions of times and each
// peer identifier dozens of times; interning once turns every later
// occurrence into an integer, and every per-record map lookup in the
// analysis layer into an array index.
package intern

// Table assigns dense uint32 IDs (0, 1, 2, ...) to distinct comparable
// keys in first-seen order. The zero Table is not ready; use NewTable.
type Table[K comparable] struct {
	ids  map[K]uint32
	vals []K
}

// NewTable returns an empty table.
func NewTable[K comparable]() *Table[K] {
	return &Table[K]{ids: make(map[K]uint32)}
}

// ID returns k's dense ID, assigning the next free one on first sight.
func (t *Table[K]) ID(k K) uint32 {
	if id, ok := t.ids[k]; ok {
		return id
	}
	id := uint32(len(t.vals))
	t.ids[k] = id
	t.vals = append(t.vals, k)
	return id
}

// Lookup returns k's ID without assigning one.
func (t *Table[K]) Lookup(k K) (uint32, bool) {
	id, ok := t.ids[k]
	return id, ok
}

// Len returns the number of distinct keys interned so far.
func (t *Table[K]) Len() int { return len(t.vals) }

// Value returns the key with the given ID.
func (t *Table[K]) Value(id uint32) K { return t.vals[id] }

// Values returns the interned keys indexed by ID. The slice is the
// table's backing store: read-only for callers.
func (t *Table[K]) Values() []K { return t.vals }

// Strings is a Table[string] that can also intern directly from byte
// slices without allocating for already-seen values.
type Strings struct {
	Table[string]
}

// NewStrings returns an empty string table.
func NewStrings() *Strings {
	return &Strings{Table[string]{ids: make(map[string]uint32)}}
}

// IDBytes is ID for a transient byte slice: the map probe does not
// allocate, and the bytes are copied into a string only on first sight.
func (t *Strings) IDBytes(b []byte) uint32 {
	if id, ok := t.ids[string(b)]; ok {
		return id
	}
	s := string(b)
	id := uint32(len(t.vals))
	t.ids[s] = id
	t.vals = append(t.vals, s)
	return id
}

// Pool deduplicates strings decoded from transient byte buffers: Get
// returns the previously-interned string when the bytes were seen
// before, allocating only on first sight. It is the decode-side
// companion of Strings for low-cardinality columns (honeypot names,
// server addresses, client names) where the caller wants strings, not
// IDs.
type Pool struct {
	m map[string]string
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{m: make(map[string]string)} }

// Get returns a string equal to b, reusing the allocation made the
// first time these bytes were seen. Empty input returns "" without a
// map probe.
func (p *Pool) Get(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := p.m[string(b)]; ok {
		return s
	}
	s := string(b)
	p.m[s] = s
	return s
}

// Len returns the number of distinct strings pooled so far.
func (p *Pool) Len() int { return len(p.m) }
