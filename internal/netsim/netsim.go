// Package netsim implements transport.Host over a discrete-event
// simulation: an in-memory network of virtual hosts exchanging eDonkey
// messages with modeled latency, under the virtual clock of a des.Loop.
//
// It substitutes for the paper's PlanetLab deployment and the live
// Internet: month-long measurement campaigns execute in seconds, fully
// deterministically, while running the exact same actor code as the real
// TCP path (package livenet).
package netsim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/des"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Config tunes the network model.
type Config struct {
	// BaseLatency is the one-way delay floor between any two hosts.
	BaseLatency time.Duration
	// JitterLatency bounds the additional random per-connection delay.
	JitterLatency time.Duration
	// Reencode forces every message through the wire codec on delivery
	// (marshal then unmarshal). Slower, but verifies that everything the
	// actors exchange is representable on the real wire. Tests use it.
	Reencode bool
	// LossRate drops each message with this probability (0 disables).
	// Connection control events (dial, close) are not lost.
	LossRate float64
}

// DefaultConfig returns the model used by the campaigns: ~40ms one-way
// with up to 60ms jitter, no loss, no re-encoding.
func DefaultConfig() Config {
	return Config{BaseLatency: 40 * time.Millisecond, JitterLatency: 60 * time.Millisecond}
}

// Network is a set of simulated hosts sharing one event loop.
type Network struct {
	loop  *des.Loop
	cfg   Config
	hosts map[netip.Addr]*Host
	rng   *rand.Rand
	next  uint32 // address allocator within 10.0.0.0/8
}

// New creates an empty network on the given loop.
func New(loop *des.Loop, cfg Config) *Network {
	return &Network{
		loop:  loop,
		cfg:   cfg,
		hosts: make(map[netip.Addr]*Host),
		rng:   loop.NewRand("netsim"),
		next:  1,
	}
}

// Loop returns the underlying event loop.
func (n *Network) Loop() *des.Loop { return n.loop }

// NewHost creates a host with a fresh 10.x.y.z address. The label seeds
// the host's private random stream.
func (n *Network) NewHost(label string) *Host {
	for {
		v := n.next
		n.next++
		addr := netip.AddrFrom4([4]byte{10, byte(v >> 16), byte(v >> 8), byte(v)})
		if _, taken := n.hosts[addr]; taken {
			continue
		}
		return n.addHost(label, addr)
	}
}

// NewHostWithAddr creates a host with a specific address, e.g. to model a
// well-known server. It panics if the address is taken.
func (n *Network) NewHostWithAddr(label string, addr netip.Addr) *Host {
	if _, taken := n.hosts[addr]; taken {
		panic(fmt.Sprintf("netsim: address %v already in use", addr))
	}
	return n.addHost(label, addr)
}

func (n *Network) addHost(label string, addr netip.Addr) *Host {
	h := &Host{
		net:       n,
		addr:      addr,
		up:        true,
		rng:       n.loop.NewRand("host/" + label + "/" + addr.String()),
		listeners: make(map[uint16]*listener),
		conns:     make(map[*conn]struct{}),
		nextPort:  50000,
	}
	n.hosts[addr] = h
	return h
}

// HostAt returns the host bound to addr, if any.
func (n *Network) HostAt(addr netip.Addr) (*Host, bool) {
	h, ok := n.hosts[addr]
	return h, ok
}

// RemoveHost forgets a (typically crashed) host, releasing its address
// and state. Long campaigns spawn hundreds of thousands of short-lived
// peers; removing them keeps memory bounded.
func (n *Network) RemoveHost(addr netip.Addr) {
	if h, ok := n.hosts[addr]; ok {
		h.Crash()
		delete(n.hosts, addr)
	}
}

// NumHosts returns the number of live hosts.
func (n *Network) NumHosts() int { return len(n.hosts) }

// connLatency samples the fixed one-way latency for a new connection.
func (n *Network) connLatency() time.Duration {
	d := n.cfg.BaseLatency
	if n.cfg.JitterLatency > 0 {
		d += time.Duration(n.rng.Int63n(int64(n.cfg.JitterLatency)))
	}
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}

// Host is one simulated node.
type Host struct {
	net       *Network
	addr      netip.Addr
	up        bool
	linkDown  bool // uplink severed (host alive, unreachable)
	rng       *rand.Rand
	listeners map[uint16]*listener
	conns     map[*conn]struct{}
	nextPort  uint16
}

var _ transport.Host = (*Host)(nil)

// Addr implements transport.Host.
func (h *Host) Addr() netip.Addr { return h.addr }

// Now implements transport.Host.
func (h *Host) Now() time.Time { return h.net.loop.Now() }

// Rand implements transport.Host.
func (h *Host) Rand() *rand.Rand { return h.rng }

// Up reports whether the host is running.
func (h *Host) Up() bool { return h.up }

// LinkDown reports whether the host's uplink is severed.
func (h *Host) LinkDown() bool { return h.linkDown }

// SetLinkDown severs (or restores) the host's uplink without touching
// the process: established connections die — both sides observe a
// failure — but listeners, timers and all host state survive, and on
// restore new dials go through again. This models a flapping network
// link, where Crash models a dying machine.
func (h *Host) SetLinkDown(down bool) {
	if h.linkDown == down {
		return
	}
	h.linkDown = down
	if !down {
		return
	}
	for c := range h.conns {
		c.closed = true
		local, peer, lat := c, c.peer, c.latency
		// The far side sees the break after one latency; the local side
		// notices on its next tick (its TCP stack reports the reset).
		h.net.loop.After(lat, func() {
			peer.remoteClosed(transport.ErrHostDown)
		})
		h.net.loop.After(0, func() {
			if local.hooks.OnClose != nil {
				local.hooks.OnClose(transport.ErrHostDown)
			}
		})
	}
	h.conns = make(map[*conn]struct{})
}

type simTimer struct{ ev des.Timer }

func (t simTimer) Stop() bool {
	if t.ev.Canceled() {
		return false
	}
	t.ev.Cancel()
	return true
}

// After implements transport.Host.
func (h *Host) After(d time.Duration, fn func()) transport.Timer {
	ev := h.net.loop.After(d, func() {
		if h.up {
			fn()
		}
	})
	return simTimer{ev: ev}
}

// Post implements transport.Host.
func (h *Host) Post(fn func()) {
	h.net.loop.After(0, func() {
		if h.up {
			fn()
		}
	})
}

type listener struct {
	host   *Host
	port   uint16
	space  wire.Space
	accept func(transport.Conn)
	closed bool
}

func (l *listener) Close() { l.closed = true; delete(l.host.listeners, l.port) }

func (l *listener) Addr() netip.AddrPort { return netip.AddrPortFrom(l.host.addr, l.port) }

// Listen implements transport.Host.
func (h *Host) Listen(port uint16, space wire.Space, accept func(transport.Conn)) (transport.Listener, error) {
	if !h.up {
		return nil, transport.ErrHostDown
	}
	if _, taken := h.listeners[port]; taken {
		return nil, fmt.Errorf("netsim: port %d already bound on %v", port, h.addr)
	}
	l := &listener{host: h, port: port, space: space, accept: accept}
	h.listeners[port] = l
	return l, nil
}

func (h *Host) ephemeralPort() uint16 {
	p := h.nextPort
	h.nextPort++
	if h.nextPort < 50000 {
		h.nextPort = 50000
	}
	return p
}

// Dial implements transport.Host.
func (h *Host) Dial(remote netip.AddrPort, space wire.Space, done func(transport.Conn, error)) {
	if !h.up {
		return
	}
	lat := h.net.connLatency()
	localPort := h.ephemeralPort()
	if h.linkDown {
		h.net.loop.After(lat, func() {
			if h.up {
				done(nil, transport.ErrHostDown)
			}
		})
		return
	}
	h.net.loop.After(lat, func() {
		target, ok := h.net.hosts[remote.Addr()]
		if !ok || !target.up || target.linkDown {
			h.net.loop.After(lat, func() {
				if h.up {
					done(nil, transport.ErrHostDown)
				}
			})
			return
		}
		l, ok := target.listeners[remote.Port()]
		if !ok || l.closed {
			h.net.loop.After(lat, func() {
				if h.up {
					done(nil, transport.ErrConnRefused)
				}
			})
			return
		}
		// Establish the pair: the accept side fires now, the dialer side
		// one latency later (its SYN-ACK).
		local := netip.AddrPortFrom(h.addr, localPort)
		a := &conn{host: h, latency: lat, local: local, remote: remote, space: space}
		b := &conn{host: target, latency: lat, local: remote, remote: local, space: l.space}
		a.peer, b.peer = b, a
		h.conns[a] = struct{}{}
		target.conns[b] = struct{}{}
		l.accept(b)
		h.net.loop.After(lat, func() {
			if h.up {
				done(a, nil)
			}
		})
	})
}

// Crash takes the host down abruptly: every connection dies (peers observe
// an error after one latency), listeners are dropped, timers are muted.
func (h *Host) Crash() {
	if !h.up {
		return
	}
	h.up = false
	for c := range h.conns {
		c.closed = true
		peer := c.peer
		lat := c.latency
		h.net.loop.After(lat, func() {
			peer.remoteClosed(transport.ErrHostDown)
		})
	}
	h.conns = make(map[*conn]struct{})
	h.listeners = make(map[uint16]*listener)
}

// Restart brings a crashed host back up with no listeners or connections
// (and its uplink restored).
func (h *Host) Restart() { h.up = true; h.linkDown = false }

type conn struct {
	host     *Host
	peer     *conn
	latency  time.Duration
	space    wire.Space
	hooks    transport.ConnHooks
	hooksSet bool
	buffered []wire.Message
	closed   bool
	local    netip.AddrPort
	remote   netip.AddrPort
}

var _ transport.Conn = (*conn)(nil)

func (c *conn) LocalAddr() netip.AddrPort  { return c.local }
func (c *conn) RemoteAddr() netip.AddrPort { return c.remote }

// SetHooks implements transport.Conn.
func (c *conn) SetHooks(h transport.ConnHooks) {
	c.hooks = h
	c.hooksSet = true
	for _, m := range c.buffered {
		c.deliver(m)
	}
	c.buffered = nil
}

func (c *conn) deliver(m wire.Message) {
	if c.hooks.OnMessage != nil {
		c.hooks.OnMessage(m)
	}
}

// Send implements transport.Conn.
func (c *conn) Send(m wire.Message) {
	if c.closed || !c.host.up {
		return
	}
	net := c.host.net
	if net.cfg.LossRate > 0 && net.rng.Float64() < net.cfg.LossRate {
		return
	}
	if net.cfg.Reencode {
		frame := wire.AppendFrame(nil, m)
		decoded, err := wire.Unmarshal(c.peer.space, wire.Opcode(frame[5]), frame[6:])
		if err != nil {
			panic(fmt.Sprintf("netsim: message %T does not survive the wire: %v", m, err))
		}
		m = decoded
	}
	peer := c.peer
	net.loop.After(c.latency, func() {
		if peer.closed || !peer.host.up {
			return
		}
		if !peer.hooksSet {
			peer.buffered = append(peer.buffered, m)
			return
		}
		peer.deliver(m)
	})
}

// Close implements transport.Conn.
func (c *conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	delete(c.host.conns, c)
	peer := c.peer
	c.host.net.loop.After(c.latency, func() {
		peer.remoteClosed(nil)
	})
}

// remoteClosed handles the peer's FIN or failure.
func (c *conn) remoteClosed(err error) {
	if c.closed || !c.host.up {
		return
	}
	c.closed = true
	delete(c.host.conns, c)
	if c.hooks.OnClose != nil {
		c.hooks.OnClose(err)
	}
}
