package netsim

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/ed2k"
	"repro/internal/transport"
	"repro/internal/wire"
)

// netipAddrPortFrom is shorthand for building a host:port target.
func netipAddrPortFrom(a netip.Addr, port uint16) netip.AddrPort {
	return netip.AddrPortFrom(a, port)
}

var t0 = time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)

func newNet(t *testing.T, cfg Config) (*des.Loop, *Network) {
	t.Helper()
	loop := des.NewLoop(t0, 1234)
	return loop, New(loop, cfg)
}

func TestDialAndExchange(t *testing.T) {
	loop, nw := newNet(t, DefaultConfig())
	srv := nw.NewHost("server")
	cli := nw.NewHost("client")

	var serverGot []wire.Message
	_, err := srv.Listen(4661, wire.ServerSpace, func(c transport.Conn) {
		c.SetHooks(transport.ConnHooks{
			OnMessage: func(m wire.Message) {
				serverGot = append(serverGot, m)
				c.Send(&wire.IDChange{ClientID: 99})
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}

	var clientGot []wire.Message
	cli.Dial(netipAddrPortFrom(srv.Addr(), 4661), wire.ServerSpace, func(c transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.SetHooks(transport.ConnHooks{
			OnMessage: func(m wire.Message) { clientGot = append(clientGot, m) },
		})
		c.Send(&wire.LoginRequest{UserHash: ed2k.NewUserHash("u"), Port: 4662})
	})
	loop.Run()

	if len(serverGot) != 1 {
		t.Fatalf("server got %d messages", len(serverGot))
	}
	if _, ok := serverGot[0].(*wire.LoginRequest); !ok {
		t.Errorf("server got %T", serverGot[0])
	}
	if len(clientGot) != 1 {
		t.Fatalf("client got %d messages", len(clientGot))
	}
	if id, ok := clientGot[0].(*wire.IDChange); !ok || id.ClientID != 99 {
		t.Errorf("client got %#v", clientGot[0])
	}
}

func TestDialRefusedAndHostDown(t *testing.T) {
	loop, nw := newNet(t, DefaultConfig())
	a := nw.NewHost("a")
	b := nw.NewHost("b")

	var refusedErr, downErr error
	a.Dial(netipAddrPortFrom(b.Addr(), 4661), wire.ServerSpace, func(c transport.Conn, err error) {
		refusedErr = err
	})
	loop.Run() // b is up but has no listener: refused
	b.Crash()
	a.Dial(netipAddrPortFrom(b.Addr(), 4661), wire.ServerSpace, func(c transport.Conn, err error) {
		downErr = err
	})
	loop.Run()

	if !errors.Is(refusedErr, transport.ErrConnRefused) {
		t.Errorf("refused dial: %v", refusedErr)
	}
	if !errors.Is(downErr, transport.ErrHostDown) {
		t.Errorf("down dial: %v", downErr)
	}
}

func TestMessagesArriveInOrder(t *testing.T) {
	loop, nw := newNet(t, DefaultConfig())
	srv := nw.NewHost("server")
	cli := nw.NewHost("client")

	var got []uint32
	srv.Listen(4661, wire.ServerSpace, func(c transport.Conn) {
		c.SetHooks(transport.ConnHooks{
			OnMessage: func(m wire.Message) {
				got = append(got, m.(*wire.IDChange).ClientID)
			},
		})
	})
	cli.Dial(netipAddrPortFrom(srv.Addr(), 4661), wire.ServerSpace, func(c transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for i := uint32(0); i < 50; i++ {
			c.Send(&wire.IDChange{ClientID: i})
		}
	})
	loop.Run()
	if len(got) != 50 {
		t.Fatalf("got %d messages, want 50", len(got))
	}
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
}

func TestBufferingBeforeHooks(t *testing.T) {
	loop, nw := newNet(t, DefaultConfig())
	srv := nw.NewHost("server")
	cli := nw.NewHost("client")

	var got []wire.Message
	var acceptConn transport.Conn
	srv.Listen(4661, wire.ServerSpace, func(c transport.Conn) {
		acceptConn = c // deliberately do not set hooks yet
	})
	cli.Dial(netipAddrPortFrom(srv.Addr(), 4661), wire.ServerSpace, func(c transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.Send(&wire.GetServerList{})
		c.Send(&wire.GetSources{Hash: ed2k.SyntheticHash("x")})
	})
	loop.Run()
	if acceptConn == nil {
		t.Fatal("no connection accepted")
	}
	acceptConn.SetHooks(transport.ConnHooks{
		OnMessage: func(m wire.Message) { got = append(got, m) },
	})
	if len(got) != 2 {
		t.Fatalf("buffered delivery: got %d messages", len(got))
	}
	if _, ok := got[0].(*wire.GetServerList); !ok {
		t.Errorf("first buffered message %T", got[0])
	}
}

func TestCloseNotifiesPeer(t *testing.T) {
	loop, nw := newNet(t, DefaultConfig())
	srv := nw.NewHost("server")
	cli := nw.NewHost("client")

	closed := false
	var closeErr error = errors.New("sentinel-not-called")
	srv.Listen(4661, wire.ServerSpace, func(c transport.Conn) {
		c.SetHooks(transport.ConnHooks{
			OnClose: func(err error) { closed = true; closeErr = err },
		})
	})
	cli.Dial(netipAddrPortFrom(srv.Addr(), 4661), wire.ServerSpace, func(c transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.Close()
	})
	loop.Run()
	if !closed {
		t.Fatal("peer not notified of close")
	}
	if closeErr != nil {
		t.Errorf("graceful close should deliver nil, got %v", closeErr)
	}
}

func TestCrashKillsConnections(t *testing.T) {
	loop, nw := newNet(t, DefaultConfig())
	srv := nw.NewHost("server")
	cli := nw.NewHost("client")

	var gotErr error
	srv.Listen(4661, wire.ServerSpace, func(c transport.Conn) {
		c.SetHooks(transport.ConnHooks{})
	})
	cli.Dial(netipAddrPortFrom(srv.Addr(), 4661), wire.ServerSpace, func(c transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.SetHooks(transport.ConnHooks{OnClose: func(err error) { gotErr = err }})
		// Crash the server after establishment.
		cli.After(time.Second, func() { srv.Crash() })
	})
	loop.Run()
	if !errors.Is(gotErr, transport.ErrHostDown) {
		t.Errorf("crash notification: %v", gotErr)
	}
	if srv.Up() {
		t.Error("server still up")
	}
	srv.Restart()
	if !srv.Up() {
		t.Error("server not restarted")
	}
}

func TestTimersMutedAfterCrash(t *testing.T) {
	loop, nw := newNet(t, DefaultConfig())
	h := nw.NewHost("h")
	fired := false
	h.After(time.Second, func() { fired = true })
	h.Crash()
	loop.Run()
	if fired {
		t.Error("timer fired on crashed host")
	}
}

func TestTimerStop(t *testing.T) {
	loop, nw := newNet(t, DefaultConfig())
	h := nw.NewHost("h")
	fired := false
	tm := h.After(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Error("first Stop should report true")
	}
	if tm.Stop() {
		t.Error("second Stop should report false")
	}
	loop.Run()
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestReencodeCatchesEverything(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Reencode = true
	loop, nw := newNet(t, cfg)
	srv := nw.NewHost("server")
	cli := nw.NewHost("client")

	var got *wire.FoundSources
	srv.Listen(4661, wire.ServerSpace, func(c transport.Conn) {
		c.SetHooks(transport.ConnHooks{
			OnMessage: func(m wire.Message) {
				c.Send(&wire.FoundSources{
					Hash:    ed2k.SyntheticHash("f"),
					Sources: []wire.Endpoint{{IP: 7, Port: 8}},
				})
			},
		})
	})
	cli.Dial(netipAddrPortFrom(srv.Addr(), 4661), wire.ServerSpace, func(c transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.SetHooks(transport.ConnHooks{
			OnMessage: func(m wire.Message) { got = m.(*wire.FoundSources) },
		})
		c.Send(&wire.GetSources{Hash: ed2k.SyntheticHash("f")})
	})
	loop.Run()
	if got == nil || len(got.Sources) != 1 || got.Sources[0].IP != 7 {
		t.Errorf("reencoded exchange failed: %#v", got)
	}
}

func TestLossRateDropsMessages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossRate = 1.0
	loop, nw := newNet(t, cfg)
	srv := nw.NewHost("server")
	cli := nw.NewHost("client")

	got := 0
	srv.Listen(4661, wire.ServerSpace, func(c transport.Conn) {
		c.SetHooks(transport.ConnHooks{OnMessage: func(wire.Message) { got++ }})
	})
	cli.Dial(netipAddrPortFrom(srv.Addr(), 4661), wire.ServerSpace, func(c transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for i := 0; i < 10; i++ {
			c.Send(&wire.GetServerList{})
		}
	})
	loop.Run()
	if got != 0 {
		t.Errorf("full loss still delivered %d messages", got)
	}
}

func TestAddressAllocationUnique(t *testing.T) {
	_, nw := newNet(t, DefaultConfig())
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		h := nw.NewHost("h")
		s := h.Addr().String()
		if seen[s] {
			t.Fatalf("duplicate address %s", s)
		}
		seen[s] = true
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []uint32 {
		loop := des.NewLoop(t0, 777)
		nw := New(loop, DefaultConfig())
		srv := nw.NewHost("server")
		var order []uint32
		srv.Listen(4661, wire.ServerSpace, func(c transport.Conn) {
			c.SetHooks(transport.ConnHooks{
				OnMessage: func(m wire.Message) {
					order = append(order, m.(*wire.IDChange).ClientID)
				},
			})
		})
		for i := 0; i < 20; i++ {
			cli := nw.NewHost("client")
			id := uint32(i)
			cli.Dial(netipAddrPortFrom(srv.Addr(), 4661), wire.ServerSpace, func(c transport.Conn, err error) {
				if err != nil {
					return
				}
				c.Send(&wire.IDChange{ClientID: id})
			})
		}
		loop.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestListenerClose(t *testing.T) {
	loop, nw := newNet(t, DefaultConfig())
	srv := nw.NewHost("server")
	cli := nw.NewHost("client")
	l, err := srv.Listen(4661, wire.ServerSpace, func(c transport.Conn) {
		t.Error("accept after listener close")
	})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	var dialErr error
	cli.Dial(netipAddrPortFrom(srv.Addr(), 4661), wire.ServerSpace, func(c transport.Conn, err error) {
		dialErr = err
	})
	loop.Run()
	if !errors.Is(dialErr, transport.ErrConnRefused) {
		t.Errorf("dial after close: %v", dialErr)
	}
}

func TestDuplicatePortRejected(t *testing.T) {
	_, nw := newNet(t, DefaultConfig())
	srv := nw.NewHost("server")
	if _, err := srv.Listen(4661, wire.ServerSpace, func(transport.Conn) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen(4661, wire.ServerSpace, func(transport.Conn) {}); err == nil {
		t.Error("duplicate bind should fail")
	}
}

func BenchmarkMessageDelivery(b *testing.B) {
	loop := des.NewLoop(t0, 1)
	nw := New(loop, DefaultConfig())
	srv := nw.NewHost("server")
	cli := nw.NewHost("client")
	count := 0
	srv.Listen(4661, wire.ServerSpace, func(c transport.Conn) {
		c.SetHooks(transport.ConnHooks{OnMessage: func(wire.Message) { count++ }})
	})
	var conn transport.Conn
	cli.Dial(netipAddrPortFrom(srv.Addr(), 4661), wire.ServerSpace, func(c transport.Conn, err error) {
		conn = c
	})
	loop.Run()
	if conn == nil {
		b.Fatal("no connection")
	}
	msg := &wire.GetServerList{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn.Send(msg)
		if i%1024 == 1023 {
			loop.Run()
		}
	}
	loop.Run()
}

func TestLinkFlap(t *testing.T) {
	loop, nw := newNet(t, DefaultConfig())
	srv := nw.NewHost("server")
	cli := nw.NewHost("client")

	var srvClosed, cliClosed error
	srv.Listen(4661, wire.ServerSpace, func(c transport.Conn) {
		c.SetHooks(transport.ConnHooks{OnClose: func(err error) { srvClosed = err }})
	})
	cli.Dial(netipAddrPortFrom(srv.Addr(), 4661), wire.ServerSpace, func(c transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.SetHooks(transport.ConnHooks{OnClose: func(err error) { cliClosed = err }})
		cli.After(time.Second, func() { srv.SetLinkDown(true) })
	})
	loop.Run()

	// Both ends observe the break as a failure, not a graceful close.
	if !errors.Is(srvClosed, transport.ErrHostDown) {
		t.Errorf("server side saw %v, want ErrHostDown", srvClosed)
	}
	if !errors.Is(cliClosed, transport.ErrHostDown) {
		t.Errorf("client side saw %v, want ErrHostDown", cliClosed)
	}
	if !srv.Up() || !srv.LinkDown() {
		t.Fatalf("link-down host: up=%v linkDown=%v, want true/true", srv.Up(), srv.LinkDown())
	}

	// Unreachable in both directions while down.
	var inErr, outErr error = errors.New("not called"), errors.New("not called")
	cli.Dial(netipAddrPortFrom(srv.Addr(), 4661), wire.ServerSpace, func(_ transport.Conn, err error) { inErr = err })
	srv.Dial(netipAddrPortFrom(cli.Addr(), 4661), wire.ServerSpace, func(_ transport.Conn, err error) { outErr = err })
	loop.Run()
	if !errors.Is(inErr, transport.ErrHostDown) {
		t.Errorf("dial toward severed host: %v, want ErrHostDown", inErr)
	}
	if !errors.Is(outErr, transport.ErrHostDown) {
		t.Errorf("dial from severed host: %v, want ErrHostDown", outErr)
	}

	// Restore: the listener survived the flap, dials go through again.
	srv.SetLinkDown(false)
	dialed := false
	cli.Dial(netipAddrPortFrom(srv.Addr(), 4661), wire.ServerSpace, func(c transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial after restore: %v", err)
			return
		}
		dialed = true
	})
	loop.Run()
	if !dialed {
		t.Fatal("no connection after link restore")
	}
}
