package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// get fetches one debug endpoint and returns the body.
func get(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestDebugServerEndpoints boots the debug listener on an ephemeral
// port and checks all three surfaces: /metrics (registry JSON),
// /debug/vars (expvar, including the published registry) and
// /debug/pprof.
func TestDebugServerEndpoints(t *testing.T) {
	r := New()
	r.Counter("test.hits").Add(42)
	r.Gauge("test.depth").Set(-7)

	srv, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	defer srv.Close()
	addr := srv.Addr().String()

	code, body := get(t, addr, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics JSON: %v\n%s", err, body)
	}
	if snap.Counters["test.hits"] != 42 || snap.Gauges["test.depth"] != -7 {
		t.Errorf("/metrics content wrong: %+v", snap)
	}

	code, body = get(t, addr, "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	if !strings.Contains(body, `"metrics"`) || !strings.Contains(body, "test.hits") {
		t.Errorf("/debug/vars does not expose the registry:\n%s", body)
	}

	code, body = get(t, addr, "/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index unexpected:\n%s", body)
	}
}

// TestDebugServerCloseIdempotent pins that a supervisor and a deferred
// cleanup can both Close the listener: later calls return the first
// call's result instead of a double-close error.
func TestDebugServerCloseIdempotent(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestAttach pins the mux-attach mode: a daemon with its own HTTP
// server (cmd/measured) mounts the debug surface on its mux instead of
// opening a second listener, alongside its own routes.
func TestAttach(t *testing.T) {
	r := New()
	r.Counter("attach.hits").Add(9)
	mux := http.NewServeMux()
	mux.HandleFunc("/own-route", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "own")
	})
	Attach(mux, r)

	srv := httptest.NewServer(mux)
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	code, body := get(t, addr, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics JSON: %v\n%s", err, body)
	}
	if snap.Counters["attach.hits"] != 9 {
		t.Errorf("/metrics content wrong: %+v", snap)
	}
	if code, _ := get(t, addr, "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, body := get(t, addr, "/debug/vars"); code != http.StatusOK || !strings.Contains(body, "attach.hits") {
		t.Errorf("/debug/vars status %d, registry exported: %v", code, strings.Contains(body, "attach.hits"))
	}
	if code, body := get(t, addr, "/own-route"); code != http.StatusOK || body != "own" {
		t.Errorf("caller's own route broken: %d %q", code, body)
	}
}

// TestMetricsHandlerPerRegistry pins the per-run mode: several
// registries served from one mux, each answering with its own snapshot.
func TestMetricsHandlerPerRegistry(t *testing.T) {
	r1, r2 := New(), New()
	r1.Counter("run.one").Inc()
	r2.Counter("run.two").Add(2)
	mux := http.NewServeMux()
	mux.HandleFunc("/runs/one/metrics", MetricsHandler(r1))
	mux.HandleFunc("/runs/two/metrics", MetricsHandler(r2))
	srv := httptest.NewServer(mux)
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	_, body1 := get(t, addr, "/runs/one/metrics")
	_, body2 := get(t, addr, "/runs/two/metrics")
	if !strings.Contains(body1, "run.one") || strings.Contains(body1, "run.two") {
		t.Errorf("registry one leaked: %s", body1)
	}
	if !strings.Contains(body2, "run.two") || strings.Contains(body2, "run.one") {
		t.Errorf("registry two leaked: %s", body2)
	}
}

// TestServeDebugTwice pins that a second server (e.g. honeypotd and a
// test in one process) re-points the expvar export instead of
// panicking on duplicate publication.
func TestServeDebugTwice(t *testing.T) {
	r1 := New()
	r1.Counter("first.only").Inc()
	s1, err := ServeDebug("127.0.0.1:0", r1)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()

	r2 := New()
	r2.Counter("second.only").Inc()
	s2, err := ServeDebug("127.0.0.1:0", r2) // must not panic
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	_, body := get(t, s2.Addr().String(), "/debug/vars")
	if !strings.Contains(body, "second.only") {
		t.Errorf("expvar still exports the first registry:\n%s", body)
	}
}
