package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

// TestCounterGaugeConcurrent hammers one counter, one gauge and one
// histogram from many goroutines; under -race this doubles as the data
// race check, and the totals pin atomic correctness.
func TestCounterGaugeConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	gm := r.Gauge("gmax")
	h := r.Histogram("h", []int64{10, 100})
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				c.Add(2)
				g.Add(1)
				gm.SetMax(int64(i))
				h.Observe(int64(i % 200))
			}
		}()
	}
	wg.Wait()
	if got, want := c.Load(), uint64(workers*per*3); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got, want := g.Load(), int64(workers*per); got != want {
		t.Errorf("gauge = %d, want %d", got, want)
	}
	if got, want := gm.Load(), int64(per-1); got != want {
		t.Errorf("max gauge = %d, want %d", got, want)
	}
	if got, want := h.Count(), uint64(workers*per); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
}

// TestGaugeSetMax pins the CAS loop's semantics.
func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.SetMax(3)
	if got := g.Load(); got != 5 {
		t.Errorf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Load(); got != 9 {
		t.Errorf("SetMax: got %d, want 9", got)
	}
}

// TestNilSafety calls every metric method through nil receivers and a
// nil registry — the disabled-telemetry contract.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", DurationBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil metrics")
	}
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	h.ObserveSince(time.Now())
	StartSpan(h).End()
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil registry WriteJSON: %v", err)
	}
	r.Do(func(string, any) { t.Error("nil registry Do must not iterate") })
}

// TestGetOrCreate pins that resolving a name twice returns the same
// metric — independent subsystems share one counter per name.
func TestGetOrCreate(t *testing.T) {
	r := New()
	a, b := r.Counter("same"), r.Counter("same")
	if a != b {
		t.Fatal("Counter(name) must get-or-create")
	}
	a.Inc()
	if b.Load() != 1 {
		t.Fatal("shared counter did not share state")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge(name) must get-or-create")
	}
	if r.Histogram("h", DurationBuckets) != r.Histogram("h", nil) {
		t.Fatal("Histogram(name) must get-or-create (bounds fixed at first use)")
	}
}

// TestSnapshotDeterminism pins that two snapshots of identical state
// serialize to identical bytes — the CI report-comparison contract.
func TestSnapshotDeterminism(t *testing.T) {
	build := func() *Registry {
		r := New()
		r.Counter("b.count").Add(3)
		r.Counter("a.count").Add(1)
		r.Gauge("z.gauge").Set(-4)
		r.Gauge("m.gauge").Set(9)
		h := r.Histogram("lat", DurationBuckets)
		h.Observe(int64(5 * time.Millisecond))
		h.Observe(int64(2 * time.Second))
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Errorf("snapshots of identical state differ:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	// And the JSON is well-formed with the three sections.
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(b1.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	for _, k := range []string{"counters", "gauges", "histograms"} {
		if _, ok := decoded[k]; !ok {
			t.Errorf("snapshot JSON missing %q", k)
		}
	}
}

// TestHistogramBuckets pins bucket assignment: value ≤ bound lands in
// that bucket, larger values overflow into the terminal +Inf bucket.
func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("h", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["h"]
	if snap.Count != 5 || snap.Sum != 1+10+11+100+5000 {
		t.Fatalf("count/sum = %d/%d", snap.Count, snap.Sum)
	}
	want := []BucketCount{
		{Le: 10, Count: 2},
		{Le: 100, Count: 2},
		{Le: math.MaxInt64, Count: 1},
	}
	if len(snap.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", snap.Buckets)
	}
	for i, b := range want {
		if snap.Buckets[i] != b {
			t.Errorf("bucket %d = %+v, want %+v", i, snap.Buckets[i], b)
		}
	}
	if got, want := snap.Mean, float64(1+10+11+100+5000)/5; got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
}

// TestDoSortedFlat pins Do's expvar-style flat iteration order.
func TestDoSortedFlat(t *testing.T) {
	r := New()
	r.Counter("c.z").Inc()
	r.Gauge("a.g").Set(2)
	r.Histogram("b.h", DurationBuckets).Observe(1)
	var names []string
	r.Do(func(name string, _ any) { names = append(names, name) })
	want := []string{"a.g", "b.h", "c.z"}
	if len(names) != len(want) {
		t.Fatalf("Do visited %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Do order %v, want %v", names, want)
		}
	}
}

// TestRegistryConcurrentResolve resolves metrics from many goroutines
// while snapshotting — the registry lock's race check.
func TestRegistryConcurrentResolve(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Set(int64(w))
				r.Histogram("h", DurationBuckets).Observe(int64(i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8*500 {
		t.Errorf("shared counter = %d, want %d", got, 8*500)
	}
}
