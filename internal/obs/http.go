package obs

// The operational surface: a debug HTTP listener serving the registry's
// JSON snapshot at /metrics, the process's expvar page (including the
// registry, published as "metrics") at /debug/vars, and the standard
// net/http/pprof profiling endpoints. cmd/honeypotd and cmd/hpmanager
// expose it behind -debug-addr as a second listener (ServeDebug); the
// service plane (cmd/measured) attaches the same endpoints to its own
// HTTP server (Attach) and serves each run's registry with a
// MetricsHandler.

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// expvarReg is the registry published under the "metrics" expvar name.
// expvar.Publish panics on duplicate names, so the name is published
// once per process and re-pointed at the most recent registry.
var (
	expvarReg  atomic.Pointer[Registry]
	expvarOnce sync.Once
)

// publishExpvar exposes r on the process's expvar page as "metrics".
func publishExpvar(r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("metrics", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}

// Attach registers the debug endpoints on a caller-owned mux — the
// mux-attach mode a daemon with its own HTTP server (cmd/measured) uses
// instead of opening a second listener:
//
//	/metrics          registry snapshot as JSON
//	/debug/vars       expvar page (registry published as "metrics")
//	/debug/pprof/...  net/http/pprof profiling
func Attach(mux *http.ServeMux, r *Registry) {
	publishExpvar(r)
	mux.HandleFunc("/metrics", MetricsHandler(r))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// MetricsHandler serves one registry's JSON snapshot — the /metrics
// payload. A service with several registries (cmd/measured's per-run
// telemetry) mounts one of these per registry on its own routes.
func MetricsHandler(r *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

// DebugMux builds a fresh mux with the debug endpoints (see Attach).
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	Attach(mux, r)
	return mux
}

// DebugServer is a running debug HTTP listener.
type DebugServer struct {
	srv  *http.Server
	addr net.Addr
	once sync.Once
	err  error
}

// Addr returns the listener's bound address (useful with ":0").
func (d *DebugServer) Addr() net.Addr { return d.addr }

// Close shuts the listener down. It is idempotent: a supervisor and a
// deferred cleanup can both Close without a double-close error — later
// calls return the first call's result.
func (d *DebugServer) Close() error {
	d.once.Do(func() { d.err = d.srv.Close() })
	return d.err
}

// ServeDebug starts a debug HTTP listener on addr (e.g. "127.0.0.1:6060"
// or ":0" for an ephemeral port) serving DebugMux(r) in a background
// goroutine. The caller owns the returned server and should Close it on
// shutdown.
func ServeDebug(addr string, r *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	srv := &http.Server{Handler: DebugMux(r)}
	go srv.Serve(ln)
	return &DebugServer{srv: srv, addr: ln.Addr()}, nil
}
