package obs

// The operational surface: a debug HTTP listener serving the registry's
// JSON snapshot at /metrics, the process's expvar page (including the
// registry, published as "metrics") at /debug/vars, and the standard
// net/http/pprof profiling endpoints. cmd/honeypotd and cmd/hpmanager
// expose it behind -debug-addr; the future service plane (cmd/measured)
// mounts the same mux.

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// expvarReg is the registry published under the "metrics" expvar name.
// expvar.Publish panics on duplicate names, so the name is published
// once per process and re-pointed at the most recent registry.
var (
	expvarReg  atomic.Pointer[Registry]
	expvarOnce sync.Once
)

// publishExpvar exposes r on the process's expvar page as "metrics".
func publishExpvar(r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("metrics", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}

// DebugMux builds the debug endpoints for a registry:
//
//	/metrics          registry snapshot as JSON
//	/debug/vars       expvar page (registry published as "metrics")
//	/debug/pprof/...  net/http/pprof profiling
func DebugMux(r *Registry) *http.ServeMux {
	publishExpvar(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug HTTP listener.
type DebugServer struct {
	srv  *http.Server
	addr net.Addr
}

// Addr returns the listener's bound address (useful with ":0").
func (d *DebugServer) Addr() net.Addr { return d.addr }

// Close shuts the listener down.
func (d *DebugServer) Close() error { return d.srv.Close() }

// ServeDebug starts a debug HTTP listener on addr (e.g. "127.0.0.1:6060"
// or ":0" for an ephemeral port) serving DebugMux(r) in a background
// goroutine. The caller owns the returned server and should Close it on
// shutdown.
func ServeDebug(addr string, r *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	srv := &http.Server{Handler: DebugMux(r)}
	go srv.Serve(ln)
	return &DebugServer{srv: srv, addr: ln.Addr()}, nil
}
