// Package obs is the campaign telemetry layer: a zero-dependency
// (stdlib-only) registry of atomic counters, gauges and fixed-bucket
// histograms, with deterministic JSON and expvar-compatible snapshot
// emission and lightweight span timing for stage-level tracing.
//
// The paper's real deployment ran a distributed fleet for weeks; at that
// regime fleet-health visibility — records/s per honeypot, store growth,
// collection lag — is the difference between a dataset and a mystery.
// Every hot path of the stack (the DES engine, logstore appends and
// scans, the finalize pipeline, the analysis query engine) reports
// through this package, and the service plane's /metrics endpoint is a
// Registry snapshot.
//
// Design constraints, in order:
//
//   - Hot-path instrumentation is allocation-free: metrics are resolved
//     from the registry once (at open/setup time) and updated with single
//     atomic operations.
//   - A disabled registry costs near zero: every metric method is
//     nil-receiver-safe, so code paths hold possibly-nil *Counter fields
//     and pay one predictable branch when telemetry is off. A nil
//     *Registry returns nil metrics from every constructor.
//   - Snapshots are deterministic: names are emitted in sorted order, so
//     two snapshots of the same state are byte-identical.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The nil Counter
// ignores updates and reads as zero, so disabled telemetry costs one
// branch per update.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The nil Gauge ignores updates
// and reads as zero.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta (use a negative delta to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// SetMax raises the gauge to v if v exceeds the current value.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram of int64 observations (by
// convention nanoseconds for durations, but any unit works). Bucket
// bounds are fixed at creation; observation is a linear scan over a
// handful of bounds plus three atomic adds — no allocation, no lock.
// The nil Histogram ignores observations.
type Histogram struct {
	bounds []int64         // upper bounds, ascending; implicit +Inf last
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Int64
	count  atomic.Uint64
}

// DurationBuckets is the default bucket layout for span timings: powers
// of ten from 1µs to 100s, in nanoseconds.
var DurationBuckets = []int64{
	int64(time.Microsecond), int64(10 * time.Microsecond), int64(100 * time.Microsecond),
	int64(time.Millisecond), int64(10 * time.Millisecond), int64(100 * time.Millisecond),
	int64(time.Second), int64(10 * time.Second), int64(100 * time.Second),
}

// newHistogram builds a histogram over the given ascending upper bounds.
func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveSince records the duration elapsed since start — the span-timing
// primitive: t := time.Now(); ...; h.ObserveSince(t).
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(int64(time.Since(start)))
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Span times one stage: it is started against a histogram and observed
// once on End. The zero Span (from a nil histogram) is inert.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing against h; a nil histogram yields an inert span.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End records the span's duration and returns it.
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.ObserveDuration(d)
	return d
}

// Registry is a named collection of metrics. Constructors get-or-create,
// so independent subsystems resolving the same name share one metric.
// The nil Registry returns nil metrics everywhere, making "telemetry
// off" a one-branch cost at update sites rather than a code path.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	gges  map[string]*Gauge
	hists map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		ctrs:  make(map[string]*Counter),
		gges:  make(map[string]*Gauge),
		hists: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gges[name]
	if !ok {
		g = &Gauge{}
		r.gges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls reuse the existing buckets
// regardless of bounds). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// BucketCount is one histogram bucket in a snapshot: the count of
// observations with value ≤ Le. The terminal bucket has Le = MaxInt64
// (rendered as the +Inf bucket).
type BucketCount struct {
	Le    int64  `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     int64         `json:"sum"`
	Mean    float64       `json:"mean"`
	Buckets []BucketCount `json:"buckets"`
}

// Snapshot is a point-in-time copy of a registry's metrics. Map keys
// marshal in sorted order (encoding/json sorts map keys), so snapshot
// emission is deterministic for identical states.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every metric's current value. A nil registry yields an
// empty (but usable) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.ctrs {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		if hs.Count > 0 {
			hs.Mean = float64(hs.Sum) / float64(hs.Count)
		}
		for i := range h.counts {
			le := int64(math.MaxInt64)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			hs.Buckets = append(hs.Buckets, BucketCount{Le: le, Count: h.counts[i].Load()})
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON emits the registry's snapshot as indented JSON — the
// /metrics payload and the -metrics-file format.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Do calls f for every metric's (name, flattened value) in sorted name
// order — the expvar-style flat view. Counters and gauges flatten to
// their value; histograms to their HistogramSnapshot.
func (r *Registry) Do(f func(name string, value any)) {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if v, ok := s.Counters[n]; ok {
			f(n, v)
		} else if v, ok := s.Gauges[n]; ok {
			f(n, v)
		} else {
			f(n, s.Histograms[n])
		}
	}
}
