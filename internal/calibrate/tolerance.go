package calibrate

// Tolerance math: the typed per-metric tolerances value checks run
// under, plus the series predicates (monotonicity, trend, periodicity)
// the figure-shape expectations evaluate. Everything here is pure —
// the unit tests pin the edge cases (zero observed, zero tolerance,
// short series) without running a campaign.

import (
	"fmt"
	"math"
)

// Tolerance bounds an acceptable predicted-vs-observed deviation: the
// check passes when |predicted − observed| ≤ max(Abs, Rel·|observed|).
// The zero value demands exact equality.
type Tolerance struct {
	// Abs is the absolute allowance, in the metric's own unit.
	Abs float64 `json:"abs,omitempty"`
	// Rel is the relative allowance, as a fraction of |observed|.
	Rel float64 `json:"rel,omitempty"`
}

// allowance is the largest acceptable |delta| for an observed value.
// When observed is zero the relative term contributes nothing (a
// relative tolerance on zero would demand exactness the caller did not
// ask for — the zero-observed guard), leaving Abs alone.
func (t Tolerance) allowance(observed float64) float64 {
	allowed := t.Abs
	if rel := t.Rel * math.Abs(observed); rel > allowed {
		allowed = rel
	}
	return allowed
}

// scaled returns the tolerance with its absolute allowance multiplied
// by factor — what a "linear" metric's tolerance becomes at a reduced
// campaign scale (the relative allowance is dimensionless and passes
// through).
func (t Tolerance) scaled(factor float64) Tolerance {
	t.Abs *= factor
	return t
}

// Check compares a predicted value against an observed one under tol.
// It returns nil when |predicted − observed| is within the allowance
// and a descriptive error otherwise.
func Check(predicted, observed float64, tol Tolerance) error {
	delta := predicted - observed
	if allowed := tol.allowance(observed); math.Abs(delta) > allowed {
		return fmt.Errorf("predicted %g vs observed %g: |Δ| %g exceeds allowance %g",
			predicted, observed, math.Abs(delta), allowed)
	}
	return nil
}

// maxDip returns the largest relative step-to-step decline of a series:
// max over i of (x[i−1] − x[i]) / x[i−1], zero for a nondecreasing
// series. A nonpositive predecessor makes any decline a full dip (1).
func maxDip(xs []float64) float64 {
	worst := 0.0
	for i := 1; i < len(xs); i++ {
		if xs[i] >= xs[i-1] {
			continue
		}
		dip := 1.0
		if xs[i-1] > 0 {
			dip = (xs[i-1] - xs[i]) / xs[i-1]
		}
		if dip > worst {
			worst = dip
		}
	}
	return worst
}

// trendRatio splits the series into head and tail windows of
// max(3, len/6) points and returns mean(tail)/mean(head) — below 1 the
// series declines over the campaign, above 1 it grows. A series too
// short for two windows, or a nonpositive head mean, yields NaN.
func trendRatio(xs []float64) float64 {
	k := len(xs) / 6
	if k < 3 {
		k = 3
	}
	if len(xs) < 2*k {
		return math.NaN()
	}
	head := mean(xs[:k])
	if head <= 0 {
		return math.NaN()
	}
	return mean(xs[len(xs)-k:]) / head
}

// coeffVar is the coefficient of variation (stddev/mean), NaN for an
// empty series or a nonpositive mean.
func coeffVar(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := mean(xs)
	if m <= 0 {
		return math.NaN()
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(xs))) / m
}

// autocorr is the lag-k autocorrelation of the series (Pearson form
// around the global mean): near 1 for a signal repeating every k
// samples, near 0 for noise. NaN when the series is shorter than 2k or
// flat.
func autocorr(xs []float64, lag int) float64 {
	if lag <= 0 || len(xs) < 2*lag {
		return math.NaN()
	}
	m := mean(xs)
	var num, den float64
	for i := range xs {
		d := xs[i] - m
		den += d * d
		if i+lag < len(xs) {
			num += d * (xs[i+lag] - m)
		}
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
