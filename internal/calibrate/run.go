package calibrate

// Run: the one-call calibration loop — execute a campaign spec through
// scenario.RunWith, Exec the paper plan (or exactly the dataset's
// queries) against the resulting frame, and Diff. cmd/measure
// -calibrate and the CI calibration gate are thin wrappers around it;
// the service plane skips the execution half and Diffs a finished
// run's cached frame instead (svc.Service.Calibrate).

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/scenario"
)

// Run executes spec, extracts the artifacts and diffs them against the
// observed dataset (nil = the built-in paper dataset). A nil plan
// derives the minimal plan covering the dataset's expectations for the
// campaign — calibration never computes artifacts it will not check.
// The scenario runs through the streaming finalize so the artifacts
// derive from the columnar frame, exactly like a daemon-executed run.
// It returns the report and the executed result (for summaries); the
// report's Pass flag, not the error, carries the calibration verdict.
func Run(spec scenario.Spec, plan *analysis.Plan, ds *Dataset, opts scenario.RunOptions) (Report, *scenario.Result, error) {
	if ds == nil {
		ds = PaperObserved()
	}
	if plan == nil {
		// Subset estimators seeded like repro.DefaultAnalyzeOptions, so a
		// calibration run's artifacts match a default analysis run's.
		p, err := ds.Plan(spec.Name, analysis.QueryOptions{Seed: 1})
		if err != nil {
			return Report{}, nil, err
		}
		plan = &p
	}
	spec.Collection.Stream = true
	res, err := scenario.RunWith(spec, opts)
	if err != nil {
		return Report{}, nil, err
	}
	meta := res.Meta()
	rs, err := analysis.Exec(res.Frame, meta, *plan)
	if err != nil {
		return Report{}, res, fmt.Errorf("calibrate: executing plan: %w", err)
	}
	rep, err := Diff(meta.Name, meta.Scale, rs, ds)
	if err != nil {
		return Report{}, res, err
	}
	return rep, res, nil
}
