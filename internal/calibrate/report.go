package calibrate

// The calibration report and the diff engine producing it. Diff walks
// one campaign's expectations in dataset order against an executed
// analysis.ReportSet, evaluating each under its tolerance and scaling
// mode; every row is uniformly numeric — Predicted is the measured
// quantity (a count, a trend ratio, an autocorrelation), Observed the
// bound it is held to — so reports render, diff and round-trip through
// JSON like analysis plans do. Rows follow dataset order and carry no
// timings, so a report is byte-identical across runs of the same seed.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/analysis"
)

// Row statuses.
const (
	// StatusPass: the artifact is within tolerance.
	StatusPass = "pass"
	// StatusFail: the artifact is out of tolerance (or missing).
	StatusFail = "fail"
	// StatusSkipped: the expectation does not apply at this scale
	// (full-scale values on a reduced-scale run).
	StatusSkipped = "skipped"
)

// Row is one expectation's verdict.
type Row struct {
	// Query/Metric/Series and Check identify the expectation.
	Query  string `json:"query"`
	Metric string `json:"metric,omitempty"`
	Series string `json:"series,omitempty"`
	Check  string `json:"check"`
	// Predicted is the measured quantity; Observed the bound it was
	// held to (the scale-normalized expected value, a minimum ratio, a
	// maximum coefficient of variation); Delta is Predicted − Observed.
	Predicted float64 `json:"predicted"`
	Observed  float64 `json:"observed"`
	Delta     float64 `json:"delta"`
	// Tolerance is the allowance the check ran under, scale-normalized.
	Tolerance Tolerance `json:"tolerance,omitzero"`
	// Status is pass, fail or skipped; Detail says why for the latter
	// two.
	Status string `json:"status"`
	Detail string `json:"detail,omitempty"`
	// Note carries the expectation's provenance through to the report.
	Note string `json:"note,omitempty"`
}

// Label is the row's artifact identity ("table-i/distinct_peers").
func (r Row) Label() string {
	switch {
	case r.Metric != "":
		return r.Query + "/" + r.Metric
	case r.Series != "":
		return r.Query + "/" + r.Series
	}
	return r.Query
}

// Report is one campaign's calibration verdict: every expectation's
// row plus the counts and the overall pass flag.
type Report struct {
	// Campaign names the calibrated campaign; Scale is the scale the
	// expectations were normalized to.
	Campaign string  `json:"campaign"`
	Scale    float64 `json:"scale"`
	// DatasetVersion and Source identify the observed dataset.
	DatasetVersion int    `json:"dataset_version"`
	Source         string `json:"source,omitempty"`
	// Rows holds every expectation's verdict, in dataset order.
	Rows []Row `json:"rows"`
	// Passed/Failed/Skipped count rows by status; Pass is Failed == 0.
	Passed  int  `json:"passed"`
	Failed  int  `json:"failed"`
	Skipped int  `json:"skipped"`
	Pass    bool `json:"pass"`
}

// Failing returns the out-of-tolerance rows, in report order.
func (r Report) Failing() []Row {
	var out []Row
	for _, row := range r.Rows {
		if row.Status == StatusFail {
			out = append(out, row)
		}
	}
	return out
}

// ParseReport decodes a report from JSON, rejecting unknown fields —
// the round-trip half of the report's "reports are data" contract.
func ParseReport(data []byte) (Report, error) {
	var rep Report
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("calibrate: decoding report: %w", err)
	}
	return rep, nil
}

// Diff evaluates one campaign's expectations against an executed
// report set. scale is the campaign's arrival-intensity scale (≤ 0
// reads as 1, covering metas persisted before the field existed); a
// nil dataset means the built-in paper dataset.
func Diff(campaign string, scale float64, rs analysis.ReportSet, ds *Dataset) (Report, error) {
	if ds == nil {
		ds = PaperObserved()
	}
	c := ds.Campaigns[campaign]
	if c == nil {
		_, err := ds.Plan(campaign, analysis.QueryOptions{})
		return Report{}, err
	}
	if scale <= 0 {
		scale = 1
	}
	rep := Report{
		Campaign:       campaign,
		Scale:          scale,
		DatasetVersion: ds.Version,
		Source:         ds.Source,
		Rows:           make([]Row, 0, len(c.Expect)),
	}
	for _, e := range c.Expect {
		row := evaluate(e, scale, rs)
		switch row.Status {
		case StatusPass:
			rep.Passed++
		case StatusFail:
			rep.Failed++
		case StatusSkipped:
			rep.Skipped++
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Pass = rep.Failed == 0
	return rep, nil
}

// evaluate runs one expectation. Missing queries, metrics or series
// fail the row rather than erroring the diff — an expectation the
// campaign cannot satisfy is a calibration failure, and the report
// names it.
func evaluate(e Expectation, scale float64, rs analysis.ReportSet) Row {
	row := Row{Query: e.Query, Metric: e.Metric, Series: e.Series, Check: e.Check, Note: e.Note}
	fail := func(format string, args ...any) Row {
		row.Status = StatusFail
		row.Detail = fmt.Sprintf(format, args...)
		return row
	}
	// verdict folds a measured-vs-bound pair into the row: held is the
	// predicate, detail explains a failure.
	verdict := func(predicted, bound float64, held bool, detail string) Row {
		if math.IsNaN(predicted) || math.IsInf(predicted, 0) {
			// NaN/Inf would poison the report's JSON encoding; the row
			// fails with zeroed numbers and the detail says why.
			row.Observed = bound
			return fail("%s undefined for this artifact (series too short, flat, or a zero denominator)", e.Check)
		}
		row.Predicted, row.Observed = predicted, bound
		row.Delta = predicted - bound
		if held {
			row.Status = StatusPass
			return row
		}
		return fail("%s", detail)
	}

	switch e.Check {
	case CheckValue, CheckMin:
		predicted, err := scalar(rs, e.Query, e.Metric)
		if err != nil {
			return fail("%v", err)
		}
		expected, tol := e.Value, e.Tol
		switch e.Scaling {
		case ScaleLinear:
			expected *= scale
			tol = tol.scaled(scale)
		case ScaleFull:
			if math.Abs(scale-1) > fullScaleSlack {
				row.Predicted, row.Observed = predicted, expected
				row.Delta = predicted - expected
				row.Status = StatusSkipped
				row.Detail = fmt.Sprintf("full-scale value, campaign ran at scale %g", scale)
				return row
			}
		}
		row.Tolerance = tol
		if e.Check == CheckMin {
			return verdict(predicted, expected, predicted >= expected,
				fmt.Sprintf("predicted %g below observed minimum %g", predicted, expected))
		}
		err = Check(predicted, expected, tol)
		return verdict(predicted, expected, err == nil, fmt.Sprint(err))

	case CheckRatioGE:
		lhs, err := scalar(rs, e.Query, e.Metric)
		if err != nil {
			return fail("%v", err)
		}
		rq, rm, _ := splitRef(e.Ref)
		rhs, err := scalar(rs, rq, rm)
		if err != nil {
			return fail("%v", err)
		}
		minRatio := e.Ratio
		if minRatio <= 0 {
			minRatio = 1
		}
		ratio := math.NaN()
		if rhs != 0 {
			ratio = lhs / rhs
		} else if lhs == 0 {
			ratio = minRatio // 0/0: vacuously ordered
		}
		return verdict(ratio, minRatio, ratio >= minRatio,
			fmt.Sprintf("%s = %g is below %g × %s = %g", e.label(), lhs, minRatio, e.Ref, rhs))

	case CheckNonDecreasing:
		xs, err := series(rs, e.Query, e.Series, e.Skip)
		if err != nil {
			return fail("%v", err)
		}
		row.Tolerance = e.Tol
		dip := maxDip(xs)
		return verdict(dip, e.Tol.Rel, dip <= e.Tol.Rel,
			fmt.Sprintf("series dips by %.2f%% of the previous point (allowed %.2f%%)", 100*dip, 100*e.Tol.Rel))

	case CheckDecliningTrend:
		xs, err := series(rs, e.Query, e.Series, e.Skip)
		if err != nil {
			return fail("%v", err)
		}
		maxRatio := e.Ratio
		if maxRatio <= 0 {
			maxRatio = 0.75
		}
		ratio := trendRatio(xs)
		return verdict(ratio, maxRatio, ratio <= maxRatio,
			fmt.Sprintf("tail/head mean ratio %.3f exceeds %.3f — the series is not declining", ratio, maxRatio))

	case CheckSteady:
		xs, err := series(rs, e.Query, e.Series, e.Skip)
		if err != nil {
			return fail("%v", err)
		}
		maxCV := e.Ratio
		if maxCV <= 0 {
			maxCV = 0.5
		}
		cv := coeffVar(xs)
		return verdict(cv, maxCV, cv <= maxCV,
			fmt.Sprintf("coefficient of variation %.3f exceeds %.3f — growth is not steady", cv, maxCV))

	case CheckPeriodicDaily:
		xs, err := series(rs, e.Query, e.Series, e.Skip)
		if err != nil {
			return fail("%v", err)
		}
		minAC := e.Ratio
		if minAC <= 0 {
			minAC = 0.2
		}
		ac := autocorr(xs, 24)
		return verdict(ac, minAC, ac >= minAC,
			fmt.Sprintf("lag-24 autocorrelation %.3f below %.3f — no daily cycle", ac, minAC))
	}
	return fail("unknown check %q", e.Check)
}

// scalar resolves query/metric via analysis.ArtifactScalars.
func scalar(rs analysis.ReportSet, query, metric string) (float64, error) {
	scalars, ok := analysis.ArtifactScalars(rs, query)
	if !ok {
		return 0, fmt.Errorf("query %q not in the executed report set", query)
	}
	v, ok := scalars[metric]
	if !ok {
		return 0, fmt.Errorf("query %q has no scalar metric %q", query, metric)
	}
	return v, nil
}

// series resolves query/series via analysis.ArtifactSeries, dropping
// skip leading points.
func series(rs analysis.ReportSet, query, name string, skip int) ([]float64, error) {
	all, ok := analysis.ArtifactSeries(rs, query)
	if !ok {
		return nil, fmt.Errorf("query %q not in the executed report set", query)
	}
	xs, ok := all[name]
	if !ok {
		return nil, fmt.Errorf("query %q has no series %q", query, name)
	}
	if skip >= len(xs) {
		return nil, fmt.Errorf("query %q series %q has %d points, cannot skip %d", query, name, len(xs), skip)
	}
	return xs[skip:], nil
}
