// Package calibrate closes the loop between the simulated campaigns
// and the numbers Allali, Latapy & Magnien published: a versioned
// observed Dataset encodes the paper's reported artifact values (Table
// I counts) and headline figure shapes (peer-growth slope, hourly-HELLO
// periodicity, group-series ordering) per campaign, and Diff compares
// an executed analysis.ReportSet against it under typed per-metric
// tolerances, producing a deterministic Report.
//
// Expectations are scale-aware: a "linear" metric's expected value is
// multiplied by the campaign's scale (so a -scale 0.02 CI run compares
// against proportionally scaled counts), an "invariant" metric is the
// same at any scale, and a "full-scale" metric is only checked when the
// campaign ran at scale ≈ 1 (non-linear couplings — the greedy
// campaign's advertised-ramp feedback, catalog saturation — make its
// counts meaningless to extrapolate; reduced-scale runs lean on the
// invariants and shape checks instead).
//
// Run executes a registered scenario through scenario.RunWith, Execs
// exactly the queries the dataset references, and diffs — the engine of
// cmd/measure -calibrate and the CI calibration gate. The service plane
// exposes the same diff against a finished run's cached frame as
// POST /runs/{id}/calibrate.
//
// docs/CALIBRATION.md documents the dataset format, the tolerance
// semantics and how to add a metric.
package calibrate
