package calibrate

// Calibration tests in two tiers: pure tolerance/predicate math (no
// campaign), and one small executed campaign that the diff tests —
// golden determinism, scale normalization, doctored-value failure —
// all share.

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/catalog"
	"repro/internal/scenario"
)

func TestToleranceAllowance(t *testing.T) {
	cases := []struct {
		name     string
		tol      Tolerance
		observed float64
		want     float64
	}{
		{"zero tolerance demands exactness", Tolerance{}, 100, 0},
		{"absolute only", Tolerance{Abs: 5}, 100, 5},
		{"relative only", Tolerance{Rel: 0.1}, 200, 20},
		{"max of abs and rel", Tolerance{Abs: 5, Rel: 0.1}, 200, 20},
		{"abs wins on small observed", Tolerance{Abs: 5, Rel: 0.1}, 10, 5},
		{"zero-observed guard: rel contributes nothing", Tolerance{Rel: 0.5}, 0, 0},
		{"zero-observed guard leaves abs", Tolerance{Abs: 3, Rel: 0.5}, 0, 3},
		{"negative observed uses magnitude", Tolerance{Rel: 0.1}, -200, 20},
	}
	for _, tc := range cases {
		if got := tc.tol.allowance(tc.observed); got != tc.want {
			t.Errorf("%s: allowance(%g) = %g, want %g", tc.name, tc.observed, got, tc.want)
		}
	}
}

func TestCheck(t *testing.T) {
	if err := Check(100, 100, Tolerance{}); err != nil {
		t.Errorf("exact match under zero tolerance: %v", err)
	}
	if err := Check(100, 101, Tolerance{}); err == nil {
		t.Error("off-by-one under zero tolerance should fail")
	}
	if err := Check(95, 100, Tolerance{Rel: 0.05}); err != nil {
		t.Errorf("within relative allowance: %v", err)
	}
	if err := Check(94, 100, Tolerance{Rel: 0.05}); err == nil {
		t.Error("outside relative allowance should fail")
	}
	if err := Check(3, 0, Tolerance{Rel: 0.5}); err == nil {
		t.Error("zero observed must not let a relative tolerance pass a nonzero prediction")
	}
	if err := Check(3, 0, Tolerance{Abs: 3}); err != nil {
		t.Errorf("zero observed within absolute allowance: %v", err)
	}
	if err := Check(90, 100, Tolerance{Rel: 0.05}); err == nil ||
		!strings.Contains(err.Error(), "exceeds allowance") {
		t.Errorf("failure message should name the allowance, got %v", err)
	}
}

func TestToleranceScaled(t *testing.T) {
	tol := Tolerance{Abs: 100, Rel: 0.1}.scaled(0.02)
	if tol.Abs != 2 {
		t.Errorf("scaled Abs = %g, want 2", tol.Abs)
	}
	if tol.Rel != 0.1 {
		t.Errorf("scaled must leave the dimensionless Rel alone, got %g", tol.Rel)
	}
}

func TestMaxDip(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 0},
		{"nondecreasing", []float64{1, 1, 2, 3, 3}, 0},
		{"one dip", []float64{10, 9, 12}, 0.1},
		{"worst dip wins", []float64{10, 9, 100, 50}, 0.5},
		{"nonpositive predecessor is a full dip", []float64{0, -1}, 1},
	}
	for _, tc := range cases {
		if got := maxDip(tc.xs); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: maxDip = %g, want %g", tc.name, got, tc.want)
		}
	}
}

func TestTrendRatio(t *testing.T) {
	if !math.IsNaN(trendRatio([]float64{1, 2, 3, 4, 5})) {
		t.Error("series shorter than two windows should be NaN")
	}
	if !math.IsNaN(trendRatio([]float64{0, 0, 0, 1, 2, 3})) {
		t.Error("nonpositive head mean should be NaN")
	}
	declining := []float64{100, 90, 80, 50, 40, 30}
	if got := trendRatio(declining); math.Abs(got-40.0/90.0) > 1e-12 {
		t.Errorf("declining trendRatio = %g, want %g", got, 40.0/90.0)
	}
	flat := []float64{10, 10, 10, 10, 10, 10}
	if got := trendRatio(flat); got != 1 {
		t.Errorf("flat trendRatio = %g, want 1", got)
	}
}

func TestCoeffVar(t *testing.T) {
	if !math.IsNaN(coeffVar(nil)) {
		t.Error("empty series should be NaN")
	}
	if !math.IsNaN(coeffVar([]float64{1, -3})) {
		t.Error("nonpositive mean should be NaN")
	}
	if got := coeffVar([]float64{5, 5, 5}); got != 0 {
		t.Errorf("constant series cv = %g, want 0", got)
	}
	// {4, 6}: mean 5, population stddev 1, cv 0.2.
	if got := coeffVar([]float64{4, 6}); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("cv = %g, want 0.2", got)
	}
}

func TestAutocorr(t *testing.T) {
	if !math.IsNaN(autocorr([]float64{1, 2, 3}, 2)) {
		t.Error("series shorter than 2·lag should be NaN")
	}
	if !math.IsNaN(autocorr([]float64{7, 7, 7, 7, 7, 7}, 2)) {
		t.Error("flat series should be NaN")
	}
	// A clean period-2 signal correlates strongly at its own lag.
	periodic := []float64{1, 9, 1, 9, 1, 9, 1, 9, 1, 9, 1, 9}
	if got := autocorr(periodic, 2); got < 0.7 {
		t.Errorf("period-2 signal lag-2 autocorr = %g, want strong", got)
	}
	if got := autocorr(periodic, 1); got > 0 {
		t.Errorf("period-2 signal lag-1 autocorr = %g, want negative", got)
	}
}

func TestExpectationValidate(t *testing.T) {
	bad := []struct {
		name string
		e    Expectation
	}{
		{"missing query", Expectation{Check: CheckValue, Metric: "m"}},
		{"unknown check", Expectation{Query: "q", Check: "bogus"}},
		{"value without metric", Expectation{Query: "q", Check: CheckValue}},
		{"shape without series", Expectation{Query: "q", Check: CheckNonDecreasing}},
		{"ratio without ref", Expectation{Query: "q", Check: CheckRatioGE, Metric: "m"}},
		{"malformed ref", Expectation{Query: "q", Check: CheckRatioGE, Metric: "m", Ref: "no-slash"}},
		{"unknown scaling", Expectation{Query: "q", Check: CheckValue, Metric: "m", Scaling: "log"}},
	}
	for _, tc := range bad {
		if err := tc.e.validate(); err == nil {
			t.Errorf("%s: validate passed, want error", tc.name)
		}
	}
	ok := Expectation{Query: "q", Check: CheckRatioGE, Metric: "m", Ref: "other/metric", Scaling: ScaleLinear}
	if err := ok.validate(); err != nil {
		t.Errorf("well-formed expectation: %v", err)
	}
}

func TestParseDatasetRejects(t *testing.T) {
	bad := []struct {
		name, body string
	}{
		{"unknown top-level field", `{"version":1,"bogus":true,"campaigns":{}}`},
		{"unknown expectation field", `{"version":1,"campaigns":{"c":{"expect":[{"query":"q","check":"value","metric":"m","tollerance":{"abs":1}}]}}}`},
		{"unknown check", `{"version":1,"campaigns":{"c":{"expect":[{"query":"q","check":"about-right","metric":"m"}]}}}`},
		{"unknown scaling", `{"version":1,"campaigns":{"c":{"expect":[{"query":"q","check":"value","metric":"m","scaling":"quadratic"}]}}}`},
	}
	for _, tc := range bad {
		if _, err := ParseDataset([]byte(tc.body)); err == nil {
			t.Errorf("%s: parse passed, want error", tc.name)
		}
	}
	ds, err := ParseDataset([]byte(`{"version":3,"campaigns":{"c":{"expect":[{"query":"q","check":"value","metric":"m","value":5,"tolerance":{"rel":0.1}}]}}}`))
	if err != nil {
		t.Fatalf("well-formed dataset: %v", err)
	}
	if ds.Version != 3 || len(ds.Campaigns["c"].Expect) != 1 {
		t.Errorf("parsed dataset mangled: %+v", ds)
	}
}

// TestPaperObservedValid pins that the built-in dataset itself parses
// its own rules: every expectation validates, it survives a JSON
// round-trip through ParseDataset, and both campaigns derive a plan.
func TestPaperObservedValid(t *testing.T) {
	ds := PaperObserved()
	if err := ds.Validate(); err != nil {
		t.Fatalf("built-in dataset invalid: %v", err)
	}
	data, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseDataset(data); err != nil {
		t.Fatalf("built-in dataset does not round-trip: %v", err)
	}
	for _, campaign := range []string{"distributed", "greedy"} {
		plan, err := ds.Plan(campaign, analysis.QueryOptions{Seed: 1})
		if err != nil {
			t.Fatalf("plan for %s: %v", campaign, err)
		}
		if len(plan.Queries) == 0 {
			t.Errorf("plan for %s is empty", campaign)
		}
	}
}

func TestDatasetPlan(t *testing.T) {
	ds := &Dataset{Version: 1, Campaigns: map[string]*CampaignObserved{
		"c": {Expect: []Expectation{
			{Query: "b-query", Check: CheckNonDecreasing, Series: "s"},
			{Query: "a-query", Check: CheckValue, Metric: "m", Value: 1},
			{Query: "a-query", Check: CheckRatioGE, Metric: "m", Ref: "ref-query/m"},
		}},
	}}
	plan, err := ds.Plan("c", analysis.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, q := range plan.Queries {
		names = append(names, q.Name)
	}
	// Deduplicated, ref queries included, sorted.
	want := []string{"a-query", "b-query", "ref-query"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("plan queries = %v, want %v", names, want)
	}
	if _, err := ds.Plan("nope", analysis.QueryOptions{}); err == nil ||
		!strings.Contains(err.Error(), "no observed data") {
		t.Errorf("unknown campaign: got %v, want ErrUnknownCampaign", err)
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := Report{
		Campaign: "c", Scale: 0.02, DatasetVersion: 2, Source: "test",
		Rows: []Row{
			{Query: "q", Metric: "m", Check: CheckValue, Predicted: 10, Observed: 11,
				Delta: -1, Tolerance: Tolerance{Rel: 0.2}, Status: StatusPass, Note: "n"},
			{Query: "q", Series: "s", Check: CheckNonDecreasing, Predicted: 0.3, Observed: 0.02,
				Delta: 0.28, Status: StatusFail, Detail: "dips"},
		},
		Passed: 1, Failed: 1,
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", back, rep)
	}
	if _, err := ParseReport([]byte(`{"campaign":"c","bogus":1}`)); err == nil {
		t.Error("unknown report field should be rejected")
	}
	fails := rep.Failing()
	if len(fails) != 1 || fails[0].Label() != "q/s" {
		t.Errorf("Failing() = %+v, want the one failed row", fails)
	}
}

// calTestSpec is a unit-test-sized two-honeypot campaign for the
// executed-diff tests.
func calTestSpec() scenario.Spec {
	return scenario.Spec{
		Name:    "cal-e2e",
		Seed:    17,
		Days:    3,
		Scale:   0.5,
		Catalog: catalog.Config{NumFiles: 1500, Vocabulary: 300, PopularityExp: 0.9, Seed: 3},
		Topology: scenario.Topology{Servers: 2},
		Fleet: []scenario.HoneypotSpec{
			{ID: "hp-a", Strategy: "random-content", Server: 0, Files: scenario.FilesSpec{Kind: "four-bait"}},
			{ID: "hp-b", Strategy: "no-content", Server: 1, Files: scenario.FilesSpec{Kind: "songs", N: 2}},
		},
		Workloads: []scenario.WorkloadSpec{{
			Label:          "cal-e2e-wl",
			ArrivalsPerDay: 80,
			Servers:        []int{0, 1},
			Targets:        scenario.TargetsSpec{Kind: "static"},
		}},
		Collection: scenario.Collection{Every: scenario.Duration(time.Hour)},
	}
}

// TestDiffEndToEnd executes one small campaign and drives Diff through
// its contract: in-tolerance expectations pass, reports are
// byte-identical across evaluations (the golden determinism pin), a
// doctored observed value fails naming the artifact, linear values
// normalize by the campaign scale, and full-scale values skip off
// scale 1.
func TestDiffEndToEnd(t *testing.T) {
	spec := calTestSpec()
	spec.Collection.Stream = true
	res, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	meta := res.Meta()
	if meta.Scale != 0.5 {
		t.Fatalf("meta.Scale = %g, want the spec's 0.5", meta.Scale)
	}
	plan := analysis.NewPlan(analysis.QueryOptions{Seed: 1}, "table-i", "peer-growth")
	rs, err := analysis.Exec(res.Frame, meta, plan)
	if err != nil {
		t.Fatal(err)
	}
	scalars, ok := analysis.ArtifactScalars(rs, "table-i")
	if !ok {
		t.Fatal("table-i missing from report set")
	}
	peers := scalars["distinct_peers"]
	if peers <= 0 {
		t.Fatalf("campaign produced %g distinct peers", peers)
	}

	ds := &Dataset{Version: 7, Campaigns: map[string]*CampaignObserved{
		"cal-e2e": {Expect: []Expectation{
			{Query: "table-i", Metric: "honeypots", Check: CheckValue, Value: 2},
			// Linear: the stored full-scale value is measured/0.5, so the
			// scale-normalized expectation lands exactly on the measurement.
			{Query: "table-i", Metric: "distinct_peers", Check: CheckValue,
				Value: peers / meta.Scale, Scaling: ScaleLinear, Tol: Tolerance{Rel: 0.01}},
			{Query: "table-i", Metric: "distinct_files", Check: CheckValue,
				Value: 123456, Scaling: ScaleFull},
			{Query: "peer-growth", Series: "cumulative", Check: CheckNonDecreasing},
			{Query: "table-i", Metric: "distinct_peers", Check: CheckRatioGE,
				Ref: "table-i/honeypots", Ratio: 1},
		}},
	}}

	rep, err := Diff(meta.Name, meta.Scale, rs, ds)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.Failed != 0 {
		t.Fatalf("in-tolerance diff failed: %+v", rep.Failing())
	}
	if rep.Skipped != 1 {
		t.Errorf("full-scale value at scale 0.5 should skip, got %d skips", rep.Skipped)
	}
	for _, row := range rep.Rows {
		if row.Label() == "table-i/distinct_files" {
			if row.Status != StatusSkipped || !strings.Contains(row.Detail, "full-scale") {
				t.Errorf("full-scale row = %+v, want skipped with detail", row)
			}
		}
		if row.Label() == "table-i/distinct_peers" && row.Check == CheckValue {
			if row.Observed != peers {
				t.Errorf("linear value normalized to %g, want the measured %g", row.Observed, peers)
			}
			if row.Delta != 0 {
				t.Errorf("linear value delta = %g, want 0", row.Delta)
			}
		}
	}

	// Golden determinism: evaluating the same report set twice yields
	// byte-identical JSON.
	first, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Diff(meta.Name, meta.Scale, rs, ds)
	if err != nil {
		t.Fatal(err)
	}
	second, err := json.MarshalIndent(rep2, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("two diffs of the same run are not byte-identical")
	}

	// A doctored observed value fails, and the report names the artifact.
	doctored := &Dataset{Version: 8, Campaigns: map[string]*CampaignObserved{
		"cal-e2e": {Expect: []Expectation{
			{Query: "table-i", Metric: "distinct_peers", Check: CheckValue,
				Value: 9_999_999, Scaling: ScaleLinear, Tol: Tolerance{Rel: 0.01}},
		}},
	}}
	bad, err := Diff(meta.Name, meta.Scale, rs, doctored)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Pass || bad.Failed != 1 {
		t.Fatalf("doctored diff passed: %+v", bad)
	}
	if fails := bad.Failing(); fails[0].Label() != "table-i/distinct_peers" {
		t.Errorf("failing row names %q, want table-i/distinct_peers", fails[0].Label())
	}

	// Expectations the run cannot satisfy fail the row, not the diff.
	missing := &Dataset{Version: 9, Campaigns: map[string]*CampaignObserved{
		"cal-e2e": {Expect: []Expectation{
			{Query: "co-interest", Metric: "peers", Check: CheckMin, Value: 1},
			{Query: "table-i", Metric: "no_such_metric", Check: CheckMin, Value: 1},
		}},
	}}
	miss, err := Diff(meta.Name, meta.Scale, rs, missing)
	if err != nil {
		t.Fatal(err)
	}
	if miss.Failed != 2 {
		t.Fatalf("missing query/metric should fail both rows: %+v", miss)
	}

	// Diff against a campaign the dataset does not cover errors.
	if _, err := Diff("unknown", 1, rs, ds); err == nil {
		t.Error("unknown campaign should error")
	}
}

// TestRunEndToEnd drives the one-call Run loop with a custom dataset
// and pins that the full-path report matches a hand-assembled diff of
// the same spec.
func TestRunEndToEnd(t *testing.T) {
	spec := calTestSpec()
	ds := &Dataset{Version: 1, Campaigns: map[string]*CampaignObserved{
		"cal-e2e": {Expect: []Expectation{
			{Query: "table-i", Metric: "honeypots", Check: CheckValue, Value: 2},
			{Query: "peer-growth", Series: "cumulative", Check: CheckNonDecreasing},
		}},
	}}
	rep, res, err := Run(spec, nil, ds, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Frame == nil {
		t.Fatal("Run returned no executed result")
	}
	if !rep.Pass || rep.Passed != 2 {
		t.Fatalf("calibration run failed: %+v", rep.Failing())
	}
	if rep.Campaign != "cal-e2e" || rep.Scale != 0.5 || rep.DatasetVersion != 1 {
		t.Errorf("report header = %s/%g/v%d, want cal-e2e/0.5/v1", rep.Campaign, rep.Scale, rep.DatasetVersion)
	}
	// Run against a campaign the dataset does not cover surfaces the
	// plan-derivation error before executing anything.
	other := spec
	other.Name = "uncovered"
	if _, _, err := Run(other, nil, ds, scenario.RunOptions{}); err == nil {
		t.Error("Run for an uncovered campaign should error")
	}
}
