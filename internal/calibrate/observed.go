package calibrate

// The observed dataset: the paper's published artifact values and
// figure shapes as data, keyed by campaign name and artifact query
// name. Like analysis plans and campaign specs it round-trips through
// JSON (ParseDataset rejects unknown fields and malformed
// expectations), so a calibration target can live in a file next to
// the spec it gates — cmd/measure -calibration-file.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"maps"
	"slices"
	"strings"

	"repro/internal/analysis"
)

// ErrUnknownCampaign: the dataset holds no expectations for the
// campaign being calibrated.
var ErrUnknownCampaign = errors.New("calibrate: no observed data for campaign")

// Check kinds an Expectation can run. "value" and "min" compare a
// scalar metric; the rest are figure-shape predicates over a series or
// a pair of scalars.
const (
	// CheckValue: scalar Metric vs the (scale-normalized) Value under
	// Tolerance.
	CheckValue = "value"
	// CheckMin: scalar Metric must be ≥ the (scale-normalized) Value.
	CheckMin = "min"
	// CheckNonDecreasing: Series never steps down by more than
	// Tolerance.Rel of the previous point (0 = strictly monotone).
	CheckNonDecreasing = "nondecreasing"
	// CheckDecliningTrend: Series' tail-window mean ≤ Ratio × its
	// head-window mean (default 0.75) — Fig 2's slowing growth.
	CheckDecliningTrend = "declining-trend"
	// CheckSteady: Series' coefficient of variation ≤ Ratio (default
	// 0.5), after dropping Skip leading points — Fig 3's near-linear
	// growth.
	CheckSteady = "steady"
	// CheckPeriodicDaily: Series' lag-24 autocorrelation ≥ Ratio
	// (default 0.2) — Fig 4's diurnal cycle.
	CheckPeriodicDaily = "periodic-daily"
	// CheckRatioGE: scalar Metric ≥ Ratio × the scalar named by Ref
	// ("query/metric") — group-series and subset-curve ordering.
	CheckRatioGE = "ratio-ge"
)

// Scaling modes for value expectations.
const (
	// ScaleInvariant (the default): the observed value holds at any
	// campaign scale (fleet size, duration, structural ratios).
	ScaleInvariant = "invariant"
	// ScaleLinear: the observed value scales with arrival intensity;
	// the expectation (and its absolute allowance) is multiplied by the
	// campaign's scale.
	ScaleLinear = "linear"
	// ScaleFull: the observed value only holds at scale ≈ 1 (non-linear
	// couplings); reduced-scale runs skip the check.
	ScaleFull = "full-scale"
)

// fullScaleSlack is how far from 1.0 a campaign's scale may sit and
// still count as full scale for ScaleFull expectations.
const fullScaleSlack = 0.01

// Expectation is one observed fact about one campaign artifact: a
// scalar value with a tolerance, or a figure-shape predicate.
type Expectation struct {
	// Query names the analysis query producing the artifact.
	Query string `json:"query"`
	// Metric names a scalar of the artifact (analysis.ArtifactScalars)
	// for value/min/ratio-ge checks.
	Metric string `json:"metric,omitempty"`
	// Series names a series of the artifact (analysis.ArtifactSeries)
	// for shape checks.
	Series string `json:"series,omitempty"`
	// Check selects the predicate (Check* constants).
	Check string `json:"check"`
	// Value is the observed scalar for value/min checks.
	Value float64 `json:"value,omitempty"`
	// Scaling is the value's scale behavior (Scale* constants; empty =
	// invariant).
	Scaling string `json:"scaling,omitempty"`
	// Ref names the comparison scalar ("query/metric") for ratio-ge.
	Ref string `json:"ref,omitempty"`
	// Ratio parameterizes the shape checks (see the Check* docs).
	Ratio float64 `json:"ratio,omitempty"`
	// Skip drops this many leading series points before a shape check
	// (the greedy campaign's day-one harvest ramp).
	Skip int `json:"skip,omitempty"`
	// Tol bounds value checks and the nondecreasing slack.
	Tol Tolerance `json:"tolerance,omitzero"`
	// Note records provenance: the paper sentence, figure or
	// repro-calibration decision behind the expectation.
	Note string `json:"note,omitempty"`
}

// label is the expectation's row identity in reports and error
// messages: query/metric, query/series, or just the query.
func (e Expectation) label() string {
	switch {
	case e.Metric != "":
		return e.Query + "/" + e.Metric
	case e.Series != "":
		return e.Query + "/" + e.Series
	}
	return e.Query
}

// validate rejects structurally malformed expectations eagerly, so a
// typoed dataset fails at parse time, not mid-diff.
func (e Expectation) validate() error {
	if e.Query == "" {
		return fmt.Errorf("calibrate: expectation %q: missing query", e.label())
	}
	switch e.Check {
	case CheckValue, CheckMin:
		if e.Metric == "" {
			return fmt.Errorf("calibrate: %s: %q check needs a metric", e.label(), e.Check)
		}
	case CheckNonDecreasing, CheckDecliningTrend, CheckSteady, CheckPeriodicDaily:
		if e.Series == "" {
			return fmt.Errorf("calibrate: %s: %q check needs a series", e.label(), e.Check)
		}
	case CheckRatioGE:
		if e.Metric == "" || e.Ref == "" {
			return fmt.Errorf("calibrate: %s: %q check needs a metric and a ref", e.label(), e.Check)
		}
		if _, _, err := splitRef(e.Ref); err != nil {
			return err
		}
	default:
		return fmt.Errorf("calibrate: %s: unknown check %q", e.label(), e.Check)
	}
	switch e.Scaling {
	case "", ScaleInvariant, ScaleLinear, ScaleFull:
	default:
		return fmt.Errorf("calibrate: %s: unknown scaling %q", e.label(), e.Scaling)
	}
	return nil
}

// splitRef parses a "query/metric" reference.
func splitRef(ref string) (query, metric string, err error) {
	i := strings.LastIndexByte(ref, '/')
	if i <= 0 || i == len(ref)-1 {
		return "", "", fmt.Errorf("calibrate: ref %q is not query/metric", ref)
	}
	return ref[:i], ref[i+1:], nil
}

// CampaignObserved is one campaign's expectation list, in report order.
type CampaignObserved struct {
	Expect []Expectation `json:"expect"`
}

// Dataset is a versioned observed dataset keyed by campaign name.
type Dataset struct {
	// Version numbers the dataset's revision; reports carry it so a
	// calibration result names the expectations it ran against.
	Version int `json:"version"`
	// Source says where the numbers come from.
	Source string `json:"source,omitempty"`
	// Campaigns keys expectation lists by campaign name (meta.Name).
	Campaigns map[string]*CampaignObserved `json:"campaigns"`
}

// Validate checks every expectation (see Expectation.validate).
func (ds *Dataset) Validate() error {
	for _, name := range slices.Sorted(maps.Keys(ds.Campaigns)) {
		for _, e := range ds.Campaigns[name].Expect {
			if err := e.validate(); err != nil {
				return fmt.Errorf("campaign %q: %w", name, err)
			}
		}
	}
	return nil
}

// ParseDataset decodes a dataset from JSON, rejecting unknown fields
// (a typoed tolerance key must not silently vanish) and malformed
// expectations.
func ParseDataset(data []byte) (*Dataset, error) {
	var ds Dataset
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ds); err != nil {
		return nil, fmt.Errorf("calibrate: decoding dataset: %w", err)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return &ds, nil
}

// Plan builds the analysis plan covering exactly the queries the
// dataset's expectations for one campaign reference (including ratio
// refs), sorted — calibration never computes artifacts it will not
// check. The seed matters for the subset estimators; calibration pins
// it like repro.DefaultAnalyzeOptions.
func (ds *Dataset) Plan(campaign string, opt analysis.QueryOptions) (analysis.Plan, error) {
	c := ds.Campaigns[campaign]
	if c == nil {
		return analysis.Plan{}, fmt.Errorf("%w %q (dataset covers: %v)",
			ErrUnknownCampaign, campaign, slices.Sorted(maps.Keys(ds.Campaigns)))
	}
	seen := map[string]bool{}
	var names []string
	add := func(q string) {
		if q != "" && !seen[q] {
			seen[q] = true
			names = append(names, q)
		}
	}
	for _, e := range c.Expect {
		add(e.Query)
		if e.Ref != "" {
			if rq, _, err := splitRef(e.Ref); err == nil {
				add(rq)
			}
		}
	}
	slices.Sort(names)
	return analysis.NewPlan(opt, names...), nil
}

// PaperObserved is the built-in observed dataset for the paper's two
// campaigns. The headline counts the paper states outright — 24
// honeypots for 32 days sharing 4 files drawing more than 110,000
// distinct peers; one greedy honeypot for 15 days accumulating 3,175
// shared files — are encoded as paper-sourced; values the paper does
// not report numerically (the distributed campaign's distinct-file
// count, which in the reproduction saturates the simulated catalog's
// library region) are repro calibration targets, and say so in their
// notes. Figure shapes (growth slope, diurnal HELLO cycle, strategy-
// group ordering, subset-curve monotonicity) are encoded as
// scale-free predicates, which is what a reduced-scale CI run leans
// on where counts do not extrapolate.
func PaperObserved() *Dataset {
	return &Dataset{
		Version: 1,
		Source:  "Allali, Latapy & Magnien, \"Measurement of eDonkey activity with distributed honeypots\" (IPDPS/HotP2P 2009), Table I and Figs 2-12",
		Campaigns: map[string]*CampaignObserved{
			"distributed": {Expect: []Expectation{
				{Query: "table-i", Metric: "honeypots", Check: CheckValue, Value: 24,
					Note: "Table I: 24 PlanetLab honeypots"},
				{Query: "table-i", Metric: "duration_days", Check: CheckValue, Value: 32,
					Note: "Table I: 32-day measurement"},
				{Query: "table-i", Metric: "shared_files", Check: CheckValue, Value: 4,
					Note: "Table I: 4 advertised bait files"},
				{Query: "table-i", Metric: "distinct_peers", Check: CheckValue, Value: 110_000,
					Scaling: ScaleLinear, Tol: Tolerance{Rel: 0.15},
					Note: "Table I: more than 110 thousand distinct peers; arrivals scale linearly"},
				{Query: "table-i", Metric: "distinct_files", Check: CheckValue, Value: 28_000,
					Scaling: ScaleFull, Tol: Tolerance{Rel: 0.5},
					Note: "repro calibration target: the simulated peer libraries saturate the catalog's popular region at full scale; not a paper-reported count"},
				{Query: "peer-growth", Series: "cumulative", Check: CheckNonDecreasing,
					Note: "Fig 2: cumulative distinct peers never decrease"},
				{Query: "peer-growth", Series: "new", Check: CheckDecliningTrend, Ratio: 0.75,
					Note: "Fig 2: daily new-peer counts decline as the campaign ages"},
				{Query: "hourly-hello", Series: "hourly", Check: CheckPeriodicDaily, Ratio: 0.2,
					Note: "Fig 4: HELLO arrivals follow a daily cycle"},
				{Query: "hello-peers-by-group", Metric: "final:random-content", Check: CheckRatioGE,
					Ref: "hello-peers-by-group/final:no-content", Ratio: 0.8,
					Note: "Fig 5: both strategy groups see similar HELLO populations"},
				{Query: "hello-peers-by-group", Metric: "final:no-content", Check: CheckRatioGE,
					Ref: "hello-peers-by-group/final:random-content", Ratio: 0.8,
					Note: "Fig 5: both strategy groups see similar HELLO populations"},
				{Query: "start-upload-peers-by-group", Metric: "final:random-content", Check: CheckRatioGE,
					Ref: "start-upload-peers-by-group/final:no-content", Ratio: 0.9,
					Note: "Fig 6: content-bearing honeypots keep at least parity in START-UPLOAD peers"},
				{Query: "request-parts-by-group", Metric: "final:random-content", Check: CheckRatioGE,
					Ref: "request-parts-by-group/final:no-content", Ratio: 1.2,
					Note: "Fig 7: honeypots advertising content draw clearly more REQUEST-PART traffic"},
				{Query: "honeypot-subsets", Series: "avg", Check: CheckNonDecreasing, Tol: Tolerance{Rel: 0.02},
					Note: "Fig 10: average union size grows with the subset size"},
				{Query: "honeypot-subsets", Metric: "final_avg", Check: CheckRatioGE,
					Ref: "table-i/distinct_peers", Ratio: 0.99,
					Note: "Fig 10: the full fleet's union is the campaign's distinct-peer total"},
			}},
			"greedy": {Expect: []Expectation{
				{Query: "table-i", Metric: "honeypots", Check: CheckValue, Value: 1,
					Note: "Table I: a single greedy honeypot"},
				{Query: "table-i", Metric: "duration_days", Check: CheckValue, Value: 15,
					Note: "Table I: 15-day measurement"},
				{Query: "table-i", Metric: "shared_files", Check: CheckValue, Value: 3_175,
					Scaling: ScaleFull, Tol: Tolerance{Rel: 0.05},
					Note: "Table I: 3,175 files accumulated by adopting queried names; the ramp is arrival-coupled, so only a full-scale run reaches it"},
				{Query: "peer-growth", Series: "cumulative", Check: CheckNonDecreasing,
					Note: "Fig 3: cumulative distinct peers never decrease"},
				{Query: "peer-growth", Series: "new", Check: CheckSteady, Skip: 1, Ratio: 0.6,
					Note: "Fig 3: near-linear growth after the day-one harvest ramp"},
				{Query: "popular-file-subsets", Series: "avg", Check: CheckNonDecreasing, Tol: Tolerance{Rel: 0.02},
					Note: "Fig 12: average union size grows with the file-subset size"},
				{Query: "random-file-subsets", Series: "avg", Check: CheckNonDecreasing, Tol: Tolerance{Rel: 0.02},
					Note: "Fig 11: average union size grows with the file-subset size"},
				{Query: "popular-file-subsets", Metric: "first_avg", Check: CheckRatioGE,
					Ref: "random-file-subsets/first_avg", Ratio: 0.9,
					Note: "Figs 11-12 ordering: a popular file attracts at least as many peers as a random one"},
				{Query: "co-interest", Metric: "mean_files_per_peer", Check: CheckMin, Value: 1.2,
					Note: "repro calibration target (§V future work): peers query several files each, so the co-interest graph is dense"},
			}},
		},
	}
}
