package client

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/ed2k"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/wire"
)

var t0 = time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)

type world struct {
	loop *des.Loop
	net  *netsim.Network
	srv  *server.Server
}

func newWorld(t *testing.T) *world {
	t.Helper()
	loop := des.NewLoop(t0, 21)
	nw := netsim.New(loop, netsim.DefaultConfig())
	srv := server.New(nw.NewHost("server"), server.DefaultConfig("big-server"))
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	return &world{loop: loop, net: nw, srv: srv}
}

func (w *world) settle() {
	w.loop.RunUntil(w.loop.Now().Add(30 * time.Second))
}

func (w *world) newClient(t *testing.T, label string, port uint16, browseable bool) *Client {
	t.Helper()
	host := w.net.NewHost(label)
	c := New(host, Config{
		Label:      label,
		UserHash:   ed2k.NewUserHash(label),
		Port:       port,
		Browseable: browseable,
	})
	if err := c.Listen(); err != nil {
		t.Fatal(err)
	}
	return c
}

func (w *world) connect(t *testing.T, c *Client, hooks ServerHooks) {
	t.Helper()
	c.ConnectServer(w.srv.Addr(), hooks)
	w.settle()
	if !c.Connected() {
		t.Fatalf("%s failed to connect", c.Config().Label)
	}
}

func TestLoginAndIDAssignment(t *testing.T) {
	w := newWorld(t)
	c := w.newClient(t, "alice", 4662, true)
	var gotID ed2k.ClientID
	w.connect(t, c, ServerHooks{OnConnected: func(id ed2k.ClientID) { gotID = id }})
	if gotID.Low() {
		t.Errorf("listening client got low ID %v", gotID)
	}
	if c.ClientID() != gotID {
		t.Error("ClientID() mismatch")
	}
}

func TestLowIDClient(t *testing.T) {
	w := newWorld(t)
	c := w.newClient(t, "natted", 0, false) // port 0: never listens
	w.connect(t, c, ServerHooks{})
	if !c.ClientID().Low() {
		t.Errorf("non-listening client got high ID %v", c.ClientID())
	}
}

func TestShareAndGetSources(t *testing.T) {
	w := newWorld(t)
	provider := w.newClient(t, "prov", 4662, true)
	w.connect(t, provider, ServerHooks{})
	file := SharedFile{Hash: ed2k.SyntheticHash("m"), Name: "movie.avi", Size: 700 << 20, Type: "Video"}
	provider.Share(file)
	w.settle()

	var sources []wire.Endpoint
	seeker := w.newClient(t, "seek", 4663, true)
	w.connect(t, seeker, ServerHooks{
		OnSources: func(h ed2k.Hash, src []wire.Endpoint) {
			if h == file.Hash {
				sources = src
			}
		},
	})
	seeker.GetSources(file.Hash)
	w.settle()
	if len(sources) != 1 {
		t.Fatalf("sources = %v", sources)
	}
	if sources[0].Port != 4662 {
		t.Errorf("provider port %d", sources[0].Port)
	}
}

func TestShareDeduplicates(t *testing.T) {
	w := newWorld(t)
	c := w.newClient(t, "c", 4662, true)
	f := SharedFile{Hash: ed2k.SyntheticHash("x"), Name: "x.mp3", Size: 5 << 20, Type: "Audio"}
	c.Share(f)
	c.Share(f)
	if len(c.Shared()) != 1 {
		t.Errorf("shared list has %d entries", len(c.Shared()))
	}
	got, ok := c.SharedFile(f.Hash)
	if !ok || got.Name != "x.mp3" {
		t.Error("SharedFile lookup failed")
	}
}

func TestPeerHandshakeAndBrowse(t *testing.T) {
	w := newWorld(t)
	alice := w.newClient(t, "alice", 4662, true)
	bob := w.newClient(t, "bob", 4663, true)
	w.connect(t, alice, ServerHooks{})
	w.connect(t, bob, ServerHooks{})
	bob.Share(SharedFile{Hash: ed2k.SyntheticHash("b1"), Name: "bobs.song.mp3", Size: 4 << 20, Type: "Audio"})
	bob.Share(SharedFile{Hash: ed2k.SyntheticHash("b2"), Name: "bobs.movie.avi", Size: 700 << 20, Type: "Video"})

	var helloAnswer PeerInfo
	var browse []wire.FileEntry
	alice.DialPeer(netip.AddrPortFrom(bob.Host().Addr(), 4663), func(ps *PeerSession, err error) {
		if err != nil {
			t.Errorf("dial peer: %v", err)
			return
		}
		ps.SetHooks(PeerHooks{
			OnHelloAnswer: func(info PeerInfo) { helloAnswer = info },
			OnSharedList:  func(files []wire.FileEntry) { browse = files },
		})
		ps.SendHello()
		ps.AskSharedFiles()
	})
	w.settle()

	if helloAnswer.UserHash != bob.Config().UserHash {
		t.Errorf("hello answer from %v", helloAnswer.UserHash)
	}
	if helloAnswer.Name != "aMule 2.2.2" {
		t.Errorf("remote name %q", helloAnswer.Name)
	}
	if len(browse) != 2 {
		t.Fatalf("browse returned %d files", len(browse))
	}
	if browse[0].Name() != "bobs.song.mp3" {
		t.Errorf("browse[0] = %q", browse[0].Name())
	}
}

func TestBrowseDisabled(t *testing.T) {
	w := newWorld(t)
	alice := w.newClient(t, "alice", 4662, true)
	bob := w.newClient(t, "bob", 4663, false) // browse disabled
	bob.Share(SharedFile{Hash: ed2k.SyntheticHash("b1"), Name: "private.mp3", Size: 1 << 20, Type: "Audio"})

	got := -1
	alice.DialPeer(netip.AddrPortFrom(bob.Host().Addr(), 4663), func(ps *PeerSession, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		ps.SetHooks(PeerHooks{OnSharedList: func(files []wire.FileEntry) { got = len(files) }})
		ps.SendHello()
		ps.AskSharedFiles()
	})
	w.settle()
	if got != 0 {
		t.Errorf("browse-disabled peer revealed %d files", got)
	}
}

func TestUploadConversation(t *testing.T) {
	// Full Fig. 1 exchange: HELLO → HELLO-ANSWER → START-UPLOAD →
	// ACCEPT-UPLOAD → REQUEST-PART → SENDING-PART.
	w := newWorld(t)
	provider := w.newClient(t, "prov", 4662, true)
	file := SharedFile{Hash: ed2k.SyntheticHash("f"), Name: "f.avi", Size: 3 << 20, Type: "Video"}
	provider.Share(file)

	// Provider-side policy: accept uploads, serve zero bytes as content.
	provider.OnPeerSession = func(ps *PeerSession) {
		ps.SetHooks(PeerHooks{
			OnStartUpload: func(h ed2k.Hash) {
				if h == file.Hash {
					ps.AcceptUpload()
				}
			},
			OnRequestParts: func(req *wire.RequestParts) {
				for _, r := range req.Ranges() {
					ps.SendPart(req.Hash, r[0], r[1], make([]byte, r[1]-r[0]))
				}
			},
		})
	}

	leech := w.newClient(t, "leech", 4663, true)
	var accepted bool
	var gotParts []*wire.SendingPart
	var fileStatus *wire.FileStatus
	leech.DialPeer(netip.AddrPortFrom(provider.Host().Addr(), 4662), func(ps *PeerSession, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		ps.SetHooks(PeerHooks{
			OnAcceptUpload: func() {
				accepted = true
				ps.RequestParts(file.Hash, [2]uint32{0, 1000}, [2]uint32{1000, 2000})
			},
			OnSendingPart: func(p *wire.SendingPart) { gotParts = append(gotParts, p) },
			OnMessage: func(m wire.Message) {
				if fs, ok := m.(*wire.FileStatus); ok {
					fileStatus = fs
				}
			},
		})
		ps.SendHello()
		ps.StartUpload(file.Hash)
	})
	w.settle()

	if !accepted {
		t.Fatal("upload not accepted")
	}
	if fileStatus == nil || fileStatus.Parts != 1 {
		t.Errorf("file status: %+v", fileStatus)
	}
	if len(gotParts) != 2 {
		t.Fatalf("got %d parts", len(gotParts))
	}
	if gotParts[0].Start != 0 || gotParts[0].End != 1000 || len(gotParts[0].Data) != 1000 {
		t.Errorf("part 0: [%d,%d) len %d", gotParts[0].Start, gotParts[0].End, len(gotParts[0].Data))
	}
}

func TestStartUploadForUnknownFileStillSignalsHook(t *testing.T) {
	// The honeypot logs START-UPLOAD even for files it no longer
	// advertises; the engine must not suppress the hook.
	w := newWorld(t)
	p := w.newClient(t, "p", 4662, true)
	var got ed2k.Hash
	p.OnPeerSession = func(ps *PeerSession) {
		ps.SetHooks(PeerHooks{OnStartUpload: func(h ed2k.Hash) { got = h }})
	}
	q := w.newClient(t, "q", 4663, true)
	unknown := ed2k.SyntheticHash("unknown")
	q.DialPeer(netip.AddrPortFrom(p.Host().Addr(), 4662), func(ps *PeerSession, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		ps.SendHello()
		ps.Send(&wire.StartUploadReq{Hash: unknown})
	})
	w.settle()
	if got != unknown {
		t.Errorf("hook got %v", got)
	}
}

func TestRequestFileName(t *testing.T) {
	w := newWorld(t)
	p := w.newClient(t, "p", 4662, true)
	f := SharedFile{Hash: ed2k.SyntheticHash("named"), Name: "the name.avi", Size: 1 << 20, Type: "Video"}
	p.Share(f)
	q := w.newClient(t, "q", 4663, true)
	var gotName string
	var noFile bool
	q.DialPeer(netip.AddrPortFrom(p.Host().Addr(), 4662), func(ps *PeerSession, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		ps.SetHooks(PeerHooks{OnMessage: func(m wire.Message) {
			switch msg := m.(type) {
			case *wire.FileReqAnswer:
				gotName = msg.Name
			case *wire.FileReqAnsNoFile:
				noFile = true
			}
		}})
		ps.SendHello()
		ps.Send(&wire.RequestFileName{Hash: f.Hash})
		ps.Send(&wire.RequestFileName{Hash: ed2k.SyntheticHash("missing")})
	})
	w.settle()
	if gotName != "the name.avi" {
		t.Errorf("file name answer %q", gotName)
	}
	if !noFile {
		t.Error("missing file not answered with FILE-NOT-FOUND")
	}
}

func TestServerDisconnectHook(t *testing.T) {
	w := newWorld(t)
	c := w.newClient(t, "c", 4662, true)
	disconnected := false
	w.connect(t, c, ServerHooks{OnDisconnected: func(err error) { disconnected = true }})
	w.srv.Stop()
	// Crash the server host to sever the session.
	if h, ok := w.net.HostAt(w.srv.Addr().Addr()); ok {
		h.Crash()
	}
	w.settle()
	if !disconnected {
		t.Error("no disconnect notification")
	}
	if c.Connected() {
		t.Error("client still believes it is connected")
	}
}

func TestKeepAliveRefreshesSession(t *testing.T) {
	loop := des.NewLoop(t0, 5)
	nw := netsim.New(loop, netsim.DefaultConfig())
	cfg := server.DefaultConfig("s")
	cfg.SessionTimeout = time.Hour
	srv := server.New(nw.NewHost("server"), cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	host := nw.NewHost("c")
	c := New(host, Config{
		Label: "c", UserHash: ed2k.NewUserHash("c"), Port: 4662,
		KeepAlive: 20 * time.Minute,
	})
	if err := c.Listen(); err != nil {
		t.Fatal(err)
	}
	c.ConnectServer(srv.Addr(), ServerHooks{})
	loop.RunUntil(t0.Add(30 * time.Second))
	if !c.Connected() {
		t.Fatal("not connected")
	}
	// After 5 silent-but-for-keep-alive hours the session must survive.
	loop.RunUntil(t0.Add(5 * time.Hour))
	if srv.Users() != 1 {
		t.Errorf("keep-alive failed: users=%d", srv.Users())
	}
	c.Close()
	loop.RunUntil(t0.Add(6 * time.Hour))
	if srv.Users() != 0 {
		t.Errorf("close did not drop session: users=%d", srv.Users())
	}
}

func TestQueueRankAndCancel(t *testing.T) {
	w := newWorld(t)
	provider := w.newClient(t, "busy", 4662, true)
	file := SharedFile{Hash: ed2k.SyntheticHash("queued"), Name: "q.avi", Size: 1 << 20, Type: "Video"}
	provider.Share(file)
	provider.OnPeerSession = func(ps *PeerSession) {
		ps.SetHooks(PeerHooks{
			OnStartUpload: func(h ed2k.Hash) { ps.SendQueueRank(17) },
		})
	}
	leech := w.newClient(t, "leech", 4663, true)
	var rank uint32
	leech.DialPeer(netip.AddrPortFrom(provider.Host().Addr(), 4662), func(ps *PeerSession, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		ps.SetHooks(PeerHooks{OnQueueRank: func(r uint32) {
			rank = r
			ps.Send(&wire.CancelTransfer{})
			ps.Close()
		}})
		ps.SendHello()
		ps.StartUpload(file.Hash)
	})
	w.settle()
	if rank != 17 {
		t.Errorf("queue rank = %d", rank)
	}
}

func TestEndOfDownloadHook(t *testing.T) {
	w := newWorld(t)
	provider := w.newClient(t, "prov2", 4662, true)
	file := SharedFile{Hash: ed2k.SyntheticHash("eod"), Name: "e.mp3", Size: 1 << 20, Type: "Audio"}
	provider.Share(file)
	var got ed2k.Hash
	provider.OnPeerSession = func(ps *PeerSession) {
		ps.SetHooks(PeerHooks{OnEndOfDownload: func(h ed2k.Hash) { got = h }})
	}
	leech := w.newClient(t, "leech2", 4663, true)
	leech.DialPeer(netip.AddrPortFrom(provider.Host().Addr(), 4662), func(ps *PeerSession, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		ps.SendHello()
		ps.Send(&wire.EndOfDownload{Hash: file.Hash})
	})
	w.settle()
	if got != file.Hash {
		t.Errorf("EndOfDownload hook got %v", got)
	}
}

func TestHashSetRequestAnswered(t *testing.T) {
	w := newWorld(t)
	provider := w.newClient(t, "prov3", 4662, true)
	// Multi-part file: hashset has >1 entries.
	file := SharedFile{Hash: ed2k.SyntheticHash("hs"), Name: "big.avi", Size: 3 * 9728000, Type: "Video"}
	provider.Share(file)
	leech := w.newClient(t, "leech3", 4663, true)
	var parts int
	leech.DialPeer(netip.AddrPortFrom(provider.Host().Addr(), 4662), func(ps *PeerSession, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		ps.SetHooks(PeerHooks{OnMessage: func(m wire.Message) {
			if hs, ok := m.(*wire.HashSetAnswer); ok {
				parts = len(hs.Parts)
			}
		}})
		ps.SendHello()
		ps.Send(&wire.HashSetRequest{Hash: file.Hash})
	})
	w.settle()
	if parts != 3 {
		t.Errorf("hashset has %d parts, want 3", parts)
	}
}

func TestListenTwiceIsNoop(t *testing.T) {
	w := newWorld(t)
	c := w.newClient(t, "dup", 4662, true)
	if err := c.Listen(); err != nil {
		t.Fatalf("second Listen: %v", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	w := newWorld(t)
	c := w.newClient(t, "cls", 4662, true)
	w.connect(t, c, ServerHooks{})
	c.Close()
	c.Close() // must not panic
	w.settle()
	if c.Connected() {
		t.Error("still connected after Close")
	}
}
