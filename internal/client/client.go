// Package client implements the eDonkey client engine: the server session
// (login, OFFER-FILES announcements and keep-alives, GET-SOURCES and
// SEARCH queries) and peer sessions (the Fig. 1 message exchange of the
// paper: HELLO → HELLO-ANSWER → START-UPLOAD → ACCEPT-UPLOAD →
// REQUEST-PART → SENDING-PART, plus the browse extension).
//
// The honeypot (package honeypot) and the simulated peer population
// (package peersim) are both thin layers over this engine, mirroring how
// the paper built its honeypot by modifying the aMule client core.
package client

import (
	"net/netip"
	"time"

	"repro/internal/ed2k"
	"repro/internal/transport"
	"repro/internal/wire"
)

// SharedFile is a file the client advertises or serves.
type SharedFile struct {
	Hash ed2k.Hash
	Name string
	Size int64
	Type string
}

// Entry converts to the wire representation.
func (f SharedFile) Entry() wire.FileEntry {
	return wire.NewFileEntry(f.Hash, f.Name, f.Size, f.Type)
}

// Config describes a client.
type Config struct {
	// Label names the client in diagnostics.
	Label string
	// UserHash is the stable cross-session identity.
	UserHash ed2k.Hash
	// Name is the advertised client name (e.g. "aMule 2.2.2").
	Name string
	// Version is the protocol version tag.
	Version uint32
	// Port is the peer-connection listening port; 0 means the client does
	// not listen (it will be assigned a low ID by probing servers).
	Port uint16
	// Browseable controls whether ASK-SHARED-FILES is answered with the
	// real list (the paper notes many peers disable this).
	Browseable bool
	// NoOffer suppresses OFFER-FILES announcements of the shared list to
	// the server: the list is then only visible through browsing. The
	// simulated population uses it so that honeypots remain the only
	// indexed providers of the files they advertise (see DESIGN.md).
	NoOffer bool
	// KeepAlive is the OFFER-FILES refresh interval (empty offer).
	KeepAlive time.Duration
}

// ServerHooks observe the server session.
type ServerHooks struct {
	// OnConnected fires after ID-CHANGE with the assigned ID.
	OnConnected func(id ed2k.ClientID)
	// OnSources fires for each FOUND-SOURCES reply.
	OnSources func(file ed2k.Hash, sources []wire.Endpoint)
	// OnSearchResult fires for each SEARCH-RESULT reply.
	OnSearchResult func(files []wire.FileEntry)
	// OnStatus fires for SERVER-STATUS updates.
	OnStatus func(users, files uint32)
	// OnDisconnected fires when the server link dies (nil = graceful).
	OnDisconnected func(err error)
}

// Client is the engine instance bound to one host.
type Client struct {
	host transport.Host
	cfg  Config

	serverConn  transport.Conn
	serverAddr  netip.AddrPort
	serverHooks ServerHooks
	clientID    ed2k.ClientID
	connected   bool
	keepAlive   transport.Timer

	shared      []SharedFile
	sharedByKey map[ed2k.Hash]int

	listener transport.Listener
	// OnPeerSession is invoked for every inbound peer session right after
	// creation, before any message is processed; install hooks there.
	OnPeerSession func(ps *PeerSession)
}

// New creates a client on host. Call Listen and/or ConnectServer next.
func New(host transport.Host, cfg Config) *Client {
	if cfg.Name == "" {
		cfg.Name = "aMule 2.2.2"
	}
	if cfg.Version == 0 {
		cfg.Version = 0x3C
	}
	return &Client{host: host, cfg: cfg, sharedByKey: make(map[ed2k.Hash]int)}
}

// Host returns the underlying transport host.
func (c *Client) Host() transport.Host { return c.host }

// Config returns the client configuration.
func (c *Client) Config() Config { return c.cfg }

// ClientID returns the server-assigned ID (zero before login completes).
func (c *Client) ClientID() ed2k.ClientID { return c.clientID }

// Connected reports whether the server session is up.
func (c *Client) Connected() bool { return c.connected }

// ServerAddr returns the current server address.
func (c *Client) ServerAddr() netip.AddrPort { return c.serverAddr }

// Listen opens the peer port (no-op when cfg.Port is 0).
func (c *Client) Listen() error {
	if c.cfg.Port == 0 || c.listener != nil {
		return nil
	}
	l, err := c.host.Listen(c.cfg.Port, wire.PeerSpace, func(conn transport.Conn) {
		ps := c.newPeerSession(conn, true)
		if c.OnPeerSession != nil {
			c.OnPeerSession(ps)
		}
		ps.attach()
	})
	if err != nil {
		return err
	}
	c.listener = l
	return nil
}

// Close tears down the client: server link, listener, keep-alive.
func (c *Client) Close() {
	if c.keepAlive != nil {
		c.keepAlive.Stop()
		c.keepAlive = nil
	}
	if c.serverConn != nil {
		c.serverConn.Close()
		c.serverConn = nil
		c.connected = false
	}
	if c.listener != nil {
		c.listener.Close()
		c.listener = nil
	}
}

// ---------------------------------------------------------------------------
// Server session.

// ConnectServer dials the directory server and logs in.
func (c *Client) ConnectServer(addr netip.AddrPort, hooks ServerHooks) {
	c.serverAddr = addr
	c.serverHooks = hooks
	c.host.Dial(addr, wire.ServerSpace, func(conn transport.Conn, err error) {
		if err != nil {
			if hooks.OnDisconnected != nil {
				hooks.OnDisconnected(err)
			}
			return
		}
		c.serverConn = conn
		conn.SetHooks(transport.ConnHooks{
			OnMessage: c.onServerMessage,
			OnClose: func(err error) {
				c.connected = false
				c.serverConn = nil
				if c.keepAlive != nil {
					c.keepAlive.Stop()
					c.keepAlive = nil
				}
				if hooks.OnDisconnected != nil {
					hooks.OnDisconnected(err)
				}
			},
		})
		conn.Send(&wire.LoginRequest{
			UserHash: c.cfg.UserHash,
			Port:     c.cfg.Port,
			Tags: wire.Tags{
				wire.StringTag(wire.TagName, c.cfg.Name),
				wire.UintTag(wire.TagVersion, c.cfg.Version),
				wire.UintTag(wire.TagPort, uint32(c.cfg.Port)),
			},
		})
	})
}

func (c *Client) onServerMessage(m wire.Message) {
	switch msg := m.(type) {
	case *wire.IDChange:
		c.clientID = ed2k.ClientID(msg.ClientID)
		c.connected = true
		if len(c.shared) > 0 && !c.cfg.NoOffer {
			c.sendOffer(c.shared)
		}
		c.scheduleKeepAlive()
		if c.serverHooks.OnConnected != nil {
			c.serverHooks.OnConnected(c.clientID)
		}
	case *wire.FoundSources:
		if c.serverHooks.OnSources != nil {
			c.serverHooks.OnSources(msg.Hash, msg.Sources)
		}
	case *wire.SearchResult:
		if c.serverHooks.OnSearchResult != nil {
			c.serverHooks.OnSearchResult(msg.Files)
		}
	case *wire.ServerStatus:
		if c.serverHooks.OnStatus != nil {
			c.serverHooks.OnStatus(msg.Users, msg.Files)
		}
	case *wire.ServerMessage, *wire.ServerIdent, *wire.ServerList, *wire.Reject:
		// informational
	}
}

func (c *Client) scheduleKeepAlive() {
	if c.cfg.KeepAlive <= 0 {
		return
	}
	if c.keepAlive != nil {
		c.keepAlive.Stop()
	}
	c.keepAlive = c.host.After(c.cfg.KeepAlive, func() {
		if c.connected && c.serverConn != nil {
			c.serverConn.Send(&wire.OfferFiles{}) // keep-alive form
			c.scheduleKeepAlive()
		}
	})
}

func (c *Client) sendOffer(files []SharedFile) {
	if c.serverConn == nil {
		return
	}
	offer := &wire.OfferFiles{Files: make([]wire.FileEntry, 0, len(files))}
	for _, f := range files {
		offer.Files = append(offer.Files, f.Entry())
	}
	c.serverConn.Send(offer)
}

// Share adds files to the shared list and announces new ones to the
// server. Duplicates (by hash) are ignored.
func (c *Client) Share(files ...SharedFile) {
	var fresh []SharedFile
	for _, f := range files {
		if _, dup := c.sharedByKey[f.Hash]; dup {
			continue
		}
		c.sharedByKey[f.Hash] = len(c.shared)
		c.shared = append(c.shared, f)
		fresh = append(fresh, f)
	}
	if len(fresh) > 0 && c.connected && !c.cfg.NoOffer {
		c.sendOffer(fresh)
	}
}

// Shared returns the shared list (callers must not mutate it).
func (c *Client) Shared() []SharedFile { return c.shared }

// SharedFile looks up a shared file by hash.
func (c *Client) SharedFile(h ed2k.Hash) (SharedFile, bool) {
	i, ok := c.sharedByKey[h]
	if !ok {
		return SharedFile{}, false
	}
	return c.shared[i], true
}

// GetSources asks the server for providers of h.
func (c *Client) GetSources(h ed2k.Hash) {
	if c.serverConn != nil {
		c.serverConn.Send(&wire.GetSources{Hash: h})
	}
}

// Search sends a keyword query.
func (c *Client) Search(query string) {
	if c.serverConn != nil {
		c.serverConn.Send(&wire.SearchRequest{Query: query})
	}
}

// ---------------------------------------------------------------------------
// Peer sessions.

// PeerInfo is what a HELLO/HELLO-ANSWER reveals about the remote peer.
type PeerInfo struct {
	UserHash   ed2k.Hash
	ClientID   uint32
	Port       uint16
	Name       string
	Version    uint32
	ServerIP   uint32
	ServerPort uint16
}

func peerInfoFrom(h ed2k.Hash, id uint32, port uint16, tags wire.Tags, sip uint32, sport uint16) PeerInfo {
	return PeerInfo{
		UserHash: h, ClientID: id, Port: port,
		Name:     tags.Str(wire.TagName),
		Version:  tags.Uint(wire.TagVersion),
		ServerIP: sip, ServerPort: sport,
	}
}

// PeerHooks observe and steer a peer session. All hooks are optional.
// Built-in protocol behavior (HELLO-ANSWER, browse answers, file-name
// answers, FILE-STATUS) runs first; hooks run after it.
type PeerHooks struct {
	OnHello         func(info PeerInfo)
	OnHelloAnswer   func(info PeerInfo)
	OnStartUpload   func(file ed2k.Hash)
	OnAcceptUpload  func()
	OnQueueRank     func(rank uint32)
	OnRequestParts  func(req *wire.RequestParts)
	OnSendingPart   func(part *wire.SendingPart)
	OnSharedList    func(files []wire.FileEntry)
	OnEndOfDownload func(file ed2k.Hash)
	OnMessage       func(m wire.Message) // every message, after specific hooks
	OnClose         func(err error)
}

// PeerSession is one client<->client conversation.
type PeerSession struct {
	client  *Client
	conn    transport.Conn
	inbound bool
	hooks   PeerHooks

	remote      PeerInfo
	gotHello    bool
	currentFile ed2k.Hash
	closed      bool
}

func (c *Client) newPeerSession(conn transport.Conn, inbound bool) *PeerSession {
	return &PeerSession{client: c, conn: conn, inbound: inbound}
}

// attach installs the connection hooks; called after the owner had a
// chance to set session hooks.
func (ps *PeerSession) attach() {
	ps.conn.SetHooks(transport.ConnHooks{
		OnMessage: ps.onMessage,
		OnClose: func(err error) {
			ps.closed = true
			if ps.hooks.OnClose != nil {
				ps.hooks.OnClose(err)
			}
		},
	})
}

// SetHooks installs the observer hooks. For inbound sessions call it from
// Client.OnPeerSession; for outbound sessions call it before any reply
// can arrive (immediately after DialPeer's callback fires).
func (ps *PeerSession) SetHooks(h PeerHooks) { ps.hooks = h }

// Remote returns what the remote peer declared about itself.
func (ps *PeerSession) Remote() PeerInfo { return ps.remote }

// Inbound reports whether the remote peer initiated the session.
func (ps *PeerSession) Inbound() bool { return ps.inbound }

// RemoteAddr returns the remote endpoint.
func (ps *PeerSession) RemoteAddr() netip.AddrPort { return ps.conn.RemoteAddr() }

// Closed reports whether the session ended.
func (ps *PeerSession) Closed() bool { return ps.closed }

// Close ends the session.
func (ps *PeerSession) Close() {
	if !ps.closed {
		ps.closed = true
		ps.conn.Close()
	}
}

// DialPeer opens an outbound peer session. done receives the session
// (hooks not yet installed — install them in done) or an error.
func (c *Client) DialPeer(addr netip.AddrPort, done func(*PeerSession, error)) {
	c.host.Dial(addr, wire.PeerSpace, func(conn transport.Conn, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		ps := c.newPeerSession(conn, false)
		done(ps, nil)
		ps.attach()
	})
}

func (c *Client) helloBody() (ed2k.Hash, uint32, uint16, wire.Tags, uint32, uint16) {
	var sip uint32
	var sport uint16
	if c.serverAddr.IsValid() {
		if ep, err := wire.EndpointFromAddrPort(c.serverAddr); err == nil {
			sip, sport = ep.IP, ep.Port
		}
	}
	tags := wire.Tags{
		wire.StringTag(wire.TagName, c.cfg.Name),
		wire.UintTag(wire.TagVersion, c.cfg.Version),
	}
	return c.cfg.UserHash, uint32(c.clientID), c.cfg.Port, tags, sip, sport
}

// SendHello starts the conversation on an outbound session.
func (ps *PeerSession) SendHello() {
	h, id, port, tags, sip, sport := ps.client.helloBody()
	ps.conn.Send(&wire.Hello{UserHash: h, ClientID: id, Port: port, Tags: tags, ServerIP: sip, ServerPort: sport})
}

// StartUpload requests an upload slot for file h (SET-REQ-FILE-ID then
// START-UPLOAD, as real clients do).
func (ps *PeerSession) StartUpload(h ed2k.Hash) {
	ps.conn.Send(&wire.SetReqFileID{Hash: h})
	ps.conn.Send(&wire.StartUploadReq{Hash: h})
}

// AcceptUpload grants the remote peer's upload request.
func (ps *PeerSession) AcceptUpload() { ps.conn.Send(&wire.AcceptUploadReq{}) }

// SendQueueRank reports a queue position instead of accepting.
func (ps *PeerSession) SendQueueRank(rank uint32) { ps.conn.Send(&wire.QueueRank{Rank: rank}) }

// RequestParts asks for up to three byte ranges of file h.
func (ps *PeerSession) RequestParts(h ed2k.Hash, ranges ...[2]uint32) {
	req := &wire.RequestParts{Hash: h}
	for i, r := range ranges {
		if i >= 3 {
			break
		}
		req.Start[i], req.End[i] = r[0], r[1]
	}
	ps.conn.Send(req)
}

// SendPart ships one content block.
func (ps *PeerSession) SendPart(h ed2k.Hash, start, end uint32, data []byte) {
	ps.conn.Send(&wire.SendingPart{Hash: h, Start: start, End: end, Data: data})
}

// AskSharedFiles requests the remote shared list (browse).
func (ps *PeerSession) AskSharedFiles() { ps.conn.Send(&wire.AskSharedFiles{}) }

// Send transmits an arbitrary message on the session.
func (ps *PeerSession) Send(m wire.Message) { ps.conn.Send(m) }

func (ps *PeerSession) onMessage(m wire.Message) {
	switch msg := m.(type) {
	case *wire.Hello:
		ps.remote = peerInfoFrom(msg.UserHash, msg.ClientID, msg.Port, msg.Tags, msg.ServerIP, msg.ServerPort)
		ps.gotHello = true
		// Built-in: answer the handshake.
		h, id, port, tags, sip, sport := ps.client.helloBody()
		ps.conn.Send(&wire.HelloAnswer{UserHash: h, ClientID: id, Port: port, Tags: tags, ServerIP: sip, ServerPort: sport})
		if ps.hooks.OnHello != nil {
			ps.hooks.OnHello(ps.remote)
		}
	case *wire.HelloAnswer:
		ps.remote = peerInfoFrom(msg.UserHash, msg.ClientID, msg.Port, msg.Tags, msg.ServerIP, msg.ServerPort)
		if ps.hooks.OnHelloAnswer != nil {
			ps.hooks.OnHelloAnswer(ps.remote)
		}
	case *wire.RequestFileName:
		if f, ok := ps.client.SharedFile(msg.Hash); ok {
			ps.conn.Send(&wire.FileReqAnswer{Hash: msg.Hash, Name: f.Name})
		} else {
			ps.conn.Send(&wire.FileReqAnsNoFile{Hash: msg.Hash})
		}
	case *wire.SetReqFileID:
		ps.currentFile = msg.Hash
		if f, ok := ps.client.SharedFile(msg.Hash); ok {
			parts := ed2k.NumParts(f.Size)
			bitmap := make([]byte, (parts+7)/8)
			for i := range bitmap {
				bitmap[i] = 0xFF
			}
			ps.conn.Send(&wire.FileStatus{Hash: msg.Hash, Parts: uint16(parts), Bitmap: bitmap})
		} else {
			ps.conn.Send(&wire.FileReqAnsNoFile{Hash: msg.Hash})
		}
	case *wire.StartUploadReq:
		file := msg.Hash
		if file.Zero() {
			file = ps.currentFile
		}
		if ps.hooks.OnStartUpload != nil {
			ps.hooks.OnStartUpload(file)
		}
	case *wire.AcceptUploadReq:
		if ps.hooks.OnAcceptUpload != nil {
			ps.hooks.OnAcceptUpload()
		}
	case *wire.QueueRank:
		if ps.hooks.OnQueueRank != nil {
			ps.hooks.OnQueueRank(msg.Rank)
		}
	case *wire.RequestParts:
		if ps.hooks.OnRequestParts != nil {
			ps.hooks.OnRequestParts(msg)
		}
	case *wire.SendingPart:
		if ps.hooks.OnSendingPart != nil {
			ps.hooks.OnSendingPart(msg)
		}
	case *wire.AskSharedFiles:
		// Built-in: honour the Browseable setting.
		ans := &wire.AskSharedFilesAnswer{}
		if ps.client.cfg.Browseable {
			for _, f := range ps.client.shared {
				ans.Files = append(ans.Files, f.Entry())
			}
		}
		ps.conn.Send(ans)
	case *wire.AskSharedFilesAnswer:
		if ps.hooks.OnSharedList != nil {
			ps.hooks.OnSharedList(msg.Files)
		}
	case *wire.EndOfDownload:
		if ps.hooks.OnEndOfDownload != nil {
			ps.hooks.OnEndOfDownload(msg.Hash)
		}
	case *wire.HashSetRequest:
		// The honeypot's synthetic files have no real content; answer
		// with a deterministic fake hashset as the random-content
		// strategy implies.
		if f, ok := ps.client.SharedFile(msg.Hash); ok {
			n := ed2k.NumParts(f.Size)
			parts := make([]ed2k.Hash, n)
			for i := range parts {
				parts[i] = ed2k.SyntheticHash(f.Hash.String() + "/part")
			}
			ps.conn.Send(&wire.HashSetAnswer{Hash: msg.Hash, Parts: parts})
		}
	}
	if ps.hooks.OnMessage != nil {
		ps.hooks.OnMessage(m)
	}
}
