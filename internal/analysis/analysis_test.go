package analysis

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/ed2k"
	"repro/internal/logging"
	"repro/internal/stats"
)

var t0 = time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)

// rec builds a test record at hour h.
func rec(h int, hp string, kind logging.Kind, peer string, file string) logging.Record {
	r := logging.Record{
		Time: t0.Add(time.Duration(h) * time.Hour), Honeypot: hp, Kind: kind, PeerIP: peer,
	}
	if file != "" {
		r.FileHash = ed2k.SyntheticHash(file)
	}
	return r
}

func TestComputeTableI(t *testing.T) {
	recs := []logging.Record{
		rec(1, "a", logging.KindHello, "0", ""),
		rec(2, "a", logging.KindHello, "1", ""),
		rec(3, "b", logging.KindHello, "0", ""),
		{
			Time: t0.Add(4 * time.Hour), Honeypot: "a", Kind: logging.KindSharedList, PeerIP: "1",
			Files: []logging.SharedFile{
				{Hash: ed2k.SyntheticHash("x"), Name: "x", Size: 100},
				{Hash: ed2k.SyntheticHash("y"), Name: "y", Size: 200},
			},
		},
		{
			Time: t0.Add(5 * time.Hour), Honeypot: "b", Kind: logging.KindSharedList, PeerIP: "0",
			Files: []logging.SharedFile{
				{Hash: ed2k.SyntheticHash("x"), Name: "x", Size: 100}, // duplicate file
			},
		},
	}
	ti := ComputeTableI(recs, 2, 3, 4)
	if ti.DistinctPeers != 2 {
		t.Errorf("peers = %d", ti.DistinctPeers)
	}
	if ti.DistinctFiles != 2 {
		t.Errorf("files = %d", ti.DistinctFiles)
	}
	if ti.SpaceBytes != 300 {
		t.Errorf("space = %d", ti.SpaceBytes)
	}
	if ti.Honeypots != 2 || ti.DurationDays != 3 || ti.SharedFiles != 4 {
		t.Errorf("meta: %+v", ti)
	}
	if !strings.Contains(ti.String(), "Number of distinct peers") {
		t.Error("String() rendering")
	}
}

func TestPeerGrowth(t *testing.T) {
	recs := []logging.Record{
		rec(1, "a", logging.KindHello, "0", ""),
		rec(2, "a", logging.KindStartUpload, "0", "f"), // same peer, same day
		rec(25, "a", logging.KindHello, "1", ""),       // new peer day 1
		rec(49, "a", logging.KindHello, "0", ""),       // old peer day 2
	}
	g := PeerGrowth(recs, t0, 3)
	wantCum := []int{1, 2, 2}
	wantNew := []int{1, 1, 0}
	for i := range wantCum {
		if g.Cumulative[i] != wantCum[i] || g.New[i] != wantNew[i] {
			t.Errorf("day %d: cum=%d new=%d", i, g.Cumulative[i], g.New[i])
		}
	}
}

func TestHourlyHello(t *testing.T) {
	recs := []logging.Record{
		rec(0, "a", logging.KindHello, "0", ""),
		rec(0, "a", logging.KindHello, "1", ""),
		rec(1, "a", logging.KindStartUpload, "0", "f"), // not HELLO
		rec(5, "a", logging.KindHello, "2", ""),
	}
	hh := HourlyHello(recs, t0, 6)
	if hh[0] != 2 || hh[1] != 0 || hh[5] != 1 {
		t.Errorf("hourly = %v", hh)
	}
}

var groupOf = map[string]string{
	"rc0": "random-content", "rc1": "random-content",
	"nc0": "no-content", "nc1": "no-content",
}

func TestGroupDistinctPeers(t *testing.T) {
	recs := []logging.Record{
		rec(1, "rc0", logging.KindHello, "0", ""),
		rec(2, "rc1", logging.KindHello, "0", ""), // same peer, same group
		rec(3, "nc0", logging.KindHello, "0", ""),
		rec(26, "rc0", logging.KindHello, "1", ""),
		rec(27, "unknown-hp", logging.KindHello, "9", ""), // not in any group
	}
	gs := GroupDistinctPeers(recs, groupOf, logging.KindHello, t0, 2)
	rc := gs.Groups["random-content"]
	nc := gs.Groups["no-content"]
	if rc[0] != 1 || rc[1] != 2 {
		t.Errorf("rc = %v", rc)
	}
	if nc[0] != 1 || nc[1] != 1 {
		t.Errorf("nc = %v", nc)
	}
}

func TestGroupMessageCounts(t *testing.T) {
	recs := []logging.Record{
		rec(1, "rc0", logging.KindRequestPart, "0", "f"),
		rec(2, "rc0", logging.KindRequestPart, "0", "f"),
		rec(3, "nc0", logging.KindRequestPart, "1", "f"),
		rec(26, "rc1", logging.KindRequestPart, "2", "f"),
	}
	gs := GroupMessageCounts(recs, groupOf, logging.KindRequestPart, t0, 2)
	if gs.Groups["random-content"][1] != 3 {
		t.Errorf("rc cumulative = %v", gs.Groups["random-content"])
	}
	if gs.Groups["no-content"][1] != 1 {
		t.Errorf("nc cumulative = %v", gs.Groups["no-content"])
	}
}

func TestTopPeerAndSeries(t *testing.T) {
	recs := []logging.Record{
		rec(1, "rc0", logging.KindHello, "7", ""),
		rec(2, "rc0", logging.KindStartUpload, "7", "f"),
		rec(3, "rc0", logging.KindRequestPart, "7", "f"),
		rec(4, "nc0", logging.KindRequestPart, "7", "f"),
		rec(5, "rc0", logging.KindHello, "8", ""),
		rec(6, "rc0", logging.KindConnect, "9", ""), // ignored kind
	}
	peer, n := TopPeer(recs)
	if peer != "7" || n != 4 {
		t.Errorf("top peer %q/%d", peer, n)
	}
	gs := TopPeerSeries(recs, groupOf, "7", logging.KindRequestPart, t0, 1)
	if gs.Groups["random-content"][0] != 1 || gs.Groups["no-content"][0] != 1 {
		t.Errorf("top peer series: %+v", gs.Groups)
	}
}

func TestHoneypotPeerSets(t *testing.T) {
	recs := []logging.Record{
		rec(1, "a", logging.KindHello, "0", ""),
		rec(2, "a", logging.KindHello, "1", ""),
		rec(3, "b", logging.KindHello, "1", ""),
		rec(4, "b", logging.KindHello, "2", ""),
		rec(5, "a", logging.KindHello, "0", ""), // repeat
	}
	sets, universe := HoneypotPeerSets(recs, []string{"a", "b"})
	if universe != 3 {
		t.Errorf("universe = %d", universe)
	}
	if len(sets[0]) != 2 || len(sets[1]) != 2 {
		t.Errorf("set sizes: %d, %d", len(sets[0]), len(sets[1]))
	}
	u := stats.UnionEstimate(sets, universe, stats.SubsetUnionConfig{Samples: 10, Seed: 1, IncludeZero: true})
	if u.Avg[len(u.Avg)-1] != 3 {
		t.Errorf("full union = %v", u.Avg[len(u.Avg)-1])
	}
}

func TestFilePeerSets(t *testing.T) {
	fa, fb := ed2k.SyntheticHash("fa"), ed2k.SyntheticHash("fb")
	recs := []logging.Record{
		{Time: t0, Kind: logging.KindStartUpload, PeerIP: "0", FileHash: fa},
		{Time: t0, Kind: logging.KindRequestPart, PeerIP: "1", FileHash: fa},
		{Time: t0, Kind: logging.KindStartUpload, PeerIP: "1", FileHash: fb},
		{Time: t0, Kind: logging.KindHello, PeerIP: "2", FileHash: fa}, // HELLO ignored
	}
	sets, universe := FilePeerSets(recs, []ed2k.Hash{fa, fb})
	if universe != 2 {
		t.Errorf("universe = %d", universe)
	}
	if len(sets[0]) != 2 || len(sets[1]) != 1 {
		t.Errorf("sets: %v", sets)
	}
}

func TestQueriedFiles(t *testing.T) {
	fa, fb := ed2k.SyntheticHash("fa"), ed2k.SyntheticHash("fb")
	recs := []logging.Record{
		{Time: t0, Kind: logging.KindStartUpload, PeerIP: "0", FileHash: fa},
		{Time: t0, Kind: logging.KindStartUpload, PeerIP: "1", FileHash: fa},
		{Time: t0, Kind: logging.KindStartUpload, PeerIP: "0", FileHash: fb},
	}
	ranked := QueriedFiles(recs)
	if len(ranked) != 2 {
		t.Fatalf("%d files", len(ranked))
	}
	if ranked[0].Hash != fa || ranked[0].Peers != 2 {
		t.Errorf("rank 0: %+v", ranked[0])
	}
	if ranked[1].Peers != 1 {
		t.Errorf("rank 1: %+v", ranked[1])
	}
}

func TestCSVRenderers(t *testing.T) {
	var buf bytes.Buffer
	g := stats.GrowthCurve{Cumulative: []int{1, 3}, New: []int{1, 2}}
	if err := GrowthCSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "day,total_peers,new_peers\n1,1,1\n2,3,2\n") {
		t.Errorf("growth csv:\n%s", out)
	}

	buf.Reset()
	gs := GroupSeries{Days: []int{1}, Groups: map[string][]int{"b": {5}, "a": {7}}}
	if err := GroupCSV(&buf, gs); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "day,a,b\n1,7,5\n") {
		t.Errorf("group csv:\n%s", buf.String())
	}

	buf.Reset()
	u := stats.SubsetUnion{N: []int{1}, Avg: []float64{2.5}, Min: []int{2}, Max: []int{3}}
	if err := SubsetCSV(&buf, u); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1,2.5,2,3") {
		t.Errorf("subset csv:\n%s", buf.String())
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty sparkline")
	}
	s := Sparkline([]int{0, 5, 10})
	if len([]rune(s)) != 3 {
		t.Errorf("sparkline runes: %q", s)
	}
	if []rune(s)[0] != '▁' || []rune(s)[2] != '█' {
		t.Errorf("sparkline shape: %q", s)
	}
}
