package analysis

import (
	"sort"

	"repro/internal/ed2k"
	"repro/internal/logging"
)

// The paper's conclusion sketches its next step: "we plan to explore the
// relationships between peers inferred from the fact that they are
// interested in the same files, and conversely study relations between
// files from the fact that they are downloaded by the same peers." This
// file implements that analysis on the collected datasets: the bipartite
// peer-file interest graph and its basic structure.

// InterestGraph is the bipartite graph of peers and the files they
// queried (START-UPLOAD / REQUEST-PART records).
type InterestGraph struct {
	// PeerFiles maps peer number -> distinct files queried.
	PeerFiles map[string][]ed2k.Hash
	// FilePeers maps file -> distinct querying peers.
	FilePeers map[ed2k.Hash][]string
}

// BuildInterestGraph extracts the bipartite graph from a merged log.
func BuildInterestGraph(recs []logging.Record) *InterestGraph {
	pf := map[string]map[ed2k.Hash]bool{}
	fp := map[ed2k.Hash]map[string]bool{}
	for i := range recs {
		r := &recs[i]
		if r.Kind != logging.KindStartUpload && r.Kind != logging.KindRequestPart {
			continue
		}
		if r.PeerIP == "" || r.FileHash.Zero() {
			continue
		}
		if pf[r.PeerIP] == nil {
			pf[r.PeerIP] = map[ed2k.Hash]bool{}
		}
		pf[r.PeerIP][r.FileHash] = true
		if fp[r.FileHash] == nil {
			fp[r.FileHash] = map[string]bool{}
		}
		fp[r.FileHash][r.PeerIP] = true
	}
	g := &InterestGraph{
		PeerFiles: make(map[string][]ed2k.Hash, len(pf)),
		FilePeers: make(map[ed2k.Hash][]string, len(fp)),
	}
	for p, files := range pf {
		fs := make([]ed2k.Hash, 0, len(files))
		for f := range files {
			fs = append(fs, f)
		}
		sort.Slice(fs, func(a, b int) bool { return fs[a].String() < fs[b].String() })
		g.PeerFiles[p] = fs
	}
	for f, peers := range fp {
		ps := make([]string, 0, len(peers))
		for p := range peers {
			ps = append(ps, p)
		}
		sort.Strings(ps)
		g.FilePeers[f] = ps
	}
	return g
}

// InterestGraph builds the bipartite peer-file interest graph from the
// columnar frame, returning the same graph as BuildInterestGraph over
// the source records. Edges are deduplicated with an epoch-stamped array
// over peer symbols, and both adjacency maps are assembled from one
// counting sort each instead of nested hash maps. The two heavy phases
// — per-file edge construction and per-peer adjacency assembly — split
// across contiguous symbol ranges balanced by query volume; every
// worker owns its symbols outright and the per-range outputs are
// concatenated in symbol order, so the edge list, both adjacency maps
// and every sorted slice are identical at any worker count.
func (f *Frame) InterestGraph() *InterestGraph {
	grouped, off, cnt := f.queryPairs()
	nPeers := f.peerTab.Len()
	nFiles := f.fileTab.Len()
	g := &InterestGraph{
		PeerFiles: map[string][]ed2k.Hash{},
		FilePeers: map[ed2k.Hash][]string{},
	}

	// Phase 1: dedupe each file's querying peers and emit its edges.
	type edge struct{ peer, file uint32 }
	type fileAdj struct {
		sym uint32
		ps  []string
	}
	workers := resolveWorkers(len(grouped))
	fileCuts := volumeCuts(off, len(grouped), nFiles, workers)
	localEdges := make([][]edge, workers)
	localAdj := make([][]fileAdj, workers)
	localPerPeer := make([][]int32, workers)
	parallelCuts(fileCuts, func(c, lo, hi int) {
		mark := make([]int32, nPeers)
		for i := range mark {
			mark[i] = -1
		}
		perPeer := make([]int32, nPeers)
		var edges []edge
		var adjs []fileAdj
		for sym := lo; sym < hi; sym++ {
			n := cnt[sym]
			if n == 0 {
				continue
			}
			var ps []string
			for _, p := range grouped[off[sym] : off[sym]+n] {
				if mark[p] != int32(sym) {
					mark[p] = int32(sym)
					ps = append(ps, f.peerTab.Value(p))
					edges = append(edges, edge{peer: p, file: uint32(sym)})
					perPeer[p]++
				}
			}
			sort.Strings(ps)
			adjs = append(adjs, fileAdj{sym: uint32(sym), ps: ps})
		}
		localEdges[c], localAdj[c], localPerPeer[c] = edges, adjs, perPeer
	})
	perPeer := localPerPeer[0]
	nEdges := len(localEdges[0])
	for _, lp := range localPerPeer[1:] {
		for p, n := range lp {
			perPeer[p] += n
		}
	}
	for _, le := range localEdges[1:] {
		nEdges += len(le)
	}
	for _, la := range localAdj {
		for _, a := range la {
			g.FilePeers[f.fileTab.Value(a.sym)] = a.ps
		}
	}

	// Counting sort of the deduplicated edges by peer symbol. The local
	// edge lists concatenate in file-symbol order — the serial emission
	// order — so the grouped files-by-peer layout is unchanged.
	peerOff := make([]int32, nPeers)
	run := int32(0)
	for p, c := range perPeer {
		peerOff[p] = run
		run += c
	}
	fill := append([]int32(nil), peerOff...)
	filesByPeer := make([]uint32, nEdges)
	for _, le := range localEdges {
		for _, e := range le {
			filesByPeer[fill[e.peer]] = e.file
			fill[e.peer]++
		}
	}

	// Phase 2: per-peer adjacency assembly. The hex forms are
	// precomputed for every queried file up front — the serial lazy
	// memoization would be a data race across peer ranges.
	fileStr := make([]string, nFiles)
	parallelChunks(nFiles, resolveWorkers(nFiles), func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			if cnt[s] > 0 {
				fileStr[s] = f.fileTab.Value(uint32(s)).String()
			}
		}
	})
	type peerAdj struct {
		p  uint32
		fs []ed2k.Hash
	}
	peerCuts := volumeCuts(peerOff, nEdges, nPeers, workers)
	localPeers := make([][]peerAdj, workers)
	parallelCuts(peerCuts, func(c, lo, hi int) {
		var adjs []peerAdj
		for p := lo; p < hi; p++ {
			n := perPeer[p]
			if n == 0 {
				continue
			}
			syms := filesByPeer[peerOff[p] : peerOff[p]+n]
			sort.Slice(syms, func(a, b int) bool { return fileStr[syms[a]] < fileStr[syms[b]] })
			fs := make([]ed2k.Hash, len(syms))
			for i, s := range syms {
				fs[i] = f.fileTab.Value(s)
			}
			adjs = append(adjs, peerAdj{p: uint32(p), fs: fs})
		}
		localPeers[c] = adjs
	})
	for _, la := range localPeers {
		for _, a := range la {
			g.PeerFiles[f.peerTab.Value(a.p)] = a.fs
		}
	}
	return g
}

// InterestStats summarizes the bipartite structure.
type InterestStats struct {
	Peers int
	Files int
	Edges int
	// MeanFilesPerPeer and MaxFilesPerPeer describe peer degrees;
	// MeanPeersPerFile and MaxPeersPerFile describe file degrees.
	MeanFilesPerPeer float64
	MaxFilesPerPeer  int
	MeanPeersPerFile float64
	MaxPeersPerFile  int
	// Components is the number of connected components of the bipartite
	// graph; LargestComponent counts its vertices (peers+files). A giant
	// component signals strong co-interest structure.
	Components       int
	LargestComponent int
}

// Stats computes the summary.
func (g *InterestGraph) Stats() InterestStats {
	st := InterestStats{Peers: len(g.PeerFiles), Files: len(g.FilePeers)}
	for _, fs := range g.PeerFiles {
		st.Edges += len(fs)
		if len(fs) > st.MaxFilesPerPeer {
			st.MaxFilesPerPeer = len(fs)
		}
	}
	for _, ps := range g.FilePeers {
		if len(ps) > st.MaxPeersPerFile {
			st.MaxPeersPerFile = len(ps)
		}
	}
	if st.Peers > 0 {
		st.MeanFilesPerPeer = float64(st.Edges) / float64(st.Peers)
	}
	if st.Files > 0 {
		st.MeanPeersPerFile = float64(st.Edges) / float64(st.Files)
	}

	// Connected components via union-find over peers ∪ files.
	idx := map[string]int{}
	n := 0
	peerID := func(p string) int {
		if i, ok := idx["p/"+p]; ok {
			return i
		}
		idx["p/"+p] = n
		n++
		return n - 1
	}
	fileID := func(f ed2k.Hash) int {
		key := "f/" + f.String()
		if i, ok := idx[key]; ok {
			return i
		}
		idx[key] = n
		n++
		return n - 1
	}
	parent := make([]int, 0, len(g.PeerFiles)+len(g.FilePeers))
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	grow := func(to int) {
		for len(parent) <= to {
			parent = append(parent, len(parent))
		}
	}
	union := func(a, b int) {
		grow(a)
		grow(b)
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	// Deterministic iteration: sort peers.
	peers := make([]string, 0, len(g.PeerFiles))
	for p := range g.PeerFiles {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	for _, p := range peers {
		pid := peerID(p)
		grow(pid)
		for _, f := range g.PeerFiles[p] {
			union(pid, fileID(f))
		}
	}
	sizes := map[int]int{}
	for i := 0; i < n; i++ {
		sizes[find(i)]++
	}
	st.Components = len(sizes)
	for _, s := range sizes {
		if s > st.LargestComponent {
			st.LargestComponent = s
		}
	}
	return st
}

// RelatedFiles returns, for the given file, other files co-queried by at
// least minShared of its peers, ordered by overlap (the "relations
// between files from the fact that they are downloaded by the same
// peers" of the paper's §V).
func (g *InterestGraph) RelatedFiles(f ed2k.Hash, minShared int) []FileOverlap {
	peers := g.FilePeers[f]
	counts := map[ed2k.Hash]int{}
	for _, p := range peers {
		for _, other := range g.PeerFiles[p] {
			if other != f {
				counts[other]++
			}
		}
	}
	out := make([]FileOverlap, 0, len(counts))
	for other, c := range counts {
		if c >= minShared {
			out = append(out, FileOverlap{File: other, SharedPeers: c})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].SharedPeers != out[b].SharedPeers {
			return out[a].SharedPeers > out[b].SharedPeers
		}
		return out[a].File.String() < out[b].File.String()
	})
	return out
}

// FileOverlap is one co-interest relation.
type FileOverlap struct {
	File        ed2k.Hash
	SharedPeers int
}
