package analysis

import (
	"sort"

	"repro/internal/ed2k"
	"repro/internal/logging"
)

// The paper's conclusion sketches its next step: "we plan to explore the
// relationships between peers inferred from the fact that they are
// interested in the same files, and conversely study relations between
// files from the fact that they are downloaded by the same peers." This
// file implements that analysis on the collected datasets: the bipartite
// peer-file interest graph and its basic structure.

// InterestGraph is the bipartite graph of peers and the files they
// queried (START-UPLOAD / REQUEST-PART records).
type InterestGraph struct {
	// PeerFiles maps peer number -> distinct files queried.
	PeerFiles map[string][]ed2k.Hash
	// FilePeers maps file -> distinct querying peers.
	FilePeers map[ed2k.Hash][]string
}

// BuildInterestGraph extracts the bipartite graph from a merged log.
func BuildInterestGraph(recs []logging.Record) *InterestGraph {
	pf := map[string]map[ed2k.Hash]bool{}
	fp := map[ed2k.Hash]map[string]bool{}
	for i := range recs {
		r := &recs[i]
		if r.Kind != logging.KindStartUpload && r.Kind != logging.KindRequestPart {
			continue
		}
		if r.PeerIP == "" || r.FileHash.Zero() {
			continue
		}
		if pf[r.PeerIP] == nil {
			pf[r.PeerIP] = map[ed2k.Hash]bool{}
		}
		pf[r.PeerIP][r.FileHash] = true
		if fp[r.FileHash] == nil {
			fp[r.FileHash] = map[string]bool{}
		}
		fp[r.FileHash][r.PeerIP] = true
	}
	g := &InterestGraph{
		PeerFiles: make(map[string][]ed2k.Hash, len(pf)),
		FilePeers: make(map[ed2k.Hash][]string, len(fp)),
	}
	for p, files := range pf {
		fs := make([]ed2k.Hash, 0, len(files))
		for f := range files {
			fs = append(fs, f)
		}
		sort.Slice(fs, func(a, b int) bool { return fs[a].String() < fs[b].String() })
		g.PeerFiles[p] = fs
	}
	for f, peers := range fp {
		ps := make([]string, 0, len(peers))
		for p := range peers {
			ps = append(ps, p)
		}
		sort.Strings(ps)
		g.FilePeers[f] = ps
	}
	return g
}

// InterestGraph builds the bipartite peer-file interest graph from the
// columnar frame, returning the same graph as BuildInterestGraph over
// the source records. Edges are deduplicated with an epoch-stamped array
// over peer symbols, and both adjacency maps are assembled from one
// counting sort each instead of nested hash maps.
func (f *Frame) InterestGraph() *InterestGraph {
	grouped, off, cnt := f.queryPairs()
	nPeers := f.peerTab.Len()
	mark := make([]int32, nPeers)
	for i := range mark {
		mark[i] = -1
	}
	g := &InterestGraph{
		PeerFiles: map[string][]ed2k.Hash{},
		FilePeers: map[ed2k.Hash][]string{},
	}
	type edge struct{ peer, file uint32 }
	var edges []edge
	perPeer := make([]int32, nPeers)
	for sym, c := range cnt {
		if c == 0 {
			continue
		}
		var ps []string
		for _, p := range grouped[off[sym] : off[sym]+c] {
			if mark[p] != int32(sym) {
				mark[p] = int32(sym)
				ps = append(ps, f.peerTab.Value(p))
				edges = append(edges, edge{peer: p, file: uint32(sym)})
				perPeer[p]++
			}
		}
		sort.Strings(ps)
		g.FilePeers[f.fileTab.Value(uint32(sym))] = ps
	}
	// Counting sort of the deduplicated edges by peer symbol.
	peerOff := make([]int32, nPeers)
	run := int32(0)
	for p, c := range perPeer {
		peerOff[p] = run
		run += c
	}
	fill := append([]int32(nil), peerOff...)
	filesByPeer := make([]uint32, len(edges))
	for _, e := range edges {
		filesByPeer[fill[e.peer]] = e.file
		fill[e.peer]++
	}
	fileStr := make([]string, f.fileTab.Len()) // hex forms, computed once per file
	for p, c := range perPeer {
		if c == 0 {
			continue
		}
		syms := filesByPeer[peerOff[p] : peerOff[p]+int32(c)]
		for _, s := range syms {
			if fileStr[s] == "" {
				fileStr[s] = f.fileTab.Value(s).String()
			}
		}
		sort.Slice(syms, func(a, b int) bool { return fileStr[syms[a]] < fileStr[syms[b]] })
		fs := make([]ed2k.Hash, len(syms))
		for i, s := range syms {
			fs[i] = f.fileTab.Value(s)
		}
		g.PeerFiles[f.peerTab.Value(uint32(p))] = fs
	}
	return g
}

// InterestStats summarizes the bipartite structure.
type InterestStats struct {
	Peers int
	Files int
	Edges int
	// MeanFilesPerPeer and MaxFilesPerPeer describe peer degrees;
	// MeanPeersPerFile and MaxPeersPerFile describe file degrees.
	MeanFilesPerPeer float64
	MaxFilesPerPeer  int
	MeanPeersPerFile float64
	MaxPeersPerFile  int
	// Components is the number of connected components of the bipartite
	// graph; LargestComponent counts its vertices (peers+files). A giant
	// component signals strong co-interest structure.
	Components       int
	LargestComponent int
}

// Stats computes the summary.
func (g *InterestGraph) Stats() InterestStats {
	st := InterestStats{Peers: len(g.PeerFiles), Files: len(g.FilePeers)}
	for _, fs := range g.PeerFiles {
		st.Edges += len(fs)
		if len(fs) > st.MaxFilesPerPeer {
			st.MaxFilesPerPeer = len(fs)
		}
	}
	for _, ps := range g.FilePeers {
		if len(ps) > st.MaxPeersPerFile {
			st.MaxPeersPerFile = len(ps)
		}
	}
	if st.Peers > 0 {
		st.MeanFilesPerPeer = float64(st.Edges) / float64(st.Peers)
	}
	if st.Files > 0 {
		st.MeanPeersPerFile = float64(st.Edges) / float64(st.Files)
	}

	// Connected components via union-find over peers ∪ files.
	idx := map[string]int{}
	n := 0
	peerID := func(p string) int {
		if i, ok := idx["p/"+p]; ok {
			return i
		}
		idx["p/"+p] = n
		n++
		return n - 1
	}
	fileID := func(f ed2k.Hash) int {
		key := "f/" + f.String()
		if i, ok := idx[key]; ok {
			return i
		}
		idx[key] = n
		n++
		return n - 1
	}
	parent := make([]int, 0, len(g.PeerFiles)+len(g.FilePeers))
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	grow := func(to int) {
		for len(parent) <= to {
			parent = append(parent, len(parent))
		}
	}
	union := func(a, b int) {
		grow(a)
		grow(b)
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	// Deterministic iteration: sort peers.
	peers := make([]string, 0, len(g.PeerFiles))
	for p := range g.PeerFiles {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	for _, p := range peers {
		pid := peerID(p)
		grow(pid)
		for _, f := range g.PeerFiles[p] {
			union(pid, fileID(f))
		}
	}
	sizes := map[int]int{}
	for i := 0; i < n; i++ {
		sizes[find(i)]++
	}
	st.Components = len(sizes)
	for _, s := range sizes {
		if s > st.LargestComponent {
			st.LargestComponent = s
		}
	}
	return st
}

// RelatedFiles returns, for the given file, other files co-queried by at
// least minShared of its peers, ordered by overlap (the "relations
// between files from the fact that they are downloaded by the same
// peers" of the paper's §V).
func (g *InterestGraph) RelatedFiles(f ed2k.Hash, minShared int) []FileOverlap {
	peers := g.FilePeers[f]
	counts := map[ed2k.Hash]int{}
	for _, p := range peers {
		for _, other := range g.PeerFiles[p] {
			if other != f {
				counts[other]++
			}
		}
	}
	out := make([]FileOverlap, 0, len(counts))
	for other, c := range counts {
		if c >= minShared {
			out = append(out, FileOverlap{File: other, SharedPeers: c})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].SharedPeers != out[b].SharedPeers {
			return out[a].SharedPeers > out[b].SharedPeers
		}
		return out[a].File.String() < out[b].File.String()
	})
	return out
}

// FileOverlap is one co-interest relation.
type FileOverlap struct {
	File        ed2k.Hash
	SharedPeers int
}
