package analysis

// This file is the columnar analysis engine: a campaign is compiled once
// into a Frame — a struct-of-arrays image of the merged log with every
// string column interned to a dense ID — and every figure extractor then
// runs over flat integer columns. The slice-based extractors in
// analysis.go remain as the reference implementations (and the API for
// one-off calls); the Frame versions return bit-identical results while
// replacing per-record map lookups, strconv parses and time.Time
// arithmetic with array indexing, and hash-map distinct-tracking with
// epoch-stamped dense arrays and bitsets. Memory per record is 19 bytes
// regardless of string sizes, and per-extractor allocations are bounded
// by distinct counts and output size, never by campaign length.

import (
	"math"
	"math/bits"
	"slices"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/ed2k"
	"repro/internal/intern"
	"repro/internal/logging"
	"repro/internal/stats"
)

// NoPeer marks a record whose PeerIP was empty (connection-level events
// carry no peer identity).
const NoPeer = ^uint32(0)

// noNum marks an interned peer identifier that does not parse as a
// step-2 decimal number (e.g. a step-1 hex hash).
const noNum = math.MinInt64

// Frame is a campaign's merged log in columnar form. Build it once with
// BuildFrame or BuildFrameIter, then derive every table and figure from
// it; nothing in a Frame aliases the source records.
type Frame struct {
	times []int64  // reception time, unix nanoseconds
	kinds []uint8  // logging.Kind
	peers []uint32 // peer symbol, NoPeer when the record had no peer
	hps   []uint16 // honeypot symbol
	files []uint32 // concerned-file symbol (the zero hash interns too)

	peerTab *intern.Strings
	hpTab   *intern.Strings
	fileTab *intern.Table[ed2k.Hash]

	// Shared-file lists (KindSharedList) are aggregated at build time:
	// one entry per distinct advertised hash, last-reported size winning,
	// exactly like StreamTableI's map.
	sharedTab   *intern.Table[ed2k.Hash]
	sharedSizes []int64

	// The two lazy caches are sync.Once-guarded: the query engine
	// (exec.go) runs extractors concurrently over one shared frame, and
	// these are the frame's only post-build mutations.
	peerNumsOnce sync.Once
	peerNums     []int64 // parsed step-2 number per peer symbol, noNum if not decimal
	pairsOnce    sync.Once
	pairs        *queryIndex
}

func newFrame(capacity int) *Frame {
	return &Frame{
		times:     make([]int64, 0, capacity),
		kinds:     make([]uint8, 0, capacity),
		peers:     make([]uint32, 0, capacity),
		hps:       make([]uint16, 0, capacity),
		files:     make([]uint32, 0, capacity),
		peerTab:   intern.NewStrings(),
		hpTab:     intern.NewStrings(),
		fileTab:   intern.NewTable[ed2k.Hash](),
		sharedTab: intern.NewTable[ed2k.Hash](),
	}
}

func (f *Frame) add(r *logging.Record) {
	f.times = append(f.times, r.Time.UnixNano())
	f.kinds = append(f.kinds, uint8(r.Kind))
	p := NoPeer
	if r.PeerIP != "" {
		p = f.peerTab.ID(r.PeerIP)
	}
	f.peers = append(f.peers, p)
	h := f.hpTab.ID(r.Honeypot)
	if h > math.MaxUint16 {
		panic("analysis: frame supports at most 65536 distinct honeypots")
	}
	f.hps = append(f.hps, uint16(h))
	f.files = append(f.files, f.fileTab.ID(r.FileHash))
	for i := range r.Files {
		sf := &r.Files[i]
		id := f.sharedTab.ID(sf.Hash)
		if int(id) == len(f.sharedSizes) {
			f.sharedSizes = append(f.sharedSizes, sf.Size)
		} else {
			f.sharedSizes[id] = sf.Size
		}
	}
}

// BuildFrame compiles a merged log into columnar form in one pass.
func BuildFrame(recs []logging.Record) *Frame {
	f := newFrame(len(recs))
	for i := range recs {
		f.add(&recs[i])
	}
	return f
}

// BuildFrameIter compiles a record stream — typically a logstore
// iterator over a spill-to-disk campaign — into columnar form without
// ever materializing the records. Memory use is the frame itself: 19
// bytes per record plus the intern tables.
func BuildFrameIter(it RecordIter) (*Frame, error) {
	f := newFrame(0)
	err := each(it, f.add)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Len returns the number of records in the frame.
func (f *Frame) Len() int { return len(f.times) }

// DistinctPeers returns the number of distinct peer identifiers.
func (f *Frame) DistinctPeers() int { return f.peerTab.Len() }

// peerNumbers parses each distinct peer identifier as a step-2 decimal
// number exactly once, caching the column for every later extractor.
// Safe under concurrent extractions.
func (f *Frame) peerNumbers() []int64 {
	f.peerNumsOnce.Do(func() {
		if f.peerTab.Len() == 0 {
			return
		}
		nums := make([]int64, f.peerTab.Len())
		for id, s := range f.peerTab.Values() {
			n, err := strconv.Atoi(s)
			if err != nil {
				nums[id] = noNum
			} else {
				nums[id] = int64(n)
			}
		}
		f.peerNums = nums
	})
	return f.peerNums
}

// TableI derives the frame's row of the paper's Table I. O(distinct
// files) time; the distinct-peer count is the intern table's size.
func (f *Frame) TableI(honeypots, days, sharedFiles int) TableI {
	var space int64
	for _, sz := range f.sharedSizes {
		space += sz
	}
	return TableI{
		Honeypots:     honeypots,
		DurationDays:  days,
		SharedFiles:   sharedFiles,
		DistinctPeers: f.peerTab.Len(),
		DistinctFiles: f.sharedTab.Len(),
		SpaceBytes:    space,
	}
}

// PeerGrowth computes Figs 2-3 from the frame: first-seen days live in a
// flat array indexed by peer symbol instead of a map keyed by string.
func (f *Frame) PeerGrowth(start time.Time, days int) stats.GrowthCurve {
	tr := stats.NewDenseDistinctTracker(start, Day, days, f.peerTab.Len())
	for i, p := range f.peers {
		if p != NoPeer {
			tr.ObserveNano(f.times[i], int(p))
		}
	}
	return tr.Curve()
}

// HourlyHello computes Fig 4 from the frame.
func (f *Frame) HourlyHello(start time.Time, hours int) []int {
	counts := make([]int, hours)
	startNs := start.UnixNano()
	hourNs := int64(time.Hour)
	for i, k := range f.kinds {
		if logging.Kind(k) != logging.KindHello {
			continue
		}
		t := f.times[i]
		if t < startNs {
			continue
		}
		if h := (t - startNs) / hourNs; h < int64(hours) {
			counts[h]++
		}
	}
	return counts
}

// groupIndex resolves the honeypot→group mapping once per extraction:
// hpGroup[hp symbol] is a dense group index or -1, names lists the group
// names by index in first-encountered honeypot-symbol order.
func (f *Frame) groupIndex(groupOf map[string]string) (hpGroup []int32, names []string) {
	hpGroup = make([]int32, f.hpTab.Len())
	idx := make(map[string]int, 4)
	for id, hp := range f.hpTab.Values() {
		g, ok := groupOf[hp]
		if !ok {
			hpGroup[id] = -1
			continue
		}
		gi, ok := idx[g]
		if !ok {
			gi = len(names)
			idx[g] = gi
			names = append(names, g)
		}
		hpGroup[id] = int32(gi)
	}
	return hpGroup, names
}

// GroupDistinctPeers computes Figs 5-6 from the frame. Distinct (group,
// peer) pairs are tracked in one flat first-seen array per group.
func (f *Frame) GroupDistinctPeers(groupOf map[string]string, kind logging.Kind, start time.Time, days int) GroupSeries {
	hpGroup, names := f.groupIndex(groupOf)
	startNs := start.UnixNano()
	dayNs := int64(Day)
	k8 := uint8(kind)
	first := make([][]int32, len(names)) // allocated on a group's first hit
	for i, k := range f.kinds {
		if k != k8 || f.peers[i] == NoPeer {
			continue
		}
		gi := hpGroup[f.hps[i]]
		if gi < 0 {
			continue
		}
		t := f.times[i]
		if t < startNs {
			continue
		}
		d := (t - startNs) / dayNs
		if d >= int64(days) {
			continue
		}
		fg := first[gi]
		if fg == nil {
			fg = make([]int32, f.peerTab.Len())
			for j := range fg {
				fg[j] = -1
			}
			first[gi] = fg
		}
		p := f.peers[i]
		if fg[p] < 0 || int32(d) < fg[p] {
			fg[p] = int32(d)
		}
	}
	out := GroupSeries{Days: dayAxis(days), Groups: map[string][]int{}}
	for gi, fg := range first {
		if fg == nil {
			continue
		}
		news := make([]int, days)
		for _, d := range fg {
			if d >= 0 {
				news[d]++
			}
		}
		out.Groups[names[gi]] = stats.CumulativeInts(news)
	}
	return out
}

// GroupMessageCounts computes Fig 7 from the frame.
func (f *Frame) GroupMessageCounts(groupOf map[string]string, kind logging.Kind, start time.Time, days int) GroupSeries {
	hpGroup, names := f.groupIndex(groupOf)
	startNs := start.UnixNano()
	dayNs := int64(Day)
	k8 := uint8(kind)
	perDay := make([][]int, len(names))
	for i, k := range f.kinds {
		if k != k8 {
			continue
		}
		gi := hpGroup[f.hps[i]]
		if gi < 0 {
			continue
		}
		t := f.times[i]
		if t < startNs {
			continue
		}
		d := (t - startNs) / dayNs
		if d >= int64(days) {
			continue
		}
		if perDay[gi] == nil {
			perDay[gi] = make([]int, days)
		}
		perDay[gi][d]++
	}
	out := GroupSeries{Days: dayAxis(days), Groups: map[string][]int{}}
	for gi, xs := range perDay {
		if xs == nil {
			continue
		}
		out.Groups[names[gi]] = stats.CumulativeInts(xs)
	}
	return out
}

// TopPeer finds the peer with the most queries (HELLO + START-UPLOAD +
// REQUEST-PART) via one dense counting array; ties break toward the
// lexicographically smallest identifier, as in stats.TopKey.
func (f *Frame) TopPeer() (string, int) {
	counts := make([]int, f.peerTab.Len())
	for i, k := range f.kinds {
		switch logging.Kind(k) {
		case logging.KindHello, logging.KindStartUpload, logging.KindRequestPart:
			if p := f.peers[i]; p != NoPeer {
				counts[p]++
			}
		}
	}
	best, bestN := "", -1
	for id, n := range counts {
		if n == 0 {
			continue
		}
		if s := f.peerTab.Value(uint32(id)); n > bestN || (n == bestN && s < best) {
			best, bestN = s, n
		}
	}
	if bestN < 0 {
		bestN = 0
	}
	return best, bestN
}

// TopPeerSeries computes Figs 8-9 from the frame.
func (f *Frame) TopPeerSeries(groupOf map[string]string, peer string, kind logging.Kind, start time.Time, days int) GroupSeries {
	target, ok := NoPeer, peer == "" // "" matches records without a peer
	if peer != "" {
		target, ok = f.peerTab.Lookup(peer)
	}
	hpGroup, names := f.groupIndex(groupOf)
	startNs := start.UnixNano()
	dayNs := int64(Day)
	k8 := uint8(kind)
	perDay := make([][]int, len(names))
	if ok {
		for i, k := range f.kinds {
			if k != k8 || f.peers[i] != target {
				continue
			}
			gi := hpGroup[f.hps[i]]
			if gi < 0 {
				continue
			}
			t := f.times[i]
			if t < startNs {
				continue
			}
			d := (t - startNs) / dayNs
			if d >= int64(days) {
				continue
			}
			if perDay[gi] == nil {
				perDay[gi] = make([]int, days)
			}
			perDay[gi][d]++
		}
	}
	out := GroupSeries{Days: dayAxis(days), Groups: map[string][]int{}}
	for gi, xs := range perDay {
		if xs == nil {
			continue
		}
		out.Groups[names[gi]] = stats.CumulativeInts(xs)
	}
	return out
}

// peerSetCollector accumulates distinct step-2 peer numbers per unit
// (honeypot or file) for the Fig 10-12 subset estimators. When the
// numbers are dense and non-negative — the step-2 renumbering guarantees
// exactly that — it uses one bitset per unit; otherwise it degrades to
// per-unit hash sets with the reference implementation's semantics.
type peerSetCollector struct {
	units int
	maxID int64

	words   int
	bits    []uint64 // units × words, nil in map mode
	sets    [][]int32
	fallbak []map[int32]bool
	merged  bool // a merge invalidated sets; finish rebuilds from bits
}

// bitsetWordLimit bounds the dense path's total footprint — units ×
// words ≤ 2^23 words (64 MiB) — so a wide unit set over a large number
// universe degrades to hash sets instead of one huge allocation.
const bitsetWordLimit = 1 << 23

func newPeerSetCollector(units int, maxID, minN int64) *peerSetCollector {
	c := &peerSetCollector{units: units, maxID: maxID, sets: make([][]int32, units)}
	words := maxID/64 + 1
	if maxID >= 0 && minN >= 0 && words*int64(units) <= bitsetWordLimit {
		c.words = int(words)
		c.bits = make([]uint64, units*c.words)
	} else {
		c.fallbak = make([]map[int32]bool, units)
	}
	return c
}

func (c *peerSetCollector) observe(unit int, n int64) {
	if c.bits != nil {
		w, b := c.words*unit+int(n/64), uint64(1)<<uint(n%64)
		if c.bits[w]&b == 0 {
			c.bits[w] |= b
			c.sets[unit] = append(c.sets[unit], int32(n))
		}
		return
	}
	m := c.fallbak[unit]
	if m == nil {
		m = map[int32]bool{}
		c.fallbak[unit] = m
	}
	m[int32(n)] = true
}

// merge folds another collector of identical shape into this one: the
// per-unit distinct sets become unions. Used by the row-parallel
// builds; the merged sets surface only through finish, which emits
// them sorted, so merge order cannot influence results.
func (c *peerSetCollector) merge(o *peerSetCollector) {
	if c.bits != nil {
		for i, w := range o.bits {
			c.bits[i] |= w
		}
		c.merged = true
		return
	}
	for u, m := range o.fallbak {
		if m == nil {
			continue
		}
		dst := c.fallbak[u]
		if dst == nil {
			c.fallbak[u] = m
			continue
		}
		for n := range m {
			dst[n] = true
		}
	}
}

func (c *peerSetCollector) finish() [][]int32 {
	if c.bits == nil {
		for u, m := range c.fallbak {
			s := make([]int32, 0, len(m))
			for n := range m {
				s = append(s, n)
			}
			c.sets[u] = s
		}
	} else if c.merged {
		// The per-unit discovery lists only cover this collector's own
		// observations; re-enumerate the merged bitsets instead. Bits
		// come out ascending, i.e. already in the sorted order the
		// serial path reaches below.
		for u := 0; u < c.units; u++ {
			s := c.sets[u][:0]
			base := u * c.words
			for w := 0; w < c.words; w++ {
				word := c.bits[base+w]
				for word != 0 {
					s = append(s, int32(w*64+bits.TrailingZeros64(word)))
					word &= word - 1
				}
			}
			c.sets[u] = s
		}
	}
	for u := range c.sets {
		if c.sets[u] == nil {
			c.sets[u] = []int32{} // reference impl returns empty, not nil
		}
		slices.Sort(c.sets[u])
	}
	return c.sets
}

// numBounds merges per-chunk (max, min) scans of the matching peer
// numbers — the shape both peer-set builds share. max/min commute, so
// chunking cannot change the result.
type numBounds struct {
	maxID, minN int64
}

func newNumBounds() numBounds { return numBounds{maxID: -1, minN: math.MaxInt64} }

func (b *numBounds) observe(n int64) {
	if n > b.maxID {
		b.maxID = n
	}
	if n < b.minN {
		b.minN = n
	}
}

func (b *numBounds) merge(o numBounds) {
	if o.maxID > b.maxID {
		b.maxID = o.maxID
	}
	if o.minN < b.minN {
		b.minN = o.minN
	}
}

// HoneypotPeerSets builds Fig 10's per-honeypot distinct peer-number
// sets from the frame. Peer identifiers are parsed once per distinct
// peer (cached on the frame), distinctness is tracked in one bitset per
// honeypot, and both scans split across row ranges.
func (f *Frame) HoneypotPeerSets(honeypotIDs []string) (sets [][]int32, universe int) {
	pos := make([]int32, f.hpTab.Len())
	for i := range pos {
		pos[i] = -1
	}
	for i, id := range honeypotIDs {
		if sym, ok := f.hpTab.Lookup(id); ok {
			pos[sym] = int32(i)
		}
	}
	nums := f.peerNumbers()
	match := func(i int) (int, int64, bool) {
		p := f.peers[i]
		if p == NoPeer {
			return 0, 0, false
		}
		hi := pos[f.hps[i]]
		if hi < 0 {
			return 0, 0, false
		}
		n := nums[p]
		if n == noNum {
			return 0, 0, false
		}
		return int(hi), n, true
	}
	n := len(f.peers)
	workers := resolveWorkers(n)
	chunkBnds := make([]numBounds, workers)
	parallelChunks(n, workers, func(c, lo, hi int) {
		b := newNumBounds()
		for i := lo; i < hi; i++ {
			if _, num, ok := match(i); ok {
				b.observe(num)
			}
		}
		chunkBnds[c] = b
	})
	bnds := newNumBounds()
	for _, b := range chunkBnds {
		bnds.merge(b)
	}
	out := collectPeerSets(n, len(honeypotIDs), bnds.maxID, bnds.minN,
		func(c *peerSetCollector, lo, hi int) {
			for i := lo; i < hi; i++ {
				if unit, num, ok := match(i); ok {
					c.observe(unit, num)
				}
			}
		})
	return out, int(bnds.maxID) + 1
}

// FilePeerSets builds Figs 11-12's per-file distinct peer-number sets
// from the frame (START-UPLOAD / REQUEST-PART records only), with both
// the bounds scan and the collection split across row ranges.
func (f *Frame) FilePeerSets(files []ed2k.Hash) (sets [][]int32, universe int) {
	pos := make([]int32, f.fileTab.Len())
	for i := range pos {
		pos[i] = -1
	}
	for i, h := range files {
		if sym, ok := f.fileTab.Lookup(h); ok {
			pos[sym] = int32(i)
		}
	}
	nums := f.peerNumbers()
	match := func(i int) (int, int64, bool) {
		k := logging.Kind(f.kinds[i])
		if k != logging.KindStartUpload && k != logging.KindRequestPart {
			return 0, 0, false
		}
		fi := pos[f.files[i]]
		if fi < 0 || f.peers[i] == NoPeer {
			return 0, 0, false
		}
		n := nums[f.peers[i]]
		if n == noNum {
			return 0, 0, false
		}
		return int(fi), n, true
	}
	n := len(f.kinds)
	workers := resolveWorkers(n)
	chunkBnds := make([]numBounds, workers)
	parallelChunks(n, workers, func(c, lo, hi int) {
		b := newNumBounds()
		for i := lo; i < hi; i++ {
			if _, num, ok := match(i); ok {
				b.observe(num)
			}
		}
		chunkBnds[c] = b
	})
	bnds := newNumBounds()
	for _, b := range chunkBnds {
		bnds.merge(b)
	}
	out := collectPeerSets(n, len(files), bnds.maxID, bnds.minN,
		func(c *peerSetCollector, lo, hi int) {
			for i := lo; i < hi; i++ {
				if unit, num, ok := match(i); ok {
					c.observe(unit, num)
				}
			}
		})
	return out, int(bnds.maxID) + 1
}

// queryIndex is the file-grouped view of the query records, cached on
// the frame: off[sym]/cnt[sym] slice peers into file sym's
// (non-distinct) querying peer symbols.
type queryIndex struct {
	peers []uint32
	off   []int32
	cnt   []int32
}

// queryPairs gathers the query records of the interest analyses (Figs
// 11-12's ranking and the §V bipartite graph): START-UPLOAD and
// REQUEST-PART records with a peer and a non-zero file, grouped by file
// symbol via a counting sort. The index is computed once per frame and
// shared by QueriedFiles and InterestGraph; safe under concurrent
// extractions.
func (f *Frame) queryPairs() (groupedPeers []uint32, perFileOff []int32, perFileCnt []int32) {
	f.pairsOnce.Do(f.buildQueryPairs)
	return f.pairs.peers, f.pairs.off, f.pairs.cnt
}

func (f *Frame) buildQueryPairs() {
	zeroSym := uint32(0)
	hasZero := false
	if sym, ok := f.fileTab.Lookup(ed2k.Hash{}); ok {
		zeroSym, hasZero = sym, true
	}
	nFiles := f.fileTab.Len()
	cnt := make([]int32, nFiles)
	match := func(i int) bool {
		k := logging.Kind(f.kinds[i])
		if k != logging.KindStartUpload && k != logging.KindRequestPart {
			return false
		}
		if f.peers[i] == NoPeer {
			return false
		}
		if hasZero && f.files[i] == zeroSym {
			return false
		}
		return true
	}
	// Row-parallel counting sort: per-chunk counts, then one exclusive
	// prefix pass that turns each chunk's counts into its write bases —
	// chunk c's rows for a file land right after chunk c-1's, so the
	// grouped array is bit-identical to a serial row scan at any worker
	// count.
	n := len(f.kinds)
	workers := resolveWorkers(n)
	chunkCnt := make([][]int32, workers)
	parallelChunks(n, workers, func(c, lo, hi int) {
		local := make([]int32, nFiles)
		for i := lo; i < hi; i++ {
			if match(i) {
				local[f.files[i]]++
			}
		}
		chunkCnt[c] = local
	})
	off := make([]int32, nFiles)
	run := int32(0)
	for s := 0; s < nFiles; s++ {
		off[s] = run
		for c := 0; c < workers; c++ {
			v := chunkCnt[c][s]
			chunkCnt[c][s] = run // becomes chunk c's write base for file s
			run += v
		}
		cnt[s] = run - off[s]
	}
	grouped := make([]uint32, run)
	parallelChunks(n, workers, func(c, lo, hi int) {
		fill := chunkCnt[c]
		for i := lo; i < hi; i++ {
			if match(i) {
				fs := f.files[i]
				grouped[fill[fs]] = f.peers[i]
				fill[fs]++
			}
		}
	})
	f.pairs = &queryIndex{peers: grouped, off: off, cnt: cnt}
}

// QueriedFiles ranks queried files by distinct peers from the frame,
// identically to the slice-based QueriedFiles.
func (f *Frame) QueriedFiles() []FilePopularity {
	grouped, off, cnt := f.queryPairs()
	mark := make([]int32, f.peerTab.Len())
	for i := range mark {
		mark[i] = -1
	}
	var out []FilePopularity
	for sym, c := range cnt {
		if c == 0 {
			continue
		}
		distinct := 0
		for _, p := range grouped[off[sym] : off[sym]+c] {
			if mark[p] != int32(sym) {
				mark[p] = int32(sym)
				distinct++
			}
		}
		out = append(out, FilePopularity{Hash: f.fileTab.Value(uint32(sym)), Peers: distinct})
	}
	strs := make([]string, len(out))
	for i := range out {
		strs[i] = out[i].Hash.String()
	}
	sort.Sort(&popSorter{out: out, strs: strs})
	return out
}

type popSorter struct {
	out  []FilePopularity
	strs []string
}

func (s *popSorter) Len() int { return len(s.out) }
func (s *popSorter) Less(a, b int) bool {
	if s.out[a].Peers != s.out[b].Peers {
		return s.out[a].Peers > s.out[b].Peers
	}
	return s.strs[a] < s.strs[b]
}
func (s *popSorter) Swap(a, b int) {
	s.out[a], s.out[b] = s.out[b], s.out[a]
	s.strs[a], s.strs[b] = s.strs[b], s.strs[a]
}
