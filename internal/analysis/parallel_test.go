package analysis

import (
	"fmt"
	"reflect"
	"slices"
	"testing"
	"time"

	"repro/internal/ed2k"
)

// TestRowParallelQueriesMatchSerial pins the intra-query parallelism
// contract: the worker count can never change a result. Every
// row-splittable query — the query-pair index, the co-interest graph,
// and the Fig 10-12 peer-set builds — must be bit-identical between a
// forced-serial run and any parallel worker count, including counts
// that don't divide the row count evenly and counts exceeding
// GOMAXPROCS. Runs under -race in CI, which also proves the phases
// share no unsynchronized state.
func TestRowParallelQueriesMatchSerial(t *testing.T) {
	defer SetRowWorkers(0)
	start := time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)
	recs := frameSample(start, 20000)
	honeypots := []string{"rc0", "rc1", "nc0", "nc1", "stray", "absent"}
	var files []ed2k.Hash
	for i := 0; i < 25; i += 3 {
		files = append(files, ed2k.SyntheticHash(fmt.Sprint("file-", i)))
	}

	type snapshot struct {
		grouped  []uint32
		off, cnt []int32
		graph    *InterestGraph
		gstats   InterestStats
		hpSets   [][]int32
		hpUni    int
		fileSets [][]int32
		fileUni  int
		popular  []FilePopularity
	}
	snap := func(workers int) snapshot {
		SetRowWorkers(workers)
		f := BuildFrame(recs) // fresh frame: the pair index caches per frame
		var s snapshot
		s.grouped, s.off, s.cnt = f.queryPairs()
		s.graph = f.InterestGraph()
		s.gstats = s.graph.Stats()
		s.hpSets, s.hpUni = f.HoneypotPeerSets(honeypots)
		s.fileSets, s.fileUni = f.FilePeerSets(files)
		s.popular = f.QueriedFiles()
		return s
	}

	serial := snap(1)
	for _, workers := range []int{2, 3, 5, 16} {
		t.Run(fmt.Sprint("workers-", workers), func(t *testing.T) {
			got := snap(workers)
			if !slices.Equal(got.grouped, serial.grouped) ||
				!slices.Equal(got.off, serial.off) || !slices.Equal(got.cnt, serial.cnt) {
				t.Error("query-pair index differs from serial")
			}
			if !reflect.DeepEqual(got.graph, serial.graph) {
				t.Error("interest graph differs from serial")
			}
			if got.gstats != serial.gstats {
				t.Errorf("graph stats differ: %+v vs %+v", got.gstats, serial.gstats)
			}
			if !reflect.DeepEqual(got.hpSets, serial.hpSets) || got.hpUni != serial.hpUni {
				t.Error("honeypot peer sets differ from serial")
			}
			if !reflect.DeepEqual(got.fileSets, serial.fileSets) || got.fileUni != serial.fileUni {
				t.Error("file peer sets differ from serial")
			}
			if !reflect.DeepEqual(got.popular, serial.popular) {
				t.Error("queried-file ranking differs from serial")
			}
		})
	}
}

// TestRowParallelMapFallback drives the peer-set builds through the
// collector's hash-set mode (negative peer numbers disable the dense
// bitsets) and checks the per-worker map merge against serial.
func TestRowParallelMapFallback(t *testing.T) {
	defer SetRowWorkers(0)
	start := time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)
	recs := frameSample(start, 6000)
	for i := range recs {
		if i%17 == 0 {
			recs[i].PeerIP = fmt.Sprint(-1 - i%40) // negative step-2 numbers
		}
	}
	honeypots := []string{"rc0", "rc1", "nc0", "nc1", "stray"}
	var files []ed2k.Hash
	for i := 0; i < 25; i++ {
		files = append(files, ed2k.SyntheticHash(fmt.Sprint("file-", i)))
	}

	SetRowWorkers(1)
	fs := BuildFrame(recs)
	wantHP, wantHPU := fs.HoneypotPeerSets(honeypots)
	wantF, wantFU := fs.FilePeerSets(files)

	SetRowWorkers(4)
	fp := BuildFrame(recs)
	gotHP, gotHPU := fp.HoneypotPeerSets(honeypots)
	gotF, gotFU := fp.FilePeerSets(files)

	if !reflect.DeepEqual(gotHP, wantHP) || gotHPU != wantHPU {
		t.Error("map-fallback honeypot peer sets differ from serial")
	}
	if !reflect.DeepEqual(gotF, wantF) || gotFU != wantFU {
		t.Error("map-fallback file peer sets differ from serial")
	}
}
