package analysis

import (
	"testing"

	"repro/internal/ed2k"
	"repro/internal/logging"
)

func interestRecs() []logging.Record {
	fa, fb, fc := ed2k.SyntheticHash("fa"), ed2k.SyntheticHash("fb"), ed2k.SyntheticHash("fc")
	fd := ed2k.SyntheticHash("fd") // isolated island with peer 9
	return []logging.Record{
		{Time: t0, Kind: logging.KindStartUpload, PeerIP: "0", FileHash: fa},
		{Time: t0, Kind: logging.KindRequestPart, PeerIP: "0", FileHash: fa}, // dup edge
		{Time: t0, Kind: logging.KindStartUpload, PeerIP: "0", FileHash: fb},
		{Time: t0, Kind: logging.KindStartUpload, PeerIP: "1", FileHash: fb},
		{Time: t0, Kind: logging.KindStartUpload, PeerIP: "1", FileHash: fc},
		{Time: t0, Kind: logging.KindStartUpload, PeerIP: "2", FileHash: fa},
		{Time: t0, Kind: logging.KindStartUpload, PeerIP: "9", FileHash: fd},
		{Time: t0, Kind: logging.KindHello, PeerIP: "5"},      // no file: ignored
		{Time: t0, Kind: logging.KindSharedList, PeerIP: "6"}, // ignored kind
	}
}

func TestBuildInterestGraph(t *testing.T) {
	g := BuildInterestGraph(interestRecs())
	if len(g.PeerFiles) != 4 {
		t.Fatalf("peers = %d", len(g.PeerFiles))
	}
	if len(g.FilePeers) != 4 {
		t.Fatalf("files = %d", len(g.FilePeers))
	}
	if got := len(g.PeerFiles["0"]); got != 2 {
		t.Errorf("peer 0 queried %d files (dup edge must collapse)", got)
	}
	fb := ed2k.SyntheticHash("fb")
	if got := len(g.FilePeers[fb]); got != 2 {
		t.Errorf("file fb has %d peers", got)
	}
}

func TestInterestStats(t *testing.T) {
	st := BuildInterestGraph(interestRecs()).Stats()
	if st.Peers != 4 || st.Files != 4 {
		t.Errorf("peers/files = %d/%d", st.Peers, st.Files)
	}
	// Edges: 0-fa, 0-fb, 1-fb, 1-fc, 2-fa, 9-fd = 6.
	if st.Edges != 6 {
		t.Errorf("edges = %d", st.Edges)
	}
	if st.MaxFilesPerPeer != 2 || st.MaxPeersPerFile != 2 {
		t.Errorf("degrees: %d/%d", st.MaxFilesPerPeer, st.MaxPeersPerFile)
	}
	// Components: {0,1,2,fa,fb,fc} and {9,fd} = 2 components.
	if st.Components != 2 {
		t.Errorf("components = %d", st.Components)
	}
	if st.LargestComponent != 6 {
		t.Errorf("largest component = %d", st.LargestComponent)
	}
}

func TestRelatedFiles(t *testing.T) {
	g := BuildInterestGraph(interestRecs())
	fa, fb := ed2k.SyntheticHash("fa"), ed2k.SyntheticHash("fb")
	rel := g.RelatedFiles(fa, 1)
	// fa's peers are {0,2}; peer 0 also queried fb → fb overlaps once.
	if len(rel) != 1 || rel[0].File != fb || rel[0].SharedPeers != 1 {
		t.Errorf("related to fa: %+v", rel)
	}
	if got := g.RelatedFiles(fa, 2); len(got) != 0 {
		t.Errorf("minShared=2 should filter: %+v", got)
	}
	if got := g.RelatedFiles(ed2k.SyntheticHash("unknown"), 1); len(got) != 0 {
		t.Errorf("unknown file: %+v", got)
	}
}

func TestInterestGraphEmpty(t *testing.T) {
	g := BuildInterestGraph(nil)
	st := g.Stats()
	if st.Peers != 0 || st.Files != 0 || st.Edges != 0 || st.Components != 0 {
		t.Errorf("empty stats: %+v", st)
	}
}

func BenchmarkInterestGraph(b *testing.B) {
	// A medium greedy-like dataset: 5k peers × ~3 files.
	var recs []logging.Record
	for p := 0; p < 5000; p++ {
		for f := 0; f < 3; f++ {
			recs = append(recs, logging.Record{
				Time: t0, Kind: logging.KindStartUpload,
				PeerIP:   itoa(p),
				FileHash: ed2k.SyntheticHash(itoa((p * 7 * (f + 1)) % 900)),
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := BuildInterestGraph(recs)
		g.Stats()
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
