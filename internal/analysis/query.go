package analysis

// This file is the declarative half of the analysis query engine: a
// Query is a named, registered artifact extractor with declared inputs
// (the frame's columns plus campaign metadata) and declared dependencies
// on other queries; a Plan is a selected set of queries with per-query
// options, and it round-trips through JSON so "which artifacts to
// extract" is data, exactly like the scenario layer's campaign specs.
// exec.go executes plans.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"slices"
	"time"

	"repro/internal/ed2k"
)

// CampaignMeta is the campaign-level metadata an extractor needs beyond
// the frame itself: the measurement window, the fleet, the strategy
// grouping and the advertised file set. It replaces the loose threading
// of res.Start/res.Days/res.GroupOf/... through every call site;
// scenario.Result.Meta() derives one from a finished campaign.
type CampaignMeta struct {
	// Name labels the campaign ("distributed", "greedy", ...); PaperPlan
	// uses it to pick the campaign's artifact menu.
	Name string `json:"name"`
	// Start and Days delimit the measurement window.
	Start time.Time `json:"start"`
	Days  int       `json:"days"`
	// HoneypotIDs lists the fleet in launch order (Fig 10's units).
	HoneypotIDs []string `json:"honeypot_ids,omitempty"`
	// GroupOf maps honeypot ID to its strategy group (Figs 5-9).
	GroupOf map[string]string `json:"group_of,omitempty"`
	// Advertised is the advertised file set, in spec order; its length
	// is Table I's shared-file count and Figs 11-12 sample from it.
	Advertised []ed2k.Hash `json:"advertised,omitempty"`
	// Scale is the campaign's arrival-intensity scale (1.0 = paper
	// magnitudes). Calibration uses it to scale-normalize expected
	// counts; 0 (a meta persisted before the field existed) reads as 1.
	Scale float64 `json:"scale,omitempty"`
}

// QueryOptions tunes one query's extraction. The zero value means
// "paper defaults" everywhere; Exec normalizes before running.
type QueryOptions struct {
	// SubsetSamples is the number of random subsets per size drawn by
	// the Fig 10-12 union estimators (paper: 100).
	SubsetSamples int `json:"subset_samples,omitempty"`
	// FileSubsetSize is the file-set size of Figs 11-12 (paper: 100).
	FileSubsetSize int `json:"file_subset_size,omitempty"`
	// Seed drives subset and random-file sampling.
	Seed int64 `json:"seed,omitempty"`
	// MaxHours caps the hourly-hello window; 0 means PaperWeekHours.
	MaxHours int `json:"max_hours,omitempty"`
}

// normalize fills paper defaults for the knobs whose zero value means
// "default" (Seed passes through: 0 is a legitimate seed).
func (o QueryOptions) normalize() QueryOptions {
	if o.SubsetSamples <= 0 {
		o.SubsetSamples = 100
	}
	if o.FileSubsetSize <= 0 {
		o.FileSubsetSize = 100
	}
	if o.MaxHours <= 0 {
		o.MaxHours = PaperWeekHours
	}
	return o
}

// QueryContext is what a query's Run sees: the campaign's frame and
// metadata, the normalized options, and the results of the queries it
// declared in Needs.
type QueryContext struct {
	Frame *Frame
	Meta  CampaignMeta
	Opt   QueryOptions

	deps map[string]any
}

// Dep returns a dependency's result. It panics on a name the query did
// not declare in Needs — that is a bug in the query, not a runtime
// condition, and the panic names it.
func (qc *QueryContext) Dep(name string) any {
	v, ok := qc.deps[name]
	if !ok {
		panic(fmt.Sprintf("analysis: query asked for undeclared dependency %q (declare it in Needs)", name))
	}
	return v
}

// dep is the generic form for the built-ins: Dep + a checked assertion.
func dep[T any](qc *QueryContext, name string) T {
	v, ok := qc.Dep(name).(T)
	if !ok {
		panic(fmt.Sprintf("analysis: dependency %q is %T, not %T", name, qc.Dep(name), v))
	}
	return v
}

// Query is a named artifact extractor. Run must be a pure function of
// its context — the engine runs independent queries concurrently, and
// bit-identical serial/parallel results depend on it.
type Query struct {
	// Name identifies the query in plans and report sets.
	Name string
	// Doc is a one-line description (cmd/measure -list-queries).
	Doc string
	// Needs lists queries whose results Run consumes via Dep. Exec adds
	// them to the plan automatically and orders execution by the DAG.
	Needs []string
	// Run extracts the artifact.
	Run func(qc *QueryContext) (any, error)
}

// registry maps query names to queries. Like the scenario registry it
// is populated at init time and extensible by callers.
var registry = map[string]Query{}

// Register adds a named query. It errors on duplicate names so two
// packages cannot silently shadow each other's artifacts.
func Register(q Query) error {
	if q.Name == "" || q.Run == nil {
		return fmt.Errorf("analysis: Register needs a name and a Run function")
	}
	if _, dup := registry[q.Name]; dup {
		return fmt.Errorf("analysis: query %q already registered", q.Name)
	}
	registry[q.Name] = q
	return nil
}

// mustRegister is Register for init-time built-ins.
func mustRegister(q Query) {
	if err := Register(q); err != nil {
		panic(err)
	}
}

// Lookup returns a registered query.
func Lookup(name string) (Query, error) {
	q, ok := registry[name]
	if !ok {
		return Query{}, fmt.Errorf("analysis: unknown query %q (registered: %v)", name, Names())
	}
	return q, nil
}

// Names lists the registered queries, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	slices.Sort(names)
	return names
}

// PlanQuery selects one query with its options.
type PlanQuery struct {
	Name string `json:"name"`
	// Opt tunes this query; dependencies Exec pulls in implicitly
	// inherit it unless they are themselves listed in the plan.
	Opt QueryOptions `json:"options,omitzero"`
}

// Plan is a selected set of queries — the declarative "what to extract"
// half of an analysis run. Plans are data: they marshal to JSON and
// back without loss, so an analysis can live in a file next to the
// campaign spec that produced its dataset.
type Plan struct {
	Queries []PlanQuery `json:"queries"`
}

// NewPlan selects the named queries with shared options.
func NewPlan(opt QueryOptions, names ...string) Plan {
	p := Plan{Queries: make([]PlanQuery, len(names))}
	for i, n := range names {
		p.Queries[i] = PlanQuery{Name: n, Opt: opt}
	}
	return p
}

// ParsePlan decodes a plan from JSON, rejecting unknown fields (a
// typoed option key must not silently fall back to defaults) and
// (eagerly, rather than at Exec time) unknown query names.
func ParsePlan(data []byte) (Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("analysis: decoding plan: %w", err)
	}
	for _, pq := range p.Queries {
		if _, err := Lookup(pq.Name); err != nil {
			return Plan{}, err
		}
	}
	return p, nil
}

// ReportSet is a plan's executed results, keyed by query name. It
// includes dependencies Exec pulled in implicitly.
type ReportSet struct {
	results map[string]any
	stats   ExecStats
}

// ExecStats returns the run's execution telemetry: per-query wall
// times, pool utilization and the DAG's critical path. It is
// intentionally excluded from MarshalJSON — report artifacts stay
// bit-identical across runs; timings never are.
func (rs ReportSet) ExecStats() ExecStats { return rs.stats }

// Value returns a query's result.
func (rs ReportSet) Value(name string) (any, bool) {
	v, ok := rs.results[name]
	return v, ok
}

// Names lists the executed queries, sorted.
func (rs ReportSet) Names() []string {
	names := make([]string, 0, len(rs.results))
	for n := range rs.results {
		names = append(names, n)
	}
	slices.Sort(names)
	return names
}

// MarshalJSON renders the set as one object keyed by query name (keys
// sorted, as encoding/json does for maps).
func (rs ReportSet) MarshalJSON() ([]byte, error) {
	return json.Marshal(rs.results)
}

// Artifact extracts one result with its static type. It errors if the
// query is not in the set or its result is a different type.
func Artifact[T any](rs ReportSet, name string) (T, error) {
	var zero T
	v, ok := rs.results[name]
	if !ok {
		return zero, fmt.Errorf("analysis: query %q not in report set (executed: %v)", name, rs.Names())
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("analysis: query %q result is %T, not %T", name, v, zero)
	}
	return t, nil
}
