package analysis

// This file holds the streaming extractors: the same artifacts as the
// slice-based functions, computed from a record iterator — typically a
// logstore.Iterator over a spill-to-disk campaign — so the analysis
// never materializes the merged log. Memory use is bounded by the
// artifact being built (a map of distinct keys, a bucket array), not by
// the campaign size.

import (
	"time"

	"repro/internal/ed2k"
	"repro/internal/logging"
	"repro/internal/stats"
)

// RecordIter is the canonical streaming record source, promoted to
// package logging so the storage, anonymization and analysis layers
// share one contract: Next returns records in timestamp order and
// io.EOF at the end. logstore's Iterator, manager.DatasetStream and
// every logging pipeline stage satisfy it.
type RecordIter = logging.Iterator

// SliceIter adapts an in-memory record slice to RecordIter.
type SliceIter = logging.SliceIter

// NewSliceIter iterates over recs.
func NewSliceIter(recs []logging.Record) *SliceIter { return logging.NewSliceIter(recs) }

// each drains the iterator, invoking fn per record.
func each(it RecordIter, fn func(r *logging.Record)) error {
	return logging.Each(it, func(r *logging.Record) error {
		fn(r)
		return nil
	})
}

// StreamTableI is ComputeTableI over a record stream.
func StreamTableI(it RecordIter, honeypots, days, sharedFiles int) (TableI, error) {
	peers := map[string]bool{}
	files := map[ed2k.Hash]int64{}
	err := each(it, func(r *logging.Record) {
		if r.PeerIP != "" {
			peers[r.PeerIP] = true
		}
		for _, f := range r.Files {
			files[f.Hash] = f.Size
		}
	})
	if err != nil {
		return TableI{}, err
	}
	var space int64
	for _, sz := range files {
		space += sz
	}
	return TableI{
		Honeypots:     honeypots,
		DurationDays:  days,
		SharedFiles:   sharedFiles,
		DistinctPeers: len(peers),
		DistinctFiles: len(files),
		SpaceBytes:    space,
	}, nil
}

// StreamPeerGrowth is PeerGrowth over a record stream.
func StreamPeerGrowth(it RecordIter, start time.Time, days int) (stats.GrowthCurve, error) {
	tr := stats.NewDistinctTracker(start, Day, days)
	err := each(it, func(r *logging.Record) {
		if r.PeerIP != "" {
			tr.Observe(r.Time, r.PeerIP)
		}
	})
	if err != nil {
		return stats.GrowthCurve{}, err
	}
	return tr.Curve(), nil
}

// StreamHourlyHello is HourlyHello over a record stream.
func StreamHourlyHello(it RecordIter, start time.Time, hours int) ([]int, error) {
	b := stats.NewBuckets(start, time.Hour, hours)
	err := each(it, func(r *logging.Record) {
		if r.Kind == logging.KindHello {
			b.Add(r.Time)
		}
	})
	if err != nil {
		return nil, err
	}
	return b.Counts, nil
}
