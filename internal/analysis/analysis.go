// Package analysis turns a campaign's merged log into the paper's tables
// and figures — Table I's basic statistics, the peer-growth curves of
// Figs 2-3, the hourly HELLO series of Fig 4, the per-strategy
// comparisons of Figs 5-9, the random-subset union estimates of Figs
// 10-12, and the co-interest analysis the paper's conclusion announces —
// through a declarative query engine.
//
// The package has three layers:
//
//   - The Frame (frame.go) is the substrate: a campaign compiled once,
//     via BuildFrame or the streaming BuildFrameIter, into a columnar
//     struct-of-arrays image with every string interned to a dense ID.
//     Every extractor runs over its flat integer columns.
//
//   - A Query (query.go, queries.go) is a named, registered artifact
//     extractor over the frame: declared inputs (frame columns plus a
//     CampaignMeta of campaign-level metadata), declared options
//     (QueryOptions) and declared dependencies on other queries. Every
//     paper artifact is a built-in query; callers register their own
//     with Register, exactly like the scenario registry.
//
//   - A Plan is a selected set of queries — it round-trips through JSON,
//     so an analysis is data the same way a campaign spec is — and Exec
//     (exec.go) runs a plan's dependency closure on a worker pool:
//     independent queries extract concurrently, dependents start when
//     their inputs finish, and results land in a typed ReportSet.
//     Queries are pure functions, so parallel execution is bit-identical
//     to serial.
//
// All extractors operate on the anonymized dataset (step-2 peer numbers),
// exactly like the paper's own post-processing. repro.Analyze executes
// the full paper plan (PaperPlan); cmd/measure -queries extracts any
// subset without computing the rest.
//
// The slice-based functions in this file are the reference
// implementations for the frame's extractors; frame_test.go pins the two
// to bit-identical results, and the repro-level equivalence test pins
// the parallel engine to the retained serial report assembly.
package analysis

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"time"

	"repro/internal/ed2k"
	"repro/internal/logging"
	"repro/internal/stats"
)

// Day is one civil day of virtual time.
const Day = 24 * time.Hour

// TableI mirrors the paper's Table I.
type TableI struct {
	Honeypots     int
	DurationDays  int
	SharedFiles   int
	DistinctPeers int
	DistinctFiles int
	SpaceBytes    int64
}

// String renders the table row-wise as in the paper.
func (t TableI) String() string {
	return fmt.Sprintf(
		"Number of honeypots        %8d\n"+
			"Duration in days           %8d\n"+
			"Number of shared files     %8d\n"+
			"Number of distinct peers   %8d\n"+
			"Number of distinct files   %8d\n"+
			"Space used by distinct files %8.1f TB",
		t.Honeypots, t.DurationDays, t.SharedFiles, t.DistinctPeers, t.DistinctFiles,
		float64(t.SpaceBytes)/1e12)
}

// ComputeTableI derives Table I from a merged log.
func ComputeTableI(recs []logging.Record, honeypots, days, sharedFiles int) TableI {
	t, _ := StreamTableI(NewSliceIter(recs), honeypots, days, sharedFiles) // SliceIter never errors
	return t
}

// PeerGrowth computes Fig 2 / Fig 3: per-day cumulative distinct peers
// and per-day new peers, over all query records.
func PeerGrowth(recs []logging.Record, start time.Time, days int) stats.GrowthCurve {
	g, _ := StreamPeerGrowth(NewSliceIter(recs), start, days) // SliceIter never errors
	return g
}

// HourlyHello computes Fig 4: HELLO messages received per hour over the
// first `hours` hours.
func HourlyHello(recs []logging.Record, start time.Time, hours int) []int {
	counts, _ := StreamHourlyHello(NewSliceIter(recs), start, hours) // SliceIter never errors
	return counts
}

// GroupSeries is a per-strategy-group daily series.
type GroupSeries struct {
	Days   []int
	Groups map[string][]int // group name -> value per day (cumulative)
}

// GroupDistinctPeers computes Figs 5-6: cumulative distinct peers sending
// messages of the given kind to each strategy group, per day.
func GroupDistinctPeers(recs []logging.Record, groupOf map[string]string, kind logging.Kind, start time.Time, days int) GroupSeries {
	perGroup := map[string]map[string]int{} // group -> peer -> first day
	for i := range recs {
		r := &recs[i]
		if r.Kind != kind || r.PeerIP == "" {
			continue
		}
		g, ok := groupOf[r.Honeypot]
		if !ok {
			continue
		}
		d := dayIndex(r.Time, start)
		if d < 0 || d >= days {
			continue
		}
		m := perGroup[g]
		if m == nil {
			m = map[string]int{}
			perGroup[g] = m
		}
		if prev, seen := m[r.PeerIP]; !seen || d < prev {
			m[r.PeerIP] = d
		}
	}
	return cumulateFirstDays(perGroup, days)
}

// GroupMessageCounts computes Fig 7: cumulative message counts of the
// given kind per strategy group, per day.
func GroupMessageCounts(recs []logging.Record, groupOf map[string]string, kind logging.Kind, start time.Time, days int) GroupSeries {
	perDay := map[string][]int{}
	for i := range recs {
		r := &recs[i]
		if r.Kind != kind {
			continue
		}
		g, ok := groupOf[r.Honeypot]
		if !ok {
			continue
		}
		d := dayIndex(r.Time, start)
		if d < 0 || d >= days {
			continue
		}
		if perDay[g] == nil {
			perDay[g] = make([]int, days)
		}
		perDay[g][d]++
	}
	out := GroupSeries{Days: dayAxis(days), Groups: map[string][]int{}}
	for g, xs := range perDay {
		out.Groups[g] = stats.CumulativeInts(xs)
	}
	return out
}

// TopPeer finds the peer that sent the most queries overall (HELLO +
// START-UPLOAD + REQUEST-PART), as selected for Figs 8-9.
func TopPeer(recs []logging.Record) (string, int) {
	keys := make([]string, 0, len(recs))
	for i := range recs {
		switch recs[i].Kind {
		case logging.KindHello, logging.KindStartUpload, logging.KindRequestPart:
			if recs[i].PeerIP != "" {
				keys = append(keys, recs[i].PeerIP)
			}
		}
	}
	return stats.TopKey(keys)
}

// TopPeerSeries computes Figs 8-9: cumulative messages of the given kind
// received from one specific peer, per strategy group per day.
func TopPeerSeries(recs []logging.Record, groupOf map[string]string, peer string, kind logging.Kind, start time.Time, days int) GroupSeries {
	perDay := map[string][]int{}
	for i := range recs {
		r := &recs[i]
		if r.Kind != kind || r.PeerIP != peer {
			continue
		}
		g, ok := groupOf[r.Honeypot]
		if !ok {
			continue
		}
		d := dayIndex(r.Time, start)
		if d < 0 || d >= days {
			continue
		}
		if perDay[g] == nil {
			perDay[g] = make([]int, days)
		}
		perDay[g][d]++
	}
	out := GroupSeries{Days: dayAxis(days), Groups: map[string][]int{}}
	for g, xs := range perDay {
		out.Groups[g] = stats.CumulativeInts(xs)
	}
	return out
}

// HoneypotPeerSets builds, for Fig 10, the set of distinct peer numbers
// each honeypot observed. Records must be renumbered (step 2); the
// returned universe is the smallest array size covering all numbers.
func HoneypotPeerSets(recs []logging.Record, honeypotIDs []string) (sets [][]int32, universe int) {
	idx := make(map[string]int, len(honeypotIDs))
	for i, id := range honeypotIDs {
		idx[id] = i
	}
	seen := make([]map[int32]bool, len(honeypotIDs))
	for i := range seen {
		seen[i] = map[int32]bool{}
	}
	maxID := -1
	for i := range recs {
		r := &recs[i]
		hi, ok := idx[r.Honeypot]
		if !ok || r.PeerIP == "" {
			continue
		}
		n, err := strconv.Atoi(r.PeerIP)
		if err != nil {
			continue
		}
		if n > maxID {
			maxID = n
		}
		seen[hi][int32(n)] = true
	}
	sets = make([][]int32, len(honeypotIDs))
	for i, m := range seen {
		s := make([]int32, 0, len(m))
		for n := range m {
			s = append(s, n)
		}
		slices.Sort(s)
		sets[i] = s
	}
	return sets, maxID + 1
}

// FilePeerSets builds, for Figs 11-12, the distinct peer numbers that
// queried each given file (START-UPLOAD or REQUEST-PART records).
func FilePeerSets(recs []logging.Record, files []ed2k.Hash) (sets [][]int32, universe int) {
	idx := make(map[ed2k.Hash]int, len(files))
	for i, h := range files {
		idx[h] = i
	}
	seen := make([]map[int32]bool, len(files))
	for i := range seen {
		seen[i] = map[int32]bool{}
	}
	maxID := -1
	for i := range recs {
		r := &recs[i]
		if r.Kind != logging.KindStartUpload && r.Kind != logging.KindRequestPart {
			continue
		}
		fi, ok := idx[r.FileHash]
		if !ok || r.PeerIP == "" {
			continue
		}
		n, err := strconv.Atoi(r.PeerIP)
		if err != nil {
			continue
		}
		if n > maxID {
			maxID = n
		}
		seen[fi][int32(n)] = true
	}
	sets = make([][]int32, len(files))
	for i, m := range seen {
		s := make([]int32, 0, len(m))
		for n := range m {
			s = append(s, n)
		}
		slices.Sort(s)
		sets[i] = s
	}
	return sets, maxID + 1
}

// QueriedFiles returns every file hash that received START-UPLOAD or
// REQUEST-PART queries, with the number of distinct querying peers,
// sorted by decreasing peer count (ties by hash for determinism).
type FilePopularity struct {
	Hash  ed2k.Hash
	Peers int
}

// QueriedFiles ranks queried files by distinct peers.
func QueriedFiles(recs []logging.Record) []FilePopularity {
	perFile := map[ed2k.Hash]map[string]bool{}
	for i := range recs {
		r := &recs[i]
		if r.Kind != logging.KindStartUpload && r.Kind != logging.KindRequestPart {
			continue
		}
		if r.FileHash.Zero() || r.PeerIP == "" {
			continue
		}
		m := perFile[r.FileHash]
		if m == nil {
			m = map[string]bool{}
			perFile[r.FileHash] = m
		}
		m[r.PeerIP] = true
	}
	out := make([]FilePopularity, 0, len(perFile))
	for h, peers := range perFile {
		out = append(out, FilePopularity{Hash: h, Peers: len(peers)})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Peers != out[b].Peers {
			return out[a].Peers > out[b].Peers
		}
		return out[a].Hash.String() < out[b].Hash.String()
	})
	return out
}

// helpers

func dayIndex(t, start time.Time) int {
	if t.Before(start) {
		return -1
	}
	return int(t.Sub(start) / Day)
}

func dayAxis(days int) []int {
	out := make([]int, days)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

func cumulateFirstDays(perGroup map[string]map[string]int, days int) GroupSeries {
	out := GroupSeries{Days: dayAxis(days), Groups: map[string][]int{}}
	for g, firstDay := range perGroup {
		news := make([]int, days)
		for _, d := range firstDay {
			news[d]++
		}
		out.Groups[g] = stats.CumulativeInts(news)
	}
	return out
}
