package analysis

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"slices"
	"strings"
	"testing"
	"time"

	"repro/internal/ed2k"
)

// sampleMeta pairs frameSample with campaign metadata shaped like a
// real distributed-and-greedy hybrid: several honeypots in two groups
// and an advertised list, so every built-in query has real inputs.
func sampleMeta(start time.Time) CampaignMeta {
	adv := make([]ed2k.Hash, 40)
	for i := range adv {
		adv[i] = ed2k.SyntheticHash(fmt.Sprint("adv-", i))
	}
	return CampaignMeta{
		Name:        "greedy",
		Start:       start,
		Days:        8,
		HoneypotIDs: []string{"rc0", "rc1", "nc0", "nc1", "stray"},
		GroupOf:     frameGroups,
		Advertised:  adv,
	}
}

// TestNamesDeterministicOrder pins the listing contract the service
// plane serves over GET /queries: sorted, identical across calls, and
// insulated from caller mutation.
func TestNamesDeterministicOrder(t *testing.T) {
	first := Names()
	if !slices.IsSorted(first) {
		t.Fatalf("Names not sorted: %v", first)
	}
	clobbered := Names()
	for i := range clobbered {
		clobbered[i] = "clobbered"
	}
	second := Names()
	if !slices.Equal(first, second) {
		t.Errorf("Names changed across calls:\nfirst:  %v\nsecond: %v", first, second)
	}
}

func TestQueryRegistry(t *testing.T) {
	names := Names()
	if !slices.IsSorted(names) {
		t.Error("Names not sorted")
	}
	for _, want := range []string{QueryTableI, QueryPeerGrowth, QueryHourlyHello,
		QueryHoneypotSubsets, QueryPopularFileSubsets, QueryCoInterest} {
		if !slices.Contains(names, want) {
			t.Errorf("built-in %q not registered", want)
		}
	}
	if _, err := Lookup("no-such-query"); err == nil {
		t.Error("Lookup of unknown query succeeded")
	}
	if err := Register(Query{Name: QueryTableI, Run: func(*QueryContext) (any, error) { return nil, nil }}); err == nil {
		t.Error("duplicate Register succeeded")
	}
	if err := Register(Query{}); err == nil {
		t.Error("empty Register succeeded")
	}
	// Every declared dependency must itself be registered.
	for _, name := range names {
		q, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range q.Needs {
			if _, err := Lookup(d); err != nil {
				t.Errorf("query %q needs unregistered %q", name, d)
			}
		}
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	plan := Plan{Queries: []PlanQuery{
		{Name: QueryTableI},
		{Name: QueryHourlyHello, Opt: QueryOptions{MaxHours: 48}},
		{Name: QueryPopularFileSubsets, Opt: QueryOptions{SubsetSamples: 7, FileSubsetSize: 5, Seed: 42}},
	}}
	data, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Zero options marshal away entirely; set ones appear.
	if s := string(data); strings.Contains(s, `"table-i","options"`) {
		t.Errorf("zero options not omitted: %s", s)
	}
	back, err := ParsePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan, back) {
		t.Errorf("round-trip:\n got %+v\nwant %+v", back, plan)
	}

	if _, err := ParsePlan([]byte(`{"queries":[{"name":"no-such-query"}]}`)); err == nil {
		t.Error("ParsePlan accepted an unknown query name")
	}
	if _, err := ParsePlan([]byte(`{"queries":`)); err == nil {
		t.Error("ParsePlan accepted truncated JSON")
	}
	// A typoed option key must error, not silently fall back to defaults.
	if _, err := ParsePlan([]byte(`{"queries":[{"name":"table-i","options":{"subset_sampels":7}}]}`)); err == nil {
		t.Error("ParsePlan accepted an unknown option field")
	}
	if _, err := ParsePlan([]byte(`{"querys":[{"name":"table-i"}]}`)); err == nil {
		t.Error("ParsePlan accepted an unknown top-level field")
	}
}

// TestExecFullPlanParallelMatchesSerial is the engine's determinism
// property on the synthetic sample: the full paper plan executed on the
// GOMAXPROCS pool must be bit-identical, artifact by artifact, to the
// one-worker serial execution. (The repro-level test pins the same
// property on every registered scenario.)
func TestExecFullPlanParallelMatchesSerial(t *testing.T) {
	start := time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)
	meta := sampleMeta(start)
	opt := QueryOptions{SubsetSamples: 20, FileSubsetSize: 10, Seed: 3}
	plan := PaperPlan(meta, opt)
	if len(plan.Queries) != 16 {
		t.Fatalf("full paper plan has %d queries", len(plan.Queries))
	}

	// Fresh frames per execution: lazy caches must not leak state
	// between the serial and parallel runs being compared.
	recs := frameSample(start, 4000)
	serial, err := ExecWorkers(BuildFrame(recs), meta, plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Exec(BuildFrame(recs), meta, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Names(), parallel.Names()) {
		t.Fatalf("executed sets differ: %v vs %v", serial.Names(), parallel.Names())
	}
	for _, name := range serial.Names() {
		sv, _ := serial.Value(name)
		pv, _ := parallel.Value(name)
		if !reflect.DeepEqual(sv, pv) {
			t.Errorf("query %q differs between serial and parallel", name)
		}
	}
	// And against the frame methods directly.
	ti, err := Artifact[TableI](parallel, QueryTableI)
	if err != nil {
		t.Fatal(err)
	}
	if want := BuildFrame(recs).TableI(len(meta.HoneypotIDs), meta.Days, len(meta.Advertised)); ti != want {
		t.Errorf("table-i: got %+v want %+v", ti, want)
	}
}

func TestExecResolvesDependencies(t *testing.T) {
	start := time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)
	meta := sampleMeta(start)
	f := BuildFrame(frameSample(start, 1500))

	// Asking for one leaf pulls in its whole chain, with the leaf's
	// options inherited by the implicit dependencies.
	opt := QueryOptions{FileSubsetSize: 4, SubsetSamples: 5, Seed: 9}
	rs, err := Exec(f, meta, NewPlan(opt, QueryPopularFileSubsets))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{QueryPopularFilePeerSets, QueryPopularFileSubsets, QueryPopularFiles, QueryQueriedFiles}
	if got := rs.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("executed %v, want %v", got, want)
	}
	files, err := Artifact[[]ed2k.Hash](rs, QueryPopularFiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 4 {
		t.Errorf("implicit popular-files did not inherit FileSubsetSize=4: %d files", len(files))
	}

	// An explicitly listed dependency keeps its own options even when a
	// later entry would pull it in with different ones.
	rs, err = Exec(f, meta, Plan{Queries: []PlanQuery{
		{Name: QueryPopularFiles, Opt: QueryOptions{FileSubsetSize: 2}},
		{Name: QueryPopularFileSubsets, Opt: opt},
	}})
	if err != nil {
		t.Fatal(err)
	}
	files, err = Artifact[[]ed2k.Hash](rs, QueryPopularFiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Errorf("explicit popular-files options overridden: %d files", len(files))
	}

	// Unknown names and duplicates are plan errors.
	if _, err := Exec(f, meta, NewPlan(QueryOptions{}, "no-such-query")); err == nil {
		t.Error("Exec accepted an unknown query")
	}
	if _, err := Exec(f, meta, NewPlan(QueryOptions{}, QueryTableI, QueryTableI)); err == nil {
		t.Error("Exec accepted a duplicate plan entry")
	}
}

func TestExecCycleAndErrorPropagation(t *testing.T) {
	mustRegister(Query{
		Name: "test-cycle-a", Needs: []string{"test-cycle-b"},
		Run: func(*QueryContext) (any, error) { return nil, nil },
	})
	mustRegister(Query{
		Name: "test-cycle-b", Needs: []string{"test-cycle-a"},
		Run: func(*QueryContext) (any, error) { return nil, nil },
	})
	f := BuildFrame(nil)
	if _, err := Exec(f, CampaignMeta{}, NewPlan(QueryOptions{}, "test-cycle-a")); err == nil ||
		!strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not reported: %v", err)
	}

	boom := errors.New("boom")
	mustRegister(Query{
		Name: "test-fail",
		Run:  func(*QueryContext) (any, error) { return nil, boom },
	})
	ran := false
	mustRegister(Query{
		Name: "test-fail-dependent", Needs: []string{"test-fail"},
		Run: func(*QueryContext) (any, error) { ran = true; return 1, nil },
	})
	_, err := Exec(f, CampaignMeta{}, NewPlan(QueryOptions{}, "test-fail-dependent", QueryTableI))
	if !errors.Is(err, boom) {
		t.Errorf("query error not propagated: %v", err)
	}
	if ran {
		t.Error("dependent of a failed query ran anyway")
	}
}

func TestReportSetAccessors(t *testing.T) {
	start := time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)
	meta := sampleMeta(start)
	rs, err := Exec(BuildFrame(frameSample(start, 500)), meta, NewPlan(QueryOptions{}, QueryTableI))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Artifact[TableI](rs, QueryTableI); err != nil {
		t.Errorf("typed access: %v", err)
	}
	if _, err := Artifact[int](rs, QueryTableI); err == nil {
		t.Error("Artifact accepted the wrong type")
	}
	if _, err := Artifact[TableI](rs, QueryPeerGrowth); err == nil {
		t.Error("Artifact returned a result that was never executed")
	}
	if _, ok := rs.Value(QueryTableI); !ok {
		t.Error("Value lost the result")
	}
	data, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded[QueryTableI]; !ok || len(decoded) != 1 {
		t.Errorf("ReportSet JSON: %s", data)
	}
}

// TestHourlyHelloWindowOption pins the Fig 4 clamp: the default window
// is the paper's first week however long the campaign ran, and MaxHours
// overrides it.
func TestHourlyHelloWindowOption(t *testing.T) {
	start := time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)
	meta := sampleMeta(start)
	meta.Days = 32 // 768 hours, far past the one-week cap
	f := BuildFrame(frameSample(start, 800))

	rs, err := Exec(f, meta, NewPlan(QueryOptions{}, QueryHourlyHello))
	if err != nil {
		t.Fatal(err)
	}
	hh, err := Artifact[[]int](rs, QueryHourlyHello)
	if err != nil {
		t.Fatal(err)
	}
	if len(hh) != PaperWeekHours {
		t.Errorf("default window: %d buckets, want PaperWeekHours=%d", len(hh), PaperWeekHours)
	}

	rs, err = Exec(f, meta, NewPlan(QueryOptions{MaxHours: 48}, QueryHourlyHello))
	if err != nil {
		t.Fatal(err)
	}
	hh, err = Artifact[[]int](rs, QueryHourlyHello)
	if err != nil {
		t.Fatal(err)
	}
	if len(hh) != 48 {
		t.Errorf("MaxHours=48 window: %d buckets", len(hh))
	}

	// A campaign shorter than the cap keeps its own full window.
	meta.Days = 2
	rs, err = Exec(f, meta, NewPlan(QueryOptions{}, QueryHourlyHello))
	if err != nil {
		t.Fatal(err)
	}
	hh, err = Artifact[[]int](rs, QueryHourlyHello)
	if err != nil {
		t.Fatal(err)
	}
	if len(hh) != 48 {
		t.Errorf("2-day window: %d buckets", len(hh))
	}
}
