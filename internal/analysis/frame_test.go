package analysis

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/ed2k"
	"repro/internal/logging"
	"repro/internal/logstore"
)

// frameSample fabricates a campaign-shaped merged log exercising every
// code path the extractors care about: several honeypots in two strategy
// groups (plus one outside any group), decimal step-2 peer numbers and
// hex step-1 leftovers, empty peers, all record kinds, zero and non-zero
// file hashes, shared lists with duplicate hashes, and timestamps before
// and after the analysis window.
func frameSample(start time.Time, n int) []logging.Record {
	rng := rand.New(rand.NewSource(7))
	hps := []string{"rc0", "rc1", "nc0", "nc1", "stray"}
	kinds := []logging.Kind{
		logging.KindHello, logging.KindStartUpload, logging.KindRequestPart,
		logging.KindSharedList, logging.KindConnect, logging.KindDisconnect,
	}
	recs := make([]logging.Record, 0, n)
	for i := 0; i < n; i++ {
		r := logging.Record{
			Time:     start.Add(time.Duration(rng.Intn(8*24*60)-60) * time.Minute),
			Honeypot: hps[rng.Intn(len(hps))],
			Kind:     kinds[rng.Intn(len(kinds))],
		}
		switch rng.Intn(10) {
		case 0: // connection event without a peer
		case 1: // step-1 hex leftover (does not parse as a number)
			r.PeerIP = fmt.Sprintf("%08x", rng.Intn(50))
		default: // step-2 decimal number (sparse: not every int appears)
			r.PeerIP = fmt.Sprint(rng.Intn(60) * 3)
		}
		if rng.Intn(3) != 0 {
			r.FileHash = ed2k.SyntheticHash(fmt.Sprint("file-", rng.Intn(25)))
		}
		if r.Kind == logging.KindSharedList {
			for j := rng.Intn(4); j > 0; j-- {
				r.Files = append(r.Files, logging.SharedFile{
					Hash: ed2k.SyntheticHash(fmt.Sprint("shared-", rng.Intn(30))),
					Name: "f.bin",
					Size: int64(rng.Intn(5)) << 28,
				})
			}
		}
		recs = append(recs, r)
	}
	return recs
}

var frameGroups = map[string]string{
	"rc0": "random-content", "rc1": "random-content",
	"nc0": "no-content", "nc1": "no-content",
}

func TestFrameExtractorsMatchReference(t *testing.T) {
	start := time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)
	const days = 7
	recs := frameSample(start, 4000)
	f := BuildFrame(recs)

	if f.Len() != len(recs) {
		t.Fatalf("frame holds %d records, want %d", f.Len(), len(recs))
	}

	wantTable := ComputeTableI(recs, 24, days, 4)
	if got := f.TableI(24, days, 4); got != wantTable {
		t.Errorf("TableI:\n got %+v\nwant %+v", got, wantTable)
	}

	if got, want := f.PeerGrowth(start, days), PeerGrowth(recs, start, days); !reflect.DeepEqual(got, want) {
		t.Errorf("PeerGrowth:\n got %+v\nwant %+v", got, want)
	}

	if got, want := f.HourlyHello(start, 100), HourlyHello(recs, start, 100); !reflect.DeepEqual(got, want) {
		t.Errorf("HourlyHello:\n got %v\nwant %v", got, want)
	}

	for _, kind := range []logging.Kind{logging.KindHello, logging.KindStartUpload} {
		got := f.GroupDistinctPeers(frameGroups, kind, start, days)
		want := GroupDistinctPeers(recs, frameGroups, kind, start, days)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("GroupDistinctPeers(%v):\n got %+v\nwant %+v", kind, got, want)
		}
	}

	gotGM := f.GroupMessageCounts(frameGroups, logging.KindRequestPart, start, days)
	wantGM := GroupMessageCounts(recs, frameGroups, logging.KindRequestPart, start, days)
	if !reflect.DeepEqual(gotGM, wantGM) {
		t.Errorf("GroupMessageCounts:\n got %+v\nwant %+v", gotGM, wantGM)
	}

	gotPeer, gotN := f.TopPeer()
	wantPeer, wantN := TopPeer(recs)
	if gotPeer != wantPeer || gotN != wantN {
		t.Errorf("TopPeer: got %q/%d want %q/%d", gotPeer, gotN, wantPeer, wantN)
	}

	for _, peer := range []string{gotPeer, "no-such-peer", ""} {
		got := f.TopPeerSeries(frameGroups, peer, logging.KindRequestPart, start, days)
		want := TopPeerSeries(recs, frameGroups, peer, logging.KindRequestPart, start, days)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("TopPeerSeries(%q):\n got %+v\nwant %+v", peer, got, want)
		}
	}

	hpIDs := []string{"rc0", "rc1", "nc0", "nc1", "absent-hp"}
	gotSets, gotUni := f.HoneypotPeerSets(hpIDs)
	wantSets, wantUni := HoneypotPeerSets(recs, hpIDs)
	if gotUni != wantUni || !reflect.DeepEqual(gotSets, wantSets) {
		t.Errorf("HoneypotPeerSets: universe %d vs %d, sets\n got %v\nwant %v",
			gotUni, wantUni, gotSets, wantSets)
	}

	ranked := QueriedFiles(recs)
	if got := f.QueriedFiles(); !reflect.DeepEqual(got, ranked) {
		t.Errorf("QueriedFiles:\n got %v\nwant %v", got, ranked)
	}

	var files []ed2k.Hash
	for i := 0; i < len(ranked) && i < 10; i++ {
		files = append(files, ranked[i].Hash)
	}
	files = append(files, ed2k.SyntheticHash("never-queried"))
	gotFS, gotFU := f.FilePeerSets(files)
	wantFS, wantFU := FilePeerSets(recs, files)
	if gotFU != wantFU || !reflect.DeepEqual(gotFS, wantFS) {
		t.Errorf("FilePeerSets: universe %d vs %d, sets\n got %v\nwant %v",
			gotFU, wantFU, gotFS, wantFS)
	}

	gotGraph := f.InterestGraph()
	wantGraph := BuildInterestGraph(recs)
	if !reflect.DeepEqual(gotGraph.PeerFiles, wantGraph.PeerFiles) {
		t.Errorf("InterestGraph.PeerFiles differs: %d vs %d peers",
			len(gotGraph.PeerFiles), len(wantGraph.PeerFiles))
	}
	if !reflect.DeepEqual(gotGraph.FilePeers, wantGraph.FilePeers) {
		t.Errorf("InterestGraph.FilePeers differs: %d vs %d files",
			len(gotGraph.FilePeers), len(wantGraph.FilePeers))
	}
	if got, want := gotGraph.Stats(), wantGraph.Stats(); got != want {
		t.Errorf("InterestGraph.Stats:\n got %+v\nwant %+v", got, want)
	}
}

func TestFrameEmpty(t *testing.T) {
	f := BuildFrame(nil)
	if f.Len() != 0 || f.DistinctPeers() != 0 {
		t.Fatalf("empty frame: %d records, %d peers", f.Len(), f.DistinctPeers())
	}
	if got := f.TableI(1, 1, 0); got.DistinctPeers != 0 || got.DistinctFiles != 0 {
		t.Errorf("TableI on empty frame: %+v", got)
	}
	peer, n := f.TopPeer()
	if peer != "" || n != 0 {
		t.Errorf("TopPeer on empty frame: %q/%d", peer, n)
	}
	sets, universe := f.HoneypotPeerSets([]string{"a"})
	if universe != 0 || len(sets) != 1 || len(sets[0]) != 0 {
		t.Errorf("HoneypotPeerSets on empty frame: %v, %d", sets, universe)
	}
	if g := f.PeerGrowth(time.Unix(0, 0), 3); g.Cumulative[2] != 0 {
		t.Errorf("PeerGrowth on empty frame: %+v", g)
	}
}

// TestBuildFrameIterFromLogstore pins the streaming constructor: a frame
// built from a logstore's merged iterator must equal the frame built
// from the equivalent in-memory slice.
func TestBuildFrameIterFromLogstore(t *testing.T) {
	start := time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)
	recs := frameSample(start, 1500)
	// The iterator merges by timestamp; feed it pre-sorted records so the
	// slice and stream orders agree.
	for i := range recs {
		recs[i].Time = start.Add(time.Duration(i) * time.Second)
	}

	store, err := logstore.Open(t.TempDir(), logstore.Options{SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// Round-robin over shards in record order: the k-way merge returns
	// exactly the original sequence because timestamps are distinct.
	for i := range recs {
		sh, err := store.Shard(fmt.Sprint("hp-", i%3))
		if err != nil {
			t.Fatal(err)
		}
		if err := sh.AppendRecord(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	it, err := store.Iterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	streamed, err := BuildFrameIter(it)
	if err != nil {
		t.Fatal(err)
	}
	direct := BuildFrame(recs)

	if streamed.Len() != direct.Len() {
		t.Fatalf("streamed %d records, direct %d", streamed.Len(), direct.Len())
	}
	const days = 7
	if got, want := streamed.TableI(3, days, 0), direct.TableI(3, days, 0); got != want {
		t.Errorf("TableI: streamed %+v direct %+v", got, want)
	}
	if got, want := streamed.PeerGrowth(start, days), direct.PeerGrowth(start, days); !reflect.DeepEqual(got, want) {
		t.Errorf("PeerGrowth differs between streamed and direct frames")
	}
	if got, want := streamed.QueriedFiles(), direct.QueriedFiles(); !reflect.DeepEqual(got, want) {
		t.Errorf("QueriedFiles differs between streamed and direct frames")
	}
	gotSets, gotU := streamed.HoneypotPeerSets([]string{"rc0", "nc0"})
	wantSets, wantU := direct.HoneypotPeerSets([]string{"rc0", "nc0"})
	if gotU != wantU || !reflect.DeepEqual(gotSets, wantSets) {
		t.Errorf("HoneypotPeerSets differs between streamed and direct frames")
	}
}

// TestFramePeerSetFallback drives the collector through its hash-set
// path (peer numbers too sparse for bitsets) and checks it against the
// reference implementation.
func TestFramePeerSetFallback(t *testing.T) {
	start := time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)
	recs := []logging.Record{
		{Time: start, Honeypot: "a", Kind: logging.KindHello, PeerIP: "999999999"},
		{Time: start, Honeypot: "a", Kind: logging.KindHello, PeerIP: "3"},
		{Time: start, Honeypot: "b", Kind: logging.KindHello, PeerIP: "-7"},
		{Time: start, Honeypot: "b", Kind: logging.KindHello, PeerIP: "999999999"},
	}
	f := BuildFrame(recs)
	gotSets, gotU := f.HoneypotPeerSets([]string{"a", "b"})
	wantSets, wantU := HoneypotPeerSets(recs, []string{"a", "b"})
	if gotU != wantU || !reflect.DeepEqual(gotSets, wantSets) {
		t.Errorf("fallback path: got %v/%d want %v/%d", gotSets, gotU, wantSets, wantU)
	}
}
