package analysis

// Intra-query row-range parallelism. The query engine (exec.go) already
// runs independent queries concurrently; this file parallelizes the
// *inside* of the heaviest single queries — the co-interest graph and
// the Fig 10-12 peer-set builds — by splitting their row scans across
// contiguous ranges of the frame's columns and merging deterministically.
// The contract is the same bit-identical pinning as across-query
// parallelism: worker count can never change a result, only its
// latency (see docs/PERFORMANCE.md for the per-query argument).

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// rowWorkers is the package-wide worker count for row-range splits.
// 0 means GOMAXPROCS with automatic scale-down for small inputs.
var rowWorkers atomic.Int32

// SetRowWorkers sets the number of workers row-splittable queries use:
// 0 restores the automatic default, 1 forces serial execution, any
// other value is used as-is (the equivalence tests sweep it to prove
// results don't depend on it). Safe to call concurrently with queries;
// each query reads the knob once at its start.
func SetRowWorkers(n int) {
	if n < 0 {
		n = 0
	}
	rowWorkers.Store(int32(n))
}

// minRowsPerWorker keeps small scans serial in automatic mode: below
// ~32k rows per worker, goroutine handoff costs more than the scan.
const minRowsPerWorker = 1 << 15

// resolveWorkers picks the worker count for an n-row scan.
func resolveWorkers(n int) int {
	w := int(rowWorkers.Load())
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
		if m := n / minRowsPerWorker; w > m {
			w = m
		}
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// chunkBounds returns the half-open row range of chunk c out of workers.
func chunkBounds(n, workers, c int) (lo, hi int) {
	return c * n / workers, (c + 1) * n / workers
}

// parallelChunks runs fn over every chunk of [0, n), inline when there
// is only one. fn must only write state owned by its chunk.
func parallelChunks(n, workers int, fn func(c, lo, hi int)) {
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for c := 0; c < workers; c++ {
		go func(c int) {
			defer wg.Done()
			lo, hi := chunkBounds(n, workers, c)
			fn(c, lo, hi)
		}(c)
	}
	wg.Wait()
}

// volumeCuts partitions a symbol space [0, nSyms) into len-balanced
// contiguous ranges: off is the symbols' exclusive prefix over a
// grouped array of the given total length, and each range receives
// roughly total/workers grouped entries. cuts has workers+1 entries;
// range c is [cuts[c], cuts[c+1]).
func volumeCuts(off []int32, total, nSyms, workers int) []int {
	cuts := make([]int, workers+1)
	cuts[workers] = nSyms
	for c := 1; c < workers; c++ {
		target := int32(c * total / workers)
		cuts[c] = sort.Search(nSyms, func(s int) bool { return off[s] >= target })
	}
	return cuts
}

// parallelCuts runs fn over the ranges of a volumeCuts partition,
// inline when there is only one.
func parallelCuts(cuts []int, fn func(c, lo, hi int)) {
	workers := len(cuts) - 1
	if workers <= 1 {
		fn(0, cuts[0], cuts[workers])
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for c := 0; c < workers; c++ {
		go func(c int) {
			defer wg.Done()
			fn(c, cuts[c], cuts[c+1])
		}(c)
	}
	wg.Wait()
}

// collectPeerSets runs a peer-set observe loop across row ranges with
// one collector per worker, then merges. The merged result is the union
// of per-chunk distinct sets, emitted in ascending order — identical to
// the serial scan's sorted output by construction, whatever the worker
// count. In dense-bitset mode the worker count is capped so the
// combined footprint stays within bitsetWordLimit, the same bound the
// serial collector honors.
func collectPeerSets(n, units int, maxID, minN int64, observe func(c *peerSetCollector, lo, hi int)) [][]int32 {
	workers := resolveWorkers(n)
	if workers > 1 && units > 0 && maxID >= 0 && minN >= 0 {
		if total := (maxID/64 + 1) * int64(units); total <= bitsetWordLimit {
			if m := int(bitsetWordLimit / total); workers > m {
				workers = m
			}
		}
	}
	colls := make([]*peerSetCollector, workers)
	parallelChunks(n, workers, func(c, lo, hi int) {
		coll := newPeerSetCollector(units, maxID, minN)
		observe(coll, lo, hi)
		colls[c] = coll
	})
	root := colls[0]
	for _, c := range colls[1:] {
		root.merge(c)
	}
	return root.finish()
}
