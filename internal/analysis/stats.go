package analysis

// Execution telemetry for the query engine: per-query wall times, pool
// utilization and the dependency DAG's critical path. The stats ride on
// the ReportSet but deliberately stay OUT of its JSON marshalling —
// report artifacts must be bit-identical across runs and worker counts,
// and wall times never are. Consumers read them through ExecStats().

import (
	"slices"
	"time"
)

// QueryStat is one executed query's timing.
type QueryStat struct {
	// Name is the query's registered name.
	Name string `json:"name"`
	// Wall is the query's own Run wall time (excluding its dependencies).
	Wall time.Duration `json:"wall"`
}

// ExecStats is one Exec run's telemetry.
type ExecStats struct {
	// Queries lists every executed query's timing, sorted by name.
	Queries []QueryStat `json:"queries"`
	// Workers is the pool size actually used; Wall is the whole run's
	// wall time; Busy sums the per-query walls (Busy/Wall > 1 means the
	// pool ran queries concurrently).
	Workers int           `json:"workers"`
	Wall    time.Duration `json:"wall"`
	Busy    time.Duration `json:"busy"`
	// Utilization is Busy / (Wall × Workers): the fraction of the pool's
	// capacity spent inside query Runs.
	Utilization float64 `json:"utilization"`
	// CriticalPath is the most expensive dependency chain, in execution
	// order (dependency first); CriticalPathWall is its summed wall time
	// — the lower bound on Exec latency no worker count can beat.
	CriticalPath     []string      `json:"critical_path"`
	CriticalPathWall time.Duration `json:"critical_path_wall"`
}

// newExecStats assembles the run's telemetry from the resolved DAG and
// the measured per-query durations.
func newExecStats(nodes map[string]*execNode, durs map[string]time.Duration, workers int, wall time.Duration) ExecStats {
	st := ExecStats{Workers: workers, Wall: wall}
	names := make([]string, 0, len(nodes))
	for name := range nodes {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		st.Queries = append(st.Queries, QueryStat{Name: name, Wall: durs[name]})
		st.Busy += durs[name]
	}
	if wall > 0 && workers > 0 {
		st.Utilization = float64(st.Busy) / (float64(wall) * float64(workers))
	}
	st.CriticalPath, st.CriticalPathWall = criticalPath(nodes, durs, names)
	return st
}

// criticalPath finds the dependency chain with the largest summed wall
// time via memoized DFS: cost(q) = dur(q) + max over q's needs. Ties
// keep the first candidate in deterministic (sorted / declaration)
// order. The DAG is already cycle-checked by resolve.
func criticalPath(nodes map[string]*execNode, durs map[string]time.Duration, sortedNames []string) ([]string, time.Duration) {
	if len(sortedNames) == 0 {
		return nil, 0
	}
	memo := make(map[string]time.Duration, len(nodes))
	var cost func(name string) time.Duration
	cost = func(name string) time.Duration {
		if c, ok := memo[name]; ok {
			return c
		}
		var deepest time.Duration
		for _, d := range nodes[name].q.Needs {
			if c := cost(d); c > deepest {
				deepest = c
			}
		}
		c := durs[name] + deepest
		memo[name] = c
		return c
	}
	end, total := "", time.Duration(-1)
	for _, name := range sortedNames {
		if c := cost(name); c > total {
			end, total = name, c
		}
	}
	var path []string
	for cur := end; cur != ""; {
		path = append(path, cur)
		next, best := "", time.Duration(-1)
		for _, d := range nodes[cur].q.Needs {
			if c := memo[d]; c > best {
				next, best = d, c
			}
		}
		cur = next
	}
	slices.Reverse(path)
	return path, total
}
