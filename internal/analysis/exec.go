package analysis

// This file is the imperative half of the query engine: Exec takes a
// frame, the campaign metadata and a plan, resolves the plan's
// dependency closure into a small DAG, and runs it on a worker pool —
// independent queries extract concurrently, dependents start the moment
// their inputs finish. Queries are pure functions of (frame, meta,
// options, dependency results), so the results are bit-identical to a
// serial run regardless of scheduling; the frame's lazy caches (the
// parsed peer-number column, the query-pair index) are sync.Once-guarded
// for exactly this consumer.

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"time"
)

// execNode is one resolved plan entry.
type execNode struct {
	q   Query
	opt QueryOptions
}

// resolve expands the plan into its dependency closure. A dependency
// pulled in implicitly inherits the options of the first plan entry
// that (transitively) required it; an explicit plan entry always keeps
// its own options, wherever it appears in the list. Unknown names and
// dependency cycles are reported as errors.
func resolve(plan Plan) (map[string]*execNode, error) {
	nodes := make(map[string]*execNode, len(plan.Queries))
	// Explicit entries first, so a dependency that is also listed keeps
	// its own options. Duplicate explicit entries are an error — silently
	// keeping one of the two option sets would surprise.
	for _, pq := range plan.Queries {
		if _, dup := nodes[pq.Name]; dup {
			return nil, fmt.Errorf("analysis: plan lists query %q twice", pq.Name)
		}
		q, err := Lookup(pq.Name)
		if err != nil {
			return nil, err
		}
		nodes[pq.Name] = &execNode{q: q, opt: pq.Opt.normalize()}
	}
	// Closure over Needs, depth-first; visiting tracks the current DFS
	// stack for cycle detection (the registry is caller-extensible, so a
	// cycle is a real possibility, not a can't-happen), and done memoizes
	// fully-explored nodes so a shared subgraph is walked once, not once
	// per path (a diamond-shaped caller-registered DAG would otherwise
	// make resolution exponential).
	visiting := map[string]bool{}
	done := map[string]bool{}
	var visit func(name string, opt QueryOptions) error
	visit = func(name string, opt QueryOptions) error {
		if visiting[name] {
			return fmt.Errorf("analysis: query dependency cycle through %q", name)
		}
		if done[name] {
			return nil
		}
		n, ok := nodes[name]
		if !ok {
			q, err := Lookup(name)
			if err != nil {
				return err
			}
			n = &execNode{q: q, opt: opt}
			nodes[name] = n
		}
		visiting[name] = true
		defer delete(visiting, name)
		for _, d := range n.q.Needs {
			if err := visit(d, n.opt); err != nil {
				return err
			}
		}
		done[name] = true
		return nil
	}
	for _, pq := range plan.Queries {
		if err := visit(pq.Name, nodes[pq.Name].opt); err != nil {
			return nil, err
		}
	}
	return nodes, nil
}

// Exec runs the plan's queries over the frame on a worker pool sized by
// GOMAXPROCS and returns every executed result (including implicitly
// added dependencies). The result is bit-identical to ExecWorkers with
// one worker.
func Exec(f *Frame, meta CampaignMeta, plan Plan) (ReportSet, error) {
	return ExecWorkers(f, meta, plan, runtime.GOMAXPROCS(0))
}

// ExecWorkers is Exec with an explicit worker count; 1 executes the
// plan serially (the reference the determinism tests and benchmarks
// compare against).
func ExecWorkers(f *Frame, meta CampaignMeta, plan Plan, workers int) (ReportSet, error) {
	nodes, err := resolve(plan)
	if err != nil {
		return ReportSet{}, err
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(nodes) {
		workers = len(nodes)
	}

	// Indegrees and reverse edges over the resolved closure.
	indeg := make(map[string]int, len(nodes))
	dependents := make(map[string][]string, len(nodes))
	for name, n := range nodes {
		indeg[name] += 0
		for _, d := range n.q.Needs {
			indeg[name]++
			dependents[d] = append(dependents[d], name)
		}
	}

	// ready is buffered to the node count, so completion handlers never
	// block enqueueing newly unblocked queries.
	ready := make(chan string, len(nodes))
	roots := make([]string, 0, len(nodes))
	for name, d := range indeg {
		if d == 0 {
			roots = append(roots, name)
		}
	}
	slices.Sort(roots) // deterministic seeding (not required, but tidy)
	for _, name := range roots {
		ready <- name
	}

	var (
		mu       sync.Mutex
		results  = make(map[string]any, len(nodes))
		durs     = make(map[string]time.Duration, len(nodes))
		firstErr error
		pending  = len(nodes)
		wg       sync.WaitGroup
		started  = time.Now()
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name := range ready {
				n := nodes[name]

				mu.Lock()
				failed := firstErr != nil
				var deps map[string]any
				if !failed && len(n.q.Needs) > 0 {
					deps = make(map[string]any, len(n.q.Needs))
					for _, d := range n.q.Needs {
						deps[d] = results[d]
					}
				}
				mu.Unlock()

				var v any
				var err error
				var dur time.Duration
				if !failed {
					// Run outside the lock: this is the concurrency the
					// engine exists for.
					t0 := time.Now()
					v, err = n.q.Run(&QueryContext{Frame: f, Meta: meta, Opt: n.opt, deps: deps})
					dur = time.Since(t0)
				}

				mu.Lock()
				durs[name] = dur
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("analysis: query %q: %w", name, err)
				}
				if err == nil && firstErr == nil {
					results[name] = v
				}
				// Unblock dependents even after a failure so the pool
				// drains instead of deadlocking; they see firstErr set and
				// skip their Run.
				for _, d := range dependents[name] {
					indeg[d]--
					if indeg[d] == 0 {
						ready <- d
					}
				}
				pending--
				if pending == 0 {
					close(ready)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return ReportSet{}, firstErr
	}
	return ReportSet{
		results: results,
		stats:   newExecStats(nodes, durs, workers, time.Since(started)),
	}, nil
}
