package analysis

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// WriteCSV writes a simple CSV (values must not contain commas; all data
// written here is numeric or identifiers).
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, strings.Join(r, ",")); err != nil {
			return err
		}
	}
	return nil
}

// GrowthCSV renders a GrowthCurve as CSV rows (day, cumulative, new).
func GrowthCSV(w io.Writer, g stats.GrowthCurve) error {
	rows := make([][]string, len(g.Cumulative))
	for i := range g.Cumulative {
		rows[i] = []string{
			fmt.Sprint(i + 1), fmt.Sprint(g.Cumulative[i]), fmt.Sprint(g.New[i]),
		}
	}
	return WriteCSV(w, []string{"day", "total_peers", "new_peers"}, rows)
}

// GroupCSV renders a GroupSeries as CSV (day, then one column per group,
// in sorted group-name order).
func GroupCSV(w io.Writer, s GroupSeries) error {
	groups := make([]string, 0, len(s.Groups))
	for g := range s.Groups {
		groups = append(groups, g)
	}
	sortStrings(groups)
	header := append([]string{"day"}, groups...)
	rows := make([][]string, len(s.Days))
	for i, d := range s.Days {
		row := []string{fmt.Sprint(d)}
		for _, g := range groups {
			v := 0
			if xs := s.Groups[g]; i < len(xs) {
				v = xs[i]
			}
			row = append(row, fmt.Sprint(v))
		}
		rows[i] = row
	}
	return WriteCSV(w, header, rows)
}

// SubsetCSV renders a stats.SubsetUnion as CSV (n, avg, min, max).
func SubsetCSV(w io.Writer, u stats.SubsetUnion) error {
	rows := make([][]string, len(u.N))
	for i := range u.N {
		rows[i] = []string{
			fmt.Sprint(u.N[i]),
			fmt.Sprintf("%.1f", u.Avg[i]),
			fmt.Sprint(u.Min[i]),
			fmt.Sprint(u.Max[i]),
		}
	}
	return WriteCSV(w, []string{"n", "avg_peers", "min_peers", "max_peers"}, rows)
}

// Sparkline renders an integer series as a compact unicode plot for
// terminal output.
func Sparkline(xs []int) string {
	if len(xs) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	maxV := 0
	for _, x := range xs {
		if x > maxV {
			maxV = x
		}
	}
	var b strings.Builder
	for _, x := range xs {
		i := 0
		if maxV > 0 {
			i = x * (len(levels) - 1) / maxV
		}
		b.WriteRune(levels[i])
	}
	return b.String()
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
