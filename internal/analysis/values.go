package analysis

// Artifact value extraction: a typed query result flattened into named
// scalar metrics and float series, so callers that compare artifacts —
// the calibration harness foremost — can address "table-i's
// distinct_peers" or "peer-growth's new series" without a type switch
// per artifact. Names are stable API: docs/CALIBRATION.md documents
// them and observed datasets reference them by string.

import (
	"repro/internal/ed2k"
	"repro/internal/stats"
)

// ArtifactScalars flattens one executed query's result into named
// scalar metrics. The bool is false when the query is not in the set;
// an artifact type with no scalar view yields an empty map.
func ArtifactScalars(rs ReportSet, name string) (map[string]float64, bool) {
	v, ok := rs.Value(name)
	if !ok {
		return nil, false
	}
	out := map[string]float64{}
	switch a := v.(type) {
	case TableI:
		out["honeypots"] = float64(a.Honeypots)
		out["duration_days"] = float64(a.DurationDays)
		out["shared_files"] = float64(a.SharedFiles)
		out["distinct_peers"] = float64(a.DistinctPeers)
		out["distinct_files"] = float64(a.DistinctFiles)
		out["space_bytes"] = float64(a.SpaceBytes)
	case stats.GrowthCurve:
		out["days"] = float64(len(a.Cumulative))
		if n := len(a.Cumulative); n > 0 {
			out["total"] = float64(a.Cumulative[n-1])
		}
	case []int: // hourly-hello
		out["hours"] = float64(len(a))
		total, peak := 0, 0
		for _, x := range a {
			total += x
			if x > peak {
				peak = x
			}
		}
		out["total"] = float64(total)
		out["peak"] = float64(peak)
	case GroupSeries:
		for g, xs := range a.Groups {
			if len(xs) > 0 {
				out["final:"+g] = float64(xs[len(xs)-1])
			}
		}
	case stats.SubsetUnion:
		out["sizes"] = float64(len(a.N))
		if len(a.Avg) > 0 {
			// first_avg skips Fig 10's n=0 row so "peers per one unit" means
			// the same thing for honeypot and file subsets.
			first := a.Avg[0]
			if len(a.N) > 0 && a.N[0] == 0 && len(a.Avg) > 1 {
				first = a.Avg[1]
			}
			out["first_avg"] = first
			out["final_avg"] = a.Avg[len(a.Avg)-1]
		}
	case TopPeerInfo:
		out["queries"] = float64(a.Queries)
	case InterestStats:
		out["peers"] = float64(a.Peers)
		out["files"] = float64(a.Files)
		out["edges"] = float64(a.Edges)
		out["mean_files_per_peer"] = a.MeanFilesPerPeer
		out["max_files_per_peer"] = float64(a.MaxFilesPerPeer)
		out["mean_peers_per_file"] = a.MeanPeersPerFile
		out["max_peers_per_file"] = float64(a.MaxPeersPerFile)
		out["components"] = float64(a.Components)
		out["largest_component"] = float64(a.LargestComponent)
	case PeerSets:
		out["sets"] = float64(len(a.Sets))
		out["universe"] = float64(a.Universe)
	case []ed2k.Hash:
		out["count"] = float64(len(a))
	case []FilePopularity:
		out["count"] = float64(len(a))
	}
	return out, true
}

// ArtifactSeries flattens one executed query's result into named float
// series. The bool is false when the query is not in the set; an
// artifact type with no series view yields an empty map.
func ArtifactSeries(rs ReportSet, name string) (map[string][]float64, bool) {
	v, ok := rs.Value(name)
	if !ok {
		return nil, false
	}
	out := map[string][]float64{}
	switch a := v.(type) {
	case stats.GrowthCurve:
		out["cumulative"] = intsToFloats(a.Cumulative)
		out["new"] = intsToFloats(a.New)
	case []int: // hourly-hello
		out["hourly"] = intsToFloats(a)
	case GroupSeries:
		for g, xs := range a.Groups {
			out[g] = intsToFloats(xs)
		}
	case stats.SubsetUnion:
		out["avg"] = append([]float64(nil), a.Avg...)
		out["min"] = intsToFloats(a.Min)
		out["max"] = intsToFloats(a.Max)
	case []FilePopularity:
		peers := make([]float64, len(a))
		for i := range a {
			peers[i] = float64(a[i].Peers)
		}
		out["peers"] = peers
	}
	return out, true
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
