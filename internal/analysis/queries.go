package analysis

// The built-in queries: every table and figure of the paper's
// evaluation (plus the co-interest analysis its conclusion announces)
// as registered artifact extractors over the frame. repro assembles its
// Report from the full paper plan; cmd/measure -queries extracts any
// subset without computing the rest.

import (
	"math/rand"

	"repro/internal/ed2k"
	"repro/internal/logging"
	"repro/internal/stats"
)

// PaperWeekHours caps the hourly-HELLO window of Fig 4: the paper plots
// "the number of HELLO messages received during each hour of the first
// week of our measurement", so the series holds at most 7×24 buckets
// however long the campaign ran.
const PaperWeekHours = 7 * 24

// TopPeerInfo is the top-peer query's result: the busiest peer (most
// HELLO + START-UPLOAD + REQUEST-PART queries) and its query count.
type TopPeerInfo struct {
	Peer    string `json:"peer"`
	Queries int    `json:"queries"`
}

// PeerSets is a peer-set query's result: per-unit (honeypot or file)
// sorted distinct step-2 peer numbers, plus the smallest array size
// covering every number — the inputs of stats.UnionEstimate.
type PeerSets struct {
	Sets     [][]int32 `json:"sets"`
	Universe int       `json:"universe"`
}

// Canonical query names. Plans may also use any caller-registered name.
const (
	QueryTableI                  = "table-i"
	QueryPeerGrowth              = "peer-growth"
	QueryHourlyHello             = "hourly-hello"
	QueryHelloPeersByGroup       = "hello-peers-by-group"
	QueryStartUploadPeersByGroup = "start-upload-peers-by-group"
	QueryRequestPartsByGroup     = "request-parts-by-group"
	QueryTopPeer                 = "top-peer"
	QueryTopPeerStartUpload      = "top-peer-start-upload"
	QueryTopPeerRequestParts     = "top-peer-request-parts"
	QueryHoneypotPeerSets        = "honeypot-peer-sets"
	QueryHoneypotSubsets         = "honeypot-subsets"
	QueryQueriedFiles            = "queried-files"
	QueryPopularFiles            = "popular-files"
	QueryRandomFiles             = "random-files"
	QueryPopularFilePeerSets     = "popular-file-peer-sets"
	QueryRandomFilePeerSets      = "random-file-peer-sets"
	QueryPopularFileSubsets      = "popular-file-subsets"
	QueryRandomFileSubsets       = "random-file-subsets"
	QueryCoInterest              = "co-interest"
)

func init() {
	mustRegister(Query{
		Name: QueryTableI,
		Doc:  "Table I: honeypots, duration, shared files, distinct peers/files, space",
		Run: func(qc *QueryContext) (any, error) {
			return qc.Frame.TableI(len(qc.Meta.HoneypotIDs), qc.Meta.Days, len(qc.Meta.Advertised)), nil
		},
	})
	mustRegister(Query{
		Name: QueryPeerGrowth,
		Doc:  "Fig 2/3: cumulative and per-day new distinct peers",
		Run: func(qc *QueryContext) (any, error) {
			return qc.Frame.PeerGrowth(qc.Meta.Start, qc.Meta.Days), nil
		},
	})
	mustRegister(Query{
		Name: QueryHourlyHello,
		Doc:  "Fig 4: HELLO messages per hour (window capped at MaxHours, default one week)",
		Run: func(qc *QueryContext) (any, error) {
			hours := qc.Meta.Days * 24
			if hours > qc.Opt.MaxHours {
				hours = qc.Opt.MaxHours
			}
			return qc.Frame.HourlyHello(qc.Meta.Start, hours), nil
		},
	})
	mustRegister(Query{
		Name: QueryHelloPeersByGroup,
		Doc:  "Fig 5: cumulative distinct HELLO peers per strategy group",
		Run:  groupDistinctPeers(logging.KindHello),
	})
	mustRegister(Query{
		Name: QueryStartUploadPeersByGroup,
		Doc:  "Fig 6: cumulative distinct START-UPLOAD peers per strategy group",
		Run:  groupDistinctPeers(logging.KindStartUpload),
	})
	mustRegister(Query{
		Name: QueryRequestPartsByGroup,
		Doc:  "Fig 7: cumulative REQUEST-PART messages per strategy group",
		Run: func(qc *QueryContext) (any, error) {
			return qc.Frame.GroupMessageCounts(qc.Meta.GroupOf, logging.KindRequestPart, qc.Meta.Start, qc.Meta.Days), nil
		},
	})
	mustRegister(Query{
		Name: QueryTopPeer,
		Doc:  "Figs 8/9's subject: the peer sending the most queries",
		Run: func(qc *QueryContext) (any, error) {
			peer, n := qc.Frame.TopPeer()
			return TopPeerInfo{Peer: peer, Queries: n}, nil
		},
	})
	mustRegister(Query{
		Name:  QueryTopPeerStartUpload,
		Doc:   "Fig 8: the top peer's cumulative START-UPLOAD per group",
		Needs: []string{QueryTopPeer},
		Run:   topPeerSeries(logging.KindStartUpload),
	})
	mustRegister(Query{
		Name:  QueryTopPeerRequestParts,
		Doc:   "Fig 9: the top peer's cumulative REQUEST-PART per group",
		Needs: []string{QueryTopPeer},
		Run:   topPeerSeries(logging.KindRequestPart),
	})
	mustRegister(Query{
		Name: QueryHoneypotPeerSets,
		Doc:  "Fig 10's input: distinct peer numbers observed per honeypot",
		Run: func(qc *QueryContext) (any, error) {
			sets, universe := qc.Frame.HoneypotPeerSets(qc.Meta.HoneypotIDs)
			return PeerSets{Sets: sets, Universe: universe}, nil
		},
	})
	mustRegister(Query{
		Name:  QueryHoneypotSubsets,
		Doc:   "Fig 10: union-estimate of peers seen by random honeypot subsets",
		Needs: []string{QueryHoneypotPeerSets},
		Run: func(qc *QueryContext) (any, error) {
			ps := dep[PeerSets](qc, QueryHoneypotPeerSets)
			return stats.UnionEstimate(ps.Sets, ps.Universe, stats.SubsetUnionConfig{
				Samples: qc.Opt.SubsetSamples, Seed: qc.Opt.Seed, IncludeZero: true,
			}), nil
		},
	})
	mustRegister(Query{
		Name: QueryQueriedFiles,
		Doc:  "queried files ranked by distinct querying peers",
		Run: func(qc *QueryContext) (any, error) {
			return qc.Frame.QueriedFiles(), nil
		},
	})
	mustRegister(Query{
		Name:  QueryPopularFiles,
		Doc:   "Fig 12's file set: the FileSubsetSize most-queried files",
		Needs: []string{QueryQueriedFiles},
		Run: func(qc *QueryContext) (any, error) {
			ranked := dep[[]FilePopularity](qc, QueryQueriedFiles)
			n := qc.Opt.FileSubsetSize
			if n > len(ranked) {
				n = len(ranked)
			}
			files := make([]ed2k.Hash, n)
			for i := 0; i < n; i++ {
				files[i] = ranked[i].Hash
			}
			return files, nil
		},
	})
	mustRegister(Query{
		Name: QueryRandomFiles,
		Doc:  "Fig 11's file set: FileSubsetSize files drawn from the advertised list",
		Run: func(qc *QueryContext) (any, error) {
			// Drawn from the advertised list, as the paper drew from its
			// 3,175 shared files.
			rng := rand.New(rand.NewSource(qc.Opt.Seed))
			perm := rng.Perm(len(qc.Meta.Advertised))
			n := qc.Opt.FileSubsetSize
			if n > len(perm) {
				n = len(perm)
			}
			files := make([]ed2k.Hash, n)
			for i := 0; i < n; i++ {
				files[i] = qc.Meta.Advertised[perm[i]]
			}
			return files, nil
		},
	})
	mustRegister(Query{
		Name:  QueryPopularFilePeerSets,
		Doc:   "Fig 12's input: distinct peer numbers querying each popular file",
		Needs: []string{QueryPopularFiles},
		Run:   filePeerSets(QueryPopularFiles),
	})
	mustRegister(Query{
		Name:  QueryRandomFilePeerSets,
		Doc:   "Fig 11's input: distinct peer numbers querying each random file",
		Needs: []string{QueryRandomFiles},
		Run:   filePeerSets(QueryRandomFiles),
	})
	mustRegister(Query{
		Name:  QueryPopularFileSubsets,
		Doc:   "Fig 12: union-estimate of peers drawn by popular-file subsets",
		Needs: []string{QueryPopularFiles, QueryPopularFilePeerSets},
		Run:   fileSubsets(QueryPopularFiles, QueryPopularFilePeerSets),
	})
	mustRegister(Query{
		Name:  QueryRandomFileSubsets,
		Doc:   "Fig 11: union-estimate of peers drawn by random-file subsets",
		Needs: []string{QueryRandomFiles, QueryRandomFilePeerSets},
		Run:   fileSubsets(QueryRandomFiles, QueryRandomFilePeerSets),
	})
	mustRegister(Query{
		Name: QueryCoInterest,
		Doc:  "§V future work: bipartite peer-file interest graph statistics",
		Run: func(qc *QueryContext) (any, error) {
			return qc.Frame.InterestGraph().Stats(), nil
		},
	})
}

func groupDistinctPeers(kind logging.Kind) func(*QueryContext) (any, error) {
	return func(qc *QueryContext) (any, error) {
		return qc.Frame.GroupDistinctPeers(qc.Meta.GroupOf, kind, qc.Meta.Start, qc.Meta.Days), nil
	}
}

func topPeerSeries(kind logging.Kind) func(*QueryContext) (any, error) {
	return func(qc *QueryContext) (any, error) {
		top := dep[TopPeerInfo](qc, QueryTopPeer)
		return qc.Frame.TopPeerSeries(qc.Meta.GroupOf, top.Peer, kind, qc.Meta.Start, qc.Meta.Days), nil
	}
}

func filePeerSets(filesQuery string) func(*QueryContext) (any, error) {
	return func(qc *QueryContext) (any, error) {
		files := dep[[]ed2k.Hash](qc, filesQuery)
		sets, universe := qc.Frame.FilePeerSets(files)
		return PeerSets{Sets: sets, Universe: universe}, nil
	}
}

func fileSubsets(filesQuery, setsQuery string) func(*QueryContext) (any, error) {
	return func(qc *QueryContext) (any, error) {
		// An empty file set yields the zero estimate, not a zero-row one
		// (matching the pre-engine report assembly, which skipped the
		// estimator entirely).
		if len(dep[[]ed2k.Hash](qc, filesQuery)) == 0 {
			return stats.SubsetUnion{}, nil
		}
		ps := dep[PeerSets](qc, setsQuery)
		return stats.UnionEstimate(ps.Sets, ps.Universe, stats.SubsetUnionConfig{
			Samples: qc.Opt.SubsetSamples, Seed: qc.Opt.Seed,
		}), nil
	}
}

// PaperPlan is the paper's full artifact menu for one campaign, with
// shared options: Table I, peer growth, hourly HELLO and the
// co-interest stats always; the per-group and top-peer figures plus the
// Fig 10 estimate when the fleet has several honeypots; the file-subset
// figures for the greedy campaign.
func PaperPlan(meta CampaignMeta, opt QueryOptions) Plan {
	names := []string{QueryTableI, QueryPeerGrowth, QueryHourlyHello, QueryCoInterest}
	if len(meta.HoneypotIDs) > 1 {
		names = append(names,
			QueryHelloPeersByGroup, QueryStartUploadPeersByGroup, QueryRequestPartsByGroup,
			QueryTopPeer, QueryTopPeerStartUpload, QueryTopPeerRequestParts,
			QueryHoneypotSubsets,
		)
	}
	if meta.Name == "greedy" {
		names = append(names,
			QueryQueriedFiles, QueryPopularFiles, QueryRandomFiles,
			QueryPopularFileSubsets, QueryRandomFileSubsets,
		)
	}
	return NewPlan(opt, names...)
}
