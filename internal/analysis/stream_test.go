package analysis

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/ed2k"
	"repro/internal/logging"
)

// streamSample fabricates a merged log with the shapes the extractors
// care about: several peers, several days, HELLOs and shared lists.
func streamSample(start time.Time) []logging.Record {
	var recs []logging.Record
	peers := []string{"1", "2", "3", "4"}
	for day := 0; day < 5; day++ {
		for h, p := range peers {
			if day%(h+1) != 0 {
				continue
			}
			t := start.Add(time.Duration(day)*Day + time.Duration(h)*time.Hour)
			recs = append(recs, logging.Record{
				Time: t, Honeypot: "hp-00", Kind: logging.KindHello, PeerIP: p,
			})
			recs = append(recs, logging.Record{
				Time: t.Add(time.Minute), Honeypot: "hp-00", Kind: logging.KindSharedList, PeerIP: p,
				Files: []logging.SharedFile{{Hash: ed2k.SyntheticHash(p), Name: p + ".mp3", Size: int64(h+1) << 20}},
			})
		}
	}
	return recs
}

func TestStreamExtractorsMatchSliceExtractors(t *testing.T) {
	start := time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)
	recs := streamSample(start)

	wantTable := ComputeTableI(recs, 24, 5, 4)
	gotTable, err := StreamTableI(NewSliceIter(recs), 24, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gotTable != wantTable {
		t.Errorf("StreamTableI:\n got %+v\nwant %+v", gotTable, wantTable)
	}

	wantGrowth := PeerGrowth(recs, start, 5)
	gotGrowth, err := StreamPeerGrowth(NewSliceIter(recs), start, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotGrowth, wantGrowth) {
		t.Errorf("StreamPeerGrowth:\n got %+v\nwant %+v", gotGrowth, wantGrowth)
	}

	wantHourly := HourlyHello(recs, start, 48)
	gotHourly, err := StreamHourlyHello(NewSliceIter(recs), start, 48)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotHourly, wantHourly) {
		t.Errorf("StreamHourlyHello:\n got %v\nwant %v", gotHourly, wantHourly)
	}
}

func TestSliceIterEmpty(t *testing.T) {
	table, err := StreamTableI(NewSliceIter(nil), 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if table.DistinctPeers != 0 || table.DistinctFiles != 0 {
		t.Errorf("empty stream: %+v", table)
	}
}
