package md4

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// RFC 1320 appendix A.5 test suite.
var rfcVectors = []struct {
	in  string
	out string
}{
	{"", "31d6cfe0d16ae931b73c59d7e0c089c0"},
	{"a", "bde52cb31de33e46245e05fbdbd6fb24"},
	{"abc", "a448017aaf21d8525fc10ae87aa6729d"},
	{"message digest", "d9130a8164549fe818874806e1c7014b"},
	{"abcdefghijklmnopqrstuvwxyz", "d79e1c308aa5bbcdeea8ed63df412da9"},
	{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789", "043f8582f241db351ce627e153e7f0e4"},
	{"12345678901234567890123456789012345678901234567890123456789012345678901234567890", "e33b4ddc9c38f2199c3e7b164fcc0536"},
}

func TestRFCVectors(t *testing.T) {
	for _, v := range rfcVectors {
		got := Sum([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.out {
			t.Errorf("Sum(%q) = %x, want %s", v.in, got, v.out)
		}
	}
}

func TestHashInterface(t *testing.T) {
	for _, v := range rfcVectors {
		h := New()
		fmt.Fprint(h, v.in)
		got := h.Sum(nil)
		if hex.EncodeToString(got) != v.out {
			t.Errorf("New/Write/Sum(%q) = %x, want %s", v.in, got, v.out)
		}
		if h.Size() != Size {
			t.Fatalf("Size() = %d, want %d", h.Size(), Size)
		}
		if h.BlockSize() != BlockSize {
			t.Fatalf("BlockSize() = %d, want %d", h.BlockSize(), BlockSize)
		}
	}
}

func TestSplitWritesEqualWholeWrite(t *testing.T) {
	data := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog ", 100))
	want := Sum(data)
	for _, split := range []int{1, 3, 7, 63, 64, 65, 128, 1000} {
		h := New()
		for i := 0; i < len(data); i += split {
			end := i + split
			if end > len(data) {
				end = len(data)
			}
			h.Write(data[i:end])
		}
		got := h.Sum(nil)
		if !bytes.Equal(got, want[:]) {
			t.Errorf("split=%d: got %x want %x", split, got, want)
		}
	}
}

func TestSumDoesNotDisturbState(t *testing.T) {
	h := New()
	h.Write([]byte("hello "))
	_ = h.Sum(nil) // snapshot; must not affect subsequent writes
	h.Write([]byte("world"))
	got := h.Sum(nil)
	want := Sum([]byte("hello world"))
	if !bytes.Equal(got, want[:]) {
		t.Errorf("Sum disturbed state: got %x want %x", got, want)
	}
}

func TestSumAppends(t *testing.T) {
	h := New()
	h.Write([]byte("x"))
	prefix := []byte{0xde, 0xad}
	out := h.Sum(prefix)
	if !bytes.Equal(out[:2], prefix) {
		t.Fatalf("Sum did not preserve prefix: %x", out)
	}
	if len(out) != 2+Size {
		t.Fatalf("Sum length = %d, want %d", len(out), 2+Size)
	}
}

func TestReset(t *testing.T) {
	h := New()
	h.Write([]byte("garbage"))
	h.Reset()
	h.Write([]byte("abc"))
	got := h.Sum(nil)
	want := Sum([]byte("abc"))
	if !bytes.Equal(got, want[:]) {
		t.Errorf("Reset did not restore initial state")
	}
}

// Property: splitting the input at any point yields the same digest as one
// contiguous write.
func TestQuickSplitInvariance(t *testing.T) {
	f := func(data []byte, cut uint8) bool {
		if len(data) == 0 {
			return true
		}
		k := int(cut) % len(data)
		h := New()
		h.Write(data[:k])
		h.Write(data[k:])
		whole := Sum(data)
		return bytes.Equal(h.Sum(nil), whole[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: digests of different short inputs should differ (no trivial
// collisions on the happy path).
func TestQuickDistinctInputsDistinctDigests(t *testing.T) {
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		da, db := Sum(a), Sum(b)
		return da != db
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLongInput(t *testing.T) {
	// Cross the 2^32-bit boundary behaviour is impractical; instead check a
	// multi-megabyte input against a precomputed stable digest to guard
	// against regressions in the block loop.
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i * 31)
	}
	got := Sum(data)
	h := New()
	h.Write(data)
	if !bytes.Equal(h.Sum(nil), got[:]) {
		t.Fatal("streaming and one-shot disagree on 1MiB input")
	}
}

func BenchmarkSum1K(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Sum(data)
	}
}

func BenchmarkSum9500KB(b *testing.B) {
	// One full eDonkey part.
	data := make([]byte, 9500000)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sum(data)
	}
}
