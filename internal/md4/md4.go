// Package md4 implements the MD4 hash algorithm as defined in RFC 1320.
//
// MD4 is cryptographically broken and must never be used for security
// purposes. It is implemented here solely because the eDonkey network
// identifies files and users by MD4 digests (see package ed2k), and the
// Go standard library does not ship MD4.
package md4

import (
	"encoding/binary"
	"hash"
)

// Size is the size of an MD4 checksum in bytes.
const Size = 16

// BlockSize is the block size of MD4 in bytes.
const BlockSize = 64

const (
	init0 = 0x67452301
	init1 = 0xEFCDAB89
	init2 = 0x98BADCFE
	init3 = 0x10325476
)

// digest represents the partial evaluation of a checksum.
type digest struct {
	s   [4]uint32
	x   [BlockSize]byte
	nx  int
	len uint64
}

// New returns a new hash.Hash computing the MD4 checksum.
func New() hash.Hash {
	d := new(digest)
	d.Reset()
	return d
}

// Sum returns the MD4 checksum of data.
func Sum(data []byte) [Size]byte {
	d := new(digest)
	d.Reset()
	d.Write(data)
	var out [Size]byte
	d.checkSum(&out)
	return out
}

func (d *digest) Reset() {
	d.s[0] = init0
	d.s[1] = init1
	d.s[2] = init2
	d.s[3] = init3
	d.nx = 0
	d.len = 0
}

func (d *digest) Size() int { return Size }

func (d *digest) BlockSize() int { return BlockSize }

func (d *digest) Write(p []byte) (n int, err error) {
	n = len(p)
	d.len += uint64(n)
	if d.nx > 0 {
		c := copy(d.x[d.nx:], p)
		d.nx += c
		if d.nx == BlockSize {
			block(d, d.x[:])
			d.nx = 0
		}
		p = p[c:]
	}
	if len(p) >= BlockSize {
		nn := len(p) &^ (BlockSize - 1)
		block(d, p[:nn])
		p = p[nn:]
	}
	if len(p) > 0 {
		d.nx = copy(d.x[:], p)
	}
	return n, nil
}

func (d *digest) Sum(in []byte) []byte {
	// Make a copy of d so that the caller can keep writing and summing.
	d0 := *d
	var out [Size]byte
	d0.checkSum(&out)
	return append(in, out[:]...)
}

func (d *digest) checkSum(out *[Size]byte) {
	// Padding: add 1 bit and 0 bits until 56 bytes mod 64.
	length := d.len
	var tmp [64]byte
	tmp[0] = 0x80
	if length%64 < 56 {
		d.Write(tmp[0 : 56-length%64])
	} else {
		d.Write(tmp[0 : 64+56-length%64])
	}

	// Length in bits, little-endian.
	length <<= 3
	binary.LittleEndian.PutUint64(tmp[:8], length)
	d.Write(tmp[0:8])

	if d.nx != 0 {
		panic("md4: internal error, non-empty buffer after padding")
	}

	binary.LittleEndian.PutUint32(out[0:], d.s[0])
	binary.LittleEndian.PutUint32(out[4:], d.s[1])
	binary.LittleEndian.PutUint32(out[8:], d.s[2])
	binary.LittleEndian.PutUint32(out[12:], d.s[3])
}

var shift1 = [4]uint{3, 7, 11, 19}
var shift2 = [4]uint{3, 5, 9, 13}
var shift3 = [4]uint{3, 9, 11, 15}

var xIndex2 = [16]uint{0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15}
var xIndex3 = [16]uint{0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15}

// block processes as many 64-byte blocks of p as are available.
func block(d *digest, p []byte) {
	a := d.s[0]
	b := d.s[1]
	c := d.s[2]
	dd := d.s[3]
	var x [16]uint32
	for len(p) >= BlockSize {
		aa, bb, cc, ddd := a, b, c, dd

		for i := 0; i < 16; i++ {
			x[i] = binary.LittleEndian.Uint32(p[4*i:])
		}

		// Round 1: F(x,y,z) = (x & y) | (~x & z)
		for i := uint(0); i < 16; i++ {
			s := shift1[i%4]
			f := ((c ^ dd) & b) ^ dd
			a += f + x[i]
			a = a<<s | a>>(32-s)
			a, b, c, dd = dd, a, b, c
		}

		// Round 2: G(x,y,z) = (x & y) | (x & z) | (y & z)
		for i := uint(0); i < 16; i++ {
			xi := xIndex2[i]
			s := shift2[i%4]
			g := (b & c) | (b & dd) | (c & dd)
			a += g + x[xi] + 0x5a827999
			a = a<<s | a>>(32-s)
			a, b, c, dd = dd, a, b, c
		}

		// Round 3: H(x,y,z) = x ^ y ^ z
		for i := uint(0); i < 16; i++ {
			xi := xIndex3[i]
			s := shift3[i%4]
			h := b ^ c ^ dd
			a += h + x[xi] + 0x6ed9eba1
			a = a<<s | a>>(32-s)
			a, b, c, dd = dd, a, b, c
		}

		a += aa
		b += bb
		c += cc
		dd += ddd

		p = p[BlockSize:]
	}

	d.s[0] = a
	d.s[1] = b
	d.s[2] = c
	d.s[3] = dd
}
