package core

// This file preserves the pre-redesign monolithic campaign runners
// verbatim (PR 3 replaced their bodies with declarative scenario specs)
// and pins the scenario engine to them: for the same config and seed,
// scenario.Run on the lowered spec must reproduce the legacy runners'
// datasets bit for bit. The copies are the equivalence oracle — do not
// "improve" them; if the engine and the oracle diverge, the engine (or
// the spec lowering) is wrong.

import (
	"fmt"
	"math"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/client"
	"repro/internal/des"
	"repro/internal/ed2k"
	"repro/internal/honeypot"
	"repro/internal/logstore"
	"repro/internal/manager"
	"repro/internal/netsim"
	"repro/internal/peersim"
	"repro/internal/scenario"
	"repro/internal/server"
)

// campaignWorld is the shared scaffolding of both legacy campaigns.
type campaignWorld struct {
	loop  *des.Loop
	net   *netsim.Network
	srv   *server.Server // first server (single-server campaigns use it)
	srvs  []*server.Server
	mgr   *manager.Manager
	hps   []*honeypot.Honeypot
	ids   []string
	store *logstore.Store // non-nil in spill-to-disk mode
}

func legacyBuildWorld(seed int64, collectEvery time.Duration) (*campaignWorld, error) {
	return legacyBuildWorldN(seed, collectEvery, 1)
}

func (w *campaignWorld) attachStore(dir string) error {
	store, err := logstore.Open(dir, logstore.Options{})
	if err != nil {
		return fmt.Errorf("core: opening store: %w", err)
	}
	if n := store.TotalRecords(); n > 0 {
		store.Close()
		return fmt.Errorf("core: store %s already holds %d records from a previous run", dir, n)
	}
	w.store = store
	w.mgr.SetStore(store)
	return nil
}

func (w *campaignWorld) closeStore() error {
	if w.store == nil {
		return nil
	}
	err := w.store.Close()
	w.store = nil
	return err
}

func legacyBuildWorldN(seed int64, collectEvery time.Duration, n int) (*campaignWorld, error) {
	if n <= 0 {
		n = 1
	}
	loop := des.NewLoop(CampaignStart, seed)
	nw := netsim.New(loop, netsim.DefaultConfig())

	hosts := make([]*netsim.Host, n)
	addrs := make([]netip.AddrPort, n)
	for i := 0; i < n; i++ {
		hosts[i] = nw.NewHost(fmt.Sprintf("server-%d", i))
		addrs[i] = netip.AddrPortFrom(hosts[i].Addr(), 4661)
	}
	w := &campaignWorld{loop: loop, net: nw}
	for i := 0; i < n; i++ {
		cfg := server.DefaultConfig(fmt.Sprintf("paper-server-%d", i))
		cfg.KnownServers = addrs
		srv := server.New(hosts[i], cfg)
		if err := srv.Start(); err != nil {
			return nil, fmt.Errorf("core: starting server %d: %w", i, err)
		}
		w.srvs = append(w.srvs, srv)
	}
	w.srv = w.srvs[0]

	mcfg := manager.DefaultConfig()
	if collectEvery > 0 {
		mcfg.CollectEvery = collectEvery
	}
	w.mgr = manager.New(nw.NewHost("manager"), mcfg)
	return w, nil
}

func (w *campaignWorld) serverAddrs() []netip.AddrPort {
	out := make([]netip.AddrPort, len(w.srvs))
	for i, s := range w.srvs {
		out[i] = s.Addr()
	}
	return out
}

func (w *campaignWorld) addHoneypot(cfg honeypot.Config, files []client.SharedFile, on netip.AddrPort) (*honeypot.Honeypot, error) {
	var shard *logstore.Shard
	if w.store != nil {
		var err error
		if shard, err = w.store.Shard(cfg.ID); err != nil {
			return nil, fmt.Errorf("core: honeypot %s: %w", cfg.ID, err)
		}
		cfg.Sink = shard
	}
	hp := honeypot.New(w.net.NewHost(cfg.ID), cfg)
	if err := hp.Client().Listen(); err != nil {
		return nil, fmt.Errorf("core: honeypot %s: %w", cfg.ID, err)
	}
	if !on.IsValid() {
		on = w.srv.Addr()
	}
	handle := manager.NewLocalHandle(cfg.ID, hp, w.mgr.Host())
	if shard != nil {
		handle = manager.NewLocalHandleWithStore(cfg.ID, hp, shard, w.mgr.Host())
	}
	w.mgr.Add(handle, manager.Assignment{
		Server: on,
		Files:  files,
	})
	w.hps = append(w.hps, hp)
	w.ids = append(w.ids, cfg.ID)
	return hp, nil
}

func (w *campaignWorld) finish(name string, days int, pop *peersim.Population, groupOf map[string]string) (*legacyResult, error) {
	end := CampaignStart.Add(time.Duration(days) * 24 * time.Hour)
	w.loop.RunUntil(end)
	pop.Stop()

	var ds *manager.Dataset
	var dsErr error
	w.mgr.Finalize(func(d *manager.Dataset, err error) { ds, dsErr = d, err })
	w.loop.RunUntil(end.Add(time.Hour))
	if dsErr != nil {
		return nil, dsErr
	}
	if ds == nil {
		return nil, fmt.Errorf("core: finalize did not complete")
	}

	res := &legacyResult{
		Name:          name,
		Dataset:       ds,
		Start:         CampaignStart,
		Days:          days,
		HoneypotIDs:   w.ids,
		GroupOf:       groupOf,
		PopStats:      pop.Stats(),
		ServerStats:   w.srv.Stats(),
		HoneypotStats: make(map[string]honeypot.Stats, len(w.hps)),
		Events:        w.loop.Executed(),
	}
	for i, hp := range w.hps {
		res.HoneypotStats[w.ids[i]] = hp.Stats()
		res.Advertised = append(res.Advertised[:0], hp.Advertised()...)
	}
	if len(w.hps) > 0 {
		res.Advertised = append([]client.SharedFile(nil), w.hps[0].Advertised()...)
	}
	if w.store != nil {
		res.StoreDir = w.store.Dir()
		res.StoredRecords = w.store.TotalRecords()
		if err := w.closeStore(); err != nil {
			return nil, fmt.Errorf("core: closing store: %w", err)
		}
	}
	return res, nil
}

// legacyResult mirrors the pre-redesign Result fields.
type legacyResult struct {
	Name          string
	Dataset       *manager.Dataset
	Start         time.Time
	Days          int
	HoneypotIDs   []string
	GroupOf       map[string]string
	Advertised    []client.SharedFile
	PopStats      peersim.Stats
	ServerStats   server.Stats
	HoneypotStats map[string]honeypot.Stats
	Events        uint64
	StoreDir      string
	StoredRecords uint64
}

// legacyRunDistributed is the pre-redesign RunDistributed, verbatim.
func legacyRunDistributed(cfg DistributedConfig) (*legacyResult, error) {
	if cfg.Days <= 0 || cfg.Honeypots <= 0 {
		return nil, fmt.Errorf("core: invalid distributed config")
	}
	w, err := legacyBuildWorldN(cfg.Seed, cfg.CollectEvery, cfg.Servers)
	if err != nil {
		return nil, err
	}
	if cfg.StoreDir != "" {
		if err := w.attachStore(cfg.StoreDir); err != nil {
			return nil, err
		}
		defer w.closeStore()
	}
	cat := catalog.Generate(cfg.Catalog)
	bait := FourBaitFiles(cat)
	secret := []byte(fmt.Sprintf("distributed-campaign-%d", cfg.Seed))

	placements := manager.SameServer(w.srv.Addr(), bait, cfg.Honeypots)
	if len(w.srvs) > 1 {
		placements = manager.SpreadServers(w.serverAddrs(), bait, cfg.Honeypots)
	}

	groupOf := make(map[string]string, cfg.Honeypots)
	for i := 0; i < cfg.Honeypots; i++ {
		id := fmt.Sprintf("hp-%02d", i)
		strat := honeypot.NoContent
		if i%2 == 0 {
			strat = honeypot.RandomContent
		}
		groupOf[id] = strat.String()
		if _, err := w.addHoneypot(honeypot.Config{
			ID: id, Strategy: strat, Port: 4662, Secret: secret,
			BrowseContacts: true,
		}, bait, placements[i].Server); err != nil {
			return nil, err
		}
	}
	w.mgr.Start()
	w.loop.RunUntil(CampaignStart.Add(5 * time.Minute))

	weights := []float64{0.45, 0.30, 0.15, 0.10}
	targets := make([]peersim.TargetFile, len(bait))
	for i, f := range bait {
		wgt := 0.25
		if i < len(weights) {
			wgt = weights[i]
		}
		targets[i] = peersim.TargetFile{Hash: f.Hash, Name: f.Name, Size: f.Size, Weight: wgt}
	}

	pcfg := peersim.DefaultConfig()
	pcfg.Label = "distributed-pop"
	pcfg.Server = w.srv.Addr()
	if len(w.srvs) > 1 {
		pcfg.Servers = w.serverAddrs()
	}
	pcfg.Start = CampaignStart
	pcfg.End = CampaignStart.Add(time.Duration(cfg.Days) * 24 * time.Hour)
	pcfg.Scale = cfg.Scale
	pcfg.ArrivalsPerWeightPerDay = cfg.ArrivalsPerDay
	pcfg.DecayPerDay = cfg.DecayPerDay
	pcfg.Catalog = cat
	pcfg.LibraryRegion = cfg.LibraryRegion
	pcfg.LibraryMean = 8
	pcfg.HeavyHitters = cfg.HeavyHitters
	pcfg.Targets = func() []peersim.TargetFile { return targets }
	pcfg.RefreshTargets = 0

	pop := peersim.New(w.net, pcfg)
	pop.Start()
	return w.finish("distributed", cfg.Days, pop, groupOf)
}

// legacyRunGreedy is the pre-redesign RunGreedy, verbatim.
func legacyRunGreedy(cfg GreedyConfig) (*legacyResult, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("core: invalid greedy config")
	}
	w, err := legacyBuildWorld(cfg.Seed, cfg.CollectEvery)
	if err != nil {
		return nil, err
	}
	if cfg.StoreDir != "" {
		if err := w.attachStore(cfg.StoreDir); err != nil {
			return nil, err
		}
		defer w.closeStore()
	}
	cat := catalog.Generate(cfg.Catalog)
	secret := []byte(fmt.Sprintf("greedy-campaign-%d", cfg.Seed))

	seeds := make([]client.SharedFile, 0, cfg.SeedFiles)
	for i := 0; i < cat.Len() && len(seeds) < cfg.SeedFiles; i++ {
		f := cat.File(i)
		if f.Kind == catalog.Song {
			seeds = append(seeds, client.SharedFile{Hash: f.Hash, Name: f.Name, Size: f.Size, Type: f.Kind.String()})
		}
	}

	hp, err := w.addHoneypot(honeypot.Config{
		ID: "hp-greedy", Strategy: honeypot.NoContent, Port: 4662, Secret: secret,
		BrowseContacts: true,
		Greedy:         true,
		GreedyWindow:   cfg.AdoptWindow,
		GreedyMaxFiles: cfg.MaxAdopted,
	}, seeds, netip.AddrPort{})
	if err != nil {
		return nil, err
	}
	w.mgr.Start()
	w.loop.RunUntil(CampaignStart.Add(5 * time.Minute))

	norm := 0.0
	for i := 0; i < cfg.MaxAdopted; i++ {
		norm += legacyWeightOf(i, cfg.TargetExp)
	}
	if norm <= 0 {
		norm = 1
	}

	pcfg := peersim.DefaultConfig()
	pcfg.Label = "greedy-pop"
	pcfg.Server = w.srv.Addr()
	pcfg.Start = CampaignStart
	pcfg.End = CampaignStart.Add(time.Duration(cfg.Days) * 24 * time.Hour)
	pcfg.Scale = cfg.Scale
	pcfg.ArrivalsPerWeightPerDay = cfg.ArrivalsPerDay / norm
	pcfg.Catalog = cat
	pcfg.LibraryMean = 15
	pcfg.MaxSourcesPerPeer = 1
	pcfg.WantsMax = cfg.WantsMax
	pcfg.RefreshTargets = time.Hour

	const discoveryRamp = 30 * time.Hour
	hpHost := hp.Client().Host()
	addedAt := map[ed2k.Hash]time.Time{}
	pcfg.Targets = func() []peersim.TargetFile {
		now := hpHost.Now()
		adv := hp.Advertised()
		out := make([]peersim.TargetFile, 0, len(adv))
		for i, f := range adv {
			t0, seen := addedAt[f.Hash]
			if !seen {
				t0 = now
				addedAt[f.Hash] = now
			}
			ramp := float64(now.Sub(t0)) / float64(discoveryRamp)
			if ramp > 1 || i < cfg.SeedFiles {
				ramp = 1
			}
			out = append(out, peersim.TargetFile{
				Hash: f.Hash, Name: f.Name, Size: f.Size,
				Weight: legacyWeightOf(i, cfg.TargetExp) * ramp,
			})
		}
		return out
	}

	pop := peersim.New(w.net, pcfg)
	pop.Start()
	groupOf := map[string]string{"hp-greedy": honeypot.NoContent.String()}
	return w.finish("greedy", cfg.Days, pop, groupOf)
}

func legacyWeightOf(rank int, exp float64) float64 {
	return math.Pow(1/float64(rank+1), exp)
}

// requireIdentical pins every field the legacy Result carried to the
// engine's output, the dataset record for record.
func requireIdentical(t *testing.T, want *legacyResult, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Dataset, got.Dataset) {
		if len(want.Dataset.Records) != len(got.Dataset.Records) {
			t.Fatalf("dataset sizes differ: legacy %d, scenario %d",
				len(want.Dataset.Records), len(got.Dataset.Records))
		}
		for i := range want.Dataset.Records {
			if !reflect.DeepEqual(want.Dataset.Records[i], got.Dataset.Records[i]) {
				t.Fatalf("record %d differs:\n legacy   %+v\n scenario %+v",
					i, want.Dataset.Records[i], got.Dataset.Records[i])
			}
		}
		t.Fatalf("dataset metadata differs: legacy {distinct %d, replaced %d, perHP %v}, scenario {distinct %d, replaced %d, perHP %v}",
			want.Dataset.DistinctPeers, want.Dataset.ReplacedWords, want.Dataset.PerHoneypot,
			got.Dataset.DistinctPeers, got.Dataset.ReplacedWords, got.Dataset.PerHoneypot)
	}
	if want.Name != got.Name || want.Days != got.Days || !want.Start.Equal(got.Start) {
		t.Errorf("metadata differs: %s/%d vs %s/%d", want.Name, want.Days, got.Name, got.Days)
	}
	if !reflect.DeepEqual(want.HoneypotIDs, got.HoneypotIDs) {
		t.Errorf("fleets differ: %v vs %v", want.HoneypotIDs, got.HoneypotIDs)
	}
	if !reflect.DeepEqual(want.GroupOf, got.GroupOf) {
		t.Errorf("groups differ: %v vs %v", want.GroupOf, got.GroupOf)
	}
	if !reflect.DeepEqual(want.Advertised, got.Advertised) {
		t.Errorf("advertised lists differ: %d vs %d files", len(want.Advertised), len(got.Advertised))
	}
	if want.PopStats != got.PopStats {
		t.Errorf("population stats differ: %+v vs %+v", want.PopStats, got.PopStats)
	}
	if !reflect.DeepEqual(want.HoneypotStats, got.HoneypotStats) {
		t.Errorf("honeypot stats differ: %+v vs %+v", want.HoneypotStats, got.HoneypotStats)
	}
	if want.Events != got.Events {
		t.Errorf("event counts differ: legacy %d, scenario %d", want.Events, got.Events)
	}
	if want.StoredRecords != got.StoredRecords {
		t.Errorf("stored record counts differ: %d vs %d", want.StoredRecords, got.StoredRecords)
	}
}

func TestScenarioEquivalenceDistributed(t *testing.T) {
	cfg := tinyDistributed()
	cfg.Days = 3
	want, err := legacyRunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, got)
}

func TestScenarioEquivalenceDistributedMultiServer(t *testing.T) {
	cfg := tinyDistributed()
	cfg.Days = 3
	cfg.Servers = 3
	want, err := legacyRunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, got)
}

func TestScenarioEquivalenceGreedy(t *testing.T) {
	cfg := tinyGreedy()
	want, err := legacyRunGreedy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunGreedy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, got)
}

func TestScenarioEquivalenceDistributedStore(t *testing.T) {
	cfg := tinyDistributed()
	cfg.Days = 2
	cfg.Scale = 0.01
	cfg.StoreDir = t.TempDir()
	want, err := legacyRunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.StoreDir = t.TempDir()
	got, err := RunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, got)
}

// TestPaperSpecsMatchConfigLowering pins the registry's paper scenarios
// to the typed configs' lowering: scenario.PaperDistributed() must be
// exactly DefaultDistributedConfig().Spec(), so the two entry points can
// never drift apart.
func TestPaperSpecsMatchConfigLowering(t *testing.T) {
	if d, c := scenario.PaperDistributed(), DefaultDistributedConfig().Spec(); !reflect.DeepEqual(d, c) {
		t.Errorf("PaperDistributed drifted from DefaultDistributedConfig().Spec():\n%+v\nvs\n%+v", d, c)
	}
	if g, c := scenario.PaperGreedy(), DefaultGreedyConfig().Spec(); !reflect.DeepEqual(g, c) {
		t.Errorf("PaperGreedy drifted from DefaultGreedyConfig().Spec():\n%+v\nvs\n%+v", g, c)
	}
}
