package core

import (
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/honeypot"
	"repro/internal/manager"
	"repro/internal/netsim"
	"repro/internal/peersim"
	"repro/internal/server"
)

// TestServerOutageRecovery injects a directory-server outage in the
// middle of a campaign and verifies the platform behaves like the
// paper's: the manager's health check notices disconnected honeypots and
// re-pushes their assignment once the server returns, and measurement
// resumes (records exist on both sides of the outage).
func TestServerOutageRecovery(t *testing.T) {
	w, err := buildWorld(123, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.Generate(catalog.Config{NumFiles: 2000, Vocabulary: 400, PopularityExp: 0.9, Seed: 5})
	bait := FourBaitFiles(cat)
	secret := []byte("outage-test")

	for i := 0; i < 4; i++ {
		id := "hp-" + string(rune('0'+i))
		if _, err := w.addHoneypot(honeypot.Config{
			ID: id, Strategy: honeypot.RandomContent, Port: 4662, Secret: secret,
		}, bait, w.srv.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	w.mgr.Start()
	w.loop.RunUntil(CampaignStart.Add(5 * time.Minute))

	targets := make([]peersim.TargetFile, len(bait))
	for i, f := range bait {
		targets[i] = peersim.TargetFile{Hash: f.Hash, Name: f.Name, Size: f.Size, Weight: 1}
	}
	pcfg := peersim.DefaultConfig()
	pcfg.Label = "outage-pop"
	pcfg.Server = w.srv.Addr()
	pcfg.Start = CampaignStart
	pcfg.End = CampaignStart.Add(4 * 24 * time.Hour)
	pcfg.ArrivalsPerWeightPerDay = 60
	pcfg.Catalog = cat
	pcfg.Targets = func() []peersim.TargetFile { return targets }
	pcfg.RefreshTargets = 0
	pop := peersim.New(w.net, pcfg)
	pop.Start()

	// Day 1: normal operation.
	w.loop.RunUntil(CampaignStart.Add(24 * time.Hour))

	// Outage: the server host dies for 6 hours, then a fresh server
	// process starts on the same address (as an operator would restart it).
	srvHost, _ := w.net.HostAt(w.srv.Addr().Addr())
	srvHost.Crash()
	w.loop.RunUntil(CampaignStart.Add(30 * time.Hour))
	for _, hp := range w.hps {
		if hp.Status().Connected {
			t.Fatal("honeypot still connected during outage")
		}
	}
	srvHost.Restart()
	srv2 := server.New(srvHost, server.DefaultConfig("restarted"))
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}

	// Let the manager's health check reconnect the fleet, then run the
	// remaining days.
	w.loop.RunUntil(CampaignStart.Add(4 * 24 * time.Hour))
	pop.Stop()

	reconnected := 0
	for _, hp := range w.hps {
		if hp.Status().Connected {
			reconnected++
		}
	}
	if reconnected != len(w.hps) {
		t.Fatalf("only %d/%d honeypots reconnected after the outage", reconnected, len(w.hps))
	}
	if srv2.FilesIndexed() == 0 {
		t.Error("re-advertisement missing after restart")
	}

	var ds *manager.Dataset
	w.mgr.Finalize(func(d *manager.Dataset, err error) {
		if err != nil {
			t.Errorf("finalize: %v", err)
			return
		}
		ds = d
	})
	w.loop.RunUntil(CampaignStart.Add(4*24*time.Hour + time.Hour))
	if ds == nil {
		t.Fatal("no dataset")
	}

	before, after := 0, 0
	outageEnd := CampaignStart.Add(30 * time.Hour)
	for _, r := range ds.Records {
		if r.Time.Before(CampaignStart.Add(24 * time.Hour)) {
			before++
		}
		if r.Time.After(outageEnd) {
			after++
		}
	}
	if before == 0 {
		t.Error("no records before the outage")
	}
	if after == 0 {
		t.Error("no records after recovery: measurement did not resume")
	}
}

// TestHoneypotCrashRelaunchInCampaign crashes a honeypot host mid-run and
// verifies the manager's relaunch hook restores coverage.
func TestHoneypotCrashRelaunchInCampaign(t *testing.T) {
	w, err := buildWorld(321, 20*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.Generate(catalog.Config{NumFiles: 1000, Vocabulary: 300, PopularityExp: 0.9, Seed: 6})
	bait := FourBaitFiles(cat)
	secret := []byte("relaunch-test")

	hp, err := w.addHoneypot(honeypot.Config{
		ID: "hp-frail", Strategy: honeypot.NoContent, Port: 4662, Secret: secret,
	}, bait, w.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	hpHost := hp.Client().Host().(*netsim.Host)

	// The relaunch hook rebuilds the honeypot on the restarted host, as a
	// PlanetLab operator (or the paper's manager) would.
	relaunches := 0
	w.mgr.Relaunch = func(id string, done func(manager.Handle, error)) {
		relaunches++
		hpHost.Restart()
		hp2 := honeypot.New(hpHost, honeypot.Config{
			ID: id, Strategy: honeypot.NoContent, Port: 4662, Secret: secret,
		})
		if err := hp2.Client().Listen(); err != nil {
			done(nil, err)
			return
		}
		w.hps[0] = hp2
		done(manager.NewLocalHandle(id, hp2, w.mgr.Host()), nil)
	}
	w.mgr.Start()
	w.loop.RunUntil(CampaignStart.Add(time.Hour))

	// Crash the honeypot. The LocalHandle's posts are muted by the dead
	// host, so the manager's status poll times out at the transport level
	// only for control.Links; LocalHandle health relies on the honeypot
	// host being up. Simulate the control-path failure by crashing and
	// letting the health check observe a disconnected status.
	hpHost.Crash()
	w.loop.RunUntil(CampaignStart.Add(2 * time.Hour))

	// The LocalHandle can't answer from a crashed host; the manager's
	// request stalls rather than erroring. Drive the relaunch directly as
	// the live path (control.Link failure) would, then re-push the
	// assignment like Manager.relaunch does.
	st := w.mgr.States()[0]
	w.mgr.Relaunch("hp-frail", func(h manager.Handle, err error) {
		if err != nil {
			t.Fatal(err)
		}
		st.Handle = h
		st.Relaunches++
		h.ConnectServer(st.Assignment.Server, func(err error) {
			if err != nil {
				t.Errorf("reconnect: %v", err)
				return
			}
			h.Advertise(st.Assignment.Files, func(err error) {
				if err != nil {
					t.Errorf("re-advertise: %v", err)
				}
			})
		})
	})
	w.loop.RunUntil(CampaignStart.Add(3 * time.Hour))

	if relaunches == 0 {
		t.Fatal("relaunch hook not invoked")
	}
	if !w.hps[0].Status().Connected {
		t.Error("relaunched honeypot not connected")
	}
	if w.srv.FilesIndexed() == 0 {
		t.Error("relaunched honeypot did not re-advertise")
	}
}
