package core

// The platform's failure-handling behaviour (paper §III-A: the manager
// notices dead or disconnected honeypots, relaunches them and re-pushes
// their assignment) used to be exercised by two hand-assembled worlds
// that crashed hosts between RunUntil calls. The scenario engine's
// FaultSchedule is that pattern as data; these tests declare the same
// outage and crash campaigns as specs and assert on the Result.

import (
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/honeypot"
	"repro/internal/logging"
	"repro/internal/scenario"
)

// faultSpec is the shared scaffolding of both failure campaigns: a
// small fleet, a modest population, frequent collection.
func faultSpec(name string, seed int64, days, honeypots int) scenario.Spec {
	fleet := make([]scenario.HoneypotSpec, honeypots)
	for i := range fleet {
		fleet[i] = scenario.HoneypotSpec{
			ID:       "hp-" + string(rune('0'+i)),
			Strategy: honeypot.RandomContent.String(),
			Files:    scenario.FilesSpec{Kind: "four-bait"},
		}
	}
	return scenario.Spec{
		Name:     name,
		Seed:     seed,
		Days:     days,
		Scale:    1.0,
		Catalog:  catalog.Config{NumFiles: 2000, Vocabulary: 400, PopularityExp: 0.9, Seed: 5},
		Topology: scenario.Topology{Servers: 1},
		Fleet:    fleet,
		Workloads: []scenario.WorkloadSpec{{
			Label:          name + "-pop",
			ArrivalsPerDay: 60, // per unit weight; uniform weight 1 per bait file
			Targets:        scenario.TargetsSpec{Kind: "static"},
		}},
		Collection: scenario.Collection{Every: scenario.Duration(30 * time.Minute)},
	}
}

// countAround splits a dataset at the fault window's edges.
func countAround(res *scenario.Result, down, up time.Time) (before, after int) {
	for _, r := range res.Dataset.Records {
		if r.Time.Before(down) {
			before++
		}
		if r.Time.After(up) {
			after++
		}
	}
	return
}

// TestServerOutageRecovery injects a directory-server outage in the
// middle of a campaign and verifies the platform behaves like the
// paper's: the manager's health check notices disconnected honeypots and
// re-pushes their assignment once the server returns, and measurement
// resumes (records exist on both sides of the outage).
func TestServerOutageRecovery(t *testing.T) {
	spec := faultSpec("outage", 123, 4, 4)
	spec.Faults = scenario.FaultSchedule{{
		Kind:     scenario.FaultServerOutage,
		Server:   0,
		At:       scenario.Duration(24 * time.Hour),
		Downtime: scenario.Duration(6 * time.Hour),
	}}
	res, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Faults) != 2 {
		t.Fatalf("fault log: %+v", res.Faults)
	}
	down, up := res.Faults[0], res.Faults[1]
	if down.Kind != "server-outage" || up.Kind != "server-restart" {
		t.Fatalf("fault log: %+v", res.Faults)
	}
	if !up.At.Equal(res.Start.Add(30 * time.Hour)) {
		t.Errorf("restart at %v, want %v", up.At, res.Start.Add(30*time.Hour))
	}

	before, after := countAround(res, down.At, up.At)
	if before == 0 {
		t.Error("no records before the outage")
	}
	if after == 0 {
		t.Error("no records after recovery: measurement did not resume")
	}
	// Every honeypot must have resumed measuring on the restarted
	// server: the health check re-pushed all four assignments.
	perHP := map[string]int{}
	for _, r := range res.Dataset.Records {
		if r.Time.After(up.At) {
			perHP[r.Honeypot]++
		}
	}
	for _, id := range res.HoneypotIDs {
		if perHP[id] == 0 {
			t.Errorf("honeypot %s observed nothing after the restart", id)
		}
	}
	// The restarted server process indexed the re-advertisements.
	if res.ServerStats.FilesIndexed == 0 {
		t.Error("re-advertisement missing after restart")
	}
}

// TestHoneypotCrashRelaunchInCampaign crashes a honeypot host mid-run
// via the fault schedule and verifies the engine's relaunch path
// (Manager.ReplaceHandle) restores coverage.
func TestHoneypotCrashRelaunchInCampaign(t *testing.T) {
	spec := faultSpec("relaunch", 321, 3, 1)
	spec.Fleet[0].ID = "hp-frail"
	spec.Fleet[0].Strategy = honeypot.NoContent.String()
	spec.Faults = scenario.FaultSchedule{{
		Kind:     scenario.FaultHoneypotCrash,
		Honeypot: "hp-frail",
		At:       scenario.Duration(24 * time.Hour),
		Downtime: scenario.Duration(4 * time.Hour),
	}}
	res, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	if res.Relaunches["hp-frail"] != 1 {
		t.Fatalf("relaunches: %v", res.Relaunches)
	}
	if len(res.Faults) != 2 || res.Faults[1].Kind != "honeypot-relaunch" {
		t.Fatalf("fault log: %+v", res.Faults)
	}
	before, after := countAround(res, res.Faults[0].At, res.Faults[1].At)
	if before == 0 {
		t.Error("no records before the crash")
	}
	if after == 0 {
		t.Error("no records after the relaunch: honeypot did not resume")
	}
	// The relaunched process re-advertised and kept serving HELLOs.
	if res.HoneypotStats["hp-frail"].Hello == 0 {
		t.Error("relaunched honeypot saw no HELLOs")
	}
	// Its pre-crash memory buffer died with the host, but collected
	// records survived in the manager: the dataset spans both lives.
	kinds := map[logging.Kind]bool{}
	for _, r := range res.Dataset.Records {
		kinds[r.Kind] = true
	}
	if !kinds[logging.KindHello] {
		t.Error("dataset lost its HELLO records")
	}
}
