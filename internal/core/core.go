// Package core orchestrates complete measurement campaigns: it builds a
// simulated world (directory server, honeypot fleet, manager, peer
// population), runs it for the campaign duration under virtual time, and
// returns the merged anonymized dataset plus campaign metadata.
//
// Two campaign shapes mirror the paper's experiments (§IV):
//
//   - Distributed: 24 honeypots on one large server, advertising the same
//     four files (a movie, a song, a Linux distribution and a text),
//     half answering with random content and half with none, for 32 days.
//   - Greedy: a single honeypot that spends its first day harvesting the
//     shared lists of contacting peers and re-advertising every file it
//     sees, then measures for 15 days total.
//
// The Scale knob multiplies arrival intensity only: durations, diurnal
// shape and behaviour stay at paper values, so every curve keeps its
// shape while absolute counts shrink proportionally.
package core

import (
	"fmt"
	"math"
	"net/netip"
	"time"

	"repro/internal/catalog"
	"repro/internal/client"
	"repro/internal/des"
	"repro/internal/ed2k"
	"repro/internal/honeypot"
	"repro/internal/logstore"
	"repro/internal/manager"
	"repro/internal/netsim"
	"repro/internal/peersim"
	"repro/internal/server"
)

// CampaignStart is the virtual start of all campaigns: the paper's
// distributed measurement began in October 2008.
var CampaignStart = time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)

// Result is the outcome of one campaign.
type Result struct {
	// Name labels the campaign ("distributed", "greedy", ...).
	Name string
	// Dataset is the manager's merged, renumbered, audited output.
	Dataset *manager.Dataset
	// Start and Days delimit the measurement window.
	Start time.Time
	Days  int
	// HoneypotIDs lists the fleet in launch order.
	HoneypotIDs []string
	// GroupOf maps honeypot ID to its strategy name ("random-content" /
	// "no-content").
	GroupOf map[string]string
	// Advertised is the final advertised file set (grown by adoption in
	// greedy campaigns).
	Advertised []client.SharedFile
	// PopStats, ServerStats and HoneypotStats expose component counters.
	PopStats      peersim.Stats
	ServerStats   server.Stats
	HoneypotStats map[string]honeypot.Stats
	// Events is the number of simulation events executed.
	Events uint64
	// StoreDir, when the campaign ran in spill-to-disk mode, is the
	// logstore directory holding every record in segmented files (one
	// shard per honeypot). Empty for in-memory campaigns.
	StoreDir string
	// StoredRecords is the record count persisted in StoreDir.
	StoredRecords uint64
}

// DistributedConfig parameterizes the distributed campaign.
type DistributedConfig struct {
	// Seed drives all randomness.
	Seed int64
	// Days is the measurement duration (paper: 32).
	Days int
	// Honeypots is the fleet size (paper: 24); half run random-content.
	Honeypots int
	// Servers is the number of directory servers. 1 reproduces the
	// paper's setup ("all connected to the same large server"); larger
	// values exercise the alternative strategy its §III-A describes,
	// spreading honeypots round-robin for a more global view. Peers log
	// into a random server and only find the honeypots registered there.
	Servers int
	// Scale multiplies arrival intensity (1.0 ≈ paper magnitudes).
	Scale float64
	// ArrivalsPerDay is the day-one arrival intensity before decay
	// (calibrated so 32 days at scale 1 yield ≈110k distinct peers).
	ArrivalsPerDay float64
	// DecayPerDay models waning interest in the four files (Fig 2's
	// declining new-peers curve).
	DecayPerDay float64
	// HeavyHitters is the number of crawler-like peers (Figs 8-9).
	HeavyHitters int
	// Catalog sizes the file universe used for peer libraries.
	Catalog catalog.Config
	// LibraryRegion confines peer libraries to the catalog's most
	// popular region (Table I's distinct-file count for this campaign).
	LibraryRegion int
	// CollectEvery is the manager's log-gathering period.
	CollectEvery time.Duration
	// StoreDir enables spill-to-disk mode: every honeypot writes its
	// records through a logstore shard under this directory and the
	// manager streams them back at finalize, so the campaign never holds
	// more than the working set in memory. Empty keeps the in-memory
	// path.
	StoreDir string
}

// DefaultDistributedConfig returns the paper's distributed setup.
func DefaultDistributedConfig() DistributedConfig {
	return DistributedConfig{
		Seed:           1,
		Days:           32,
		Honeypots:      24,
		Scale:          1.0,
		ArrivalsPerDay: 4900,
		DecayPerDay:    0.976,
		HeavyHitters:   1,
		Catalog:        catalog.DefaultConfig(),
		LibraryRegion:  30_000,
		CollectEvery:   time.Hour,
	}
}

// GreedyConfig parameterizes the greedy campaign.
type GreedyConfig struct {
	Seed int64
	// Days is the measurement duration (paper: 15).
	Days int
	// Scale multiplies arrival intensity.
	Scale float64
	// ArrivalsPerDay is the steady-state arrival intensity once the
	// advertised list is fully grown (paper: ≈54k new peers/day).
	ArrivalsPerDay float64
	// SeedFiles is the number of files advertised initially (paper
	// "starting with only a few": 3).
	SeedFiles int
	// AdoptWindow is the harvesting phase length (paper: 1 day).
	AdoptWindow time.Duration
	// MaxAdopted caps the advertised list (paper reached 3,175).
	MaxAdopted int
	// TargetExp shapes per-file arrival weights (1/(rank+1)^TargetExp);
	// 0.4 matches the paper's Fig 11/12 per-file peer counts.
	TargetExp float64
	// WantsMax bounds how many advertised files one peer asks for
	// (uniform 1..WantsMax; the paper's per-file sums imply ≈3).
	WantsMax int
	// Catalog sizes the file universe.
	Catalog catalog.Config
	// CollectEvery is the manager's log-gathering period.
	CollectEvery time.Duration
	// StoreDir enables spill-to-disk mode (see DistributedConfig).
	StoreDir string
}

// DefaultGreedyConfig returns the paper's greedy setup.
func DefaultGreedyConfig() GreedyConfig {
	return GreedyConfig{
		Seed:           2,
		Days:           15,
		Scale:          1.0,
		ArrivalsPerDay: 54_000,
		SeedFiles:      3,
		AdoptWindow:    24 * time.Hour,
		MaxAdopted:     3_175,
		TargetExp:      0.4,
		WantsMax:       5,
		Catalog:        catalog.DefaultConfig(),
		CollectEvery:   time.Hour,
	}
}

// campaignWorld is the shared scaffolding of both campaigns.
type campaignWorld struct {
	loop  *des.Loop
	net   *netsim.Network
	srv   *server.Server // first server (single-server campaigns use it)
	srvs  []*server.Server
	mgr   *manager.Manager
	hps   []*honeypot.Honeypot
	ids   []string
	store *logstore.Store // non-nil in spill-to-disk mode
}

func buildWorld(seed int64, collectEvery time.Duration) (*campaignWorld, error) {
	return buildWorldN(seed, collectEvery, 1)
}

// attachStore switches the world to spill-to-disk mode: honeypots added
// afterwards write through shards of a store at dir, and the manager
// streams the store at finalize instead of holding logs in memory.
func (w *campaignWorld) attachStore(dir string) error {
	store, err := logstore.Open(dir, logstore.Options{})
	if err != nil {
		return fmt.Errorf("core: opening store: %w", err)
	}
	// A simulated campaign starts from nothing; records left by an
	// earlier run would silently merge into (and double) the dataset.
	// Live honeypots resume dirty stores on purpose — campaigns refuse.
	if n := store.TotalRecords(); n > 0 {
		store.Close()
		return fmt.Errorf("core: store %s already holds %d records from a previous run; point -store at a fresh directory", dir, n)
	}
	w.store = store
	w.mgr.SetStore(store)
	return nil
}

// closeStore releases the spill store; safe to call twice, so campaign
// runners can defer it for error paths while finish() handles success.
func (w *campaignWorld) closeStore() error {
	if w.store == nil {
		return nil
	}
	err := w.store.Close()
	w.store = nil
	return err
}

// buildWorldN creates a world with n federated directory servers.
func buildWorldN(seed int64, collectEvery time.Duration, n int) (*campaignWorld, error) {
	if n <= 0 {
		n = 1
	}
	loop := des.NewLoop(CampaignStart, seed)
	nw := netsim.New(loop, netsim.DefaultConfig())

	hosts := make([]*netsim.Host, n)
	addrs := make([]netip.AddrPort, n)
	for i := 0; i < n; i++ {
		hosts[i] = nw.NewHost(fmt.Sprintf("server-%d", i))
		addrs[i] = netip.AddrPortFrom(hosts[i].Addr(), 4661)
	}
	w := &campaignWorld{loop: loop, net: nw}
	for i := 0; i < n; i++ {
		cfg := server.DefaultConfig(fmt.Sprintf("paper-server-%d", i))
		cfg.KnownServers = addrs // federation: everyone knows everyone
		srv := server.New(hosts[i], cfg)
		if err := srv.Start(); err != nil {
			return nil, fmt.Errorf("core: starting server %d: %w", i, err)
		}
		w.srvs = append(w.srvs, srv)
	}
	w.srv = w.srvs[0]

	mcfg := manager.DefaultConfig()
	if collectEvery > 0 {
		mcfg.CollectEvery = collectEvery
	}
	w.mgr = manager.New(nw.NewHost("manager"), mcfg)
	return w, nil
}

// serverAddrs lists all directory servers.
func (w *campaignWorld) serverAddrs() []netip.AddrPort {
	out := make([]netip.AddrPort, len(w.srvs))
	for i, s := range w.srvs {
		out[i] = s.Addr()
	}
	return out
}

// addHoneypot creates, registers and places one honeypot on the given
// directory server (zero AddrPort means the first server).
func (w *campaignWorld) addHoneypot(cfg honeypot.Config, files []client.SharedFile, on netip.AddrPort) (*honeypot.Honeypot, error) {
	var shard *logstore.Shard
	if w.store != nil {
		var err error
		if shard, err = w.store.Shard(cfg.ID); err != nil {
			return nil, fmt.Errorf("core: honeypot %s: %w", cfg.ID, err)
		}
		cfg.Sink = shard
	}
	hp := honeypot.New(w.net.NewHost(cfg.ID), cfg)
	if err := hp.Client().Listen(); err != nil {
		return nil, fmt.Errorf("core: honeypot %s: %w", cfg.ID, err)
	}
	if !on.IsValid() {
		on = w.srv.Addr()
	}
	handle := manager.NewLocalHandle(cfg.ID, hp, w.mgr.Host())
	if shard != nil {
		handle = manager.NewLocalHandleWithStore(cfg.ID, hp, shard, w.mgr.Host())
	}
	w.mgr.Add(handle, manager.Assignment{
		Server: on,
		Files:  files,
	})
	w.hps = append(w.hps, hp)
	w.ids = append(w.ids, cfg.ID)
	return hp, nil
}

// finish runs the campaign to its end, finalizes the dataset and collects
// metadata.
func (w *campaignWorld) finish(name string, days int, pop *peersim.Population, groupOf map[string]string) (*Result, error) {
	end := CampaignStart.Add(time.Duration(days) * 24 * time.Hour)
	w.loop.RunUntil(end)
	pop.Stop()

	var ds *manager.Dataset
	var dsErr error
	w.mgr.Finalize(func(d *manager.Dataset, err error) { ds, dsErr = d, err })
	// Drain the finalize exchange (bounded: population stopped).
	w.loop.RunUntil(end.Add(time.Hour))
	if dsErr != nil {
		return nil, dsErr
	}
	if ds == nil {
		return nil, fmt.Errorf("core: finalize did not complete")
	}

	res := &Result{
		Name:          name,
		Dataset:       ds,
		Start:         CampaignStart,
		Days:          days,
		HoneypotIDs:   w.ids,
		GroupOf:       groupOf,
		PopStats:      pop.Stats(),
		ServerStats:   w.srv.Stats(),
		HoneypotStats: make(map[string]honeypot.Stats, len(w.hps)),
		Events:        w.loop.Executed(),
	}
	for i, hp := range w.hps {
		res.HoneypotStats[w.ids[i]] = hp.Stats()
		res.Advertised = append(res.Advertised[:0], hp.Advertised()...)
	}
	// For multi-honeypot campaigns all advertise the same set; keep the
	// first fleet member's list.
	if len(w.hps) > 0 {
		res.Advertised = append([]client.SharedFile(nil), w.hps[0].Advertised()...)
	}
	if w.store != nil {
		res.StoreDir = w.store.Dir()
		res.StoredRecords = w.store.TotalRecords()
		if err := w.closeStore(); err != nil {
			return nil, fmt.Errorf("core: closing store: %w", err)
		}
	}
	return res, nil
}

// FourBaitFiles picks the paper's four advertised files from the catalog:
// a movie, a song, a Linux-distribution-like image and a text.
func FourBaitFiles(cat *catalog.Catalog) []client.SharedFile {
	kinds := []catalog.Kind{catalog.Movie, catalog.Song, catalog.Distro, catalog.Text}
	out := make([]client.SharedFile, 0, 4)
	for _, k := range kinds {
		for i := 0; i < cat.Len(); i++ {
			f := cat.File(i)
			if f.Kind == k {
				out = append(out, client.SharedFile{Hash: f.Hash, Name: f.Name, Size: f.Size, Type: f.Kind.String()})
				break
			}
		}
	}
	return out
}

// RunDistributed executes the distributed campaign.
func RunDistributed(cfg DistributedConfig) (*Result, error) {
	if cfg.Days <= 0 || cfg.Honeypots <= 0 {
		return nil, fmt.Errorf("core: invalid distributed config")
	}
	w, err := buildWorldN(cfg.Seed, cfg.CollectEvery, cfg.Servers)
	if err != nil {
		return nil, err
	}
	if cfg.StoreDir != "" {
		if err := w.attachStore(cfg.StoreDir); err != nil {
			return nil, err
		}
		defer w.closeStore() // error paths; finish() closes on success
	}
	cat := catalog.Generate(cfg.Catalog)
	bait := FourBaitFiles(cat)
	secret := []byte(fmt.Sprintf("distributed-campaign-%d", cfg.Seed))

	// Placement strategy: same-server (the paper's setup) or round-robin
	// over the federation.
	placements := manager.SameServer(w.srv.Addr(), bait, cfg.Honeypots)
	if len(w.srvs) > 1 {
		placements = manager.SpreadServers(w.serverAddrs(), bait, cfg.Honeypots)
	}

	groupOf := make(map[string]string, cfg.Honeypots)
	for i := 0; i < cfg.Honeypots; i++ {
		id := fmt.Sprintf("hp-%02d", i)
		strat := honeypot.NoContent
		if i%2 == 0 {
			strat = honeypot.RandomContent
		}
		groupOf[id] = strat.String()
		if _, err := w.addHoneypot(honeypot.Config{
			ID: id, Strategy: strat, Port: 4662, Secret: secret,
			BrowseContacts: true,
		}, bait, placements[i].Server); err != nil {
			return nil, err
		}
	}
	w.mgr.Start()
	w.loop.RunUntil(CampaignStart.Add(5 * time.Minute)) // placement settles

	// The four files' relative draw: movie > song > distro > text.
	weights := []float64{0.45, 0.30, 0.15, 0.10}
	targets := make([]peersim.TargetFile, len(bait))
	for i, f := range bait {
		wgt := 0.25
		if i < len(weights) {
			wgt = weights[i]
		}
		targets[i] = peersim.TargetFile{Hash: f.Hash, Name: f.Name, Size: f.Size, Weight: wgt}
	}

	pcfg := peersim.DefaultConfig()
	pcfg.Label = "distributed-pop"
	pcfg.Server = w.srv.Addr()
	if len(w.srvs) > 1 {
		pcfg.Servers = w.serverAddrs()
	}
	pcfg.Start = CampaignStart
	pcfg.End = CampaignStart.Add(time.Duration(cfg.Days) * 24 * time.Hour)
	pcfg.Scale = cfg.Scale
	pcfg.ArrivalsPerWeightPerDay = cfg.ArrivalsPerDay // Σ weights = 1
	pcfg.DecayPerDay = cfg.DecayPerDay
	pcfg.Catalog = cat
	pcfg.LibraryRegion = cfg.LibraryRegion
	pcfg.LibraryMean = 8
	pcfg.HeavyHitters = cfg.HeavyHitters
	pcfg.Targets = func() []peersim.TargetFile { return targets }
	pcfg.RefreshTargets = 0 // static set

	pop := peersim.New(w.net, pcfg)
	pop.Start()
	return w.finish("distributed", cfg.Days, pop, groupOf)
}

// RunGreedy executes the greedy campaign.
func RunGreedy(cfg GreedyConfig) (*Result, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("core: invalid greedy config")
	}
	w, err := buildWorld(cfg.Seed, cfg.CollectEvery)
	if err != nil {
		return nil, err
	}
	if cfg.StoreDir != "" {
		if err := w.attachStore(cfg.StoreDir); err != nil {
			return nil, err
		}
		defer w.closeStore() // error paths; finish() closes on success
	}
	cat := catalog.Generate(cfg.Catalog)
	secret := []byte(fmt.Sprintf("greedy-campaign-%d", cfg.Seed))

	// Seed files: a few mid-popularity songs.
	seeds := make([]client.SharedFile, 0, cfg.SeedFiles)
	for i := 0; i < cat.Len() && len(seeds) < cfg.SeedFiles; i++ {
		f := cat.File(i)
		if f.Kind == catalog.Song {
			seeds = append(seeds, client.SharedFile{Hash: f.Hash, Name: f.Name, Size: f.Size, Type: f.Kind.String()})
		}
	}

	hp, err := w.addHoneypot(honeypot.Config{
		ID: "hp-greedy", Strategy: honeypot.NoContent, Port: 4662, Secret: secret,
		BrowseContacts: true,
		Greedy:         true,
		GreedyWindow:   cfg.AdoptWindow,
		GreedyMaxFiles: cfg.MaxAdopted,
	}, seeds, netip.AddrPort{})
	if err != nil {
		return nil, err
	}
	w.mgr.Start()
	w.loop.RunUntil(CampaignStart.Add(5 * time.Minute))

	// Target weights follow adoption order with the campaign's exponent
	// (adoption order is popularity-correlated: popular files surface in
	// harvested libraries first). Normalized so a fully-grown list sums
	// to 1 and ArrivalsPerDay is the steady-state intensity.
	norm := 0.0
	for i := 0; i < cfg.MaxAdopted; i++ {
		norm += weightOf(i, cfg.TargetExp)
	}
	if norm <= 0 {
		norm = 1
	}

	pcfg := peersim.DefaultConfig()
	pcfg.Label = "greedy-pop"
	pcfg.Server = w.srv.Addr()
	pcfg.Start = CampaignStart
	pcfg.End = CampaignStart.Add(time.Duration(cfg.Days) * 24 * time.Hour)
	pcfg.Scale = cfg.Scale
	pcfg.ArrivalsPerWeightPerDay = cfg.ArrivalsPerDay / norm
	pcfg.Catalog = cat
	pcfg.LibraryMean = 15
	pcfg.MaxSourcesPerPeer = 1 // only one honeypot exists
	pcfg.WantsMax = cfg.WantsMax
	pcfg.RefreshTargets = time.Hour

	// Discovery ramp: the network notices a freshly advertised file
	// gradually — seekers must issue GET-SOURCES after the offer lands in
	// the index. This reproduces Fig 3's near-invisible first day.
	const discoveryRamp = 30 * time.Hour
	hpHost := hp.Client().Host()
	addedAt := map[ed2k.Hash]time.Time{}
	pcfg.Targets = func() []peersim.TargetFile {
		now := hpHost.Now()
		adv := hp.Advertised()
		out := make([]peersim.TargetFile, 0, len(adv))
		for i, f := range adv {
			t0, seen := addedAt[f.Hash]
			if !seen {
				t0 = now
				addedAt[f.Hash] = now
			}
			ramp := float64(now.Sub(t0)) / float64(discoveryRamp)
			if ramp > 1 || i < cfg.SeedFiles {
				// Seed files are established content the network already
				// knows; only freshly adopted files ramp up.
				ramp = 1
			}
			out = append(out, peersim.TargetFile{
				Hash: f.Hash, Name: f.Name, Size: f.Size,
				Weight: weightOf(i, cfg.TargetExp) * ramp,
			})
		}
		return out
	}

	pop := peersim.New(w.net, pcfg)
	pop.Start()
	groupOf := map[string]string{"hp-greedy": honeypot.NoContent.String()}
	return w.finish("greedy", cfg.Days, pop, groupOf)
}

// weightOf is the per-file arrival weight at catalog rank.
func weightOf(rank int, exp float64) float64 {
	return math.Pow(1/float64(rank+1), exp)
}
