// Package core keeps the paper's two campaign shapes (§IV) as typed
// configs and runs them through the generic scenario engine:
//
//   - Distributed: 24 honeypots on one large server, advertising the same
//     four files (a movie, a song, a Linux distribution and a text),
//     half answering with random content and half with none, for 32 days.
//   - Greedy: a single honeypot that spends its first day harvesting the
//     shared lists of contacting peers and re-advertising every file it
//     sees, then measures for 15 days total.
//
// Each config is a thin, stable façade: Spec() lowers it to a
// declarative scenario.Spec (topology + fleet + workloads + collection)
// and RunDistributed/RunGreedy are scenario.Run on that spec. Campaign
// regimes beyond these two — federations, churning fleets, multiple
// workloads, fault schedules — are composed directly in package
// scenario.
//
// The Scale knob multiplies arrival intensity only: durations, diurnal
// shape and behaviour stay at paper values, so every curve keeps its
// shape while absolute counts shrink proportionally.
package core

import (
	"time"

	"repro/internal/catalog"
	"repro/internal/client"
	"repro/internal/honeypot"
	"repro/internal/scenario"
)

// CampaignStart is the virtual start of all campaigns: the paper's
// distributed measurement began in October 2008.
var CampaignStart = scenario.CampaignStart

// Result is the outcome of one campaign.
type Result = scenario.Result

// DistributedConfig parameterizes the distributed campaign.
type DistributedConfig struct {
	// Seed drives all randomness.
	Seed int64
	// Days is the measurement duration (paper: 32).
	Days int
	// Honeypots is the fleet size (paper: 24); half run random-content.
	Honeypots int
	// Servers is the number of directory servers. 1 reproduces the
	// paper's setup ("all connected to the same large server"); larger
	// values exercise the alternative strategy its §III-A describes,
	// spreading honeypots round-robin for a more global view. Peers log
	// into a random server and only find the honeypots registered there.
	Servers int
	// Scale multiplies arrival intensity (1.0 ≈ paper magnitudes).
	Scale float64
	// ArrivalsPerDay is the day-one arrival intensity before decay
	// (calibrated so 32 days at scale 1 yield ≈110k distinct peers).
	ArrivalsPerDay float64
	// DecayPerDay models waning interest in the four files (Fig 2's
	// declining new-peers curve).
	DecayPerDay float64
	// HeavyHitters is the number of crawler-like peers (Figs 8-9).
	HeavyHitters int
	// Catalog sizes the file universe used for peer libraries.
	Catalog catalog.Config
	// LibraryRegion confines peer libraries to the catalog's most
	// popular region (Table I's distinct-file count for this campaign).
	LibraryRegion int
	// CollectEvery is the manager's log-gathering period.
	CollectEvery time.Duration
	// StoreDir enables spill-to-disk mode: every honeypot writes its
	// records through a logstore shard under this directory and the
	// manager streams them back at finalize, so the campaign never holds
	// more than the working set in memory. Empty keeps the in-memory
	// path.
	StoreDir string
}

// DefaultDistributedConfig returns the paper's distributed setup.
func DefaultDistributedConfig() DistributedConfig {
	return DistributedConfig{
		Seed:           1,
		Days:           32,
		Honeypots:      24,
		Scale:          1.0,
		ArrivalsPerDay: 4900,
		DecayPerDay:    0.976,
		HeavyHitters:   1,
		Catalog:        catalog.DefaultConfig(),
		LibraryRegion:  30_000,
		CollectEvery:   time.Hour,
	}
}

// Spec lowers the config to its declarative campaign spec.
func (cfg DistributedConfig) Spec() scenario.Spec {
	servers := cfg.Servers
	if servers < 1 {
		servers = 1
	}
	// Placement strategy: same-server (the paper's setup) or round-robin
	// over the federation.
	fleet := scenario.AlternatingFleet(max(cfg.Honeypots, 0), servers)
	ws := scenario.WorkloadSpec{
		Label:          "distributed-pop",
		ArrivalsPerDay: cfg.ArrivalsPerDay,
		DecayPerDay:    cfg.DecayPerDay,
		HeavyHitters:   cfg.HeavyHitters,
		LibraryMean:    8,
		LibraryRegion:  cfg.LibraryRegion,
		// The four files' relative draw: movie > song > distro > text.
		Targets: scenario.TargetsSpec{Kind: "static", Weights: []float64{0.45, 0.30, 0.15, 0.10}},
	}
	if servers > 1 {
		for i := 0; i < servers; i++ {
			ws.Servers = append(ws.Servers, i)
		}
	}
	return scenario.Spec{
		Name:       "distributed",
		Seed:       cfg.Seed,
		Days:       cfg.Days,
		Scale:      cfg.Scale,
		Catalog:    cfg.Catalog,
		Topology:   scenario.Topology{Servers: servers},
		Fleet:      fleet,
		Workloads:  []scenario.WorkloadSpec{ws},
		Collection: scenario.Collection{Every: scenario.Duration(cfg.CollectEvery), StoreDir: cfg.StoreDir},
	}
}

// GreedyConfig parameterizes the greedy campaign.
type GreedyConfig struct {
	Seed int64
	// Days is the measurement duration (paper: 15).
	Days int
	// Scale multiplies arrival intensity.
	Scale float64
	// ArrivalsPerDay is the steady-state arrival intensity once the
	// advertised list is fully grown (paper: ≈54k new peers/day).
	ArrivalsPerDay float64
	// SeedFiles is the number of files advertised initially (paper
	// "starting with only a few": 3).
	SeedFiles int
	// AdoptWindow is the harvesting phase length (paper: 1 day).
	AdoptWindow time.Duration
	// MaxAdopted caps the advertised list (paper reached 3,175).
	MaxAdopted int
	// TargetExp shapes per-file arrival weights (1/(rank+1)^TargetExp);
	// 0.4 matches the paper's Fig 11/12 per-file peer counts.
	TargetExp float64
	// WantsMax bounds how many advertised files one peer asks for
	// (uniform 1..WantsMax; the paper's per-file sums imply ≈3).
	WantsMax int
	// Catalog sizes the file universe.
	Catalog catalog.Config
	// CollectEvery is the manager's log-gathering period.
	CollectEvery time.Duration
	// StoreDir enables spill-to-disk mode (see DistributedConfig).
	StoreDir string
}

// DefaultGreedyConfig returns the paper's greedy setup.
func DefaultGreedyConfig() GreedyConfig {
	return GreedyConfig{
		Seed:           2,
		Days:           15,
		Scale:          1.0,
		ArrivalsPerDay: 54_000,
		SeedFiles:      3,
		AdoptWindow:    24 * time.Hour,
		MaxAdopted:     3_175,
		TargetExp:      0.4,
		WantsMax:       5,
		Catalog:        catalog.DefaultConfig(),
		CollectEvery:   time.Hour,
	}
}

// Spec lowers the config to its declarative campaign spec.
func (cfg GreedyConfig) Spec() scenario.Spec {
	return scenario.Spec{
		Name:     "greedy",
		Seed:     cfg.Seed,
		Days:     cfg.Days,
		Scale:    cfg.Scale,
		Catalog:  cfg.Catalog,
		Topology: scenario.Topology{Servers: 1},
		Fleet: []scenario.HoneypotSpec{{
			ID:             "hp-greedy",
			Strategy:       honeypot.NoContent.String(),
			Files:          scenario.FilesSpec{Kind: "songs", N: cfg.SeedFiles},
			BrowseContacts: true,
			Greedy:         true,
			GreedyWindow:   scenario.Duration(cfg.AdoptWindow),
			GreedyMaxFiles: cfg.MaxAdopted,
		}},
		Workloads: []scenario.WorkloadSpec{{
			Label:             "greedy-pop",
			ArrivalsPerDay:    cfg.ArrivalsPerDay,
			LibraryMean:       15,
			MaxSourcesPerPeer: 1, // only one honeypot exists
			WantsMax:          cfg.WantsMax,
			RefreshTargets:    scenario.Duration(time.Hour),
			Targets: scenario.TargetsSpec{
				Kind:        "advertised-ramp",
				Exp:         cfg.TargetExp,
				Ramp:        scenario.Duration(30 * time.Hour),
				NormFiles:   cfg.MaxAdopted,
				ExemptFirst: cfg.SeedFiles,
			},
		}},
		Collection: scenario.Collection{Every: scenario.Duration(cfg.CollectEvery), StoreDir: cfg.StoreDir},
	}
}

// FourBaitFiles picks the paper's four advertised files from the catalog:
// a movie, a song, a Linux-distribution-like image and a text.
func FourBaitFiles(cat *catalog.Catalog) []client.SharedFile {
	return scenario.FourBaitFiles(cat)
}

// RunDistributed executes the distributed campaign.
func RunDistributed(cfg DistributedConfig) (*Result, error) {
	return scenario.Run(cfg.Spec())
}

// RunGreedy executes the greedy campaign.
func RunGreedy(cfg GreedyConfig) (*Result, error) {
	return scenario.Run(cfg.Spec())
}
