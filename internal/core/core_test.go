package core

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/honeypot"
	"repro/internal/logging"
	"repro/internal/logstore"
)

// tinyDistributed returns a distributed campaign small enough for unit
// tests (a few hundred peers) but with the paper's structure intact.
func tinyDistributed() DistributedConfig {
	cfg := DefaultDistributedConfig()
	cfg.Days = 4
	cfg.Honeypots = 6
	cfg.Scale = 0.02
	cfg.HeavyHitters = 1
	cfg.Catalog = catalog.Config{NumFiles: 3000, Vocabulary: 500, PopularityExp: 0.9, Seed: 1}
	cfg.LibraryRegion = 1000
	return cfg
}

func tinyGreedy() GreedyConfig {
	cfg := DefaultGreedyConfig()
	cfg.Days = 3
	cfg.Scale = 0.004
	cfg.MaxAdopted = 200
	cfg.Catalog = catalog.Config{NumFiles: 3000, Vocabulary: 500, PopularityExp: 0.9, Seed: 2}
	return cfg
}

func TestRunDistributedSmoke(t *testing.T) {
	res, err := RunDistributed(tinyDistributed())
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "distributed" || res.Days != 4 {
		t.Errorf("metadata: %s/%d", res.Name, res.Days)
	}
	if len(res.HoneypotIDs) != 6 {
		t.Fatalf("honeypots: %v", res.HoneypotIDs)
	}
	if res.Dataset.DistinctPeers < 50 {
		t.Errorf("only %d distinct peers", res.Dataset.DistinctPeers)
	}
	if len(res.Advertised) != 4 {
		t.Errorf("advertised %d files, want the paper's 4", len(res.Advertised))
	}
	// Both strategy groups must exist.
	groups := map[string]int{}
	for _, g := range res.GroupOf {
		groups[g]++
	}
	if groups[honeypot.RandomContent.String()] != 3 || groups[honeypot.NoContent.String()] != 3 {
		t.Errorf("groups: %v", groups)
	}
	// Records span multiple days.
	last := res.Dataset.Records[len(res.Dataset.Records)-1]
	if last.Time.Before(res.Start.Add(48 * time.Hour)) {
		t.Error("campaign ended early")
	}
	// All four paper-visible kinds appear.
	kinds := map[logging.Kind]int{}
	for _, r := range res.Dataset.Records {
		kinds[r.Kind]++
	}
	for _, k := range []logging.Kind{logging.KindHello, logging.KindStartUpload, logging.KindRequestPart, logging.KindSharedList} {
		if kinds[k] == 0 {
			t.Errorf("no %v records", k)
		}
	}
}

func TestRunDistributedDeterministic(t *testing.T) {
	cfg := tinyDistributed()
	cfg.Days = 2
	cfg.Scale = 0.01
	a, err := RunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dataset.DistinctPeers != b.Dataset.DistinctPeers ||
		len(a.Dataset.Records) != len(b.Dataset.Records) ||
		a.Events != b.Events {
		t.Errorf("replay diverged: peers %d/%d records %d/%d events %d/%d",
			a.Dataset.DistinctPeers, b.Dataset.DistinctPeers,
			len(a.Dataset.Records), len(b.Dataset.Records),
			a.Events, b.Events)
	}
}

// TestRunDistributedWithStore is the acceptance check for spill-to-disk
// campaigns: every record is persisted to segmented files, the logstore
// Iterator streams them back in the exact timestamp order logging.Merge
// gives the in-memory path, and the resulting dataset is identical.
func TestRunDistributedWithStore(t *testing.T) {
	cfg := tinyDistributed()
	cfg.Days = 2
	cfg.Scale = 0.01

	mem, err := RunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.StoreDir = t.TempDir()
	disk, err := RunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if disk.StoreDir == "" || disk.StoredRecords == 0 {
		t.Fatalf("store metadata missing: %q / %d", disk.StoreDir, disk.StoredRecords)
	}
	if int(disk.StoredRecords) != len(disk.Dataset.Records) {
		t.Errorf("store persisted %d records, dataset has %d", disk.StoredRecords, len(disk.Dataset.Records))
	}

	// Same seed, same world: the spill-to-disk dataset must match the
	// in-memory one record for record (renumbering included, since both
	// merges order ties identically).
	if len(mem.Dataset.Records) != len(disk.Dataset.Records) {
		t.Fatalf("record counts differ: memory %d, store %d", len(mem.Dataset.Records), len(disk.Dataset.Records))
	}
	for i := range mem.Dataset.Records {
		a, b := mem.Dataset.Records[i], disk.Dataset.Records[i]
		if !a.Time.Equal(b.Time) || a.Honeypot != b.Honeypot || a.Kind != b.Kind || a.PeerIP != b.PeerIP {
			t.Fatalf("record %d differs:\n memory %+v\n store  %+v", i, a, b)
		}
	}
	if mem.Dataset.DistinctPeers != disk.Dataset.DistinctPeers {
		t.Errorf("distinct peers differ: %d vs %d", mem.Dataset.DistinctPeers, disk.Dataset.DistinctPeers)
	}

	// Reopen the store and stream it: same count, same order as the
	// dataset (modulo the step-2 renumbering, which happens after the
	// merge and only rewrites PeerIP).
	store, err := logstore.Open(disk.StoreDir, logstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if len(store.ShardNames()) != cfg.Honeypots {
		t.Errorf("store has %d shards, want %d", len(store.ShardNames()), cfg.Honeypots)
	}
	it, err := store.Iterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	i := 0
	for {
		r, err := it.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if i >= len(disk.Dataset.Records) {
			t.Fatal("iterator streams more records than the dataset")
		}
		want := disk.Dataset.Records[i]
		if !r.Time.Equal(want.Time) || r.Honeypot != want.Honeypot || r.Kind != want.Kind {
			t.Fatalf("stream record %d differs: %+v vs %+v", i, r, want)
		}
		i++
	}
	if i != len(disk.Dataset.Records) {
		t.Fatalf("iterator streamed %d records, dataset has %d", i, len(disk.Dataset.Records))
	}
}

func TestRunWithDirtyStoreRefused(t *testing.T) {
	cfg := tinyDistributed()
	cfg.Days = 2
	cfg.Scale = 0.005
	cfg.StoreDir = t.TempDir()
	if _, err := RunDistributed(cfg); err != nil {
		t.Fatal(err)
	}
	// A second campaign into the same directory would double the
	// dataset; it must be refused, not silently merged.
	if _, err := RunDistributed(cfg); err == nil {
		t.Fatal("second campaign into a dirty store must fail")
	}
}

func TestRunGreedyWithStoreSmoke(t *testing.T) {
	cfg := tinyGreedy()
	cfg.Days = 2
	cfg.Scale = 0.002
	cfg.StoreDir = t.TempDir()
	res, err := RunGreedy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if int(res.StoredRecords) != len(res.Dataset.Records) {
		t.Errorf("store persisted %d records, dataset has %d", res.StoredRecords, len(res.Dataset.Records))
	}
}

func TestRunGreedySmoke(t *testing.T) {
	res, err := RunGreedy(tinyGreedy())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HoneypotIDs) != 1 {
		t.Fatalf("honeypots: %v", res.HoneypotIDs)
	}
	// The greedy honeypot must have grown its advertised list well beyond
	// the seed files.
	if len(res.Advertised) < 20 {
		t.Errorf("advertised only %d files; adoption failed", len(res.Advertised))
	}
	hpStats := res.HoneypotStats["hp-greedy"]
	if hpStats.Adopted == 0 {
		t.Error("no adoption recorded")
	}
	if res.Dataset.DistinctPeers < 20 {
		t.Errorf("only %d distinct peers", res.Dataset.DistinctPeers)
	}
	// Peers must have queried more than the seed files.
	queried := map[string]bool{}
	for _, r := range res.Dataset.Records {
		if r.Kind == logging.KindStartUpload && !r.FileHash.Zero() {
			queried[r.FileHash.String()] = true
		}
	}
	if len(queried) <= tinyGreedy().SeedFiles {
		t.Errorf("queries hit only %d files", len(queried))
	}
}

func TestFourBaitFiles(t *testing.T) {
	cat := catalog.Generate(catalog.Config{NumFiles: 5000, Vocabulary: 400, PopularityExp: 0.9, Seed: 9})
	files := FourBaitFiles(cat)
	if len(files) != 4 {
		t.Fatalf("got %d bait files", len(files))
	}
	types := map[string]bool{}
	for _, f := range files {
		types[f.Type] = true
		if f.Size <= 0 || f.Name == "" || f.Hash.Zero() {
			t.Errorf("bad bait file %+v", f)
		}
	}
	// Movie, song, distro(Pro), text(Doc).
	for _, want := range []string{"Video", "Audio", "Pro", "Doc"} {
		if !types[want] {
			t.Errorf("missing bait type %s (have %v)", want, types)
		}
	}
}

func TestInvalidConfigs(t *testing.T) {
	if _, err := RunDistributed(DistributedConfig{}); err == nil {
		t.Error("zero distributed config must fail")
	}
	if _, err := RunGreedy(GreedyConfig{}); err == nil {
		t.Error("zero greedy config must fail")
	}
}

// TestRunDistributedMultiServer exercises the paper's alternative
// placement strategy: honeypots spread round-robin over several
// directory servers, peers logging into a random one.
func TestRunDistributedMultiServer(t *testing.T) {
	cfg := tinyDistributed()
	cfg.Servers = 3
	res, err := RunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset.DistinctPeers < 30 {
		t.Errorf("only %d distinct peers", res.Dataset.DistinctPeers)
	}
	// Every honeypot must have been contacted: peers on each server find
	// the honeypots registered there.
	perHP := map[string]int{}
	for _, r := range res.Dataset.Records {
		perHP[r.Honeypot]++
	}
	for _, id := range res.HoneypotIDs {
		if perHP[id] == 0 {
			t.Errorf("honeypot %s observed nothing; its server got no peers?", id)
		}
	}
	// Honeypots report different server addresses across the fleet.
	servers := map[string]bool{}
	for _, r := range res.Dataset.Records {
		if r.Server != "" {
			servers[r.Server] = true
		}
	}
	if len(servers) != 3 {
		t.Errorf("records mention %d servers, want 3", len(servers))
	}
}

// TestMultiServerPartitionsObservation: with several servers, a single
// honeypot sees a smaller share of the population than in the same-server
// setup, because only peers of its own server can find it.
func TestMultiServerPartitionsObservation(t *testing.T) {
	base := tinyDistributed()
	base.Days = 3
	single, err := RunDistributed(base)
	if err != nil {
		t.Fatal(err)
	}
	multi := base
	multi.Servers = 3
	multiRes, err := RunDistributed(multi)
	if err != nil {
		t.Fatal(err)
	}
	share := func(res *Result) float64 {
		perHP := map[string]map[string]bool{}
		total := map[string]bool{}
		for _, r := range res.Dataset.Records {
			if perHP[r.Honeypot] == nil {
				perHP[r.Honeypot] = map[string]bool{}
			}
			perHP[r.Honeypot][r.PeerIP] = true
			total[r.PeerIP] = true
		}
		sum := 0.0
		for _, peers := range perHP {
			sum += float64(len(peers))
		}
		if len(total) == 0 || len(perHP) == 0 {
			return 0
		}
		return sum / float64(len(perHP)) / float64(len(total))
	}
	if share(multiRes) >= share(single) {
		t.Errorf("multi-server per-honeypot share %.2f should be below single-server %.2f",
			share(multiRes), share(single))
	}
}
