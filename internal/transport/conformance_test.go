// Conformance suite: the same semantic contract tests run against both
// transport implementations (netsim and livenet). The entire platform
// rests on the two behaving identically — actors are written once and
// deployed on either — so any divergence must fail here.
package transport_test

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/ed2k"
	"repro/internal/livenet"
	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// fixture abstracts over the two implementations.
type fixture struct {
	name string
	// newHost creates a host.
	newHost func(label string) transport.Host
	// settle lets in-flight work finish (virtual or real time).
	settle func()
	// close tears the fixture down.
	close func()
}

func fixtures(t *testing.T) []*fixture {
	t.Helper()
	var fs []*fixture

	// Simulated network.
	loop := des.NewLoop(time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC), 99)
	simNet := netsim.New(loop, netsim.DefaultConfig())
	fs = append(fs, &fixture{
		name:    "netsim",
		newHost: func(label string) transport.Host { return simNet.NewHost(label) },
		settle:  func() { loop.RunUntil(loop.Now().Add(30 * time.Second)) },
		close:   func() {},
	})

	// Real TCP on distinct loopback addresses.
	var liveHosts []*livenet.Host
	next := byte(1)
	fs = append(fs, &fixture{
		name: "livenet",
		newHost: func(label string) transport.Host {
			addr := netip.AddrFrom4([4]byte{127, 0, 3, next})
			next++
			h := livenet.NewHost(addr, int64(next))
			liveHosts = append(liveHosts, h)
			return h
		},
		settle: func() { time.Sleep(150 * time.Millisecond) },
		close: func() {
			for _, h := range liveHosts {
				h.Close()
			}
		},
	})
	return fs
}

// recorder collects events safely under both threading models.
type recorder struct {
	mu     sync.Mutex
	msgs   []wire.Message
	closed bool
	err    error
}

func (r *recorder) hooks() transport.ConnHooks {
	return transport.ConnHooks{
		OnMessage: func(m wire.Message) {
			r.mu.Lock()
			r.msgs = append(r.msgs, m)
			r.mu.Unlock()
		},
		OnClose: func(err error) {
			r.mu.Lock()
			r.closed = true
			r.err = err
			r.mu.Unlock()
		},
	}
}

func (r *recorder) snapshot() (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs), r.closed
}

func forEachFixture(t *testing.T, run func(t *testing.T, f *fixture)) {
	for _, f := range fixtures(t) {
		f := f
		t.Run(f.name, func(t *testing.T) {
			defer f.close()
			run(t, f)
		})
	}
}

func TestConformanceExchangeAndOrder(t *testing.T) {
	forEachFixture(t, func(t *testing.T, f *fixture) {
		srv := f.newHost("srv")
		cli := f.newHost("cli")
		rec := &recorder{}

		l, err := srv.Listen(14100, wire.ServerSpace, func(c transport.Conn) {
			c.SetHooks(rec.hooks())
		})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()

		cli.Dial(netip.AddrPortFrom(srv.Addr(), 14100), wire.ServerSpace, func(c transport.Conn, err error) {
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			for i := uint32(0); i < 20; i++ {
				c.Send(&wire.IDChange{ClientID: i})
			}
		})
		for i := 0; i < 30; i++ {
			f.settle()
			if n, _ := rec.snapshot(); n == 20 {
				break
			}
		}
		rec.mu.Lock()
		defer rec.mu.Unlock()
		if len(rec.msgs) != 20 {
			t.Fatalf("got %d messages", len(rec.msgs))
		}
		for i, m := range rec.msgs {
			if m.(*wire.IDChange).ClientID != uint32(i) {
				t.Fatalf("out of order at %d", i)
			}
		}
	})
}

func TestConformanceDialRefused(t *testing.T) {
	forEachFixture(t, func(t *testing.T, f *fixture) {
		a := f.newHost("a")
		b := f.newHost("b")
		var mu sync.Mutex
		var dialErr error
		got := false
		a.Dial(netip.AddrPortFrom(b.Addr(), 14199), wire.ServerSpace, func(c transport.Conn, err error) {
			mu.Lock()
			dialErr, got = err, true
			mu.Unlock()
		})
		for i := 0; i < 100; i++ {
			f.settle()
			mu.Lock()
			done := got
			mu.Unlock()
			if done {
				break
			}
		}
		mu.Lock()
		defer mu.Unlock()
		if !got {
			t.Fatal("dial callback never fired")
		}
		if dialErr == nil {
			t.Error("dial to closed port must fail")
		}
	})
}

func TestConformanceCloseNotifiesPeer(t *testing.T) {
	forEachFixture(t, func(t *testing.T, f *fixture) {
		srv := f.newHost("srv")
		cli := f.newHost("cli")
		rec := &recorder{}
		l, err := srv.Listen(14101, wire.ServerSpace, func(c transport.Conn) {
			c.SetHooks(rec.hooks())
		})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		cli.Dial(netip.AddrPortFrom(srv.Addr(), 14101), wire.ServerSpace, func(c transport.Conn, err error) {
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			c.Send(&wire.GetServerList{})
			c.Close()
		})
		for i := 0; i < 30; i++ {
			f.settle()
			if _, closed := rec.snapshot(); closed {
				break
			}
		}
		n, closed := rec.snapshot()
		if !closed {
			t.Fatal("peer not notified of close")
		}
		// The message sent before Close must still be delivered.
		if n != 1 {
			t.Errorf("messages before close: %d", n)
		}
	})
}

func TestConformanceBufferingBeforeHooks(t *testing.T) {
	forEachFixture(t, func(t *testing.T, f *fixture) {
		srv := f.newHost("srv")
		cli := f.newHost("cli")
		var mu sync.Mutex
		var pending transport.Conn
		l, err := srv.Listen(14102, wire.ServerSpace, func(c transport.Conn) {
			mu.Lock()
			pending = c // hooks deliberately not installed yet
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		cli.Dial(netip.AddrPortFrom(srv.Addr(), 14102), wire.ServerSpace, func(c transport.Conn, err error) {
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			c.Send(&wire.GetServerList{})
			c.Send(&wire.GetSources{Hash: ed2k.SyntheticHash("x")})
		})
		var conn transport.Conn
		for i := 0; i < 30; i++ {
			f.settle()
			mu.Lock()
			conn = pending
			mu.Unlock()
			if conn != nil {
				break
			}
		}
		if conn == nil {
			t.Fatal("no inbound connection")
		}
		// Give the messages time to arrive and be buffered.
		f.settle()
		f.settle()
		rec := &recorder{}
		// SetHooks must run on the host executor in live mode.
		srv.Post(func() { conn.SetHooks(rec.hooks()) })
		for i := 0; i < 30; i++ {
			f.settle()
			if n, _ := rec.snapshot(); n == 2 {
				break
			}
		}
		if n, _ := rec.snapshot(); n != 2 {
			t.Errorf("buffered delivery: got %d messages, want 2", n)
		}
	})
}

func TestConformanceTimers(t *testing.T) {
	forEachFixture(t, func(t *testing.T, f *fixture) {
		h := f.newHost("h")
		var mu sync.Mutex
		fired := 0
		h.After(20*time.Millisecond, func() {
			mu.Lock()
			fired++
			mu.Unlock()
		})
		stopped := h.After(50*time.Millisecond, func() {
			mu.Lock()
			fired += 100
			mu.Unlock()
		})
		if !stopped.Stop() {
			t.Error("Stop on pending timer must report true")
		}
		if stopped.Stop() {
			t.Error("second Stop must report false")
		}
		for i := 0; i < 30; i++ {
			f.settle()
			mu.Lock()
			n := fired
			mu.Unlock()
			if n >= 1 {
				break
			}
		}
		mu.Lock()
		defer mu.Unlock()
		if fired != 1 {
			t.Errorf("fired = %d, want exactly 1 (stopped timer must not run)", fired)
		}
	})
}

func TestConformancePostSerializes(t *testing.T) {
	forEachFixture(t, func(t *testing.T, f *fixture) {
		h := f.newHost("h")
		var mu sync.Mutex
		order := make([]int, 0, 50)
		for i := 0; i < 50; i++ {
			i := i
			h.Post(func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		}
		for i := 0; i < 30; i++ {
			f.settle()
			mu.Lock()
			n := len(order)
			mu.Unlock()
			if n == 50 {
				break
			}
		}
		mu.Lock()
		defer mu.Unlock()
		if len(order) != 50 {
			t.Fatalf("ran %d posts", len(order))
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("posts out of order at %d", i)
			}
		}
	})
}
