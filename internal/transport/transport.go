// Package transport defines the host/connection abstraction the protocol
// actors (server, client, honeypot) are written against. Two
// implementations exist: package netsim executes hosts inside a
// discrete-event simulation with virtual time, and package livenet runs
// the identical actor code over real TCP sockets.
//
// Threading contract: all callbacks delivered to a given Host — accept
// callbacks, connection hooks, timers, functions passed to Post — are
// serialized. Actor code therefore needs no locks of its own, exactly like
// a handler running inside an event loop.
package transport

import (
	"errors"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/wire"
)

// ErrConnRefused is reported when no listener accepts a dialed port.
var ErrConnRefused = errors.New("transport: connection refused")

// ErrHostDown is reported when the target host is not running.
var ErrHostDown = errors.New("transport: host down")

// ErrClosed is reported on use of a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// ConnHooks receive connection events. Hooks are optional; nil members are
// skipped.
type ConnHooks struct {
	// OnMessage is called for every decoded message, in order.
	OnMessage func(m wire.Message)
	// OnClose is called exactly once when the connection dies, with nil on
	// graceful close by either side and an error otherwise.
	OnClose func(err error)
}

// Conn is one bidirectional, ordered eDonkey message stream.
type Conn interface {
	// SetHooks installs the receive callbacks. Messages arriving before
	// SetHooks are buffered.
	SetHooks(h ConnHooks)
	// Send enqueues a message. Sends on a closed connection are dropped
	// silently (the OnClose hook already reported the death).
	Send(m wire.Message)
	// Close tears the connection down gracefully.
	Close()
	// LocalAddr and RemoteAddr identify the two endpoints.
	LocalAddr() netip.AddrPort
	RemoteAddr() netip.AddrPort
}

// Listener is an open listening port.
type Listener interface {
	// Close stops accepting. Established connections are unaffected.
	Close()
	// Addr returns the bound address.
	Addr() netip.AddrPort
}

// Timer is a cancelable scheduled callback.
type Timer interface {
	// Stop cancels the timer; it reports whether the callback was
	// prevented from running.
	Stop() bool
}

// Host is one network node with its own address, clock and executor.
type Host interface {
	// Addr returns the host's IPv4 address.
	Addr() netip.Addr
	// Now returns the host's current time (virtual under simulation).
	Now() time.Time
	// After schedules fn on the host's executor after d.
	After(d time.Duration, fn func()) Timer
	// Post schedules fn on the host's executor as soon as possible. It is
	// safe to call from any goroutine; this is the bridge for external
	// inputs in live mode.
	Post(fn func())
	// Rand returns the host's random stream. Must only be used from the
	// host's executor.
	Rand() *rand.Rand
	// Listen opens a listening port for the given protocol space; accept
	// runs on the host executor for every inbound connection.
	Listen(port uint16, space wire.Space, accept func(Conn)) (Listener, error)
	// Dial opens a connection to remote speaking the given space. done is
	// invoked on the host executor with the connection or an error.
	Dial(remote netip.AddrPort, space wire.Space, done func(Conn, error))
}
