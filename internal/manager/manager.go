// Package manager implements the measurement manager of the paper's
// platform (§III-A): it launches honeypots, assigns them to directory
// servers, tells them which files to advertise, monitors their status
// (re-launching dead ones and re-pushing their assignment), periodically
// gathers the logs they collected, and finally merges and unifies the
// logs — running the step-2 anonymization (coherent renumbering), the
// filename anonymization, and a leak audit.
package manager

import (
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"repro/internal/anonymize"
	"repro/internal/client"
	"repro/internal/control"
	"repro/internal/honeypot"
	"repro/internal/logging"
	"repro/internal/logstore"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Handle abstracts one controlled honeypot. control.Link implements it
// for remote honeypots (live TCP and control-plane tests); LocalHandle
// wraps an in-process honeypot for large simulated campaigns where
// serializing millions of records through the control plane would be
// pointless overhead.
type Handle interface {
	ID() string
	Status(cb func(honeypot.Status, error))
	Advertise(files []client.SharedFile, cb func(error))
	ConnectServer(server netip.AddrPort, cb func(error))
	TakeRecords(cb func([]logging.Record, error))
	Close()
}

// IncrementalHandle is the optional collection upgrade: handles whose
// honeypot logs into a durable store can serve records from a checkpoint,
// so each record crosses the control plane at most once and a honeypot
// restart never re-sends what the manager already acked. control.Link
// implements it (backed by the take-records-since request).
type IncrementalHandle interface {
	TakeRecordsSince(since logstore.Checkpoint, max int, cb func([]logging.Record, logstore.Checkpoint, error))
}

// StoreBackedHandle is implemented by handles whose honeypot appends
// directly into a shard of the manager's own store (in-process
// campaigns): collection then has nothing to transfer at all.
type StoreBackedHandle interface {
	Shard() *logstore.Shard
}

// LocalHandle drives an in-process honeypot, hopping executors so the
// actor contracts of both sides hold.
type LocalHandle struct {
	id      string
	hp      *honeypot.Honeypot
	shard   *logstore.Shard
	mgrHost transport.Host
}

// NewLocalHandle wraps hp; callbacks run on mgrHost's executor.
func NewLocalHandle(id string, hp *honeypot.Honeypot, mgrHost transport.Host) *LocalHandle {
	return &LocalHandle{id: id, hp: hp, mgrHost: mgrHost}
}

// NewLocalHandleWithStore wraps a honeypot whose Sink is the given
// logstore shard: the manager sees the records as already collected.
func NewLocalHandleWithStore(id string, hp *honeypot.Honeypot, shard *logstore.Shard, mgrHost transport.Host) *LocalHandle {
	return &LocalHandle{id: id, hp: hp, shard: shard, mgrHost: mgrHost}
}

// Shard implements StoreBackedHandle (nil without a store).
func (h *LocalHandle) Shard() *logstore.Shard { return h.shard }

// ID implements Handle.
func (h *LocalHandle) ID() string { return h.id }

// Status implements Handle.
func (h *LocalHandle) Status(cb func(honeypot.Status, error)) {
	h.hp.Client().Host().Post(func() {
		st := h.hp.Status()
		h.mgrHost.Post(func() { cb(st, nil) })
	})
}

// Advertise implements Handle.
func (h *LocalHandle) Advertise(files []client.SharedFile, cb func(error)) {
	h.hp.Client().Host().Post(func() {
		h.hp.Advertise(files...)
		h.mgrHost.Post(func() { cb(nil) })
	})
}

// ConnectServer implements Handle.
func (h *LocalHandle) ConnectServer(server netip.AddrPort, cb func(error)) {
	h.hp.Client().Host().Post(func() {
		h.hp.ConnectServer(server)
		h.mgrHost.Post(func() { cb(nil) })
	})
}

// TakeRecords implements Handle.
func (h *LocalHandle) TakeRecords(cb func([]logging.Record, error)) {
	h.hp.Client().Host().Post(func() {
		recs := h.hp.TakeRecords()
		h.mgrHost.Post(func() { cb(recs, nil) })
	})
}

// Close implements Handle.
func (h *LocalHandle) Close() {
	h.hp.Client().Host().Post(func() { h.hp.Close() })
}

// Assignment is one honeypot's placement: which server it should join and
// which files it should claim.
type Assignment struct {
	Server netip.AddrPort
	Files  []client.SharedFile
}

// SameServer assigns every honeypot to one server — the strategy of the
// paper's distributed measurement ("all connected to the same large
// server").
func SameServer(server netip.AddrPort, files []client.SharedFile, n int) []Assignment {
	out := make([]Assignment, n)
	for i := range out {
		out[i] = Assignment{Server: server, Files: files}
	}
	return out
}

// SpreadServers assigns honeypots round-robin over several servers — the
// paper's "different server for each honeypot, for a more global view"
// strategy.
func SpreadServers(servers []netip.AddrPort, files []client.SharedFile, n int) []Assignment {
	out := make([]Assignment, n)
	for i := range out {
		out[i] = Assignment{Server: servers[i%len(servers)], Files: files}
	}
	return out
}

// Config tunes the manager.
type Config struct {
	// CollectEvery is the log-gathering period.
	CollectEvery time.Duration
	// HealthEvery is the status-poll period.
	HealthEvery time.Duration
	// NameThreshold is the filename anonymization threshold applied at
	// Finalize (words rarer than this are replaced); 0 disables.
	NameThreshold int
	// Metrics, when set, receives the manager's telemetry: collection
	// round/record counters and the finalize pipeline's per-stage record
	// counts and cumulative durations (finalize.<stage>.records /
	// finalize.<stage>.nanos, inclusive of upstream stages). Nil disables
	// instrumentation entirely — the pipeline is not even wrapped.
	Metrics *obs.Registry
	// CollectRetries is how many extra attempts a failed per-honeypot
	// collection gets within one round before the round gives up on that
	// honeypot (counting it in MissedRounds). 0 degrades immediately —
	// the pre-retry behavior.
	CollectRetries int
	// CollectRetryBackoff is the delay before the first collection
	// retry, doubling per attempt (capped at one minute) and jittered
	// into [d/2, d]. 0 means 2s. Jitter is drawn only when a retry
	// actually happens, so fault-free campaigns stay deterministic.
	CollectRetryBackoff time.Duration
}

// DefaultConfig returns the cadence used by the campaigns.
func DefaultConfig() Config {
	return Config{CollectEvery: time.Hour, HealthEvery: 10 * time.Minute, NameThreshold: 3}
}

// HoneypotState is the manager's view of one honeypot.
type HoneypotState struct {
	Handle     Handle
	Assignment Assignment
	LastStatus honeypot.Status
	Healthy    bool
	Relaunches int
	Collected  int // records gathered so far
	// Checkpoint is the incremental-collection ack: everything before it
	// has been gathered and must never be transferred again.
	Checkpoint logstore.Checkpoint
	// MissedRounds counts collection rounds this honeypot sat out after
	// its retry budget ran dry — the per-honeypot gap audit of a
	// degraded campaign. Records kept by a durable source are not lost,
	// only late: the next successful round picks up from Checkpoint.
	MissedRounds int

	// noIncremental is set when a take-records-since probe failed (the
	// honeypot has no record source); collection falls back to the drain
	// path. Reset on relaunch, since a replacement may gain a store.
	noIncremental bool
}

// Manager coordinates a fleet of honeypots.
type Manager struct {
	host transport.Host
	cfg  Config

	hps  []*HoneypotState
	byID map[string]*HoneypotState
	logs map[string][]logging.Record

	// store, when set, is the on-disk event store: collected records
	// spill into per-honeypot shards instead of the in-memory logs map,
	// and Finalize streams them back through a merged iterator. Honeypots
	// whose handle writes into this same store (StoreBackedHandle) are
	// not copied at all.
	store *logstore.Store

	// Relaunch, when set, is invoked for a honeypot whose control path
	// died; it must recreate the honeypot and return a fresh handle (the
	// simulation restarts the crashed host; cmd/hpmanager re-dials).
	Relaunch func(id string, done func(Handle, error))

	running      bool
	collectTimer transport.Timer
	healthTimer  transport.Timer

	met mgrMetrics
}

// mgrMetrics is the manager's pre-resolved metric set (zero = disabled).
type mgrMetrics struct {
	collectRounds   *obs.Counter   // manager.collect.rounds
	collectRecords  *obs.Counter   // manager.collect.records (transferred)
	collectRetries  *obs.Counter   // manager.collect.retries (re-attempts)
	collectTimeouts *obs.Counter   // manager.collect.timeouts (attempts lost to silence)
	collectDegraded *obs.Counter   // manager.collect.degraded (honeypot-rounds given up)
	finalizeDur     *obs.Histogram // manager.finalize.duration (pipeline build + pass 1)
}

func newMgrMetrics(r *obs.Registry) mgrMetrics {
	if r == nil {
		return mgrMetrics{}
	}
	return mgrMetrics{
		collectRounds:   r.Counter("manager.collect.rounds"),
		collectRecords:  r.Counter("manager.collect.records"),
		collectRetries:  r.Counter("manager.collect.retries"),
		collectTimeouts: r.Counter("manager.collect.timeouts"),
		collectDegraded: r.Counter("manager.collect.degraded"),
		finalizeDur:     r.Histogram("manager.finalize.duration", obs.DurationBuckets),
	}
}

// New creates a manager on host.
func New(host transport.Host, cfg Config) *Manager {
	if cfg.CollectEvery <= 0 {
		cfg.CollectEvery = time.Hour
	}
	if cfg.HealthEvery <= 0 {
		cfg.HealthEvery = 10 * time.Minute
	}
	return &Manager{
		host: host,
		cfg:  cfg,
		byID: make(map[string]*HoneypotState),
		logs: make(map[string][]logging.Record),
		met:  newMgrMetrics(cfg.Metrics),
	}
}

// Host returns the manager's transport host.
func (m *Manager) Host() transport.Host { return m.host }

// SetStore switches the manager to spill-to-disk collection: gathered
// records land in per-honeypot shards of store and Finalize streams them
// back instead of holding the campaign in memory. Set it before Add; the
// caller keeps ownership of the store (and closes it after Finalize).
func (m *Manager) SetStore(store *logstore.Store) { m.store = store }

// Store returns the spill store, if any.
func (m *Manager) Store() *logstore.Store { return m.store }

// Add registers a honeypot and pushes its assignment (server first, then
// the advertisement, mirroring the paper's setup order).
func (m *Manager) Add(h Handle, a Assignment) {
	st := &HoneypotState{Handle: h, Assignment: a, Healthy: true}
	m.hps = append(m.hps, st)
	m.byID[h.ID()] = st
	m.push(st)
}

func (m *Manager) push(st *HoneypotState) {
	st.Handle.ConnectServer(st.Assignment.Server, func(err error) {
		if err != nil {
			st.Healthy = false
			return
		}
		st.Handle.Advertise(st.Assignment.Files, func(err error) {
			if err != nil {
				st.Healthy = false
			}
		})
	})
}

// States returns the managed honeypots' states.
func (m *Manager) States() []*HoneypotState { return m.hps }

// Start begins periodic collection and health checking.
func (m *Manager) Start() {
	if m.running {
		return
	}
	m.running = true
	m.scheduleCollect()
	m.scheduleHealth()
}

// Stop halts the periodic work (already-issued requests finish).
func (m *Manager) Stop() {
	m.running = false
	if m.collectTimer != nil {
		m.collectTimer.Stop()
	}
	if m.healthTimer != nil {
		m.healthTimer.Stop()
	}
}

func (m *Manager) scheduleCollect() {
	m.collectTimer = m.host.After(m.cfg.CollectEvery, func() {
		if !m.running {
			return
		}
		m.CollectNow(nil)
		m.scheduleCollect()
	})
}

func (m *Manager) scheduleHealth() {
	m.healthTimer = m.host.After(m.cfg.HealthEvery, func() {
		if !m.running {
			return
		}
		m.HealthCheckNow(nil)
		m.scheduleHealth()
	})
}

// collectBatch bounds one incremental transfer; collection loops until a
// short batch, so one round still drains everything new while keeping
// individual control frames small.
const collectBatch = 2048

// CollectNow gathers pending records from every honeypot; done (optional)
// fires when all answered. Handles that serve checkpointed reads
// (IncrementalHandle) transfer only records the manager has not acked
// yet; handles writing straight into the manager's store transfer
// nothing.
func (m *Manager) CollectNow(done func()) {
	m.met.collectRounds.Inc()
	remaining := len(m.hps)
	if remaining == 0 {
		if done != nil {
			done()
		}
		return
	}
	finish := func() {
		remaining--
		if remaining == 0 && done != nil {
			done()
		}
	}
	for _, st := range m.hps {
		m.collectOne(st, finish)
	}
}

func (m *Manager) collectOne(st *HoneypotState, finish func()) {
	// In-process store-backed honeypots append into our own store: the
	// records are already durable and collected; refresh the counter.
	if m.store != nil {
		if sb, ok := st.Handle.(StoreBackedHandle); ok {
			if sh := sb.Shard(); sh != nil && sh.Store() == m.store {
				st.Collected = int(sh.Count())
				// The honeypot appends through the error-less Sink
				// interface; a sticky write error means records are being
				// dropped — surface it as ill health.
				if sh.Err() != nil {
					st.Healthy = false
				}
				finish()
				return
			}
		}
	}
	m.tryCollect(st, 0, finish)
}

// tryCollect runs one collection attempt for st and, on failure, either
// schedules a retry (within the config budget) or books the round as
// missed. A degraded round is audited, not fatal: a durable source
// re-serves everything after the checkpoint next round, so the gap is
// latency, not loss.
func (m *Manager) tryCollect(st *HoneypotState, attempt int, finish func()) {
	done := func(err error) {
		if err == nil {
			finish()
			return
		}
		st.Healthy = false
		if errors.Is(err, control.ErrTimeout) {
			m.met.collectTimeouts.Inc()
		}
		if attempt < m.cfg.CollectRetries {
			m.met.collectRetries.Inc()
			m.host.After(m.retryDelay(attempt), func() {
				m.tryCollect(st, attempt+1, finish)
			})
			return
		}
		st.MissedRounds++
		m.met.collectDegraded.Inc()
		finish()
	}
	if ih, ok := st.Handle.(IncrementalHandle); ok && !st.noIncremental {
		m.collectIncremental(st, ih, done)
		return
	}
	m.collectDrain(st, done)
}

// retryDelay doubles the configured backoff per attempt (capped at one
// minute) and jitters it into [d/2, d]. Only failing rounds draw from
// the host's random stream.
func (m *Manager) retryDelay(attempt int) time.Duration {
	base := m.cfg.CollectRetryBackoff
	if base <= 0 {
		base = 2 * time.Second
	}
	const max = time.Minute
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := int64(d) / 2
	return time.Duration(half + m.host.Rand().Int63n(half+1))
}

// collectDrain is the legacy path: drain the honeypot's whole buffer.
func (m *Manager) collectDrain(st *HoneypotState, done func(error)) {
	st.Handle.TakeRecords(func(recs []logging.Record, err error) {
		if err != nil {
			done(err)
			return
		}
		done(m.ingest(st, recs))
	})
}

// collectIncremental pulls batches after the acked checkpoint until a
// short batch signals the frontier.
func (m *Manager) collectIncremental(st *HoneypotState, ih IncrementalHandle, done func(error)) {
	ih.TakeRecordsSince(st.Checkpoint, collectBatch, func(recs []logging.Record, next logstore.Checkpoint, err error) {
		if control.IsNoSource(err) {
			// The honeypot has no durable record source: drain its memory
			// buffer instead, this round and onwards.
			st.noIncremental = true
			m.collectDrain(st, done)
			return
		}
		if err != nil {
			// Transient (dead link, I/O hiccup): report and retry
			// incrementally — falling back to the drain path would
			// silently stop collecting from a store-backed honeypot
			// forever, since its drain is always empty.
			done(err)
			return
		}
		if err := m.ingest(st, recs); err != nil {
			// The batch was not persisted: do NOT ack it. Advancing the
			// checkpoint here would drop it from the dataset forever,
			// since the honeypot never re-serves acked records.
			done(err)
			return
		}
		st.Checkpoint = next
		if len(recs) >= collectBatch {
			m.collectIncremental(st, ih, done)
			return
		}
		done(nil)
	})
}

// ingest files gathered records under the honeypot's ID — into the spill
// store when configured, in memory otherwise. On error nothing may be
// acked: the batch is possibly only partially stored.
func (m *Manager) ingest(st *HoneypotState, recs []logging.Record) error {
	if len(recs) == 0 {
		return nil
	}
	id := st.Handle.ID()
	if m.store != nil {
		sh, err := m.store.Shard(id)
		if err != nil {
			return err
		}
		for _, r := range recs {
			if err := sh.AppendRecord(r); err != nil {
				return err
			}
		}
	} else {
		m.logs[id] = append(m.logs[id], recs...)
	}
	m.met.collectRecords.Add(uint64(len(recs)))
	st.Collected += len(recs)
	return nil
}

// HealthCheckNow polls every honeypot's status; dead or disconnected ones
// are relaunched (via the Relaunch hook) or told to reconnect. done
// (optional) fires when all polls resolved.
func (m *Manager) HealthCheckNow(done func()) {
	remaining := len(m.hps)
	if remaining == 0 {
		if done != nil {
			done()
		}
		return
	}
	finish := func() {
		remaining--
		if remaining == 0 && done != nil {
			done()
		}
	}
	for _, st := range m.hps {
		st := st
		st.Handle.Status(func(s honeypot.Status, err error) {
			switch {
			case err != nil:
				st.Healthy = false
				m.relaunch(st, finish)
				return
			case !s.Connected:
				// Honeypot alive but off-server: re-push its assignment.
				st.LastStatus = s
				st.Healthy = true
				m.push(st)
			default:
				st.LastStatus = s
				st.Healthy = true
			}
			finish()
		})
	}
}

// ReplaceHandle installs a fresh handle for honeypot id — a relaunched
// process the caller rebuilt itself, e.g. the scenario engine's fault
// injector — bumps its relaunch counter and re-pushes the assignment.
// It reports whether the id was known.
func (m *Manager) ReplaceHandle(id string, h Handle) bool {
	st := m.byID[id]
	if st == nil {
		return false
	}
	st.Handle = h
	st.Relaunches++
	st.Healthy = true
	st.noIncremental = false // the replacement may serve checkpoints
	m.push(st)
	return true
}

func (m *Manager) relaunch(st *HoneypotState, finish func()) {
	if m.Relaunch == nil {
		finish()
		return
	}
	id := st.Handle.ID()
	m.Relaunch(id, func(h Handle, err error) {
		if err == nil && h != nil {
			m.ReplaceHandle(id, h)
		}
		finish()
	})
}

// Dataset is the merged, anonymized output of a campaign.
type Dataset struct {
	// Records is the unified log, ordered by timestamp, with step-2 peer
	// numbers and anonymized file names.
	Records []logging.Record
	// DistinctPeers is the number of distinct peers observed.
	DistinctPeers int
	// ReplacedWords counts filename words anonymized away.
	ReplacedWords int
	// PerHoneypot is the record count each honeypot contributed.
	PerHoneypot map[string]int
}

// DatasetStream is the streaming form of Dataset: the unified,
// anonymized, audited campaign log as an iterator. Records flow
// source → renumber → filename-anonymize → audit one at a time; peak
// pipeline memory is O(distinct peers + distinct filename words), never
// O(records). The stats accessors (DistinctPeers, ReplacedWords,
// PerHoneypot) are final only once Next has returned io.EOF. Close
// releases the underlying store cursor, if any; consume and close the
// stream before reusing or closing the manager's store.
type DatasetStream struct {
	it   logging.Iterator // full pipeline output
	base logging.Iterator // the source cursor, for Close
	ren  *anonymize.Renumberer
	na   *anonymize.NameAnonymizer // nil when name anonymization is off

	perHP   map[string]int
	countHP bool     // store mode: count honeypots while draining
	hps     []string // known honeypot IDs, zero-filled at EOF
}

// Next implements logging.Iterator: it returns the next anonymized
// record, an *anonymize.AuditError if a leak is detected, or io.EOF at
// the end of the campaign.
func (d *DatasetStream) Next() (logging.Record, error) {
	r, err := d.it.Next()
	if err != nil {
		if errors.Is(err, io.EOF) {
			for _, id := range d.hps {
				if _, ok := d.perHP[id]; !ok {
					d.perHP[id] = 0
				}
			}
		}
		return logging.Record{}, err
	}
	if d.countHP {
		d.perHP[r.Honeypot]++
	}
	return r, nil
}

// Close releases the stream's resources (the spill store's cursor, when
// reading from disk). The stream is unusable afterwards.
func (d *DatasetStream) Close() error { return logging.CloseIter(d.base) }

// DistinctPeers returns the number of distinct peers renumbered so far;
// final after io.EOF.
func (d *DatasetStream) DistinctPeers() int { return d.ren.Count() }

// ReplacedWords returns how many distinct filename words were anonymized
// away; final after io.EOF.
func (d *DatasetStream) ReplacedWords() int {
	if d.na == nil {
		return 0
	}
	return d.na.ReplacedWords()
}

// PerHoneypot returns the record count each honeypot contributed; final
// after io.EOF.
func (d *DatasetStream) PerHoneypot() map[string]int { return d.perHP }

// Finalize runs a last collection, then merges and unifies all logs:
// k-way timestamp merge, coherent renumbering of hashed peer addresses,
// filename anonymization, and the leak audit. The result is delivered to
// done on the manager's executor. It is the materialized form of
// FinalizeStream — the campaign must fit in memory.
func (m *Manager) Finalize(done func(*Dataset, error)) {
	m.FinalizeStream(func(ds *DatasetStream, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		defer ds.Close()
		var merged []logging.Record
		for {
			r, err := ds.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				done(nil, wrapFinalizeErr(err))
				return
			}
			merged = append(merged, r)
		}
		done(&Dataset{
			Records:       merged,
			DistinctPeers: ds.DistinctPeers(),
			ReplacedWords: ds.ReplacedWords(),
			PerHoneypot:   ds.PerHoneypot(),
		}, nil)
	})
}

// FinalizeStream runs a last collection, then hands done the campaign as
// a streaming record pipeline instead of a materialized dataset: the
// caller pulls anonymized, audited records one at a time (feeding them
// to analysis.BuildFrameIter, a JSONL export, or an on-disk store) and
// no []Record for the campaign is ever allocated. The filename pass
// observes word frequencies in a first scan of the source (the spill
// store is scanned twice; in-memory logs are re-merged), so the stream
// delivered to done is ready to yield final names immediately.
func (m *Manager) FinalizeStream(done func(*DatasetStream, error)) {
	m.Stop()
	m.CollectNow(func() {
		ds, err := m.newDatasetStream()
		if err != nil {
			done(nil, wrapFinalizeErr(err))
			return
		}
		done(ds, nil)
	})
}

// wrapFinalizeErr keeps Finalize's historical error surface: audit
// failures and pipeline/merge failures wrap differently so callers (and
// operators reading logs) can tell a privacy leak from an I/O problem.
func wrapFinalizeErr(err error) error {
	var ae *anonymize.AuditError
	if errors.As(err, &ae) {
		return fmt.Errorf("manager: anonymization audit failed: %w", err)
	}
	return fmt.Errorf("manager: merging collected logs: %w", err)
}

// stage wraps one finalize pipeline stage's output in a counting,
// timing iterator — only when telemetry is on, so a disabled registry
// leaves the pipeline exactly as it was. Durations are cumulative and
// inclusive of upstream stages (subtract the upstream stage's nanos for
// exclusive time).
func (m *Manager) stage(it logging.Iterator, name string) logging.Iterator {
	if m.cfg.Metrics == nil {
		return it
	}
	return &stageIter{
		up:      it,
		records: m.cfg.Metrics.Counter("finalize." + name + ".records"),
		nanos:   m.cfg.Metrics.Counter("finalize." + name + ".nanos"),
	}
}

// stageIter counts the records a stage yields and accumulates the wall
// time spent pulling them (inclusive of upstream).
type stageIter struct {
	up      logging.Iterator
	records *obs.Counter
	nanos   *obs.Counter
}

func (s *stageIter) Next() (logging.Record, error) {
	start := time.Now()
	r, err := s.up.Next()
	s.nanos.Add(uint64(time.Since(start)))
	if err == nil {
		s.records.Inc()
	}
	return r, err
}

// newDatasetStream assembles the finalize pipeline over the collected
// logs: re-iterable source → (pass 1: observe filename corpus) →
// renumber → anonymize names → audit.
func (m *Manager) newDatasetStream() (*DatasetStream, error) {
	span := obs.StartSpan(m.met.finalizeDur)
	src, perHP, err := m.datasetSource()
	if err != nil {
		return nil, err
	}

	var na *anonymize.NameAnonymizer
	if m.cfg.NameThreshold > 0 {
		na = anonymize.NewNameAnonymizer(m.cfg.NameThreshold)
		pass1, err := src.Iter()
		if err != nil {
			return nil, err
		}
		obsErr := na.ObserveIter(m.stage(pass1, "observe"))
		if cerr := logging.CloseIter(pass1); obsErr == nil {
			obsErr = cerr
		}
		if obsErr != nil {
			return nil, obsErr
		}
	}

	base, err := src.Iter()
	if err != nil {
		return nil, err
	}
	// The leak audit verifies the pipeline's *input*: every PeerIP must
	// already be a step-1 hash (or an earlier run's step-2 number) —
	// after renumbering the check would be vacuous, since the renumberer
	// normalizes even a raw address into an anonymous integer. A honeypot
	// that ever shipped a raw address fails the whole finalize here.
	ren := anonymize.NewRenumberer()
	out := ren.RenumberIter(m.stage(anonymize.AuditIter(m.stage(base, "scan")), "audit"))
	out = m.stage(out, "renumber")
	if na != nil {
		out = m.stage(na.AnonymizeIter(out), "anonymize")
	}

	ds := &DatasetStream{it: out, base: base, ren: ren, na: na, perHP: perHP}
	span.End()
	for _, st := range m.hps {
		ds.hps = append(ds.hps, st.Handle.ID())
	}
	if ds.perHP == nil { // store mode: counted while draining
		ds.perHP = make(map[string]int, len(m.hps))
		ds.countHP = true
	}
	return ds, nil
}

// datasetSource returns the re-iterable unified log: the spill store
// (each Iter is a fresh k-way segment scan) or a re-mergeable view of
// the in-memory per-honeypot logs. Memory-mode logs are ordered by
// honeypot ID — the spill store's shard-name tie-break — so the two
// modes produce identical streams no matter the order handles were
// added in. The memory-mode per-honeypot counts are returned eagerly;
// store mode returns nil and the counts are taken during the drain.
func (m *Manager) datasetSource() (logging.Source, map[string]int, error) {
	if m.store != nil {
		// A sticky append error means the store is missing records; a
		// silently truncated dataset is worse than a failed finalize.
		if err := m.store.Err(); err != nil {
			return nil, nil, err
		}
		return storeSource{m.store}, nil, nil
	}
	ids := make([]string, 0, len(m.hps))
	for _, st := range m.hps {
		ids = append(ids, st.Handle.ID())
	}
	sort.Strings(ids)
	perHP := make(map[string]int, len(ids))
	logs := make([][]logging.Record, 0, len(ids))
	for _, id := range ids {
		logs = append(logs, m.logs[id])
		perHP[id] = len(m.logs[id])
	}
	return logging.NewMergeSource(logs...), perHP, nil
}

// storeSource adapts the spill store to the pipeline's re-iterable
// source contract: every Iter is a fresh merged scan over all shards.
type storeSource struct{ s *logstore.Store }

// Iter implements logging.Source.
func (ss storeSource) Iter() (logging.Iterator, error) { return ss.s.Iterator() }
