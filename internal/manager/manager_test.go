package manager

import (
	"errors"
	"io"
	"net/netip"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/anonymize"
	"repro/internal/client"
	"repro/internal/control"
	"repro/internal/des"
	"repro/internal/ed2k"
	"repro/internal/honeypot"
	"repro/internal/logging"
	"repro/internal/logstore"
	"repro/internal/netsim"
	"repro/internal/server"
)

var t0 = time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)

var secret = []byte("campaign-secret")

type world struct {
	loop *des.Loop
	net  *netsim.Network
	srv  *server.Server
	mgr  *Manager
	hps  []*honeypot.Honeypot
}

func (w *world) settle() { w.loop.RunUntil(w.loop.Now().Add(time.Minute)) }

var baitFiles = []client.SharedFile{
	{Hash: ed2k.SyntheticHash("bait"), Name: "bait.movie.avi", Size: 700 << 20, Type: "Video"},
}

func newWorld(t *testing.T, nHoneypots int, cfg Config) *world {
	t.Helper()
	loop := des.NewLoop(t0, 51)
	nw := netsim.New(loop, netsim.DefaultConfig())
	srv := server.New(nw.NewHost("server"), server.DefaultConfig("big"))
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	w := &world{loop: loop, net: nw, srv: srv}
	w.mgr = New(nw.NewHost("manager"), cfg)

	assignments := SameServer(srv.Addr(), baitFiles, nHoneypots)
	for i := 0; i < nHoneypots; i++ {
		id := "hp-" + strconv.Itoa(i)
		hp := honeypot.New(nw.NewHost(id), honeypot.Config{
			ID: id, Strategy: honeypot.NoContent, Port: 4662, Secret: secret,
		})
		if err := hp.Client().Listen(); err != nil {
			t.Fatal(err)
		}
		w.hps = append(w.hps, hp)
		w.mgr.Add(NewLocalHandle(id, hp, w.mgr.Host()), assignments[i])
	}
	w.settle()
	return w
}

// newPeer creates a reusable peer client with its own host (one IP).
func (w *world) newPeer(t *testing.T, label string) *client.Client {
	t.Helper()
	peer := client.New(w.net.NewHost(label), client.Config{
		Label: label, UserHash: ed2k.NewUserHash(label), Port: 4663,
	})
	if err := peer.Listen(); err != nil {
		t.Fatal(err)
	}
	return peer
}

// contactFrom drives one contact (HELLO + START-UPLOAD) from peer to hp.
func (w *world) contactFrom(t *testing.T, peer *client.Client, hp *honeypot.Honeypot) {
	t.Helper()
	addr := netip.AddrPortFrom(hp.Client().Host().Addr(), 4662)
	peer.DialPeer(addr, func(ps *client.PeerSession, err error) {
		if err != nil {
			t.Errorf("dial hp: %v", err)
			return
		}
		ps.SendHello()
		ps.StartUpload(baitFiles[0].Hash)
	})
	w.settle()
}

// contact drives one peer contact from a fresh peer labeled label.
func (w *world) contact(t *testing.T, hp *honeypot.Honeypot, label string) {
	t.Helper()
	w.contactFrom(t, w.newPeer(t, label), hp)
}

func TestAddPushesAssignment(t *testing.T) {
	w := newWorld(t, 3, DefaultConfig())
	for i, hp := range w.hps {
		st := hp.Status()
		if !st.Connected {
			t.Errorf("hp %d not connected", i)
		}
		if st.Advertised != 1 {
			t.Errorf("hp %d advertises %d files", i, st.Advertised)
		}
	}
	if w.srv.Users() != 3 {
		t.Errorf("server sees %d users", w.srv.Users())
	}
}

func TestPeriodicCollection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CollectEvery = 30 * time.Minute
	w := newWorld(t, 2, cfg)
	w.mgr.Start()
	w.contact(t, w.hps[0], "peer-a")
	w.contact(t, w.hps[1], "peer-b")
	// Advance past one collection period.
	w.loop.RunUntil(w.loop.Now().Add(time.Hour))
	states := w.mgr.States()
	total := 0
	for _, st := range states {
		total += st.Collected
	}
	if total == 0 {
		t.Error("periodic collection gathered nothing")
	}
	// Honeypot buffers must be drained.
	for i, hp := range w.hps {
		if hp.Status().Records != 0 {
			t.Errorf("hp %d still buffers records", i)
		}
	}
}

func TestHealthCheckReconnectsDisconnected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HealthEvery = 10 * time.Minute
	w := newWorld(t, 1, cfg)
	w.mgr.Start()

	// Sever the server side and bring a fresh server up on the same host.
	srvHost, _ := w.net.HostAt(w.srv.Addr().Addr())
	srvHost.Crash()
	w.settle()
	if w.hps[0].Status().Connected {
		t.Fatal("honeypot should be disconnected")
	}
	srvHost.Restart()
	srv2 := server.New(srvHost, server.DefaultConfig("big"))
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}
	// Within a couple of health periods the manager must re-push the
	// assignment and the honeypot must be back.
	w.loop.RunUntil(w.loop.Now().Add(30 * time.Minute))
	if !w.hps[0].Status().Connected {
		t.Error("manager did not reconnect the honeypot")
	}
	if srv2.FilesIndexed() != 1 {
		t.Errorf("re-advertisement missing: %d files", srv2.FilesIndexed())
	}
}

func TestRelaunchHook(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HealthEvery = 10 * time.Minute
	w := newWorld(t, 1, cfg)

	// Replace the handle with a control link so the death of the honeypot
	// host is visible as a control failure.
	hpHost := w.hps[0].Client().Host().(*netsim.Host)
	if _, err := control.NewAgent(hpHost, w.hps[0], control.DefaultPort); err != nil {
		t.Fatal(err)
	}
	var link *control.Link
	control.Dial(w.mgr.Host(), "hp-0", netip.AddrPortFrom(hpHost.Addr(), control.DefaultPort), func(l *control.Link, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		link = l
	})
	w.settle()
	if link == nil {
		t.Fatal("no link")
	}
	w.mgr.States()[0].Handle = link

	relaunched := 0
	w.mgr.Relaunch = func(id string, done func(Handle, error)) {
		relaunched++
		// Bring the host back with a fresh honeypot and agent.
		hpHost.Restart()
		hp2 := honeypot.New(hpHost, honeypot.Config{
			ID: id, Strategy: honeypot.NoContent, Port: 4662, Secret: secret,
		})
		if err := hp2.Client().Listen(); err != nil {
			done(nil, err)
			return
		}
		w.hps[0] = hp2
		done(NewLocalHandle(id, hp2, w.mgr.Host()), nil)
	}
	w.mgr.Start()

	hpHost.Crash()
	w.loop.RunUntil(w.loop.Now().Add(45 * time.Minute))

	if relaunched == 0 {
		t.Fatal("relaunch hook never invoked")
	}
	if !w.hps[0].Status().Connected {
		t.Error("relaunched honeypot not connected")
	}
	if w.mgr.States()[0].Relaunches == 0 {
		t.Error("relaunch not recorded")
	}
}

// TestReplaceHandle covers the caller-driven relaunch path the scenario
// engine's fault injector uses: the caller rebuilds the honeypot itself
// and swaps the handle in, and the manager re-pushes the assignment.
func TestReplaceHandle(t *testing.T) {
	w := newWorld(t, 1, DefaultConfig())
	hpHost := w.hps[0].Client().Host().(*netsim.Host)

	hpHost.Crash()
	w.settle()
	hpHost.Restart()
	hp2 := honeypot.New(hpHost, honeypot.Config{
		ID: "hp-0", Strategy: honeypot.NoContent, Port: 4662, Secret: secret,
	})
	if err := hp2.Client().Listen(); err != nil {
		t.Fatal(err)
	}
	w.hps[0] = hp2

	if w.mgr.ReplaceHandle("hp-9", NewLocalHandle("hp-9", hp2, w.mgr.Host())) {
		t.Error("unknown id accepted")
	}
	if !w.mgr.ReplaceHandle("hp-0", NewLocalHandle("hp-0", hp2, w.mgr.Host())) {
		t.Fatal("known id rejected")
	}
	w.settle()

	st := w.mgr.States()[0]
	if st.Relaunches != 1 {
		t.Errorf("relaunches: %d", st.Relaunches)
	}
	if !hp2.Status().Connected {
		t.Error("replacement not reconnected")
	}
	if hp2.Status().Advertised == 0 {
		t.Error("assignment not re-pushed")
	}
}

func TestFinalizePipeline(t *testing.T) {
	w := newWorld(t, 2, DefaultConfig())
	shared := w.newPeer(t, "shared-peer")
	w.contactFrom(t, shared, w.hps[0])
	w.contactFrom(t, shared, w.hps[1]) // same peer (same IP) contacts both
	w.contact(t, w.hps[1], "other-peer")

	var ds *Dataset
	var dsErr error
	w.mgr.Finalize(func(d *Dataset, err error) { ds, dsErr = d, err })
	w.settle()
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	if ds == nil {
		t.Fatal("no dataset")
	}
	// Two distinct peers despite three contacts.
	if ds.DistinctPeers != 2 {
		t.Errorf("distinct peers = %d, want 2", ds.DistinctPeers)
	}
	// Same peer must carry the same number across honeypot logs.
	seen := map[string]map[string]bool{} // peerNum -> set of honeypots
	for _, r := range ds.Records {
		if seen[r.PeerIP] == nil {
			seen[r.PeerIP] = map[string]bool{}
		}
		seen[r.PeerIP][r.Honeypot] = true
	}
	foundCrossHP := false
	for _, hps := range seen {
		if len(hps) == 2 {
			foundCrossHP = true
		}
	}
	if !foundCrossHP {
		t.Error("no peer number spans both honeypots; step-2 coherence broken")
	}
	// Ordered by time.
	for i := 1; i < len(ds.Records); i++ {
		if ds.Records[i].Time.Before(ds.Records[i-1].Time) {
			t.Fatal("records out of order")
		}
	}
	if len(ds.PerHoneypot) != 2 {
		t.Errorf("per-honeypot map: %v", ds.PerHoneypot)
	}
}

func TestFinalizeAuditsRecords(t *testing.T) {
	w := newWorld(t, 1, DefaultConfig())
	w.contact(t, w.hps[0], "p")
	var ds *Dataset
	w.mgr.Finalize(func(d *Dataset, err error) {
		if err != nil {
			t.Errorf("finalize: %v", err)
			return
		}
		ds = d
	})
	w.settle()
	if ds == nil {
		t.Fatal("no dataset")
	}
	for _, r := range ds.Records {
		if _, err := strconv.Atoi(r.PeerIP); err != nil {
			t.Fatalf("record PeerIP %q is not a step-2 number", r.PeerIP)
		}
	}
}

func TestAssignmentStrategies(t *testing.T) {
	s1 := netip.MustParseAddrPort("10.0.0.1:4661")
	s2 := netip.MustParseAddrPort("10.0.0.2:4661")
	same := SameServer(s1, baitFiles, 3)
	if len(same) != 3 {
		t.Fatal("SameServer length")
	}
	for _, a := range same {
		if a.Server != s1 {
			t.Error("SameServer mixed servers")
		}
	}
	spread := SpreadServers([]netip.AddrPort{s1, s2}, baitFiles, 4)
	if spread[0].Server != s1 || spread[1].Server != s2 || spread[2].Server != s1 || spread[3].Server != s2 {
		t.Error("SpreadServers not round-robin")
	}
}

func TestCollectNowEmptyManager(t *testing.T) {
	loop := des.NewLoop(t0, 1)
	nw := netsim.New(loop, netsim.DefaultConfig())
	m := New(nw.NewHost("m"), DefaultConfig())
	called := false
	m.CollectNow(func() { called = true })
	m.HealthCheckNow(nil)
	loop.RunUntil(t0.Add(time.Minute))
	if !called {
		t.Error("CollectNow callback with zero honeypots")
	}
	var ds *Dataset
	m.Finalize(func(d *Dataset, err error) { ds = d })
	loop.RunUntil(t0.Add(2 * time.Minute))
	if ds == nil || len(ds.Records) != 0 {
		t.Error("empty finalize")
	}
}

func TestStopHaltsTimers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CollectEvery = 10 * time.Minute
	cfg.HealthEvery = 10 * time.Minute
	w := newWorld(t, 1, cfg)
	w.mgr.Start()
	w.mgr.Stop()
	before := w.loop.Executed()
	w.loop.RunUntil(w.loop.Now().Add(3 * time.Hour))
	// Only the server reaper and honeypot keep-alive may run; the manager
	// must not generate collection traffic.
	if w.mgr.States()[0].Collected != 0 {
		t.Error("collection ran after Stop")
	}
	_ = before
}

// newStoreWorld builds a world whose honeypots write through logstore
// shards (each its own store, as real honeypotd machines would) and are
// managed over real control links with take-records-since sources.
func newStoreWorld(t *testing.T, nHoneypots int, cfg Config) (*world, []*logstore.Store) {
	t.Helper()
	loop := des.NewLoop(t0, 52)
	nw := netsim.New(loop, netsim.DefaultConfig())
	srv := server.New(nw.NewHost("server"), server.DefaultConfig("big"))
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	w := &world{loop: loop, net: nw, srv: srv}
	w.mgr = New(nw.NewHost("manager"), cfg)

	base := t.TempDir()
	var stores []*logstore.Store
	assignments := SameServer(srv.Addr(), baitFiles, nHoneypots)
	for i := 0; i < nHoneypots; i++ {
		id := "hp-" + strconv.Itoa(i)
		store, err := logstore.Open(filepath.Join(base, id), logstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		stores = append(stores, store)
		shard, err := store.Shard(id)
		if err != nil {
			t.Fatal(err)
		}
		hpHost := nw.NewHost(id)
		hp := honeypot.New(hpHost, honeypot.Config{
			ID: id, Strategy: honeypot.NoContent, Port: 4662, Secret: secret,
			Sink: shard,
		})
		if err := hp.Client().Listen(); err != nil {
			t.Fatal(err)
		}
		agent, err := control.NewAgent(hpHost, hp, control.DefaultPort)
		if err != nil {
			t.Fatal(err)
		}
		agent.SetSource(shard)
		w.hps = append(w.hps, hp)

		var link *control.Link
		control.Dial(w.mgr.Host(), id, netip.AddrPortFrom(hpHost.Addr(), control.DefaultPort), func(l *control.Link, err error) {
			if err != nil {
				t.Errorf("dial %s: %v", id, err)
				return
			}
			link = l
		})
		w.settle()
		if link == nil {
			t.Fatalf("no control link for %s", id)
		}
		w.mgr.Add(link, assignments[i])
	}
	w.settle()
	return w, stores
}

// TestIncrementalCollectionTransfersEachRecordOnce is the acceptance
// check for the cursor/ack protocol: across two CollectNow rounds with
// traffic in between, every record crosses the control plane exactly
// once — the second round moves only the delta.
func TestIncrementalCollectionTransfersEachRecordOnce(t *testing.T) {
	w, stores := newStoreWorld(t, 2, DefaultConfig())

	w.contact(t, w.hps[0], "peer-a")
	w.contact(t, w.hps[1], "peer-b")

	collected := func() int {
		total := 0
		for _, st := range w.mgr.States() {
			total += st.Collected
		}
		return total
	}
	transferred := func() int {
		total := 0
		for _, recs := range w.mgr.logs {
			total += len(recs)
		}
		return total
	}
	storeCount := func() int {
		total := 0
		for _, s := range stores {
			total += int(s.TotalRecords())
		}
		return total
	}

	w.mgr.CollectNow(nil)
	w.settle()
	round1 := transferred()
	if round1 == 0 {
		t.Fatal("first round transferred nothing")
	}
	if round1 != storeCount() {
		t.Fatalf("round 1 transferred %d, honeypots logged %d", round1, storeCount())
	}

	// Nothing new: a second collection must move zero records.
	w.mgr.CollectNow(nil)
	w.settle()
	if got := transferred(); got != round1 {
		t.Fatalf("idle round re-transferred %d records", got-round1)
	}

	// New traffic: only the delta crosses the control plane.
	w.contact(t, w.hps[0], "peer-c")
	w.mgr.CollectNow(nil)
	w.settle()
	total := transferred()
	if total != storeCount() {
		t.Fatalf("after round 2: transferred %d, honeypots logged %d (duplicates or loss)", total, storeCount())
	}
	if total <= round1 {
		t.Fatal("second round transferred no new records")
	}
	if collected() != total {
		t.Errorf("Collected counters %d != transferred %d", collected(), total)
	}

	// No record appears twice in the manager's logs.
	seen := map[string]bool{}
	for id, recs := range w.mgr.logs {
		for _, r := range recs {
			key := id + "|" + r.Time.String() + "|" + r.PeerIP + "|" + r.Kind.String()
			if seen[key] {
				t.Fatalf("duplicate record in manager logs: %s", key)
			}
			seen[key] = true
		}
	}

	// Finalize still produces a clean, audited dataset via the same path.
	var ds *Dataset
	var dsErr error
	w.mgr.Finalize(func(d *Dataset, err error) { ds, dsErr = d, err })
	w.settle()
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	if len(ds.Records) != total {
		t.Errorf("dataset has %d records, transferred %d", len(ds.Records), total)
	}
}

// TestIncrementalCollectionSurvivesRestart replays the paper's crash
// scenario: the honeypot dies after a collection, comes back with its
// on-disk log intact, and the manager's checkpoint prevents any resend.
func TestIncrementalCollectionSurvivesRestart(t *testing.T) {
	w, stores := newStoreWorld(t, 1, DefaultConfig())
	hpHost := w.hps[0].Client().Host().(*netsim.Host)

	w.contact(t, w.hps[0], "peer-a")
	w.mgr.CollectNow(nil)
	w.settle()
	before := len(w.mgr.logs["hp-0"])
	if before == 0 {
		t.Fatal("nothing collected before restart")
	}
	cpBefore := w.mgr.States()[0].Checkpoint

	// Crash and restart the honeypot host; reopen the same store dir (the
	// disk survived) and rebuild honeypot + agent + link.
	hpHost.Crash()
	w.settle()
	hpHost.Restart()
	dir := stores[0].Dir()
	stores[0].Close()
	store, err := logstore.Open(dir, logstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	shard, err := store.Shard("hp-0")
	if err != nil {
		t.Fatal(err)
	}
	hp2 := honeypot.New(hpHost, honeypot.Config{
		ID: "hp-0", Strategy: honeypot.NoContent, Port: 4662, Secret: secret,
		Sink: shard,
	})
	if err := hp2.Client().Listen(); err != nil {
		t.Fatal(err)
	}
	agent, err := control.NewAgent(hpHost, hp2, control.DefaultPort)
	if err != nil {
		t.Fatal(err)
	}
	agent.SetSource(shard)
	w.hps[0] = hp2
	var link *control.Link
	control.Dial(w.mgr.Host(), "hp-0", netip.AddrPortFrom(hpHost.Addr(), control.DefaultPort), func(l *control.Link, err error) {
		if err != nil {
			t.Errorf("re-dial: %v", err)
			return
		}
		link = l
	})
	w.settle()
	if link == nil {
		t.Fatal("no link after restart")
	}
	st := w.mgr.States()[0]
	st.Handle = link
	st.Healthy = true
	w.mgr.push(st)
	w.settle()

	// Collection resumes from the surviving checkpoint: no resend.
	w.mgr.CollectNow(nil)
	w.settle()
	if got := len(w.mgr.logs["hp-0"]); got != before {
		t.Fatalf("restart caused resend: %d -> %d records", before, got)
	}
	if st.Checkpoint != cpBefore {
		t.Fatalf("checkpoint moved without new records: %+v -> %+v", cpBefore, st.Checkpoint)
	}

	// New traffic after the restart still flows.
	w.contact(t, hp2, "peer-b")
	w.mgr.CollectNow(nil)
	w.settle()
	if got := len(w.mgr.logs["hp-0"]); got <= before {
		t.Fatal("no records collected after restart")
	}
}

// TestSpillStoreFinalize checks the manager's spill-to-disk mode:
// collected records land in store shards, and Finalize streams them back
// into the same dataset the in-memory path would produce.
func TestSpillStoreFinalize(t *testing.T) {
	// Reference run: plain in-memory collection.
	ref := newWorld(t, 2, DefaultConfig())
	shared := ref.newPeer(t, "shared-peer")
	ref.contactFrom(t, shared, ref.hps[0])
	ref.contactFrom(t, shared, ref.hps[1])
	ref.contact(t, ref.hps[1], "other-peer")
	var want *Dataset
	ref.mgr.Finalize(func(d *Dataset, err error) {
		if err != nil {
			t.Fatalf("ref finalize: %v", err)
		}
		want = d
	})
	ref.settle()
	if want == nil {
		t.Fatal("no reference dataset")
	}

	// Same world, same seed, spill store attached.
	store, err := logstore.Open(t.TempDir(), logstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	w := newWorldWithStore(t, 2, DefaultConfig(), store)
	shared2 := w.newPeer(t, "shared-peer")
	w.contactFrom(t, shared2, w.hps[0])
	w.contactFrom(t, shared2, w.hps[1])
	w.contact(t, w.hps[1], "other-peer")
	var got *Dataset
	w.mgr.Finalize(func(d *Dataset, err error) {
		if err != nil {
			t.Fatalf("spill finalize: %v", err)
		}
		got = d
	})
	w.settle()
	if got == nil {
		t.Fatal("no spill dataset")
	}

	if len(got.Records) != len(want.Records) {
		t.Fatalf("spill dataset has %d records, in-memory %d", len(got.Records), len(want.Records))
	}
	for i := range got.Records {
		g, r := got.Records[i], want.Records[i]
		if !g.Time.Equal(r.Time) || g.PeerIP != r.PeerIP || g.Kind != r.Kind || g.Honeypot != r.Honeypot {
			t.Fatalf("record %d differs: %+v vs %+v", i, g, r)
		}
	}
	if got.DistinctPeers != want.DistinctPeers {
		t.Errorf("distinct peers: %d vs %d", got.DistinctPeers, want.DistinctPeers)
	}
	if store.TotalRecords() != uint64(len(got.Records)) {
		t.Errorf("store persisted %d records, dataset has %d", store.TotalRecords(), len(got.Records))
	}
}

// newWorldWithStore is newWorld with a spill store attached before Add.
func newWorldWithStore(t *testing.T, nHoneypots int, cfg Config, store *logstore.Store) *world {
	t.Helper()
	loop := des.NewLoop(t0, 51)
	nw := netsim.New(loop, netsim.DefaultConfig())
	srv := server.New(nw.NewHost("server"), server.DefaultConfig("big"))
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	w := &world{loop: loop, net: nw, srv: srv}
	w.mgr = New(nw.NewHost("manager"), cfg)
	w.mgr.SetStore(store)

	assignments := SameServer(srv.Addr(), baitFiles, nHoneypots)
	for i := 0; i < nHoneypots; i++ {
		id := "hp-" + strconv.Itoa(i)
		hp := honeypot.New(nw.NewHost(id), honeypot.Config{
			ID: id, Strategy: honeypot.NoContent, Port: 4662, Secret: secret,
		})
		if err := hp.Client().Listen(); err != nil {
			t.Fatal(err)
		}
		w.hps = append(w.hps, hp)
		w.mgr.Add(NewLocalHandle(id, hp, w.mgr.Host()), assignments[i])
	}
	w.settle()
	return w
}

// TestSharedStoreLocalHandles: honeypots write straight into the
// manager's store; collection copies nothing, Finalize streams the lot.
func TestSharedStoreLocalHandles(t *testing.T) {
	store, err := logstore.Open(t.TempDir(), logstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	loop := des.NewLoop(t0, 51)
	nw := netsim.New(loop, netsim.DefaultConfig())
	srv := server.New(nw.NewHost("server"), server.DefaultConfig("big"))
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	w := &world{loop: loop, net: nw, srv: srv}
	w.mgr = New(nw.NewHost("manager"), DefaultConfig())
	w.mgr.SetStore(store)

	assignments := SameServer(srv.Addr(), baitFiles, 2)
	for i := 0; i < 2; i++ {
		id := "hp-" + strconv.Itoa(i)
		shard, err := store.Shard(id)
		if err != nil {
			t.Fatal(err)
		}
		hp := honeypot.New(nw.NewHost(id), honeypot.Config{
			ID: id, Strategy: honeypot.NoContent, Port: 4662, Secret: secret,
			Sink: shard,
		})
		if err := hp.Client().Listen(); err != nil {
			t.Fatal(err)
		}
		w.hps = append(w.hps, hp)
		w.mgr.Add(NewLocalHandleWithStore(id, hp, shard, w.mgr.Host()), assignments[i])
	}
	w.settle()

	w.contact(t, w.hps[0], "peer-a")
	w.contact(t, w.hps[1], "peer-b")
	w.mgr.CollectNow(nil)
	w.settle()

	if len(w.mgr.logs) != 0 {
		t.Error("shared-store collection copied records into memory")
	}
	total := 0
	for _, st := range w.mgr.States() {
		total += st.Collected
	}
	if total != int(store.TotalRecords()) {
		t.Errorf("Collected %d, store holds %d", total, store.TotalRecords())
	}

	var ds *Dataset
	w.mgr.Finalize(func(d *Dataset, err error) {
		if err != nil {
			t.Fatalf("finalize: %v", err)
		}
		ds = d
	})
	w.settle()
	if ds == nil {
		t.Fatal("no dataset")
	}
	if len(ds.Records) != int(store.TotalRecords()) {
		t.Errorf("dataset %d records, store %d", len(ds.Records), store.TotalRecords())
	}
	for i := 1; i < len(ds.Records); i++ {
		if ds.Records[i].Time.Before(ds.Records[i-1].Time) {
			t.Fatal("dataset out of order")
		}
	}
	if len(ds.PerHoneypot) != 2 {
		t.Errorf("per-honeypot: %v", ds.PerHoneypot)
	}
}

// fakeIncHandle scripts an IncrementalHandle with synchronous callbacks.
type fakeIncHandle struct {
	id        string
	sinceErr  error
	recs      []logging.Record
	takeCalls int
}

func (f *fakeIncHandle) ID() string                                      { return f.id }
func (f *fakeIncHandle) Status(cb func(honeypot.Status, error))          { cb(honeypot.Status{}, nil) }
func (f *fakeIncHandle) Advertise(_ []client.SharedFile, cb func(error)) { cb(nil) }
func (f *fakeIncHandle) ConnectServer(_ netip.AddrPort, cb func(error))  { cb(nil) }
func (f *fakeIncHandle) Close()                                          {}
func (f *fakeIncHandle) TakeRecords(cb func([]logging.Record, error)) {
	f.takeCalls++
	cb(nil, nil)
}
func (f *fakeIncHandle) TakeRecordsSince(cp logstore.Checkpoint, _ int, cb func([]logging.Record, logstore.Checkpoint, error)) {
	if f.sinceErr != nil {
		cb(nil, cp, f.sinceErr)
		return
	}
	recs := f.recs
	f.recs = nil
	cb(recs, logstore.Checkpoint{Seg: cp.Seg + 1}, nil)
}

// TestIncrementalFallbackOnlyOnNoSource: only the no-record-source
// condition demotes a honeypot to the drain path; transient errors keep
// the incremental channel so a store-backed honeypot is never silently
// abandoned.
func TestIncrementalFallbackOnlyOnNoSource(t *testing.T) {
	loop := des.NewLoop(t0, 1)
	nw := netsim.New(loop, netsim.DefaultConfig())

	// No source: falls back to drain, once and onwards.
	m := New(nw.NewHost("m1"), DefaultConfig())
	noSrc := &fakeIncHandle{id: "hp-a", sinceErr: errors.New("control: honeypot has no record source")}
	m.Add(noSrc, Assignment{})
	m.CollectNow(nil)
	st := m.States()[0]
	if !st.noIncremental || noSrc.takeCalls != 1 {
		t.Fatalf("no-source: noIncremental=%v drains=%d, want true/1", st.noIncremental, noSrc.takeCalls)
	}

	// Transient error: no drain fallback, unhealthy, retried next round.
	m2 := New(nw.NewHost("m2"), DefaultConfig())
	flaky := &fakeIncHandle{id: "hp-b", sinceErr: errors.New("control: link reset")}
	m2.Add(flaky, Assignment{})
	m2.CollectNow(nil)
	st2 := m2.States()[0]
	if st2.noIncremental {
		t.Fatal("transient error demoted handle to drain path")
	}
	if flaky.takeCalls != 0 {
		t.Fatalf("transient error drained the (empty) buffer %d times", flaky.takeCalls)
	}
	if st2.Healthy {
		t.Fatal("transient error not reflected in health")
	}
	// Recovery: the next round collects incrementally again.
	flaky.sinceErr = nil
	flaky.recs = []logging.Record{{Time: t0, Honeypot: "hp-b", PeerIP: "x"}}
	m2.CollectNow(nil)
	if st2.Collected != 1 {
		t.Fatalf("recovered round collected %d records, want 1", st2.Collected)
	}
}

var _ logging.Record // keep import if helpers change

// ---------------------------------------------------------------------------
// Streaming finalize.

// fakeHandle is a minimal Handle whose callbacks run inline; TakeRecords
// serves a scripted log once.
type fakeHandle struct {
	id   string
	recs []logging.Record
}

func (f *fakeHandle) ID() string                                      { return f.id }
func (f *fakeHandle) Status(cb func(honeypot.Status, error))          { cb(honeypot.Status{}, nil) }
func (f *fakeHandle) Advertise(_ []client.SharedFile, cb func(error)) { cb(nil) }
func (f *fakeHandle) ConnectServer(_ netip.AddrPort, cb func(error))  { cb(nil) }
func (f *fakeHandle) Close()                                          {}
func (f *fakeHandle) TakeRecords(cb func([]logging.Record, error)) {
	recs := f.recs
	f.recs = nil
	cb(recs, nil)
}

// fakeStoreHandle is a store-backed handle over a shard of the
// manager's own store: collection transfers nothing.
type fakeStoreHandle struct {
	fakeHandle
	shard *logstore.Shard
}

func (f *fakeStoreHandle) Shard() *logstore.Shard { return f.shard }

// tieLogs fabricates per-honeypot logs whose timestamps collide across
// honeypots, so finalize's merge tie-breaking is what decides the
// dataset order.
func tieLogs(ids []string) map[string][]logging.Record {
	h := anonymize.NewIPHasher(secret)
	logs := make(map[string][]logging.Record, len(ids))
	for hi, id := range ids {
		for j := 0; j < 6; j++ {
			ip, _ := netip.AddrFromSlice([]byte{10, 0, byte(hi), byte(j % 3)})
			logs[id] = append(logs[id], logging.Record{
				Time:     t0.Add(time.Duration(j) * time.Minute), // same instants everywhere
				Honeypot: id,
				Kind:     logging.KindHello,
				PeerIP:   h.HashIP(ip),
				FileName: "bait.movie.avi",
			})
		}
	}
	return logs
}

func finalizeNow(t *testing.T, m *Manager) *Dataset {
	t.Helper()
	var ds *Dataset
	var dsErr error
	m.Finalize(func(d *Dataset, err error) { ds, dsErr = d, err })
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	if ds == nil {
		t.Fatal("finalize did not complete (fake handles are synchronous)")
	}
	return ds
}

// TestFinalizeHandleOrderIrrelevant is the regression test for the
// memory/store merge-equivalence guarantee: honeypot states are sorted
// by ID at finalize, so adding handles out of shard-name order changes
// nothing, and the in-memory dataset matches the spill store's
// shard-name tie-break exactly.
func TestFinalizeHandleOrderIrrelevant(t *testing.T) {
	ids := []string{"hp-a", "hp-b", "hp-c"}
	logs := tieLogs(ids)
	loop := des.NewLoop(t0, 1)
	nw := netsim.New(loop, netsim.DefaultConfig())

	run := func(hostName string, order []string) *Dataset {
		m := New(nw.NewHost(hostName), DefaultConfig())
		for _, id := range order {
			recs := make([]logging.Record, len(logs[id]))
			copy(recs, logs[id])
			m.Add(&fakeHandle{id: id, recs: recs}, Assignment{})
		}
		m.CollectNow(nil)
		return finalizeNow(t, m)
	}

	sorted := run("m-sorted", []string{"hp-a", "hp-b", "hp-c"})
	shuffled := run("m-shuffled", []string{"hp-c", "hp-a", "hp-b"})
	if len(sorted.Records) == 0 {
		t.Fatal("no records")
	}
	for i := range sorted.Records {
		g, w := shuffled.Records[i], sorted.Records[i]
		if !g.Time.Equal(w.Time) || g.Honeypot != w.Honeypot || g.PeerIP != w.PeerIP {
			t.Fatalf("record %d: add order changed the dataset: %+v vs %+v", i, g, w)
		}
	}

	// Equal timestamps must resolve by honeypot ID, not add order.
	for i := 1; i < len(sorted.Records); i++ {
		a, b := sorted.Records[i-1], sorted.Records[i]
		if a.Time.Equal(b.Time) && a.Honeypot > b.Honeypot {
			t.Fatalf("tie at %v ordered %s before %s", a.Time, a.Honeypot, b.Honeypot)
		}
	}

	// Store mode (shard-name tie-break) produces the identical stream.
	store, err := logstore.Open(t.TempDir(), logstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ms := New(nw.NewHost("m-store"), DefaultConfig())
	ms.SetStore(store)
	for _, id := range []string{"hp-c", "hp-a", "hp-b"} { // out of order here too
		sh, err := store.Shard(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range logs[id] {
			if err := sh.AppendRecord(r); err != nil {
				t.Fatal(err)
			}
		}
		ms.Add(&fakeStoreHandle{fakeHandle: fakeHandle{id: id}, shard: sh}, Assignment{})
	}
	ms.CollectNow(nil)
	spilled := finalizeNow(t, ms)
	if len(spilled.Records) != len(sorted.Records) {
		t.Fatalf("store mode: %d records, memory mode %d", len(spilled.Records), len(sorted.Records))
	}
	for i := range sorted.Records {
		g, w := spilled.Records[i], sorted.Records[i]
		if !g.Time.Equal(w.Time) || g.Honeypot != w.Honeypot || g.PeerIP != w.PeerIP {
			t.Fatalf("record %d: store and memory modes diverge: %+v vs %+v", i, g, w)
		}
	}
}

// TestFinalizeStreamMatchesFinalize drains the streaming pipeline by
// hand and pins it to the materialized dataset: records, stats, and the
// after-EOF contract of the stats accessors.
func TestFinalizeStreamMatchesFinalize(t *testing.T) {
	ids := []string{"hp-a", "hp-b"}
	logs := tieLogs(ids)
	loop := des.NewLoop(t0, 1)
	nw := netsim.New(loop, netsim.DefaultConfig())

	build := func(hostName string) *Manager {
		m := New(nw.NewHost(hostName), DefaultConfig())
		for _, id := range ids {
			recs := make([]logging.Record, len(logs[id]))
			copy(recs, logs[id])
			m.Add(&fakeHandle{id: id, recs: recs}, Assignment{})
		}
		m.CollectNow(nil)
		return m
	}

	want := finalizeNow(t, build("m-mat"))

	var stream *DatasetStream
	build("m-stream").FinalizeStream(func(s *DatasetStream, err error) {
		if err != nil {
			t.Fatalf("FinalizeStream: %v", err)
		}
		stream = s
	})
	if stream == nil {
		t.Fatal("no stream")
	}
	defer stream.Close()
	var got []logging.Record
	for {
		r, err := stream.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	if len(got) != len(want.Records) {
		t.Fatalf("streamed %d records, materialized %d", len(got), len(want.Records))
	}
	for i := range got {
		g, w := got[i], want.Records[i]
		if !g.Time.Equal(w.Time) || g.Honeypot != w.Honeypot || g.PeerIP != w.PeerIP || g.FileName != w.FileName {
			t.Fatalf("record %d differs: %+v vs %+v", i, g, w)
		}
	}
	if stream.DistinctPeers() != want.DistinctPeers {
		t.Errorf("distinct peers: %d vs %d", stream.DistinctPeers(), want.DistinctPeers)
	}
	if stream.ReplacedWords() != want.ReplacedWords {
		t.Errorf("replaced words: %d vs %d", stream.ReplacedWords(), want.ReplacedWords)
	}
	if len(stream.PerHoneypot()) != len(want.PerHoneypot) {
		t.Errorf("per-honeypot: %v vs %v", stream.PerHoneypot(), want.PerHoneypot)
	}
	for id, n := range want.PerHoneypot {
		if stream.PerHoneypot()[id] != n {
			t.Errorf("per-honeypot[%s]: %d vs %d", id, stream.PerHoneypot()[id], n)
		}
	}
}

// TestFinalizeAuditFailureNamesRecord: a leaked raw address aborts
// finalize with an error identifying the offending record.
func TestFinalizeAuditFailureNamesRecord(t *testing.T) {
	loop := des.NewLoop(t0, 1)
	nw := netsim.New(loop, netsim.DefaultConfig())
	m := New(nw.NewHost("m-audit"), DefaultConfig())
	m.Add(&fakeHandle{id: "hp-leak", recs: []logging.Record{
		{Time: t0, Honeypot: "hp-leak", PeerIP: "192.0.2.55"},
	}}, Assignment{})
	m.CollectNow(nil)
	var gotErr error
	m.Finalize(func(d *Dataset, err error) { gotErr = err })
	if gotErr == nil {
		t.Fatal("leaked address survived finalize")
	}
	var ae *anonymize.AuditError
	if !errors.As(gotErr, &ae) {
		t.Fatalf("finalize error %v does not wrap *anonymize.AuditError", gotErr)
	}
	if ae.Honeypot != "hp-leak" || ae.Index != 0 || ae.Value != "192.0.2.55" {
		t.Fatalf("AuditError = %+v", ae)
	}
	if !strings.Contains(gotErr.Error(), "audit failed") {
		t.Fatalf("error %q lost the audit-failed wrapping", gotErr)
	}
}
