package manager

import (
	"net/netip"
	"strconv"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/control"
	"repro/internal/des"
	"repro/internal/ed2k"
	"repro/internal/honeypot"
	"repro/internal/logging"
	"repro/internal/netsim"
	"repro/internal/server"
)

var t0 = time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)

var secret = []byte("campaign-secret")

type world struct {
	loop *des.Loop
	net  *netsim.Network
	srv  *server.Server
	mgr  *Manager
	hps  []*honeypot.Honeypot
}

func (w *world) settle() { w.loop.RunUntil(w.loop.Now().Add(time.Minute)) }

var baitFiles = []client.SharedFile{
	{Hash: ed2k.SyntheticHash("bait"), Name: "bait.movie.avi", Size: 700 << 20, Type: "Video"},
}

func newWorld(t *testing.T, nHoneypots int, cfg Config) *world {
	t.Helper()
	loop := des.NewLoop(t0, 51)
	nw := netsim.New(loop, netsim.DefaultConfig())
	srv := server.New(nw.NewHost("server"), server.DefaultConfig("big"))
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	w := &world{loop: loop, net: nw, srv: srv}
	w.mgr = New(nw.NewHost("manager"), cfg)

	assignments := SameServer(srv.Addr(), baitFiles, nHoneypots)
	for i := 0; i < nHoneypots; i++ {
		id := "hp-" + strconv.Itoa(i)
		hp := honeypot.New(nw.NewHost(id), honeypot.Config{
			ID: id, Strategy: honeypot.NoContent, Port: 4662, Secret: secret,
		})
		if err := hp.Client().Listen(); err != nil {
			t.Fatal(err)
		}
		w.hps = append(w.hps, hp)
		w.mgr.Add(NewLocalHandle(id, hp, w.mgr.Host()), assignments[i])
	}
	w.settle()
	return w
}

// newPeer creates a reusable peer client with its own host (one IP).
func (w *world) newPeer(t *testing.T, label string) *client.Client {
	t.Helper()
	peer := client.New(w.net.NewHost(label), client.Config{
		Label: label, UserHash: ed2k.NewUserHash(label), Port: 4663,
	})
	if err := peer.Listen(); err != nil {
		t.Fatal(err)
	}
	return peer
}

// contactFrom drives one contact (HELLO + START-UPLOAD) from peer to hp.
func (w *world) contactFrom(t *testing.T, peer *client.Client, hp *honeypot.Honeypot) {
	t.Helper()
	addr := netip.AddrPortFrom(hp.Client().Host().Addr(), 4662)
	peer.DialPeer(addr, func(ps *client.PeerSession, err error) {
		if err != nil {
			t.Errorf("dial hp: %v", err)
			return
		}
		ps.SendHello()
		ps.StartUpload(baitFiles[0].Hash)
	})
	w.settle()
}

// contact drives one peer contact from a fresh peer labeled label.
func (w *world) contact(t *testing.T, hp *honeypot.Honeypot, label string) {
	t.Helper()
	w.contactFrom(t, w.newPeer(t, label), hp)
}

func TestAddPushesAssignment(t *testing.T) {
	w := newWorld(t, 3, DefaultConfig())
	for i, hp := range w.hps {
		st := hp.Status()
		if !st.Connected {
			t.Errorf("hp %d not connected", i)
		}
		if st.Advertised != 1 {
			t.Errorf("hp %d advertises %d files", i, st.Advertised)
		}
	}
	if w.srv.Users() != 3 {
		t.Errorf("server sees %d users", w.srv.Users())
	}
}

func TestPeriodicCollection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CollectEvery = 30 * time.Minute
	w := newWorld(t, 2, cfg)
	w.mgr.Start()
	w.contact(t, w.hps[0], "peer-a")
	w.contact(t, w.hps[1], "peer-b")
	// Advance past one collection period.
	w.loop.RunUntil(w.loop.Now().Add(time.Hour))
	states := w.mgr.States()
	total := 0
	for _, st := range states {
		total += st.Collected
	}
	if total == 0 {
		t.Error("periodic collection gathered nothing")
	}
	// Honeypot buffers must be drained.
	for i, hp := range w.hps {
		if hp.Status().Records != 0 {
			t.Errorf("hp %d still buffers records", i)
		}
	}
}

func TestHealthCheckReconnectsDisconnected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HealthEvery = 10 * time.Minute
	w := newWorld(t, 1, cfg)
	w.mgr.Start()

	// Sever the server side and bring a fresh server up on the same host.
	srvHost, _ := w.net.HostAt(w.srv.Addr().Addr())
	srvHost.Crash()
	w.settle()
	if w.hps[0].Status().Connected {
		t.Fatal("honeypot should be disconnected")
	}
	srvHost.Restart()
	srv2 := server.New(srvHost, server.DefaultConfig("big"))
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}
	// Within a couple of health periods the manager must re-push the
	// assignment and the honeypot must be back.
	w.loop.RunUntil(w.loop.Now().Add(30 * time.Minute))
	if !w.hps[0].Status().Connected {
		t.Error("manager did not reconnect the honeypot")
	}
	if srv2.FilesIndexed() != 1 {
		t.Errorf("re-advertisement missing: %d files", srv2.FilesIndexed())
	}
}

func TestRelaunchHook(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HealthEvery = 10 * time.Minute
	w := newWorld(t, 1, cfg)

	// Replace the handle with a control link so the death of the honeypot
	// host is visible as a control failure.
	hpHost := w.hps[0].Client().Host().(*netsim.Host)
	if _, err := control.NewAgent(hpHost, w.hps[0], control.DefaultPort); err != nil {
		t.Fatal(err)
	}
	var link *control.Link
	control.Dial(w.mgr.Host(), "hp-0", netip.AddrPortFrom(hpHost.Addr(), control.DefaultPort), func(l *control.Link, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		link = l
	})
	w.settle()
	if link == nil {
		t.Fatal("no link")
	}
	w.mgr.States()[0].Handle = link

	relaunched := 0
	w.mgr.Relaunch = func(id string, done func(Handle, error)) {
		relaunched++
		// Bring the host back with a fresh honeypot and agent.
		hpHost.Restart()
		hp2 := honeypot.New(hpHost, honeypot.Config{
			ID: id, Strategy: honeypot.NoContent, Port: 4662, Secret: secret,
		})
		if err := hp2.Client().Listen(); err != nil {
			done(nil, err)
			return
		}
		w.hps[0] = hp2
		done(NewLocalHandle(id, hp2, w.mgr.Host()), nil)
	}
	w.mgr.Start()

	hpHost.Crash()
	w.loop.RunUntil(w.loop.Now().Add(45 * time.Minute))

	if relaunched == 0 {
		t.Fatal("relaunch hook never invoked")
	}
	if !w.hps[0].Status().Connected {
		t.Error("relaunched honeypot not connected")
	}
	if w.mgr.States()[0].Relaunches == 0 {
		t.Error("relaunch not recorded")
	}
}

func TestFinalizePipeline(t *testing.T) {
	w := newWorld(t, 2, DefaultConfig())
	shared := w.newPeer(t, "shared-peer")
	w.contactFrom(t, shared, w.hps[0])
	w.contactFrom(t, shared, w.hps[1]) // same peer (same IP) contacts both
	w.contact(t, w.hps[1], "other-peer")

	var ds *Dataset
	var dsErr error
	w.mgr.Finalize(func(d *Dataset, err error) { ds, dsErr = d, err })
	w.settle()
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	if ds == nil {
		t.Fatal("no dataset")
	}
	// Two distinct peers despite three contacts.
	if ds.DistinctPeers != 2 {
		t.Errorf("distinct peers = %d, want 2", ds.DistinctPeers)
	}
	// Same peer must carry the same number across honeypot logs.
	seen := map[string]map[string]bool{} // peerNum -> set of honeypots
	for _, r := range ds.Records {
		if seen[r.PeerIP] == nil {
			seen[r.PeerIP] = map[string]bool{}
		}
		seen[r.PeerIP][r.Honeypot] = true
	}
	foundCrossHP := false
	for _, hps := range seen {
		if len(hps) == 2 {
			foundCrossHP = true
		}
	}
	if !foundCrossHP {
		t.Error("no peer number spans both honeypots; step-2 coherence broken")
	}
	// Ordered by time.
	for i := 1; i < len(ds.Records); i++ {
		if ds.Records[i].Time.Before(ds.Records[i-1].Time) {
			t.Fatal("records out of order")
		}
	}
	if len(ds.PerHoneypot) != 2 {
		t.Errorf("per-honeypot map: %v", ds.PerHoneypot)
	}
}

func TestFinalizeAuditsRecords(t *testing.T) {
	w := newWorld(t, 1, DefaultConfig())
	w.contact(t, w.hps[0], "p")
	var ds *Dataset
	w.mgr.Finalize(func(d *Dataset, err error) {
		if err != nil {
			t.Errorf("finalize: %v", err)
			return
		}
		ds = d
	})
	w.settle()
	if ds == nil {
		t.Fatal("no dataset")
	}
	for _, r := range ds.Records {
		if _, err := strconv.Atoi(r.PeerIP); err != nil {
			t.Fatalf("record PeerIP %q is not a step-2 number", r.PeerIP)
		}
	}
}

func TestAssignmentStrategies(t *testing.T) {
	s1 := netip.MustParseAddrPort("10.0.0.1:4661")
	s2 := netip.MustParseAddrPort("10.0.0.2:4661")
	same := SameServer(s1, baitFiles, 3)
	if len(same) != 3 {
		t.Fatal("SameServer length")
	}
	for _, a := range same {
		if a.Server != s1 {
			t.Error("SameServer mixed servers")
		}
	}
	spread := SpreadServers([]netip.AddrPort{s1, s2}, baitFiles, 4)
	if spread[0].Server != s1 || spread[1].Server != s2 || spread[2].Server != s1 || spread[3].Server != s2 {
		t.Error("SpreadServers not round-robin")
	}
}

func TestCollectNowEmptyManager(t *testing.T) {
	loop := des.NewLoop(t0, 1)
	nw := netsim.New(loop, netsim.DefaultConfig())
	m := New(nw.NewHost("m"), DefaultConfig())
	called := false
	m.CollectNow(func() { called = true })
	m.HealthCheckNow(nil)
	loop.RunUntil(t0.Add(time.Minute))
	if !called {
		t.Error("CollectNow callback with zero honeypots")
	}
	var ds *Dataset
	m.Finalize(func(d *Dataset, err error) { ds = d })
	loop.RunUntil(t0.Add(2 * time.Minute))
	if ds == nil || len(ds.Records) != 0 {
		t.Error("empty finalize")
	}
}

func TestStopHaltsTimers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CollectEvery = 10 * time.Minute
	cfg.HealthEvery = 10 * time.Minute
	w := newWorld(t, 1, cfg)
	w.mgr.Start()
	w.mgr.Stop()
	before := w.loop.Executed()
	w.loop.RunUntil(w.loop.Now().Add(3 * time.Hour))
	// Only the server reaper and honeypot keep-alive may run; the manager
	// must not generate collection traffic.
	if w.mgr.States()[0].Collected != 0 {
		t.Error("collection ran after Stop")
	}
	_ = before
}

var _ logging.Record // keep import if helpers change
