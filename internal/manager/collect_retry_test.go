package manager

import (
	"errors"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/control"
	"repro/internal/des"
	"repro/internal/honeypot"
	"repro/internal/logging"
	"repro/internal/logstore"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// flakyIncHandle fails its first `failures` take-records-since calls
// with err, then serves recs — the shape of a honeypot behind a
// flapping link.
type flakyIncHandle struct {
	id       string
	failures int
	err      error
	attempts int
	recs     []logging.Record
}

func (f *flakyIncHandle) ID() string                                      { return f.id }
func (f *flakyIncHandle) Status(cb func(honeypot.Status, error))          { cb(honeypot.Status{}, nil) }
func (f *flakyIncHandle) Advertise(_ []client.SharedFile, cb func(error)) { cb(nil) }
func (f *flakyIncHandle) ConnectServer(_ netip.AddrPort, cb func(error))  { cb(nil) }
func (f *flakyIncHandle) Close()                                          {}
func (f *flakyIncHandle) TakeRecords(cb func([]logging.Record, error))    { cb(nil, nil) }
func (f *flakyIncHandle) TakeRecordsSince(cp logstore.Checkpoint, _ int, cb func([]logging.Record, logstore.Checkpoint, error)) {
	f.attempts++
	if f.attempts <= f.failures {
		cb(nil, cp, f.err)
		return
	}
	recs := f.recs
	f.recs = nil
	cb(recs, logstore.Checkpoint{Seg: cp.Seg + 1}, nil)
}

func TestCollectRetriesWithinRound(t *testing.T) {
	loop := des.NewLoop(t0, 9)
	nw := netsim.New(loop, netsim.DefaultConfig())
	reg := obs.New()
	cfg := DefaultConfig()
	cfg.Metrics = reg
	cfg.CollectRetries = 2
	cfg.CollectRetryBackoff = time.Second
	m := New(nw.NewHost("mgr"), cfg)

	h := &flakyIncHandle{
		id: "hp-a", failures: 2,
		err:  fmt.Errorf("collect: %w", control.ErrTimeout),
		recs: []logging.Record{{Time: t0, Honeypot: "hp-a", PeerIP: "x"}},
	}
	m.Add(h, Assignment{})
	doneRan := false
	m.CollectNow(func() { doneRan = true })
	loop.RunUntil(loop.Now().Add(10 * time.Minute))

	if !doneRan {
		t.Fatal("CollectNow's done never fired")
	}
	st := m.States()[0]
	if st.Collected != 1 {
		t.Fatalf("collected %d records, want 1 (after retries)", st.Collected)
	}
	if st.MissedRounds != 0 {
		t.Fatalf("missed rounds = %d, want 0 — the retry budget covered the fault", st.MissedRounds)
	}
	if got := reg.Counter("manager.collect.retries").Load(); got != 2 {
		t.Errorf("collect.retries = %d, want 2", got)
	}
	if got := reg.Counter("manager.collect.timeouts").Load(); got != 2 {
		t.Errorf("collect.timeouts = %d, want 2", got)
	}
	if got := reg.Counter("manager.collect.degraded").Load(); got != 0 {
		t.Errorf("collect.degraded = %d, want 0", got)
	}
}

func TestCollectDegradesAfterBudget(t *testing.T) {
	loop := des.NewLoop(t0, 9)
	nw := netsim.New(loop, netsim.DefaultConfig())
	reg := obs.New()
	cfg := DefaultConfig()
	cfg.Metrics = reg
	cfg.CollectRetries = 1
	cfg.CollectRetryBackoff = time.Second
	m := New(nw.NewHost("mgr"), cfg)

	h := &flakyIncHandle{id: "hp-a", failures: 1 << 30, err: errors.New("control: link reset")}
	m.Add(h, Assignment{})
	doneRan := false
	m.CollectNow(func() { doneRan = true })
	loop.RunUntil(loop.Now().Add(10 * time.Minute))

	if !doneRan {
		t.Fatal("a degraded round must still finish")
	}
	st := m.States()[0]
	if st.MissedRounds != 1 {
		t.Fatalf("missed rounds = %d, want 1", st.MissedRounds)
	}
	if st.Healthy {
		t.Error("degraded honeypot still marked healthy")
	}
	if h.attempts != 2 {
		t.Errorf("handle saw %d attempts, want 2 (original + one retry)", h.attempts)
	}
	if got := reg.Counter("manager.collect.degraded").Load(); got != 1 {
		t.Errorf("collect.degraded = %d, want 1", got)
	}
	// The checkpoint must not have moved: nothing was acked, so a later
	// healthy round loses no records.
	if st.Checkpoint != (logstore.Checkpoint{}) {
		t.Errorf("checkpoint advanced to %+v during a failed round", st.Checkpoint)
	}

	// The fault clears: the next round recovers everything.
	h.failures = 0
	h.recs = []logging.Record{{Time: t0, Honeypot: "hp-a", PeerIP: "x"}}
	m.CollectNow(nil)
	loop.RunUntil(loop.Now().Add(10 * time.Minute))
	if st.Collected != 1 {
		t.Fatalf("post-fault round collected %d records, want 1", st.Collected)
	}
	if st.MissedRounds != 1 {
		t.Errorf("missed rounds changed to %d after recovery, want still 1", st.MissedRounds)
	}
}
