package logging

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/ed2k"
)

// FuzzRecordRoundTrip fuzzes the record-level codec (EncodeRecord →
// DecodeRecord), complementing the wire-level fuzz tests: any record the
// fuzzer can construct must survive the binary encoding byte-for-byte.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(int64(0), "hp-00", uint8(1), "4fa1b2c3", uint16(4662), "aMule", "uh", true, uint32(60), "movie.avi", "10.0.0.1:4661", uint8(0))
	f.Add(int64(1e18), "", uint8(0), "", uint16(0), "", "", false, uint32(0), "", "", uint8(3))
	f.Add(int64(-5), "hp\x00\xff", uint8(255), "peer", uint16(65535), "名前", "h\nh", true, uint32(1<<31), "a/b\\c", "srv", uint8(7))
	f.Fuzz(func(t *testing.T, unixNano int64, hp string, kind uint8, ip string,
		port uint16, name, userHash string, highID bool, version uint32,
		fileName, server string, nFiles uint8) {
		r := Record{
			Time:          time.Unix(0, unixNano).UTC(),
			Honeypot:      hp,
			Kind:          Kind(kind),
			PeerIP:        ip,
			PeerPort:      port,
			PeerName:      name,
			UserHash:      userHash,
			HighID:        highID,
			ClientVersion: version,
			FileHash:      ed2k.SyntheticHash(fileName),
			FileName:      fileName,
			Server:        server,
		}
		for i := 0; i < int(nFiles%6); i++ {
			r.Files = append(r.Files, SharedFile{
				Hash: ed2k.SyntheticHash(name),
				Name: name,
				Size: int64(port) << i,
			})
		}
		enc := EncodeRecord(nil, r)
		got, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("decode of valid encoding failed: %v", err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, r)
		}
	})
}

// FuzzDecodeRecord throws arbitrary bytes at the record decoder: it must
// never panic and must either error or re-encode to an equivalent record.
func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeRecord(nil, Record{Time: time.Unix(0, 42).UTC(), Honeypot: "hp", PeerIP: "x"}))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRecord(data)
		if err != nil {
			return
		}
		enc := EncodeRecord(nil, r)
		r2, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoding failed: %v", err)
		}
		if !reflect.DeepEqual(r, r2) {
			t.Fatal("re-encoding not stable")
		}
	})
}
