package logging

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ed2k"
	"repro/internal/intern"
)

var t0 = time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)

func sampleRecord(i int) Record {
	return Record{
		Time:          t0.Add(time.Duration(i) * time.Second),
		Honeypot:      "hp-03",
		Kind:          KindStartUpload,
		PeerIP:        "4fa1b2c3d4e5f607",
		PeerPort:      4662,
		PeerName:      "aMule 2.2.2",
		UserHash:      ed2k.NewUserHash("u").String(),
		HighID:        true,
		ClientVersion: 0x3C,
		FileHash:      ed2k.SyntheticHash("f"),
		FileName:      "movie.avi",
		Server:        "10.0.0.1:4661",
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	recs := []Record{
		sampleRecord(0),
		{
			Time: t0, Honeypot: "hp-00", Kind: KindSharedList, PeerIP: "aa",
			Files: []SharedFile{
				{Hash: ed2k.SyntheticHash("a"), Name: "a.mp3", Size: 5 << 20},
				{Hash: ed2k.SyntheticHash("b"), Name: "b.avi", Size: 700 << 20},
			},
		},
		{Time: t0.Add(time.Hour), Kind: KindHello, PeerIP: "bb", HighID: false},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, recs)
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("NOTTHEMAGIC"))).Read()
	if err == nil {
		t.Error("want magic error")
	}
}

func TestBinaryEmptyStream(t *testing.T) {
	_, err := NewReader(bytes.NewReader(nil)).Read()
	if !errors.Is(err, io.EOF) {
		t.Errorf("empty stream: %v", err)
	}
}

func TestBinaryTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(sampleRecord(0)); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	full := buf.Bytes()
	for _, cut := range []int{len(full) - 1, len(full) / 2, len(binMagic) + 2} {
		r := NewReader(bytes.NewReader(full[:cut]))
		if _, err := r.Read(); err == nil {
			t.Errorf("cut at %d: want error", cut)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := []Record{sampleRecord(0), sampleRecord(1)}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records", len(got))
	}
	if !got[0].Time.Equal(recs[0].Time) || got[0].PeerIP != recs[0].PeerIP {
		t.Error("JSONL round trip mismatch")
	}
}

func TestMerge(t *testing.T) {
	mk := func(hp string, secs ...int) []Record {
		out := make([]Record, len(secs))
		for i, s := range secs {
			out[i] = Record{Time: t0.Add(time.Duration(s) * time.Second), Honeypot: hp, Kind: KindHello}
		}
		return out
	}
	merged := Merge(mk("a", 1, 4, 9), mk("b", 2, 3, 10), mk("c"), mk("d", 5))
	if len(merged) != 7 {
		t.Fatalf("merged %d records", len(merged))
	}
	if !sort.SliceIsSorted(merged, func(i, j int) bool {
		return merged[i].Time.Before(merged[j].Time)
	}) {
		t.Error("merge output not time-ordered")
	}
}

func TestMergeStableOnTies(t *testing.T) {
	a := []Record{{Time: t0, Honeypot: "a"}}
	b := []Record{{Time: t0, Honeypot: "b"}}
	merged := Merge(a, b)
	if merged[0].Honeypot != "a" || merged[1].Honeypot != "b" {
		t.Errorf("tie order: %v, %v", merged[0].Honeypot, merged[1].Honeypot)
	}
}

func TestMergeStableAcrossEqualTimestampRuns(t *testing.T) {
	// Several sources with runs of equal timestamps: the merge must keep
	// each source's internal order and break cross-source ties by source
	// index, for every tied instant.
	mk := func(hp string, secs ...int) []Record {
		out := make([]Record, len(secs))
		for i, s := range secs {
			out[i] = Record{Time: t0.Add(time.Duration(s) * time.Second), Honeypot: hp, PeerIP: hp + "-" + string(rune('0'+i))}
		}
		return out
	}
	a := mk("a", 0, 0, 1, 2, 2)
	b := mk("b", 0, 1, 1, 2)
	c := mk("c", 2, 2)
	merged := Merge(a, b, c)
	if len(merged) != len(a)+len(b)+len(c) {
		t.Fatalf("merged %d records", len(merged))
	}
	// Within each timestamp, sources must appear in a<b<c order, and each
	// source's own records in append order.
	for i := 1; i < len(merged); i++ {
		prev, cur := merged[i-1], merged[i]
		if cur.Time.Before(prev.Time) {
			t.Fatalf("out of order at %d", i)
		}
		if cur.Time.Equal(prev.Time) && cur.Honeypot < prev.Honeypot {
			t.Errorf("tie at %v: source %q before %q", cur.Time, prev.Honeypot, cur.Honeypot)
		}
	}
	// Per-source order preserved.
	pos := map[string]int{}
	for _, r := range merged {
		if want := string(rune('0' + pos[r.Honeypot])); r.PeerIP[len(r.PeerIP)-1:] != want {
			t.Errorf("source %s record %q out of append order (want index %s)", r.Honeypot, r.PeerIP, want)
		}
		pos[r.Honeypot]++
	}
}

func TestMergeEmpty(t *testing.T) {
	if got := Merge(); len(got) != 0 {
		t.Error("Merge() should be empty")
	}
	if got := Merge(nil, nil); len(got) != 0 {
		t.Error("Merge(nil, nil) should be empty")
	}
}

func TestMemorySink(t *testing.T) {
	var s MemorySink
	s.Append(sampleRecord(0))
	s.Append(sampleRecord(1))
	if len(s.Records) != 2 {
		t.Errorf("sink holds %d", len(s.Records))
	}
}

func TestMemorySinkConcurrentAppend(t *testing.T) {
	var s MemorySink
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Append(Record{Honeypot: "hp", PeerPort: uint16(g)})
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != goroutines*per {
		t.Errorf("sink holds %d records, want %d", s.Len(), goroutines*per)
	}
	if got := s.Take(); len(got) != goroutines*per || s.Len() != 0 {
		t.Error("Take did not drain the sink")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindHello:       "HELLO",
		KindStartUpload: "START-UPLOAD",
		KindRequestPart: "REQUEST-PART",
		KindSharedList:  "SHARED-LIST",
		KindConnect:     "CONNECT",
		KindDisconnect:  "DISCONNECT",
		Kind(42):        "KIND(42)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k, want)
		}
	}
}

// Property: arbitrary records survive the binary codec.
func TestQuickBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(hp, ip, name string, port uint16, high bool, nfiles uint8) bool {
		r := Record{
			Time: t0.Add(time.Duration(rng.Intn(1e6)) * time.Millisecond), Honeypot: hp,
			Kind: KindRequestPart, PeerIP: ip, PeerPort: port, PeerName: name, HighID: high,
		}
		for i := 0; i < int(nfiles%5); i++ {
			r.Files = append(r.Files, SharedFile{Hash: ed2k.SyntheticHash(name), Name: name, Size: int64(port)})
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(r); err != nil {
			return false
		}
		w.Flush()
		got, err := NewReader(&buf).ReadAll()
		return err == nil && len(got) == 1 && reflect.DeepEqual(got[0], r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: merge of sorted inputs is sorted and length-preserving.
func TestQuickMergeInvariants(t *testing.T) {
	f := func(lens [3]uint8) bool {
		rng := rand.New(rand.NewSource(int64(lens[0]) + 7))
		var logs [][]Record
		total := 0
		for _, n := range lens {
			m := int(n % 50)
			total += m
			l := make([]Record, m)
			tt := t0
			for i := range l {
				tt = tt.Add(time.Duration(rng.Intn(100)) * time.Second)
				l[i] = Record{Time: tt}
			}
			logs = append(logs, l)
		}
		merged := Merge(logs...)
		if len(merged) != total {
			return false
		}
		return sort.SliceIsSorted(merged, func(i, j int) bool {
			return merged[i].Time.Before(merged[j].Time)
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	r := sampleRecord(0)
	w := NewWriter(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Write(r); err != nil {
			b.Fatal(err)
		}
	}
	w.Flush()
}

func BenchmarkMerge24Honeypots(b *testing.B) {
	// The manager's fan-in: 24 honeypot logs of 10k records each.
	logs := make([][]Record, 24)
	for i := range logs {
		l := make([]Record, 10000)
		tt := t0
		for j := range l {
			tt = tt.Add(time.Duration(i+j%7) * time.Second)
			l[j] = Record{Time: tt, Kind: KindHello}
		}
		logs[i] = l
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Merge(logs...)
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	// Disk round trip: the path honeypotd uses to spool logs.
	dir := t.TempDir()
	path := filepath.Join(dir, "hp.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	var want []Record
	for i := 0; i < 500; i++ {
		r := sampleRecord(i)
		if i%50 == 0 {
			r.Kind = KindSharedList
			r.Files = []SharedFile{{Hash: ed2k.SyntheticHash("s"), Name: "s.mp3", Size: 1 << 20}}
		}
		want = append(want, r)
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	got, err := NewReader(g).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("file round trip mismatch")
	}
}

func TestJSONLFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dataset.jsonl")
	recs := []Record{sampleRecord(0), sampleRecord(1)}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(f, recs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	got, err := ReadJSONL(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].UserHash != recs[1].UserHash {
		t.Error("JSONL file round trip mismatch")
	}
}

func TestDecodeRecordInternedMatchesPlain(t *testing.T) {
	pool := intern.NewPool()
	for i := 0; i < 3; i++ {
		r := sampleRecord(i)
		r.Files = []SharedFile{{Hash: ed2k.SyntheticHash("s"), Name: "s.bin", Size: 7}}
		body := EncodeRecord(nil, r)
		plain, err := DecodeRecord(body)
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := DecodeRecordInterned(body, pool)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, pooled) {
			t.Fatalf("interned decode differs:\n got %+v\nwant %+v", pooled, plain)
		}
	}
	// Honeypot, PeerName, FileName and Server are the pooled columns.
	if pool.Len() != 4 {
		t.Errorf("pool holds %d strings, want 4", pool.Len())
	}
}
