package logging

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
)

// randomLogs fabricates per-honeypot logs in time order, with plenty of
// equal timestamps so merge tie-breaking is exercised.
func randomLogs(rng *rand.Rand, n int) [][]Record {
	logs := make([][]Record, n)
	for i := range logs {
		t := time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)
		for j := 0; j < rng.Intn(50); j++ {
			t = t.Add(time.Duration(rng.Intn(3)) * time.Second) // frequent ties
			logs[i] = append(logs[i], Record{
				Time:     t,
				Honeypot: fmt.Sprintf("hp-%d", i),
				Kind:     KindHello,
				PeerIP:   fmt.Sprintf("%016x", rng.Uint64()),
			})
		}
	}
	return logs
}

// TestMergeIterMatchesMerge pins the streaming merge to the
// materialized one: identical records, identical tie-break order.
func TestMergeIterMatchesMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		logs := randomLogs(rng, 1+rng.Intn(5))
		want := Merge(logs...)
		got, err := Drain(MergeIter(logs...))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d records streamed, %d merged", trial, len(got), len(want))
		}
		if !reflect.DeepEqual(got, want) && len(want) > 0 {
			t.Fatalf("trial %d: streams differ", trial)
		}
	}
}

func TestMergeIterEmpty(t *testing.T) {
	it := MergeIter(nil, []Record{})
	if _, err := it.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("empty merge: %v", err)
	}
	// EOF is sticky.
	if _, err := it.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("EOF not sticky: %v", err)
	}
}

// TestMergeSourceReIterates: every Iter pass over a MergeSource yields
// the same stream — the contract two-pass pipeline stages rely on.
func TestMergeSourceReIterates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	logs := randomLogs(rng, 3)
	src := NewMergeSource(logs...)
	it1, err := src.Iter()
	if err != nil {
		t.Fatal(err)
	}
	first, err := Drain(it1)
	if err != nil {
		t.Fatal(err)
	}
	it2, err := src.Iter()
	if err != nil {
		t.Fatal(err)
	}
	second, err := Drain(it2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("second pass differs from first")
	}
}

func TestMapTransformsAndAborts(t *testing.T) {
	recs := []Record{{PeerIP: "a"}, {PeerIP: "b"}, {PeerIP: "boom"}, {PeerIP: "c"}}
	sentinel := errors.New("bad record")
	it := Map(NewSliceIter(recs), func(r *Record) error {
		if r.PeerIP == "boom" {
			return sentinel
		}
		r.PeerIP = strings.ToUpper(r.PeerIP)
		return nil
	})
	got, err := Drain(it)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if len(got) != 2 || got[0].PeerIP != "A" || got[1].PeerIP != "B" {
		t.Fatalf("transformed prefix = %+v", got)
	}
	// Map must not mutate the source slice.
	if recs[0].PeerIP != "a" {
		t.Fatal("Map mutated its source")
	}
}

func TestWriteJSONLIterMatchesWriteJSONL(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	recs := Merge(randomLogs(rng, 2)...)
	var a, b strings.Builder
	if err := WriteJSONL(&a, recs); err != nil {
		t.Fatal(err)
	}
	n, err := WriteJSONLIter(&b, NewSliceIter(recs))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(recs) {
		t.Fatalf("wrote %d records, want %d", n, len(recs))
	}
	if a.String() != b.String() {
		t.Fatal("streaming JSONL differs from materialized JSONL")
	}
}

type closeRecorder struct {
	SliceIter
	closed bool
}

func (c *closeRecorder) Close() error { c.closed = true; return nil }

func TestCloseIter(t *testing.T) {
	c := &closeRecorder{}
	if err := CloseIter(c); err != nil || !c.closed {
		t.Fatalf("CloseIter missed the closer: err=%v closed=%v", err, c.closed)
	}
	if err := CloseIter(NewSliceIter(nil)); err != nil {
		t.Fatalf("plain iterator close: %v", err)
	}
}
