package logging

// This file defines the canonical record-stream contract the dataset
// pipeline is built on. A campaign flows from a source (in-memory
// per-honeypot logs, a logstore scan, a network drain) through transform
// stages (renumbering, filename anonymization, auditing) into a consumer
// (a columnar frame, a JSONL export, an on-disk store) one record at a
// time: no stage ever materializes the stream.

import (
	"bufio"
	"container/heap"
	"encoding/json"
	"errors"
	"io"
)

// Iterator is the canonical streaming record source: Next returns
// records in merged timestamp order and io.EOF at the end of the
// stream. logstore's Iterator, MergeIter and every pipeline stage
// satisfy it.
type Iterator interface {
	Next() (Record, error)
}

// Source is a re-iterable record stream: each Iter call starts a fresh
// pass over the same records in the same order. Multi-pass pipeline
// stages (corpus-wide filename anonymization) scan a Source twice — a
// logstore scans its segments again, in-memory logs re-merge.
type Source interface {
	Iter() (Iterator, error)
}

// SliceIter adapts an in-memory record slice to Iterator.
type SliceIter struct {
	recs []Record
	i    int
}

// NewSliceIter iterates over recs.
func NewSliceIter(recs []Record) *SliceIter { return &SliceIter{recs: recs} }

// Next implements Iterator.
func (s *SliceIter) Next() (Record, error) {
	if s.i >= len(s.recs) {
		return Record{}, io.EOF
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}

// MergeSource is a re-iterable k-way merge over per-honeypot logs; each
// Iter re-merges the same slices into the same order.
type MergeSource struct {
	logs [][]Record
}

// NewMergeSource builds a Source over per-honeypot logs (each already
// in time order, as produced).
func NewMergeSource(logs ...[]Record) *MergeSource { return &MergeSource{logs: logs} }

// Iter implements Source.
func (s *MergeSource) Iter() (Iterator, error) { return MergeIter(s.logs...), nil }

// Map returns an iterator that applies fn to every record of src before
// yielding it — the pipeline's transform stage. fn may mutate the
// record in place; a non-nil error aborts the stream.
func Map(src Iterator, fn func(*Record) error) Iterator {
	return &mapIter{src: src, fn: fn}
}

type mapIter struct {
	src Iterator
	fn  func(*Record) error
}

// Next implements Iterator.
func (m *mapIter) Next() (Record, error) {
	r, err := m.src.Next()
	if err != nil {
		return Record{}, err
	}
	if err := m.fn(&r); err != nil {
		return Record{}, err
	}
	return r, nil
}

// Each drains src, invoking fn per record. fn errors abort the drain.
func Each(src Iterator, fn func(*Record) error) error {
	for {
		r, err := src.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(&r); err != nil {
			return err
		}
	}
}

// Drain materializes the remainder of src as a slice.
func Drain(src Iterator) ([]Record, error) {
	var out []Record
	err := Each(src, func(r *Record) error {
		out = append(out, *r)
		return nil
	})
	return out, err
}

// CloseIter closes src if it holds resources (an io.Closer, like a
// logstore iterator); pure in-memory iterators are a no-op.
func CloseIter(src Iterator) error {
	if c, ok := src.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// MergeIter combines per-honeypot logs (each already in time order)
// into one stream ordered by timestamp without materializing it: the
// streaming form of Merge, with O(logs) memory. Ties are broken by
// source position, then append order — the ordering contract shared
// with logstore's Iterator (whose sources are lexicographic shard
// names).
func MergeIter(logs ...[]Record) Iterator {
	m := &mergeIter{logs: logs}
	for i, l := range logs {
		if len(l) > 0 {
			m.h = append(m.h, mergeItem{rec: l[0], src: i, pos: 0})
		}
	}
	heap.Init(&m.h)
	return m
}

type mergeIter struct {
	logs [][]Record
	h    mergeHeap
}

// Next implements Iterator.
func (m *mergeIter) Next() (Record, error) {
	if m.h.Len() == 0 {
		return Record{}, io.EOF
	}
	top := m.h[0]
	if next := top.pos + 1; next < len(m.logs[top.src]) {
		m.h[0] = mergeItem{rec: m.logs[top.src][next], src: top.src, pos: next}
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return top.rec, nil
}

// WriteJSONLIter writes the stream as one JSON object per line,
// returning the number of records written — the streaming form of
// WriteJSONL, for datasets too large to materialize.
func WriteJSONLIter(w io.Writer, src Iterator) (int, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	n := 0
	err := Each(src, func(r *Record) error {
		if err := enc.Encode(r); err != nil {
			return err
		}
		n++
		return nil
	})
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}
