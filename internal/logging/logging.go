// Package logging defines the measurement log: the records honeypots emit
// for every query they receive, exactly mirroring the fields the paper
// says are saved (message type, peer address/port/name/userID/version and
// ID status, the concerned file, server identity, and timestamps), plus
// the shared-file lists retrieved from contacting peers.
//
// Records travel as in-memory values inside simulations, as a compact
// binary stream between honeypotd and the manager, and as JSONL for
// humans. PeerIP never contains a raw address past the honeypot boundary:
// it carries the step-1 anonymization hash, then the step-2 coherent
// number (see package anonymize).
package logging

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/ed2k"
	"repro/internal/intern"
)

// Kind is the logged message type.
type Kind uint8

// Logged message kinds. The paper's platform records HELLO, START-UPLOAD
// and REQUEST-PART, plus the retrieved shared-file lists; connection-level
// events carry operational metadata.
const (
	KindHello Kind = iota + 1
	KindStartUpload
	KindRequestPart
	KindSharedList
	KindConnect
	KindDisconnect
)

// String returns the paper's name for the kind.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "HELLO"
	case KindStartUpload:
		return "START-UPLOAD"
	case KindRequestPart:
		return "REQUEST-PART"
	case KindSharedList:
		return "SHARED-LIST"
	case KindConnect:
		return "CONNECT"
	case KindDisconnect:
		return "DISCONNECT"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// SharedFile is one entry of a retrieved shared-file list.
type SharedFile struct {
	Hash ed2k.Hash `json:"hash"`
	Name string    `json:"name"`
	Size int64     `json:"size"`
}

// Record is one logged query.
type Record struct {
	// Time stamps the packet's reception (virtual time in simulation).
	Time time.Time `json:"time"`
	// Honeypot identifies the collecting honeypot.
	Honeypot string `json:"honeypot"`
	// Kind is the message type.
	Kind Kind `json:"kind"`
	// PeerIP is the anonymized peer identity: a step-1 hash digest (hex)
	// as written by the honeypot, rewritten to a small decimal number by
	// the manager's step-2 pass.
	PeerIP string `json:"peer_ip"`
	// PeerPort is the peer's TCP port.
	PeerPort uint16 `json:"peer_port"`
	// PeerName is the peer's self-reported client name.
	PeerName string `json:"peer_name,omitempty"`
	// UserHash is the peer's cross-session user hash (hex).
	UserHash string `json:"user_hash,omitempty"`
	// HighID records the peer's ID status.
	HighID bool `json:"high_id"`
	// ClientVersion is the peer's protocol version tag.
	ClientVersion uint32 `json:"client_version,omitempty"`
	// FileHash is the concerned file, zero for kinds without one.
	FileHash ed2k.Hash `json:"file_hash"`
	// FileName is the honeypot's name for the concerned file.
	FileName string `json:"file_name,omitempty"`
	// Server identifies the directory server the honeypot sat on.
	Server string `json:"server,omitempty"`
	// Files carries the shared list for KindSharedList records.
	Files []SharedFile `json:"files,omitempty"`
}

// Sink receives records as they are produced.
type Sink interface {
	Append(r Record)
}

// MemorySink collects records in memory; the simulation campaigns use it.
// It is safe for concurrent use: livenet honeypots append from multiple
// connection goroutines.
type MemorySink struct {
	mu      sync.Mutex
	Records []Record
}

// Append implements Sink.
func (m *MemorySink) Append(r Record) {
	m.mu.Lock()
	m.Records = append(m.Records, r)
	m.mu.Unlock()
}

// Take drains the sink, returning everything appended so far.
func (m *MemorySink) Take() []Record {
	m.mu.Lock()
	out := m.Records
	m.Records = nil
	m.mu.Unlock()
	return out
}

// Len returns the number of buffered records.
func (m *MemorySink) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.Records)
}

// ---------------------------------------------------------------------------
// Binary stream codec.

const binMagic = "EDHP1\n"

// streamBufSize sizes the codec's bufio layers explicitly: collection
// streams carry millions of ~150-byte records, so a 256 KiB buffer keeps
// the syscall rate three orders of magnitude below the record rate.
const streamBufSize = 256 << 10

var errBadMagic = errors.New("logging: bad stream magic")

// Writer writes records as a binary stream.
type Writer struct {
	w     *bufio.Writer
	wrote bool
	buf   []byte
}

// NewWriter returns a binary log writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, streamBufSize)}
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if !w.wrote {
		if _, err := w.w.WriteString(binMagic); err != nil {
			return err
		}
		w.wrote = true
	}
	w.buf = appendRecord(w.buf[:0], r)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(w.buf)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(w.buf)
	return err
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// EncodeRecord appends r's binary encoding — the frame body used by the
// stream codec above and by logstore segment files — to dst and returns
// the extended slice.
func EncodeRecord(dst []byte, r Record) []byte { return appendRecord(dst, r) }

// DecodeRecord decodes one record previously encoded with EncodeRecord.
func DecodeRecord(b []byte) (Record, error) { return decodeRecord(b, nil) }

// DecodeRecordInterned is DecodeRecord with the low-cardinality string
// columns — Honeypot, Server, PeerName, FileName (the honeypot's own
// name for the concerned file) — deduplicated through pool: a scan over
// a campaign allocates each such string once instead of once per
// record. High-cardinality fields (PeerIP, UserHash) are never pooled.
func DecodeRecordInterned(b []byte, pool *intern.Pool) (Record, error) {
	return decodeRecord(b, pool)
}

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendRecord(b []byte, r Record) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Time.UnixNano()))
	b = appendString(b, r.Honeypot)
	b = append(b, byte(r.Kind))
	b = appendString(b, r.PeerIP)
	b = binary.LittleEndian.AppendUint16(b, r.PeerPort)
	b = appendString(b, r.PeerName)
	b = appendString(b, r.UserHash)
	if r.HighID {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint32(b, r.ClientVersion)
	b = append(b, r.FileHash[:]...)
	b = appendString(b, r.FileName)
	b = appendString(b, r.Server)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Files)))
	for _, f := range r.Files {
		b = append(b, f.Hash[:]...)
		b = appendString(b, f.Name)
		b = binary.LittleEndian.AppendUint64(b, uint64(f.Size))
	}
	return b
}

// Reader reads a binary record stream. Low-cardinality string columns
// are interned across records, and the frame body is read into a
// growable scratch buffer reused between calls.
type Reader struct {
	r      *bufio.Reader
	opened bool
	buf    []byte
	pool   *intern.Pool
}

// NewReader returns a binary log reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, streamBufSize), pool: intern.NewPool()}
}

// Read returns the next record; io.EOF at end of stream.
func (r *Reader) Read() (Record, error) {
	if !r.opened {
		magic := make([]byte, len(binMagic))
		if _, err := io.ReadFull(r.r, magic); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return Record{}, errBadMagic
			}
			return Record{}, err
		}
		if string(magic) != binMagic {
			return Record{}, errBadMagic
		}
		r.opened = true
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return Record{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > 64<<20 {
		return Record{}, fmt.Errorf("logging: record of %d bytes exceeds limit", n)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	body := r.buf[:n]
	if _, err := io.ReadFull(r.r, body); err != nil {
		return Record{}, fmt.Errorf("logging: truncated record: %w", err)
	}
	return decodeRecord(body, r.pool)
}

// ReadAll drains the stream.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

type recDecoder struct {
	b   []byte
	off int
	err error
}

func (d *recDecoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("logging: truncated %s at offset %d", what, d.off)
	}
}

func (d *recDecoder) take(n int, what string) []byte {
	if d.err != nil || d.off+n > len(d.b) {
		d.fail(what)
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *recDecoder) u8(what string) byte {
	v := d.take(1, what)
	if v == nil {
		return 0
	}
	return v[0]
}

func (d *recDecoder) u16(what string) uint16 {
	v := d.take(2, what)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(v)
}

func (d *recDecoder) u32(what string) uint32 {
	v := d.take(4, what)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}

func (d *recDecoder) u64(what string) uint64 {
	v := d.take(8, what)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

func (d *recDecoder) str(what string) string {
	n := int(d.u32(what))
	if n > len(d.b) {
		d.fail(what)
		return ""
	}
	return string(d.take(n, what))
}

// strPooled is str through an interner; with a nil pool it behaves like
// str. Only low-cardinality columns go through here.
func (d *recDecoder) strPooled(what string, pool *intern.Pool) string {
	if pool == nil {
		return d.str(what)
	}
	n := int(d.u32(what))
	if n > len(d.b) {
		d.fail(what)
		return ""
	}
	return pool.Get(d.take(n, what))
}

func (d *recDecoder) hash(what string) ed2k.Hash {
	var h ed2k.Hash
	copy(h[:], d.take(len(h), what))
	return h
}

func decodeRecord(b []byte, pool *intern.Pool) (Record, error) {
	d := recDecoder{b: b}
	var r Record
	r.Time = time.Unix(0, int64(d.u64("time"))).UTC()
	r.Honeypot = d.strPooled("honeypot", pool)
	r.Kind = Kind(d.u8("kind"))
	r.PeerIP = d.str("peer_ip")
	r.PeerPort = d.u16("peer_port")
	r.PeerName = d.strPooled("peer_name", pool)
	r.UserHash = d.str("user_hash")
	r.HighID = d.u8("high_id") != 0
	r.ClientVersion = d.u32("client_version")
	r.FileHash = d.hash("file_hash")
	r.FileName = d.strPooled("file_name", pool)
	r.Server = d.strPooled("server", pool)
	nf := int(d.u32("files"))
	if nf > len(b) {
		return r, fmt.Errorf("logging: shared list count %d implausible", nf)
	}
	for i := 0; i < nf && d.err == nil; i++ {
		var f SharedFile
		f.Hash = d.hash("shared hash")
		f.Name = d.str("shared name")
		f.Size = int64(d.u64("shared size"))
		r.Files = append(r.Files, f)
	}
	if d.err != nil {
		return r, d.err
	}
	if d.off != len(b) {
		return r, fmt.Errorf("logging: %d trailing bytes in record", len(b)-d.off)
	}
	return r, nil
}

// ---------------------------------------------------------------------------
// JSONL export.

// WriteJSONL writes records as one JSON object per line.
func WriteJSONL(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL reads records written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, err
		}
		out = append(out, rec)
	}
}

// ---------------------------------------------------------------------------
// Merging.

type mergeItem struct {
	rec Record
	src int
	pos int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }

func (h mergeHeap) Less(i, j int) bool {
	if !h[i].rec.Time.Equal(h[j].rec.Time) {
		return h[i].rec.Time.Before(h[j].rec.Time)
	}
	return h[i].src < h[j].src // stable across sources
}

func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *mergeHeap) Push(x any) { *h = append(*h, x.(mergeItem)) }

func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Merge combines per-honeypot logs (each already in time order, as
// produced) into one stream ordered by timestamp. This is the manager's
// "merge and unify" step, materialized; MergeIter is the streaming form
// it drains.
func Merge(logs ...[]Record) []Record {
	total := 0
	for _, l := range logs {
		total += len(l)
	}
	out := make([]Record, 0, total)
	it := MergeIter(logs...)
	for {
		r, err := it.Next()
		if err != nil {
			return out
		}
		out = append(out, r)
	}
}
