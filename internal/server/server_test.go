package server

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/ed2k"
	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/wire"
)

var t0 = time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)

type world struct {
	loop *des.Loop
	net  *netsim.Network
	srv  *Server
}

// settle advances virtual time enough for in-flight exchanges to finish.
// Unbounded Run() would never return: the server's reaper reschedules
// itself forever.
func (w *world) settle() {
	w.loop.RunUntil(w.loop.Now().Add(10 * time.Second))
}

func newWorld(t *testing.T, cfg Config) *world {
	t.Helper()
	loop := des.NewLoop(t0, 11)
	nw := netsim.New(loop, netsim.DefaultConfig())
	host := nw.NewHost("server")
	srv := New(host, cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	return &world{loop: loop, net: nw, srv: srv}
}

// rawClient drives the server with hand-built wire messages.
type rawClient struct {
	host *netsim.Host
	conn transport.Conn
	got  []wire.Message
}

func (w *world) dialRaw(t *testing.T, label string, listenPort uint16) *rawClient {
	t.Helper()
	rc := &rawClient{host: w.net.NewHost(label)}
	if listenPort != 0 {
		if _, err := rc.host.Listen(listenPort, wire.PeerSpace, func(c transport.Conn) {
			c.SetHooks(transport.ConnHooks{}) // accept the server's probe
		}); err != nil {
			t.Fatal(err)
		}
	}
	rc.host.Dial(w.srv.Addr(), wire.ServerSpace, func(c transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		rc.conn = c
		c.SetHooks(transport.ConnHooks{
			OnMessage: func(m wire.Message) { rc.got = append(rc.got, m) },
		})
	})
	w.settle()
	if rc.conn == nil {
		t.Fatal("no server connection")
	}
	return rc
}

func (rc *rawClient) login(w *world, seed string, port uint16) {
	rc.conn.Send(&wire.LoginRequest{
		UserHash: ed2k.NewUserHash(seed),
		Port:     port,
		Tags:     wire.Tags{wire.StringTag(wire.TagName, seed)},
	})
	w.settle()
}

func (rc *rawClient) idChange(t *testing.T) *wire.IDChange {
	t.Helper()
	for _, m := range rc.got {
		if id, ok := m.(*wire.IDChange); ok {
			return id
		}
	}
	t.Fatal("no ID-CHANGE received")
	return nil
}

func TestLoginHighID(t *testing.T) {
	w := newWorld(t, DefaultConfig("srv"))
	rc := w.dialRaw(t, "peer", 4662)
	rc.login(w, "u1", 4662)
	id := ed2k.ClientID(rc.idChange(t).ClientID)
	if id.Low() {
		t.Errorf("listening peer got low ID %v", id)
	}
	addr, err := id.Addr()
	if err != nil || addr != rc.host.Addr() {
		t.Errorf("high ID decodes to %v, want %v", addr, rc.host.Addr())
	}
	if w.srv.Users() != 1 {
		t.Errorf("users = %d", w.srv.Users())
	}
	if w.srv.Stats().Logins != 1 {
		t.Errorf("logins = %d", w.srv.Stats().Logins)
	}
}

func TestLoginLowIDWhenUnreachable(t *testing.T) {
	w := newWorld(t, DefaultConfig("srv"))
	rc := w.dialRaw(t, "natted", 0) // no listener: probe fails
	rc.login(w, "u2", 4662)
	id := ed2k.ClientID(rc.idChange(t).ClientID)
	if !id.Low() {
		t.Errorf("unreachable peer got high ID %v", id)
	}
	if w.srv.Stats().LowIDLogins != 1 {
		t.Errorf("lowID logins = %d", w.srv.Stats().LowIDLogins)
	}
}

func TestLoginWithoutProbeTrustsEveryone(t *testing.T) {
	cfg := DefaultConfig("srv")
	cfg.ProbeCallback = false
	w := newWorld(t, cfg)
	rc := w.dialRaw(t, "peer", 0)
	rc.login(w, "u3", 4662)
	if ed2k.ClientID(rc.idChange(t).ClientID).Low() {
		t.Error("probe disabled: should get high ID")
	}
}

func TestOfferIndexAndGetSources(t *testing.T) {
	w := newWorld(t, DefaultConfig("srv"))
	provider := w.dialRaw(t, "provider", 4662)
	provider.login(w, "prov", 4662)
	f := wire.NewFileEntry(ed2k.SyntheticHash("file"), "a movie.avi", 700<<20, "Video")
	provider.conn.Send(&wire.OfferFiles{Files: []wire.FileEntry{f}})
	w.settle()
	if w.srv.FilesIndexed() != 1 {
		t.Fatalf("indexed %d files", w.srv.FilesIndexed())
	}

	seeker := w.dialRaw(t, "seeker", 4663)
	seeker.login(w, "seek", 4663)
	seeker.conn.Send(&wire.GetSources{Hash: f.Hash})
	w.settle()

	var found *wire.FoundSources
	for _, m := range seeker.got {
		if fs, ok := m.(*wire.FoundSources); ok {
			found = fs
		}
	}
	if found == nil {
		t.Fatal("no FOUND-SOURCES")
	}
	if len(found.Sources) != 1 {
		t.Fatalf("%d sources", len(found.Sources))
	}
	if found.Sources[0].Port != 4662 {
		t.Errorf("source port %d", found.Sources[0].Port)
	}
	if found.Sources[0].AddrPort().Addr() != provider.host.Addr() {
		t.Errorf("source addr %v", found.Sources[0].AddrPort())
	}
}

func TestGetSourcesExcludesSelf(t *testing.T) {
	w := newWorld(t, DefaultConfig("srv"))
	p := w.dialRaw(t, "p", 4662)
	p.login(w, "p", 4662)
	f := wire.NewFileEntry(ed2k.SyntheticHash("f2"), "x.mp3", 5<<20, "Audio")
	p.conn.Send(&wire.OfferFiles{Files: []wire.FileEntry{f}})
	p.conn.Send(&wire.GetSources{Hash: f.Hash})
	w.settle()
	for _, m := range p.got {
		if fs, ok := m.(*wire.FoundSources); ok {
			if len(fs.Sources) != 0 {
				t.Errorf("provider offered itself: %v", fs.Sources)
			}
			return
		}
	}
	t.Fatal("no FOUND-SOURCES")
}

func TestSearch(t *testing.T) {
	w := newWorld(t, DefaultConfig("srv"))
	p := w.dialRaw(t, "p", 4662)
	p.login(w, "p", 4662)
	p.conn.Send(&wire.OfferFiles{Files: []wire.FileEntry{
		wire.NewFileEntry(ed2k.SyntheticHash("f3"), "ubuntu.8.10.desktop.iso", 700<<20, "Pro"),
		wire.NewFileEntry(ed2k.SyntheticHash("f4"), "some.song.mp3", 5<<20, "Audio"),
	}})
	w.settle()

	q := w.dialRaw(t, "q", 4663)
	q.login(w, "q", 4663)
	q.conn.Send(&wire.SearchRequest{Query: "UBUNTU desktop"})
	w.settle()

	var res *wire.SearchResult
	for _, m := range q.got {
		if sr, ok := m.(*wire.SearchResult); ok {
			res = sr
		}
	}
	if res == nil {
		t.Fatal("no SEARCH-RESULT")
	}
	if len(res.Files) != 1 || res.Files[0].Name() != "ubuntu.8.10.desktop.iso" {
		t.Errorf("search results: %+v", res.Files)
	}
	if res.Files[0].Port != 4662 {
		t.Errorf("result provider port %d", res.Files[0].Port)
	}
}

func TestQueriesBeforeLoginRejected(t *testing.T) {
	w := newWorld(t, DefaultConfig("srv"))
	rc := w.dialRaw(t, "rude", 0)
	rc.conn.Send(&wire.GetSources{Hash: ed2k.SyntheticHash("x")})
	w.settle()
	if len(rc.got) != 1 {
		t.Fatalf("got %d messages", len(rc.got))
	}
	if _, ok := rc.got[0].(*wire.Reject); !ok {
		t.Errorf("want REJECT, got %T", rc.got[0])
	}
}

func TestDisconnectRemovesProviders(t *testing.T) {
	w := newWorld(t, DefaultConfig("srv"))
	p := w.dialRaw(t, "p", 4662)
	p.login(w, "p", 4662)
	f := wire.NewFileEntry(ed2k.SyntheticHash("f5"), "gone.avi", 1<<20, "Video")
	p.conn.Send(&wire.OfferFiles{Files: []wire.FileEntry{f}})
	w.settle()
	if w.srv.FilesIndexed() != 1 {
		t.Fatal("file not indexed")
	}
	p.conn.Close()
	w.settle()
	if w.srv.Users() != 0 {
		t.Errorf("users = %d after disconnect", w.srv.Users())
	}
	if w.srv.FilesIndexed() != 0 {
		t.Errorf("files = %d after last provider left", w.srv.FilesIndexed())
	}
}

func TestSessionTimeoutReap(t *testing.T) {
	cfg := DefaultConfig("srv")
	cfg.SessionTimeout = time.Hour
	w := newWorld(t, cfg)
	p := w.dialRaw(t, "p", 4662)
	p.login(w, "p", 4662)
	if w.srv.Users() != 1 {
		t.Fatal("no session")
	}
	// Two hours of silence: the reaper must drop the session.
	w.loop.RunUntil(t0.Add(3 * time.Hour))
	if w.srv.Users() != 0 {
		t.Errorf("silent session survived: users=%d", w.srv.Users())
	}
	if w.srv.Stats().Dropped == 0 {
		t.Error("reap not counted")
	}
}

func TestKeepAlivePreventsReap(t *testing.T) {
	cfg := DefaultConfig("srv")
	cfg.SessionTimeout = time.Hour
	w := newWorld(t, cfg)
	p := w.dialRaw(t, "p", 4662)
	p.login(w, "p", 4662)
	// Send keep-alives (empty OFFER-FILES) every 30 virtual minutes.
	for i := 1; i <= 6; i++ {
		w.loop.RunUntil(t0.Add(time.Duration(i) * 30 * time.Minute))
		p.conn.Send(&wire.OfferFiles{})
	}
	w.loop.RunUntil(t0.Add(4 * time.Hour))
	_ = p
	if w.srv.Stats().Offers != 6 {
		t.Errorf("offers = %d", w.srv.Stats().Offers)
	}
}

func TestMaxSourcesCap(t *testing.T) {
	cfg := DefaultConfig("srv")
	cfg.MaxSources = 3
	w := newWorld(t, cfg)
	f := wire.NewFileEntry(ed2k.SyntheticHash("popular"), "pop.avi", 1<<20, "Video")
	for i := 0; i < 6; i++ {
		p := w.dialRaw(t, "p", 4662)
		p.login(w, string(rune('a'+i)), 4662)
		p.conn.Send(&wire.OfferFiles{Files: []wire.FileEntry{f}})
	}
	w.settle()
	q := w.dialRaw(t, "q", 4663)
	q.login(w, "q", 4663)
	q.conn.Send(&wire.GetSources{Hash: f.Hash})
	w.settle()
	for _, m := range q.got {
		if fs, ok := m.(*wire.FoundSources); ok {
			if len(fs.Sources) != 3 {
				t.Errorf("sources = %d, want cap 3", len(fs.Sources))
			}
			return
		}
	}
	t.Fatal("no FOUND-SOURCES")
}

func TestTokenize(t *testing.T) {
	got := tokenize("Ubuntu-8.10_Desktop ISO")
	want := []string{"ubuntu", "8", "10", "desktop", "iso"}
	if len(got) != len(want) {
		t.Fatalf("tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q want %q", i, got[i], want[i])
		}
	}
}

func TestGetServerListFederation(t *testing.T) {
	cfg := DefaultConfig("fed")
	cfg.KnownServers = []netip.AddrPort{
		netip.MustParseAddrPort("10.1.0.1:4661"),
		netip.MustParseAddrPort("10.1.0.2:4661"),
	}
	w := newWorld(t, cfg)
	rc := w.dialRaw(t, "peer", 4662)
	rc.login(w, "u", 4662)
	rc.conn.Send(&wire.GetServerList{})
	w.settle()
	for _, m := range rc.got {
		if sl, ok := m.(*wire.ServerList); ok {
			if len(sl.Servers) != 2 {
				t.Fatalf("server list has %d entries", len(sl.Servers))
			}
			if got := sl.Servers[0].AddrPort(); got != cfg.KnownServers[0] {
				t.Errorf("first entry %v", got)
			}
			return
		}
	}
	t.Fatal("no SERVER-LIST reply")
}

func TestGetServerListExcludesSelf(t *testing.T) {
	// A server listing itself would make clients redial the same place.
	cfg := DefaultConfig("selfless")
	w := newWorld(t, cfg)
	// Known servers includes this server's own address.
	w.srv.cfg.KnownServers = []netip.AddrPort{w.srv.Addr(), netip.MustParseAddrPort("10.9.0.9:4661")}
	rc := w.dialRaw(t, "peer", 4662)
	rc.login(w, "u", 4662)
	rc.conn.Send(&wire.GetServerList{})
	w.settle()
	for _, m := range rc.got {
		if sl, ok := m.(*wire.ServerList); ok {
			if len(sl.Servers) != 1 {
				t.Fatalf("server list has %d entries, want 1 (self excluded)", len(sl.Servers))
			}
			return
		}
	}
	t.Fatal("no SERVER-LIST reply")
}
