// Package server implements an eDonkey directory server: the substrate
// the paper's honeypots sit on. It accepts client logins, assigns high or
// low clientIDs (probing the client's advertised port to decide, as
// lugdunum-style servers do), indexes OFFER-FILES announcements, and
// answers GET-SOURCES and keyword SEARCH queries.
//
// The server is a transport actor: the same code serves simulated
// campaigns (package netsim) and real TCP clients (package livenet,
// cmd/edonkeyd).
package server

import (
	"net/netip"
	"strings"
	"time"

	"repro/internal/ed2k"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Config tunes the server.
type Config struct {
	// Name is the server's display name.
	Name string
	// Port is the listening port (the eDonkey convention is 4661).
	Port uint16
	// MaxSources caps the endpoints per FOUND-SOURCES reply.
	MaxSources int
	// MaxSearchResults caps SEARCH-RESULT entries.
	MaxSearchResults int
	// SessionTimeout drops clients that stay silent this long (clients
	// refresh with empty OFFER-FILES keep-alives).
	SessionTimeout time.Duration
	// Welcome is the MOTD sent after login.
	Welcome string
	// ProbeCallback controls low/high ID assignment: when true the server
	// dials back the client's advertised port and assigns a low ID when
	// the probe fails. When false every client gets a high ID.
	ProbeCallback bool
	// KnownServers is returned in SERVER-LIST replies, letting clients
	// discover the rest of a multi-server deployment.
	KnownServers []netip.AddrPort
}

// DefaultConfig returns production-like defaults.
func DefaultConfig(name string) Config {
	return Config{
		Name:             name,
		Port:             4661,
		MaxSources:       100,
		MaxSearchResults: 50,
		SessionTimeout:   90 * time.Minute,
		Welcome:          "server " + name + " (repro build)",
		ProbeCallback:    true,
	}
}

// Stats counts server activity.
type Stats struct {
	Logins       int
	LowIDLogins  int
	Offers       int
	FilesIndexed int
	GetSources   int
	Searches     int
	Dropped      int // sessions reaped by timeout
}

// Server is the directory server actor.
type Server struct {
	host transport.Host
	cfg  Config
	hash ed2k.Hash

	listener transport.Listener
	sessions map[uint32]*session // by clientID
	// providerIndex maps file hash -> ordered provider list.
	files map[ed2k.Hash]*fileRecord
	// keyword index for SEARCH.
	keywords map[string]map[ed2k.Hash]struct{}

	lowIDNext uint32
	stats     Stats
}

type fileRecord struct {
	meta      wire.FileEntry
	providers []provider // append-ordered, deduped by clientID
}

type provider struct {
	clientID uint32
	port     uint16
}

type session struct {
	conn     transport.Conn
	userHash ed2k.Hash
	clientID ed2k.ClientID
	port     uint16
	name     string
	shared   []ed2k.Hash
	lastSeen time.Time
	loggedIn bool
}

// New creates a server on the host. Call Start to begin listening.
func New(host transport.Host, cfg Config) *Server {
	if cfg.MaxSources <= 0 {
		cfg.MaxSources = 100
	}
	if cfg.MaxSearchResults <= 0 {
		cfg.MaxSearchResults = 50
	}
	return &Server{
		host:      host,
		cfg:       cfg,
		hash:      ed2k.SyntheticHash("server:" + cfg.Name),
		sessions:  make(map[uint32]*session),
		files:     make(map[ed2k.Hash]*fileRecord),
		keywords:  make(map[string]map[ed2k.Hash]struct{}),
		lowIDNext: 1,
	}
}

// Addr returns the server's address.
func (s *Server) Addr() netip.AddrPort {
	return netip.AddrPortFrom(s.host.Addr(), s.cfg.Port)
}

// Stats returns a copy of the activity counters.
func (s *Server) Stats() Stats { return s.stats }

// Users returns the number of logged-in sessions.
func (s *Server) Users() int { return len(s.sessions) }

// FilesIndexed returns the number of distinct indexed files.
func (s *Server) FilesIndexed() int { return len(s.files) }

// Start begins listening and the keep-alive reaper.
func (s *Server) Start() error {
	l, err := s.host.Listen(s.cfg.Port, wire.ServerSpace, s.accept)
	if err != nil {
		return err
	}
	s.listener = l
	if s.cfg.SessionTimeout > 0 {
		s.host.After(s.cfg.SessionTimeout/2, s.reap)
	}
	return nil
}

// Stop closes the listener; established sessions stay until they drop.
func (s *Server) Stop() {
	if s.listener != nil {
		s.listener.Close()
		s.listener = nil
	}
}

func (s *Server) reap() {
	now := s.host.Now()
	for id, sess := range s.sessions {
		if now.Sub(sess.lastSeen) > s.cfg.SessionTimeout {
			s.stats.Dropped++
			s.dropSession(sess)
			delete(s.sessions, id)
		}
	}
	s.host.After(s.cfg.SessionTimeout/2, s.reap)
}

func (s *Server) accept(conn transport.Conn) {
	sess := &session{conn: conn, lastSeen: s.host.Now()}
	conn.SetHooks(transport.ConnHooks{
		OnMessage: func(m wire.Message) { s.onMessage(sess, m) },
		OnClose:   func(error) { s.onClose(sess) },
	})
}

func (s *Server) onClose(sess *session) {
	if sess.loggedIn {
		if cur, ok := s.sessions[uint32(sess.clientID)]; ok && cur == sess {
			delete(s.sessions, uint32(sess.clientID))
		}
		s.dropSession(sess)
	}
}

// dropSession removes the session's files from the index.
func (s *Server) dropSession(sess *session) {
	for _, h := range sess.shared {
		rec, ok := s.files[h]
		if !ok {
			continue
		}
		for i, p := range rec.providers {
			if p.clientID == uint32(sess.clientID) {
				rec.providers = append(rec.providers[:i], rec.providers[i+1:]...)
				break
			}
		}
		if len(rec.providers) == 0 {
			s.unindexKeywords(rec.meta)
			delete(s.files, h)
		}
	}
	sess.shared = nil
}

func (s *Server) onMessage(sess *session, m wire.Message) {
	sess.lastSeen = s.host.Now()
	switch msg := m.(type) {
	case *wire.LoginRequest:
		s.handleLogin(sess, msg)
	case *wire.OfferFiles:
		s.handleOffer(sess, msg)
	case *wire.GetSources:
		s.handleGetSources(sess, msg)
	case *wire.SearchRequest:
		s.handleSearch(sess, msg)
	case *wire.GetServerList:
		reply := &wire.ServerList{}
		for _, known := range s.cfg.KnownServers {
			if known == s.Addr() || len(reply.Servers) >= 255 {
				continue
			}
			if ep, err := wire.EndpointFromAddrPort(known); err == nil {
				reply.Servers = append(reply.Servers, ep)
			}
		}
		sess.conn.Send(reply)
	default:
		sess.conn.Send(&wire.Reject{})
	}
}

func (s *Server) handleLogin(sess *session, msg *wire.LoginRequest) {
	if sess.loggedIn {
		return // duplicate login, ignore
	}
	sess.userHash = msg.UserHash
	sess.port = msg.Port
	sess.name = msg.Tags.Str(wire.TagName)
	s.stats.Logins++

	finish := func(id ed2k.ClientID) {
		sess.clientID = id
		sess.loggedIn = true
		if old, ok := s.sessions[uint32(id)]; ok && old != sess {
			s.dropSession(old)
			old.conn.Close()
		}
		s.sessions[uint32(id)] = sess
		sess.conn.Send(&wire.IDChange{ClientID: uint32(id), Flags: 1})
		if s.cfg.Welcome != "" {
			sess.conn.Send(&wire.ServerMessage{Text: s.cfg.Welcome})
		}
		sess.conn.Send(&wire.ServerStatus{Users: uint32(len(s.sessions)), Files: uint32(len(s.files))})
		ip, err := wire.EndpointFromAddrPort(s.Addr())
		if err == nil {
			sess.conn.Send(&wire.ServerIdent{
				Hash: s.hash, IP: ip.IP, Port: s.cfg.Port,
				Tags: wire.Tags{wire.StringTag(wire.TagName, s.cfg.Name)},
			})
		}
	}

	remote := sess.conn.RemoteAddr()
	highID, err := ed2k.HighIDFor(remote.Addr())
	if err != nil || ed2k.ClientID(highID).Low() {
		finish(s.allocLowID())
		return
	}
	if !s.cfg.ProbeCallback || msg.Port == 0 {
		if msg.Port == 0 {
			s.stats.LowIDLogins++
			finish(s.allocLowID())
		} else {
			finish(highID)
		}
		return
	}
	// Callback probe: can we reach the advertised client port? Peers
	// behind NAT (which do not listen) become low IDs.
	target := netip.AddrPortFrom(remote.Addr(), msg.Port)
	s.host.Dial(target, wire.PeerSpace, func(c transport.Conn, err error) {
		if err != nil {
			s.stats.LowIDLogins++
			finish(s.allocLowID())
			return
		}
		c.SetHooks(transport.ConnHooks{})
		c.Close()
		finish(highID)
	})
}

func (s *Server) allocLowID() ed2k.ClientID {
	for {
		id := s.lowIDNext
		s.lowIDNext++
		if s.lowIDNext >= ed2k.LowIDThreshold {
			s.lowIDNext = 1
		}
		if _, taken := s.sessions[id]; !taken {
			return ed2k.ClientID(id)
		}
	}
}

func (s *Server) handleOffer(sess *session, msg *wire.OfferFiles) {
	if !sess.loggedIn {
		sess.conn.Send(&wire.Reject{})
		return
	}
	s.stats.Offers++
	for _, f := range msg.Files {
		if f.Hash.Zero() {
			continue
		}
		rec, ok := s.files[f.Hash]
		if !ok {
			rec = &fileRecord{meta: f}
			s.files[f.Hash] = rec
			s.indexKeywords(f)
			s.stats.FilesIndexed++
		}
		already := false
		for _, p := range rec.providers {
			if p.clientID == uint32(sess.clientID) {
				already = true
				break
			}
		}
		if !already {
			rec.providers = append(rec.providers, provider{clientID: uint32(sess.clientID), port: sess.port})
			sess.shared = append(sess.shared, f.Hash)
		}
	}
}

func (s *Server) handleGetSources(sess *session, msg *wire.GetSources) {
	if !sess.loggedIn {
		sess.conn.Send(&wire.Reject{})
		return
	}
	s.stats.GetSources++
	reply := &wire.FoundSources{Hash: msg.Hash}
	if rec, ok := s.files[msg.Hash]; ok {
		for _, p := range rec.providers {
			if len(reply.Sources) >= s.cfg.MaxSources || len(reply.Sources) >= 255 {
				break
			}
			if p.clientID == uint32(sess.clientID) {
				continue // don't hand a client itself
			}
			reply.Sources = append(reply.Sources, wire.Endpoint{IP: p.clientID, Port: p.port})
		}
	}
	sess.conn.Send(reply)
}

func (s *Server) handleSearch(sess *session, msg *wire.SearchRequest) {
	if !sess.loggedIn {
		sess.conn.Send(&wire.Reject{})
		return
	}
	s.stats.Searches++
	reply := &wire.SearchResult{}
	seen := make(map[ed2k.Hash]bool)
	for _, word := range tokenize(msg.Query) {
		for h := range s.keywords[word] {
			if seen[h] || len(reply.Files) >= s.cfg.MaxSearchResults {
				continue
			}
			seen[h] = true
			if rec, ok := s.files[h]; ok {
				entry := rec.meta
				if len(rec.providers) > 0 {
					entry.ClientID = rec.providers[0].clientID
					entry.Port = rec.providers[0].port
				}
				reply.Files = append(reply.Files, entry)
			}
		}
	}
	sess.conn.Send(reply)
}

func (s *Server) indexKeywords(f wire.FileEntry) {
	for _, w := range tokenize(f.Name()) {
		set, ok := s.keywords[w]
		if !ok {
			set = make(map[ed2k.Hash]struct{})
			s.keywords[w] = set
		}
		set[f.Hash] = struct{}{}
	}
}

func (s *Server) unindexKeywords(f wire.FileEntry) {
	for _, w := range tokenize(f.Name()) {
		if set, ok := s.keywords[w]; ok {
			delete(set, f.Hash)
			if len(set) == 0 {
				delete(s.keywords, w)
			}
		}
	}
}

// tokenize lower-cases and splits a name or query into indexable words.
func tokenize(s string) []string {
	s = strings.ToLower(s)
	return strings.FieldsFunc(s, func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
	})
}
