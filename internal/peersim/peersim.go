// Package peersim models the live eDonkey peer population the paper
// measured — the substrate this reproduction cannot observe for real.
//
// The model generates exactly the mechanisms the paper invokes to explain
// its plots:
//
//   - peers interested in an advertised file arrive as a non-homogeneous
//     Poisson process: intensity proportional to file popularity, with a
//     European day/night cycle (Fig 4) and optional slow decay of
//     interest (Fig 2's declining new-peers-per-day);
//   - an arriving peer logs into the directory server (receiving a high
//     or low ID depending on whether it can listen), asks GET-SOURCES,
//     and then works through the source list: HELLO → START-UPLOAD →
//     REQUEST-PART, retrying periodically while its user is online;
//   - client-level implicit blacklisting with asymmetric detection: a
//     silent source (no-content honeypot) is abandoned after a few
//     timeout-paced attempts, while a source sending junk (random-content
//     honeypot) keeps the peer engaged longer — the paper's explanation
//     for Figs 5–9;
//   - a fraction of peers expose their shared libraries to browsing
//     (Table I's distinct-files rows), a fraction arrives via peer
//     exchange without touching the server, and a few heavy-hitter peers
//     query as fast as they can with long plateaus (Figs 8–9).
package peersim

import (
	"math"
	"net/netip"
	"time"

	"repro/internal/catalog"
	"repro/internal/ed2k"
	"repro/internal/netsim"
)

// TargetFile is one advertised file peers may come looking for.
type TargetFile struct {
	Hash   ed2k.Hash
	Name   string
	Size   int64
	Weight float64 // relative arrival intensity
}

// Config tunes the population model. Durations are virtual time.
type Config struct {
	// Label seeds the population's random streams.
	Label string
	// Server is the directory server peers log into.
	Server netip.AddrPort
	// Servers, when non-empty, overrides Server: each arriving peer
	// picks one at random, modelling a population spread over several
	// directory servers (the paper's "different server for each
	// honeypot" placement strategy).
	Servers []netip.AddrPort
	// Targets returns the currently advertised files; re-polled every
	// RefreshTargets (the greedy honeypot's list grows during day one).
	Targets func() []TargetFile
	// RefreshTargets is the target-list refresh period.
	RefreshTargets time.Duration
	// Start and End bound the arrival process.
	Start, End time.Time
	// Scale multiplies arrival intensity; 1.0 reproduces paper-magnitude
	// populations, smaller values shrink campaigns proportionally.
	Scale float64
	// ArrivalsPerWeightPerDay converts target weight to arrivals/day.
	ArrivalsPerWeightPerDay float64
	// DecayPerDay multiplies intensity once per elapsed day (1 = none).
	DecayPerDay float64
	// WarmupDelay suppresses arrivals right after start (the paper saw
	// its first query after ten minutes).
	WarmupDelay time.Duration
	// DiurnalAmplitude (0..1) is the day/night swing; PeakHour is the
	// local hour of maximal activity.
	DiurnalAmplitude float64
	PeakHour         float64

	// LowIDFraction of peers cannot listen (NAT); BrowseableFraction
	// expose their shared list; PeerExchangeFraction learn sources by
	// gossip instead of the server.
	LowIDFraction        float64
	BrowseableFraction   float64
	PeerExchangeFraction float64

	// Catalog supplies peer libraries; LibraryMean sizes them;
	// LibraryRegion restricts sampling to the catalog's most popular
	// region (0 = whole catalog).
	Catalog       *catalog.Catalog
	LibraryMean   int
	LibraryRegion int

	// SecondFileProb is the chance a peer wants a second target file
	// (used when WantsMax is 0).
	SecondFileProb float64
	// WantsMax, when positive, draws the number of wanted files
	// uniformly from 1..WantsMax instead of the SecondFileProb rule.
	// The greedy campaign uses it: its per-file peer sums imply peers
	// asked for ≈3 files on average.
	WantsMax int
	// MaxSourcesPerPeer caps how many sources one peer will ever contact
	// (drives the overlap structure of Fig 10).
	MaxSourcesPerPeer int
	// SourceOrderBias biases source selection toward the head of the
	// server-returned list (clients try sources in the order received):
	// position i is preferred with weight SourceOrderBias^i. 1 = uniform.
	// This produces the large per-honeypot spread of the paper's Fig 10
	// (one honeypot saw 37k peers, another 13k).
	SourceOrderBias float64
	// RetryInterval paces re-contacts while the download is incomplete.
	RetryInterval time.Duration
	// AttemptsSilent and AttemptsContent are the per-source contact
	// budgets before implicit blacklisting — the asymmetry at the heart
	// of the paper's strategy comparison.
	AttemptsSilent  int
	AttemptsContent int
	// QuitAfterHardFails abandons the download after this many
	// consecutive totally-silent contacts.
	QuitAfterHardFails int
	// AbandonAfterJunk is the chance a peer gives up on the file
	// completely once a content-bearing source turns out to serve junk
	// (its "download" finished but failed verification).
	AbandonAfterJunk float64
	// PartTimeout is the wait for a SENDING-PART before giving up on a
	// request (constant, hence the smooth no-content curves of Fig 9).
	PartTimeout time.Duration
	// ReqSilentMin/Max and ReqContentMin/Max bound REQUEST-PART messages
	// per contact for silent and content-bearing sources.
	ReqSilentMin, ReqSilentMax   int
	ReqContentMin, ReqContentMax int
	// ActiveHours is the user's daily online window length.
	ActiveHours float64
	// ExtraDaysMean is the mean number of additional days a peer keeps
	// retrying (geometric).
	ExtraDaysMean float64

	// HeavyHitters is the number of crawler-like peers that contact every
	// source as fast as they can, forever, with occasional long pauses.
	HeavyHitters int
	// HeavyHitterRetry paces heavy-hitter rounds.
	HeavyHitterRetry time.Duration
	// HeavyFollowUp is the chance a heavy hitter immediately re-contacts
	// a source that just delivered data ("as fast as it can, provided
	// the previous query finished" — and content queries finish fast,
	// the paper's explanation for Figs 8-9's group asymmetry).
	HeavyFollowUp float64
}

// DefaultConfig returns behaviour parameters calibrated against the
// paper's aggregate statistics.
func DefaultConfig() Config {
	return Config{
		RefreshTargets:          time.Hour,
		Scale:                   1.0,
		ArrivalsPerWeightPerDay: 1.0,
		DecayPerDay:             1.0,
		WarmupDelay:             10 * time.Minute,
		DiurnalAmplitude:        0.65,
		PeakHour:                15.0,
		LowIDFraction:           0.25,
		BrowseableFraction:      0.30,
		PeerExchangeFraction:    0.05,
		LibraryMean:             15,
		SecondFileProb:          0.20,
		MaxSourcesPerPeer:       10,
		SourceOrderBias:         0.95,
		RetryInterval:           30 * time.Minute,
		AttemptsSilent:          3,
		AttemptsContent:         4,
		QuitAfterHardFails:      3,
		AbandonAfterJunk:        0.6,
		PartTimeout:             40 * time.Second,
		ReqSilentMin:            3,
		ReqSilentMax:            5,
		ReqContentMin:           2,
		ReqContentMax:           4,
		ActiveHours:             10,
		ExtraDaysMean:           1.5,
		HeavyHitters:            0,
		HeavyHitterRetry:        45 * time.Minute,
		HeavyFollowUp:           0.35,
	}
}

// Stats counts population activity.
type Stats struct {
	Arrivals     int
	PeerExchange int
	LowID        int
	NoSources    int
	Contacts     int
	HardFails    int
	Blacklists   int
	Quits        int
	Completejobs int
}

// Population drives the peer workload.
type Population struct {
	net *netsim.Network
	cfg Config

	targets   []TargetFile
	totalW    float64
	gossip    map[ed2k.Hash][]netip.AddrPort // last source lists seen, for PE
	stats     Stats
	peerSeq   int
	stopped   bool
	clientTag []string
}

// New creates a population; call Start to begin arrivals.
func New(nw *netsim.Network, cfg Config) *Population {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.MaxSourcesPerPeer <= 0 {
		cfg.MaxSourcesPerPeer = 8
	}
	return &Population{
		net:    nw,
		cfg:    cfg,
		gossip: make(map[ed2k.Hash][]netip.AddrPort),
		clientTag: []string{
			"eMule 0.49b", "aMule 2.2.2", "eMule 0.48a", "MLDonkey 2.9.5",
			"eMule 0.49a", "aMule 2.2.1", "Shareaza 2.3", "eMule 0.47c",
		},
	}
}

// Stats returns the activity counters.
func (p *Population) Stats() Stats { return p.stats }

// Stop halts further arrivals (peers already active finish naturally).
func (p *Population) Stop() { p.stopped = true }

// Start schedules the arrival process and target refreshing.
func (p *Population) Start() {
	p.refreshTargets()
	clockHost := p.net.NewHost(p.cfg.Label + "/clock")
	rng := p.net.Loop().NewRand(p.cfg.Label + "/arrivals")

	if p.cfg.RefreshTargets > 0 {
		var refresh func()
		refresh = func() {
			if p.stopped || clockHost.Now().After(p.cfg.End) {
				return
			}
			p.refreshTargets()
			clockHost.After(p.cfg.RefreshTargets, refresh)
		}
		clockHost.After(p.cfg.RefreshTargets, refresh)
	}

	// Non-homogeneous Poisson arrivals by thinning: candidates at the
	// peak rate, accepted with probability rate(t)/peak.
	var next func()
	next = func() {
		if p.stopped {
			return
		}
		now := clockHost.Now()
		if now.After(p.cfg.End) {
			return
		}
		peak := p.peakRatePerSec()
		if peak <= 0 {
			// No targets yet (greedy warm-up): look again shortly.
			clockHost.After(time.Minute, next)
			return
		}
		gap := time.Duration(rng.ExpFloat64() / peak * float64(time.Second))
		if gap > 6*time.Hour {
			gap = 6 * time.Hour // re-evaluate the rate at least every 6h
		}
		clockHost.After(gap, func() {
			now := clockHost.Now()
			if p.stopped || now.After(p.cfg.End) {
				return
			}
			if rate := p.ratePerSec(now); rate > 0 && rng.Float64() < rate/p.peakRatePerSec() {
				p.spawnPeer(rng)
			}
			next()
		})
	}
	clockHost.After(p.cfg.WarmupDelay, next)

	for i := 0; i < p.cfg.HeavyHitters; i++ {
		idx := i
		clockHost.After(p.cfg.WarmupDelay+time.Duration(idx+1)*17*time.Minute, func() {
			p.spawnHeavyHitter(rng, idx)
		})
	}
}

func (p *Population) refreshTargets() {
	if p.cfg.Targets == nil {
		return
	}
	p.targets = p.cfg.Targets()
	p.totalW = 0
	for _, t := range p.targets {
		p.totalW += t.Weight
	}
}

// ratePerSec is the arrival intensity at time t.
func (p *Population) ratePerSec(t time.Time) float64 {
	perDay := p.cfg.ArrivalsPerWeightPerDay * p.totalW * p.cfg.Scale
	if p.cfg.DecayPerDay > 0 && p.cfg.DecayPerDay != 1 {
		days := t.Sub(p.cfg.Start).Hours() / 24
		perDay *= math.Pow(p.cfg.DecayPerDay, days)
	}
	perDay *= p.diurnal(t)
	return perDay / 86400
}

func (p *Population) peakRatePerSec() float64 {
	perDay := p.cfg.ArrivalsPerWeightPerDay * p.totalW * p.cfg.Scale
	perDay *= 1 + p.cfg.DiurnalAmplitude
	return perDay / 86400
}

// diurnal is the day/night modulation: cosine with a configurable peak
// hour, mimicking the European activity profile of Fig 4.
func (p *Population) diurnal(t time.Time) float64 {
	h := float64(t.Hour()) + float64(t.Minute())/60
	phase := 2 * math.Pi * (h - p.cfg.PeakHour) / 24
	return 1 + p.cfg.DiurnalAmplitude*math.Cos(phase)
}

// pickTarget samples a target file by weight.
func (p *Population) pickTarget(rng interface{ Float64() float64 }) (TargetFile, bool) {
	if len(p.targets) == 0 || p.totalW <= 0 {
		return TargetFile{}, false
	}
	x := rng.Float64() * p.totalW
	for _, t := range p.targets {
		x -= t.Weight
		if x <= 0 {
			return t, true
		}
	}
	return p.targets[len(p.targets)-1], true
}
