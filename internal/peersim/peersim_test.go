package peersim

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/client"
	"repro/internal/des"
	"repro/internal/honeypot"
	"repro/internal/logging"
	"repro/internal/netsim"
	"repro/internal/server"
)

var t0 = time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)

func toShared(f catalog.File) client.SharedFile {
	return client.SharedFile{Hash: f.Hash, Name: f.Name, Size: f.Size, Type: f.Kind.String()}
}

type world struct {
	loop *des.Loop
	net  *netsim.Network
	srv  *server.Server
	hps  []*honeypot.Honeypot
	cat  *catalog.Catalog
	bait catalog.File
}

// newWorld builds a server plus n honeypots advertising one bait file.
func newWorld(t *testing.T, n int, strategies []honeypot.Strategy, seed int64) *world {
	t.Helper()
	loop := des.NewLoop(t0, seed)
	nw := netsim.New(loop, netsim.DefaultConfig())
	srv := server.New(nw.NewHost("server"), server.DefaultConfig("big"))
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	w := &world{loop: loop, net: nw, srv: srv}
	w.cat = catalog.Generate(catalog.Config{NumFiles: 500, Vocabulary: 200, PopularityExp: 0.9, Seed: 3})
	w.bait = w.cat.File(0)

	for i := 0; i < n; i++ {
		strat := honeypot.NoContent
		if strategies != nil {
			strat = strategies[i%len(strategies)]
		}
		hp := honeypot.New(nw.NewHost(fmt.Sprintf("hp-%d", i)), honeypot.Config{
			ID: fmt.Sprintf("hp-%d", i), Strategy: strat, Port: 4662,
			Secret: []byte("s"), BrowseContacts: true,
		})
		if err := hp.Start(srv.Addr()); err != nil {
			t.Fatal(err)
		}
		hp.Advertise(toShared(w.bait))
		w.hps = append(w.hps, hp)
	}
	loop.RunUntil(t0.Add(time.Minute))
	return w
}

// popConfig returns a small-scale population aimed at the bait file.
func (w *world) popConfig(days int) Config {
	cfg := DefaultConfig()
	cfg.Label = "pop"
	cfg.Server = w.srv.Addr()
	cfg.Start = t0
	cfg.End = t0.Add(time.Duration(days) * 24 * time.Hour)
	cfg.ArrivalsPerWeightPerDay = 60 // small but lively
	cfg.Catalog = w.cat
	cfg.Targets = func() []TargetFile {
		return []TargetFile{{Hash: w.bait.Hash, Name: w.bait.Name, Size: w.bait.Size, Weight: 1}}
	}
	return cfg
}

func (w *world) run(days int) {
	w.loop.RunUntil(t0.Add(time.Duration(days)*24*time.Hour + time.Hour))
}

func collectKinds(hps []*honeypot.Honeypot) (map[logging.Kind]int, []logging.Record) {
	kinds := map[logging.Kind]int{}
	var all []logging.Record
	for _, hp := range hps {
		recs := hp.TakeRecords()
		all = append(all, recs...)
		for _, r := range recs {
			kinds[r.Kind]++
		}
	}
	return kinds, all
}

func TestPopulationGeneratesTraffic(t *testing.T) {
	w := newWorld(t, 2, nil, 71)
	pop := New(w.net, w.popConfig(2))
	pop.Start()
	w.run(2)

	st := pop.Stats()
	if st.Arrivals < 20 {
		t.Fatalf("only %d arrivals in 2 days", st.Arrivals)
	}
	kinds, recs := collectKinds(w.hps)
	if kinds[logging.KindHello] == 0 || kinds[logging.KindStartUpload] == 0 || kinds[logging.KindRequestPart] == 0 {
		t.Errorf("missing message kinds: %v", kinds)
	}
	// START-UPLOAD should not exceed HELLO (every contact HELLOs first).
	if kinds[logging.KindStartUpload] > kinds[logging.KindHello] {
		t.Errorf("more START-UPLOAD (%d) than HELLO (%d)", kinds[logging.KindStartUpload], kinds[logging.KindHello])
	}
	// Some peers expose shared lists.
	if kinds[logging.KindSharedList] == 0 {
		t.Error("no shared lists harvested")
	}
	// Records reference the bait file.
	foundBait := false
	for _, r := range recs {
		if r.Kind == logging.KindStartUpload && r.FileHash == w.bait.Hash {
			foundBait = true
			break
		}
	}
	if !foundBait {
		t.Error("no START-UPLOAD for the bait file")
	}
}

func TestRandomContentOutdrawsNoContent(t *testing.T) {
	// The paper's central comparison (Figs 5-7): the random-content group
	// receives more REQUEST-PART messages and at least as many distinct
	// peers as the no-content group.
	w := newWorld(t, 2, []honeypot.Strategy{honeypot.RandomContent, honeypot.NoContent}, 73)
	cfg := w.popConfig(3)
	cfg.ArrivalsPerWeightPerDay = 120
	pop := New(w.net, cfg)
	pop.Start()
	w.run(3)

	reqs := make([]int, 2)
	peers := make([]map[string]bool, 2)
	for i, hp := range w.hps {
		peers[i] = map[string]bool{}
		for _, r := range hp.TakeRecords() {
			if r.Kind == logging.KindRequestPart {
				reqs[i]++
			}
			if r.Kind == logging.KindHello {
				peers[i][r.PeerIP] = true
			}
		}
	}
	if reqs[0] <= reqs[1] {
		t.Errorf("REQUEST-PART: random-content=%d, no-content=%d; want random > none", reqs[0], reqs[1])
	}
	if len(peers[0]) < len(peers[1]) {
		t.Errorf("distinct peers: random-content=%d < no-content=%d", len(peers[0]), len(peers[1]))
	}
	if pop.Stats().Blacklists == 0 {
		t.Error("no implicit blacklisting happened")
	}
}

func TestDiurnalPattern(t *testing.T) {
	w := newWorld(t, 1, nil, 77)
	cfg := w.popConfig(2)
	cfg.ArrivalsPerWeightPerDay = 400
	cfg.DiurnalAmplitude = 0.9
	pop := New(w.net, cfg)
	pop.Start()
	w.run(2)

	_, recs := collectKinds(w.hps)
	day := map[int]int{}
	night := map[int]int{}
	for _, r := range recs {
		h := r.Time.Hour()
		if h >= 11 && h < 19 { // around the 15h peak
			day[r.Time.Day()]++
		}
		if h < 5 || h >= 23 {
			night[r.Time.Day()]++
		}
	}
	dayTotal, nightTotal := 0, 0
	for _, v := range day {
		dayTotal += v
	}
	for _, v := range night {
		nightTotal += v
	}
	// Day window (8h around peak) must clearly out-produce the 6h night
	// window even after normalizing for width.
	if float64(dayTotal)/8 <= float64(nightTotal)/6 {
		t.Errorf("no day-night effect: day=%d night=%d", dayTotal, nightTotal)
	}
}

func TestNewPeersKeepArriving(t *testing.T) {
	// Fig 2/3's core observation: distinct peers grow steadily.
	w := newWorld(t, 1, nil, 79)
	cfg := w.popConfig(3)
	cfg.ArrivalsPerWeightPerDay = 100
	pop := New(w.net, cfg)
	pop.Start()
	w.run(3)

	_, recs := collectKinds(w.hps)
	byDay := map[int]map[string]bool{}
	seen := map[string]bool{}
	for _, r := range recs {
		if r.Kind != logging.KindHello {
			continue
		}
		d := int(r.Time.Sub(t0) / (24 * time.Hour))
		if seen[r.PeerIP] {
			continue
		}
		seen[r.PeerIP] = true
		if byDay[d] == nil {
			byDay[d] = map[string]bool{}
		}
		byDay[d][r.PeerIP] = true
	}
	for d := 0; d < 3; d++ {
		if len(byDay[d]) == 0 {
			t.Errorf("day %d discovered no new peers", d)
		}
	}
}

func TestWarmupDelay(t *testing.T) {
	w := newWorld(t, 1, nil, 83)
	cfg := w.popConfig(1)
	cfg.WarmupDelay = 30 * time.Minute
	pop := New(w.net, cfg)
	pop.Start()
	w.run(1)
	_, recs := collectKinds(w.hps)
	for _, r := range recs {
		if r.Time.Before(t0.Add(30 * time.Minute)) {
			t.Fatalf("record at %v before warmup end", r.Time)
		}
	}
}

func TestHostsAreReclaimed(t *testing.T) {
	w := newWorld(t, 1, nil, 87)
	cfg := w.popConfig(2)
	cfg.ArrivalsPerWeightPerDay = 150
	pop := New(w.net, cfg)
	pop.Start()
	w.run(2)
	st := pop.Stats()
	if st.Quits == 0 {
		t.Fatal("no peers quit")
	}
	// Live hosts should be far fewer than total arrivals: departed peers
	// must have been removed.
	if w.net.NumHosts() > st.Arrivals/2+10 {
		t.Errorf("hosts leak: %d live for %d arrivals", w.net.NumHosts(), st.Arrivals)
	}
}

func TestHeavyHitterDominates(t *testing.T) {
	w := newWorld(t, 2, []honeypot.Strategy{honeypot.RandomContent, honeypot.NoContent}, 89)
	cfg := w.popConfig(3)
	cfg.ArrivalsPerWeightPerDay = 40
	cfg.HeavyHitters = 1
	cfg.HeavyHitterRetry = 10 * time.Minute
	pop := New(w.net, cfg)
	pop.Start()
	w.run(3)

	_, recs := collectKinds(w.hps)
	counts := map[string]int{}
	for _, r := range recs {
		if r.Kind == logging.KindStartUpload {
			counts[r.PeerIP]++
		}
	}
	var top, second int
	for _, c := range counts {
		if c > top {
			top, second = c, top
		} else if c > second {
			second = c
		}
	}
	if top < 3*second {
		t.Errorf("no dominant heavy hitter: top=%d second=%d", top, second)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (Stats, int) {
		w := &world{}
		loop := des.NewLoop(t0, 91)
		nw := netsim.New(loop, netsim.DefaultConfig())
		srv := server.New(nw.NewHost("server"), server.DefaultConfig("big"))
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		w.loop, w.net, w.srv = loop, nw, srv
		w.cat = catalog.Generate(catalog.Config{NumFiles: 500, Vocabulary: 200, PopularityExp: 0.9, Seed: 3})
		w.bait = w.cat.File(0)
		hp := honeypot.New(nw.NewHost("hp-0"), honeypot.Config{
			ID: "hp-0", Strategy: honeypot.RandomContent, Port: 4662, Secret: []byte("s"),
		})
		if err := hp.Start(srv.Addr()); err != nil {
			t.Fatal(err)
		}
		hp.Advertise(toShared(w.bait))
		loop.RunUntil(t0.Add(time.Minute))
		pop := New(nw, w.popConfig(1))
		pop.Start()
		loop.RunUntil(t0.Add(25 * time.Hour))
		return pop.Stats(), len(hp.TakeRecords())
	}
	s1, r1 := run()
	s2, r2 := run()
	if s1 != s2 || r1 != r2 {
		t.Errorf("replay diverged: %+v/%d vs %+v/%d", s1, r1, s2, r2)
	}
}

func TestNoSourcesMeansQuietQuit(t *testing.T) {
	// Population aimed at a file nobody advertises: peers ask the server,
	// find nothing, and leave without contacting anyone.
	loop := des.NewLoop(t0, 93)
	nw := netsim.New(loop, netsim.DefaultConfig())
	srv := server.New(nw.NewHost("server"), server.DefaultConfig("big"))
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	cat := catalog.Generate(catalog.Config{NumFiles: 100, Vocabulary: 100, PopularityExp: 0.9, Seed: 4})
	cfg := DefaultConfig()
	cfg.Label = "pop"
	cfg.Server = srv.Addr()
	cfg.Start = t0
	cfg.End = t0.Add(24 * time.Hour)
	cfg.ArrivalsPerWeightPerDay = 100
	cfg.Catalog = cat
	ghost := cat.File(42)
	cfg.Targets = func() []TargetFile {
		return []TargetFile{{Hash: ghost.Hash, Name: ghost.Name, Size: ghost.Size, Weight: 1}}
	}
	pop := New(nw, cfg)
	pop.Start()
	loop.RunUntil(t0.Add(25 * time.Hour))
	st := pop.Stats()
	if st.Arrivals == 0 {
		t.Fatal("no arrivals")
	}
	if st.NoSources != st.Quits {
		t.Errorf("NoSources=%d Quits=%d; all peers should quit for lack of sources", st.NoSources, st.Quits)
	}
	if st.Contacts != 0 {
		t.Errorf("%d contacts without sources", st.Contacts)
	}
}

func TestDiurnalRateShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DiurnalAmplitude = 0.5
	cfg.PeakHour = 15
	p := &Population{cfg: cfg}
	peak := p.diurnal(time.Date(2008, 10, 1, 15, 0, 0, 0, time.UTC))
	trough := p.diurnal(time.Date(2008, 10, 1, 3, 0, 0, 0, time.UTC))
	if peak < 1.49 || peak > 1.51 {
		t.Errorf("peak = %v", peak)
	}
	if trough < 0.49 || trough > 0.51 {
		t.Errorf("trough = %v", trough)
	}
}
