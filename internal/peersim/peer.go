package peersim

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/catalog"
	"repro/internal/client"
	"repro/internal/ed2k"
	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// srcState tracks one peer's relationship with one source.
type srcState struct {
	addr        netip.AddrPort
	attempts    int
	gotData     bool
	blacklisted bool
}

// peer is one simulated eDonkey user.
type peer struct {
	pop   *Population
	rng   *rand.Rand
	id    int
	cl    *client.Client
	lowID bool
	heavy bool

	wants     []TargetFile
	sources   []*srcState
	cursor    int // rotation over silent sources: move on after failures
	hardFails int
	done      bool

	// Daily activity window.
	windowStartHour float64
	activeUntil     time.Time
	lastDayStart    time.Time
}

func (p *Population) spawnPeer(rng *rand.Rand) {
	target, ok := p.pickTarget(rng)
	if !ok {
		return
	}
	p.stats.Arrivals++
	p.peerSeq++
	id := p.peerSeq

	pe := &peer{
		pop:   p,
		id:    id,
		lowID: rng.Float64() < p.cfg.LowIDFraction,
		wants: []TargetFile{target},
	}
	pe.rng = rand.New(rand.NewSource(rng.Int63()))
	if p.cfg.WantsMax > 1 {
		n := 1 + pe.rng.Intn(p.cfg.WantsMax)
		for len(pe.wants) < n {
			t2, ok := p.pickTarget(pe.rng)
			if !ok {
				break
			}
			dup := false
			for _, w := range pe.wants {
				if w.Hash == t2.Hash {
					dup = true
					break
				}
			}
			if dup {
				break // heavy popularity skew: accept fewer wants
			}
			pe.wants = append(pe.wants, t2)
		}
	} else if p.cfg.SecondFileProb > 0 && pe.rng.Float64() < p.cfg.SecondFileProb {
		if t2, ok := p.pickTarget(pe.rng); ok && t2.Hash != target.Hash {
			pe.wants = append(pe.wants, t2)
		}
	}
	pe.start()
}

func (p *Population) spawnHeavyHitter(rng *rand.Rand, idx int) {
	target, ok := p.pickTarget(rng)
	if !ok {
		return
	}
	p.stats.Arrivals++
	p.peerSeq++
	pe := &peer{
		pop:   p,
		id:    p.peerSeq,
		heavy: true,
		wants: []TargetFile{target},
	}
	pe.rng = rand.New(rand.NewSource(rng.Int63() ^ int64(idx)))
	pe.start()
}

// start creates the host/client and begins the first session.
func (pe *peer) start() {
	p := pe.pop
	host := p.net.NewHost(fmt.Sprintf("%s/peer%d", p.cfg.Label, pe.id))
	if pe.lowID {
		p.stats.LowID++
	}
	port := uint16(4662)
	if pe.lowID {
		port = 0
	}
	browseable := pe.rng.Float64() < p.cfg.BrowseableFraction
	pe.cl = client.New(host, client.Config{
		Label:      fmt.Sprintf("peer%d", pe.id),
		UserHash:   ed2k.NewUserHash(fmt.Sprintf("%s/peer%d", p.cfg.Label, pe.id)),
		Name:       p.clientTag[pe.rng.Intn(len(p.clientTag))],
		Version:    uint32(0x30 + pe.rng.Intn(16)),
		Port:       port,
		Browseable: browseable,
		NoOffer:    true, // libraries are browse-visible, not indexed
	})
	if browseable && p.cfg.Catalog != nil && p.cfg.LibraryMean > 0 {
		pe.loadLibrary()
	}
	if !pe.lowID {
		if err := pe.cl.Listen(); err != nil {
			pe.quit()
			return
		}
	}
	pe.windowStartHour = pe.sampleWindowStart()
	now := host.Now()
	pe.lastDayStart = now
	pe.activeUntil = now.Add(time.Duration(p.cfg.ActiveHours * float64(time.Hour)))

	// Peer-exchange arrivals skip the server when gossip knows sources.
	if pe.rng.Float64() < p.cfg.PeerExchangeFraction {
		if srcs := p.gossip[pe.wants[0].Hash]; len(srcs) > 0 {
			p.stats.PeerExchange++
			pe.setSources(srcs)
			pe.nextAction(0)
			return
		}
	}
	pe.loginAndAsk()
}

// loadLibrary samples the peer's shared folder from the catalog.
func (pe *peer) loadLibrary() {
	p := pe.pop
	n := 1 + pe.rng.Intn(2*p.cfg.LibraryMean)
	var files []catalog.File
	if p.cfg.LibraryRegion > 0 && p.cfg.LibraryRegion < p.cfg.Catalog.Len() {
		// Sample within the popular region: draw until inside.
		files = make([]catalog.File, 0, n)
		seen := map[int]bool{}
		for tries := 0; len(files) < n && tries < 30*n; tries++ {
			f := p.cfg.Catalog.Sample(pe.rng)
			if f.Index < p.cfg.LibraryRegion && !seen[f.Index] {
				seen[f.Index] = true
				files = append(files, f)
			}
		}
	} else {
		files = p.cfg.Catalog.SampleLibrary(pe.rng, n)
	}
	shared := make([]client.SharedFile, 0, len(files))
	for _, f := range files {
		shared = append(shared, client.SharedFile{Hash: f.Hash, Name: f.Name, Size: f.Size, Type: f.Kind.String()})
	}
	pe.cl.Share(shared...)
}

// sampleWindowStart picks the hour the peer's user comes online, biased
// toward the diurnal peak.
func (pe *peer) sampleWindowStart() float64 {
	p := pe.pop
	for i := 0; i < 8; i++ {
		h := pe.rng.Float64() * 24
		w := 1 + p.cfg.DiurnalAmplitude*math.Cos(2*math.Pi*(h-p.cfg.PeakHour)/24)
		if pe.rng.Float64()*(1+p.cfg.DiurnalAmplitude) < w {
			return h
		}
	}
	return p.cfg.PeakHour
}

// loginAndAsk connects to the peer's directory server and requests
// sources for the wanted files.
func (pe *peer) loginAndAsk() {
	p := pe.pop
	asked := 0
	server := p.cfg.Server
	if len(p.cfg.Servers) > 0 {
		server = p.cfg.Servers[pe.rng.Intn(len(p.cfg.Servers))]
	}
	pe.cl.ConnectServer(server, client.ServerHooks{
		OnConnected: func(id ed2k.ClientID) {
			for _, w := range pe.wants {
				pe.cl.GetSources(w.Hash)
			}
		},
		OnSources: func(h ed2k.Hash, srcs []wire.Endpoint) {
			asked++
			eps := make([]netip.AddrPort, 0, len(srcs))
			for _, s := range srcs {
				if ap := s.AddrPort(); ap.IsValid() {
					eps = append(eps, ap)
				}
			}
			if len(eps) > 0 {
				p.gossip[h] = eps // feed peer exchange
			}
			pe.setSources(eps)
			if asked == len(pe.wants) {
				if len(pe.sources) == 0 {
					p.stats.NoSources++
					pe.quit()
					return
				}
				pe.nextAction(0)
			}
		},
		OnDisconnected: func(err error) {},
	})
}

// setSources merges newly learned sources, bounded by MaxSourcesPerPeer
// (heavy hitters take everything). Selection is biased toward the head
// of the list: real clients work through sources in the order the server
// returned them, so providers that registered early receive more
// contacts (the spread visible in the paper's Fig 10).
func (pe *peer) setSources(eps []netip.AddrPort) {
	limit := pe.pop.cfg.MaxSourcesPerPeer
	if pe.heavy {
		limit = 1 << 30
	}
	bias := pe.pop.cfg.SourceOrderBias
	if bias <= 0 || bias > 1 {
		bias = 1
	}
	remaining := make([]int, len(eps))
	for i := range remaining {
		remaining[i] = i
	}
	for len(remaining) > 0 && len(pe.sources) < limit {
		// Weighted draw without replacement: weight bias^origPos.
		total := 0.0
		for _, orig := range remaining {
			total += pow(bias, orig)
		}
		x := pe.rng.Float64() * total
		pick := 0
		for j, orig := range remaining {
			x -= pow(bias, orig)
			if x <= 0 {
				pick = j
				break
			}
		}
		ep := eps[remaining[pick]]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		dup := false
		for _, s := range pe.sources {
			if s.addr == ep {
				dup = true
				break
			}
		}
		if !dup {
			pe.sources = append(pe.sources, &srcState{addr: ep})
		}
	}
}

func pow(b float64, n int) float64 {
	if b == 1 {
		return 1
	}
	return math.Pow(b, float64(n))
}

// nextAction schedules the next contact round, respecting the user's
// daily window.
func (pe *peer) nextAction(delay time.Duration) {
	if pe.done {
		return
	}
	host := pe.cl.Host()
	now := host.Now().Add(delay)
	if now.After(pe.pop.cfg.End) {
		pe.quit()
		return
	}
	if now.After(pe.activeUntil) {
		if !pe.scheduleNextDay() {
			return
		}
		delay = pe.activeUntil.Add(-time.Duration(pe.pop.cfg.ActiveHours * float64(time.Hour))).Sub(host.Now())
		if delay < 0 {
			delay = 0
		}
	}
	host.After(delay, pe.round)
}

// scheduleNextDay decides whether the user comes back tomorrow; heavy
// hitters always return (after a plateau-inducing pause).
func (pe *peer) scheduleNextDay() bool {
	p := pe.pop
	cont := p.cfg.ExtraDaysMean / (1 + p.cfg.ExtraDaysMean)
	if pe.heavy {
		cont = 1.0
	}
	if pe.rng.Float64() >= cont {
		pe.quit()
		return false
	}
	skip := 1
	if pe.heavy && pe.rng.Float64() < 0.25 {
		skip += 1 + pe.rng.Intn(3) // multi-day plateau
	}
	pe.lastDayStart = pe.lastDayStart.Add(time.Duration(skip) * 24 * time.Hour)
	start := pe.lastDayStart
	winLen := time.Duration(p.cfg.ActiveHours * float64(time.Hour))
	if pe.heavy {
		winLen = 16 * time.Hour
	}
	pe.activeUntil = start.Add(winLen)
	return true
}

// round contacts up to a few non-blacklisted sources, then reschedules.
func (pe *peer) round() {
	if pe.done {
		return
	}
	now := pe.cl.Host().Now()
	if now.After(pe.pop.cfg.End) {
		pe.quit()
		return
	}
	if now.After(pe.activeUntil) {
		pe.nextAction(0)
		return
	}
	batch := 1 + pe.rng.Intn(3)
	if pe.heavy {
		batch = len(pe.sources)
	}
	// Source selection models the paper's observed client behaviour:
	// a source that has been delivering data keeps the peer engaged
	// ("sticky" — the user believes the download progresses), while
	// silent sources make the client rotate to the next candidate.
	var targets []*srcState
	if !pe.heavy {
		for _, s := range pe.sources {
			if !s.blacklisted && s.gotData {
				targets = append(targets, s)
				if len(targets) >= batch {
					break
				}
			}
		}
	}
	if len(targets) == 0 {
		n := len(pe.sources)
		for i := 0; i < n && len(targets) < batch; i++ {
			s := pe.sources[(pe.cursor+i)%n]
			if !s.blacklisted {
				targets = append(targets, s)
			}
		}
		pe.cursor++
	} else if pe.rng.Float64() < 0.25 {
		// Real clients query sources in parallel: even while engaged with
		// a content-bearing source, poke one silent candidate too.
		n := len(pe.sources)
		for i := 0; i < n; i++ {
			s := pe.sources[(pe.cursor+i)%n]
			if !s.blacklisted && !s.gotData {
				targets = append(targets, s)
				pe.cursor++
				break
			}
		}
	}
	if len(targets) == 0 {
		// All sources blacklisted: the download is hopeless.
		pe.quit()
		return
	}
	for _, s := range targets {
		pe.contact(s)
	}
	retry := pe.pop.cfg.RetryInterval
	if pe.heavy {
		retry = pe.pop.cfg.HeavyHitterRetry
	}
	jitter := 0.75 + pe.rng.Float64()*0.5
	pe.nextAction(time.Duration(float64(retry) * jitter))
}

// contact performs one full exchange with a source: dial, HELLO,
// START-UPLOAD, a bounded burst of REQUEST-PART messages, close.
func (pe *peer) contact(s *srcState) {
	p := pe.pop
	p.stats.Contacts++
	s.attempts++
	want := pe.wants[pe.rng.Intn(len(pe.wants))]

	pe.cl.DialPeer(s.addr, func(ps *client.PeerSession, err error) {
		if err != nil {
			pe.contactDone(s, true)
			return
		}
		budget := pe.reqBudget(s)
		sent := 0
		gotData := false
		offset := uint32(pe.rng.Intn(64)) * uint32(ed2k.BlockSize)
		var timeout transport.Timer
		var step func()
		finish := func() {
			if timeout != nil {
				timeout.Stop()
			}
			ps.Close()
			s.gotData = s.gotData || gotData
			pe.contactDone(s, !gotData)
		}
		step = func() {
			if ps.Closed() || pe.done {
				return
			}
			if sent >= budget {
				finish()
				return
			}
			sent++
			start := offset + uint32(sent)*uint32(ed2k.BlockSize)
			ps.RequestParts(want.Hash, [2]uint32{start, start + uint32(ed2k.BlockSize)})
			// Arm the part timeout: constant for silent sources (this is
			// what makes the no-content curves smooth).
			timeout = pe.cl.Host().After(p.cfg.PartTimeout, func() {
				if ps.Closed() || pe.done {
					return
				}
				step() // no data in time: next request or finish
			})
		}
		ps.SetHooks(client.PeerHooks{
			OnHelloAnswer: func(client.PeerInfo) {
				ps.StartUpload(want.Hash)
			},
			OnAcceptUpload: func() {
				step()
			},
			OnQueueRank: func(uint32) {
				finish() // queued: come back later
			},
			OnSendingPart: func(part *wire.SendingPart) {
				gotData = true
				if timeout != nil {
					timeout.Stop()
				}
				// Content-paced: simulate transfer/verify delay before the
				// next request (variable, unlike the timeout path).
				d := time.Duration(2+pe.rng.Intn(14)) * time.Second
				pe.cl.Host().After(d, func() {
					if !ps.Closed() && !pe.done {
						step()
					}
				})
			},
			OnClose: func(error) {},
		})
		ps.SendHello()
		// Whole-contact guard: if the handshake itself stalls, give up.
		pe.cl.Host().After(p.cfg.PartTimeout*time.Duration(budget+2), func() {
			if !ps.Closed() && !pe.done {
				finish()
			}
		})
	})
}

// reqBudget draws the REQUEST-PART budget for one contact, larger when
// the source has been feeding us data. Heavy hitters pipeline uniformly.
func (pe *peer) reqBudget(s *srcState) int {
	p := pe.pop
	if s.gotData && !pe.heavy {
		span := p.cfg.ReqContentMax - p.cfg.ReqContentMin
		if span <= 0 {
			return p.cfg.ReqContentMin
		}
		return p.cfg.ReqContentMin + pe.rng.Intn(span+1)
	}
	span := p.cfg.ReqSilentMax - p.cfg.ReqSilentMin
	if span <= 0 {
		return p.cfg.ReqSilentMin
	}
	return p.cfg.ReqSilentMin + pe.rng.Intn(span+1)
}

// contactDone applies the blacklisting and quitting rules.
func (pe *peer) contactDone(s *srcState, hard bool) {
	if pe.done {
		return
	}
	p := pe.pop
	if hard {
		p.stats.HardFails++
		pe.hardFails++
		if !pe.heavy && s.attempts >= p.cfg.AttemptsSilent {
			s.blacklisted = true
			p.stats.Blacklists++
		}
	} else {
		pe.hardFails = 0
		if pe.heavy {
			// Heavy hitters chain queries to responsive sources: a
			// content query completes quickly, so the next one starts
			// right away (the paper's Figs 8-9 asymmetry).
			if pe.rng.Float64() < p.cfg.HeavyFollowUp {
				gap := time.Duration(1+pe.rng.Intn(3)) * time.Minute
				pe.cl.Host().After(gap, func() {
					if !pe.done && pe.cl.Host().Now().Before(pe.activeUntil) {
						pe.contact(s)
					}
				})
			}
		} else if s.attempts >= p.cfg.AttemptsContent {
			s.blacklisted = true
			p.stats.Blacklists++
			// The peer "completed" chunks of junk and the hash check
			// failed: many users give up on the file entirely instead of
			// hunting further sources.
			if pe.rng.Float64() < p.cfg.AbandonAfterJunk {
				pe.quit()
				return
			}
		}
	}
	if !pe.heavy && pe.hardFails >= p.cfg.QuitAfterHardFails {
		pe.quit()
	}
}

// quit removes the peer from the world and frees its resources.
func (pe *peer) quit() {
	if pe.done {
		return
	}
	pe.done = true
	pe.pop.stats.Quits++
	if pe.cl != nil {
		pe.cl.Close()
		if h, ok := pe.cl.Host().(*netsim.Host); ok {
			h.Crash()
			pe.pop.net.RemoveHost(h.Addr())
		}
	}
}
