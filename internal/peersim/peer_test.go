package peersim

import (
	"math/rand"
	"net/netip"
	"testing"
)

// newBarePeer builds a peer with just enough state for unit-testing the
// pure decision logic.
func newBarePeer(cfg Config, seed int64) *peer {
	return &peer{
		pop: &Population{cfg: cfg},
		rng: rand.New(rand.NewSource(seed)),
	}
}

func addrN(i int) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}), 4662)
}

func TestSetSourcesRespectsLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSourcesPerPeer = 3
	pe := newBarePeer(cfg, 1)
	eps := make([]netip.AddrPort, 10)
	for i := range eps {
		eps[i] = addrN(i)
	}
	pe.setSources(eps)
	if len(pe.sources) != 3 {
		t.Errorf("sources = %d, want limit 3", len(pe.sources))
	}
}

func TestSetSourcesDeduplicates(t *testing.T) {
	cfg := DefaultConfig()
	pe := newBarePeer(cfg, 2)
	pe.setSources([]netip.AddrPort{addrN(0), addrN(1)})
	pe.setSources([]netip.AddrPort{addrN(1), addrN(2)})
	seen := map[netip.AddrPort]bool{}
	for _, s := range pe.sources {
		if seen[s.addr] {
			t.Fatalf("duplicate source %v", s.addr)
		}
		seen[s.addr] = true
	}
	if len(pe.sources) != 3 {
		t.Errorf("sources = %d", len(pe.sources))
	}
}

func TestSetSourcesHeadBias(t *testing.T) {
	// With bias < 1, list-head sources must be picked first far more often
	// than tail sources — the mechanism behind Fig 10's per-honeypot
	// spread.
	cfg := DefaultConfig()
	cfg.MaxSourcesPerPeer = 1
	cfg.SourceOrderBias = 0.7
	headFirst := 0
	const trials = 2000
	eps := make([]netip.AddrPort, 12)
	for i := range eps {
		eps[i] = addrN(i)
	}
	for trial := 0; trial < trials; trial++ {
		pe := newBarePeer(cfg, int64(trial))
		pe.setSources(eps)
		if pe.sources[0].addr == eps[0] {
			headFirst++
		}
	}
	// Head weight 1 vs total Σ0.7^i ≈ 3.24 → expect ≈31%; uniform would
	// give 8.3%.
	frac := float64(headFirst) / trials
	if frac < 0.2 {
		t.Errorf("head picked first only %.1f%% of trials; bias broken", 100*frac)
	}

	// Sanity: bias 1 should be near uniform.
	cfg.SourceOrderBias = 1
	headFirst = 0
	for trial := 0; trial < trials; trial++ {
		pe := newBarePeer(cfg, int64(trial))
		pe.setSources(eps)
		if pe.sources[0].addr == eps[0] {
			headFirst++
		}
	}
	frac = float64(headFirst) / trials
	if frac > 0.15 {
		t.Errorf("uniform selection picks head %.1f%% of trials", 100*frac)
	}
}

func TestHeavySourcesUnlimited(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSourcesPerPeer = 2
	pe := newBarePeer(cfg, 3)
	pe.heavy = true
	eps := make([]netip.AddrPort, 24)
	for i := range eps {
		eps[i] = addrN(i)
	}
	pe.setSources(eps)
	if len(pe.sources) != 24 {
		t.Errorf("heavy hitter has %d sources, want all 24", len(pe.sources))
	}
}

func TestReqBudgetRanges(t *testing.T) {
	cfg := DefaultConfig()
	pe := newBarePeer(cfg, 4)
	silent := &srcState{}
	content := &srcState{gotData: true}
	for i := 0; i < 200; i++ {
		if b := pe.reqBudget(silent); b < cfg.ReqSilentMin || b > cfg.ReqSilentMax {
			t.Fatalf("silent budget %d outside [%d,%d]", b, cfg.ReqSilentMin, cfg.ReqSilentMax)
		}
		if b := pe.reqBudget(content); b < cfg.ReqContentMin || b > cfg.ReqContentMax {
			t.Fatalf("content budget %d outside [%d,%d]", b, cfg.ReqContentMin, cfg.ReqContentMax)
		}
	}
	// Heavy hitters pipeline uniformly: content sources use silent range.
	pe.heavy = true
	for i := 0; i < 50; i++ {
		if b := pe.reqBudget(content); b < cfg.ReqSilentMin || b > cfg.ReqSilentMax {
			t.Fatalf("heavy content budget %d outside silent range", b)
		}
	}
}

func TestPickTargetWeighting(t *testing.T) {
	p := &Population{cfg: DefaultConfig()}
	p.targets = []TargetFile{
		{Weight: 9.0},
		{Weight: 1.0},
	}
	p.totalW = 10.0
	rng := rand.New(rand.NewSource(5))
	first := 0
	const draws = 5000
	for i := 0; i < draws; i++ {
		tf, ok := p.pickTarget(rng)
		if !ok {
			t.Fatal("pickTarget failed")
		}
		if tf.Weight == 9.0 {
			first++
		}
	}
	frac := float64(first) / draws
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("heavy target drawn %.1f%%, want ≈90%%", 100*frac)
	}
}

func TestPickTargetEmpty(t *testing.T) {
	p := &Population{cfg: DefaultConfig()}
	if _, ok := p.pickTarget(rand.New(rand.NewSource(1))); ok {
		t.Error("pickTarget on empty targets must fail")
	}
}

func TestSampleWindowStartBiasedTowardPeak(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DiurnalAmplitude = 0.9
	cfg.PeakHour = 15
	pe := newBarePeer(cfg, 6)
	near, far := 0, 0
	for i := 0; i < 3000; i++ {
		h := pe.sampleWindowStart()
		if h < 0 || h >= 24 {
			t.Fatalf("window start %v out of range", h)
		}
		d := h - 15
		if d < 0 {
			d = -d
		}
		if d > 12 {
			d = 24 - d
		}
		if d <= 4 {
			near++
		}
		if d >= 8 {
			far++
		}
	}
	if near <= far {
		t.Errorf("window starts not peak-biased: near=%d far=%d", near, far)
	}
}
