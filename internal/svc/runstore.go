package svc

// The service plane's persistent run store. Every campaign the daemon
// accepts becomes a Run: an ID, the submitted spec (rewritten so all
// collection output lands under the run's own directory), an optional
// analysis plan, and a state machine
//
//	queued → running → done | failed | aborted
//
// persisted as runs/<id>/run.json under the store root (atomic
// temp+rename on every transition, like the logstore's manifest). The
// anonymized dataset itself is a logstore under runs/<id>/dataset — the
// long-lived artifact queries execute against — so a finished run
// survives a daemon restart intact: metadata, campaign meta and dataset
// all reload from disk. Runs that were queued or running when the
// process died are marked failed on reopen (their partial spill is
// still on disk for forensics, but no result was ever finalized).

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/scenario"
)

// State is one station of the run lifecycle.
type State string

// Run states.
const (
	// StateQueued: accepted and persisted, waiting for a worker slot.
	StateQueued State = "queued"
	// StateRunning: a worker is executing the campaign.
	StateRunning State = "running"
	// StateDone: the campaign finished and its dataset is queryable.
	StateDone State = "done"
	// StateFailed: the campaign errored (or the daemon died mid-run);
	// Run.Error says why. Failed runs serve no queries.
	StateFailed State = "failed"
	// StateAborted: a DELETE stopped the campaign early; the partial
	// dataset (records collected before the abort) is queryable.
	StateAborted State = "aborted"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateAborted
}

// RunSummary is the finished campaign's headline numbers, persisted so
// listings stay meaningful across restarts.
type RunSummary struct {
	// Events is the simulation event count; Records the dataset size
	// (frame rows); DistinctPeers the campaign's distinct-peer count.
	Events        uint64 `json:"events"`
	Records       int    `json:"records"`
	DistinctPeers int    `json:"distinct_peers"`
	// ExportedRecords counts records persisted in the run's dataset
	// logstore (equals Records unless the export itself degraded).
	ExportedRecords uint64 `json:"exported_records"`
	// CollectionGaps / DroppedRecords carry the campaign's degradation
	// audit (see scenario.Result).
	CollectionGaps map[string]int `json:"collection_gaps,omitempty"`
	DroppedRecords uint64         `json:"dropped_records,omitempty"`
	// Faults counts executed fault-schedule entries.
	Faults int `json:"faults,omitempty"`
	// Aborted + AbortedAt mirror the Result's early-stop marker.
	Aborted   bool      `json:"aborted,omitempty"`
	AbortedAt time.Time `json:"aborted_at,omitzero"`
	// WallSeconds is the campaign's wall-clock execution time.
	WallSeconds float64 `json:"wall_seconds"`
}

// Run is one tracked campaign. The struct is plain data (it marshals to
// run.json and over the HTTP API); runtime state — the progress
// notifier, the abort flag, the per-run metrics registry, the cached
// frame — lives in the Service, keyed by ID.
type Run struct {
	// ID is the store-unique run identifier ("flash-crowd-000003").
	ID string `json:"id"`
	// Spec is the campaign as executed: the submitted spec with its
	// collection rewritten onto the run directory (streamed finalize,
	// dataset export, spill under the run dir when the spec needs disk).
	Spec scenario.Spec `json:"spec"`
	// Plan, when the submission carried one, is the default analysis for
	// POST /runs/{id}/query with an empty body.
	Plan *analysis.Plan `json:"plan,omitempty"`
	// State is the lifecycle station; Error is set when it is "failed".
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// Created, Started and Finished stamp the transitions.
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	// DatasetDir is the run's anonymized dataset logstore.
	DatasetDir string `json:"dataset_dir"`
	// Meta is the campaign's analysis metadata, persisted at completion
	// so queries work after a daemon restart.
	Meta *analysis.CampaignMeta `json:"meta,omitempty"`
	// Summary is the finished campaign's headline numbers.
	Summary *RunSummary `json:"summary,omitempty"`
}

// Queryable reports whether the run has a dataset queries may execute
// against: done always, aborted for its partial dataset.
func (r *Run) Queryable() bool {
	return r.State == StateDone || r.State == StateAborted
}

// RunStore is the persistent run index. All mutation goes through
// Update, which persists before returning, so the on-disk state never
// trails the in-memory one by more than one in-flight transition.
type RunStore struct {
	root string

	mu   sync.Mutex
	runs map[string]*Run
	seq  int
}

// interruptedError marks runs found queued/running at store open.
const interruptedError = "daemon stopped while the run was in flight"

// OpenRunStore opens (creating if needed) the store rooted at root and
// reloads every persisted run. Runs interrupted by a daemon stop —
// still queued or running on disk — are marked failed.
func OpenRunStore(root string) (*RunStore, error) {
	s := &RunStore{root: root, runs: make(map[string]*Run)}
	if err := os.MkdirAll(s.runsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("svc: creating run store: %w", err)
	}
	entries, err := os.ReadDir(s.runsDir())
	if err != nil {
		return nil, fmt.Errorf("svc: reading run store: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		path := filepath.Join(s.runsDir(), e.Name(), "run.json")
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // a run dir that never got metadata; skip
			}
			return nil, fmt.Errorf("svc: reading %s: %w", path, err)
		}
		var r Run
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("svc: decoding %s: %w", path, err)
		}
		if r.ID != e.Name() {
			return nil, fmt.Errorf("svc: run dir %q holds metadata for %q", e.Name(), r.ID)
		}
		if !r.State.Terminal() {
			r.State = StateFailed
			r.Error = interruptedError
			if r.Finished.IsZero() {
				r.Finished = time.Now().UTC()
			}
			if err := s.persist(&r); err != nil {
				return nil, err
			}
		}
		s.runs[r.ID] = &r
		if seq := trailingSeq(r.ID); seq > s.seq {
			s.seq = seq
		}
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *RunStore) Root() string { return s.root }

func (s *RunStore) runsDir() string      { return filepath.Join(s.root, "runs") }
func (s *RunStore) runDir(id string) string { return filepath.Join(s.runsDir(), id) }

// DatasetDir is where a run's anonymized dataset logstore lives.
func (s *RunStore) DatasetDir(id string) string {
	return filepath.Join(s.runDir(id), "dataset")
}

// SpillDir is where a run's raw spill logstore lives, for specs that
// need one (disk-fault schedules, explicit store_dir requests).
func (s *RunStore) SpillDir(id string) string {
	return filepath.Join(s.runDir(id), "spill")
}

// trailingSeq parses the numeric suffix of "<name>-<seq>" IDs so a
// reopened store resumes its counter past every existing run.
func trailingSeq(id string) int {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return 0
	}
	n := 0
	for _, c := range id[i+1:] {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// sanitizeName reduces a campaign name to a filesystem- and URL-safe
// run-ID prefix.
func sanitizeName(name string) string {
	var b strings.Builder
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "run"
	}
	return b.String()
}

// Create allocates a queued run for spec and persists it. rewrite, when
// set, runs after the ID is allocated and before anything is persisted
// — the service uses it to pin the spec's collection paths onto the
// run's own directories.
func (s *RunStore) Create(spec scenario.Spec, plan *analysis.Plan, rewrite func(id string, spec *scenario.Spec)) (Run, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	id := fmt.Sprintf("%s-%06d", sanitizeName(spec.Name), s.seq)
	if _, dup := s.runs[id]; dup {
		return Run{}, fmt.Errorf("svc: run ID %q already exists", id)
	}
	if rewrite != nil {
		rewrite(id, &spec)
	}
	r := &Run{
		ID:         id,
		Spec:       spec,
		Plan:       plan,
		State:      StateQueued,
		Created:    time.Now().UTC(),
		DatasetDir: s.DatasetDir(id),
	}
	if err := os.MkdirAll(s.runDir(id), 0o755); err != nil {
		return Run{}, fmt.Errorf("svc: creating run dir: %w", err)
	}
	if err := s.persist(r); err != nil {
		return Run{}, err
	}
	s.runs[id] = r
	return *r, nil
}

// Get returns a copy of the run. Mutation discipline: Update replaces
// pointer fields (Summary, Meta) wholesale and never mutates what a
// previously returned copy shares, so copies are race-free to read.
func (s *RunStore) Get(id string) (Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		return Run{}, false
	}
	return *r, true
}

// List returns a copy of every run, oldest first (creation order; ties
// break by ID, which embeds the allocation sequence).
func (s *RunStore) List() []Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Run, 0, len(s.runs))
	for _, r := range s.runs {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.Before(out[j].Created)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Update applies fn to the run under the store lock and persists the
// result before returning. fn must replace (not mutate) shared pointer
// fields; see Get.
func (s *RunStore) Update(id string, fn func(*Run)) (Run, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		return Run{}, fmt.Errorf("svc: unknown run %q", id)
	}
	fn(r)
	if err := s.persist(r); err != nil {
		return Run{}, err
	}
	return *r, nil
}

// persist writes run.json atomically (temp + rename), the same
// durability move as the logstore manifest: a crash mid-write leaves
// the previous metadata intact, never a torn file.
func (s *RunStore) persist(r *Run) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("svc: encoding run %s: %w", r.ID, err)
	}
	data = append(data, '\n')
	dir := s.runDir(r.ID)
	tmp, err := os.CreateTemp(dir, "run.json.tmp*")
	if err != nil {
		return fmt.Errorf("svc: persisting run %s: %w", r.ID, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("svc: persisting run %s: %w", r.ID, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("svc: persisting run %s: %w", r.ID, err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, "run.json")); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("svc: persisting run %s: %w", r.ID, err)
	}
	return nil
}
