package svc

// The SSE fan-out hub: one Notifier per run carries the engine's
// Progress snapshots to every subscribed client. Publishing never
// blocks the campaign — a slow subscriber's buffer drops its oldest
// snapshot, so each client sees a (still monotonic) subsequence of the
// progress stream. Closing the notifier ends every subscription; the
// HTTP layer then emits the run's terminal state as the final event.

import (
	"sync"
	"time"

	"repro/internal/scenario"
)

// subscriberBuffer is each subscriber's channel depth. Snapshots beyond
// it drop oldest-first, so a stalled client never backs the engine up.
const subscriberBuffer = 64

// ProgressEvent is one SSE "progress" payload: the engine's Progress
// snapshot flattened to wire-friendly JSON. Seq increases by one per
// published snapshot of the run, so clients can detect drops.
type ProgressEvent struct {
	// Seq numbers the snapshot within its run, from 1.
	Seq uint64 `json:"seq"`
	// SimTime is the engine's virtual clock; SimElapsedS / SimTotalS
	// measure the campaign window in virtual seconds (the total includes
	// the finalize drain when the run is aborted early, so Percent never
	// exceeds 100).
	SimTime     time.Time `json:"sim_time"`
	SimElapsedS float64   `json:"sim_elapsed_s"`
	SimTotalS   float64   `json:"sim_total_s"`
	Percent     float64   `json:"percent"`
	// WallS is the wall-clock seconds since the campaign started.
	WallS float64 `json:"wall_s"`
	// Events counts simulation events executed; EventsPerSec is the rate
	// since the previous snapshot.
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_s"`
	// Records sums the fleet's collected records; FleetUp / FleetDown
	// split the fleet by the manager's health view.
	Records   int `json:"records"`
	FleetUp   int `json:"fleet_up"`
	FleetDown int `json:"fleet_down"`
	// Final marks the engine's last snapshot (emitted after the campaign
	// or its abort stopped the populations).
	Final bool `json:"final"`
}

// progressEvent flattens one engine snapshot.
func progressEvent(seq uint64, p scenario.Progress) ProgressEvent {
	total := p.SimElapsed + p.SimEnd.Sub(p.SimTime)
	elapsed := p.SimElapsed
	if elapsed > total {
		elapsed = total // the finalize drain runs past campaign end
	}
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(elapsed) / float64(total)
	}
	return ProgressEvent{
		Seq:          seq,
		SimTime:      p.SimTime,
		SimElapsedS:  elapsed.Seconds(),
		SimTotalS:    total.Seconds(),
		Percent:      pct,
		WallS:        p.Wall.Seconds(),
		Events:       p.Events,
		EventsPerSec: p.EventsPerSec,
		Records:      p.RecordsCollected,
		FleetUp:      p.FleetUp,
		FleetDown:    p.FleetDown,
		Final:        p.Final,
	}
}

// Notifier broadcasts one run's progress stream.
type Notifier struct {
	mu     sync.Mutex
	seq    uint64
	last   *ProgressEvent
	subs   map[chan ProgressEvent]struct{}
	closed bool
}

// NewNotifier returns an open notifier with no subscribers.
func NewNotifier() *Notifier {
	return &Notifier{subs: make(map[chan ProgressEvent]struct{})}
}

// Publish numbers and broadcasts one snapshot. A subscriber whose
// buffer is full loses its oldest pending snapshot, never the newest.
func (n *Notifier) Publish(p scenario.Progress) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.seq++
	e := progressEvent(n.seq, p)
	n.last = &e
	for ch := range n.subs {
		for {
			select {
			case ch <- e:
			default:
				// Full: drop the oldest pending event and retry. The drain
				// cannot livelock — this goroutine holds the only sender.
				select {
				case <-ch:
				default:
				}
				continue
			}
			break
		}
	}
}

// Subscribe registers a listener and returns its event channel plus a
// cancel function. The run's latest snapshot (if any) is replayed
// immediately, so a late subscriber sees state without waiting a whole
// cadence period. The channel closes when the run finishes (or the
// subscription is canceled); subscribing to an already-closed notifier
// yields the replayed last snapshot and an immediately-closed channel.
func (n *Notifier) Subscribe() (<-chan ProgressEvent, func()) {
	ch := make(chan ProgressEvent, subscriberBuffer)
	n.mu.Lock()
	if n.last != nil {
		ch <- *n.last
	}
	if n.closed {
		close(ch)
		n.mu.Unlock()
		return ch, func() {}
	}
	n.subs[ch] = struct{}{}
	n.mu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			n.mu.Lock()
			if _, ok := n.subs[ch]; ok {
				delete(n.subs, ch)
				close(ch)
			}
			n.mu.Unlock()
		})
	}
	return ch, cancel
}

// Close ends the stream: every subscriber's channel is closed after any
// already-buffered events drain. Idempotent.
func (n *Notifier) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	for ch := range n.subs {
		close(ch)
	}
	n.subs = nil
}
