package svc

// Package svc is the campaign service plane: a Service owns a
// persistent RunStore, a bounded pool of campaign workers, a per-run
// telemetry registry and progress notifier, and a per-run cached
// columnar frame for on-demand analysis — the machinery behind
// cmd/measured's HTTP API.
//
// The paper's measurement infrastructure was operated as a long-lived
// distributed campaign, not a one-shot CLI run (cf. Aidouni et al.'s
// ten-week rolling eDonkey capture); the service plane is that
// operating mode: campaigns are submitted as data (scenario.Spec),
// tracked through a queued → running → done/failed/aborted lifecycle,
// observable mid-flight (SSE progress), abortable into partial
// results, and queryable on demand (analysis.Plan against the run's
// logstore-resident dataset) for as long as the run store keeps them.
//
// Correctness hinges on two invariants the lower layers pin with
// tests: the engine tap never perturbs a campaign (a tapped run's
// dataset is record-for-record identical), and the streamed finalize
// is bit-identical to the materialized one — so a run executed by the
// daemon reports exactly what the same spec and seed produce under
// cmd/measure.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/calibrate"
	"repro/internal/logstore"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrNotFound: no run with that ID.
	ErrNotFound = errors.New("svc: run not found")
	// ErrBusy: the submission queue is full.
	ErrBusy = errors.New("svc: run queue full")
	// ErrClosed: the service is shutting down.
	ErrClosed = errors.New("svc: service closed")
	// ErrTerminal: the run already finished (abort target).
	ErrTerminal = errors.New("svc: run already finished")
	// ErrNotQueryable: the run has no queryable dataset (still in
	// flight, or failed).
	ErrNotQueryable = errors.New("svc: run has no queryable dataset")
)

// Config parameterizes a Service.
type Config struct {
	// DataDir is the run store root (required).
	DataDir string
	// Workers bounds concurrently executing campaigns (default 2).
	Workers int
	// QueueDepth bounds accepted-but-not-started runs (default 256).
	QueueDepth int
	// SimEvery is the progress cadence in virtual time
	// (default: the engine's, one virtual hour).
	SimEvery time.Duration
	// WallEvery throttles progress emission per wall clock
	// (default 200ms; <0 disables throttling).
	WallEvery time.Duration
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

// liveRun is the runtime state of a run in this process: its progress
// notifier, its abort flag and its telemetry registry. Terminal runs
// keep theirs (closed notifier, final metrics) until the daemon exits;
// runs reloaded from disk after a restart have none.
type liveRun struct {
	notifier *Notifier
	reg      *obs.Registry
	abort    atomic.Bool
}

// frameCache is a run's lazily built columnar frame. The executing
// worker seeds it with the frame the streamed finalize already built;
// a run reloaded after a restart rebuilds it from the dataset logstore
// on first query.
type frameCache struct {
	mu     sync.Mutex
	loaded bool
	frame  *analysis.Frame
	meta   analysis.CampaignMeta
}

// svcMetrics is the daemon-level registry's pre-resolved counter set.
type svcMetrics struct {
	submitted *obs.Counter // svc.runs.submitted
	started   *obs.Counter // svc.runs.started
	done      *obs.Counter // svc.runs.done
	failed    *obs.Counter // svc.runs.failed
	aborted   *obs.Counter // svc.runs.aborted
	queued    *obs.Gauge   // svc.queue.depth
	running   *obs.Gauge   // svc.runs.running
}

// Service is the campaign service plane.
type Service struct {
	cfg   Config
	store *RunStore
	reg   *obs.Registry // daemon-level registry (Attach mounts it)
	sm    svcMetrics

	mu     sync.Mutex
	live   map[string]*liveRun
	frames map[string]*frameCache
	queue  chan string
	closed bool

	wg sync.WaitGroup
}

// Open builds a Service over cfg.DataDir and starts its worker pool.
func Open(cfg Config) (*Service, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("svc: Config.DataDir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.WallEvery == 0 {
		cfg.WallEvery = 200 * time.Millisecond
	} else if cfg.WallEvery < 0 {
		cfg.WallEvery = 0
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	store, err := OpenRunStore(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	reg := obs.New()
	s := &Service{
		cfg:   cfg,
		store: store,
		reg:   reg,
		sm: svcMetrics{
			submitted: reg.Counter("svc.runs.submitted"),
			started:   reg.Counter("svc.runs.started"),
			done:      reg.Counter("svc.runs.done"),
			failed:    reg.Counter("svc.runs.failed"),
			aborted:   reg.Counter("svc.runs.aborted"),
			queued:    reg.Gauge("svc.queue.depth"),
			running:   reg.Gauge("svc.runs.running"),
		},
		live:   make(map[string]*liveRun),
		frames: make(map[string]*frameCache),
		queue:  make(chan string, cfg.QueueDepth),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Registry returns the daemon-level metrics registry.
func (s *Service) Registry() *obs.Registry { return s.reg }

// Store returns the run store (read-side access for the HTTP layer).
func (s *Service) Store() *RunStore { return s.store }

// Scenarios lists the registered scenario names, sorted.
func (s *Service) Scenarios() []string { return scenario.Names() }

// Queries lists the registered analysis query names, sorted.
func (s *Service) Queries() []string { return analysis.Names() }

// rewrite pins a submitted spec's collection to the run's own
// directories: the finalize always streams (Result.Frame is the query
// substrate), the anonymized dataset always exports to the run's
// dataset logstore, and any spill the spec needs (an explicit
// store_dir request, or a disk-fault schedule, which only has meaning
// against a real store) lands under the run dir. Client-supplied paths
// never touch the daemon's filesystem.
func (s *Service) rewrite(id string, spec *scenario.Spec) {
	needSpill := spec.Collection.StoreDir != ""
	for _, f := range spec.Faults {
		if f.Kind == scenario.FaultDiskIOError {
			needSpill = true
		}
	}
	spec.Collection.Stream = true
	spec.Collection.ExportDir = s.store.DatasetDir(id)
	spec.Collection.StoreDir = ""
	if needSpill {
		spec.Collection.StoreDir = s.store.SpillDir(id)
	}
}

// Submit validates spec (as the daemon will run it), persists a queued
// run and hands it to the worker pool. The optional plan becomes the
// run's default analysis.
func (s *Service) Submit(spec scenario.Spec, plan *analysis.Plan) (Run, error) {
	if plan != nil {
		for _, pq := range plan.Queries {
			if _, err := analysis.Lookup(pq.Name); err != nil {
				return Run{}, err
			}
		}
	}
	// Validate the spec in its rewritten form — the one that will run —
	// so e.g. a disk-fault schedule passes (the daemon supplies the
	// spill dir a standalone spec would have to carry).
	probe := spec
	s.rewrite("probe", &probe)
	if err := probe.Validate(); err != nil {
		return Run{}, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Run{}, ErrClosed
	}
	run, err := s.store.Create(spec, plan, s.rewrite)
	if err != nil {
		s.mu.Unlock()
		return Run{}, err
	}
	s.live[run.ID] = &liveRun{notifier: NewNotifier(), reg: obs.New()}
	select {
	case s.queue <- run.ID:
	default:
		// Queue full: never leave a phantom queued run behind.
		delete(s.live, run.ID)
		s.mu.Unlock()
		run, uerr := s.store.Update(run.ID, func(r *Run) {
			r.State = StateFailed
			r.Error = ErrBusy.Error()
			r.Finished = time.Now().UTC()
		})
		if uerr != nil {
			return run, uerr
		}
		return run, ErrBusy
	}
	s.mu.Unlock()
	s.sm.submitted.Inc()
	s.sm.queued.Set(int64(len(s.queue)))
	s.cfg.Logf("run %s: queued (%s, seed %d, scale %g)", run.ID, run.Spec.Name, run.Spec.Seed, run.Spec.Scale)
	return run, nil
}

// Run returns one run's current state.
func (s *Service) Run(id string) (Run, error) {
	run, ok := s.store.Get(id)
	if !ok {
		return Run{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return run, nil
}

// Runs lists every tracked run, oldest first.
func (s *Service) Runs() []Run { return s.store.List() }

// Metrics returns a run's telemetry registry, or an error for runs
// whose in-process telemetry is gone (daemon restarted since).
func (s *Service) Metrics(id string) (*obs.Registry, error) {
	if _, ok := s.store.Get(id); !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	s.mu.Lock()
	lr := s.live[id]
	s.mu.Unlock()
	if lr == nil {
		return nil, fmt.Errorf("%w: telemetry for %q not retained across daemon restarts", ErrNotFound, id)
	}
	return lr.reg, nil
}

// Abort asks a queued or running campaign to stop cleanly: the engine
// finalizes the records collected so far into a partial result and the
// run lands in StateAborted. Aborting a terminal run is ErrTerminal.
func (s *Service) Abort(id string) (Run, error) {
	run, ok := s.store.Get(id)
	if !ok {
		return Run{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if run.State.Terminal() {
		return run, ErrTerminal
	}
	s.mu.Lock()
	lr := s.live[id]
	s.mu.Unlock()
	if lr == nil {
		// Non-terminal with no live state can only mean a store raced a
		// restart; treat as not found rather than hang the caller.
		return Run{}, fmt.Errorf("%w: %q has no live campaign", ErrNotFound, id)
	}
	lr.abort.Store(true)
	s.cfg.Logf("run %s: abort requested", id)
	return run, nil
}

// Subscribe returns a run's progress event stream and a cancel
// function. The stream replays the latest snapshot immediately and
// closes when the run reaches a terminal state (for an already
// terminal run, or one reloaded from disk, it is closed on arrival
// after any replay).
func (s *Service) Subscribe(id string) (<-chan ProgressEvent, func(), error) {
	run, ok := s.store.Get(id)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	s.mu.Lock()
	lr := s.live[id]
	s.mu.Unlock()
	if lr == nil {
		// Reloaded run: no live stream. Hand back an already-closed
		// channel; the HTTP layer then emits the terminal event.
		_ = run
		ch := make(chan ProgressEvent)
		close(ch)
		return ch, func() {}, nil
	}
	ch, cancel := lr.notifier.Subscribe()
	return ch, cancel, nil
}

// Query executes an analysis plan against a finished run's dataset.
// Plan precedence: the explicit plan argument, else the plan submitted
// with the run, else the campaign's full paper plan. The frame is
// cached per run: the first query after a restart streams the dataset
// logstore once, later queries reuse it.
func (s *Service) Query(id string, plan *analysis.Plan) (analysis.ReportSet, error) {
	run, ok := s.store.Get(id)
	if !ok {
		return analysis.ReportSet{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if !run.Queryable() {
		return analysis.ReportSet{}, fmt.Errorf("%w: run %q is %s", ErrNotQueryable, id, run.State)
	}
	frame, meta, err := s.frameFor(run)
	if err != nil {
		return analysis.ReportSet{}, err
	}
	p := plan
	if p == nil {
		p = run.Plan
	}
	if p == nil {
		// The full paper menu, seeded like repro.DefaultAnalyzeOptions.
		pp := analysis.PaperPlan(meta, analysis.QueryOptions{Seed: 1})
		p = &pp
	}
	return analysis.Exec(frame, meta, *p)
}

// Rerun re-submits a persisted run's spec (and default plan) as a new
// run — the building block for calibration sweeps over seeds. The
// stored spec already carries the old run's collection paths; Submit's
// rewrite re-pins them onto the new run's directory, so reruns never
// touch the original dataset.
func (s *Service) Rerun(id string) (Run, error) {
	run, ok := s.store.Get(id)
	if !ok {
		return Run{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return s.Submit(run.Spec, run.Plan)
}

// Calibrate diffs a finished run's artifacts against an observed
// dataset (nil = the built-in paper dataset), reusing the run's cached
// frame — the service face of cmd/measure -calibrate. The run's
// persisted campaign scale normalizes the expectations; a campaign the
// dataset does not cover is calibrate.ErrUnknownCampaign.
func (s *Service) Calibrate(id string, ds *calibrate.Dataset) (calibrate.Report, error) {
	run, ok := s.store.Get(id)
	if !ok {
		return calibrate.Report{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if !run.Queryable() {
		return calibrate.Report{}, fmt.Errorf("%w: run %q is %s", ErrNotQueryable, id, run.State)
	}
	frame, meta, err := s.frameFor(run)
	if err != nil {
		return calibrate.Report{}, err
	}
	if ds == nil {
		ds = calibrate.PaperObserved()
	}
	plan, err := ds.Plan(meta.Name, analysis.QueryOptions{Seed: 1})
	if err != nil {
		return calibrate.Report{}, err
	}
	rs, err := analysis.Exec(frame, meta, plan)
	if err != nil {
		return calibrate.Report{}, err
	}
	return calibrate.Diff(meta.Name, meta.Scale, rs, ds)
}

// frameFor returns the run's cached frame, building it from the
// dataset logstore when this process has not seen it yet.
func (s *Service) frameFor(run Run) (*analysis.Frame, analysis.CampaignMeta, error) {
	s.mu.Lock()
	fc := s.frames[run.ID]
	if fc == nil {
		fc = &frameCache{}
		s.frames[run.ID] = fc
	}
	s.mu.Unlock()

	fc.mu.Lock()
	defer fc.mu.Unlock()
	if fc.loaded {
		return fc.frame, fc.meta, nil
	}
	if run.Meta == nil {
		return nil, analysis.CampaignMeta{}, fmt.Errorf("%w: run %q has no campaign metadata", ErrNotQueryable, run.ID)
	}
	store, err := logstore.Open(run.DatasetDir, logstore.Options{})
	if err != nil {
		return nil, analysis.CampaignMeta{}, fmt.Errorf("svc: opening dataset for %s: %w", run.ID, err)
	}
	defer store.Close()
	it, err := store.Iterator()
	if err != nil {
		return nil, analysis.CampaignMeta{}, fmt.Errorf("svc: scanning dataset for %s: %w", run.ID, err)
	}
	defer it.Close()
	frame, err := analysis.BuildFrameIter(it)
	if err != nil {
		return nil, analysis.CampaignMeta{}, fmt.Errorf("svc: building frame for %s: %w", run.ID, err)
	}
	fc.frame, fc.meta, fc.loaded = frame, *run.Meta, true
	s.cfg.Logf("run %s: dataset frame rebuilt from %s (%d records)", run.ID, run.DatasetDir, frame.Len())
	return fc.frame, fc.meta, nil
}

// seedFrame caches the frame the finalize already built, so the first
// query pays nothing.
func (s *Service) seedFrame(id string, frame *analysis.Frame, meta analysis.CampaignMeta) {
	if frame == nil {
		return
	}
	s.mu.Lock()
	s.frames[id] = &frameCache{loaded: true, frame: frame, meta: meta}
	s.mu.Unlock()
}

// worker executes queued runs until the queue closes.
func (s *Service) worker() {
	defer s.wg.Done()
	for id := range s.queue {
		s.sm.queued.Set(int64(len(s.queue)))
		s.execute(id)
	}
}

// execute drives one run through its lifecycle.
func (s *Service) execute(id string) {
	s.mu.Lock()
	lr := s.live[id]
	s.mu.Unlock()
	if lr == nil {
		return // cannot happen: enqueue and live-map insert are atomic
	}
	finish := func(fn func(*Run)) Run {
		run, err := s.store.Update(id, fn)
		if err != nil {
			s.cfg.Logf("run %s: persisting final state: %v", id, err)
		}
		// Terminal state lands in the store before subscribers see the
		// stream end, so an SSE handler reading the run after channel
		// close always observes the final state.
		lr.notifier.Close()
		return run
	}

	if lr.abort.Load() {
		// Aborted while still queued: nothing ran, nothing was collected.
		s.sm.aborted.Inc()
		finish(func(r *Run) {
			r.State = StateAborted
			r.Finished = time.Now().UTC()
			r.Summary = &RunSummary{Aborted: true}
		})
		s.cfg.Logf("run %s: aborted before start", id)
		return
	}

	run, err := s.store.Update(id, func(r *Run) {
		r.State = StateRunning
		r.Started = time.Now().UTC()
	})
	if err != nil {
		s.cfg.Logf("run %s: %v", id, err)
		return
	}
	s.sm.started.Inc()
	s.sm.running.Add(1)
	defer s.sm.running.Add(-1)
	s.cfg.Logf("run %s: running", id)

	start := time.Now()
	res, err := scenario.RunWith(run.Spec, scenario.RunOptions{
		SimEvery:  s.cfg.SimEvery,
		WallEvery: s.cfg.WallEvery,
		Metrics:   lr.reg,
		Progress: func(p scenario.Progress) bool {
			lr.notifier.Publish(p)
			return !lr.abort.Load()
		},
	})
	wall := time.Since(start)
	if err != nil {
		s.sm.failed.Inc()
		finish(func(r *Run) {
			r.State = StateFailed
			r.Error = err.Error()
			r.Finished = time.Now().UTC()
		})
		s.cfg.Logf("run %s: failed after %v: %v", id, wall.Round(time.Millisecond), err)
		return
	}

	meta := res.Meta()
	summary := &RunSummary{
		Events:          res.Events,
		DistinctPeers:   res.Dataset.DistinctPeers,
		ExportedRecords: res.ExportedRecords,
		CollectionGaps:  res.CollectionGaps,
		DroppedRecords:  res.DroppedRecords,
		Faults:          len(res.Faults),
		Aborted:         res.Aborted,
		AbortedAt:       res.AbortedAt,
		WallSeconds:     wall.Seconds(),
	}
	if res.Frame != nil {
		summary.Records = res.Frame.Len()
	}
	s.seedFrame(id, res.Frame, meta)
	state := StateDone
	if res.Aborted {
		state = StateAborted
		s.sm.aborted.Inc()
	} else {
		s.sm.done.Inc()
	}
	finish(func(r *Run) {
		r.State = state
		r.Finished = time.Now().UTC()
		r.Meta = &meta
		r.Summary = summary
	})
	s.cfg.Logf("run %s: %s after %v (%d records, %d distinct peers, %d events)",
		id, state, wall.Round(time.Millisecond), summary.Records, summary.DistinctPeers, summary.Events)
}

// Close stops accepting submissions, aborts every in-flight campaign
// (queued runs become aborted without executing; running campaigns
// finalize partial results) and waits for the pool to drain.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, lr := range s.live {
		lr.abort.Store(true)
	}
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}
