package svc

// Service-plane tests: the acceptance pins for the daemon. A run
// submitted over HTTP reports byte-identically to the same spec and
// seed executed in process; two campaigns running concurrently in one
// daemon both do; SSE progress is monotonic; DELETE aborts into a
// queryable partial result; the run store survives a restart.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/calibrate"
	"repro/internal/catalog"
	"repro/internal/scenario"
)

// testSpec builds a unit-test-sized two-honeypot campaign.
func testSpec(name string, seed int64, arrivalsPerDay float64, days int) scenario.Spec {
	return scenario.Spec{
		Name:     name,
		Seed:     seed,
		Days:     days,
		Scale:    1.0,
		Catalog:  catalog.Config{NumFiles: 1500, Vocabulary: 300, PopularityExp: 0.9, Seed: 3},
		Topology: scenario.Topology{Servers: 2},
		Fleet: []scenario.HoneypotSpec{
			{ID: "hp-a", Strategy: "random-content", Server: 0, Files: scenario.FilesSpec{Kind: "four-bait"}},
			{ID: "hp-b", Strategy: "no-content", Server: 1, Files: scenario.FilesSpec{Kind: "songs", N: 2}},
		},
		Workloads: []scenario.WorkloadSpec{{
			Label:          name + "-wl",
			ArrivalsPerDay: arrivalsPerDay,
			Servers:        []int{0, 1},
			Targets:        scenario.TargetsSpec{Kind: "static"},
		}},
		Collection: scenario.Collection{Every: scenario.Duration(time.Hour)},
	}
}

// localReport runs the spec in process — the cmd/measure plan path:
// execute, then Exec the plan against the frame — and returns the
// report in measure's exact -report encoding.
func localReport(t *testing.T, spec scenario.Spec, plan analysis.Plan) []byte {
	t.Helper()
	spec.Collection.Stream = true // frame-producing finalize, pinned identical to materialized
	res, err := scenario.Run(spec)
	if err != nil {
		t.Fatalf("local run %s: %v", spec.Name, err)
	}
	rs, err := analysis.Exec(res.Frame, res.Meta(), plan)
	if err != nil {
		t.Fatalf("local exec %s: %v", spec.Name, err)
	}
	data, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// newTestService boots a Service over a temp run store plus an HTTP
// server and client around it.
func newTestService(t *testing.T, cfg Config) (*Service, *Client) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(s))
	t.Cleanup(func() {
		s.Close()
		srv.Close()
	})
	return s, NewClient(srv.URL)
}

// TestConcurrentRunsByteParityWithLocal is the tentpole pin: two
// different campaigns submitted over HTTP and executed concurrently by
// one daemon each produce a report byte-identical to the same spec and
// seed run in process.
func TestConcurrentRunsByteParityWithLocal(t *testing.T) {
	specA := testSpec("svc-parity-a", 7, 60, 2)
	specB := testSpec("svc-parity-b", 11, 90, 2)
	plan := analysis.NewPlan(analysis.QueryOptions{Seed: 1}, "table-i", "peer-growth", "hourly-hello")
	wantA := localReport(t, specA, plan)
	wantB := localReport(t, specB, plan)

	_, client := newTestService(t, Config{Workers: 2, WallEvery: -1})
	ctx := context.Background()

	// Submit both before waiting on either, so the two-worker pool runs
	// them concurrently.
	runA, err := client.Submit(ctx, SubmitRequest{Spec: &specA, Plan: &plan})
	if err != nil {
		t.Fatal(err)
	}
	runB, err := client.Submit(ctx, SubmitRequest{Spec: &specB, Plan: &plan})
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []Run{runA, runB} {
		final, err := client.Events(ctx, run.ID, nil)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != StateDone {
			t.Fatalf("run %s finished %s (%s)", run.ID, final.State, final.Error)
		}
		if final.Summary == nil || final.Summary.Records == 0 {
			t.Fatalf("run %s has no summary records: %+v", run.ID, final.Summary)
		}
	}

	// Empty body: the daemon falls back to the plan submitted with each
	// run.
	gotA, err := client.Query(ctx, runA.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := client.Query(ctx, runB.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotA, wantA) {
		t.Errorf("run A report differs from local run\nhttp:  %d bytes\nlocal: %d bytes", len(gotA), len(wantA))
	}
	if !bytes.Equal(gotB, wantB) {
		t.Errorf("run B report differs from local run\nhttp:  %d bytes\nlocal: %d bytes", len(gotB), len(wantB))
	}

	// An explicit plan in the query body overrides the run's own.
	sub := analysis.NewPlan(analysis.QueryOptions{Seed: 1}, "table-i")
	gotSub, err := client.Query(ctx, runA.ID, sub)
	if err != nil {
		t.Fatal(err)
	}
	wantSub := localReport(t, specA, sub)
	if !bytes.Equal(gotSub, wantSub) {
		t.Error("explicit query plan differs from local run")
	}
}

// TestSSEProgressMonotonic pins the stream contract: seq strictly
// increases, events and percent never go backwards, and the stream
// terminates with the run's final state.
func TestSSEProgressMonotonic(t *testing.T) {
	spec := testSpec("svc-sse", 3, 60, 2)
	_, client := newTestService(t, Config{Workers: 1, SimEvery: 3 * time.Hour, WallEvery: -1})
	ctx := context.Background()

	run, err := client.Submit(ctx, SubmitRequest{Spec: &spec})
	if err != nil {
		t.Fatal(err)
	}
	var events []ProgressEvent
	final, err := client.Events(ctx, run.ID, func(e ProgressEvent) { events = append(events, e) })
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("run finished %s (%s)", final.State, final.Error)
	}
	if len(events) < 3 {
		t.Fatalf("only %d progress events for a %d-day campaign at 3h cadence", len(events), spec.Days)
	}
	for i := 1; i < len(events); i++ {
		prev, cur := events[i-1], events[i]
		if cur.Seq <= prev.Seq {
			t.Errorf("event %d: seq %d did not advance past %d", i, cur.Seq, prev.Seq)
		}
		if cur.Events < prev.Events {
			t.Errorf("event %d: events went backwards (%d -> %d)", i, prev.Events, cur.Events)
		}
		if cur.Percent < prev.Percent {
			t.Errorf("event %d: percent went backwards (%g -> %g)", i, prev.Percent, cur.Percent)
		}
		if cur.Percent < 0 || cur.Percent > 100 {
			t.Errorf("event %d: percent %g out of range", i, cur.Percent)
		}
	}
	if !events[len(events)-1].Final {
		t.Error("last progress event not marked final")
	}
}

// TestDeleteAbortsIntoPartialResult pins the abort path over HTTP: a
// DELETE mid-campaign lands the run in "aborted" with the Aborted
// marker set, and the partial dataset still serves queries.
func TestDeleteAbortsIntoPartialResult(t *testing.T) {
	// Long and busy enough that the abort always lands mid-flight: 30
	// days at a 1h progress cadence is ~720 chunks.
	spec := testSpec("svc-abort", 5, 120, 30)
	_, client := newTestService(t, Config{Workers: 1, SimEvery: time.Hour, WallEvery: -1})
	ctx := context.Background()

	run, err := client.Submit(ctx, SubmitRequest{Spec: &spec})
	if err != nil {
		t.Fatal(err)
	}
	aborted := false
	final, err := client.Events(ctx, run.ID, func(e ProgressEvent) {
		if !aborted && e.Seq >= 2 {
			aborted = true
			if _, err := client.Abort(ctx, run.ID); err != nil {
				t.Errorf("abort: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateAborted {
		t.Fatalf("run finished %s, want aborted (%s)", final.State, final.Error)
	}
	if final.Summary == nil || !final.Summary.Aborted {
		t.Fatalf("summary missing the Aborted marker: %+v", final.Summary)
	}
	if final.Summary.AbortedAt.IsZero() {
		t.Error("AbortedAt not set")
	}
	end := scenario.CampaignStart.AddDate(0, 0, spec.Days)
	if !final.Summary.AbortedAt.Before(end) {
		t.Errorf("AbortedAt %v not before campaign end %v — not a partial result", final.Summary.AbortedAt, end)
	}

	// The partial dataset is queryable.
	report, err := client.Query(ctx, run.ID, analysis.NewPlan(analysis.QueryOptions{Seed: 1}, "table-i"))
	if err != nil {
		t.Fatalf("querying aborted run: %v", err)
	}
	if !json.Valid(report) {
		t.Error("aborted-run report is not valid JSON")
	}

	// A second DELETE on the now-terminal run is a conflict.
	if _, err := client.Abort(ctx, run.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("aborting a terminal run: got %v, want HTTP 409", err)
	}
}

// TestSubmitRewritesCollectionPaths pins the isolation rule: whatever
// collection paths a client submits, the executed spec's spill and
// export land under the run's own directory in the store.
func TestSubmitRewritesCollectionPaths(t *testing.T) {
	dataDir := t.TempDir()
	s, _ := newTestService(t, Config{DataDir: dataDir, Workers: 1})

	spec := testSpec("svc-paths", 2, 40, 2)
	spec.Collection.StoreDir = "/tmp/evil-spill"
	spec.Collection.ExportDir = "/tmp/evil-export"
	run, err := s.Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := run.Spec.Collection
	if !c.Stream {
		t.Error("daemon run not forced onto the streaming finalize")
	}
	if !strings.HasPrefix(c.ExportDir, dataDir) {
		t.Errorf("export dir %q escaped the run store %q", c.ExportDir, dataDir)
	}
	if !strings.HasPrefix(c.StoreDir, dataDir) {
		t.Errorf("spill dir %q escaped the run store %q", c.StoreDir, dataDir)
	}
	// A spec that asks for no spill gets none.
	run2, err := s.Submit(testSpec("svc-nospill", 2, 40, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if run2.Spec.Collection.StoreDir != "" {
		t.Errorf("spill dir %q materialized out of nowhere", run2.Spec.Collection.StoreDir)
	}
}

// TestRunStoreRecovery pins restart semantics: terminal runs reload
// intact, in-flight runs are marked failed, the ID sequence resumes
// past every existing run, and a finished run's dataset still serves
// queries from a fresh process (frame rebuilt from the logstore).
func TestRunStoreRecovery(t *testing.T) {
	dataDir := t.TempDir()
	spec := testSpec("svc-recover", 9, 60, 2)
	plan := analysis.NewPlan(analysis.QueryOptions{Seed: 1}, "table-i", "peer-growth")
	want := localReport(t, spec, plan)

	s1, err := Open(Config{DataDir: dataDir, Workers: 1, WallEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	run, err := s1.Submit(spec, &plan)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s1, run.ID)
	// Leave a phantom in-flight run behind, simulating a daemon killed
	// mid-campaign.
	phantom, err := s1.Store().Create(testSpec("svc-phantom", 1, 40, 2), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{DataDir: dataDir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Run(run.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone || got.Meta == nil || got.Summary == nil {
		t.Fatalf("finished run did not survive the restart: %+v", got)
	}
	ph, err := s2.Run(phantom.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ph.State != StateFailed || ph.Error != interruptedError {
		t.Errorf("interrupted run reloaded as %s (%q), want failed (%q)", ph.State, ph.Error, interruptedError)
	}

	// Query the reloaded run: the frame rebuilds from the dataset
	// logstore and the report bytes are unchanged.
	rs, err := s2.Query(run.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if !bytes.Equal(data, want) {
		t.Error("reloaded run's report differs from the pre-restart one")
	}

	// New IDs continue past the reloaded sequence.
	next, err := s2.Submit(testSpec("svc-next", 1, 40, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(next.ID, "-000003") {
		t.Errorf("sequence did not resume: new run ID %q", next.ID)
	}
	waitTerminal(t, s2, next.ID)
}

// waitTerminal subscribes to a run and blocks until it finishes.
func waitTerminal(t *testing.T, s *Service, id string) Run {
	t.Helper()
	ch, cancel, err := s.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	deadline := time.After(2 * time.Minute)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				run, err := s.Run(id)
				if err != nil {
					t.Fatal(err)
				}
				if !run.State.Terminal() {
					t.Fatalf("stream closed but run %s is %s", id, run.State)
				}
				return run
			}
		case <-deadline:
			t.Fatalf("run %s did not finish in time", id)
		}
	}
}

// TestHTTPErrorMapping pins the API's error statuses.
func TestHTTPErrorMapping(t *testing.T) {
	_, client := newTestService(t, Config{Workers: 1})
	ctx := context.Background()

	if _, err := client.Run(ctx, "no-such-run"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown run: got %v, want HTTP 404", err)
	}
	if _, err := client.Submit(ctx, SubmitRequest{Scenario: "no-such-scenario"}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("unknown scenario: got %v, want HTTP 400", err)
	}
	if _, err := client.Submit(ctx, SubmitRequest{}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("empty submission: got %v, want HTTP 400", err)
	}
	spec := testSpec("svc-badplan", 1, 40, 2)
	badPlan := analysis.Plan{Queries: []analysis.PlanQuery{{Name: "no-such-query"}}}
	if _, err := client.Submit(ctx, SubmitRequest{Spec: &spec, Plan: &badPlan}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("unknown plan query: got %v, want HTTP 400", err)
	}
	bad := testSpec("svc-badspec", 1, 40, 2)
	bad.Days = 0
	if _, err := client.Submit(ctx, SubmitRequest{Spec: &bad}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("invalid spec: got %v, want HTTP 400", err)
	}
}

// TestRegistryEndpoints pins that /scenarios and /queries serve the
// sorted registries — the service face of the deterministic-listing
// satellite.
func TestRegistryEndpoints(t *testing.T) {
	_, client := newTestService(t, Config{Workers: 1})
	ctx := context.Background()

	scens, err := client.Scenarios(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) == 0 || !equalStrings(scens, scenario.Names()) {
		t.Errorf("GET /scenarios = %v, want %v", scens, scenario.Names())
	}
	queries, err := client.Queries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) == 0 || !equalStrings(queries, analysis.Names()) {
		t.Errorf("GET /queries = %v, want %v", queries, analysis.Names())
	}

	// The daemon debug surface is attached to the same server.
	resp, err := http.Get(client.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /metrics status %d", resp.StatusCode)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRerun pins the rerun endpoint: re-submitting a finished run's
// spec yields a new run whose report is byte-identical to the
// original's — same spec, same seed, same artifacts.
func TestRerun(t *testing.T) {
	spec := testSpec("svc-rerun", 13, 60, 2)
	plan := analysis.NewPlan(analysis.QueryOptions{Seed: 1}, "table-i", "peer-growth")

	s, client := newTestService(t, Config{Workers: 1, WallEvery: -1})
	ctx := context.Background()
	orig, err := client.Submit(ctx, SubmitRequest{Spec: &spec, Plan: &plan})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, orig.ID)
	origReport, err := client.Query(ctx, orig.ID, nil)
	if err != nil {
		t.Fatal(err)
	}

	again, err := client.Rerun(ctx, orig.ID)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID == orig.ID {
		t.Fatalf("rerun reused the run ID %q", orig.ID)
	}
	if fin := waitTerminal(t, s, again.ID); fin.State != StateDone {
		t.Fatalf("rerun finished %s: %s", fin.State, fin.Error)
	}
	againReport, err := client.Query(ctx, again.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(origReport, againReport) {
		t.Error("rerun report differs from the original run's")
	}

	if _, err := client.Rerun(ctx, "no-such-run"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("rerun of unknown run: got %v, want HTTP 404", err)
	}
}

// TestCalibrateEndpoint pins POST /runs/{id}/calibrate: a dataset
// covering the run's campaign diffs against the cached frame and the
// report's Pass flag carries the verdict; an empty body selects the
// built-in paper dataset, which does not cover a test campaign and so
// surfaces ErrUnknownCampaign as a 400.
func TestCalibrateEndpoint(t *testing.T) {
	spec := testSpec("svc-cal", 19, 60, 2)
	s, client := newTestService(t, Config{Workers: 1, WallEvery: -1})
	ctx := context.Background()
	run, err := client.Submit(ctx, SubmitRequest{Spec: &spec})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, run.ID)

	ds := &calibrate.Dataset{Version: 4, Campaigns: map[string]*calibrate.CampaignObserved{
		"svc-cal": {Expect: []calibrate.Expectation{
			{Query: "table-i", Metric: "honeypots", Check: calibrate.CheckValue, Value: 2},
			{Query: "peer-growth", Series: "cumulative", Check: calibrate.CheckNonDecreasing},
		}},
	}}
	rep, err := client.Calibrate(ctx, run.ID, ds)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.Passed != 2 || rep.Campaign != "svc-cal" || rep.DatasetVersion != 4 {
		t.Fatalf("calibration report %+v, want 2 passes for svc-cal v4", rep)
	}

	// An out-of-tolerance dataset still answers 200 — the verdict lives
	// in the report, not the status.
	bad := &calibrate.Dataset{Version: 5, Campaigns: map[string]*calibrate.CampaignObserved{
		"svc-cal": {Expect: []calibrate.Expectation{
			{Query: "table-i", Metric: "honeypots", Check: calibrate.CheckValue, Value: 99},
		}},
	}}
	rep, err = client.Calibrate(ctx, run.ID, bad)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass || len(rep.Failing()) != 1 || rep.Failing()[0].Label() != "table-i/honeypots" {
		t.Fatalf("doctored calibration = %+v, want one failure naming table-i/honeypots", rep)
	}

	if _, err := client.Calibrate(ctx, run.ID, nil); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("built-in dataset vs test campaign: got %v, want HTTP 400", err)
	}
	if _, err := client.Calibrate(ctx, "no-such-run", ds); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("calibrate of unknown run: got %v, want HTTP 404", err)
	}
}
