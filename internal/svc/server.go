package svc

// The HTTP face of the Service: a net/http handler exposing the run
// lifecycle (submit, list, inspect, abort), the SSE progress stream,
// on-demand analysis, the registries, and the process debug surface.
//
//	GET    /healthz            liveness probe
//	GET    /scenarios          registered scenario names (sorted)
//	GET    /queries            registered analysis query names (sorted)
//	GET    /runs               every tracked run, oldest first
//	POST   /runs               submit a campaign (SubmitRequest)
//	GET    /runs/{id}          one run's current state
//	DELETE /runs/{id}          abort a queued/running campaign
//	GET    /runs/{id}/events   SSE progress stream until terminal
//	POST   /runs/{id}/query    execute an analysis.Plan (empty body =
//	                           the run's plan, else the full paper plan)
//	POST   /runs/{id}/rerun    re-submit the run's spec as a new run
//	POST   /runs/{id}/calibrate diff the run's artifacts against an
//	                           observed dataset (empty body = the
//	                           built-in paper dataset)
//	GET    /runs/{id}/metrics  the run's telemetry registry snapshot
//	GET    /metrics            daemon-level registry (via obs.Attach)
//	GET    /debug/vars|pprof/  expvar + pprof   (via obs.Attach)
//
// Report bytes from /runs/{id}/query are exactly cmd/measure's -report
// encoding (json.MarshalIndent + trailing newline), so the CI smoke job
// can diff the two byte-for-byte.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/analysis"
	"repro/internal/calibrate"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// SubmitRequest is the POST /runs body. Exactly one of Scenario (a
// registered name) or Spec (a full campaign spec) selects the campaign;
// Scale and Seed then adjust it; Plan becomes the run's default
// analysis.
type SubmitRequest struct {
	// Scenario names a registered scenario (see GET /scenarios).
	Scenario string `json:"scenario,omitempty"`
	// Spec is a complete campaign spec, mutually exclusive with Scenario.
	Spec *scenario.Spec `json:"spec,omitempty"`
	// Scale multiplies the selected spec's own scale when > 0, exactly
	// like cmd/measure's -scale flag.
	Scale float64 `json:"scale,omitempty"`
	// Seed, when present, overrides the spec's seed.
	Seed *int64 `json:"seed,omitempty"`
	// Plan is the run's default analysis plan (optional).
	Plan *analysis.Plan `json:"plan,omitempty"`
}

// errorBody is every non-2xx response's JSON shape.
type errorBody struct {
	Error string `json:"error"`
}

// Handler builds the service's HTTP mux, including the obs debug
// surface (daemon registry at /metrics, expvar, pprof).
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	obs.Attach(mux, s.Registry())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /scenarios", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"scenarios": s.Scenarios()})
	})
	mux.HandleFunc("GET /queries", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"queries": s.Queries()})
	})
	mux.HandleFunc("GET /runs", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]Run{"runs": s.Runs()})
	})
	mux.HandleFunc("POST /runs", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(s, w, r)
	})
	mux.HandleFunc("GET /runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		run, err := s.Run(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, run)
	})
	mux.HandleFunc("DELETE /runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		run, err := s.Abort(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, run)
	})
	mux.HandleFunc("GET /runs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		handleEvents(s, w, r)
	})
	mux.HandleFunc("POST /runs/{id}/query", func(w http.ResponseWriter, r *http.Request) {
		handleQuery(s, w, r)
	})
	mux.HandleFunc("POST /runs/{id}/rerun", func(w http.ResponseWriter, r *http.Request) {
		run, err := s.Rerun(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, run)
	})
	mux.HandleFunc("POST /runs/{id}/calibrate", func(w http.ResponseWriter, r *http.Request) {
		handleCalibrate(s, w, r)
	})
	mux.HandleFunc("GET /runs/{id}/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg, err := s.Metrics(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		obs.MetricsHandler(reg)(w, r)
	})
	return mux
}

// handleSubmit decodes a SubmitRequest, resolves the spec and queues
// the run. 201 with the queued run on success.
func handleSubmit(s *Service, w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("decoding request: %v", err)})
		return
	}
	var spec scenario.Spec
	switch {
	case req.Scenario != "" && req.Spec != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{`"scenario" and "spec" are mutually exclusive`})
		return
	case req.Scenario != "":
		var err error
		spec, err = scenario.Lookup(req.Scenario)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
			return
		}
	case req.Spec != nil:
		spec = *req.Spec
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{`one of "scenario" or "spec" is required`})
		return
	}
	if req.Scale < 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{`"scale" must be positive`})
		return
	}
	if req.Scale > 0 {
		spec.Scale *= req.Scale
	}
	if req.Seed != nil {
		spec.Seed = *req.Seed
	}
	run, err := s.Submit(spec, req.Plan)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, run)
}

// handleQuery executes a plan against a finished run and writes the
// ReportSet in cmd/measure's exact report encoding.
func handleQuery(s *Service, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("reading request: %v", err)})
		return
	}
	var plan *analysis.Plan
	if len(body) > 0 {
		p, err := analysis.ParsePlan(body)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
			return
		}
		plan = &p
	}
	rs, err := s.Query(id, plan)
	if err != nil {
		writeError(w, err)
		return
	}
	out, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{err.Error()})
		return
	}
	out = append(out, '\n')
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(out)
}

// handleCalibrate diffs a finished run against an observed dataset: an
// empty body selects the built-in paper dataset, else the body is a
// calibrate.Dataset. The 200 response is the calibrate.Report — its
// "pass" field, not the HTTP status, carries the verdict.
func handleCalibrate(s *Service, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("reading request: %v", err)})
		return
	}
	var ds *calibrate.Dataset
	if len(body) > 0 {
		if ds, err = calibrate.ParseDataset(body); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
			return
		}
	}
	rep, err := s.Calibrate(id, ds)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleEvents serves the SSE progress stream: "progress" events while
// the campaign runs, then one terminal event named after the run's
// final state ("done" | "failed" | "aborted") carrying the run JSON.
func handleEvents(s *Service, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, cancel, err := s.Subscribe(id)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{"streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ctx := r.Context()
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				// Stream over: the run reached a terminal state before the
				// notifier closed, so this read observes it.
				run, err := s.Run(id)
				if err != nil {
					return
				}
				writeSSE(w, string(run.State), run)
				fl.Flush()
				return
			}
			writeSSE(w, "progress", e)
			fl.Flush()
		case <-ctx.Done():
			return
		}
	}
}

// writeSSE frames one server-sent event. Payloads marshal compact, so
// the data field is a single line.
func writeSSE(w io.Writer, event string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// writeJSON writes a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps service errors to HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrTerminal), errors.Is(err, ErrNotQueryable):
		status = http.StatusConflict
	case errors.Is(err, ErrBusy):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	default:
		// Validation and lookup failures surface as 400s.
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorBody{err.Error()})
}
