package svc

// Notifier unit tests: the SSE hub's fan-out contract — sequence
// numbering, drop-oldest backpressure, last-snapshot replay, and
// idempotent close.

import (
	"testing"
	"time"

	"repro/internal/scenario"
)

// snap builds a minimal engine snapshot h virtual hours into a one-day
// campaign.
func snap(h int) scenario.Progress {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return scenario.Progress{
		SimTime:    start.Add(time.Duration(h) * time.Hour),
		SimElapsed: time.Duration(h) * time.Hour,
		SimEnd:     start.Add(24 * time.Hour),
		Events:     uint64(h) * 100,
	}
}

func TestNotifierSequenceAndPercent(t *testing.T) {
	n := NewNotifier()
	ch, cancel := n.Subscribe()
	defer cancel()

	for h := 1; h <= 3; h++ {
		n.Publish(snap(h))
	}
	for want := uint64(1); want <= 3; want++ {
		e := <-ch
		if e.Seq != want {
			t.Fatalf("seq = %d, want %d", e.Seq, want)
		}
		if e.Percent < 0 || e.Percent > 100 {
			t.Errorf("percent %g out of range", e.Percent)
		}
		if e.SimTotalS != (24 * time.Hour).Seconds() {
			t.Errorf("total %gs, want the 24h campaign window", e.SimTotalS)
		}
	}
}

// TestNotifierDropOldest pins the backpressure rule: a subscriber that
// never drains loses the oldest snapshots, keeps the newest, and the
// surviving subsequence stays monotonic.
func TestNotifierDropOldest(t *testing.T) {
	n := NewNotifier()
	ch, cancel := n.Subscribe()
	defer cancel()

	total := subscriberBuffer + 10
	for i := 1; i <= total; i++ {
		n.Publish(snap(i % 24))
	}
	n.Close()

	var seqs []uint64
	for e := range ch {
		seqs = append(seqs, e.Seq)
	}
	if len(seqs) != subscriberBuffer {
		t.Fatalf("drained %d events, want the buffer's %d", len(seqs), subscriberBuffer)
	}
	if seqs[0] != uint64(total-subscriberBuffer+1) {
		t.Errorf("oldest surviving seq = %d, want %d (drop-oldest)", seqs[0], total-subscriberBuffer+1)
	}
	if last := seqs[len(seqs)-1]; last != uint64(total) {
		t.Errorf("newest seq = %d, want %d (never drop the newest)", last, total)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("seqs not monotonic: %v", seqs)
		}
	}
}

// TestNotifierReplayAndClose pins late-subscriber replay and the closed
// notifier's behavior.
func TestNotifierReplayAndClose(t *testing.T) {
	n := NewNotifier()
	n.Publish(snap(5))

	ch, cancel := n.Subscribe()
	defer cancel()
	e := <-ch
	if e.Seq != 1 {
		t.Fatalf("late subscriber replayed seq %d, want 1", e.Seq)
	}

	n.Close()
	n.Close() // idempotent
	if _, ok := <-ch; ok {
		t.Error("subscriber channel not closed by Close")
	}

	// Subscribing after close still replays the last snapshot, then ends.
	ch2, cancel2 := n.Subscribe()
	defer cancel2()
	if e, ok := <-ch2; !ok || e.Seq != 1 {
		t.Errorf("post-close subscribe: got (%+v, %v), want the replayed snapshot", e, ok)
	}
	if _, ok := <-ch2; ok {
		t.Error("post-close subscription not terminated")
	}

	// Publishing after close is a no-op, not a panic.
	n.Publish(snap(6))
}

// TestNotifierCancelIdempotent pins that cancel can race Close.
func TestNotifierCancelIdempotent(t *testing.T) {
	n := NewNotifier()
	_, cancel := n.Subscribe()
	cancel()
	cancel()
	n.Close()
	cancel()
}
