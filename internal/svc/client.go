package svc

// Client is the Go face of the daemon's HTTP API — what cmd/measure's
// -submit mode, the service tests and the CI smoke job speak. It covers
// the whole surface: submit, inspect, abort, query, rerun, calibrate,
// and an SSE tail that parses the /runs/{id}/events stream back into
// ProgressEvents.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/calibrate"
)

// Client talks to a running measured daemon.
type Client struct {
	// Base is the daemon's base URL ("http://127.0.0.1:8080").
	Base string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
}

// NewClient returns a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do sends one request and decodes a 2xx JSON body into out (skipped
// when out is nil). Non-2xx responses decode the error body.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("svc: encoding request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("svc: reading response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		return decodeError(resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("svc: decoding response: %w", err)
	}
	return nil
}

// decodeError turns a non-2xx response into an error.
func decodeError(status int, body []byte) error {
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err == nil && eb.Error != "" {
		return fmt.Errorf("svc: %s (HTTP %d)", eb.Error, status)
	}
	return fmt.Errorf("svc: HTTP %d: %s", status, strings.TrimSpace(string(body)))
}

// Submit posts a campaign and returns the queued run.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (Run, error) {
	var run Run
	err := c.do(ctx, http.MethodPost, "/runs", req, &run)
	return run, err
}

// Run fetches one run's current state.
func (c *Client) Run(ctx context.Context, id string) (Run, error) {
	var run Run
	err := c.do(ctx, http.MethodGet, "/runs/"+id, nil, &run)
	return run, err
}

// Runs lists every tracked run, oldest first.
func (c *Client) Runs(ctx context.Context) ([]Run, error) {
	var out struct {
		Runs []Run `json:"runs"`
	}
	err := c.do(ctx, http.MethodGet, "/runs", nil, &out)
	return out.Runs, err
}

// Scenarios lists the daemon's registered scenario names.
func (c *Client) Scenarios(ctx context.Context) ([]string, error) {
	var out struct {
		Scenarios []string `json:"scenarios"`
	}
	err := c.do(ctx, http.MethodGet, "/scenarios", nil, &out)
	return out.Scenarios, err
}

// Queries lists the daemon's registered analysis query names.
func (c *Client) Queries(ctx context.Context) ([]string, error) {
	var out struct {
		Queries []string `json:"queries"`
	}
	err := c.do(ctx, http.MethodGet, "/queries", nil, &out)
	return out.Queries, err
}

// Abort asks the daemon to stop a queued/running campaign cleanly.
func (c *Client) Abort(ctx context.Context, id string) (Run, error) {
	var run Run
	err := c.do(ctx, http.MethodDelete, "/runs/"+id, nil, &run)
	return run, err
}

// Query executes a plan against a finished run and returns the raw
// report bytes — cmd/measure's exact -report encoding, so callers can
// write or diff them verbatim. A nil plan defers to the run's own plan
// (else the full paper plan).
func (c *Client) Query(ctx context.Context, id string, plan any) ([]byte, error) {
	var rd io.Reader
	if plan != nil {
		data, err := json.Marshal(plan)
		if err != nil {
			return nil, fmt.Errorf("svc: encoding plan: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/runs/"+id+"/query", rd)
	if err != nil {
		return nil, err
	}
	if plan != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("svc: reading report: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		return nil, decodeError(resp.StatusCode, data)
	}
	return data, nil
}

// Rerun re-submits a persisted run's spec as a new run and returns the
// newly queued run.
func (c *Client) Rerun(ctx context.Context, id string) (Run, error) {
	var run Run
	err := c.do(ctx, http.MethodPost, "/runs/"+id+"/rerun", nil, &run)
	return run, err
}

// Calibrate diffs a finished run against an observed dataset; a nil
// dataset selects the daemon's built-in paper dataset. The report's
// Pass flag carries the verdict.
func (c *Client) Calibrate(ctx context.Context, id string, ds *calibrate.Dataset) (calibrate.Report, error) {
	var rep calibrate.Report
	var body any
	if ds != nil {
		body = ds
	}
	err := c.do(ctx, http.MethodPost, "/runs/"+id+"/calibrate", body, &rep)
	return rep, err
}

// Events tails a run's SSE stream, calling onProgress for each
// "progress" event (a nil onProgress just waits), and returns the run
// state carried by the terminal event. It returns when the run
// finishes or ctx is canceled.
func (c *Client) Events(ctx context.Context, id string, onProgress func(ProgressEvent)) (Run, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/runs/"+id+"/events", nil)
	if err != nil {
		return Run{}, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return Run{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(resp.Body)
		return Run{}, decodeError(resp.StatusCode, data)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Blank line dispatches the accumulated event.
			if event == "" && data == "" {
				continue
			}
			switch event {
			case "progress":
				var e ProgressEvent
				if err := json.Unmarshal([]byte(data), &e); err != nil {
					return Run{}, fmt.Errorf("svc: decoding progress event: %w", err)
				}
				if onProgress != nil {
					onProgress(e)
				}
			case string(StateDone), string(StateFailed), string(StateAborted):
				var run Run
				if err := json.Unmarshal([]byte(data), &run); err != nil {
					return Run{}, fmt.Errorf("svc: decoding terminal event: %w", err)
				}
				return run, nil
			}
			event, data = "", ""
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return Run{}, ctx.Err()
		}
		return Run{}, fmt.Errorf("svc: event stream: %w", err)
	}
	return Run{}, fmt.Errorf("svc: event stream ended without a terminal event")
}
