// Package control implements the manager ↔ honeypot control protocol.
//
// The paper's manager launches honeypots, tells them which server to join
// and which files to advertise, polls their status, and periodically
// gathers their logs. This package carries those four operations as JSON
// envelopes inside eDonkey SERVER-MESSAGE frames on a dedicated port, so
// the exact same control plane runs over the simulated network and over
// real TCP (cmd/hpmanager driving cmd/honeypotd).
//
// # Failure semantics
//
// A collection campaign runs for weeks over links that flap; the control
// plane therefore distinguishes three failure shapes and gives each a
// typed identity:
//
//   - Remote refusals. An agent that cannot serve a request answers with
//     Envelope.Error (human-readable) and, for conditions callers branch
//     on, Envelope.Code; the Link surfaces both as a *RemoteError. Only
//     the code is contract: IsNoSource checks it first and falls back to
//     message matching solely for agents predating the field.
//   - Dead links. When the connection drops, every pending callback fails
//     with ErrLinkClosed, and so does every later request on that Link.
//     ErrLinkClosed matches transport.ErrClosed under errors.Is, so
//     callers watching either sentinel agree.
//   - Silence. With a Policy set (SetPolicy), each request attempt runs
//     under a deadline; on expiry the Link re-issues idempotent requests
//     (everything but the destructive take-records drain) with jittered
//     exponential backoff, and after the attempt budget fails the
//     callback with an error wrapping ErrTimeout. Stale replies to an
//     expired attempt are dropped by sequence number, so a retry can
//     never double-apply. The zero Policy — no deadline, one attempt —
//     is the pre-policy behavior and keeps fault-free runs byte-stable:
//     jitter is drawn from the host's random stream only on error paths.
//
// The manager layers its own degradation on top: a honeypot whose
// collection round exhausts this budget is skipped and audited, not
// retried forever (see internal/manager).
package control

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/ed2k"
	"repro/internal/honeypot"
	"repro/internal/logging"
	"repro/internal/logstore"
	"repro/internal/transport"
	"repro/internal/wire"
)

// errNoSource is reported (as CodeNoSource across the wire) when the
// honeypot has no durable record source; the manager falls back to
// take-records on seeing it.
var errNoSource = errors.New("control: honeypot has no record source")

// Error codes carried in Envelope.Code. Codes, not message text, are the
// machine-readable contract for conditions callers branch on.
const (
	// CodeNoSource marks a take-records-since request against an agent
	// with no durable record source.
	CodeNoSource = "no-source"
)

// RemoteError is a refusal that crossed the control plane: the remote
// agent answered, but with an error envelope.
type RemoteError struct {
	Code string // machine-readable code, "" for uncoded errors
	Msg  string // human-readable message from the remote
}

func (e *RemoteError) Error() string { return "control: " + e.Msg }

// ErrTimeout is wrapped by errors a request reports when every attempt
// of its policy budget expired without an answer.
var ErrTimeout = errors.New("control: request timed out")

// linkClosedError gives ErrLinkClosed an identity of its own while still
// matching transport.ErrClosed, which callers historically tested for.
type linkClosedError struct{}

func (linkClosedError) Error() string        { return "control: link closed" }
func (linkClosedError) Is(target error) bool { return target == transport.ErrClosed }

// ErrLinkClosed is reported by every pending and subsequent request
// callback once the link's connection is gone.
var ErrLinkClosed error = linkClosedError{}

// IsNoSource recognizes the no-record-source condition, including after
// the error crossed the control plane. The typed Envelope.Code is
// authoritative; the message-text fallback covers agents predating the
// code field and is kept for one release. Other collection errors are
// transient and must not demote a honeypot to the drain path.
func IsNoSource(err error) bool {
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Code == CodeNoSource ||
			(re.Code == "" && strings.Contains(re.Msg, "no record source"))
	}
	return err != nil && strings.Contains(err.Error(), "no record source")
}

// DefaultPort is the conventional control port.
const DefaultPort = 4700

// Request types.
const (
	TypeStatus      = "status"
	TypeAdvertise   = "advertise"
	TypeConnect     = "connect-server"
	TypeTakeRecords = "take-records"
	// TypeTakeRecordsSince is the incremental-collection pair of
	// TypeTakeRecords: the manager sends the checkpoint it last acked and
	// receives only records logged after it, plus the next checkpoint.
	// Requires the honeypot to run a durable record source (a logstore
	// shard); every record crosses the control plane at most once, even
	// across honeypot restarts.
	TypeTakeRecordsSince = "take-records-since"
	TypeResponse         = "response"
)

// Envelope frames one control message.
type Envelope struct {
	Seq     uint64          `json:"seq"`
	Type    string          `json:"type"`
	Error   string          `json:"error,omitempty"`
	Code    string          `json:"code,omitempty"` // machine-readable error code
	Payload json.RawMessage `json:"payload,omitempty"`
}

// FileSpec serializes a shared file across the control link.
type FileSpec struct {
	Hash string `json:"hash"`
	Name string `json:"name"`
	Size int64  `json:"size"`
	Type string `json:"type"`
}

// ToShared converts to the client representation.
func (f FileSpec) ToShared() (client.SharedFile, error) {
	h, err := ed2k.ParseHash(f.Hash)
	if err != nil {
		return client.SharedFile{}, err
	}
	return client.SharedFile{Hash: h, Name: f.Name, Size: f.Size, Type: f.Type}, nil
}

// SpecOf converts from the client representation.
func SpecOf(f client.SharedFile) FileSpec {
	return FileSpec{Hash: f.Hash.String(), Name: f.Name, Size: f.Size, Type: f.Type}
}

// AdvertiseRequest carries the files to advertise.
type AdvertiseRequest struct {
	Files []FileSpec `json:"files"`
}

// ConnectRequest carries the directory server to join.
type ConnectRequest struct {
	Server string `json:"server"`
}

// RecordsResponse carries drained log records.
type RecordsResponse struct {
	Records []logging.Record `json:"records"`
}

// SinceRequest asks for records after a checkpoint, at most Max (0 means
// no bound — avoid on large shards).
type SinceRequest struct {
	Since logstore.Checkpoint `json:"since"`
	Max   int                 `json:"max"`
}

// SinceResponse carries the records and the checkpoint to ack next.
type SinceResponse struct {
	Records []logging.Record    `json:"records"`
	Next    logstore.Checkpoint `json:"next"`
}

// RecordSource serves records from a durable position; logstore.Shard
// implements it.
type RecordSource interface {
	ReadSince(cp logstore.Checkpoint, max int) ([]logging.Record, logstore.Checkpoint, error)
}

func marshalEnvelope(e Envelope) wire.Message {
	b, err := json.Marshal(e)
	if err != nil {
		// Envelope contents are always marshalable; this is a programmer error.
		panic("control: marshal envelope: " + err.Error())
	}
	return &wire.ServerMessage{Text: string(b)}
}

func unmarshalEnvelope(m wire.Message) (Envelope, error) {
	sm, ok := m.(*wire.ServerMessage)
	if !ok {
		return Envelope{}, fmt.Errorf("control: unexpected frame %T", m)
	}
	var e Envelope
	if err := json.Unmarshal([]byte(sm.Text), &e); err != nil {
		return Envelope{}, fmt.Errorf("control: bad envelope: %w", err)
	}
	return e, nil
}

// ---------------------------------------------------------------------------
// Agent (honeypot side).

// Agent serves control requests for one honeypot.
type Agent struct {
	hp       *honeypot.Honeypot
	listener transport.Listener
	src      RecordSource
}

// SetSource attaches the durable record source serving take-records-since
// requests (typically the logstore shard the honeypot's Sink writes to).
// Call it right after NewAgent, on the host's executor.
func (a *Agent) SetSource(src RecordSource) { a.src = src }

// NewAgent starts serving control requests on the given port of the
// honeypot's host.
func NewAgent(host transport.Host, hp *honeypot.Honeypot, port uint16) (*Agent, error) {
	a := &Agent{hp: hp}
	l, err := host.Listen(port, wire.ServerSpace, a.accept)
	if err != nil {
		return nil, err
	}
	a.listener = l
	return a, nil
}

// Close stops serving.
func (a *Agent) Close() {
	if a.listener != nil {
		a.listener.Close()
	}
}

func (a *Agent) accept(conn transport.Conn) {
	conn.SetHooks(transport.ConnHooks{
		OnMessage: func(m wire.Message) {
			env, err := unmarshalEnvelope(m)
			if err != nil {
				conn.Send(marshalEnvelope(Envelope{Type: TypeResponse, Error: err.Error()}))
				return
			}
			conn.Send(marshalEnvelope(a.handle(env)))
		},
	})
}

func (a *Agent) handle(req Envelope) Envelope {
	resp := Envelope{Seq: req.Seq, Type: TypeResponse}
	fail := func(err error) Envelope {
		resp.Error = err.Error()
		if errors.Is(err, errNoSource) {
			resp.Code = CodeNoSource
		}
		return resp
	}
	switch req.Type {
	case TypeStatus:
		b, err := json.Marshal(a.hp.Status())
		if err != nil {
			return fail(err)
		}
		resp.Payload = b
	case TypeAdvertise:
		var ar AdvertiseRequest
		if err := json.Unmarshal(req.Payload, &ar); err != nil {
			return fail(err)
		}
		files := make([]client.SharedFile, 0, len(ar.Files))
		for _, fs := range ar.Files {
			f, err := fs.ToShared()
			if err != nil {
				return fail(err)
			}
			files = append(files, f)
		}
		a.hp.Advertise(files...)
	case TypeConnect:
		var cr ConnectRequest
		if err := json.Unmarshal(req.Payload, &cr); err != nil {
			return fail(err)
		}
		addr, err := netip.ParseAddrPort(cr.Server)
		if err != nil {
			return fail(err)
		}
		a.hp.ConnectServer(addr)
	case TypeTakeRecords:
		b, err := json.Marshal(RecordsResponse{Records: a.hp.TakeRecords()})
		if err != nil {
			return fail(err)
		}
		resp.Payload = b
	case TypeTakeRecordsSince:
		if a.src == nil {
			return fail(errNoSource)
		}
		var sr SinceRequest
		if err := json.Unmarshal(req.Payload, &sr); err != nil {
			return fail(err)
		}
		recs, next, err := a.src.ReadSince(sr.Since, sr.Max)
		if err != nil {
			return fail(err)
		}
		b, err := json.Marshal(SinceResponse{Records: recs, Next: next})
		if err != nil {
			return fail(err)
		}
		resp.Payload = b
	default:
		resp.Error = "control: unknown request type " + req.Type
	}
	return resp
}

// ---------------------------------------------------------------------------
// Link (manager side).

// Policy bounds how long a Link waits for answers. The zero value — no
// deadline, a single attempt — reproduces the pre-policy behavior and
// is what fault-free simulations run under.
type Policy struct {
	// Timeout is the per-attempt deadline. 0 waits forever.
	Timeout time.Duration
	// Attempts is the total attempt budget per request; values below 1
	// mean one attempt. Only idempotent request types are re-issued:
	// the destructive take-records drain always gets a single attempt.
	Attempts int
	// Backoff is the delay before the second attempt, doubling per
	// retry with jitter (half to full value). 0 means 2s.
	Backoff time.Duration
	// BackoffMax caps the doubled backoff. 0 means 30s.
	BackoffMax time.Duration
}

// pendingReq is an in-flight request: its callback and, under a policy
// deadline, the timer that expires the attempt.
type pendingReq struct {
	cb    func(Envelope, error)
	timer transport.Timer
}

// Link is the manager's connection to one honeypot agent.
type Link struct {
	host    transport.Host
	id      string
	addr    netip.AddrPort
	conn    transport.Conn
	seq     uint64
	pending map[uint64]*pendingReq
	policy  Policy
	closed  bool
}

// Dial connects to a honeypot's control port. done runs on the manager's
// executor.
func Dial(host transport.Host, id string, addr netip.AddrPort, done func(*Link, error)) {
	host.Dial(addr, wire.ServerSpace, func(conn transport.Conn, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		l := &Link{host: host, id: id, addr: addr, conn: conn, pending: make(map[uint64]*pendingReq)}
		conn.SetHooks(transport.ConnHooks{
			OnMessage: l.onMessage,
			OnClose:   l.onClose,
		})
		done(l, nil)
	})
}

// ID returns the honeypot identifier this link serves.
func (l *Link) ID() string { return l.id }

// Addr returns the control endpoint.
func (l *Link) Addr() netip.AddrPort { return l.addr }

// Closed reports whether the link died.
func (l *Link) Closed() bool { return l.closed }

// SetPolicy installs the link's deadline/retry policy. Call it on the
// manager's executor before issuing requests; in-flight attempts keep
// the policy they started under.
func (l *Link) SetPolicy(p Policy) { l.policy = p }

// Close tears the link down; pending requests fail with ErrLinkClosed.
func (l *Link) Close() {
	if !l.closed {
		l.conn.Close()
		l.onClose(nil)
	}
}

func (l *Link) onClose(error) {
	if l.closed {
		return
	}
	l.closed = true
	for seq, p := range l.pending {
		delete(l.pending, seq)
		if p.timer != nil {
			p.timer.Stop()
		}
		p.cb(Envelope{}, ErrLinkClosed)
	}
}

func (l *Link) onMessage(m wire.Message) {
	env, err := unmarshalEnvelope(m)
	if err != nil {
		return // ignore garbage responses
	}
	p, ok := l.pending[env.Seq]
	if !ok {
		return // expired attempt's late answer; the retry owns the request now
	}
	delete(l.pending, env.Seq)
	if p.timer != nil {
		p.timer.Stop()
	}
	p.cb(env, nil)
}

func (l *Link) request(typ string, payload any, cb func(Envelope, error)) {
	var body json.RawMessage
	if payload != nil {
		b, err := json.Marshal(payload)
		if err != nil {
			cb(Envelope{}, err)
			return
		}
		body = b
	}
	l.send(typ, body, 1, cb)
}

// send issues one attempt of a request. Under a policy deadline the
// attempt is armed with an expiry timer; see expire for what happens
// when it fires.
func (l *Link) send(typ string, body json.RawMessage, attempt int, cb func(Envelope, error)) {
	if l.closed {
		cb(Envelope{}, ErrLinkClosed)
		return
	}
	l.seq++
	env := Envelope{Seq: l.seq, Type: typ, Payload: body}
	p := &pendingReq{cb: cb}
	if l.policy.Timeout > 0 {
		seq := env.Seq
		p.timer = l.host.After(l.policy.Timeout, func() {
			l.expire(seq, typ, body, attempt, cb)
		})
	}
	l.pending[env.Seq] = p
	l.conn.Send(marshalEnvelope(env))
}

// expire handles a per-attempt deadline firing: the attempt is
// abandoned (its seq removed, so a late answer is dropped) and, if the
// budget allows and the request is idempotent, re-issued after a
// jittered exponential backoff. take-records is a destructive drain —
// a lost answer may have drained the buffer — so it never retries.
func (l *Link) expire(seq uint64, typ string, body json.RawMessage, attempt int, cb func(Envelope, error)) {
	if _, ok := l.pending[seq]; !ok {
		return // answered or failed before the timer ran
	}
	delete(l.pending, seq)
	if attempt < l.policy.Attempts && typ != TypeTakeRecords && !l.closed {
		l.host.After(l.retryDelay(attempt), func() {
			l.send(typ, body, attempt+1, cb)
		})
		return
	}
	cb(Envelope{}, fmt.Errorf("control: %s to %s: no answer after %d attempt(s): %w",
		typ, l.id, attempt, ErrTimeout))
}

// retryDelay doubles the policy backoff per retry (capped) and jitters
// it into [d/2, d]. Random draws happen only here, on an error path, so
// fault-free runs consume the host's random stream identically with or
// without a policy.
func (l *Link) retryDelay(attempt int) time.Duration {
	base := l.policy.Backoff
	if base <= 0 {
		base = 2 * time.Second
	}
	max := l.policy.BackoffMax
	if max <= 0 {
		max = 30 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := int64(d) / 2
	return time.Duration(half + l.host.Rand().Int63n(half+1))
}

// Status polls the honeypot's status.
func (l *Link) Status(cb func(honeypot.Status, error)) {
	l.request(TypeStatus, nil, func(env Envelope, err error) {
		if err != nil {
			cb(honeypot.Status{}, err)
			return
		}
		if env.Error != "" {
			cb(honeypot.Status{}, &RemoteError{Code: env.Code, Msg: env.Error})
			return
		}
		var st honeypot.Status
		if err := json.Unmarshal(env.Payload, &st); err != nil {
			cb(honeypot.Status{}, err)
			return
		}
		cb(st, nil)
	})
}

// Advertise tells the honeypot which files to claim.
func (l *Link) Advertise(files []client.SharedFile, cb func(error)) {
	req := AdvertiseRequest{Files: make([]FileSpec, 0, len(files))}
	for _, f := range files {
		req.Files = append(req.Files, SpecOf(f))
	}
	l.request(TypeAdvertise, req, func(env Envelope, err error) {
		cb(respErr(env, err))
	})
}

// ConnectServer redirects the honeypot to a directory server.
func (l *Link) ConnectServer(server netip.AddrPort, cb func(error)) {
	l.request(TypeConnect, ConnectRequest{Server: server.String()}, func(env Envelope, err error) {
		cb(respErr(env, err))
	})
}

// TakeRecordsSince asks for records after the given checkpoint (at most
// max; 0 = unbounded) and the checkpoint to use next. Implements the
// manager's IncrementalHandle.
func (l *Link) TakeRecordsSince(since logstore.Checkpoint, max int, cb func([]logging.Record, logstore.Checkpoint, error)) {
	l.request(TypeTakeRecordsSince, SinceRequest{Since: since, Max: max}, func(env Envelope, err error) {
		if err != nil {
			cb(nil, since, err)
			return
		}
		if env.Error != "" {
			cb(nil, since, &RemoteError{Code: env.Code, Msg: env.Error})
			return
		}
		var sr SinceResponse
		if err := json.Unmarshal(env.Payload, &sr); err != nil {
			cb(nil, since, err)
			return
		}
		cb(sr.Records, sr.Next, nil)
	})
}

// TakeRecords drains the honeypot's log buffer.
func (l *Link) TakeRecords(cb func([]logging.Record, error)) {
	l.request(TypeTakeRecords, nil, func(env Envelope, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		if env.Error != "" {
			cb(nil, &RemoteError{Code: env.Code, Msg: env.Error})
			return
		}
		var rr RecordsResponse
		if err := json.Unmarshal(env.Payload, &rr); err != nil {
			cb(nil, err)
			return
		}
		cb(rr.Records, nil)
	})
}

func respErr(env Envelope, err error) error {
	if err != nil {
		return err
	}
	if env.Error != "" {
		return &RemoteError{Code: env.Code, Msg: env.Error}
	}
	return nil
}
