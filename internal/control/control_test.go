package control

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/des"
	"repro/internal/ed2k"
	"repro/internal/honeypot"
	"repro/internal/logging"
	"repro/internal/logstore"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/transport"
	"repro/internal/wire"
)

var t0 = time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)

type world struct {
	loop *des.Loop
	net  *netsim.Network
	srv  *server.Server
	hp   *honeypot.Honeypot
	link *Link
}

func (w *world) settle() { w.loop.RunUntil(w.loop.Now().Add(time.Minute)) }

func newWorld(t *testing.T) *world { return newWorldWithSink(t, nil, nil) }

// newWorldWithSink builds the control test world; with a non-nil sink the
// honeypot writes through it, and src (if non-nil) is attached to the
// agent as the take-records-since source.
func newWorldWithSink(t *testing.T, sink logging.Sink, src RecordSource) *world {
	t.Helper()
	loop := des.NewLoop(t0, 41)
	nw := netsim.New(loop, netsim.DefaultConfig())
	srv := server.New(nw.NewHost("server"), server.DefaultConfig("big"))
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	w := &world{loop: loop, net: nw, srv: srv}

	hpHost := nw.NewHost("hp")
	w.hp = honeypot.New(hpHost, honeypot.Config{
		ID: "hp-0", Strategy: honeypot.RandomContent, Port: 4662, Secret: []byte("s"),
		Sink: sink,
	})
	if err := w.hp.Client().Listen(); err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(hpHost, w.hp, DefaultPort)
	if err != nil {
		t.Fatal(err)
	}
	if src != nil {
		agent.SetSource(src)
	}

	mgrHost := nw.NewHost("manager")
	Dial(mgrHost, "hp-0", netip.AddrPortFrom(hpHost.Addr(), DefaultPort), func(l *Link, err error) {
		if err != nil {
			t.Errorf("control dial: %v", err)
			return
		}
		w.link = l
	})
	w.settle()
	if w.link == nil {
		t.Fatal("no control link")
	}
	return w
}

func TestConnectServerViaControl(t *testing.T) {
	w := newWorld(t)
	var gotErr error = errNotCalled
	w.link.ConnectServer(w.srv.Addr(), func(err error) { gotErr = err })
	w.settle()
	if gotErr != nil {
		t.Fatalf("connect: %v", gotErr)
	}
	var st honeypot.Status
	w.link.Status(func(s honeypot.Status, err error) {
		if err != nil {
			t.Errorf("status: %v", err)
			return
		}
		st = s
	})
	w.settle()
	if !st.Connected {
		t.Error("honeypot not connected after control ConnectServer")
	}
	if st.ID != "hp-0" {
		t.Errorf("status ID %q", st.ID)
	}
}

var errNotCalled = &notCalledError{}

type notCalledError struct{}

func (*notCalledError) Error() string { return "callback not called" }

func TestAdvertiseViaControl(t *testing.T) {
	w := newWorld(t)
	w.link.ConnectServer(w.srv.Addr(), func(error) {})
	w.settle()
	files := []client.SharedFile{
		{Hash: ed2k.SyntheticHash("a"), Name: "a.avi", Size: 700 << 20, Type: "Video"},
		{Hash: ed2k.SyntheticHash("b"), Name: "b.mp3", Size: 4 << 20, Type: "Audio"},
	}
	var gotErr error = errNotCalled
	w.link.Advertise(files, func(err error) { gotErr = err })
	w.settle()
	if gotErr != nil {
		t.Fatalf("advertise: %v", gotErr)
	}
	if w.srv.FilesIndexed() != 2 {
		t.Errorf("server indexed %d", w.srv.FilesIndexed())
	}
}

func TestTakeRecordsViaControl(t *testing.T) {
	w := newWorld(t)
	w.link.ConnectServer(w.srv.Addr(), func(error) {})
	w.settle()
	bait := client.SharedFile{Hash: ed2k.SyntheticHash("bait"), Name: "bait.avi", Size: 1 << 20, Type: "Video"}
	w.link.Advertise([]client.SharedFile{bait}, func(error) {})
	w.settle()

	// One peer contacts the honeypot.
	peer := client.New(w.net.NewHost("peer"), client.Config{
		Label: "peer", UserHash: ed2k.NewUserHash("peer"), Port: 4663,
	})
	if err := peer.Listen(); err != nil {
		t.Fatal(err)
	}
	hpAddr := netip.AddrPortFrom(w.hp.Client().Host().Addr(), 4662)
	peer.DialPeer(hpAddr, func(ps *client.PeerSession, err error) {
		if err != nil {
			t.Errorf("dial hp: %v", err)
			return
		}
		ps.SendHello()
		ps.StartUpload(bait.Hash)
	})
	w.settle()

	var recs []logging.Record
	w.link.TakeRecords(func(r []logging.Record, err error) {
		if err != nil {
			t.Errorf("take: %v", err)
			return
		}
		recs = r
	})
	w.settle()
	if len(recs) < 2 {
		t.Fatalf("collected %d records", len(recs))
	}
	// Records survive JSON: check the essential fields.
	if recs[0].Kind != logging.KindHello || recs[0].PeerIP == "" {
		t.Errorf("record 0: %+v", recs[0])
	}
	// Second take is empty (drained).
	w.link.TakeRecords(func(r []logging.Record, err error) {
		if err != nil {
			t.Errorf("take2: %v", err)
		}
		if len(r) != 0 {
			t.Errorf("second take returned %d", len(r))
		}
	})
	w.settle()
}

// contact drives one HELLO + START-UPLOAD from a fresh peer.
func (w *world) contact(t *testing.T, label string, file ed2k.Hash) {
	t.Helper()
	peer := client.New(w.net.NewHost(label), client.Config{
		Label: label, UserHash: ed2k.NewUserHash(label), Port: 4663,
	})
	if err := peer.Listen(); err != nil {
		t.Fatal(err)
	}
	hpAddr := netip.AddrPortFrom(w.hp.Client().Host().Addr(), 4662)
	peer.DialPeer(hpAddr, func(ps *client.PeerSession, err error) {
		if err != nil {
			t.Errorf("dial hp: %v", err)
			return
		}
		ps.SendHello()
		ps.StartUpload(file)
	})
	w.settle()
}

func TestTakeRecordsSinceViaControl(t *testing.T) {
	store, err := logstore.Open(t.TempDir(), logstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	shard, err := store.Shard("hp-0")
	if err != nil {
		t.Fatal(err)
	}
	w := newWorldWithSink(t, shard, shard)
	w.link.ConnectServer(w.srv.Addr(), func(error) {})
	w.settle()
	bait := client.SharedFile{Hash: ed2k.SyntheticHash("bait"), Name: "bait.avi", Size: 1 << 20, Type: "Video"}
	w.link.Advertise([]client.SharedFile{bait}, func(error) {})
	w.settle()

	w.contact(t, "peer-a", bait.Hash)

	// With a store-backed sink the legacy drain has nothing: collection
	// must go through checkpoints.
	w.link.TakeRecords(func(r []logging.Record, err error) {
		if err != nil {
			t.Errorf("take: %v", err)
		}
		if len(r) != 0 {
			t.Errorf("legacy drain returned %d records from a store-backed honeypot", len(r))
		}
	})
	w.settle()

	var got []logging.Record
	var cp logstore.Checkpoint
	pull := func() int {
		t.Helper()
		n := -1
		w.link.TakeRecordsSince(cp, 0, func(r []logging.Record, next logstore.Checkpoint, err error) {
			if err != nil {
				t.Errorf("take-since: %v", err)
				return
			}
			got = append(got, r...)
			cp = next
			n = len(r)
		})
		w.settle()
		return n
	}
	if n := pull(); n < 2 {
		t.Fatalf("first pull transferred %d records", n)
	}
	if n := pull(); n != 0 {
		t.Errorf("second pull re-transferred %d records", n)
	}
	w.contact(t, "peer-b", bait.Hash)
	if n := pull(); n < 2 {
		t.Errorf("pull after new contact transferred %d records", n)
	}
	// Everything transferred exactly matches the shard's content.
	want, _, err := shard.ReadSince(logstore.Checkpoint{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("transferred %d records, shard holds %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Time.Equal(want[i].Time) || got[i].PeerIP != want[i].PeerIP || got[i].Kind != want[i].Kind {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestTakeRecordsSinceWithoutSource(t *testing.T) {
	w := newWorld(t)
	var gotErr error
	w.link.TakeRecordsSince(logstore.Checkpoint{}, 0, func(_ []logging.Record, _ logstore.Checkpoint, err error) {
		gotErr = err
	})
	w.settle()
	if gotErr == nil {
		t.Fatal("take-records-since must fail without a record source")
	}
	if !strings.Contains(gotErr.Error(), "no record source") {
		t.Errorf("unexpected error: %v", gotErr)
	}
}

func TestLinkFailurePropagatesToPending(t *testing.T) {
	w := newWorld(t)
	hpHost, _ := w.net.HostAt(netip.AddrPortFrom(w.hp.Client().Host().Addr(), DefaultPort).Addr())
	var gotErr error
	w.link.Status(func(s honeypot.Status, err error) { gotErr = err })
	hpHost.Crash()
	w.settle()
	if gotErr == nil {
		t.Error("pending request should fail when the agent dies")
	}
	if !w.link.Closed() {
		t.Error("link should be closed")
	}
	// New requests fail fast.
	called := false
	w.link.Status(func(s honeypot.Status, err error) {
		called = true
		if err == nil {
			t.Error("request on dead link should error")
		}
	})
	if !called {
		t.Error("dead-link request must call back synchronously")
	}
}

func TestBadEnvelopeAnswered(t *testing.T) {
	w := newWorld(t)
	// Speak garbage directly to the agent port; the agent must answer
	// with an error envelope, not crash or stay silent.
	h := w.net.NewHost("garbler")
	var replies []Envelope
	h.Dial(netip.AddrPortFrom(w.hp.Client().Host().Addr(), DefaultPort), wire.ServerSpace, func(c transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.SetHooks(transport.ConnHooks{OnMessage: func(m wire.Message) {
			if env, err := unmarshalEnvelope(m); err == nil {
				replies = append(replies, env)
			}
		}})
		c.Send(&wire.ServerMessage{Text: "{this is not json"})
		c.Send(marshalEnvelope(Envelope{Seq: 1, Type: "no-such-request"}))
	})
	w.settle()
	if len(replies) != 2 {
		t.Fatalf("got %d replies", len(replies))
	}
	for i, r := range replies {
		if r.Error == "" {
			t.Errorf("reply %d carries no error: %+v", i, r)
		}
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	env := Envelope{Seq: 7, Type: TypeStatus}
	m := marshalEnvelope(env)
	got, err := unmarshalEnvelope(m)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || got.Type != TypeStatus {
		t.Errorf("round trip: %+v", got)
	}
	if _, err := unmarshalEnvelope(&wire.Reject{}); err == nil {
		t.Error("non-ServerMessage frame must fail")
	}
	if _, err := unmarshalEnvelope(&wire.ServerMessage{Text: "{not json"}); err == nil {
		t.Error("bad JSON must fail")
	}
}

func TestFileSpecRoundTrip(t *testing.T) {
	f := client.SharedFile{Hash: ed2k.SyntheticHash("x"), Name: "x.avi", Size: 123, Type: "Video"}
	spec := SpecOf(f)
	back, err := spec.ToShared()
	if err != nil {
		t.Fatal(err)
	}
	if back != f {
		t.Errorf("round trip: %+v != %+v", back, f)
	}
	if _, err := (FileSpec{Hash: "zz"}).ToShared(); err == nil {
		t.Error("bad hash must fail")
	}
	if !strings.Contains(spec.Hash, strings.ToUpper(spec.Hash[:4])) {
		t.Error("hash should be upper-case hex")
	}
}
